// Benchmarks that regenerate every table and figure of the C3D paper at a
// reduced ("quick") scale, plus micro-benchmarks of the simulator's building
// blocks. Each experiment benchmark prints the headline metric it produces so
// a bench run doubles as a smoke reproduction:
//
//	go test -bench=. -benchmem .
//
// Paper-scale numbers are produced by cmd/c3dexp and recorded in
// EXPERIMENTS.md; the quick scale preserves the qualitative shape (who wins,
// roughly by how much) while keeping each benchmark iteration to a few
// seconds on one core.
package c3d_test

import (
	"context"
	"fmt"
	"io"
	"testing"
	"time"

	"c3d/internal/core"
	"c3d/internal/experiments"
	"c3d/internal/machine"
	"c3d/internal/mc"
	"c3d/internal/sample"
	"c3d/internal/sweep"
	"c3d/internal/trace"
	"c3d/internal/workload"
)

// benchConfig is the reduced configuration shared by the experiment
// benchmarks.
func benchConfig() experiments.Config {
	cfg := experiments.QuickConfig()
	cfg.Workloads = []string{"streamcluster", "canneal", "nutch"}
	return cfg
}

// BenchmarkTable1RemoteFraction regenerates Table I: the fraction of memory
// accesses served by remote memory on the 4-socket baseline.
func BenchmarkTable1RemoteFraction(b *testing.B) {
	b.ReportAllocs()
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.TableI(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Average*100, "%remote")
	}
}

// BenchmarkFig2NUMABottleneck regenerates Fig. 2: the speedup from removing
// inter-socket latency versus removing bandwidth limits.
func BenchmarkFig2NUMABottleneck(b *testing.B) {
	b.ReportAllocs()
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig2(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Geomean["0_qpi_lat"], "x-zero-lat")
		b.ReportMetric(res.Geomean["inf_mem_bw+inf_qpi_bw"], "x-inf-bw")
	}
}

// BenchmarkFig3CacheCapacity regenerates Fig. 3: memory accesses versus LLC
// capacity.
func BenchmarkFig3CacheCapacity(b *testing.B) {
	b.ReportAllocs()
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig3(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Geomean[experiments.Fig3Capacities[3]], "norm-mem-1GB")
	}
}

// BenchmarkFig6QuadSocket regenerates Fig. 6: the 4-socket performance
// comparison.
func BenchmarkFig6QuadSocket(b *testing.B) {
	b.ReportAllocs()
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Geomean["c3d"], "x-c3d")
		b.ReportMetric(res.Geomean["snoopy"], "x-snoopy")
	}
}

// BenchmarkFig7DualSocket regenerates Fig. 7: the 2-socket comparison.
func BenchmarkFig7DualSocket(b *testing.B) {
	b.ReportAllocs()
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Geomean["c3d"], "x-c3d")
	}
}

// BenchmarkFig8MemoryTraffic regenerates Fig. 8: C3D's remote memory traffic
// normalised to the baseline.
func BenchmarkFig8MemoryTraffic(b *testing.B) {
	b.ReportAllocs()
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.GeomeanReads, "norm-reads")
		b.ReportMetric(res.GeomeanWrites, "norm-writes")
	}
}

// BenchmarkFig9InterSocketTraffic regenerates Fig. 9: inter-socket traffic
// per design, normalised to the baseline.
func BenchmarkFig9InterSocketTraffic(b *testing.B) {
	b.ReportAllocs()
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig9(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Geomean["c3d"], "norm-c3d")
		b.ReportMetric(res.Geomean["snoopy"], "norm-snoopy")
	}
}

// BenchmarkFig10DRAMCacheLatency regenerates Fig. 10: sensitivity to the DRAM
// cache latency.
func BenchmarkFig10DRAMCacheLatency(b *testing.B) {
	b.ReportAllocs()
	cfg := benchConfig()
	cfg.Workloads = []string{"streamcluster", "canneal"}
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig10(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Speedup[50]["c3d"], "x-c3d-50ns")
	}
}

// BenchmarkFig11InterSocketLatency regenerates Fig. 11: sensitivity to the
// inter-socket hop latency.
func BenchmarkFig11InterSocketLatency(b *testing.B) {
	b.ReportAllocs()
	cfg := benchConfig()
	cfg.Workloads = []string{"streamcluster", "canneal"}
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig11(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Speedup[30]["c3d"], "x-c3d-30ns")
	}
}

// BenchmarkSec6CBroadcastFilter regenerates the §VI-C broadcast-filter study.
func BenchmarkSec6CBroadcastFilter(b *testing.B) {
	b.ReportAllocs()
	cfg := benchConfig()
	cfg.Workloads = []string{"streamcluster"}
	for i := 0; i < b.N; i++ {
		res, err := experiments.Sec6C(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.PerWorkload["mcf"].BroadcastReduction*100, "%mcf-bcast-cut")
	}
}

// BenchmarkProtocolModelCheck regenerates the §IV-C verification: an
// exhaustive exploration of the 2-socket protocol configuration. Run
// single-worker, it doubles as the allocation trajectory of the checker's
// serial hot path (see TestModelCheckAllocationGuard in internal/mc).
func BenchmarkProtocolModelCheck(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		model := core.NewProtocolModel(core.ProtocolConfig{Sockets: 2, LoadsPerCore: 1, StoresPerCore: 1})
		report := mc.Run(context.Background(), model, mc.Options{Parallelism: 1})
		if !report.OK() {
			b.Fatalf("verification failed: %s", report)
		}
		b.ReportMetric(float64(report.StatesExplored), "states")
	}
}

// BenchmarkProtocolModelCheckParallel measures the parallel search engine on
// the 3-socket configuration (bounded so an iteration stays in seconds) at
// 1, 2, 4 and 8 workers. The reports are bit-identical across the
// sub-benchmarks — only wall-clock time may differ — so the ns/op ratio
// between p1 and p8 is the speedup of the engine itself.
func BenchmarkProtocolModelCheckParallel(b *testing.B) {
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("p%d", p), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				model := core.NewProtocolModel(core.ProtocolConfig{Sockets: 3, LoadsPerCore: 1, StoresPerCore: 1})
				report := mc.Run(context.Background(), model, mc.Options{MaxStates: 250_000, Parallelism: p})
				if !report.Passed() {
					b.Fatalf("verification failed: %s", report)
				}
				b.ReportMetric(float64(report.StatesExplored), "states")
			}
		})
	}
}

// BenchmarkPrivateVsShared regenerates the §II-C organisation comparison.
func BenchmarkPrivateVsShared(b *testing.B) {
	b.ReportAllocs()
	cfg := benchConfig()
	cfg.Workloads = []string{"streamcluster"}
	for i := 0; i < b.N; i++ {
		res, err := experiments.PrivateVsShared(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.TrafficReduction["streamcluster"]["c3d"]*100, "%traffic-cut-private")
	}
}

// BenchmarkAblation regenerates the design-choice ablation (clean property,
// non-inclusive directory, miss predictor).
func BenchmarkAblation(b *testing.B) {
	b.ReportAllocs()
	cfg := benchConfig()
	cfg.Workloads = []string{"facesim"}
	for i := 0; i < b.N; i++ {
		res, err := experiments.Ablation(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.CleanProperty["facesim"], "x-clean-property")
	}
}

// --- micro-benchmarks of the simulator's building blocks ---

// BenchmarkMachineSimulation measures raw simulation throughput
// (accesses simulated per second) of the C3D machine. The machine is built
// once and Reset between iterations — the way sweeps reuse machines across
// repetitions — so the steady-state allocation count excludes construction.
func BenchmarkMachineSimulation(b *testing.B) {
	b.ReportAllocs()
	spec := workload.MustGet("streamcluster")
	opts := workload.Options{Threads: 8, Scale: 512, AccessesPerThread: 5000}
	tr := workload.MustGenerate(spec, opts)
	accesses := tr.Accesses()
	cfg := machine.DefaultConfig(4, machine.C3D)
	cfg.Scale = 512
	cfg.CoresPerSocket = 2
	m := machine.New(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Reset()
		if _, err := m.Run(context.Background(), tr, machine.DefaultRunOptions()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(accesses*b.N)/b.Elapsed().Seconds(), "accesses/s")
}

// BenchmarkMachineSimulationSampled measures SMARTS-style sampled simulation
// against the full detailed run on the same machine and trace. Each iteration
// runs the trace once sampled and once in full, timing the halves separately
// with b.Elapsed snapshots, so ns/op covers the pair while the reported
// metrics separate them: sampled accesses/s (the stream length divided by the
// sampled half's wall-clock) and x-vs-full, the full/sampled wall-clock ratio
// the bench JSON tracks as the sampling speedup.
func BenchmarkMachineSimulationSampled(b *testing.B) {
	b.ReportAllocs()
	wspec := workload.MustGet("streamcluster")
	opts := workload.Options{Threads: 8, Scale: 512, AccessesPerThread: 5000}
	tr := workload.MustGenerate(wspec, opts)
	accesses := tr.Accesses()
	cfg := machine.DefaultConfig(4, machine.C3D)
	cfg.Scale = 512
	cfg.CoresPerSocket = 2
	m := machine.New(cfg)
	sampled := machine.DefaultRunOptions()
	sampled.Sampling = sample.Spec{Stretch: 700, Warm: 60, Window: 60, Seed: 1}
	var sampledTime, fullTime time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e0 := b.Elapsed()
		m.Reset()
		if _, err := m.Run(context.Background(), tr, sampled); err != nil {
			b.Fatal(err)
		}
		e1 := b.Elapsed()
		m.Reset()
		if _, err := m.Run(context.Background(), tr, machine.DefaultRunOptions()); err != nil {
			b.Fatal(err)
		}
		sampledTime += e1 - e0
		fullTime += b.Elapsed() - e1
	}
	b.ReportMetric(float64(accesses*b.N)/sampledTime.Seconds(), "accesses/s")
	b.ReportMetric(fullTime.Seconds()/sampledTime.Seconds(), "x-vs-full")
}

// BenchmarkTraceStream drives the full streaming trace pipeline — incremental
// generation → chunked encode → sequential streaming decode — end to end
// through an in-process pipe, at 1× and 100× the quick stream length. Nothing
// is materialised anywhere in the pipeline, so allocs/op is independent of
// stream length (the O(1)-memory claim of the streaming layer); only ns/op
// scales with the record count.
func BenchmarkTraceStream(b *testing.B) {
	spec := workload.MustGet("streamcluster")
	for _, mult := range []int{1, 100} {
		b.Run(fmt.Sprintf("len%dx", mult), func(b *testing.B) {
			b.ReportAllocs()
			opts := workload.Options{Threads: 4, Scale: 512, AccessesPerThread: 2000 * mult}
			src, err := workload.NewSource(spec, opts)
			if err != nil {
				b.Fatal(err)
			}
			records := int64(src.InitLen())
			for t := 0; t < src.Threads(); t++ {
				records += int64(src.ThreadLen(t))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pr, pw := io.Pipe()
				go func() {
					pw.CloseWithError(trace.EncodeSource(pw, src))
				}()
				var got int64
				if _, err := trace.Scan(pr, func(thread int, rec trace.Record) error {
					got++
					return nil
				}); err != nil {
					b.Fatal(err)
				}
				if got != records {
					b.Fatalf("streamed %d records, want %d", got, records)
				}
			}
			b.ReportMetric(float64(records*int64(b.N))/b.Elapsed().Seconds(), "records/s")
		})
	}
}

// BenchmarkTraceGeneration measures synthetic trace generation throughput.
func BenchmarkTraceGeneration(b *testing.B) {
	b.ReportAllocs()
	spec := workload.MustGet("canneal")
	opts := workload.Options{Threads: 8, Scale: 64, AccessesPerThread: 20_000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts.SeedOffset = int64(i)
		tr := workload.MustGenerate(spec, opts)
		if tr.Accesses() == 0 {
			b.Fatal("empty trace")
		}
	}
}

// BenchmarkMachineSimulationManyCores measures scheduler scalability: the
// "pick the earliest core" structure is exercised with 64 cores, where the
// old O(cores) linear scan dominated. Reported accesses/s should stay in the
// same ballpark as the 8-thread benchmark rather than collapsing.
func BenchmarkMachineSimulationManyCores(b *testing.B) {
	b.ReportAllocs()
	spec := workload.MustGet("streamcluster")
	opts := workload.Options{Threads: 64, Scale: 512, AccessesPerThread: 1000}
	tr := workload.MustGenerate(spec, opts)
	accesses := tr.Accesses()
	cfg := machine.DefaultConfig(4, machine.C3D)
	cfg.Scale = 512
	cfg.CoresPerSocket = 16
	m := machine.New(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Reset()
		if _, err := m.Run(context.Background(), tr, machine.DefaultRunOptions()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(accesses*b.N)/b.Elapsed().Seconds(), "accesses/s")
}

// BenchmarkSweepOverhead measures the sweep harness itself (job dispatch,
// seeding, result collection) with trivial jobs, so harness regressions are
// visible independently of simulation cost.
func BenchmarkSweepOverhead(b *testing.B) {
	b.ReportAllocs()
	jobs := make([]sweep.Job[int], 64)
	for i := range jobs {
		i := i
		jobs[i] = sweep.Job[int]{
			Key: fmt.Sprintf("job-%d", i),
			Run: func(_ context.Context, seed int64) (int, error) { return i + int(seed%3), nil },
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sweep.Run(context.Background(), jobs, sweep.Options{Parallelism: 4}); err != nil {
			b.Fatal(err)
		}
	}
}
