// Package c3d is a from-scratch Go reproduction of "C3D: Mitigating the NUMA
// Bottleneck via Coherent DRAM Caches" (Huang, Kumar, Elver, Grot, Nagarajan;
// MICRO 2016).
//
// The repository contains the complete system the paper describes and
// evaluates: a trace-driven multi-socket NUMA simulator (cores, cache
// hierarchy, die-stacked DRAM caches, interconnect, memory), the C3D
// coherence protocol and the naive snoopy/full-directory alternatives, an
// explicit-state model checker for the protocol, synthetic workload
// generators standing in for the paper's PARSEC/CloudSuite traces, and an
// experiment harness that regenerates every table and figure of the
// evaluation.
//
// Start with README.md for the layout and quickstart. The benchmarks in
// bench_test.go regenerate each experiment at a reduced scale:
//
//	go test -bench=. -benchmem .
//
// The public entry point is pkg/c3d: a Session facade with functional
// options exposing simulations, the paper's experiment campaigns, protocol
// verification and the trace codec behind one cancellable, error-returning
// API. The CLIs (cmd/c3dsim, cmd/c3dexp, cmd/c3dcheck, cmd/c3dtrace) and the
// cmd/c3dd job-service daemon are thin clients of that package. The
// simulator's machinery lives under internal/: internal/machine (the
// assembled machine), internal/workload (trace generators),
// internal/experiments (the paper's tables and figures) and internal/core
// (the C3D protocol itself).
package c3d
