// protocol-verify reproduces the §IV-C verification: it explores every
// reachable state of the C3D coherence protocol for a small configuration
// (the way the authors used Murϕ) and reports the invariants that hold:
// Single-Writer-Multiple-Reader, the data-value invariant (loads observe the
// most recent store; memory is never stale when no on-chip cache owns the
// block), and deadlock freedom.
//
//	go run ./examples/protocol-verify
package main

import (
	"context"
	"fmt"
	"log"

	"c3d/internal/core"
	"c3d/internal/mc"
)

func main() {
	configs := []core.ProtocolConfig{
		{Sockets: 2, LoadsPerCore: 1, StoresPerCore: 1},
		{Sockets: 2, LoadsPerCore: 2, StoresPerCore: 1},
		{Sockets: 2, LoadsPerCore: 1, StoresPerCore: 1, TrackDRAMCache: true},
	}
	for _, cfg := range configs {
		model := core.NewProtocolModel(cfg)
		report := mc.Run(context.Background(), model, mc.Options{})
		fmt.Println(report)
		if !report.Passed() {
			log.Fatal("verification failed")
		}
	}
	fmt.Println()
	fmt.Println("verified in every reachable state:")
	fmt.Println("  * at most one socket holds a block Modified, and no other socket")
	fmt.Println("    holds any copy while it does (SWMR)")
	fmt.Println("  * every load returns the most recently written value")
	fmt.Println("  * memory is up to date whenever no on-chip cache owns the block —")
	fmt.Println("    the property the clean DRAM caches exist to provide")
	fmt.Println("  * the protocol never deadlocks (every non-quiescent state can make progress)")
}
