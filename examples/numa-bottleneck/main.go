// numa-bottleneck reproduces the motivation study of §II on one workload:
// how many memory accesses leave the socket (Table I), and whether the
// bottleneck is inter-socket latency or bandwidth (Fig. 2), by running the
// baseline machine with each idealisation.
//
//	go run ./examples/numa-bottleneck [workload]
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"c3d/internal/machine"
	"c3d/internal/workload"
)

func main() {
	name := "canneal"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	spec, err := workload.Get(name)
	if err != nil {
		log.Fatal(err)
	}
	opts := workload.Options{Threads: 8, Scale: 512, AccessesPerThread: 10_000}
	trace, err := workload.Generate(spec, opts)
	if err != nil {
		log.Fatal(err)
	}

	run := func(mutate func(*machine.Config)) machine.RunResult {
		cfg := machine.DefaultConfig(4, machine.Baseline)
		cfg.Scale = opts.Scale
		cfg.CoresPerSocket = opts.Threads / cfg.Sockets
		cfg.MemPolicy = spec.PreferredPolicy
		if mutate != nil {
			mutate(&cfg)
		}
		m := machine.New(cfg)
		res, err := m.Run(context.Background(), trace, machine.DefaultRunOptions())
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	base := run(nil)
	fmt.Printf("== %s on the 4-socket baseline ==\n", name)
	fmt.Printf("remote memory accesses: %.1f%%  (Table I reports 61-77%%)\n\n",
		base.Counters.RemoteMemFraction()*100)

	fmt.Println("== where does the time go? (Fig. 2) ==")
	cases := []struct {
		label  string
		mutate func(*machine.Config)
	}{
		{"0 inter-socket latency", func(c *machine.Config) { c.ZeroHopLatency = true }},
		{"infinite memory bandwidth", func(c *machine.Config) { c.InfiniteMemBW = true }},
		{"infinite QPI bandwidth", func(c *machine.Config) { c.InfiniteLinkBW = true }},
	}
	for _, tc := range cases {
		res := run(tc.mutate)
		fmt.Printf("%-28s speedup %.3fx\n", tc.label, res.SpeedupOver(base))
	}
	fmt.Println("\nlatency, not bandwidth, is the NUMA bottleneck — which is why")
	fmt.Println("private DRAM caches (which remove off-socket trips) are the answer.")
}
