// design-space walks the §II-C design question — should multi-socket DRAM
// caches be shared (memory-side) or private? — and then the §III/§IV
// coherence question, by running one workload under every design and
// printing the comparison the paper's Figs. 6, 8 and 9 aggregate.
//
//	go run ./examples/design-space [workload]
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"c3d/internal/machine"
	"c3d/internal/workload"
)

func main() {
	name := "facesim"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	spec, err := workload.Get(name)
	if err != nil {
		log.Fatal(err)
	}
	opts := workload.Options{Threads: 8, Scale: 512, AccessesPerThread: 10_000}
	trace, err := workload.Generate(spec, opts)
	if err != nil {
		log.Fatal(err)
	}

	designs := []machine.Design{
		machine.Baseline, machine.SharedDRAM, machine.Snoopy,
		machine.FullDir, machine.C3D, machine.C3DFullDir,
	}
	results := make(map[machine.Design]machine.RunResult, len(designs))
	for _, d := range designs {
		cfg := machine.DefaultConfig(4, d)
		cfg.Scale = opts.Scale
		cfg.CoresPerSocket = opts.Threads / cfg.Sockets
		cfg.MemPolicy = spec.PreferredPolicy
		m := machine.New(cfg)
		res, err := m.Run(context.Background(), trace, machine.DefaultRunOptions())
		if err != nil {
			log.Fatal(err)
		}
		results[d] = res
	}

	base := results[machine.Baseline]
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "design\tspeedup\tDRAM$ hit\tremote reads\tinter-socket bytes\tremote DRAM$ probes\tbroadcasts\n")
	for _, d := range designs {
		r := results[d]
		fmt.Fprintf(w, "%v\t%.3f\t%.1f%%\t%.2fx\t%.2fx\t%d\t%d\n",
			d, r.SpeedupOver(base), r.DRAMCacheHitRate*100,
			r.NormalizedRemoteMemReads(base), r.NormalizedInterSocketTraffic(base),
			r.Counters.RemoteDRAMProbes, r.Counters.Broadcasts)
	}
	w.Flush()

	fmt.Println("\nreading the table:")
	fmt.Println(" - shared caches cut memory accesses but not off-socket traffic (§II-C);")
	fmt.Println(" - snoopy and full-dir probe remote DRAM caches on the critical path (§III);")
	fmt.Println(" - c3d keeps its caches clean, so reads never touch a remote DRAM cache,")
	fmt.Println("   and its only cost versus the idealised c3d-full-dir is broadcast traffic (§IV).")
}
