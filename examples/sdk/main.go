// SDK tour: build a Session from functional options, run one simulation,
// one paper experiment and the protocol verification — all through pkg/c3d,
// the same cancellable code path the CLIs and the c3dd daemon use.
//
//	go run ./examples/sdk
package main

import (
	"context"
	"fmt"
	"log"

	"c3d/pkg/c3d"
)

func main() {
	sess, err := c3d.New(
		c3d.WithSockets(4),
		c3d.WithDesign(c3d.C3D),
		c3d.WithThreads(8),
		c3d.WithScale(512),
		c3d.WithAccesses(10_000),
		c3d.WithProgress(func(e c3d.Event) { fmt.Println(e) }),
	)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// One simulation (streaming long-run mode by default).
	res, err := sess.Simulate(ctx, "streamcluster")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("IPC %.3f, remote memory %.1f%%\n",
		res.IPC(), res.Counters.RemoteMemFraction()*100)

	// A paper experiment; quick, restricted, deterministic.
	quick, err := sess.With(c3d.WithQuick(), c3d.WithWorkloads("streamcluster"))
	if err != nil {
		log.Fatal(err)
	}
	exp, err := quick.Experiment(ctx, "table1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(exp.Table.String())

	// Protocol verification (§IV-C).
	ver, err := sess.Verify(ctx, c3d.VerifyRequest{Sockets: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("verified:", ver.Passed())
}
