// Quickstart: build a 4-socket NUMA machine, run one workload under the
// baseline (no DRAM caches) and under C3D, and report the speedup and traffic
// reduction — the headline result of the paper in a dozen lines of API use.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"c3d/internal/machine"
	"c3d/internal/workload"
)

func main() {
	// A reduced-size run so the example finishes in seconds; drop the
	// overrides for the paper-scale configuration.
	opts := workload.Options{Threads: 8, Scale: 512, AccessesPerThread: 10_000}
	spec := workload.MustGet("streamcluster")
	trace, err := workload.Generate(spec, opts)
	if err != nil {
		log.Fatal(err)
	}

	run := func(design machine.Design) machine.RunResult {
		cfg := machine.DefaultConfig(4, design)
		cfg.Scale = opts.Scale
		cfg.CoresPerSocket = opts.Threads / cfg.Sockets
		cfg.MemPolicy = spec.PreferredPolicy
		m := machine.New(cfg)
		res, err := m.Run(context.Background(), trace, machine.DefaultRunOptions())
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	baseline := run(machine.Baseline)
	c3d := run(machine.C3D)

	fmt.Printf("workload            %s (%d threads)\n", spec.Name, trace.Threads())
	fmt.Printf("baseline            %s\n", baseline)
	fmt.Printf("c3d                 %s\n", c3d)
	fmt.Printf("speedup             %.2fx\n", c3d.SpeedupOver(baseline))
	fmt.Printf("remote reads kept   %.0f%%\n", c3d.NormalizedRemoteMemReads(baseline)*100)
	fmt.Printf("inter-socket bytes  %.0f%% of baseline\n", c3d.NormalizedInterSocketTraffic(baseline)*100)
}
