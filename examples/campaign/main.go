// Distributed-campaign tour: submit an ordered list of jobs to a campaign
// coordinator (`c3dd -coordinator`), watch it shard them across the worker
// fleet, fetch the results in submission order, then run the same sweep
// again and see the content-addressed cache answer it without dispatching
// anything.
//
// Start a fleet first (any worker count works; results are identical):
//
//	go run ./cmd/c3dd -addr :18331 &
//	go run ./cmd/c3dd -addr :18332 &
//	go run ./cmd/c3dd -coordinator -workers http://localhost:18331,http://localhost:18332 -addr :18330 &
//
// then:
//
//	go run ./examples/campaign -remote http://localhost:18330
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"c3d/pkg/c3d"
	"c3d/pkg/c3d/api"
)

func main() {
	remote := flag.String("remote", "http://localhost:18330", "campaign coordinator URL")
	flag.Parse()
	ctx := context.Background()
	client := api.NewClient(*remote)

	// What can this fleet run? The coordinator answers with the workers'
	// shared capability document, so bad specs are rejected before anything
	// is enqueued.
	caps, err := client.Capabilities(ctx)
	if err != nil {
		log.Fatalf("is a coordinator running at %s? %v", *remote, err)
	}
	fmt.Printf("fleet version %s: %d experiments, %d workloads, designs %v\n",
		caps.Version, len(caps.Experiments), len(caps.Workloads), caps.Designs)

	// A campaign is an ordered list of job specs — here two simulations at
	// different seeds and one quick experiment. Order is a promise: results
	// come back in exactly these positions, whichever worker ran what.
	params := api.Params{Quick: true, Workloads: []string{"streamcluster"}, Accesses: 2000}
	specs := []api.JobSpec{
		{Kind: api.KindSimulate, Workload: "streamcluster", Params: api.Params{Threads: 4, Scale: 512, Accesses: 500, Seed: 1}},
		{Kind: api.KindSimulate, Workload: "streamcluster", Params: api.Params{Threads: 4, Scale: 512, Accesses: 500, Seed: 2}},
		{Kind: api.KindExperiment, Experiments: []string{"table1"}, Params: params},
	}
	camp, err := c3d.SubmitCampaign(ctx, client, specs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("submitted %s (%d jobs)\n", camp.ID(), len(specs))

	st, err := camp.Wait(ctx)
	if err != nil {
		log.Fatal(err)
	}
	for _, j := range st.Jobs {
		where := j.Worker
		if j.CacheHit {
			where = "result cache"
		}
		fmt.Printf("  job %d: %-4s via %s (attempts %d)\n", j.Index, j.State, where, j.Attempts)
	}
	docs, err := camp.Results(ctx)
	if err != nil {
		log.Fatal(err)
	}
	for i, doc := range docs {
		fmt.Printf("  result %d: %d bytes\n", i, len(doc))
	}

	// RemoteSweep is the one-call fan-out c3dexp -remote uses: one job per
	// experiment id, assembled in id order. Run it twice — the second pass
	// is served from the coordinator's content-addressed cache.
	for pass := 1; pass <= 2; pass++ {
		results, err := c3d.RemoteSweep(ctx, client, c3d.Params(params), "table1", "fig6")
		if err != nil {
			log.Fatal(err)
		}
		h, err := client.Health(ctx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("sweep pass %d: %d results; cache %d entries, %d hits, %d misses\n",
			pass, len(results), h.Cache.Entries, h.Cache.Hits, h.Cache.Misses)
	}
}
