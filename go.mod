module c3d

go 1.24
