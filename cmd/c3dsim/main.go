// Command c3dsim runs a single simulation: one workload on one machine
// configuration under one coherence design, and prints the detailed
// statistics the experiments aggregate. It is a thin client of pkg/c3d — the
// same Session API the c3dd daemon serves.
//
// Usage:
//
//	c3dsim -workload streamcluster -design c3d -sockets 4
//	c3dsim -workload nutch -design baseline -policy INT -accesses 50000
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"c3d/pkg/c3d"
)

func main() {
	var (
		workloadName = flag.String("workload", "streamcluster", "workload name (see c3dtrace -list)")
		specArg      = flag.String("spec", "", "workload-spec document: a file path or preset:<name> (see c3dtrace -list); replaces -workload unless one is named explicitly")
		designName   = flag.String("design", "c3d", "coherence design: baseline, snoopy, full-dir, c3d, c3d-full-dir, shared")
		sockets      = flag.Int("sockets", 4, "number of sockets (2-16)")
		topology     = flag.String("topology", "", "fabric topology: p2p, ring, mesh or full (default: the socket count's default)")
		threads      = flag.Int("threads", 0, "workload threads (default: the workload's native count; clamped to the machine's cores)")
		accesses     = flag.Int("accesses", 0, "accesses per thread (default: the workload's native count)")
		scale        = flag.Int("scale", 0, "capacity/footprint scale factor (default 64)")
		policyName   = flag.String("policy", "", "NUMA placement policy: INT, FT1 or FT2 (default: the workload's preferred policy)")
		warmup       = flag.Float64("warmup", 0.25, "fraction of each thread's stream used as cache warm-up")
		sampleArg    = flag.String("sample", "", "SMARTS-style sampled simulation schedule, e.g. stretch=1400,warm=60,win=60[,seed=S]; reports 95% confidence half-widths and runs several times faster (default: full detailed simulation)")
		filter       = flag.Bool("broadcast-filter", false, "enable the §IV-D private-page broadcast filter (C3D only)")
		stream       = flag.Bool("stream", true, "generate the access streams incrementally: memory stays bounded at any -accesses (long-run mode); results are bit-identical to -stream=false")
		asJSON       = flag.Bool("json", false, "emit the full result (counters, topology, per-core stats) as JSON instead of the text summary")
		version      = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("c3dsim", c3d.Version())
		return
	}

	params := c3d.Params{
		Design:          *designName,
		Policy:          *policyName,
		Topology:        *topology,
		Sockets:         *sockets,
		Threads:         *threads,
		Accesses:        *accesses,
		Scale:           *scale,
		Warmup:          warmup,
		Stream:          stream,
		BroadcastFilter: *filter,
		Sampling:        *sampleArg,
	}
	runName := *workloadName
	if *specArg != "" {
		doc, err := c3d.ReadWorkloadSpec(*specArg)
		exitOn(err)
		params.Spec = doc
		// The spec is the workload unless -workload was given explicitly:
		// the flag's default must not shadow the document.
		explicit := false
		flag.Visit(func(f *flag.Flag) { explicit = explicit || f.Name == "workload" })
		if !explicit {
			runName = ""
		}
	}
	sess, err := params.Session()
	exitOn(err)

	// Ctrl-C cancels the run instead of killing the process mid-print.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	mode := "generating"
	if *stream {
		mode = "streaming"
	}
	progressOut := os.Stdout
	if *asJSON {
		// Keep stdout pure JSON.
		progressOut = os.Stderr
	}
	label := runName
	if label == "" {
		label = "workload spec " + *specArg
	}
	fmt.Fprintf(progressOut, "%s %s (design=%s sockets=%d)...\n", mode, label, *designName, *sockets)
	start := time.Now()
	res, err := sess.Simulate(ctx, runName)
	exitOn(err)
	if res.ThreadsClamped {
		// Surface the clamp: the run used fewer threads than asked for, and
		// pretending otherwise would misrepresent every per-thread statistic.
		fmt.Fprintf(os.Stderr, "c3dsim: note: -threads %d exceeds the machine's %d cores; ran with %d threads\n",
			res.RequestedThreads, res.Cores, res.EffectiveThreads)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		exitOn(enc.Encode(res))
		return
	}

	c := res.Counters
	fmt.Printf("\n%s on %d-socket %s (policy %v, topology %s), simulated in %v\n",
		res.Workload, res.Sockets, res.Design, res.Policy, res.Topology, time.Since(start).Round(time.Millisecond))
	fmt.Printf("  threads                %d\n", res.EffectiveThreads)
	fmt.Printf("  cycles                 %d\n", res.Cycles)
	fmt.Printf("  aggregate IPC          %.3f\n", res.IPC())
	fmt.Printf("  LLC miss rate          %.1f%%\n", c.LLCMissRate()*100)
	if res.Design.HasDRAMCache() {
		fmt.Printf("  DRAM cache hit rate    %.1f%%\n", res.DRAMCacheHitRate*100)
	}
	fmt.Printf("  memory reads / writes  %d / %d\n", c.MemReads, c.MemWrites)
	fmt.Printf("  remote memory fraction %.1f%%\n", c.RemoteMemFraction()*100)
	fmt.Printf("  mean load latency      %.1f cycles\n", c.MeanLoadLatency)
	fmt.Printf("  inter-socket traffic   %.2f MiB (%d messages)\n",
		float64(res.InterSocketBytes)/(1<<20), res.InterSocketMessages)
	fmt.Printf("  broadcasts             %d (avoided by filter: %d)\n", c.Broadcasts, res.BroadcastFilterElided)
	fmt.Printf("  directory recalls      %d\n", c.DirRecalls)
	if s := res.Sampling; s != nil {
		fmt.Printf("  sampled                %d windows, %.1f%% simulated in detail (%s)\n",
			s.Windows, float64(s.DetailedAccesses)/float64(s.TotalAccesses)*100, s.Spec)
		fmt.Printf("    CPI                  %s\n", s.Estimates.CPI.Format(3))
		fmt.Printf("    LLC miss rate        %s\n", s.Estimates.LLCMissRate.Format(4))
		fmt.Printf("    fabric B/access      %s\n", s.Estimates.FabricBytesPerAccess.Format(2))
		fmt.Printf("    remote mem fraction  %s\n", s.Estimates.RemoteMemFraction.Format(4))
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "c3dsim:", err)
		os.Exit(1)
	}
}
