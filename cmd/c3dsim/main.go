// Command c3dsim runs a single simulation: one workload on one machine
// configuration under one coherence design, and prints the detailed
// statistics the experiments aggregate.
//
// Usage:
//
//	c3dsim -workload streamcluster -design c3d -sockets 4
//	c3dsim -workload nutch -design baseline -policy INT -accesses 50000
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"c3d/internal/machine"
	"c3d/internal/numa"
	"c3d/internal/workload"
)

func main() {
	var (
		workloadName = flag.String("workload", "streamcluster", "workload name (see c3dtrace -list)")
		designName   = flag.String("design", "c3d", "coherence design: baseline, snoopy, full-dir, c3d, c3d-full-dir, shared")
		sockets      = flag.Int("sockets", 4, "number of sockets (2 or 4)")
		threads      = flag.Int("threads", 0, "workload threads (default: the workload's native count)")
		accesses     = flag.Int("accesses", 0, "accesses per thread (default: the workload's native count)")
		scale        = flag.Int("scale", workload.DefaultScale, "capacity/footprint scale factor")
		policyName   = flag.String("policy", "", "NUMA placement policy: INT, FT1 or FT2 (default: the workload's preferred policy)")
		warmup       = flag.Float64("warmup", 0.25, "fraction of each thread's stream used as cache warm-up")
		filter       = flag.Bool("broadcast-filter", false, "enable the §IV-D private-page broadcast filter (C3D only)")
		stream       = flag.Bool("stream", true, "generate the access streams incrementally: memory stays bounded at any -accesses (long-run mode); results are bit-identical to -stream=false")
	)
	flag.Parse()

	spec, err := workload.Get(*workloadName)
	exitOn(err)
	design, err := machine.ParseDesign(*designName)
	exitOn(err)
	policy := spec.PreferredPolicy
	if *policyName != "" {
		policy, err = numa.ParsePolicy(*policyName)
		exitOn(err)
	}

	cfg := machine.DefaultConfig(*sockets, design)
	cfg.Scale = *scale
	cfg.MemPolicy = policy
	cfg.EnableBroadcastFilter = *filter
	threadCount := spec.DefaultThreads
	if *threads > 0 {
		threadCount = *threads
	}
	if threadCount > cfg.Cores() {
		threadCount = cfg.Cores()
	}

	genOpts := workload.Options{
		Threads:           threadCount,
		Scale:             *scale,
		AccessesPerThread: *accesses,
	}
	m := machine.New(cfg)
	var (
		res   machine.RunResult
		start time.Time
	)
	if *stream {
		// Streaming long-run mode: records are generated on demand and never
		// materialised, so -accesses can be paper-scale (billions) without
		// the trace dictating resident memory. Skipping the stats pre-pass
		// also avoids walking the streams a third time.
		src, err := workload.NewSource(spec, genOpts)
		exitOn(err)
		fmt.Printf("streaming %s (threads=%d scale=%d, %d accesses/thread)...\n",
			spec.Name, src.Threads(), *scale, src.ThreadLen(0))
		start = time.Now()
		res, err = m.RunSource(src, machine.RunOptions{WarmupFraction: *warmup})
		exitOn(err)
	} else {
		fmt.Printf("generating %s (threads=%d scale=%d)...\n", spec.Name, threadCount, *scale)
		tr, err := workload.Generate(spec, genOpts)
		exitOn(err)
		ts := tr.ComputeStats()
		fmt.Printf("trace: %d accesses, %.1f%% reads, footprint %.1f MiB\n",
			ts.Accesses, ts.ReadFraction()*100, float64(ts.FootprintBytes())/(1<<20))
		start = time.Now()
		res, err = m.Run(tr, machine.RunOptions{WarmupFraction: *warmup})
		exitOn(err)
	}

	c := res.Counters
	fmt.Printf("\n%s on %d-socket %s (policy %v), simulated in %v\n",
		spec.Name, *sockets, design, policy, time.Since(start).Round(time.Millisecond))
	fmt.Printf("  cycles                 %d\n", res.Cycles)
	fmt.Printf("  aggregate IPC          %.3f\n", res.IPC())
	fmt.Printf("  LLC miss rate          %.1f%%\n", c.LLCMissRate()*100)
	if design.HasDRAMCache() {
		fmt.Printf("  DRAM cache hit rate    %.1f%%\n", res.DRAMCacheHitRate*100)
	}
	fmt.Printf("  memory reads / writes  %d / %d\n", c.MemReads, c.MemWrites)
	fmt.Printf("  remote memory fraction %.1f%%\n", c.RemoteMemFraction()*100)
	fmt.Printf("  mean load latency      %.1f cycles\n", c.MeanLoadLatency)
	fmt.Printf("  inter-socket traffic   %.2f MiB (%d messages)\n",
		float64(res.InterSocketBytes)/(1<<20), res.InterSocketMessages)
	fmt.Printf("  broadcasts             %d (avoided by filter: %d)\n", c.Broadcasts, res.BroadcastFilterElided)
	fmt.Printf("  directory recalls      %d\n", c.DirRecalls)
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "c3dsim:", err)
		os.Exit(1)
	}
}
