// Command benchjson converts `go test -bench` output into a JSON artefact so
// the repository's performance trajectory is tracked as data. It reads the
// benchmark log on stdin, echoes it unchanged to stdout (the human-readable
// log survives the pipe), and writes the parsed records to -out:
//
//	go test -bench=. -benchmem -run='^$' ./... | go run ./cmd/benchjson -out BENCH_$(git rev-parse --short HEAD).json
//
// `make bench-json` wraps exactly that invocation, and CI uploads the
// resulting BENCH_<sha>.json as a build artefact per commit.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"c3d/internal/benchfmt"
)

func main() {
	out := flag.String("out", "", "path of the JSON artefact to write (required)")
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -out is required")
		os.Exit(2)
	}

	// Tee stdin: the benchmark log stays visible while being parsed.
	results, err := benchfmt.Parse(io.TeeReader(os.Stdin, os.Stdout))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results on stdin")
		os.Exit(1)
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err == nil {
		err = f.Close()
	} else {
		f.Close()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmark records to %s\n", len(results), *out)
}
