// Command c3dcheck verifies the C3D coherence protocol the way §IV-C of the
// paper does with Murϕ: exhaustive explicit-state exploration of a small
// configuration, checking the Single-Writer-Multiple-Reader invariant, the
// data-value invariant (per-location sequential consistency) and absence of
// deadlock.
//
// Usage:
//
//	c3dcheck                         # 2- and 3-socket, both protocol variants
//	c3dcheck -sockets 2 -stores 2    # deeper 2-socket exploration
//	c3dcheck -max-states 1000000     # bound the larger searches
package main

import (
	"flag"
	"fmt"
	"os"

	"c3d/internal/experiments"
)

func main() {
	var (
		sockets   = flag.Int("sockets", 3, "largest socket count to verify")
		loads     = flag.Int("loads", 1, "loads per core")
		stores    = flag.Int("stores", 1, "stores per core")
		maxStates = flag.Int("max-states", 0, "bound the search (0 = exhaustive)")
		baseOnly  = flag.Bool("base-only", false, "verify only the base C3D protocol (skip the c3d-full-dir variant)")
	)
	flag.Parse()

	cfg := experiments.VerifyConfig{
		Sockets:               *sockets,
		LoadsPerCore:          *loads,
		StoresPerCore:         *stores,
		MaxStates:             *maxStates,
		IncludeFullDirVariant: !*baseOnly,
	}
	fmt.Println("verifying the C3D coherence protocol (SWMR, data-value, deadlock freedom)...")
	result := experiments.Verify(cfg)
	fmt.Print(result.Table().String())
	for _, rep := range result.Reports {
		if !rep.Passed() {
			fmt.Println()
			fmt.Println(rep.String())
		}
	}
	if !result.Passed() {
		fmt.Fprintln(os.Stderr, "c3dcheck: FAILED")
		os.Exit(1)
	}
	fmt.Println("all invariants hold in every reachable state")
}
