// Command c3dcheck verifies the C3D coherence protocol the way §IV-C of the
// paper does with Murϕ: exhaustive explicit-state exploration of a small
// configuration, checking the Single-Writer-Multiple-Reader invariant, the
// data-value invariant (per-location sequential consistency) and absence of
// deadlock. It is a thin client of pkg/c3d — the same Session API the c3dd
// daemon serves.
//
// Reports are bit-identical at any -parallel value, so -json output can be
// diffed across machines and worker counts (CI does exactly that).
//
// Usage:
//
//	c3dcheck                         # 2- and 3-socket, both protocol variants
//	c3dcheck -sockets 2 -stores 2    # deeper 2-socket exploration
//	c3dcheck -max-states 1000000     # bound the larger searches
//	c3dcheck -parallel 8 -v          # 8 workers, progress on stderr
//	c3dcheck -json                   # machine-readable, parallelism-independent
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"c3d/pkg/c3d"
)

func main() {
	var (
		sockets   = flag.Int("sockets", 3, "largest socket count to verify")
		loads     = flag.Int("loads", 1, "loads per core")
		stores    = flag.Int("stores", 1, "stores per core")
		maxStates = flag.Int("max-states", 0, "bound the search (0 = exhaustive)")
		baseOnly  = flag.Bool("base-only", false, "verify only the base C3D protocol (skip the c3d-full-dir variant)")
		parallel  = flag.Int("parallel", 0, "model-checker workers (0 = GOMAXPROCS; reports identical at any value)")
		asJSON    = flag.Bool("json", false, "emit the reports as a JSON array (deterministic: no wall-clock fields)")
		verbose   = flag.Bool("v", false, "print exploration progress to stderr")
		version   = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("c3dcheck", c3d.Version())
		return
	}

	opts := []c3d.Option{c3d.WithParallelism(*parallel)}
	if *verbose {
		opts = append(opts, c3d.WithProgress(func(e c3d.Event) {
			fmt.Fprintln(os.Stderr, e)
		}))
	}
	sess, err := c3d.New(opts...)
	exitOn(err)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if !*asJSON {
		fmt.Println("verifying the C3D coherence protocol (SWMR, data-value, deadlock freedom)...")
	}
	result, err := sess.Verify(ctx, c3d.VerifyRequest{
		Sockets:       *sockets,
		LoadsPerCore:  *loads,
		StoresPerCore: *stores,
		MaxStates:     *maxStates,
		BaseOnly:      *baseOnly,
	})
	if err != nil && !errors.Is(err, context.Canceled) {
		exitOn(err)
	}
	interrupted := errors.Is(err, context.Canceled)
	if *asJSON {
		exitOn(c3d.WriteReportsJSON(os.Stdout, result.Reports))
		if interrupted || !result.Passed() {
			os.Exit(1)
		}
		return
	}
	fmt.Print(result.Table().String())
	for _, rep := range result.Reports {
		if !rep.Passed() {
			fmt.Println()
			fmt.Println(rep.String())
		}
	}
	if interrupted {
		fmt.Fprintln(os.Stderr, "c3dcheck: interrupted")
		os.Exit(1)
	}
	if !result.Passed() {
		fmt.Fprintln(os.Stderr, "c3dcheck: FAILED")
		os.Exit(1)
	}
	fmt.Println("all invariants hold in every reachable state")
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "c3dcheck:", err)
		os.Exit(1)
	}
}
