// Command c3dtrace generates, inspects and converts the synthetic workload
// traces that drive the simulator.
//
// Usage:
//
//	c3dtrace -list                                   # show the workload registry
//	c3dtrace -workload canneal -summary              # generate and summarise
//	c3dtrace -workload canneal -out canneal.c3dt     # write the binary trace
//	c3dtrace -in canneal.c3dt -summary               # summarise an existing file
//	c3dtrace -workload nutch -dump 20                # print the first records
package main

import (
	"flag"
	"fmt"
	"os"

	"c3d/internal/trace"
	"c3d/internal/workload"
)

func main() {
	var (
		list         = flag.Bool("list", false, "list registered workloads and exit")
		workloadName = flag.String("workload", "", "workload to generate")
		inPath       = flag.String("in", "", "read an existing binary trace instead of generating")
		outPath      = flag.String("out", "", "write the trace in the binary format")
		threads      = flag.Int("threads", 0, "threads (default: the workload's native count)")
		accesses     = flag.Int("accesses", 0, "accesses per thread (default: the workload's native count)")
		scale        = flag.Int("scale", workload.DefaultScale, "footprint scale factor")
		summary      = flag.Bool("summary", true, "print a summary of the trace")
		dump         = flag.Int("dump", 0, "print the first N records of thread 0")
	)
	flag.Parse()

	if *list {
		fmt.Println("registered workloads:")
		for _, name := range workload.AllNames() {
			spec := workload.MustGet(name)
			fmt.Printf("  %-15s %-16s shared %5d MiB, %2d threads, read %.0f%%, comm %.0f%%\n",
				name, spec.Class, spec.SharedBytes/(1<<20), spec.DefaultThreads,
				spec.ReadFraction*100, spec.CommFraction*100)
		}
		return
	}

	var tr *trace.Trace
	switch {
	case *inPath != "":
		f, err := os.Open(*inPath)
		exitOn(err)
		defer f.Close()
		tr, err = trace.Decode(f)
		exitOn(err)
	case *workloadName != "":
		spec, err := workload.Get(*workloadName)
		exitOn(err)
		tr, err = workload.Generate(spec, workload.Options{
			Threads:           *threads,
			Scale:             *scale,
			AccessesPerThread: *accesses,
		})
		exitOn(err)
	default:
		fmt.Fprintln(os.Stderr, "c3dtrace: provide -workload or -in (or -list)")
		os.Exit(2)
	}

	if *summary {
		s := tr.ComputeStats()
		fmt.Printf("trace %q\n", s.Name)
		fmt.Printf("  threads            %d\n", s.Threads)
		fmt.Printf("  init accesses      %d\n", s.InitAccesses)
		fmt.Printf("  parallel accesses  %d\n", s.Accesses)
		fmt.Printf("  read fraction      %.1f%%\n", s.ReadFraction()*100)
		fmt.Printf("  footprint          %.1f MiB (%d pages)\n", float64(s.FootprintBytes())/(1<<20), s.FootprintPages)
		fmt.Printf("  instructions (est) %d\n", s.InstructionEstimate)
	}
	if *dump > 0 && tr.Threads() > 0 {
		n := *dump
		if n > len(tr.Parallel[0]) {
			n = len(tr.Parallel[0])
		}
		fmt.Printf("first %d records of thread 0:\n", n)
		for i := 0; i < n; i++ {
			r := tr.Parallel[0][i]
			fmt.Printf("  %s %v gap=%d\n", r.Kind, r.Addr, r.Gap)
		}
	}
	if *outPath != "" {
		f, err := os.Create(*outPath)
		exitOn(err)
		exitOn(tr.Encode(f))
		exitOn(f.Close())
		fmt.Printf("wrote %s\n", *outPath)
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "c3dtrace:", err)
		os.Exit(1)
	}
}
