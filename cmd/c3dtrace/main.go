// Command c3dtrace generates, inspects and converts the synthetic workload
// traces that drive the simulator. Everything flows through the SDK's
// streaming TraceSource interface, so generation, summarising and (v2)
// conversion run at bounded memory however long the trace is.
//
// Usage:
//
//	c3dtrace -list                                   # show the workload registry
//	c3dtrace -workload canneal -summary              # generate and summarise
//	c3dtrace -workload canneal -out canneal.c3dt     # write the binary trace (chunked v2)
//	c3dtrace -workload canneal -out c.c3dt -format v1  # write the legacy flat format
//	c3dtrace -in canneal.c3dt -summary               # summarise an existing file
//	c3dtrace -workload nutch -dump 20                # print the first records
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"c3d/pkg/c3d"
)

func main() {
	var (
		list         = flag.Bool("list", false, "list registered workloads and exit")
		workloadName = flag.String("workload", "", "workload to generate")
		inPath       = flag.String("in", "", "read an existing binary trace instead of generating")
		outPath      = flag.String("out", "", "write the trace in the binary format")
		format       = flag.String("format", "v2", "binary format for -out: v2 (chunked, streamable) or v1 (legacy flat)")
		threads      = flag.Int("threads", 0, "threads (default: the workload's native count)")
		accesses     = flag.Int("accesses", 0, "accesses per thread (default: the workload's native count)")
		scale        = flag.Int("scale", 0, "footprint scale factor (default 64)")
		summary      = flag.Bool("summary", true, "print a summary of the trace (suppressed when -out is given unless set explicitly: the stats pass walks the whole stream a second time)")
		dump         = flag.Int("dump", 0, "print the first N records of thread 0")
		version      = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("c3dtrace", c3d.Version())
		return
	}
	// setFlags answers "was this flag given explicitly" for the
	// conflicting-flag checks below.
	setFlags := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { setFlags[f.Name] = true })

	if *list {
		fmt.Println("registered workloads:")
		for _, w := range c3d.Workloads() {
			fmt.Printf("  %-15s %-16s shared %5d MiB, %2d threads, read %.0f%%, comm %.0f%%\n",
				w.Name, w.Class, w.SharedBytes/(1<<20), w.DefaultThreads,
				w.ReadFraction*100, w.CommFraction*100)
		}
		return
	}

	traceFormat, err := c3d.ParseTraceFormat(*format)
	if err != nil {
		fmt.Fprintln(os.Stderr, "c3dtrace:", err)
		os.Exit(2)
	}
	if *outPath == "" && setFlags["format"] {
		// -format only affects -out; reject the silently-ignored combination.
		fmt.Fprintln(os.Stderr, "c3dtrace: -format has no effect without -out")
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var src c3d.TraceSource
	switch {
	case *inPath != "":
		// -in replays a file: the generation flags would be silently ignored,
		// so combining them is an error rather than a surprise.
		var conflicting []string
		for _, name := range []string{"workload", "threads", "accesses", "scale"} {
			if setFlags[name] {
				conflicting = append(conflicting, "-"+name)
			}
		}
		if len(conflicting) > 0 {
			fmt.Fprintf(os.Stderr, "c3dtrace: -in replays an existing trace; the generation flags %v have no effect on it (drop them, or drop -in to generate)\n", conflicting)
			os.Exit(2)
		}
		tf, err := c3d.OpenTrace(*inPath)
		exitOn(err)
		defer tf.Close()
		src = tf
	case *workloadName != "":
		sess, err := c3d.New(
			c3d.WithThreads(*threads),
			c3d.WithAccesses(*accesses),
			c3d.WithScale(*scale),
		)
		exitOn(err)
		src, err = sess.TraceSource(*workloadName)
		exitOn(err)
	default:
		fmt.Fprintln(os.Stderr, "c3dtrace: provide -workload or -in (or -list)")
		os.Exit(2)
	}

	// Summarising costs a full pass over the streams. When the run's point is
	// -out, don't silently double the generation work; an explicit -summary
	// opts back in.
	doSummary := *summary && (*outPath == "" || setFlags["summary"])
	if doSummary {
		s, err := c3d.ComputeTraceStats(ctx, src)
		exitOn(err)
		fmt.Printf("trace %q\n", s.Name)
		fmt.Printf("  threads            %d\n", s.Threads)
		fmt.Printf("  init accesses      %d\n", s.InitAccesses)
		fmt.Printf("  parallel accesses  %d\n", s.Accesses)
		fmt.Printf("  read fraction      %.1f%%\n", s.ReadFraction()*100)
		fmt.Printf("  footprint          %.1f MiB (%d pages)\n", float64(s.FootprintBytes())/(1<<20), s.FootprintPages)
		fmt.Printf("  instructions (est) %d\n", s.InstructionEstimate)
	}
	if *dump > 0 && src.Threads() > 0 {
		rr := src.OpenThread(0)
		recs := make([]c3d.TraceRecord, 0, *dump)
		for len(recs) < *dump {
			rec, ok := rr.Next()
			if !ok {
				break
			}
			recs = append(recs, rec)
		}
		exitOn(rr.Err())
		fmt.Printf("first %d records of thread 0:\n", len(recs))
		for _, r := range recs {
			fmt.Printf("  %s %v gap=%d\n", r.Kind, r.Addr, r.Gap)
		}
	}
	if *outPath != "" {
		f, err := os.Create(*outPath)
		exitOn(err)
		exitOn(c3d.TraceEncode(ctx, f, src, traceFormat))
		exitOn(f.Close())
		fmt.Printf("wrote %s\n", *outPath)
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "c3dtrace:", err)
		os.Exit(1)
	}
}
