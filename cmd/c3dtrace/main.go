// Command c3dtrace generates, inspects and converts the synthetic workload
// traces that drive the simulator. Everything flows through the SDK's
// streaming TraceSource interface, so generation, summarising and (v2)
// conversion run at bounded memory however long the trace is.
//
// Usage:
//
//	c3dtrace -list                                   # show the workload registry and spec presets
//	c3dtrace -workload canneal -summary              # generate and summarise
//	c3dtrace -workload canneal -out canneal.c3dt     # write the binary trace (chunked v2)
//	c3dtrace -workload canneal -out c.c3dt -format v1  # write the legacy flat format
//	c3dtrace -in canneal.c3dt -summary               # summarise an existing file
//	c3dtrace -workload nutch -dump 20                # print the first records
//	c3dtrace -spec preset:bursty-tail -summary       # compile and run a workload spec
//	c3dtrace -ingest app.trace -out app.c3dt         # ingest an external text trace
//	c3dtrace -in app.c3dt -text-out app.trace        # export back to text
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"c3d/pkg/c3d"
)

func main() {
	var (
		list         = flag.Bool("list", false, "list registered workloads and exit")
		workloadName = flag.String("workload", "", "workload to generate")
		specArg      = flag.String("spec", "", "workload-spec document to compile and generate: a file path or preset:<name>")
		inPath       = flag.String("in", "", "read an existing binary trace instead of generating")
		ingestPath   = flag.String("ingest", "", "read an external text-format memory trace instead of generating (see the internal/wspec format reference)")
		outPath      = flag.String("out", "", "write the trace in the binary format")
		textOut      = flag.String("text-out", "", "write the trace in the text format (lossless round trip with -ingest)")
		format       = flag.String("format", "v2", "binary format for -out: v2 (chunked, streamable) or v1 (legacy flat)")
		threads      = flag.Int("threads", 0, "threads (default: the workload's native count)")
		accesses     = flag.Int("accesses", 0, "accesses per thread (default: the workload's native count)")
		scale        = flag.Int("scale", 0, "footprint scale factor (default 64)")
		summary      = flag.Bool("summary", true, "print a summary of the trace (suppressed when -out is given unless set explicitly: the stats pass walks the whole stream a second time)")
		dump         = flag.Int("dump", 0, "print the first N records of thread 0")
		version      = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("c3dtrace", c3d.Version())
		return
	}
	// setFlags answers "was this flag given explicitly" for the
	// conflicting-flag checks below.
	setFlags := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { setFlags[f.Name] = true })

	if *list {
		fmt.Println("registered workloads:")
		for _, w := range c3d.Workloads() {
			fmt.Printf("  %-15s %-16s shared %5d MiB, %2d threads, read %.0f%%, comm %.0f%%\n",
				w.Name, w.Class, w.SharedBytes/(1<<20), w.DefaultThreads,
				w.ReadFraction*100, w.CommFraction*100)
		}
		if presets := c3d.WorkloadSpecPresets(); len(presets) > 0 {
			fmt.Println("\nworkload-spec presets (run with -spec preset:<name>):")
			for _, name := range presets {
				fmt.Printf("  %s\n", name)
			}
		}
		return
	}

	traceFormat, err := c3d.ParseTraceFormat(*format)
	if err != nil {
		fmt.Fprintln(os.Stderr, "c3dtrace:", err)
		os.Exit(2)
	}
	if *outPath == "" && setFlags["format"] {
		// -format only affects -out; reject the silently-ignored combination.
		fmt.Fprintln(os.Stderr, "c3dtrace: -format has no effect without -out")
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	modes := 0
	for _, on := range []bool{*inPath != "", *ingestPath != "", *specArg != "", *workloadName != ""} {
		if on {
			modes++
		}
	}
	if modes > 1 {
		fmt.Fprintln(os.Stderr, "c3dtrace: -workload, -spec, -in and -ingest are mutually exclusive trace sources")
		os.Exit(2)
	}

	var src c3d.TraceSource
	switch {
	case *inPath != "", *ingestPath != "":
		// Replaying a file: the generation flags would be silently ignored,
		// so combining them is an error rather than a surprise.
		var conflicting []string
		for _, name := range []string{"threads", "accesses", "scale"} {
			if setFlags[name] {
				conflicting = append(conflicting, "-"+name)
			}
		}
		if len(conflicting) > 0 {
			fmt.Fprintf(os.Stderr, "c3dtrace: -in/-ingest replay an existing trace; the generation flags %v have no effect on it (drop them, or generate instead)\n", conflicting)
			os.Exit(2)
		}
		if *inPath != "" {
			tf, err := c3d.OpenTrace(*inPath)
			exitOn(err)
			defer tf.Close()
			src = tf
		} else {
			ts, err := c3d.OpenTextTrace(*ingestPath)
			exitOn(err)
			src = ts
		}
	case *specArg != "", *workloadName != "":
		opts := []c3d.Option{
			c3d.WithThreads(*threads),
			c3d.WithAccesses(*accesses),
			c3d.WithScale(*scale),
		}
		if *specArg != "" {
			doc, err := c3d.ReadWorkloadSpec(*specArg)
			exitOn(err)
			opts = append(opts, c3d.WithWorkloadSpec(doc))
		}
		sess, err := c3d.New(opts...)
		exitOn(err)
		src, err = sess.TraceSource(*workloadName)
		exitOn(err)
	default:
		fmt.Fprintln(os.Stderr, "c3dtrace: provide -workload, -spec, -in or -ingest (or -list)")
		os.Exit(2)
	}

	// Summarising costs a full pass over the streams. When the run's point is
	// -out, don't silently double the generation work; an explicit -summary
	// opts back in.
	doSummary := *summary && ((*outPath == "" && *textOut == "") || setFlags["summary"])
	if doSummary {
		s, err := c3d.ComputeTraceStats(ctx, src)
		exitOn(err)
		fmt.Printf("trace %q\n", s.Name)
		fmt.Printf("  threads            %d\n", s.Threads)
		fmt.Printf("  init accesses      %d\n", s.InitAccesses)
		fmt.Printf("  parallel accesses  %d\n", s.Accesses)
		fmt.Printf("  read fraction      %.1f%%\n", s.ReadFraction()*100)
		fmt.Printf("  footprint          %.1f MiB (%d pages)\n", float64(s.FootprintBytes())/(1<<20), s.FootprintPages)
		fmt.Printf("  instructions (est) %d\n", s.InstructionEstimate)
	}
	if *dump > 0 && src.Threads() > 0 {
		rr := src.OpenThread(0)
		recs := make([]c3d.TraceRecord, 0, *dump)
		for len(recs) < *dump {
			rec, ok := rr.Next()
			if !ok {
				break
			}
			recs = append(recs, rec)
		}
		exitOn(rr.Err())
		fmt.Printf("first %d records of thread 0:\n", len(recs))
		for _, r := range recs {
			fmt.Printf("  %s %v gap=%d\n", r.Kind, r.Addr, r.Gap)
		}
	}
	if *outPath != "" {
		f, err := os.Create(*outPath)
		exitOn(err)
		exitOn(c3d.TraceEncode(ctx, f, src, traceFormat))
		exitOn(f.Close())
		fmt.Printf("wrote %s\n", *outPath)
	}
	if *textOut != "" {
		f, err := os.Create(*textOut)
		exitOn(err)
		exitOn(c3d.WriteTextTrace(ctx, f, src))
		exitOn(f.Close())
		fmt.Printf("wrote %s\n", *textOut)
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "c3dtrace:", err)
		os.Exit(1)
	}
}
