// Command c3dd is the C3D job-service daemon: an HTTP/JSON front end over
// pkg/c3d that accepts simulation, experiment and verification jobs, bounds
// their concurrency, streams progress, and serves results that are
// byte-identical to the CLIs' output for the same parameters.
//
// Usage:
//
//	c3dd                              # listen on :8080
//	c3dd -addr 127.0.0.1:9090 -jobs 2
//
// API walkthrough (see the README "SDK & service" section for more):
//
//	curl localhost:8080/healthz
//	curl -X POST localhost:8080/v1/jobs -d '{
//	  "kind": "experiment",
//	  "experiments": ["table1"],
//	  "params": {"quick": true, "workloads": ["streamcluster"], "accesses": 2000}
//	}'
//	curl localhost:8080/v1/jobs/job-000001          # poll status
//	curl -N localhost:8080/v1/jobs/job-000001/events # follow progress (JSON lines)
//	curl localhost:8080/v1/jobs/job-000001/result    # == c3dexp -json bytes
//	curl -X DELETE localhost:8080/v1/jobs/job-000001 # cancel
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"time"

	"c3d/internal/server"
	"c3d/pkg/c3d"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		jobs    = flag.Int("jobs", 1, "jobs running concurrently (each job parallelises internally; see params.parallel)")
		queue   = flag.Int("queue", 256, "queued-job bound; submissions beyond it get 503")
		retain  = flag.Int("retain", 1024, "finished jobs kept for result fetches before eviction")
		version = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("c3dd", c3d.Version())
		return
	}

	srv := server.New(server.Config{
		MaxConcurrent: *jobs,
		QueueDepth:    *queue,
		MaxJobs:       *retain,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		httpSrv.Shutdown(shutdownCtx)
	}()

	fmt.Fprintf(os.Stderr, "c3dd %s listening on %s (max %d concurrent jobs)\n", c3d.Version(), *addr, *jobs)
	err := httpSrv.ListenAndServe()
	srv.Close()
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "c3dd:", err)
		os.Exit(1)
	}
}
