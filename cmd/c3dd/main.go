// Command c3dd is the C3D job-service daemon: an HTTP/JSON front end over
// pkg/c3d that accepts simulation, experiment and verification jobs, bounds
// their concurrency, streams progress, and serves results that are
// byte-identical to the CLIs' output for the same parameters.
//
// With -coordinator it becomes a campaign coordinator instead: a front door
// that shards campaigns (ordered lists of job specs) across a fleet of
// worker c3dd daemons, routes jobs through a pluggable policy, reassigns
// jobs whose worker died, serves repeats from a content-addressed result
// cache, and assembles results in submission order.
//
// Usage:
//
//	c3dd                              # worker daemon on :8080
//	c3dd -addr 127.0.0.1:9090 -jobs 2
//	c3dd -coordinator -workers http://w1:8080,http://w2:8080 \
//	     -policy least-loaded -rate 100 -burst 400
//	c3dd -coordinator -workers ... -journal /var/lib/c3d \
//	     -dispatch-timeout 90s -hedge-after 30s   # durable + fault-tolerant
//	c3dd -chaos flaky:7                           # deterministic fault injection
//
// Shutdown: SIGTERM drains — running jobs finish, new submissions answer 503
// and /healthz reports "draining" until -drain-timeout elapses; SIGINT
// cancels everything immediately. A coordinator with -journal records
// campaign admissions and job completions in an append-only JSONL log and
// keeps results in a disk-backed content-addressed cache, so a restart with
// the same -journal directory resumes interrupted campaigns without
// re-running finished jobs (see the README "Failure model & operations").
//
// Worker API walkthrough (see the README "SDK & service" section for more):
//
//	curl localhost:8080/healthz
//	curl -X POST localhost:8080/v1/jobs -d '{
//	  "kind": "experiment",
//	  "experiments": ["table1"],
//	  "params": {"quick": true, "workloads": ["streamcluster"], "accesses": 2000}
//	}'
//	curl localhost:8080/v1/jobs/job-000001          # poll status
//	curl -N localhost:8080/v1/jobs/job-000001/events # follow progress (JSON lines)
//	curl localhost:8080/v1/jobs/job-000001/result    # == c3dexp -json bytes
//	curl -X DELETE localhost:8080/v1/jobs/job-000001 # cancel
//
// Coordinator API (see the README "Distributed campaigns" section):
//
//	curl -X POST coordinator:8080/v1/campaigns -d '{"jobs":[...]}'
//	curl coordinator:8080/v1/campaigns/campaign-000001
//	curl coordinator:8080/v1/campaigns/campaign-000001/results
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"c3d/internal/campaign"
	"c3d/internal/faultify"
	"c3d/internal/server"
	"c3d/pkg/c3d"
	"c3d/pkg/c3d/api"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		jobs    = flag.Int("jobs", 1, "jobs running concurrently (each job parallelises internally; see params.parallel)")
		queue   = flag.Int("queue", 256, "queued-job bound; submissions beyond it get 503")
		retain  = flag.Int("retain", 1024, "finished jobs kept for result fetches before eviction")
		version = flag.Bool("version", false, "print the build version and exit")

		chaos = flag.String("chaos", "", fmt.Sprintf("inject deterministic faults from a seeded plan, as <plan>[:<seed>]: %s (testing only)",
			strings.Join(faultify.Plans(), ", ")))
		drainTimeout = flag.Duration("drain-timeout", time.Minute, "how long SIGTERM waits for running work before hard-cancelling")

		coordinator = flag.Bool("coordinator", false, "run as a campaign coordinator over a worker fleet instead of a worker")
		workers     = flag.String("workers", "", "comma-separated worker base URLs (coordinator mode, required)")
		policy      = flag.String("policy", campaign.DefaultPolicy,
			fmt.Sprintf("routing policy: %s (coordinator mode)", strings.Join(campaign.Policies(), ", ")))
		rate            = flag.Float64("rate", 50, "admission rate in jobs/second (coordinator mode)")
		burst           = flag.Int("burst", 200, "admission burst: max jobs admitted at once (coordinator mode)")
		cache           = flag.Int("cache", 1024, "content-addressed result cache entries (coordinator mode)")
		attempts        = flag.Int("attempts", 3, "dispatch attempts per job before its campaign fails (coordinator mode)")
		cooldown        = flag.Duration("cooldown", 2*time.Second, "bench time for a worker after a transient failure (coordinator mode)")
		journalDir      = flag.String("journal", "", "directory for the durable campaign journal + disk result cache; restart resumes interrupted campaigns (coordinator mode)")
		dispatchTimeout = flag.Duration("dispatch-timeout", 2*time.Minute, "per-job dispatch deadline; a hung worker is benched and the job reassigned; 0 disables (coordinator mode)")
		hedgeAfter      = flag.Duration("hedge-after", 0, "re-dispatch a straggling job to a second worker after this long, first result wins; 0 disables (coordinator mode)")
		probeTimeout    = flag.Duration("probe-timeout", 2*time.Second, "per-worker /healthz probe deadline (coordinator mode)")
		cancelGrace     = flag.Duration("cancel-grace", 2*time.Second, "deadline for best-effort worker-side job cancels (coordinator mode)")
	)
	flag.Parse()
	if *version {
		fmt.Println("c3dd", c3d.Version())
		return
	}

	var injector *faultify.Injector
	if *chaos != "" {
		in, err := faultify.Parse(*chaos)
		if err != nil {
			fmt.Fprintln(os.Stderr, "c3dd:", err)
			os.Exit(2)
		}
		injector = in
		fmt.Fprintf(os.Stderr, "c3dd: CHAOS MODE: injecting plan %q with seed %d\n", in.Plan().Name, in.Seed())
	}

	// SIGINT hard-stops (cancel everything, exit); SIGTERM drains (finish
	// running work, 503 new work, then exit).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	term := make(chan os.Signal, 1)
	signal.Notify(term, syscall.SIGTERM)

	var handler http.Handler
	var closeCore func()
	var drainCore func(context.Context) error
	if *coordinator {
		if *workers == "" {
			fmt.Fprintln(os.Stderr, "c3dd: -coordinator requires -workers url[,url...]")
			os.Exit(2)
		}
		var clientOpts []api.ClientOption
		if injector != nil {
			// Coordinator chaos is client-side: every dispatch to the fleet
			// runs through the fault-injecting transport.
			clientOpts = append(clientOpts, api.WithHTTPClient(&http.Client{Transport: injector.Transport(nil)}))
		}
		co, err := campaign.New(ctx, campaign.Config{
			Workers:         strings.Split(*workers, ","),
			Policy:          *policy,
			RatePerSec:      *rate,
			Burst:           *burst,
			CacheEntries:    *cache,
			MaxAttempts:     *attempts,
			Cooldown:        *cooldown,
			DispatchTimeout: *dispatchTimeout,
			HedgeAfter:      *hedgeAfter,
			ProbeTimeout:    *probeTimeout,
			CancelGrace:     *cancelGrace,
			JournalDir:      *journalDir,
			ClientOptions:   clientOpts,
			Logf:            log.New(os.Stderr, "c3dd: ", log.LstdFlags).Printf,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "c3dd:", err)
			os.Exit(1)
		}
		handler, closeCore, drainCore = co.Handler(), co.Close, co.Drain
		fmt.Fprintf(os.Stderr, "c3dd %s coordinating %d workers on %s (policy %s)\n",
			c3d.Version(), len(strings.Split(*workers, ",")), *addr, *policy)
	} else {
		srv := server.New(server.Config{
			MaxConcurrent: *jobs,
			QueueDepth:    *queue,
			MaxJobs:       *retain,
		})
		handler, closeCore, drainCore = srv.Handler(), srv.Close, srv.Drain
		if injector != nil {
			// Worker chaos is server-side: requests fault before reaching the
			// scheduler (except /v1/capabilities, which faultify exempts so
			// coordinators can always handshake).
			handler = injector.Middleware(handler)
		}
		fmt.Fprintf(os.Stderr, "c3dd %s listening on %s (max %d concurrent jobs)\n", c3d.Version(), *addr, *jobs)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: handler}
	go func() {
		select {
		case <-term:
			// Graceful drain: the HTTP listener stays up while work finishes,
			// so health probes see "draining" and submissions get 503s
			// instead of connection refusals.
			fmt.Fprintf(os.Stderr, "c3dd: SIGTERM: draining (up to %s)\n", *drainTimeout)
			drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
			if err := drainCore(drainCtx); err != nil {
				fmt.Fprintln(os.Stderr, "c3dd: drain incomplete:", err)
			}
			cancel()
		case <-ctx.Done():
		}
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		httpSrv.Shutdown(shutdownCtx)
	}()

	err := httpSrv.ListenAndServe()
	closeCore()
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "c3dd:", err)
		os.Exit(1)
	}
}
