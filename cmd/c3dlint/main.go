// Command c3dlint runs the repo's custom static analyzers — the
// compile-time half of the invariants the CI gates check dynamically:
//
//	determinism   no unsorted map ranges / global rand / wall-clock reads
//	              in result-producing packages
//	ctxcheck      long-running loops stay cancellable
//	registry      Register calls only at package initialisation
//	wirecompat    pkg/c3d/api: explicit json tags, stdlib-only imports
//	errenvelope   API errors only through the uniform envelope helper
//
// Usage:
//
//	c3dlint [-json] [packages]
//
// With no arguments (or "./...") it analyzes every package of the module.
// Findings print as file:line:col: [analyzer] message and exit status 1;
// -json emits a machine-readable array of {file,line,col,analyzer,message}
// objects (paths relative to the module root) so findings can be diffed per
// commit like BENCH_<sha>.json. Sites that are deliberate carry a
// //c3dlint:allow analyzer(reason) directive on or above the flagged line;
// the reason is mandatory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"c3d/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array (file, line, col, analyzer, message)")
	help := flag.Bool("help-analyzers", false, "print each analyzer's documentation and exit")
	flag.Parse()

	if *help {
		for _, a := range analysis.All() {
			fmt.Printf("%s:\n%s\n\n", a.Name, a.Doc)
		}
		return
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fatal(err)
	}

	var pkgs []*analysis.Package
	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}
	for _, arg := range args {
		switch {
		case arg == "./..." || arg == "...":
			all, err := loader.ModulePackages()
			if err != nil {
				fatal(err)
			}
			pkgs = append(pkgs, all...)
		default:
			p, err := loader.Load(importPath(loader, arg))
			if err != nil {
				fatal(err)
			}
			pkgs = append(pkgs, p)
		}
	}

	diags, err := analysis.RunAnalyzers(loader.Fset(), pkgs, analysis.All())
	if err != nil {
		fatal(err)
	}
	// Report paths relative to the module root: stable across checkouts,
	// diffable across commits.
	for i := range diags {
		if rel, err := filepath.Rel(loader.ModuleDir, diags[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].File = filepath.ToSlash(rel)
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "c3dlint: %d finding(s)\n", len(diags))
		}
		os.Exit(1)
	}
}

// importPath turns a package argument (./internal/server, internal/server,
// or a full import path) into the module-rooted import path.
func importPath(l *analysis.Loader, arg string) string {
	if arg == "." {
		return l.ModulePath
	}
	if strings.HasPrefix(arg, l.ModulePath) {
		return arg
	}
	clean := filepath.ToSlash(filepath.Clean(strings.TrimPrefix(arg, "./")))
	return l.ModulePath + "/" + clean
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "c3dlint:", err)
	os.Exit(2)
}
