// Command c3dexp runs the paper-reproduction experiments: every table and
// figure of the C3D evaluation, by id or all of them.
//
// Usage:
//
//	c3dexp -exp fig6                 # one experiment at paper scale
//	c3dexp -exp all -quick           # the full set at smoke-test scale
//	c3dexp -list                     # show available experiments
//	c3dexp -exp fig8 -workloads streamcluster,canneal -accesses 60000
//	c3dexp -exp fig6 -quick -json    # machine-readable output for CI tooling
//	c3dexp -exp all -quick -parallel 4
//
// Paper-scale runs (32 threads, 200k accesses/thread) take tens of seconds
// to a few minutes per machine configuration on one host core; -quick or
// -accesses trade precision for time. Results are deterministic: the same
// flags produce byte-identical -json output at any -parallel value.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"c3d/internal/experiments"
)

// jsonResult is the machine-readable record emitted per experiment.
type jsonResult struct {
	ID          string      `json:"id"`
	Paper       string      `json:"paper"`
	Description string      `json:"description"`
	Table       interface{} `json:"table"`
}

func main() {
	var (
		exp       = flag.String("exp", "", "experiment id to run (see -list), or 'all'")
		list      = flag.Bool("list", false, "list available experiments and exit")
		quick     = flag.Bool("quick", false, "use the reduced quick configuration")
		threads   = flag.Int("threads", 0, "override the number of workload threads")
		accesses  = flag.Int("accesses", 0, "override accesses per thread")
		scale     = flag.Int("scale", 0, "override the capacity/footprint scale factor")
		sockets   = flag.Int("sockets", 0, "override the socket count (where the experiment allows it)")
		workloads = flag.String("workloads", "", "comma-separated workload subset (default: the paper's nine)")
		parallel  = flag.Int("parallel", 0, "concurrent simulations (0 = GOMAXPROCS; results identical at any value)")
		stream    = flag.Bool("stream", false, "drive simulations from streaming generators (bounded memory at any -accesses; results identical)")
		seed      = flag.Int64("seed", 0, "workload generation seed (0 reproduces the default runs)")
		asJSON    = flag.Bool("json", false, "emit a JSON array of results instead of text tables")
		asCSV     = flag.Bool("csv", false, "emit each result table as CSV instead of text")
		verbose   = flag.Bool("v", false, "print progress for every completed simulation")
	)
	flag.Parse()

	if *list {
		fmt.Println("available experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-8s %-9s %s\n", e.ID, e.Paper, e.Description)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "c3dexp: -exp is required (use -list to see the choices)")
		os.Exit(2)
	}
	if *asJSON && *asCSV {
		fmt.Fprintln(os.Stderr, "c3dexp: -json and -csv are mutually exclusive")
		os.Exit(2)
	}
	if *asCSV && *exp == "all" {
		// Tables have different column sets, so concatenating them would be
		// malformed CSV; -json handles multi-experiment output.
		fmt.Fprintln(os.Stderr, "c3dexp: -csv needs a single experiment (use -json for -exp all)")
		os.Exit(2)
	}

	cfg := experiments.DefaultConfig()
	if *quick {
		cfg = experiments.QuickConfig()
	}
	if *threads > 0 {
		cfg.Threads = *threads
	}
	if *accesses > 0 {
		cfg.AccessesPerThread = *accesses
	}
	if *scale > 0 {
		cfg.Scale = *scale
	}
	if *sockets > 0 {
		cfg.Sockets = *sockets
	}
	if *workloads != "" {
		cfg.Workloads = strings.Split(*workloads, ",")
	}
	cfg.Parallelism = *parallel
	cfg.Streaming = *stream
	cfg.Seed = *seed
	if *verbose {
		cfg.Progress = func(line string) { fmt.Fprintln(os.Stderr, line) }
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	var jsonOut []jsonResult
	for _, id := range ids {
		entry, err := experiments.Lookup(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, "c3dexp:", err)
			os.Exit(2)
		}
		start := time.Now()
		result, err := entry.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "c3dexp: %s: %v\n", id, err)
			os.Exit(1)
		}
		switch {
		case *asJSON:
			jsonOut = append(jsonOut, jsonResult{
				ID: entry.ID, Paper: entry.Paper, Description: entry.Description,
				Table: result.Table(),
			})
		case *asCSV:
			if err := result.Table().WriteCSV(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "c3dexp: %s: %v\n", id, err)
				os.Exit(1)
			}
		default:
			fmt.Printf("== %s (%s): %s ==\n", entry.ID, entry.Paper, entry.Description)
			fmt.Print(result.Table().String())
			fmt.Printf("-- completed in %v --\n\n", time.Since(start).Round(time.Millisecond))
		}
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "c3dexp:", err)
			os.Exit(1)
		}
	}
}
