// Command c3dexp runs the paper-reproduction experiments: every table and
// figure of the C3D evaluation, by id or all of them. It is a thin client of
// pkg/c3d — the same Session API the c3dd daemon serves, so `c3dexp -json`
// output is byte-identical to the daemon's result endpoint for the same job.
//
// Usage:
//
//	c3dexp -exp fig6                 # one experiment at paper scale
//	c3dexp -exp all -quick           # the full set at smoke-test scale
//	c3dexp -list                     # show available experiments
//	c3dexp -exp fig8 -workloads streamcluster,canneal -accesses 60000
//	c3dexp -exp fig6 -quick -json    # machine-readable output for CI tooling
//	c3dexp -exp all -quick -parallel 4
//	c3dexp -exp all -quick -json -remote http://coordinator:8080
//
// Paper-scale runs (32 threads, 200k accesses/thread) take tens of seconds
// to a few minutes per machine configuration on one host core; -quick or
// -accesses trade precision for time. Results are deterministic: the same
// flags produce byte-identical -json output at any -parallel value.
//
// With -remote the experiments run on a campaign coordinator's worker fleet
// (`c3dd -coordinator`) instead of this host: one job per experiment id,
// sharded across workers, assembled in id order. Determinism makes the move
// invisible — remote -json output is byte-identical to a local run with the
// same flags, and repeated sweeps are served from the coordinator's
// content-addressed result cache.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"c3d/pkg/c3d"
	"c3d/pkg/c3d/api"
)

func main() {
	var (
		exp       = flag.String("exp", "", "experiment id to run (see -list), or 'all'")
		list      = flag.Bool("list", false, "list available experiments and exit")
		quick     = flag.Bool("quick", false, "use the reduced quick configuration")
		threads   = flag.Int("threads", 0, "override the number of workload threads")
		accesses  = flag.Int("accesses", 0, "override accesses per thread")
		scale     = flag.Int("scale", 0, "override the capacity/footprint scale factor")
		sockets   = flag.Int("sockets", 0, "override the socket count (where the experiment allows it)")
		topology  = flag.String("topology", "", "fabric topology: p2p, ring, mesh or full (default: each machine's socket-count default; the scaling experiment sweeps its own grid)")
		workloads = flag.String("workloads", "", "comma-separated workload subset (default: the paper's nine)")
		specArg   = flag.String("spec", "", "workload-spec document: a file path or preset:<name>; runs the campaign on the spec's workload instead of the registry suite (combine with -workloads to mix)")
		parallel  = flag.Int("parallel", 0, "concurrent simulations (0 = GOMAXPROCS; results identical at any value)")
		stream    = flag.Bool("stream", false, "drive simulations from streaming generators (bounded memory at any -accesses; results identical)")
		sampleArg = flag.String("sample", "", "SMARTS-style sampled simulation schedule, e.g. stretch=1400,warm=60,win=60[,seed=S]; result cells carry 95% confidence half-widths and campaigns run several times faster (default: full detailed simulation)")
		seed      = flag.Int64("seed", 0, "workload generation seed (0 reproduces the default runs)")
		asJSON    = flag.Bool("json", false, "emit a JSON array of results instead of text tables")
		asCSV     = flag.Bool("csv", false, "emit each result table as CSV instead of text")
		verbose   = flag.Bool("v", false, "print progress for every completed simulation")
		remote    = flag.String("remote", "", "campaign coordinator URL: run experiments on its worker fleet instead of locally")
		version   = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("c3dexp", c3d.Version())
		return
	}

	if *list {
		if *remote != "" {
			ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
			defer stop()
			caps, err := api.NewClient(*remote).Capabilities(ctx)
			exitOn(err)
			fmt.Printf("experiments offered by %s (version %s):\n", *remote, caps.Version)
			for _, e := range caps.Experiments {
				fmt.Printf("  %-8s %-9s %s\n", e.ID, e.Paper, e.Description)
			}
			return
		}
		fmt.Println("available experiments:")
		for _, e := range c3d.Experiments() {
			fmt.Printf("  %-8s %-9s %s\n", e.ID, e.Paper, e.Description)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "c3dexp: -exp is required (use -list to see the choices)")
		os.Exit(2)
	}
	if *asJSON && *asCSV {
		fmt.Fprintln(os.Stderr, "c3dexp: -json and -csv are mutually exclusive")
		os.Exit(2)
	}
	if *asCSV && *exp == "all" {
		// Tables have different column sets, so concatenating them would be
		// malformed CSV; -json handles multi-experiment output.
		fmt.Fprintln(os.Stderr, "c3dexp: -csv needs a single experiment (use -json for -exp all)")
		os.Exit(2)
	}

	params := c3d.Params{
		Quick:       *quick,
		Sockets:     *sockets,
		Topology:    *topology,
		Threads:     *threads,
		Accesses:    *accesses,
		Scale:       *scale,
		Parallelism: *parallel,
		Stream:      stream,
		Seed:        *seed,
		Sampling:    *sampleArg,
	}
	if *workloads != "" {
		params.Workloads = strings.Split(*workloads, ",")
	}
	if *specArg != "" {
		doc, err := c3d.ReadWorkloadSpec(*specArg)
		exitOn(err)
		params.Spec = doc
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *remote != "" {
		runRemote(ctx, *remote, params, *exp, *asJSON, *asCSV)
		return
	}

	var extra []c3d.Option
	if *verbose {
		extra = append(extra, c3d.WithProgress(func(e c3d.Event) {
			fmt.Fprintln(os.Stderr, e)
		}))
	}
	sess, err := params.Session(extra...)
	exitOn(err)

	ids := []string{*exp}
	if *exp == "all" {
		ids = c3d.ExperimentIDs()
	}
	var results []c3d.ExperimentResult
	for _, id := range ids {
		start := time.Now()
		result, err := sess.Experiment(ctx, id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "c3dexp: %s: %v\n", id, err)
			os.Exit(1)
		}
		switch {
		case *asJSON:
			results = append(results, *result)
		case *asCSV:
			if err := result.Table.WriteCSV(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "c3dexp: %s: %v\n", id, err)
				os.Exit(1)
			}
		default:
			fmt.Printf("== %s (%s): %s ==\n", result.ID, result.Paper, result.Description)
			fmt.Print(result.Table.String())
			fmt.Printf("-- completed in %v --\n\n", time.Since(start).Round(time.Millisecond))
		}
	}
	if *asJSON {
		exitOn(c3d.WriteResultsJSON(os.Stdout, results))
	}
}

// runRemote executes the sweep on a campaign coordinator's fleet via
// c3d.RemoteSweep and prints in the same formats as the local path. The
// -json bytes are identical to a local run with the same flags — assembly is
// in experiment order and every job is deterministic.
func runRemote(ctx context.Context, remote string, params c3d.Params, exp string, asJSON, asCSV bool) {
	start := time.Now()
	results, err := c3d.RemoteSweep(ctx, api.NewClient(remote), params, exp)
	exitOn(err)
	switch {
	case asJSON:
		exitOn(c3d.WriteResultsJSON(os.Stdout, results))
	case asCSV:
		for _, result := range results {
			exitOn(result.Table.WriteCSV(os.Stdout))
		}
	default:
		for _, result := range results {
			fmt.Printf("== %s (%s): %s ==\n", result.ID, result.Paper, result.Description)
			fmt.Print(result.Table.String())
			fmt.Println()
		}
		fmt.Printf("-- %d experiment(s) completed remotely on %s in %v --\n",
			len(results), remote, time.Since(start).Round(time.Millisecond))
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "c3dexp:", err)
		os.Exit(1)
	}
}
