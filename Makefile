# Make targets mirror .github/workflows/ci.yml exactly, so a green `make ci`
# locally means a green CI run — the two cannot drift because CI calls these
# targets.

GO ?= go

# bench-json iteration count: 1x in CI (trend tracking tolerates noise; speed
# matters), raise locally (e.g. BENCHTIME=2s) for stable numbers.
BENCHTIME ?= 1x
GIT_SHA := $(shell git rev-parse --short HEAD 2>/dev/null || echo nogit)

# Build stamping: every binary's -version flag reports these via pkg/c3d.
VERSION ?= $(shell git describe --tags --always --dirty 2>/dev/null || echo dev)
BUILD_DATE := $(shell date -u +%Y-%m-%dT%H:%M:%SZ)
LDFLAGS := -X c3d/pkg/c3d.buildVersion=$(VERSION) \
           -X c3d/pkg/c3d.buildCommit=$(GIT_SHA) \
           -X c3d/pkg/c3d.buildDate=$(BUILD_DATE)

.PHONY: all build binaries test race lint lint-fmt lint-analyzers vet bench bench-smoke bench-json determinism topology-smoke trace-roundtrip fuzz-smoke daemon-smoke fleet-smoke chaos-smoke spec-smoke sample-smoke ci

all: build

build:
	$(GO) build ./...

# Version-stamped binaries for all five tools, under ./bin.
binaries:
	$(GO) build -ldflags "$(LDFLAGS)" -o bin/ ./cmd/c3dsim ./cmd/c3dexp ./cmd/c3dcheck ./cmd/c3dtrace ./cmd/c3dd

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

lint: lint-fmt vet lint-analyzers

# gofmt -l prints offending files; fail if any.
lint-fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# The five c3dlint analyzers (determinism, ctxcheck, registry, wirecompat,
# errenvelope): compile-time enforcement of the invariants the smoke gates
# below check dynamically. Stdlib-only, so it rides the same build cache as
# everything else; the whole run is a few seconds warm.
lint-analyzers:
	$(GO) run ./cmd/c3dlint ./...

# Full benchmark run (minutes): every paper artefact plus micro-benchmarks.
bench:
	$(GO) test -bench=. -benchmem ./...

# One iteration of every benchmark: catches hot-path regressions that panic,
# error or allocate wildly, without paying for statistically stable numbers.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -benchmem -run=^$$ ./...

# The bench-smoke pass piped into the trajectory parser: one benchmark run
# serves both as the crash/alloc smoke test and as the per-commit
# BENCH_<sha>.json artefact (name, ns/op, allocs/op, custom metrics) that CI
# uploads so the perf trajectory is diffable across commits.
bench-json:
	$(GO) test -bench=. -benchtime=$(BENCHTIME) -benchmem -run=^$$ ./... | $(GO) run ./cmd/benchjson -out BENCH_$(GIT_SHA).json

# Byte-identical sweep output across parallelism levels AND across the
# streaming/materialised trace paths, exercised through the real CLI.
determinism:
	$(GO) run ./cmd/c3dexp -exp table1 -quick -workloads streamcluster -accesses 2000 -json -parallel 1 > /tmp/c3d-sweep-p1.json
	$(GO) run ./cmd/c3dexp -exp table1 -quick -workloads streamcluster -accesses 2000 -json > /tmp/c3d-sweep-pN.json
	cmp /tmp/c3d-sweep-p1.json /tmp/c3d-sweep-pN.json
	@echo "sweep output bit-identical across parallelism levels"
	$(GO) run ./cmd/c3dexp -exp table1 -quick -workloads streamcluster -accesses 2000 -json -stream > /tmp/c3d-sweep-stream.json
	cmp /tmp/c3d-sweep-p1.json /tmp/c3d-sweep-stream.json
	@echo "sweep output bit-identical between streaming and materialised traces"
	$(GO) run ./cmd/c3dcheck -sockets 3 -max-states 60000 -json -parallel 1 > /tmp/c3d-mc-p1.json
	$(GO) run ./cmd/c3dcheck -sockets 3 -max-states 60000 -json -parallel 8 > /tmp/c3d-mc-p8.json
	cmp /tmp/c3d-mc-p1.json /tmp/c3d-mc-p8.json
	@echo "model-check reports bit-identical across parallelism levels"

# Generalized-fabric gate through the real CLI: one quick workload on the
# mesh and fully-connected topologies at 8 sockets, each byte-compared
# across parallelism levels — the topology registry must be as deterministic
# as the paper's shapes.
topology-smoke:
	$(GO) run ./cmd/c3dexp -exp fig8 -quick -sockets 8 -topology mesh -workloads streamcluster -accesses 2000 -json -parallel 1 > /tmp/c3d-topo-mesh-p1.json
	$(GO) run ./cmd/c3dexp -exp fig8 -quick -sockets 8 -topology mesh -workloads streamcluster -accesses 2000 -json -parallel 8 > /tmp/c3d-topo-mesh-p8.json
	cmp /tmp/c3d-topo-mesh-p1.json /tmp/c3d-topo-mesh-p8.json
	$(GO) run ./cmd/c3dexp -exp fig8 -quick -sockets 8 -topology full -workloads streamcluster -accesses 2000 -json -parallel 1 > /tmp/c3d-topo-full-p1.json
	$(GO) run ./cmd/c3dexp -exp fig8 -quick -sockets 8 -topology full -workloads streamcluster -accesses 2000 -json -parallel 8 > /tmp/c3d-topo-full-p8.json
	cmp /tmp/c3d-topo-full-p1.json /tmp/c3d-topo-full-p8.json
	@echo "mesh@8 and fully-connected@8 results bit-identical across parallelism levels"

# Trace codec round-trip gate through the real CLI: generate → encode →
# decode must preserve every stream statistic bit-for-bit.
trace-roundtrip:
	$(GO) run ./cmd/c3dtrace -workload streamcluster -threads 8 -accesses 2000 -summary=false -out /tmp/c3d-trace.c3dt
	$(GO) run ./cmd/c3dtrace -workload streamcluster -threads 8 -accesses 2000 > /tmp/c3d-trace-gen.txt
	$(GO) run ./cmd/c3dtrace -in /tmp/c3d-trace.c3dt > /tmp/c3d-trace-dec.txt
	cmp /tmp/c3d-trace-gen.txt /tmp/c3d-trace-dec.txt
	@echo "trace generate → encode → decode round trip bit-identical"

# Short fuzz pass over the trace decoder: corrupt and truncated inputs must
# produce errors, never panics or unbounded allocations.
fuzz-smoke:
	$(GO) test -run=^$$ -fuzz=FuzzDecode -fuzztime=10s ./internal/trace

# Daemon gate through the real binary: build c3dd, start it, and drive it end
# to end with the Go smoke driver — healthz, capabilities, error envelope,
# submit, event stream, result — through the public api.Client (the curl/sed
# sequences this gate used before the wire types went public are now the
# client's job). The fetched result must cmp equal to `c3dexp -json` with the
# same parameters: the server and the CLI are the same code path down to the
# byte.
daemon-smoke:
	$(GO) build -ldflags "$(LDFLAGS)" -o /tmp/c3dd-smoke ./cmd/c3dd
	/tmp/c3dd-smoke -version
	/tmp/c3dd-smoke -addr 127.0.0.1:18321 & echo $$! > /tmp/c3dd-smoke.pid; \
	trap 'kill $$(cat /tmp/c3dd-smoke.pid) 2>/dev/null' EXIT; \
	$(GO) run ./internal/smoketest/daemon -url http://127.0.0.1:18321 > /tmp/c3dd-smoke-result.json; \
	$(GO) run ./cmd/c3dexp -exp table1 -quick -workloads streamcluster -accesses 2000 -json > /tmp/c3dd-smoke-cli.json; \
	cmp /tmp/c3dd-smoke-result.json /tmp/c3dd-smoke-cli.json
	@echo "daemon result bit-identical to c3dexp -json (driven via api.Client)"

# Distributed-campaign gate through the real binaries: two worker daemons plus
# a coordinator, `c3dexp -remote` fanning fig6 out over the fleet. The remote
# bytes must cmp equal to the local run (distribution is invisible), and a
# second identical sweep must be answered from the content-addressed result
# cache — the fleet verifier asserts the hit counters moved instead of jobs.
fleet-smoke:
	$(GO) build -ldflags "$(LDFLAGS)" -o /tmp/c3dd-fleet ./cmd/c3dd
	/tmp/c3dd-fleet -addr 127.0.0.1:18331 & echo $$! > /tmp/c3dd-fleet-w1.pid; \
	/tmp/c3dd-fleet -addr 127.0.0.1:18332 & echo $$! > /tmp/c3dd-fleet-w2.pid; \
	trap 'kill $$(cat /tmp/c3dd-fleet-w1.pid) $$(cat /tmp/c3dd-fleet-w2.pid) $$(cat /tmp/c3dd-fleet-co.pid) 2>/dev/null' EXIT; \
	for i in $$(seq 1 50); do \
		curl -sf 127.0.0.1:18331/healthz >/dev/null && curl -sf 127.0.0.1:18332/healthz >/dev/null && break; sleep 0.2; done; \
	/tmp/c3dd-fleet -coordinator -workers http://127.0.0.1:18331,http://127.0.0.1:18332 -addr 127.0.0.1:18330 & echo $$! > /tmp/c3dd-fleet-co.pid; \
	for i in $$(seq 1 50); do \
		curl -sf 127.0.0.1:18330/healthz >/dev/null && break; sleep 0.2; done; \
	$(GO) run ./cmd/c3dexp -exp fig6 -quick -json > /tmp/c3d-fleet-local.json; \
	$(GO) run ./cmd/c3dexp -exp fig6 -quick -json -remote http://127.0.0.1:18330 > /tmp/c3d-fleet-remote1.json; \
	cmp /tmp/c3d-fleet-local.json /tmp/c3d-fleet-remote1.json; \
	$(GO) run ./cmd/c3dexp -exp fig6 -quick -json -remote http://127.0.0.1:18330 > /tmp/c3d-fleet-remote2.json; \
	cmp /tmp/c3d-fleet-local.json /tmp/c3d-fleet-remote2.json; \
	$(GO) run ./internal/smoketest/fleet -url http://127.0.0.1:18330 -workers 2 -min-hits 1
	@echo "remote fig6 bit-identical to local at 2 workers; repeat sweep served from the result cache"

# Fault-tolerance gate through the real binaries: a campaign over two workers
# running seeded fault plans (transport flaps + hung requests), with the
# coordinator journalling to disk, kill -9'd mid-campaign and restarted over
# the same journal. The driver rides out the outage on client retries and the
# final bytes must cmp equal to a fault-free single-worker baseline — faults
# and crashes cost retries, never correctness.
chaos-smoke:
	$(GO) build -ldflags "$(LDFLAGS)" -o /tmp/c3dd-chaos ./cmd/c3dd
	rm -rf /tmp/c3d-chaos-journal; \
	/tmp/c3dd-chaos -addr 127.0.0.1:18341 -jobs 2 -chaos flaky:7 & echo $$! > /tmp/c3dd-chaos-w1.pid; \
	/tmp/c3dd-chaos -addr 127.0.0.1:18342 -jobs 2 -chaos hang:11 & echo $$! > /tmp/c3dd-chaos-w2.pid; \
	/tmp/c3dd-chaos -addr 127.0.0.1:18343 & echo $$! > /tmp/c3dd-chaos-w3.pid; \
	trap 'kill $$(cat /tmp/c3dd-chaos-w1.pid /tmp/c3dd-chaos-w2.pid /tmp/c3dd-chaos-w3.pid /tmp/c3dd-chaos-co.pid 2>/dev/null) 2>/dev/null' EXIT; \
	for i in $$(seq 1 50); do \
		curl -sf 127.0.0.1:18343/healthz >/dev/null && break; sleep 0.2; done; \
	$(GO) run ./internal/smoketest/chaos -direct -url http://127.0.0.1:18343 > /tmp/c3d-chaos-baseline.txt; \
	for i in $$(seq 1 50); do \
		curl -sf 127.0.0.1:18341/v1/capabilities >/dev/null && curl -sf 127.0.0.1:18342/v1/capabilities >/dev/null && break; sleep 0.2; done; \
	/tmp/c3dd-chaos -coordinator -workers http://127.0.0.1:18341,http://127.0.0.1:18342 -addr 127.0.0.1:18340 \
		-journal /tmp/c3d-chaos-journal -dispatch-timeout 3s -attempts 10 -cooldown 200ms & echo $$! > /tmp/c3dd-chaos-co.pid; \
	for i in $$(seq 1 50); do \
		curl -sf 127.0.0.1:18340/healthz >/dev/null && break; sleep 0.2; done; \
	$(GO) run ./internal/smoketest/chaos -url http://127.0.0.1:18340 > /tmp/c3d-chaos-run.txt & echo $$! > /tmp/c3d-chaos-driver.pid; \
	sleep 3; \
	kill -9 $$(cat /tmp/c3dd-chaos-co.pid) 2>/dev/null; \
	/tmp/c3dd-chaos -coordinator -workers http://127.0.0.1:18341,http://127.0.0.1:18342 -addr 127.0.0.1:18340 \
		-journal /tmp/c3d-chaos-journal -dispatch-timeout 3s -attempts 10 -cooldown 200ms & echo $$! > /tmp/c3dd-chaos-co.pid; \
	wait $$(cat /tmp/c3d-chaos-driver.pid); \
	cmp /tmp/c3d-chaos-baseline.txt /tmp/c3d-chaos-run.txt
	@echo "chaos campaign bytes identical to the fault-free baseline across a coordinator kill -9 + journal resume"

# Workload-spec gate through the real binaries: one embedded preset driven
# through c3dsim (two runs must be bit-identical), through c3dexp at two
# parallelism levels, and through a two-worker fleet via -remote (the spec
# document travels the wire as params.spec and the workers compile it);
# then the external-trace path: spec → binary → text → ingest → binary must
# be a byte-identical round trip.
spec-smoke:
	$(GO) run ./cmd/c3dsim -spec preset:bursty-tail -accesses 2000 -json > /tmp/c3d-spec-sim1.json
	$(GO) run ./cmd/c3dsim -spec preset:bursty-tail -accesses 2000 -json > /tmp/c3d-spec-sim2.json
	cmp /tmp/c3d-spec-sim1.json /tmp/c3d-spec-sim2.json
	@echo "c3dsim spec runs bit-identical"
	$(GO) run ./cmd/c3dexp -exp table1 -quick -spec preset:bursty-tail -accesses 2000 -json -parallel 1 > /tmp/c3d-spec-p1.json
	$(GO) run ./cmd/c3dexp -exp table1 -quick -spec preset:bursty-tail -accesses 2000 -json -parallel 8 > /tmp/c3d-spec-p8.json
	cmp /tmp/c3d-spec-p1.json /tmp/c3d-spec-p8.json
	@echo "spec campaign bit-identical across parallelism levels"
	$(GO) build -ldflags "$(LDFLAGS)" -o /tmp/c3dd-spec ./cmd/c3dd
	/tmp/c3dd-spec -addr 127.0.0.1:18351 & echo $$! > /tmp/c3dd-spec-w1.pid; \
	/tmp/c3dd-spec -addr 127.0.0.1:18352 & echo $$! > /tmp/c3dd-spec-w2.pid; \
	trap 'kill $$(cat /tmp/c3dd-spec-w1.pid) $$(cat /tmp/c3dd-spec-w2.pid) $$(cat /tmp/c3dd-spec-co.pid) 2>/dev/null' EXIT; \
	for i in $$(seq 1 50); do \
		curl -sf 127.0.0.1:18351/healthz >/dev/null && curl -sf 127.0.0.1:18352/healthz >/dev/null && break; sleep 0.2; done; \
	/tmp/c3dd-spec -coordinator -workers http://127.0.0.1:18351,http://127.0.0.1:18352 -addr 127.0.0.1:18350 & echo $$! > /tmp/c3dd-spec-co.pid; \
	for i in $$(seq 1 50); do \
		curl -sf 127.0.0.1:18350/healthz >/dev/null && break; sleep 0.2; done; \
	$(GO) run ./cmd/c3dexp -exp table1 -quick -spec preset:bursty-tail -accesses 2000 -json -remote http://127.0.0.1:18350 > /tmp/c3d-spec-remote.json; \
	cmp /tmp/c3d-spec-p1.json /tmp/c3d-spec-remote.json
	@echo "remote spec campaign bit-identical to local at 2 workers"
	$(GO) run ./cmd/c3dtrace -spec preset:bursty-tail -threads 4 -accesses 500 -summary=false -out /tmp/c3d-spec.c3dt
	$(GO) run ./cmd/c3dtrace -in /tmp/c3d-spec.c3dt -text-out /tmp/c3d-spec.txt
	$(GO) run ./cmd/c3dtrace -ingest /tmp/c3d-spec.txt -out /tmp/c3d-spec-reingested.c3dt
	cmp /tmp/c3d-spec.c3dt /tmp/c3d-spec-reingested.c3dt
	@echo "spec → binary → text → ingest round trip bit-identical"

# Sampled-simulation gate through the real CLI: build c3dexp once (so `go
# run` compile time never pollutes the timing), then let the Go verifier
# drive fig6-quick full vs SMARTS-sampled and assert the three properties
# sampling sells — every full value inside the sampled 95% bars, a decisive
# wall-clock win, and sampled bytes identical across -parallel 1/8 and a
# repeat run. The acceptance target is 5x; the gate demands 2x so CI box
# noise cannot flake it.
sample-smoke:
	$(GO) build -ldflags "$(LDFLAGS)" -o /tmp/c3dexp-sample ./cmd/c3dexp
	$(GO) run ./internal/smoketest/sample -bin /tmp/c3dexp-sample

ci: lint build race bench-json determinism topology-smoke trace-roundtrip fuzz-smoke daemon-smoke fleet-smoke chaos-smoke spec-smoke sample-smoke
