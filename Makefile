# Make targets mirror .github/workflows/ci.yml exactly, so a green `make ci`
# locally means a green CI run — the two cannot drift because CI calls these
# targets.

GO ?= go

# bench-json iteration count: 1x in CI (trend tracking tolerates noise; speed
# matters), raise locally (e.g. BENCHTIME=2s) for stable numbers.
BENCHTIME ?= 1x
GIT_SHA := $(shell git rev-parse --short HEAD 2>/dev/null || echo nogit)

.PHONY: all build test race lint lint-fmt vet bench bench-smoke bench-json determinism trace-roundtrip fuzz-smoke ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

lint: lint-fmt vet

# gofmt -l prints offending files; fail if any.
lint-fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Full benchmark run (minutes): every paper artefact plus micro-benchmarks.
bench:
	$(GO) test -bench=. -benchmem ./...

# One iteration of every benchmark: catches hot-path regressions that panic,
# error or allocate wildly, without paying for statistically stable numbers.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -benchmem -run=^$$ ./...

# The bench-smoke pass piped into the trajectory parser: one benchmark run
# serves both as the crash/alloc smoke test and as the per-commit
# BENCH_<sha>.json artefact (name, ns/op, allocs/op, custom metrics) that CI
# uploads so the perf trajectory is diffable across commits.
bench-json:
	$(GO) test -bench=. -benchtime=$(BENCHTIME) -benchmem -run=^$$ ./... | $(GO) run ./cmd/benchjson -out BENCH_$(GIT_SHA).json

# Byte-identical sweep output across parallelism levels AND across the
# streaming/materialised trace paths, exercised through the real CLI.
determinism:
	$(GO) run ./cmd/c3dexp -exp table1 -quick -workloads streamcluster -accesses 2000 -json -parallel 1 > /tmp/c3d-sweep-p1.json
	$(GO) run ./cmd/c3dexp -exp table1 -quick -workloads streamcluster -accesses 2000 -json > /tmp/c3d-sweep-pN.json
	cmp /tmp/c3d-sweep-p1.json /tmp/c3d-sweep-pN.json
	@echo "sweep output bit-identical across parallelism levels"
	$(GO) run ./cmd/c3dexp -exp table1 -quick -workloads streamcluster -accesses 2000 -json -stream > /tmp/c3d-sweep-stream.json
	cmp /tmp/c3d-sweep-p1.json /tmp/c3d-sweep-stream.json
	@echo "sweep output bit-identical between streaming and materialised traces"
	$(GO) run ./cmd/c3dcheck -sockets 3 -max-states 60000 -json -parallel 1 > /tmp/c3d-mc-p1.json
	$(GO) run ./cmd/c3dcheck -sockets 3 -max-states 60000 -json -parallel 8 > /tmp/c3d-mc-p8.json
	cmp /tmp/c3d-mc-p1.json /tmp/c3d-mc-p8.json
	@echo "model-check reports bit-identical across parallelism levels"

# Trace codec round-trip gate through the real CLI: generate → encode →
# decode must preserve every stream statistic bit-for-bit.
trace-roundtrip:
	$(GO) run ./cmd/c3dtrace -workload streamcluster -threads 8 -accesses 2000 -summary=false -out /tmp/c3d-trace.c3dt
	$(GO) run ./cmd/c3dtrace -workload streamcluster -threads 8 -accesses 2000 > /tmp/c3d-trace-gen.txt
	$(GO) run ./cmd/c3dtrace -in /tmp/c3d-trace.c3dt > /tmp/c3d-trace-dec.txt
	cmp /tmp/c3d-trace-gen.txt /tmp/c3d-trace-dec.txt
	@echo "trace generate → encode → decode round trip bit-identical"

# Short fuzz pass over the trace decoder: corrupt and truncated inputs must
# produce errors, never panics or unbounded allocations.
fuzz-smoke:
	$(GO) test -run=^$$ -fuzz=FuzzDecode -fuzztime=10s ./internal/trace

ci: lint build race bench-json determinism trace-roundtrip fuzz-smoke
