package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"c3d/pkg/c3d"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJob(t *testing.T, ts *httptest.Server, spec JobSpec) string {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: status %d: %s", resp.StatusCode, b)
	}
	var out struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.ID == "" {
		t.Fatal("submit returned no job id")
	}
	return out.ID
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil && resp.StatusCode == http.StatusOK {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func waitState(t *testing.T, ts *httptest.Server, id string, want string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		var st JobStatus
		if code := getJSON(t, ts.URL+"/v1/jobs/"+id, &st); code != http.StatusOK {
			t.Fatalf("status: HTTP %d", code)
		}
		if st.State == want {
			return st
		}
		if terminal(st.State) && st.State != want {
			t.Fatalf("job %s reached %q (err %q), want %q", id, st.State, st.Error, want)
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s never reached state %q", id, want)
	return JobStatus{}
}

// quickSpec is a seconds-scale experiment job.
func quickSpec(parallel int) JobSpec {
	return JobSpec{
		Kind:        "experiment",
		Experiments: []string{"table1"},
		Params: c3d.Params{
			Quick:       true,
			Workloads:   []string{"streamcluster"},
			Accesses:    2000,
			Parallelism: parallel,
		},
	}
}

// TestEndToEnd drives the full daemon flow over real HTTP: healthz, submit,
// progress stream (replay + follow to the terminal marker), result fetch.
func TestEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	var health map[string]any
	if code := getJSON(t, ts.URL+"/healthz", &health); code != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", code)
	}
	if health["status"] != "ok" {
		t.Fatalf("healthz: %v", health)
	}

	id := postJob(t, ts, quickSpec(0))

	// The events stream must replay history and follow until the terminal
	// state marker — reading it to EOF IS the completion wait.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != "application/x-ndjson" {
		t.Fatalf("events content-type %q", got)
	}
	var kinds []string
	sawSimulation := false
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev struct {
			Kind  string `json:"kind"`
			State string `json:"state"`
			Done  int    `json:"done"`
			Total int    `json:"total"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		kinds = append(kinds, ev.Kind)
		if ev.Kind == "simulation_done" {
			sawSimulation = true
			if ev.Total != 1 || ev.Done != 1 {
				t.Errorf("progress counts %d/%d, want 1/1", ev.Done, ev.Total)
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawSimulation {
		t.Fatalf("no simulation_done event in stream: %v", kinds)
	}
	if len(kinds) == 0 || kinds[len(kinds)-1] != "job_state" {
		t.Fatalf("stream did not end with a job_state marker: %v", kinds)
	}

	st := waitState(t, ts, id, stateDone)
	if st.Kind != "experiment" {
		t.Errorf("status kind %q", st.Kind)
	}

	resp2, err := http.Get(ts.URL + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("result: HTTP %d", resp2.StatusCode)
	}
	body, err := io.ReadAll(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	var results []c3d.ExperimentResult
	if err := json.Unmarshal(body, &results); err != nil {
		t.Fatalf("result not a result array: %v", err)
	}
	if len(results) != 1 || results[0].ID != "table1" {
		t.Fatalf("unexpected results: %s", body)
	}
}

// TestServerResultMatchesCLIBytes is the determinism acceptance gate: a
// server-run sweep's result document must be byte-identical to what
// `c3dexp -json` prints for the same parameters — at any parallelism. The
// CLI path is reproduced exactly: Params -> Session -> Sweep ->
// WriteResultsJSON, which is precisely what cmd/c3dexp executes.
func TestServerResultMatchesCLIBytes(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrent: 2})

	fetch := func(parallel int) []byte {
		id := postJob(t, ts, quickSpec(parallel))
		waitState(t, ts, id, stateDone)
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/result")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	// The CLI code path, verbatim (cmd/c3dexp with the same flags).
	sess, err := quickSpec(0).Params.Session()
	if err != nil {
		t.Fatal(err)
	}
	results, err := sess.Sweep(t.Context(), "table1")
	if err != nil {
		t.Fatal(err)
	}
	var cli bytes.Buffer
	if err := c3d.WriteResultsJSON(&cli, results); err != nil {
		t.Fatal(err)
	}

	for _, parallel := range []int{1, 4} {
		if got := fetch(parallel); !bytes.Equal(got, cli.Bytes()) {
			t.Errorf("server result (parallel=%d) differs from CLI bytes:\nserver: %s\ncli:    %s",
				parallel, got, cli.Bytes())
		}
	}
}

// TestSimulateAndVerifyJobs covers the two other job kinds end to end.
func TestSimulateAndVerifyJobs(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	simID := postJob(t, ts, JobSpec{
		Kind:     "simulate",
		Workload: "streamcluster",
		Params:   c3d.Params{Threads: 8, Scale: 512, Accesses: 2000},
	})
	waitState(t, ts, simID, stateDone)
	var sim c3d.SimulateResult
	if code := getJSON(t, ts.URL+"/v1/jobs/"+simID+"/result", &sim); code != http.StatusOK {
		t.Fatalf("simulate result: HTTP %d", code)
	}
	if sim.Workload != "streamcluster" || sim.Cycles == 0 {
		t.Fatalf("implausible simulate result: %+v", sim.RunResult)
	}

	// A generalized shape — 8 sockets on a mesh fabric — runs through the
	// same job path, and the resolved topology lands in the result.
	meshID := postJob(t, ts, JobSpec{
		Kind:     "simulate",
		Workload: "streamcluster",
		Params:   c3d.Params{Threads: 8, Scale: 512, Accesses: 2000, Sockets: 8, Topology: "mesh"},
	})
	waitState(t, ts, meshID, stateDone)
	var mesh c3d.SimulateResult
	if code := getJSON(t, ts.URL+"/v1/jobs/"+meshID+"/result", &mesh); code != http.StatusOK {
		t.Fatalf("mesh simulate result: HTTP %d", code)
	}
	if mesh.Sockets != 8 || mesh.Topology != c3d.Mesh {
		t.Fatalf("mesh job reported %d sockets, topology %q", mesh.Sockets, mesh.Topology)
	}

	verID := postJob(t, ts, JobSpec{
		Kind:   "verify",
		Verify: VerifySpec{Sockets: 2},
	})
	waitState(t, ts, verID, stateDone)
	var reports []c3d.Report
	if code := getJSON(t, ts.URL+"/v1/jobs/"+verID+"/result", &reports); code != http.StatusOK {
		t.Fatalf("verify result: HTTP %d", code)
	}
	if len(reports) != 2 {
		t.Fatalf("want 2 verify reports, got %d", len(reports))
	}
	for _, r := range reports {
		if r.StatesExplored == 0 {
			t.Errorf("report %s explored no states", r.Model)
		}
	}
}

// TestCancelJob checks DELETE aborts a running job promptly and the status
// reflects it.
func TestCancelJob(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// A job big enough to still be running when the cancel lands.
	id := postJob(t, ts, JobSpec{
		Kind:        "experiment",
		Experiments: []string{"all"},
		Params:      c3d.Params{Quick: true, Accesses: 60_000},
	})
	waitState(t, ts, id, stateRunning)
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	st := waitState(t, ts, id, stateCancelled)
	if !strings.Contains(st.Error, "context canceled") {
		t.Errorf("cancelled job error = %q", st.Error)
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/"+id+"/result", nil); code != http.StatusConflict {
		t.Errorf("result of cancelled job: HTTP %d, want 409", code)
	}
}

// TestCancelQueuedJob checks cancelling a job that has not started flips it
// to cancelled immediately, without waiting for a worker to dequeue it.
func TestCancelQueuedJob(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrent: 1})
	long := JobSpec{
		Kind:        "experiment",
		Experiments: []string{"all"},
		Params:      c3d.Params{Quick: true, Accesses: 60_000},
	}
	first := postJob(t, ts, long) // occupies the single worker
	waitState(t, ts, first, stateRunning)
	queued := postJob(t, ts, quickSpec(0))

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+queued, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if out.State != stateCancelled {
		t.Fatalf("cancelled queued job reports state %q, want %q immediately", out.State, stateCancelled)
	}

	// Unblock the worker so Close does not wait out the long campaign.
	reqFirst, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+first, nil)
	if resp, err := http.DefaultClient.Do(reqFirst); err == nil {
		resp.Body.Close()
	}
}

// TestSubmitValidation checks malformed specs are rejected at the door.
func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for name, body := range map[string]string{
		"unknown kind":       `{"kind":"frobnicate"}`,
		"unknown experiment": `{"kind":"experiment","experiments":["fig99"]}`,
		"missing workload":   `{"kind":"simulate"}`,
		"bad design":         `{"kind":"simulate","workload":"streamcluster","params":{"design":"warp-drive"}}`,
		"unknown field":      `{"kind":"simulate","workload":"streamcluster","bogus":1}`,
		"negative sockets":   `{"kind":"simulate","workload":"streamcluster","params":{"sockets":-4}}`,
		"bad warmup":         `{"kind":"simulate","workload":"streamcluster","params":{"warmup":1.5}}`,
		"unknown workload":   `{"kind":"experiment","params":{"workloads":["not-a-workload"]}}`,
		"bad topology":       `{"kind":"simulate","workload":"streamcluster","params":{"topology":"moebius"}}`,
		"unhostable shape":   `{"kind":"simulate","workload":"streamcluster","params":{"topology":"ring","sockets":2}}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d, want 400", name, resp.StatusCode)
		}
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/job-999999", nil); code != http.StatusNotFound {
		t.Errorf("unknown job: HTTP %d, want 404", code)
	}
}

// TestListAndRetention checks /v1/jobs ordering and the finished-job
// retention bound.
func TestListAndRetention(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxJobs: 3})
	spec := JobSpec{
		Kind:     "simulate",
		Workload: "streamcluster",
		Params:   c3d.Params{Threads: 4, Scale: 512, Accesses: 500},
	}
	var ids []string
	for i := 0; i < 5; i++ {
		id := postJob(t, ts, spec)
		waitState(t, ts, id, stateDone)
		ids = append(ids, id)
	}
	var list []JobStatus
	if code := getJSON(t, ts.URL+"/v1/jobs", &list); code != http.StatusOK {
		t.Fatalf("list: HTTP %d", code)
	}
	if len(list) != 3 {
		t.Fatalf("retained %d jobs, want 3", len(list))
	}
	for i, st := range list {
		if want := ids[len(ids)-3+i]; st.ID != want {
			t.Errorf("list[%d] = %s, want %s (newest-3 in insertion order)", i, st.ID, want)
		}
	}
}

// TestQueueBound checks submissions beyond the queue depth are rejected with
// 503 rather than queued unboundedly.
func TestQueueBound(t *testing.T) {
	s := New(Config{MaxConcurrent: 1, QueueDepth: 1})
	defer s.Close()
	// Fill the single queue slot without letting the worker drain it: the
	// worker takes one job, a second occupies the queue, the third must
	// bounce. Use a long job to hold the worker.
	long := JobSpec{
		Kind:        "experiment",
		Experiments: []string{"all"},
		Params:      c3d.Params{Quick: true, Accesses: 60_000},
	}
	if _, err := s.submit(long); err != nil {
		t.Fatal(err)
	}
	// Give the worker a moment to claim the first job.
	time.Sleep(100 * time.Millisecond)
	if _, err := s.submit(long); err != nil {
		t.Fatal(err)
	}
	if _, err := s.submit(long); err == nil {
		t.Fatal("third submission should have been rejected (queue full)")
	} else if !strings.Contains(err.Error(), "queue full") {
		t.Fatalf("unexpected rejection error: %v", err)
	}
	// Cancel everything so Close doesn't wait for the long jobs.
	for _, st := range s.statuses() {
		j, _ := s.job(st.ID)
		j.requestCancel()
	}
}
