package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"c3d/pkg/c3d"
	"c3d/pkg/c3d/api"
)

// newTestServer starts a server over real HTTP and returns an api.Client for
// it — the server e2e suite runs on the same public client every external
// consumer uses, so the client is exercised against the real wire format on
// every test run.
func newTestServer(t *testing.T, cfg Config) (*Server, *api.Client) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, api.NewClient(ts.URL)
}

func submit(t *testing.T, cl *api.Client, spec api.JobSpec) string {
	t.Helper()
	resp, err := cl.Submit(t.Context(), spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if resp.ID == "" {
		t.Fatal("submit returned no job id")
	}
	return resp.ID
}

func waitState(t *testing.T, cl *api.Client, id string, want string) *api.JobStatus {
	t.Helper()
	ctx, cancel := context.WithTimeout(t.Context(), 60*time.Second)
	defer cancel()
	for {
		st, err := cl.Status(ctx, id)
		if err != nil {
			t.Fatalf("status: %v", err)
		}
		if st.State == want {
			return st
		}
		if api.Terminal(st.State) {
			t.Fatalf("job %s reached %q (err %q), want %q", id, st.State, st.Error, want)
		}
		select {
		case <-time.After(20 * time.Millisecond):
		case <-ctx.Done():
			t.Fatalf("job %s never reached state %q", id, want)
		}
	}
}

// quickSpec is a seconds-scale experiment job.
func quickSpec(parallel int) api.JobSpec {
	return api.JobSpec{
		Kind:        api.KindExperiment,
		Experiments: []string{"table1"},
		Params: api.Params{
			Quick:       true,
			Workloads:   []string{"streamcluster"},
			Accesses:    2000,
			Parallelism: parallel,
		},
	}
}

// TestEndToEnd drives the full daemon flow through the public client:
// healthz, submit, progress stream (replay + follow to the terminal marker),
// wait, result fetch.
func TestEndToEnd(t *testing.T) {
	_, cl := newTestServer(t, Config{})

	health, err := cl.Health(t.Context())
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	if health.Status != "ok" || health.Version == "" {
		t.Fatalf("healthz: %+v", health)
	}

	id := submit(t, cl, quickSpec(0))

	// The events stream must replay history and follow until the terminal
	// state marker — Events returning nil IS the completion wait.
	var kinds []string
	sawSimulation := false
	err = cl.Events(t.Context(), id, func(ev api.Event) error {
		kinds = append(kinds, ev.Kind)
		if ev.Kind == "simulation_done" {
			sawSimulation = true
			if ev.Total != 1 || ev.Done != 1 {
				t.Errorf("progress counts %d/%d, want 1/1", ev.Done, ev.Total)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("events: %v", err)
	}
	if !sawSimulation {
		t.Fatalf("no simulation_done event in stream: %v", kinds)
	}
	if len(kinds) == 0 || kinds[len(kinds)-1] != api.EventJobState {
		t.Fatalf("stream did not end with a job_state marker: %v", kinds)
	}

	st, err := cl.Wait(t.Context(), id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != api.StateDone || st.Kind != api.KindExperiment {
		t.Errorf("final status %+v", st)
	}

	body, err := cl.Result(t.Context(), id)
	if err != nil {
		t.Fatalf("result: %v", err)
	}
	var results []c3d.ExperimentResult
	if err := json.Unmarshal(body, &results); err != nil {
		t.Fatalf("result not a result array: %v", err)
	}
	if len(results) != 1 || results[0].ID != "table1" {
		t.Fatalf("unexpected results: %s", body)
	}
}

// TestCapabilities checks GET /v1/capabilities serves the same document the
// SDK computes locally — the eager-validation contract for remote clients.
func TestCapabilities(t *testing.T) {
	_, cl := newTestServer(t, Config{})
	caps, err := cl.Capabilities(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	want := c3d.CurrentCapabilities()
	if !reflect.DeepEqual(*caps, want) {
		t.Errorf("capabilities drifted:\n got %+v\nwant %+v", *caps, want)
	}
	if len(caps.Designs) == 0 || len(caps.Topologies) == 0 ||
		len(caps.Experiments) == 0 || len(caps.Workloads) == 0 {
		t.Errorf("capability lists should be non-empty: %+v", caps)
	}
	// The document must reject a bogus spec and accept a real one.
	if err := caps.SupportsSpec(quickSpec(0)); err != nil {
		t.Errorf("SupportsSpec(valid) = %v", err)
	}
	if err := caps.SupportsSpec(api.JobSpec{Kind: api.KindExperiment, Experiments: []string{"fig99"}}); err == nil {
		t.Error("SupportsSpec accepted an unknown experiment")
	}
}

// TestServerResultMatchesCLIBytes is the determinism acceptance gate: a
// server-run sweep's result document must be byte-identical to what
// `c3dexp -json` prints for the same parameters — at any parallelism. The
// CLI path is reproduced exactly: Params -> Session -> Sweep ->
// WriteResultsJSON, which is precisely what cmd/c3dexp executes.
func TestServerResultMatchesCLIBytes(t *testing.T) {
	_, cl := newTestServer(t, Config{MaxConcurrent: 2})

	fetch := func(parallel int) []byte {
		id := submit(t, cl, quickSpec(parallel))
		if _, err := cl.Wait(t.Context(), id); err != nil {
			t.Fatal(err)
		}
		body, err := cl.Result(t.Context(), id)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	// The CLI code path, verbatim (cmd/c3dexp with the same flags).
	sess, err := c3d.Params(quickSpec(0).Params).Session()
	if err != nil {
		t.Fatal(err)
	}
	results, err := sess.Sweep(t.Context(), "table1")
	if err != nil {
		t.Fatal(err)
	}
	var cli bytes.Buffer
	if err := c3d.WriteResultsJSON(&cli, results); err != nil {
		t.Fatal(err)
	}

	for _, parallel := range []int{1, 4} {
		if got := fetch(parallel); !bytes.Equal(got, cli.Bytes()) {
			t.Errorf("server result (parallel=%d) differs from CLI bytes:\nserver: %s\ncli:    %s",
				parallel, got, cli.Bytes())
		}
	}
}

// TestSimulateAndVerifyJobs covers the two other job kinds end to end.
func TestSimulateAndVerifyJobs(t *testing.T) {
	_, cl := newTestServer(t, Config{})

	simID := submit(t, cl, api.JobSpec{
		Kind:     api.KindSimulate,
		Workload: "streamcluster",
		Params:   api.Params{Threads: 8, Scale: 512, Accesses: 2000},
	})
	if _, err := cl.Wait(t.Context(), simID); err != nil {
		t.Fatal(err)
	}
	raw, err := cl.Result(t.Context(), simID)
	if err != nil {
		t.Fatalf("simulate result: %v", err)
	}
	var sim c3d.SimulateResult
	if err := json.Unmarshal(raw, &sim); err != nil {
		t.Fatal(err)
	}
	if sim.Workload != "streamcluster" || sim.Cycles == 0 {
		t.Fatalf("implausible simulate result: %+v", sim.RunResult)
	}

	// A generalized shape — 8 sockets on a mesh fabric — runs through the
	// same job path, and the resolved topology lands in the result.
	meshID := submit(t, cl, api.JobSpec{
		Kind:     api.KindSimulate,
		Workload: "streamcluster",
		Params:   api.Params{Threads: 8, Scale: 512, Accesses: 2000, Sockets: 8, Topology: "mesh"},
	})
	if _, err := cl.Wait(t.Context(), meshID); err != nil {
		t.Fatal(err)
	}
	rawMesh, err := cl.Result(t.Context(), meshID)
	if err != nil {
		t.Fatalf("mesh simulate result: %v", err)
	}
	var mesh c3d.SimulateResult
	if err := json.Unmarshal(rawMesh, &mesh); err != nil {
		t.Fatal(err)
	}
	if mesh.Sockets != 8 || mesh.Topology != c3d.Mesh {
		t.Fatalf("mesh job reported %d sockets, topology %q", mesh.Sockets, mesh.Topology)
	}

	verID := submit(t, cl, api.JobSpec{
		Kind:   api.KindVerify,
		Verify: api.VerifySpec{Sockets: 2},
	})
	if _, err := cl.Wait(t.Context(), verID); err != nil {
		t.Fatal(err)
	}
	rawVer, err := cl.Result(t.Context(), verID)
	if err != nil {
		t.Fatalf("verify result: %v", err)
	}
	var reports []c3d.Report
	if err := json.Unmarshal(rawVer, &reports); err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("want 2 verify reports, got %d", len(reports))
	}
	for _, r := range reports {
		if r.StatesExplored == 0 {
			t.Errorf("report %s explored no states", r.Model)
		}
	}
}

// TestCancelJob checks cancellation aborts a running job promptly, the
// status reflects it, and the result endpoint answers with the conflict
// code.
func TestCancelJob(t *testing.T) {
	_, cl := newTestServer(t, Config{})

	// A job big enough to still be running when the cancel lands.
	id := submit(t, cl, api.JobSpec{
		Kind:        api.KindExperiment,
		Experiments: []string{"all"},
		Params:      api.Params{Quick: true, Accesses: 60_000},
	})
	waitState(t, cl, id, api.StateRunning)
	if _, err := cl.Cancel(t.Context(), id); err != nil {
		t.Fatal(err)
	}
	st := waitState(t, cl, id, api.StateCancelled)
	if !strings.Contains(st.Error, "context canceled") {
		t.Errorf("cancelled job error = %q", st.Error)
	}
	_, err := cl.Result(t.Context(), id)
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Code != api.CodeConflict || apiErr.HTTPStatus != http.StatusConflict {
		t.Errorf("result of cancelled job: %v, want conflict envelope with HTTP 409", err)
	}
}

// TestCancelQueuedJob checks cancelling a job that has not started flips it
// to cancelled immediately, without waiting for a worker to dequeue it.
func TestCancelQueuedJob(t *testing.T) {
	_, cl := newTestServer(t, Config{MaxConcurrent: 1})
	long := api.JobSpec{
		Kind:        api.KindExperiment,
		Experiments: []string{"all"},
		Params:      api.Params{Quick: true, Accesses: 60_000},
	}
	first := submit(t, cl, long) // occupies the single worker
	waitState(t, cl, first, api.StateRunning)
	queued := submit(t, cl, quickSpec(0))

	resp, err := cl.Cancel(t.Context(), queued)
	if err != nil {
		t.Fatal(err)
	}
	if resp.State != api.StateCancelled {
		t.Fatalf("cancelled queued job reports state %q, want %q immediately", resp.State, api.StateCancelled)
	}

	// Unblock the worker so Close does not wait out the long campaign.
	if _, err := cl.Cancel(t.Context(), first); err != nil {
		t.Error(err)
	}
}

// TestSubmitValidation checks malformed specs are rejected at the door with
// the uniform error envelope and the invalid_spec code. Raw HTTP is used on
// purpose: these bodies are exactly what a hand-rolling client would send.
func TestSubmitValidation(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	cl := api.NewClient(ts.URL)

	for name, body := range map[string]string{
		"unknown kind":       `{"kind":"frobnicate"}`,
		"unknown experiment": `{"kind":"experiment","experiments":["fig99"]}`,
		"missing workload":   `{"kind":"simulate"}`,
		"bad design":         `{"kind":"simulate","workload":"streamcluster","params":{"design":"warp-drive"}}`,
		"unknown field":      `{"kind":"simulate","workload":"streamcluster","bogus":1}`,
		"negative sockets":   `{"kind":"simulate","workload":"streamcluster","params":{"sockets":-4}}`,
		"bad warmup":         `{"kind":"simulate","workload":"streamcluster","params":{"warmup":1.5}}`,
		"unknown workload":   `{"kind":"experiment","params":{"workloads":["not-a-workload"]}}`,
		"bad topology":       `{"kind":"simulate","workload":"streamcluster","params":{"topology":"moebius"}}`,
		"unhostable shape":   `{"kind":"simulate","workload":"streamcluster","params":{"topology":"ring","sockets":2}}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d, want 400", name, resp.StatusCode)
		}
		var env api.ErrorEnvelope
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil || env.Error == nil {
			t.Errorf("%s: body is not an error envelope: %v", name, err)
		} else if env.Error.Code != api.CodeInvalidSpec {
			t.Errorf("%s: code %q, want %q", name, env.Error.Code, api.CodeInvalidSpec)
		}
		resp.Body.Close()
	}

	_, err := cl.Status(t.Context(), "job-999999")
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Code != api.CodeNotFound || apiErr.HTTPStatus != http.StatusNotFound {
		t.Errorf("unknown job: %v, want not_found envelope with HTTP 404", err)
	}
}

// TestListPaginationAndRetention checks /v1/jobs ordering, the pagination
// envelope, limit clamping, and the finished-job retention bound.
func TestListPaginationAndRetention(t *testing.T) {
	_, cl := newTestServer(t, Config{MaxJobs: 3})
	spec := api.JobSpec{
		Kind:     api.KindSimulate,
		Workload: "streamcluster",
		Params:   api.Params{Threads: 4, Scale: 512, Accesses: 500},
	}
	var ids []string
	for i := 0; i < 5; i++ {
		id := submit(t, cl, spec)
		if _, err := cl.Wait(t.Context(), id); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	page, err := cl.Jobs(t.Context(), 0, 0)
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	if page.Total != 3 || len(page.Jobs) != 3 || page.Offset != 0 {
		t.Fatalf("retained page = total %d, %d jobs, offset %d; want 3/3/0", page.Total, len(page.Jobs), page.Offset)
	}
	for i, st := range page.Jobs {
		if want := ids[len(ids)-3+i]; st.ID != want {
			t.Errorf("jobs[%d] = %s, want %s (newest-3 in insertion order)", i, st.ID, want)
		}
	}

	// A bounded page: offset 1, limit 1 → exactly the middle survivor.
	small, err := cl.Jobs(t.Context(), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if small.Total != 3 || len(small.Jobs) != 1 || small.Offset != 1 || small.Jobs[0].ID != ids[3] {
		t.Errorf("page(1,1) = %+v, want the single middle job %s", small, ids[3])
	}

	// Offsets beyond the end clamp to an empty page, never an error.
	empty, err := cl.Jobs(t.Context(), 99, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(empty.Jobs) != 0 || empty.Total != 3 {
		t.Errorf("page(99,10) = %+v, want empty page with total 3", empty)
	}
}

// TestQueueBound checks submissions beyond the queue depth are rejected with
// 503 rather than queued unboundedly.
func TestQueueBound(t *testing.T) {
	s := New(Config{MaxConcurrent: 1, QueueDepth: 1})
	defer s.Close()
	// Fill the single queue slot without letting the worker drain it: the
	// worker takes one job, a second occupies the queue, the third must
	// bounce. Use a long job to hold the worker.
	long := api.JobSpec{
		Kind:        api.KindExperiment,
		Experiments: []string{"all"},
		Params:      api.Params{Quick: true, Accesses: 60_000},
	}
	if _, err := s.submit(long); err != nil {
		t.Fatal(err)
	}
	// Give the worker a moment to claim the first job.
	time.Sleep(100 * time.Millisecond)
	if _, err := s.submit(long); err != nil {
		t.Fatal(err)
	}
	if _, err := s.submit(long); err == nil {
		t.Fatal("third submission should have been rejected (queue full)")
	} else if !strings.Contains(err.Error(), "queue full") {
		t.Fatalf("unexpected rejection error: %v", err)
	}
	// Cancel everything so Close doesn't wait for the long jobs.
	for _, st := range s.statuses() {
		j, _ := s.job(st.ID)
		j.requestCancel()
	}
}

// TestQueueFullEnvelope checks the HTTP layer reports a full queue with the
// queue_full code so clients can back off programmatically.
func TestQueueFullEnvelope(t *testing.T) {
	s := New(Config{MaxConcurrent: 1, QueueDepth: 1})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	// No retries: the client must surface the 503 envelope, not retry it
	// into a timeout.
	cl := api.NewClient(ts.URL, api.WithRetries(0))

	long := api.JobSpec{
		Kind:        api.KindExperiment,
		Experiments: []string{"all"},
		Params:      api.Params{Quick: true, Accesses: 60_000},
	}
	first, err := cl.Submit(t.Context(), long)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, cl, first.ID, api.StateRunning)
	second, err := cl.Submit(t.Context(), long)
	if err != nil {
		t.Fatal(err)
	}
	_, err = cl.Submit(t.Context(), long)
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Code != api.CodeQueueFull || apiErr.HTTPStatus != http.StatusServiceUnavailable {
		t.Fatalf("overflow submit: %v, want queue_full envelope with HTTP 503", err)
	}
	for _, id := range []string{first.ID, second.ID} {
		if _, err := cl.Cancel(t.Context(), id); err != nil {
			t.Error(err)
		}
	}
}

// TestDrainFinishesAcceptedWork covers graceful shutdown: once a drain
// begins, /healthz reports "draining" and new submissions bounce with
// shutting_down, but every job already accepted — running or still queued —
// finishes normally and its result stays fetchable.
func TestDrainFinishesAcceptedWork(t *testing.T) {
	s, cl := newTestServer(t, Config{MaxConcurrent: 1})
	cl = api.NewClient(cl.BaseURL(), api.WithRetries(0))
	spec := api.JobSpec{
		Kind:     api.KindSimulate,
		Workload: "streamcluster",
		Params:   api.Params{Threads: 4, Scale: 512, Accesses: 200000, Seed: 1},
	}
	running := submit(t, cl, spec)
	spec.Params.Seed = 2
	spec.Params.Accesses = 500
	queued := submit(t, cl, spec)
	waitState(t, cl, running, api.StateRunning)

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()

	// The closed flag flips before the queue drains; poll briefly for it.
	deadline := time.Now().Add(5 * time.Second)
	for !s.isClosed() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	h, err := cl.Health(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "draining" {
		t.Errorf("health during drain = %q, want draining", h.Status)
	}
	_, err = cl.Submit(t.Context(), spec)
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Code != api.CodeShuttingDown || apiErr.HTTPStatus != http.StatusServiceUnavailable {
		t.Errorf("submit during drain: %v, want shutting_down envelope with HTTP 503", err)
	}

	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, id := range []string{running, queued} {
		st, err := cl.Status(t.Context(), id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != api.StateDone {
			t.Errorf("job %s finished %s after drain, want done: %s", id, st.State, st.Error)
		}
		if _, err := cl.Result(t.Context(), id); err != nil {
			t.Errorf("result of %s unavailable after drain: %v", id, err)
		}
	}
}

// TestDrainDeadlineFallsBackToCancel pins the bounded-drain contract: when
// the drain context is already dead, Drain still returns promptly with the
// context error and the server ends up fully stopped.
func TestDrainDeadlineFallsBackToCancel(t *testing.T) {
	s, cl := newTestServer(t, Config{MaxConcurrent: 1})
	id := submit(t, cl, api.JobSpec{
		Kind:     api.KindSimulate,
		Workload: "streamcluster",
		Params:   api.Params{Threads: 4, Scale: 512, Accesses: 200000, Seed: 3},
	})
	waitState(t, cl, id, api.StateRunning)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.Drain(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("expired drain returned %v, want context.Canceled", err)
	}
	st, err := cl.Status(t.Context(), id)
	if err != nil {
		t.Fatal(err)
	}
	if !api.Terminal(st.State) {
		t.Errorf("job still %s after fallback cancel", st.State)
	}
}
