// Package server is the job-service core behind cmd/c3dd: an HTTP/JSON API
// that accepts simulation, experiment-campaign and verification jobs,
// schedules them on a bounded worker pool, streams structured progress as
// JSON lines, and serves deterministic results.
//
// Every job runs through pkg/c3d — the same Session facade the CLIs use — so
// a server-run experiment's result bytes are identical to `c3dexp -json`
// output for the same parameters, at any parallelism, which the test suite
// and the CI daemon-smoke gate verify with byte comparisons. Machine reuse
// comes for free: the SDK's experiment layer pools machines by
// configuration, so a long-lived daemon serving many jobs stops paying
// construction costs once the pools are warm.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"c3d/pkg/c3d"
)

// Config parameterises a Server.
type Config struct {
	// MaxConcurrent bounds jobs running at once (default 1: simulations are
	// internally parallel already, so one job usually saturates the host;
	// raise it to overlap small jobs).
	MaxConcurrent int
	// QueueDepth bounds jobs waiting to run (default 256). Submissions
	// beyond it are rejected with 503 instead of queueing unboundedly.
	QueueDepth int
	// MaxJobs bounds retained finished jobs (default 1024): the oldest
	// finished jobs are evicted first, so a long-lived daemon's job table
	// does not grow without bound.
	MaxJobs int
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 1
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 1024
	}
	return c
}

// JobSpec is the submission body of POST /v1/jobs.
type JobSpec struct {
	// Kind selects what to run: "experiment", "simulate" or "verify".
	Kind string `json:"kind"`
	// Params configures the session exactly as the CLI flags do.
	Params c3d.Params `json:"params"`
	// Experiments lists experiment ids for kind "experiment" (empty or
	// ["all"] = the full set).
	Experiments []string `json:"experiments,omitempty"`
	// Workload names the workload for kind "simulate".
	Workload string `json:"workload,omitempty"`
	// Verify parameterises kind "verify".
	Verify VerifySpec `json:"verify,omitempty"`
}

// VerifySpec mirrors c3d.VerifyRequest in JSON form.
type VerifySpec struct {
	Sockets       int  `json:"sockets,omitempty"`
	LoadsPerCore  int  `json:"loads,omitempty"`
	StoresPerCore int  `json:"stores,omitempty"`
	MaxStates     int  `json:"max_states,omitempty"`
	BaseOnly      bool `json:"base_only,omitempty"`
}

// validate rejects malformed specs at submission time, so a queued job can
// only fail for run-time reasons. Building (and discarding) the session runs
// the SDK's full option validation — unknown workloads, out-of-range
// warm-up — not just the enumerated-field parse.
func (j JobSpec) validate() error {
	if _, err := j.Params.Session(); err != nil {
		return err
	}
	switch j.Kind {
	case "experiment":
		known := make(map[string]bool)
		for _, id := range c3d.ExperimentIDs() {
			known[id] = true
		}
		for _, id := range j.Experiments {
			if id != "all" && !known[id] {
				return fmt.Errorf("unknown experiment %q", id)
			}
		}
	case "simulate":
		if j.Workload == "" {
			return fmt.Errorf("kind %q needs a workload", j.Kind)
		}
		found := false
		for _, w := range c3d.Workloads() {
			if w.Name == j.Workload {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("unknown workload %q", j.Workload)
		}
	case "verify":
		if j.Verify.Sockets < 0 || j.Verify.MaxStates < 0 {
			return fmt.Errorf("negative verify bounds")
		}
	default:
		return fmt.Errorf("unknown job kind %q (want experiment, simulate or verify)", j.Kind)
	}
	return nil
}

// JobStatus is the status document of GET /v1/jobs/{id}.
type JobStatus struct {
	ID       string    `json:"id"`
	Kind     string    `json:"kind"`
	State    string    `json:"state"`
	Error    string    `json:"error,omitempty"`
	Created  time.Time `json:"created"`
	Started  time.Time `json:"started,omitzero"`
	Finished time.Time `json:"finished,omitzero"`
	Events   int       `json:"events"`
}

// Handler returns the daemon's HTTP API:
//
//	GET    /healthz              liveness + version + scheduler counters
//	POST   /v1/jobs              submit a JobSpec  -> {"id": ...}
//	GET    /v1/jobs              list job statuses
//	GET    /v1/jobs/{id}         one job's status
//	GET    /v1/jobs/{id}/events  progress stream as JSON lines (replays, then follows)
//	GET    /v1/jobs/{id}/result  the finished job's result document
//	DELETE /v1/jobs/{id}         cancel a queued or running job
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	return mux
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	queued, running, finished := s.counts()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"version":  c3d.Version(),
		"queued":   queued,
		"running":  running,
		"finished": finished,
	})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding job spec: %w", err))
		return
	}
	if err := spec.validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	j, err := s.submit(spec)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"id": j.id, "state": j.state()})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.statuses())
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, j.statusDoc())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	state, result, errMsg := j.outcome()
	switch {
	case state == stateDone:
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(result)
	case state == stateFailed && len(result) > 0:
		// A failed job can still carry a result document — a verification
		// that found violations stores its reports, which is how clients see
		// exactly which invariant broke. Serve it with the job's error in a
		// header so failure stays distinguishable from success.
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-C3D-Job-Error", errMsg)
		w.WriteHeader(http.StatusUnprocessableEntity)
		w.Write(result)
	case terminal(state):
		writeError(w, http.StatusConflict, fmt.Errorf("job %s %s: %s", j.id, state, errMsg))
	default:
		writeError(w, http.StatusConflict, fmt.Errorf("job %s is %s; poll the status or events endpoint", j.id, state))
	}
}

// handleEvents streams the job's progress as JSON lines: everything recorded
// so far immediately, then live events until the job reaches a terminal
// state or the client disconnects. The final line is always the terminal
// status marker.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	next := 0
	for {
		lines, state, notify := j.eventsSince(next)
		for _, line := range lines {
			if _, err := w.Write(line); err != nil {
				return
			}
		}
		next += len(lines)
		if len(lines) > 0 && flusher != nil {
			flusher.Flush()
		}
		if terminal(state) {
			return
		}
		select {
		case <-notify:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	j.requestCancel()
	writeJSON(w, http.StatusOK, map[string]string{"id": j.id, "state": j.state()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
