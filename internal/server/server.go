// Package server is the job-service core behind cmd/c3dd: an HTTP/JSON API
// that accepts simulation, experiment-campaign and verification jobs,
// schedules them on a bounded worker pool, streams structured progress as
// JSON lines, and serves deterministic results.
//
// Every job runs through pkg/c3d — the same Session facade the CLIs use — so
// a server-run experiment's result bytes are identical to `c3dexp -json`
// output for the same parameters, at any parallelism, which the test suite
// and the CI daemon-smoke gate verify with byte comparisons. Machine reuse
// comes for free: the SDK's experiment layer pools machines by
// configuration, so a long-lived daemon serving many jobs stops paying
// construction costs once the pools are warm.
//
// The wire contract — job specs, statuses, event lines, the error envelope —
// lives in pkg/c3d/api, not here: the types were promoted out of this
// package so the daemon, the campaign coordinator (internal/campaign) and
// every client share one declaration. This package only implements the
// behaviour behind those shapes.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"c3d/pkg/c3d"
	"c3d/pkg/c3d/api"
)

// Config parameterises a Server.
type Config struct {
	// MaxConcurrent bounds jobs running at once (default 1: simulations are
	// internally parallel already, so one job usually saturates the host;
	// raise it to overlap small jobs).
	MaxConcurrent int
	// QueueDepth bounds jobs waiting to run (default 256). Submissions
	// beyond it are rejected with 503 instead of queueing unboundedly.
	QueueDepth int
	// MaxJobs bounds retained finished jobs (default 1024): the oldest
	// finished jobs are evicted first, so a long-lived daemon's job table
	// does not grow without bound.
	MaxJobs int
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 1
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 1024
	}
	return c
}

// List pagination bounds for GET /v1/jobs.
const (
	defaultListLimit = 100
	maxListLimit     = 1000
)

// Handler returns the daemon's HTTP API:
//
//	GET    /healthz              liveness + version + scheduler counters
//	GET    /v1/capabilities      designs, topologies, experiments, workloads, version
//	POST   /v1/jobs              submit an api.JobSpec  -> api.SubmitResponse
//	GET    /v1/jobs              list job statuses (paginated: ?offset=&limit=)
//	GET    /v1/jobs/{id}         one job's status
//	GET    /v1/jobs/{id}/events  progress stream as JSON lines (replays, then follows)
//	GET    /v1/jobs/{id}/result  the finished job's result document
//	DELETE /v1/jobs/{id}         cancel a queued or running job
//
// Every error response is the uniform api.ErrorEnvelope with a
// machine-readable code.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /v1/capabilities", s.handleCapabilities)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	return mux
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	queued, running, finished := s.counts()
	status := "ok"
	if s.isClosed() {
		// Draining: running jobs are finishing, new submissions answer 503.
		status = "draining"
	}
	writeJSON(w, http.StatusOK, api.Health{
		Status:   status,
		Version:  c3d.Version(),
		Queued:   queued,
		Running:  running,
		Finished: finished,
	})
}

func (s *Server) handleCapabilities(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c3d.CurrentCapabilities())
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec api.JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, api.CodeInvalidSpec, fmt.Errorf("decoding job spec: %w", err))
		return
	}
	if err := c3d.ValidateJobSpec(spec); err != nil {
		writeError(w, http.StatusBadRequest, api.CodeInvalidSpec, err)
		return
	}
	j, err := s.submit(spec)
	if err != nil {
		code := api.CodeQueueFull
		if s.isClosed() {
			code = api.CodeShuttingDown
		}
		writeError(w, http.StatusServiceUnavailable, code, err)
		return
	}
	writeJSON(w, http.StatusAccepted, api.SubmitResponse{ID: j.id, State: j.state()})
}

// handleList serves one bounded page of job statuses in insertion order.
// offset/limit are clamped, never rejected: a list request is always
// answerable.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	offset := queryInt(r, "offset", 0)
	limit := queryInt(r, "limit", defaultListLimit)
	if limit <= 0 {
		limit = defaultListLimit
	}
	if limit > maxListLimit {
		limit = maxListLimit
	}
	if offset < 0 {
		offset = 0
	}
	all := s.statuses()
	total := len(all)
	if offset > total {
		offset = total
	}
	end := offset + limit
	if end > total {
		end = total
	}
	page := all[offset:end]
	if page == nil {
		page = []api.JobStatus{}
	}
	writeJSON(w, http.StatusOK, api.JobPage{Jobs: page, Total: total, Offset: offset})
}

func queryInt(r *http.Request, key string, def int) int {
	v := r.URL.Query().Get(key)
	if v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return def
	}
	return n
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, api.CodeNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, j.statusDoc())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, api.CodeNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	state, result, errMsg := j.outcome()
	switch {
	case state == api.StateDone:
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(result)
	case state == api.StateFailed && len(result) > 0:
		// A failed job can still carry a result document — a verification
		// that found violations stores its reports, which is how clients see
		// exactly which invariant broke. Serve it with the job's error in a
		// header so failure stays distinguishable from success.
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-C3D-Job-Error", errMsg)
		//c3dlint:allow errenvelope(body is the verification result document, not an error; the job error travels in the X-C3D-Job-Error header)
		w.WriteHeader(http.StatusUnprocessableEntity)
		w.Write(result)
	case api.Terminal(state):
		writeError(w, http.StatusConflict, api.CodeConflict, fmt.Errorf("job %s %s: %s", j.id, state, errMsg))
	default:
		writeError(w, http.StatusConflict, api.CodeConflict, fmt.Errorf("job %s is %s; poll the status or events endpoint", j.id, state))
	}
}

// handleEvents streams the job's progress as JSON lines: everything recorded
// so far immediately, then live events until the job reaches a terminal
// state or the client disconnects. The final line is always the terminal
// status marker.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, api.CodeNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	next := 0
	for {
		lines, state, notify := j.eventsSince(next)
		for _, line := range lines {
			if _, err := w.Write(line); err != nil {
				return
			}
		}
		next += len(lines)
		if len(lines) > 0 && flusher != nil {
			flusher.Flush()
		}
		if api.Terminal(state) {
			return
		}
		select {
		case <-notify:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, api.CodeNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	j.requestCancel()
	writeJSON(w, http.StatusOK, api.SubmitResponse{ID: j.id, State: j.state()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeError emits the uniform error envelope every non-2xx response uses:
// {"error": {"code": ..., "message": ...}}. Clients branch on the code.
func writeError(w http.ResponseWriter, status int, code string, err error) {
	writeJSON(w, status, api.ErrorEnvelope{Error: &api.Error{Code: code, Message: err.Error()}})
}
