package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"c3d/pkg/c3d"
	"c3d/pkg/c3d/api"
)

// Server owns the job table and the worker pool. Build one with New, wire
// Handler into an http.Server, and Close it on shutdown.
type Server struct {
	cfg Config

	baseCtx context.Context
	stop    context.CancelFunc
	queue   chan *job
	wg      sync.WaitGroup

	mu     sync.Mutex
	jobs   map[string]*job
	order  []string // insertion order, for listing and bounded retention
	nextID int
	closed bool
}

// New builds a Server and starts its workers.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		baseCtx: ctx,
		stop:    cancel,
		queue:   make(chan *job, cfg.QueueDepth),
		jobs:    make(map[string]*job),
	}
	s.wg.Add(cfg.MaxConcurrent)
	for i := 0; i < cfg.MaxConcurrent; i++ {
		go s.worker()
	}
	return s
}

// Close cancels every running job, stops the workers and waits for them.
// Submissions racing with Close are rejected, never lost in a closed
// channel: sends happen only under s.mu with closed still false, and the
// channel is closed only after closed is set under the same lock.
func (s *Server) Close() {
	s.stop()
	s.mu.Lock()
	alreadyClosed := s.closed
	s.closed = true
	s.mu.Unlock()
	if !alreadyClosed {
		close(s.queue)
	}
	s.wg.Wait()
}

// Drain gracefully stops the server: new submissions are rejected
// immediately (503 shutting_down), jobs already queued or running finish
// normally, and Drain returns when the workers have emptied the queue — or
// when ctx expires, in which case it falls back to Close's hard cancel.
// Either way the server is fully stopped on return.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	alreadyClosed := s.closed
	s.closed = true
	s.mu.Unlock()
	if !alreadyClosed {
		close(s.queue)
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}
	s.Close()
	return err
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.run(j)
	}
}

// submit registers and enqueues a job. The enqueue attempt and the
// registration share one critical section: a full queue rejects before
// anything is registered, and no send can race Close's channel close.
func (s *Server) submit(spec api.JobSpec) (*job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("server shutting down")
	}
	s.nextID++
	j := newJob(fmt.Sprintf("job-%06d", s.nextID), spec)
	select {
	case s.queue <- j:
	default:
		return nil, fmt.Errorf("job queue full (%d pending)", s.cfg.QueueDepth)
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.evictLocked()
	return j, nil
}

// evictLocked drops the oldest finished jobs beyond the retention bound.
// Callers hold s.mu.
func (s *Server) evictLocked() {
	if len(s.order) <= s.cfg.MaxJobs {
		return
	}
	kept := s.order[:0]
	excess := len(s.order) - s.cfg.MaxJobs
	for _, id := range s.order {
		if excess > 0 && api.Terminal(s.jobs[id].state()) {
			delete(s.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

func (s *Server) job(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

func (s *Server) statuses() []api.JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]api.JobStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].statusDoc())
	}
	return out
}

func (s *Server) counts() (queued, running, finished int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, j := range s.jobs {
		switch j.state() {
		case api.StateQueued:
			queued++
		case api.StateRunning:
			running++
		default:
			finished++
		}
	}
	return
}

// run executes one job on the calling worker goroutine.
func (s *Server) run(j *job) {
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()
	if !j.begin(cancel) {
		// Cancelled while still queued.
		return
	}

	sess, err := c3d.Params(j.spec.Params).Session(c3d.WithProgress(j.recordEvent))
	if err != nil {
		j.finish(nil, err)
		return
	}
	var result []byte
	switch j.spec.Kind {
	case api.KindExperiment:
		var results []c3d.ExperimentResult
		results, err = sess.Sweep(ctx, j.spec.Experiments...)
		if err == nil {
			// Render exactly the bytes `c3dexp -json` prints: one shared
			// writer, so server and CLI results are comparable with cmp.
			var buf bytes.Buffer
			if err = c3d.WriteResultsJSON(&buf, results); err == nil {
				result = buf.Bytes()
			}
		}
	case api.KindSimulate:
		var res *c3d.SimulateResult
		res, err = sess.Simulate(ctx, j.spec.Workload)
		if err == nil {
			result, err = json.MarshalIndent(res, "", "  ")
			result = append(result, '\n')
		}
	case api.KindVerify:
		var res *c3d.VerifyResult
		res, err = sess.Verify(ctx, c3d.VerifyRequest{
			Sockets:       j.spec.Verify.Sockets,
			LoadsPerCore:  j.spec.Verify.LoadsPerCore,
			StoresPerCore: j.spec.Verify.StoresPerCore,
			MaxStates:     j.spec.Verify.MaxStates,
			BaseOnly:      j.spec.Verify.BaseOnly,
		})
		if err == nil {
			if !res.Passed() {
				err = fmt.Errorf("verification found violations")
			}
			var buf bytes.Buffer
			if werr := c3d.WriteReportsJSON(&buf, res.Reports); werr == nil {
				// Reports are kept even when verification fails: the result
				// document is how clients see which invariant broke.
				result = buf.Bytes()
			}
		}
	default:
		err = fmt.Errorf("unknown job kind %q", j.spec.Kind)
	}
	j.finish(result, err)
}

// job is one scheduled unit of work and its observable history.
type job struct {
	id      string
	spec    api.JobSpec
	created time.Time

	mu        sync.Mutex
	st        string
	err       string
	result    []byte
	started   time.Time
	finished  time.Time
	events    [][]byte
	notify    chan struct{}
	cancel    context.CancelFunc
	cancelled bool // cancel requested (possibly before the job began)
}

func newJob(id string, spec api.JobSpec) *job {
	return &job{
		id:      id,
		spec:    spec,
		created: time.Now(),
		st:      api.StateQueued,
		notify:  make(chan struct{}),
	}
}

func (j *job) state() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.st
}

func (j *job) statusDoc() api.JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return api.JobStatus{
		ID:       j.id,
		Kind:     j.spec.Kind,
		State:    j.st,
		Error:    j.err,
		Created:  j.created,
		Started:  j.started,
		Finished: j.finished,
		Events:   len(j.events),
	}
}

func (j *job) outcome() (state string, result []byte, errMsg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.st, j.result, j.err
}

// begin transitions queued -> running; it reports false when the job was
// cancelled before starting (requestCancel already moved it to the terminal
// state).
func (j *job) begin(cancel context.CancelFunc) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.cancelled {
		return false
	}
	j.st = api.StateRunning
	j.started = time.Now()
	j.cancel = cancel
	j.appendEventLocked(statusLine(j.st))
	return true
}

func (j *job) finish(result []byte, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.finished = time.Now()
	j.result = result
	switch {
	case err == nil:
		j.st = api.StateDone
	case errors.Is(err, context.Canceled):
		j.st = api.StateCancelled
		j.err = err.Error()
	default:
		j.st = api.StateFailed
		j.err = err.Error()
	}
	j.appendEventLocked(statusLine(j.st))
}

// requestCancel flags the job, cancels its context when running, and flips a
// still-queued job to cancelled immediately — clients must not have to wait
// for a worker to dequeue it to see the cancel took effect.
func (j *job) requestCancel() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if api.Terminal(j.st) {
		return
	}
	j.cancelled = true
	if j.cancel != nil {
		j.cancel()
		return
	}
	j.st = api.StateCancelled
	j.err = context.Canceled.Error()
	j.finished = time.Now()
	j.appendEventLocked(statusLine(j.st))
}

// statusLine serialises a lifecycle marker in the api.Event wire shape.
func statusLine(state string) []byte {
	line, _ := json.Marshal(api.Event{Kind: api.EventJobState, State: state})
	return append(line, '\n')
}

// recordEvent is the session progress hook: it serialises the event once in
// the api.Event wire shape and wakes every streaming subscriber.
func (j *job) recordEvent(e c3d.Event) {
	we := api.Event{
		Kind:      e.Kind.String(),
		Job:       e.Job,
		Done:      e.Done,
		Total:     e.Total,
		States:    e.States,
		ElapsedMs: float64(e.Elapsed.Microseconds()) / 1000,
	}
	if e.Err != nil {
		we.Err = e.Err.Error()
	}
	line, err := json.Marshal(we)
	if err != nil {
		return
	}
	line = append(line, '\n')
	j.mu.Lock()
	j.appendEventLocked(line)
	j.mu.Unlock()
}

// appendEventLocked stores a serialised line and signals subscribers.
// Callers hold j.mu.
func (j *job) appendEventLocked(line []byte) {
	j.events = append(j.events, line)
	close(j.notify)
	j.notify = make(chan struct{})
}

// eventsSince returns the serialised events from index on, the job's current
// state, and a channel that is closed on the next append — the streaming
// handler's replay-then-follow primitive.
func (j *job) eventsSince(i int) ([][]byte, string, <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if i > len(j.events) {
		i = len(j.events)
	}
	return j.events[i:], j.st, j.notify
}
