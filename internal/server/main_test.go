package server

import (
	"testing"

	"c3d/internal/leakcheck"
)

// TestMain fails the suite if any test leaks a module goroutine: scheduler
// workers, event-stream followers and drain machinery must all be gone once
// every server under test is closed.
func TestMain(m *testing.M) { leakcheck.Main(m) }
