package cpu

import (
	"testing"
	"testing/quick"

	"c3d/internal/addr"
	"c3d/internal/sim"
	"c3d/internal/trace"
)

// fakeMem is a MemorySystem with fixed read and write latencies.
type fakeMem struct {
	readLat  sim.Cycles
	writeLat sim.Cycles
	reads    int
	writes   int
}

func (m *fakeMem) Read(now sim.Time, core int, a addr.Addr) sim.Time {
	m.reads++
	return now.Add(m.readLat)
}

func (m *fakeMem) Write(now sim.Time, core int, a addr.Addr) sim.Time {
	m.writes++
	return now.Add(m.writeLat)
}

func TestGapInstructionsCostOneCycleEach(t *testing.T) {
	c := New(Config{ID: 0, Socket: 0})
	mem := &fakeMem{readLat: 10}
	c.Execute(trace.Record{Kind: trace.Read, Addr: 0x40, Gap: 7}, mem)
	// 7 gap cycles + 10 load cycles.
	if got := c.Now(); got != 17 {
		t.Errorf("clock = %v, want 17", got)
	}
	s := c.Stats()
	if s.GapCycles != 7 || s.LoadCycles != 10 || s.Instructions != 8 {
		t.Errorf("stats = %+v; want 7 gap cycles, 10 load cycles, 8 instructions", s)
	}
}

func TestLoadsBlockTheCore(t *testing.T) {
	c := New(Config{ID: 1, Socket: 0})
	mem := &fakeMem{readLat: 100}
	for i := 0; i < 3; i++ {
		c.Execute(trace.Record{Kind: trace.Read, Addr: addr.Addr(i * 64)}, mem)
	}
	if got := c.Now(); got != 300 {
		t.Errorf("clock = %v, want 300 (blocking loads serialise)", got)
	}
	if c.Stats().Loads != 3 {
		t.Errorf("Loads = %d, want 3", c.Stats().Loads)
	}
}

func TestStoresAreOffTheCriticalPath(t *testing.T) {
	c := New(Config{ID: 2, Socket: 0, StoreQueueEntries: 32})
	mem := &fakeMem{writeLat: 500}
	for i := 0; i < 10; i++ {
		c.Execute(trace.Record{Kind: trace.Write, Addr: addr.Addr(i * 64)}, mem)
	}
	// Ten stores that each take 500 cycles to perform, but the core only
	// spends 1 cycle issuing each (store queue has room).
	if got := c.Now(); got != 10 {
		t.Errorf("clock = %v, want 10 (stores should not block)", got)
	}
	if c.PendingStores() != 10 {
		t.Errorf("PendingStores = %d, want 10", c.PendingStores())
	}
	if c.Stats().StoreStallCycles != 0 {
		t.Errorf("StoreStallCycles = %d, want 0", c.Stats().StoreStallCycles)
	}
}

func TestFullStoreQueueStalls(t *testing.T) {
	c := New(Config{ID: 3, Socket: 0, StoreQueueEntries: 2})
	mem := &fakeMem{writeLat: 100}
	// First two stores fill the queue (issue at cycles 0 and 1, perform at
	// 100 and 101). The third store must wait for the oldest to perform.
	for i := 0; i < 3; i++ {
		c.Execute(trace.Record{Kind: trace.Write, Addr: addr.Addr(i * 64)}, mem)
	}
	if got := c.Stats().StoreStallCycles; got == 0 {
		t.Error("expected store-queue stall cycles with a 2-entry queue")
	}
	if got := c.Now(); got < 100 {
		t.Errorf("clock = %v, want >= 100 (stalled until the oldest store performed)", got)
	}
}

func TestDrainWaitsForStores(t *testing.T) {
	c := New(Config{ID: 4, Socket: 1})
	mem := &fakeMem{writeLat: 1000}
	c.Execute(trace.Record{Kind: trace.Write, Addr: 0x80}, mem)
	if c.Now() >= 1000 {
		t.Fatal("store should not have blocked the core")
	}
	done := c.Drain()
	if done < 1000 {
		t.Errorf("Drain = %v, want >= 1000", done)
	}
	if c.PendingStores() != 0 {
		t.Error("Drain left stores in flight")
	}
	// Draining an empty queue is a no-op.
	if c.Drain() != done {
		t.Error("second Drain changed the clock")
	}
}

func TestStoreQueueRetiresCompletedStores(t *testing.T) {
	c := New(Config{ID: 5, Socket: 0, StoreQueueEntries: 2})
	mem := &fakeMem{writeLat: 5}
	// Stores separated by large gaps retire before the next store issues, so
	// the queue never fills and the core never stalls.
	for i := 0; i < 10; i++ {
		c.Execute(trace.Record{Kind: trace.Write, Addr: addr.Addr(i * 64), Gap: 50}, mem)
	}
	if c.Stats().StoreStallCycles != 0 {
		t.Errorf("StoreStallCycles = %d, want 0", c.Stats().StoreStallCycles)
	}
	if c.PendingStores() > 1 {
		t.Errorf("PendingStores = %d, want <= 1", c.PendingStores())
	}
}

func TestResetTiming(t *testing.T) {
	c := New(Config{ID: 6, Socket: 0})
	mem := &fakeMem{readLat: 10, writeLat: 10}
	c.Execute(trace.Record{Kind: trace.Read, Addr: 0x40}, mem)
	c.Execute(trace.Record{Kind: trace.Write, Addr: 0x80}, mem)
	c.ResetTiming()
	if c.Now() != 0 || c.PendingStores() != 0 || c.Stats().Instructions != 0 {
		t.Error("ResetTiming did not fully reset the core")
	}
}

func TestStatsIPC(t *testing.T) {
	c := New(Config{ID: 7, Socket: 0})
	mem := &fakeMem{readLat: 1}
	c.Execute(trace.Record{Kind: trace.Read, Addr: 0x40, Gap: 3}, mem)
	s := c.Stats()
	// 4 instructions in 4 cycles (3 gap + 1-cycle load).
	if got := s.IPC(); got != 1.0 {
		t.Errorf("IPC = %.2f, want 1.0", got)
	}
	var zero Stats
	if zero.IPC() != 0 {
		t.Error("IPC of an idle core should be 0")
	}
}

func TestDefaultStoreQueueDepth(t *testing.T) {
	c := New(Config{ID: 8, Socket: 0})
	if c.cfg.StoreQueueEntries != DefaultStoreQueueEntries {
		t.Errorf("default store queue = %d, want %d", c.cfg.StoreQueueEntries, DefaultStoreQueueEntries)
	}
}

func TestUnknownKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown record kind should panic")
		}
	}()
	New(Config{ID: 9, Socket: 0}).Execute(trace.Record{Kind: trace.Kind(7)}, &fakeMem{})
}

func TestTimeTravelPanics(t *testing.T) {
	bad := &badMem{}
	defer func() {
		if recover() == nil {
			t.Error("a memory system answering in the past should panic")
		}
	}()
	c := New(Config{ID: 10, Socket: 0})
	c.Execute(trace.Record{Kind: trace.Read, Addr: 0x40, Gap: 100}, bad)
}

type badMem struct{}

func (badMem) Read(now sim.Time, core int, a addr.Addr) sim.Time  { return 0 }
func (badMem) Write(now sim.Time, core int, a addr.Addr) sim.Time { return 0 }

// Property: the core's clock is monotonically non-decreasing across any mix
// of loads, stores and gaps, and total cycles >= gap cycles.
func TestClockMonotoneProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		c := New(Config{ID: 0, Socket: 0, StoreQueueEntries: 4})
		mem := &fakeMem{readLat: 7, writeLat: 90}
		prev := sim.Time(0)
		for _, op := range ops {
			rec := trace.Record{
				Kind: trace.Kind(op % 2),
				Addr: addr.Addr(op) * 64,
				Gap:  uint32(op % 5),
			}
			now := c.Execute(rec, mem)
			if now < prev {
				return false
			}
			prev = now
		}
		s := c.Stats()
		return uint64(c.Drain()) >= s.GapCycles
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
