// Package cpu provides the simple timing processor model the paper's own
// simulator uses (§V, Table II): in-order cores retiring one instruction per
// cycle, with blocking loads and a 32-entry store queue that lets stores
// retire off the critical path under TSO. This is deliberately not an
// out-of-order model — the evaluation's figure of merit is memory system
// behaviour, and the 1-IPC core exposes memory latency directly in execution
// time.
package cpu

import (
	"fmt"

	"c3d/internal/addr"
	"c3d/internal/sim"
	"c3d/internal/trace"
)

// MemorySystem is what a core issues its memory accesses to. The machine
// (internal/machine) implements it; tests use small fakes.
type MemorySystem interface {
	// Read performs a load issued by the given core at time now and returns
	// the time the data arrives at the core.
	Read(now sim.Time, core int, a addr.Addr) sim.Time
	// Write performs a store issued by the given core at time now and
	// returns the time the store is globally performed (all invalidations
	// acknowledged, memory or cache updated). The core does not wait for
	// this time; it only constrains store-queue occupancy.
	Write(now sim.Time, core int, a addr.Addr) sim.Time
}

// Config describes one core.
type Config struct {
	// ID is the global core id.
	ID int
	// Socket is the socket the core belongs to.
	Socket int
	// StoreQueueEntries is the number of in-flight stores the core tolerates
	// before it must stall (32 in Table II).
	StoreQueueEntries int
}

// DefaultStoreQueueEntries is the Table II store-queue depth.
const DefaultStoreQueueEntries = 32

// Stats describes one core's execution.
type Stats struct {
	Instructions uint64
	Loads        uint64
	Stores       uint64
	// GapCycles are cycles spent on non-memory instructions (1 IPC).
	GapCycles uint64
	// LoadCycles are cycles the core was blocked waiting for loads.
	LoadCycles uint64
	// StoreStallCycles are cycles the core was stalled because the store
	// queue was full.
	StoreStallCycles uint64
	// Cycles is the core's total execution time so far.
	Cycles uint64
}

// IPC returns instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

// Core is one in-order, 1-IPC core with a store queue.
type Core struct {
	cfg   Config
	clock sim.Time
	// storeQueue holds the global-performance times of in-flight stores in
	// issue order. Under TSO stores retire in order, so the head is always
	// the oldest.
	storeQueue []sim.Time
	stats      Stats
}

// New builds a core from cfg.
func New(cfg Config) *Core {
	if cfg.StoreQueueEntries <= 0 {
		cfg.StoreQueueEntries = DefaultStoreQueueEntries
	}
	return &Core{cfg: cfg, storeQueue: make([]sim.Time, 0, cfg.StoreQueueEntries)}
}

// ID returns the core's global id.
func (c *Core) ID() int { return c.cfg.ID }

// Socket returns the socket the core belongs to.
func (c *Core) Socket() int { return c.cfg.Socket }

// Now returns the core's current local time.
func (c *Core) Now() sim.Time { return c.clock }

// Stats returns a snapshot of the execution counters.
func (c *Core) Stats() Stats {
	s := c.stats
	s.Cycles = uint64(c.clock)
	return s
}

// PendingStores returns the number of stores still in flight.
func (c *Core) PendingStores() int { return len(c.storeQueue) }

// ResetTiming rewinds the core's clock and statistics to zero while keeping
// configuration. Used at the warm-up/measurement boundary; the caller is
// responsible for quiescing the memory system first (draining stores).
func (c *Core) ResetTiming() {
	c.clock = 0
	c.storeQueue = c.storeQueue[:0]
	c.stats = Stats{}
}

// retireStores removes stores that have globally performed by time now.
func (c *Core) retireStores(now sim.Time) {
	i := 0
	for i < len(c.storeQueue) && c.storeQueue[i] <= now {
		i++
	}
	if i > 0 {
		c.storeQueue = append(c.storeQueue[:0], c.storeQueue[i:]...)
	}
}

// Execute runs one trace record on the core against mem, advancing the
// core's local clock. It returns the core's time after the record completes.
func (c *Core) Execute(rec trace.Record, mem MemorySystem) sim.Time {
	// Non-memory instructions preceding the access: 1 cycle each.
	c.clock = c.clock.Add(sim.Cycles(rec.Gap))
	c.stats.GapCycles += uint64(rec.Gap)
	c.stats.Instructions += uint64(rec.Gap) + 1

	switch rec.Kind {
	case trace.Read:
		c.stats.Loads++
		start := c.clock
		done := mem.Read(start, c.cfg.ID, rec.Addr)
		if done < start {
			panic(fmt.Sprintf("cpu %d: memory system returned a read completion %v before issue %v", c.cfg.ID, done, start))
		}
		c.stats.LoadCycles += uint64(done.Sub(start))
		c.clock = done
	case trace.Write:
		c.stats.Stores++
		c.retireStores(c.clock)
		if len(c.storeQueue) >= c.cfg.StoreQueueEntries {
			// TSO: stall until the oldest store has globally performed.
			oldest := c.storeQueue[0]
			if oldest > c.clock {
				c.stats.StoreStallCycles += uint64(oldest.Sub(c.clock))
				c.clock = oldest
			}
			c.retireStores(c.clock)
		}
		done := mem.Write(c.clock, c.cfg.ID, rec.Addr)
		if done < c.clock {
			panic(fmt.Sprintf("cpu %d: memory system returned a write completion %v before issue %v", c.cfg.ID, done, c.clock))
		}
		c.storeQueue = append(c.storeQueue, done)
		// The store instruction itself occupies the pipeline for one cycle;
		// its completion is tracked by the store queue.
		c.clock = c.clock.Add(1)
	default:
		panic(fmt.Sprintf("cpu %d: unknown record kind %d", c.cfg.ID, rec.Kind))
	}
	return c.clock
}

// Drain waits for all in-flight stores to globally perform and returns the
// core's completion time. Call it after the last record of the core's trace
// so execution time includes store completion (the paper's runs end when all
// memory operations have performed).
func (c *Core) Drain() sim.Time {
	if n := len(c.storeQueue); n > 0 {
		last := c.storeQueue[n-1]
		if last > c.clock {
			c.clock = last
		}
		c.storeQueue = c.storeQueue[:0]
	}
	return c.clock
}
