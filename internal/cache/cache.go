// Package cache implements the set-associative cache model shared by every
// level of the simulated hierarchy: the per-core L1s, the per-socket LLC, and
// the tag array of the DRAM cache (which is simply a direct-mapped instance).
//
// The cache stores tags and per-line metadata only — the simulator is
// trace-driven and never materialises data values. Each line carries a small
// coherence state byte (interpreted by the owning protocol engine) and a
// dirty bit. Replacement is true LRU within a set.
package cache

import (
	"fmt"

	"c3d/internal/addr"
)

// State is the per-line coherence state. The cache itself does not interpret
// it beyond "zero means invalid"; protocol engines define their own meaning
// for the non-zero values (see internal/coherence).
type State uint8

// StateInvalid is the only state the cache package interprets: a line whose
// state is StateInvalid is not present.
const StateInvalid State = 0

// Config describes a cache structure.
type Config struct {
	// Name is used in diagnostics and stats output (e.g. "L1", "LLC",
	// "dramcache").
	Name string
	// SizeBytes is the total data capacity. Must be a multiple of
	// Ways*addr.BlockBytes.
	SizeBytes uint64
	// Ways is the associativity; 1 means direct-mapped.
	Ways int
}

// Line is the metadata stored for one cached block. The layout is kept at 16
// bytes (four lines per hardware cache line) because set scans dominate the
// simulator's profile: a narrower line means fewer host cache misses per
// simulated access.
type Line struct {
	Block addr.Block
	// lastUse is the LRU timestamp (an access counter private to the cache).
	// It is 32-bit on purpose; the cache renormalises every timestamp in
	// place before the counter can wrap, so LRU ordering is exact at any
	// access count.
	lastUse uint32
	State   State
	Dirty   bool
	valid   bool
}

// Victim describes a line evicted to make room for a fill.
type Victim struct {
	Block addr.Block
	State State
	Dirty bool
	// Valid reports whether anything was actually evicted (false when the
	// fill found an invalid way).
	Valid bool
}

// Stats holds the access counters of one cache instance.
type Stats struct {
	Hits       uint64
	Misses     uint64
	Fills      uint64
	Evictions  uint64
	DirtyEvict uint64
	Invalidate uint64
}

// Accesses returns hits+misses.
func (s Stats) Accesses() uint64 { return s.Hits + s.Misses }

// HitRate returns hits/(hits+misses), or 0 when the cache was never accessed.
func (s Stats) HitRate() float64 {
	a := s.Accesses()
	if a == 0 {
		return 0
	}
	return float64(s.Hits) / float64(a)
}

// Cache is a set-associative tag/metadata array with LRU replacement.
type Cache struct {
	cfg     Config
	sets    int
	ways    int
	lines   []Line // sets*ways entries, row-major by set
	tick    uint32
	stats   Stats
	setMask uint64
}

// bump advances the LRU clock and returns the new timestamp. When the 32-bit
// clock is about to wrap it first renormalises every line's timestamp to its
// LRU rank within its set — an order-preserving compression, so replacement
// decisions are unaffected — and rewinds the clock past the ranks.
func (c *Cache) bump() uint32 {
	if c.tick == ^uint32(0) {
		c.renormalize()
	}
	c.tick++
	return c.tick
}

// renormalize rewrites each line's lastUse as its LRU rank within its set
// (0 = least recent). Ordering within a set is all the replacement policy
// reads, so this is invisible to every caller.
func (c *Cache) renormalize() {
	ranks := make([]uint32, c.ways)
	for s := 0; s < c.sets; s++ {
		set := c.lines[s*c.ways : (s+1)*c.ways]
		for i := range set {
			r := uint32(0)
			for j := range set {
				// Ties (only possible between never-used invalid ways) keep
				// their index order, matching the scan tie-break.
				if set[j].lastUse < set[i].lastUse ||
					(set[j].lastUse == set[i].lastUse && j < i) {
					r++
				}
			}
			ranks[i] = r
		}
		for i := range set {
			set[i].lastUse = ranks[i]
		}
	}
	c.tick = uint32(c.ways)
}

// New builds a cache from cfg. It panics on invalid geometry, because a
// malformed configuration invalidates every result derived from it.
func New(cfg Config) *Cache {
	if cfg.Ways <= 0 {
		panic(fmt.Sprintf("cache %s: ways must be positive, got %d", cfg.Name, cfg.Ways))
	}
	lineCapacity := cfg.SizeBytes / addr.BlockBytes
	if lineCapacity == 0 || cfg.SizeBytes%addr.BlockBytes != 0 {
		panic(fmt.Sprintf("cache %s: size %d is not a positive multiple of the block size", cfg.Name, cfg.SizeBytes))
	}
	if lineCapacity%uint64(cfg.Ways) != 0 {
		panic(fmt.Sprintf("cache %s: %d lines not divisible by %d ways", cfg.Name, lineCapacity, cfg.Ways))
	}
	sets := int(lineCapacity / uint64(cfg.Ways))
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache %s: number of sets %d must be a power of two", cfg.Name, sets))
	}
	return &Cache{
		cfg:     cfg,
		sets:    sets,
		ways:    cfg.Ways,
		lines:   make([]Line, sets*cfg.Ways),
		setMask: uint64(sets - 1),
	}
}

// Config returns the configuration the cache was built with.
func (c *Cache) Config() Config { return c.cfg }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// Capacity returns the data capacity in bytes.
func (c *Cache) Capacity() uint64 { return c.cfg.SizeBytes }

// Stats returns a snapshot of the access counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats clears the counters without touching cache contents (used at the
// warm-up/measurement boundary).
func (c *Cache) ResetStats() { c.stats = Stats{} }

// Reset returns the cache to its just-constructed state: every line invalid,
// LRU clock rewound, counters cleared. It lets a machine be reused across
// runs without reallocating the tag arrays.
func (c *Cache) Reset() {
	clear(c.lines)
	c.tick = 0
	c.stats = Stats{}
}

func (c *Cache) setOf(b addr.Block) int { return int(uint64(b) & c.setMask) }

func (c *Cache) set(b addr.Block) []Line {
	s := c.setOf(b)
	return c.lines[s*c.ways : (s+1)*c.ways]
}

// Lookup probes the cache for block b. On a hit it refreshes the line's LRU
// position and returns a pointer to the line (which the caller may mutate,
// e.g. to change its coherence state) and true. On a miss it returns nil and
// false. Hit/miss statistics are updated.
func (c *Cache) Lookup(b addr.Block) (*Line, bool) {
	set := c.set(b)
	for i := range set {
		if set[i].valid && set[i].Block == b {
			set[i].lastUse = c.bump()
			c.stats.Hits++
			return &set[i], true
		}
	}
	c.stats.Misses++
	return nil, false
}

// Probe is like Lookup but does not update LRU state or statistics. It is
// used by coherence engines for snoops and invalidation checks that should
// not perturb replacement behaviour.
func (c *Cache) Probe(b addr.Block) (*Line, bool) {
	set := c.set(b)
	for i := range set {
		if set[i].valid && set[i].Block == b {
			return &set[i], true
		}
	}
	return nil, false
}

// Contains reports whether block b is present (without touching LRU/stats).
func (c *Cache) Contains(b addr.Block) bool {
	_, ok := c.Probe(b)
	return ok
}

// Touch is the functional-warming accessor: one set scan that behaves like
// Lookup-then-Fill without the second scan and without any statistics
// updates. On a hit it refreshes the line's LRU position — state and dirty
// bit are left untouched — and reports hit=true. On a miss it installs the
// block clean in the given state and returns the evicted victim, if any.
// Neither hits, misses nor fills are counted: Touch exists for fast-forward
// warming, whose traffic must stay invisible to every measured statistic.
func (c *Cache) Touch(b addr.Block, st State) (Victim, bool) {
	set := c.set(b)
	invalidIdx, lruIdx := -1, 0
	for i := range set {
		if set[i].valid {
			if set[i].Block == b {
				set[i].lastUse = c.bump()
				return Victim{}, true
			}
			if set[i].lastUse < set[lruIdx].lastUse {
				lruIdx = i
			}
		} else if invalidIdx < 0 {
			invalidIdx = i
		}
	}
	var victim Victim
	victimIdx := invalidIdx
	if victimIdx < 0 {
		victimIdx = lruIdx
		v := set[victimIdx]
		victim = Victim{Block: v.Block, State: v.State, Dirty: v.Dirty, Valid: true}
	}
	set[victimIdx] = Line{Block: b, State: st, valid: true, lastUse: c.bump()}
	return victim, false
}

// TouchDirty is Touch's store flavour: one statistics-free scan that on a hit
// upgrades the line to st, sets its dirty bit and refreshes its LRU position,
// and on a miss installs the block dirty in st, returning the victim.
func (c *Cache) TouchDirty(b addr.Block, st State) (Victim, bool) {
	set := c.set(b)
	invalidIdx, lruIdx := -1, 0
	for i := range set {
		if set[i].valid {
			if set[i].Block == b {
				set[i].State = st
				set[i].Dirty = true
				set[i].lastUse = c.bump()
				return Victim{}, true
			}
			if set[i].lastUse < set[lruIdx].lastUse {
				lruIdx = i
			}
		} else if invalidIdx < 0 {
			invalidIdx = i
		}
	}
	var victim Victim
	victimIdx := invalidIdx
	if victimIdx < 0 {
		victimIdx = lruIdx
		v := set[victimIdx]
		victim = Victim{Block: v.Block, State: v.State, Dirty: v.Dirty, Valid: true}
	}
	set[victimIdx] = Line{Block: b, State: st, Dirty: true, valid: true, lastUse: c.bump()}
	return victim, false
}

// TouchState is the state-upgrading flavour of Touch: one statistics-free
// scan that on a hit sets the line's state to st (leaving the dirty bit
// alone), refreshes its LRU position and returns the state the line held
// before the upgrade; on a miss it installs the block clean in st, silently
// dropping the LRU victim. It exists for functional warming of stores, where
// the caller needs to know whether the line was already held (and in what
// state) without paying a separate Lookup-then-Fill pair of scans.
func (c *Cache) TouchState(b addr.Block, st State) (State, bool) {
	set := c.set(b)
	invalidIdx, lruIdx := -1, 0
	for i := range set {
		if set[i].valid {
			if set[i].Block == b {
				prior := set[i].State
				set[i].State = st
				set[i].lastUse = c.bump()
				return prior, true
			}
			if set[i].lastUse < set[lruIdx].lastUse {
				lruIdx = i
			}
		} else if invalidIdx < 0 {
			invalidIdx = i
		}
	}
	victimIdx := invalidIdx
	if victimIdx < 0 {
		victimIdx = lruIdx
	}
	set[victimIdx] = Line{Block: b, State: st, valid: true, lastUse: c.bump()}
	return StateInvalid, false
}

// Fill inserts block b with the given state and dirty flag, evicting the LRU
// line of the set if necessary. The evicted line (if any) is returned so the
// caller can propagate write-backs or victim-cache fills. Filling a block
// that is already present updates its state in place and returns an invalid
// victim.
func (c *Cache) Fill(b addr.Block, st State, dirty bool) Victim {
	if st == StateInvalid {
		panic(fmt.Sprintf("cache %s: Fill with invalid state", c.cfg.Name))
	}
	c.stats.Fills++
	set := c.set(b)
	// Already present: update in place.
	for i := range set {
		if set[i].valid && set[i].Block == b {
			set[i].State = st
			set[i].Dirty = set[i].Dirty || dirty
			set[i].lastUse = c.bump()
			return Victim{}
		}
	}
	// Free way?
	victimIdx := -1
	for i := range set {
		if !set[i].valid {
			victimIdx = i
			break
		}
	}
	var victim Victim
	if victimIdx < 0 {
		// Evict LRU.
		victimIdx = 0
		for i := 1; i < len(set); i++ {
			if set[i].lastUse < set[victimIdx].lastUse {
				victimIdx = i
			}
		}
		v := set[victimIdx]
		victim = Victim{Block: v.Block, State: v.State, Dirty: v.Dirty, Valid: true}
		c.stats.Evictions++
		if v.Dirty {
			c.stats.DirtyEvict++
		}
	}
	set[victimIdx] = Line{Block: b, State: st, Dirty: dirty, valid: true, lastUse: c.bump()}
	return victim
}

// Invalidate removes block b if present and returns its former metadata. The
// returned Victim.Valid reports whether the block was present.
func (c *Cache) Invalidate(b addr.Block) Victim {
	set := c.set(b)
	for i := range set {
		if set[i].valid && set[i].Block == b {
			v := set[i]
			set[i] = Line{}
			c.stats.Invalidate++
			return Victim{Block: v.Block, State: v.State, Dirty: v.Dirty, Valid: true}
		}
	}
	return Victim{}
}

// SetState changes the coherence state of block b if present, and reports
// whether the block was found. Setting StateInvalid removes the block.
func (c *Cache) SetState(b addr.Block, st State) bool {
	if st == StateInvalid {
		return c.Invalidate(b).Valid
	}
	set := c.set(b)
	for i := range set {
		if set[i].valid && set[i].Block == b {
			set[i].State = st
			return true
		}
	}
	return false
}

// CleanBlock clears the dirty bit of block b if present and reports whether
// the block was found. It is used by the clean (write-through) DRAM cache
// policy and when an LLC write-back leaves a clean copy behind.
func (c *Cache) CleanBlock(b addr.Block) bool {
	set := c.set(b)
	for i := range set {
		if set[i].valid && set[i].Block == b {
			set[i].Dirty = false
			return true
		}
	}
	return false
}

// ValidLines returns the number of currently valid lines. Intended for tests
// and occupancy reporting, not for per-access hot paths.
func (c *Cache) ValidLines() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].valid {
			n++
		}
	}
	return n
}

// ForEach calls fn for every valid line. Intended for diagnostics and the
// model checker's small configurations; not used on hot paths.
func (c *Cache) ForEach(fn func(Line)) {
	for i := range c.lines {
		if c.lines[i].valid {
			fn(c.lines[i])
		}
	}
}

// Flush removes every line and returns the number of lines that were dirty.
func (c *Cache) Flush() int {
	dirty := 0
	for i := range c.lines {
		if c.lines[i].valid && c.lines[i].Dirty {
			dirty++
		}
		c.lines[i] = Line{}
	}
	return dirty
}
