package cache

import (
	"testing"
	"testing/quick"

	"c3d/internal/addr"
)

const (
	stS State = 1
	stM State = 2
)

func small() *Cache {
	// 8 sets x 2 ways x 64B = 1 KiB
	return New(Config{Name: "t", SizeBytes: 1024, Ways: 2})
}

func TestGeometry(t *testing.T) {
	c := small()
	if c.Sets() != 8 || c.Ways() != 2 || c.Capacity() != 1024 {
		t.Fatalf("geometry: sets=%d ways=%d cap=%d", c.Sets(), c.Ways(), c.Capacity())
	}
	if c.Config().Name != "t" {
		t.Error("config not retained")
	}
}

func TestInvalidGeometryPanics(t *testing.T) {
	cases := []Config{
		{Name: "zero-ways", SizeBytes: 1024, Ways: 0},
		{Name: "zero-size", SizeBytes: 0, Ways: 1},
		{Name: "not-multiple", SizeBytes: 100, Ways: 1},
		{Name: "non-pow2-sets", SizeBytes: 3 * 64, Ways: 1},
	}
	for _, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %s should panic", cfg.Name)
				}
			}()
			New(cfg)
		}()
	}
}

func TestMissThenHit(t *testing.T) {
	c := small()
	b := addr.Block(5)
	if _, hit := c.Lookup(b); hit {
		t.Fatal("empty cache should miss")
	}
	c.Fill(b, stS, false)
	line, hit := c.Lookup(b)
	if !hit || line.Block != b || line.State != stS {
		t.Fatalf("expected hit on filled block, got %+v hit=%v", line, hit)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Fills != 1 {
		t.Errorf("stats %+v", st)
	}
	if st.HitRate() != 0.5 {
		t.Errorf("hit rate %v", st.HitRate())
	}
}

func TestHitRateEmpty(t *testing.T) {
	var s Stats
	if s.HitRate() != 0 {
		t.Error("empty stats hit rate should be 0")
	}
}

func TestFillInvalidStatePanics(t *testing.T) {
	c := small()
	defer func() {
		if recover() == nil {
			t.Error("expected panic on Fill(StateInvalid)")
		}
	}()
	c.Fill(1, StateInvalid, false)
}

func TestLRUEviction(t *testing.T) {
	c := small() // 8 sets, 2 ways; blocks that differ by 8 map to the same set
	b0, b1, b2 := addr.Block(0), addr.Block(8), addr.Block(16)
	c.Fill(b0, stS, false)
	c.Fill(b1, stS, false)
	// Touch b0 so b1 becomes LRU.
	c.Lookup(b0)
	v := c.Fill(b2, stS, false)
	if !v.Valid || v.Block != b1 {
		t.Fatalf("expected b1 evicted, got %+v", v)
	}
	if !c.Contains(b0) || !c.Contains(b2) || c.Contains(b1) {
		t.Error("post-eviction contents wrong")
	}
	if c.Stats().Evictions != 1 {
		t.Errorf("evictions = %d", c.Stats().Evictions)
	}
}

func TestDirtyEvictionReported(t *testing.T) {
	c := small()
	c.Fill(addr.Block(0), stM, true)
	c.Fill(addr.Block(8), stS, false)
	v := c.Fill(addr.Block(16), stS, false) // evicts LRU = block 0 (dirty)
	if !v.Valid || !v.Dirty || v.Block != 0 {
		t.Fatalf("expected dirty victim of block 0, got %+v", v)
	}
	if c.Stats().DirtyEvict != 1 {
		t.Errorf("dirty evictions = %d", c.Stats().DirtyEvict)
	}
}

func TestFillExistingUpdatesInPlace(t *testing.T) {
	c := small()
	c.Fill(addr.Block(3), stS, false)
	v := c.Fill(addr.Block(3), stM, true)
	if v.Valid {
		t.Fatal("refill of present block should not evict")
	}
	line, _ := c.Probe(addr.Block(3))
	if line.State != stM || !line.Dirty {
		t.Errorf("in-place update failed: %+v", line)
	}
	if c.ValidLines() != 1 {
		t.Errorf("duplicate lines created: %d", c.ValidLines())
	}
}

func TestProbeDoesNotPerturb(t *testing.T) {
	c := small()
	c.Fill(addr.Block(0), stS, false)
	c.Fill(addr.Block(8), stS, false)
	// Probe b0 (should NOT refresh LRU), then fill a conflicting block:
	// the victim must be b0 because probes don't touch recency.
	c.Probe(addr.Block(0))
	before := c.Stats()
	v := c.Fill(addr.Block(16), stS, false)
	if v.Block != 0 {
		t.Errorf("probe perturbed LRU; victim = %+v", v)
	}
	if c.Stats().Hits != before.Hits || c.Stats().Misses != before.Misses {
		t.Error("probe should not change hit/miss stats")
	}
}

func TestInvalidate(t *testing.T) {
	c := small()
	c.Fill(addr.Block(7), stM, true)
	v := c.Invalidate(addr.Block(7))
	if !v.Valid || !v.Dirty || v.State != stM {
		t.Fatalf("invalidate victim %+v", v)
	}
	if c.Contains(addr.Block(7)) {
		t.Error("block still present after invalidate")
	}
	if v2 := c.Invalidate(addr.Block(7)); v2.Valid {
		t.Error("double invalidate should report absent")
	}
	if c.Stats().Invalidate != 1 {
		t.Errorf("invalidate count = %d", c.Stats().Invalidate)
	}
}

func TestSetState(t *testing.T) {
	c := small()
	c.Fill(addr.Block(9), stS, false)
	if !c.SetState(addr.Block(9), stM) {
		t.Fatal("SetState on present block returned false")
	}
	line, _ := c.Probe(addr.Block(9))
	if line.State != stM {
		t.Error("state not updated")
	}
	if c.SetState(addr.Block(100), stM) {
		t.Error("SetState on absent block returned true")
	}
	// Setting invalid removes the block.
	if !c.SetState(addr.Block(9), StateInvalid) {
		t.Error("SetState(StateInvalid) on present block returned false")
	}
	if c.Contains(addr.Block(9)) {
		t.Error("SetState(StateInvalid) did not remove the block")
	}
}

func TestCleanBlock(t *testing.T) {
	c := small()
	c.Fill(addr.Block(2), stM, true)
	if !c.CleanBlock(addr.Block(2)) {
		t.Fatal("CleanBlock on present block returned false")
	}
	line, _ := c.Probe(addr.Block(2))
	if line.Dirty {
		t.Error("dirty bit not cleared")
	}
	if c.CleanBlock(addr.Block(3)) {
		t.Error("CleanBlock on absent block returned true")
	}
}

func TestFlushAndForEach(t *testing.T) {
	c := small()
	c.Fill(addr.Block(1), stS, false)
	c.Fill(addr.Block(2), stM, true)
	c.Fill(addr.Block(3), stM, true)
	count := 0
	c.ForEach(func(Line) { count++ })
	if count != 3 {
		t.Errorf("ForEach visited %d lines", count)
	}
	dirty := c.Flush()
	if dirty != 2 {
		t.Errorf("Flush reported %d dirty lines, want 2", dirty)
	}
	if c.ValidLines() != 0 {
		t.Error("cache not empty after flush")
	}
}

func TestResetStats(t *testing.T) {
	c := small()
	c.Lookup(addr.Block(1))
	c.Fill(addr.Block(1), stS, false)
	c.ResetStats()
	if c.Stats() != (Stats{}) {
		t.Errorf("stats not cleared: %+v", c.Stats())
	}
	if !c.Contains(addr.Block(1)) {
		t.Error("ResetStats must not drop contents")
	}
}

func TestDirectMapped(t *testing.T) {
	c := New(Config{Name: "dm", SizeBytes: 4 * 64, Ways: 1})
	if c.Sets() != 4 || c.Ways() != 1 {
		t.Fatalf("geometry %d sets %d ways", c.Sets(), c.Ways())
	}
	c.Fill(addr.Block(0), stS, false)
	v := c.Fill(addr.Block(4), stS, false) // conflicts with block 0
	if !v.Valid || v.Block != 0 {
		t.Fatalf("direct-mapped conflict eviction failed: %+v", v)
	}
}

// Property: the number of valid lines never exceeds capacity, and a just-filled
// block is always present.
func TestOccupancyProperty(t *testing.T) {
	f := func(blocks []uint16) bool {
		c := New(Config{Name: "p", SizeBytes: 2048, Ways: 4})
		capacity := int(c.Capacity() / addr.BlockBytes)
		for _, b := range blocks {
			blk := addr.Block(b)
			c.Fill(blk, stS, b%3 == 0)
			if !c.Contains(blk) {
				return false
			}
			if c.ValidLines() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: fills+invalidate bookkeeping — a block is present iff it was
// filled after its last invalidation and not evicted; we check the weaker but
// still useful invariant that Lookup after Fill hits and Lookup after
// Invalidate misses.
func TestFillInvalidateProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		c := New(Config{Name: "p", SizeBytes: 1024, Ways: 2})
		for _, op := range ops {
			blk := addr.Block(op % 64)
			if op%2 == 0 {
				c.Fill(blk, stS, false)
				if !c.Contains(blk) {
					return false
				}
			} else {
				c.Invalidate(blk)
				if c.Contains(blk) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkLookupHit(b *testing.B) {
	b.ReportAllocs()
	c := New(Config{Name: "bench", SizeBytes: 1 << 20, Ways: 16})
	for i := 0; i < 1024; i++ {
		c.Fill(addr.Block(i), stS, false)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(addr.Block(i % 1024))
	}
}

func BenchmarkLookupMiss(b *testing.B) {
	b.ReportAllocs()
	c := New(Config{Name: "bench", SizeBytes: 1 << 20, Ways: 16})
	for i := 0; i < 1024; i++ {
		c.Fill(addr.Block(i), stS, false)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(addr.Block(1 << 30))
	}
}

func BenchmarkFillEvict(b *testing.B) {
	b.ReportAllocs()
	c := New(Config{Name: "bench", SizeBytes: 1 << 18, Ways: 8})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Fill(addr.Block(i), stS, false)
	}
}
