package experiments

import (
	"context"
	"fmt"

	"c3d/internal/machine"
	"c3d/internal/stats"
)

// --- §VI-C: reducing broadcast traffic with the TLB classification ---

// BroadcastFilterResult reproduces the §VI-C study: the broadcasts the base
// C3D protocol sends, how many the TLB private-page filter removes, and the
// effect on overall inter-socket traffic. The paper evaluates the
// multi-threaded suite (where the reduction is small because shared data
// dominates) and the single-threaded mcf (where write-related broadcast
// traffic disappears entirely).
type BroadcastFilterResult struct {
	// PerWorkload maps workload -> the filter's effect.
	PerWorkload map[string]BroadcastFilterRow
}

// BroadcastFilterRow is the per-workload outcome.
type BroadcastFilterRow struct {
	// BroadcastsBase is the number of broadcast invalidations without the
	// filter.
	BroadcastsBase uint64
	// BroadcastsFiltered is the number with the filter enabled.
	BroadcastsFiltered uint64
	// Elided is the number of broadcasts the filter suppressed.
	Elided uint64
	// BroadcastReduction is the fraction of broadcasts removed.
	BroadcastReduction float64
	// TrafficReduction is the relative reduction of total inter-socket
	// bytes (tiny for multi-threaded workloads, per the paper).
	TrafficReduction float64
}

// Table renders the study.
func (r BroadcastFilterResult) Table() *stats.Table {
	t := stats.NewTable("workload", "broadcasts", "with filter", "reduction", "traffic saved")
	for _, name := range tableNames(r.PerWorkload) {
		row := r.PerWorkload[name]
		t.AddRow(name,
			fmt.Sprintf("%d", row.BroadcastsBase),
			fmt.Sprintf("%d", row.BroadcastsFiltered),
			stats.Percent(row.BroadcastReduction),
			stats.Percent(row.TrafficReduction))
	}
	return t
}

// Sec6C runs the broadcast-filter study over the configured workloads plus
// mcf.
func Sec6C(ctx context.Context, cfg Config) (BroadcastFilterResult, error) {
	cfg = cfg.withDefaults()
	names := append(append([]string{}, cfg.workloadNames()...), "mcf")
	var jobs []job
	for _, name := range names {
		spec := cfg.mustWorkload(name)
		jobs = append(jobs,
			job{
				key:  key("sec6c", name, "base"),
				spec: spec,
				mcfg: cfg.machineConfig(cfg.Sockets, machine.C3D, spec.PreferredPolicy),
			},
			job{
				key:  key("sec6c", name, "filtered"),
				spec: spec,
				mcfg: cfg.machineConfig(cfg.Sockets, machine.C3D, spec.PreferredPolicy),
				mutate: func(m *machine.Config) {
					m.EnableBroadcastFilter = true
				},
			})
	}
	results, err := cfg.runJobs(ctx, jobs)
	if err != nil {
		return BroadcastFilterResult{}, err
	}
	out := BroadcastFilterResult{PerWorkload: make(map[string]BroadcastFilterRow)}
	for _, name := range names {
		base := results[key("sec6c", name, "base")]
		filtered := results[key("sec6c", name, "filtered")]
		row := BroadcastFilterRow{
			BroadcastsBase:     base.Counters.Broadcasts,
			BroadcastsFiltered: filtered.Counters.Broadcasts,
			Elided:             filtered.BroadcastFilterElided,
		}
		if row.BroadcastsBase > 0 {
			row.BroadcastReduction = 1 - float64(row.BroadcastsFiltered)/float64(row.BroadcastsBase)
		}
		if base.InterSocketBytes > 0 {
			row.TrafficReduction = 1 - float64(filtered.InterSocketBytes)/float64(base.InterSocketBytes)
		}
		out.PerWorkload[name] = row
	}
	return out, nil
}
