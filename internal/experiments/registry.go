package experiments

import (
	"context"
	"fmt"
	"sort"

	"c3d/internal/stats"
)

// Result is what every experiment produces: a structured value that can
// render itself as the table/series the paper reports.
type Result interface {
	Table() *stats.Table
}

// Entry describes one runnable experiment.
type Entry struct {
	// ID is the identifier used by cmd/c3dexp (table1, fig2, ..., verify).
	ID string
	// Paper names the table or figure being reproduced.
	Paper string
	// Description is a one-line summary.
	Description string
	// Run executes the experiment.
	Run func(context.Context, Config) (Result, error)
}

var registry = []Entry{
	{
		ID: "table1", Paper: "Table I",
		Description: "fraction of memory accesses satisfied by remote memory (4-socket baseline)",
		Run:         func(ctx context.Context, c Config) (Result, error) { r, err := TableI(ctx, c); return r, err },
	},
	{
		ID: "fig2", Paper: "Fig. 2",
		Description: "NUMA bottleneck analysis: idealised latency/bandwidth configurations",
		Run:         func(ctx context.Context, c Config) (Result, error) { r, err := Fig2(ctx, c); return r, err },
	},
	{
		ID: "fig3", Paper: "Fig. 3",
		Description: "memory accesses versus LLC capacity, normalised to a 16MB LLC",
		Run:         func(ctx context.Context, c Config) (Result, error) { r, err := Fig3(ctx, c); return r, err },
	},
	{
		ID: "fig6", Paper: "Fig. 6",
		Description: "4-socket performance comparison of the coherence designs",
		Run:         func(ctx context.Context, c Config) (Result, error) { r, err := Fig6(ctx, c); return r, err },
	},
	{
		ID: "fig7", Paper: "Fig. 7",
		Description: "2-socket performance comparison of the coherence designs",
		Run:         func(ctx context.Context, c Config) (Result, error) { r, err := Fig7(ctx, c); return r, err },
	},
	{
		ID: "fig8", Paper: "Fig. 8",
		Description: "C3D remote memory traffic normalised to the baseline",
		Run:         func(ctx context.Context, c Config) (Result, error) { r, err := Fig8(ctx, c); return r, err },
	},
	{
		ID: "fig9", Paper: "Fig. 9",
		Description: "inter-socket traffic of each design normalised to the baseline",
		Run:         func(ctx context.Context, c Config) (Result, error) { r, err := Fig9(ctx, c); return r, err },
	},
	{
		ID: "fig10", Paper: "Fig. 10",
		Description: "sensitivity to DRAM cache latency (30/40/50ns)",
		Run:         func(ctx context.Context, c Config) (Result, error) { r, err := Fig10(ctx, c); return r, err },
	},
	{
		ID: "fig11", Paper: "Fig. 11",
		Description: "sensitivity to inter-socket latency (5/10/20/30ns)",
		Run:         func(ctx context.Context, c Config) (Result, error) { r, err := Fig11(ctx, c); return r, err },
	},
	{
		ID: "sec6c", Paper: "§VI-C",
		Description: "broadcast reduction from the TLB private-page filter (suite + mcf)",
		Run:         func(ctx context.Context, c Config) (Result, error) { r, err := Sec6C(ctx, c); return r, err },
	},
	{
		ID: "verify", Paper: "§IV-C",
		Description: "model-check the C3D protocol (SWMR, data-value, deadlock freedom)",
		Run: func(ctx context.Context, c Config) (Result, error) {
			vc := DefaultVerifyConfig()
			vc.Parallelism = c.Parallelism
			vc.Progress = c.Progress
			if c.AccessesPerThread > 0 && c.AccessesPerThread < 50_000 {
				// Quick configurations bound the larger search.
				vc.MaxStates = 200_000
			}
			return Verify(ctx, vc)
		},
	},
	{
		ID: "shared", Paper: "§II-C",
		Description: "private versus shared DRAM cache organisation",
		Run:         func(ctx context.Context, c Config) (Result, error) { r, err := PrivateVsShared(ctx, c); return r, err },
	},
	{
		ID: "ablation", Paper: "DESIGN.md",
		Description: "isolate the clean property, the non-inclusive directory and the miss predictor",
		Run:         func(ctx context.Context, c Config) (Result, error) { r, err := Ablation(ctx, c); return r, err },
	},
	{
		ID: "scaling", Paper: "§V (ext.)",
		Description: "socket-scaling study: speedup and off-socket traffic vs socket count x topology x design",
		Run:         func(ctx context.Context, c Config) (Result, error) { r, err := Scaling(ctx, c); return r, err },
	},
	{
		ID: "scaling-sampled", Paper: "§V (ext.)",
		Description: "sampled socket-scaling study: the same sweep via SMARTS-style sampling, every metric with 95% error bars",
		Run:         func(ctx context.Context, c Config) (Result, error) { r, err := SampledScaling(ctx, c); return r, err },
	},
}

// IDs returns every experiment id in presentation order.
func IDs() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.ID
	}
	return out
}

// Lookup returns the entry with the given id.
func Lookup(id string) (Entry, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	known := IDs()
	sort.Strings(known)
	return Entry{}, fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, known)
}

// All returns every entry in presentation order.
func All() []Entry { return append([]Entry(nil), registry...) }
