package experiments

import (
	"context"
	"fmt"
	"math"

	"c3d/internal/machine"
	"c3d/internal/sample"
	"c3d/internal/stats"
)

// evaluatedDesigns are the DRAM-cache coherence designs compared against the
// baseline in Figs. 6-9, in the paper's legend order.
var evaluatedDesigns = []machine.Design{machine.Snoopy, machine.FullDir, machine.C3D, machine.C3DFullDir}

// SpeedupResult is the shared shape of the Fig. 6 / Fig. 7 performance
// comparisons: per-workload speedup of each design over the no-DRAM-cache
// baseline.
type SpeedupResult struct {
	Sockets int
	// Speedup maps workload -> design name -> speedup over baseline.
	Speedup map[string]map[string]float64
	// Bars maps workload -> design name -> the speedup's 95% confidence
	// half-width. It is populated only for sampled runs; nil means exact
	// full-detail results and bar-free tables.
	Bars map[string]map[string]float64
	// Geomean maps design name -> geometric-mean speedup.
	Geomean map[string]float64
	// GeomeanBars maps design name -> the geomean's 95% half-width
	// (sampled runs only).
	GeomeanBars map[string]float64
}

// Sampled reports whether the result carries confidence half-widths.
func (r SpeedupResult) Sampled() bool { return r.Bars != nil }

// cell renders one speedup value, with its error bar when sampled.
func (r SpeedupResult) cell(v float64, bar float64) string {
	if r.Sampled() {
		return sample.Estimate{Value: v, HalfWidth: bar}.Format(3)
	}
	return fmt.Sprintf("%.3f", v)
}

// Table renders the speedups in the paper's layout. Sampled runs render every
// cell as "value±half", so the error bars are part of the JSON artefact.
func (r SpeedupResult) Table() *stats.Table {
	headers := []string{"workload"}
	for _, d := range evaluatedDesigns {
		headers = append(headers, d.String())
	}
	t := stats.NewTable(headers...)
	for _, name := range tableNames(r.Speedup) {
		row := r.Speedup[name]
		cells := []string{name}
		for _, d := range evaluatedDesigns {
			cells = append(cells, r.cell(row[d.String()], r.Bars[name][d.String()]))
		}
		t.AddRow(cells...)
	}
	cells := []string{"geomean"}
	for _, d := range evaluatedDesigns {
		cells = append(cells, r.cell(r.Geomean[d.String()], r.GeomeanBars[d.String()]))
	}
	t.AddRow(cells...)
	return t
}

// designComparison runs every evaluated design plus the baseline on every
// workload for the given socket count, returning the raw results keyed by
// (workload, design).
func designComparison(ctx context.Context, cfg Config, sockets int, tag string, mutate func(*machine.Config)) (map[string]machine.RunResult, error) {
	cfg = cfg.withDefaults()
	designs := append([]machine.Design{machine.Baseline}, evaluatedDesigns...)
	var jobs []job
	for _, name := range cfg.workloadNames() {
		spec := cfg.mustWorkload(name)
		for _, d := range designs {
			jobs = append(jobs, job{
				key:    key(tag, name, d),
				spec:   spec,
				mcfg:   cfg.machineConfig(sockets, d, spec.PreferredPolicy),
				mutate: mutate,
			})
		}
	}
	return cfg.runJobs(ctx, jobs)
}

func speedupsFrom(cfg Config, tag string, results map[string]machine.RunResult, sockets int) SpeedupResult {
	out := SpeedupResult{
		Sockets: sockets,
		Speedup: make(map[string]map[string]float64),
		Geomean: make(map[string]float64),
	}
	sampled := cfg.Sampling != ""
	if sampled {
		out.Bars = make(map[string]map[string]float64)
		out.GeomeanBars = make(map[string]float64)
	}
	for _, name := range cfg.workloadNames() {
		base := results[key(tag, name, machine.Baseline)]
		row := make(map[string]float64)
		bars := make(map[string]float64)
		for _, d := range evaluatedDesigns {
			des := results[key(tag, name, d)]
			row[d.String()] = des.SpeedupOver(base)
			if sampled && base.Sampling != nil && des.Sampling != nil {
				// Speedup = baseline CPI / design CPI (instruction counts are
				// exact and shared), so its bar propagates the two CPI bars.
				bars[d.String()] = sample.RatioOf(base.Sampling.Estimates.CPI, des.Sampling.Estimates.CPI).HalfWidth
			}
		}
		out.Speedup[name] = row
		if sampled {
			out.Bars[name] = bars
		}
	}
	for _, d := range evaluatedDesigns {
		d := d
		out.Geomean[d.String()] = geomeanOver(cfg.workloadNames(), func(name string) float64 {
			return out.Speedup[name][d.String()]
		})
		if sampled {
			out.GeomeanBars[d.String()] = geomeanBar(out.Geomean[d.String()], cfg.workloadNames(), func(name string) sample.Estimate {
				return sample.Estimate{Value: out.Speedup[name][d.String()], HalfWidth: out.Bars[name][d.String()]}
			})
		}
	}
	return out
}

// geomeanBar propagates per-workload half-widths into a geometric mean's:
// relative errors add in quadrature divided by the workload count (the
// first-order error of an n-th root of a product).
func geomeanBar(geomean float64, names []string, est func(name string) sample.Estimate) float64 {
	if len(names) == 0 {
		return 0
	}
	sumSq := 0.0
	for _, n := range names {
		rel := est(n).RelError()
		sumSq += rel * rel
	}
	return math.Abs(geomean) * math.Sqrt(sumSq) / float64(len(names))
}

// Fig6 runs the 4-socket (8 cores/socket) performance comparison.
func Fig6(ctx context.Context, cfg Config) (SpeedupResult, error) {
	cfg = cfg.withDefaults()
	results, err := designComparison(ctx, cfg, 4, "fig6", nil)
	if err != nil {
		return SpeedupResult{}, err
	}
	return speedupsFrom(cfg, "fig6", results, 4), nil
}

// Fig7 runs the 2-socket (16 cores/socket) performance comparison.
func Fig7(ctx context.Context, cfg Config) (SpeedupResult, error) {
	cfg = cfg.withDefaults()
	results, err := designComparison(ctx, cfg, 2, "fig7", nil)
	if err != nil {
		return SpeedupResult{}, err
	}
	return speedupsFrom(cfg, "fig7", results, 2), nil
}

// --- Fig. 8: C3D memory traffic normalised to the baseline ---

// Fig8Result reproduces Fig. 8: C3D's remote memory reads, writes and total
// accesses normalised to the no-DRAM-cache baseline.
type Fig8Result struct {
	// Reads, Writes and Total map workload -> normalised traffic.
	Reads  map[string]float64
	Writes map[string]float64
	Total  map[string]float64
	// GeomeanReads/Writes/Total summarise across workloads.
	GeomeanReads  float64
	GeomeanWrites float64
	GeomeanTotal  float64
}

// Table renders the three series.
func (r Fig8Result) Table() *stats.Table {
	t := stats.NewTable("workload", "reads", "writes", "total")
	for _, name := range tableNames(r.Total) {
		t.AddRow(name,
			fmt.Sprintf("%.3f", r.Reads[name]),
			fmt.Sprintf("%.3f", r.Writes[name]),
			fmt.Sprintf("%.3f", r.Total[name]))
	}
	t.AddRow("geomean",
		fmt.Sprintf("%.3f", r.GeomeanReads),
		fmt.Sprintf("%.3f", r.GeomeanWrites),
		fmt.Sprintf("%.3f", r.GeomeanTotal))
	return t
}

// Fig8 runs the memory-traffic study (4-socket, C3D versus baseline).
func Fig8(ctx context.Context, cfg Config) (Fig8Result, error) {
	cfg = cfg.withDefaults()
	var jobs []job
	for _, name := range cfg.workloadNames() {
		spec := cfg.mustWorkload(name)
		for _, d := range []machine.Design{machine.Baseline, machine.C3D} {
			jobs = append(jobs, job{
				key:  key("fig8", name, d),
				spec: spec,
				mcfg: cfg.machineConfig(cfg.Sockets, d, spec.PreferredPolicy),
			})
		}
	}
	results, err := cfg.runJobs(ctx, jobs)
	if err != nil {
		return Fig8Result{}, err
	}
	out := Fig8Result{
		Reads:  make(map[string]float64),
		Writes: make(map[string]float64),
		Total:  make(map[string]float64),
	}
	for _, name := range cfg.workloadNames() {
		base := results[key("fig8", name, machine.Baseline)]
		c3d := results[key("fig8", name, machine.C3D)]
		out.Reads[name] = c3d.NormalizedRemoteMemReads(base)
		out.Writes[name] = c3d.NormalizedRemoteMemWrites(base)
		out.Total[name] = c3d.NormalizedRemoteMemAccesses(base)
	}
	names := cfg.workloadNames()
	out.GeomeanReads = geomeanOver(names, func(n string) float64 { return out.Reads[n] })
	out.GeomeanWrites = geomeanOver(names, func(n string) float64 { return out.Writes[n] })
	out.GeomeanTotal = geomeanOver(names, func(n string) float64 { return out.Total[n] })
	return out, nil
}

// --- Fig. 9: inter-socket traffic normalised to the baseline ---

// Fig9Result reproduces Fig. 9: the bytes crossing the inter-socket fabric
// under each design, normalised to the baseline.
type Fig9Result struct {
	// Normalized maps workload -> design name -> normalised traffic.
	Normalized map[string]map[string]float64
	// Geomean maps design name -> geometric mean.
	Geomean map[string]float64
}

// Table renders the traffic comparison.
func (r Fig9Result) Table() *stats.Table {
	headers := []string{"workload"}
	for _, d := range evaluatedDesigns {
		headers = append(headers, d.String())
	}
	t := stats.NewTable(headers...)
	for _, name := range tableNames(r.Normalized) {
		row := r.Normalized[name]
		cells := []string{name}
		for _, d := range evaluatedDesigns {
			cells = append(cells, fmt.Sprintf("%.3f", row[d.String()]))
		}
		t.AddRow(cells...)
	}
	cells := []string{"geomean"}
	for _, d := range evaluatedDesigns {
		cells = append(cells, fmt.Sprintf("%.3f", r.Geomean[d.String()]))
	}
	t.AddRow(cells...)
	return t
}

// Fig9 runs the inter-socket traffic study. It reuses the same runs as
// Fig. 6 (the paper derives both from one experiment campaign).
func Fig9(ctx context.Context, cfg Config) (Fig9Result, error) {
	cfg = cfg.withDefaults()
	results, err := designComparison(ctx, cfg, 4, "fig9", nil)
	if err != nil {
		return Fig9Result{}, err
	}
	out := Fig9Result{Normalized: make(map[string]map[string]float64), Geomean: make(map[string]float64)}
	for _, name := range cfg.workloadNames() {
		base := results[key("fig9", name, machine.Baseline)]
		row := make(map[string]float64)
		for _, d := range evaluatedDesigns {
			row[d.String()] = results[key("fig9", name, d)].NormalizedInterSocketTraffic(base)
		}
		out.Normalized[name] = row
	}
	for _, d := range evaluatedDesigns {
		d := d
		out.Geomean[d.String()] = geomeanOver(cfg.workloadNames(), func(name string) float64 {
			return out.Normalized[name][d.String()]
		})
	}
	return out, nil
}
