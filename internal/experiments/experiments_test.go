package experiments

import (
	"context"
	"strings"
	"testing"

	"c3d/internal/interconnect"
	"c3d/internal/machine"
	"c3d/internal/workload"
)

// testConfig keeps experiment smoke tests fast: two representative workloads,
// 8 threads, short streams. The qualitative relationships checked below
// survive the reduction; the full-scale numbers live in EXPERIMENTS.md.
func testConfig() Config {
	cfg := QuickConfig()
	cfg.AccessesPerThread = 8000
	cfg.Workloads = []string{"streamcluster", "nutch"}
	return cfg
}

func TestRegistryCoversEveryPaperArtefact(t *testing.T) {
	wantIDs := []string{"table1", "fig2", "fig3", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "sec6c", "verify", "scaling"}
	have := map[string]bool{}
	for _, id := range IDs() {
		have[id] = true
	}
	for _, id := range wantIDs {
		if !have[id] {
			t.Errorf("experiment %q missing from the registry", id)
		}
	}
	for _, e := range All() {
		if e.Description == "" || e.Paper == "" || e.Run == nil {
			t.Errorf("entry %q incomplete", e.ID)
		}
	}
	if _, err := Lookup("fig6"); err != nil {
		t.Errorf("Lookup(fig6): %v", err)
	}
	if _, err := Lookup("fig42"); err == nil {
		t.Error("Lookup of an unknown experiment should fail")
	}
}

func TestTableIRemoteFractions(t *testing.T) {
	res, err := TableI(context.Background(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RemoteFraction) != 2 {
		t.Fatalf("expected 2 workloads, got %d", len(res.RemoteFraction))
	}
	for name, frac := range res.RemoteFraction {
		// Table I reports 61-77% remote; allow wide tolerance at the reduced
		// test scale.
		if frac < 0.45 || frac > 0.95 {
			t.Errorf("%s remote fraction = %.2f, want roughly 0.6-0.8", name, frac)
		}
	}
	if res.Average <= 0 {
		t.Error("average remote fraction should be positive")
	}
	if !strings.Contains(res.Table().String(), "streamcluster") {
		t.Error("table output missing workload rows")
	}
}

func TestFig2ShowsLatencyNotBandwidth(t *testing.T) {
	res, err := Fig2(context.Background(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	zeroLat := res.Geomean["0_qpi_lat"]
	infBW := res.Geomean["inf_mem_bw+inf_qpi_bw"]
	// The paper's conclusion: removing inter-socket latency helps a lot
	// (14-60%), removing bandwidth limits helps little.
	if zeroLat < 1.05 {
		t.Errorf("0-QPI-latency speedup = %.3f, want a clear gain", zeroLat)
	}
	if infBW > 1.10 {
		t.Errorf("infinite-bandwidth speedup = %.3f, want close to 1 (bandwidth is not the bottleneck)", infBW)
	}
	if zeroLat <= infBW {
		t.Errorf("latency (%.3f) should matter more than bandwidth (%.3f)", zeroLat, infBW)
	}
}

func TestFig3LargerLLCsCutMemoryAccesses(t *testing.T) {
	res, err := Fig3(context.Background(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	small := res.Geomean[Fig3Capacities[1]]
	large := res.Geomean[Fig3Capacities[3]]
	if large >= 1.0 {
		t.Errorf("1GB-LLC normalised accesses = %.3f, want below 1", large)
	}
	if large > small {
		t.Errorf("memory accesses should fall monotonically with capacity: 64MB=%.3f, 1GB=%.3f", small, large)
	}
}

func TestFig6C3DWinsOnAverage(t *testing.T) {
	res, err := Fig6(context.Background(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	c3d := res.Geomean["c3d"]
	snoopy := res.Geomean["snoopy"]
	if c3d <= 1.0 {
		t.Errorf("C3D geomean speedup = %.3f, want above 1", c3d)
	}
	if c3d <= snoopy {
		t.Errorf("C3D (%.3f) should beat snoopy (%.3f)", c3d, snoopy)
	}
	// streamcluster is the headline winner in the paper.
	if sc := res.Speedup["streamcluster"]["c3d"]; sc < res.Speedup["nutch"]["c3d"] {
		t.Errorf("streamcluster speedup (%.3f) should exceed nutch's (%.3f)", sc, res.Speedup["nutch"]["c3d"])
	}
	if !strings.Contains(res.Table().String(), "geomean") {
		t.Error("table should include the geomean row")
	}
}

func TestFig8ReadsFallWritesDoNot(t *testing.T) {
	res, err := Fig8(context.Background(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.GeomeanReads >= 1.0 {
		t.Errorf("normalised remote reads = %.3f, want below 1 (Fig. 8)", res.GeomeanReads)
	}
	// Write traffic is essentially unchanged by the write-through policy.
	if res.GeomeanWrites < 0.7 || res.GeomeanWrites > 1.3 {
		t.Errorf("normalised remote writes = %.3f, want near 1", res.GeomeanWrites)
	}
	if res.GeomeanTotal >= 1.0 {
		t.Errorf("normalised total remote accesses = %.3f, want below 1", res.GeomeanTotal)
	}
}

func TestFig9C3DCutsTrafficAndStaysNearFullDir(t *testing.T) {
	res, err := Fig9(context.Background(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	c3d := res.Geomean["c3d"]
	fullDir := res.Geomean["full-dir"]
	snoopy := res.Geomean["snoopy"]
	// At the reduced test scale most accesses are cold misses, so the
	// absolute reduction below the baseline (49% at full scale, recorded in
	// EXPERIMENTS.md) does not materialise; the orderings still must.
	if snoopy <= c3d {
		t.Errorf("snoopy traffic (%.3f) should exceed C3D's (%.3f)", snoopy, c3d)
	}
	if c3d > 1.4 {
		t.Errorf("C3D normalised traffic = %.3f, want close to or below the baseline", c3d)
	}
	// C3D's broadcasts add only a modest amount over the precise directory
	// (about 5% in the paper); allow generous slack at test scale.
	if c3d > fullDir*1.6 {
		t.Errorf("C3D traffic (%.3f) too far above full-dir's (%.3f)", c3d, fullDir)
	}
}

func TestSec6CFilterRemovesAllMcfBroadcasts(t *testing.T) {
	cfg := testConfig()
	cfg.Workloads = []string{"streamcluster"}
	res, err := Sec6C(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	mcf, ok := res.PerWorkload["mcf"]
	if !ok {
		t.Fatal("mcf missing from the §VI-C study")
	}
	if mcf.BroadcastsBase == 0 {
		t.Error("mcf without the filter should broadcast on write misses")
	}
	if mcf.BroadcastsFiltered != 0 {
		t.Errorf("mcf with the filter sent %d broadcasts, want 0 (all data is private)", mcf.BroadcastsFiltered)
	}
	if mcf.BroadcastReduction < 0.999 {
		t.Errorf("mcf broadcast reduction = %.3f, want 100%%", mcf.BroadcastReduction)
	}
	// Multi-threaded workloads see only a small broadcast reduction.
	if sc := res.PerWorkload["streamcluster"]; sc.BroadcastReduction > 0.5 {
		t.Errorf("streamcluster broadcast reduction = %.3f, want small (shared data dominates)", sc.BroadcastReduction)
	}
}

func TestVerifyPasses(t *testing.T) {
	res, err := Verify(context.Background(), VerifyConfig{Sockets: 2, LoadsPerCore: 1, StoresPerCore: 1, IncludeFullDirVariant: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed() {
		t.Fatalf("protocol verification failed:\n%s", res.Table())
	}
	if len(res.Reports) != 2 {
		t.Errorf("expected 2 reports (base + full-dir variant), got %d", len(res.Reports))
	}
}

func TestQuickAndDefaultConfigs(t *testing.T) {
	def := DefaultConfig().withDefaults()
	if def.Threads != 32 || def.Sockets != 4 || def.Scale != workload.DefaultScale {
		t.Errorf("DefaultConfig = %+v, want the paper's 32-thread 4-socket setup", def)
	}
	quick := QuickConfig().withDefaults()
	if quick.AccessesPerThread >= 50_000 {
		t.Error("QuickConfig should use short access streams")
	}
	if quick.Parallelism < 1 {
		t.Error("withDefaults should set a positive parallelism")
	}
	mc := def.machineConfig(4, machine.C3D, workload.MustGet("streamcluster").PreferredPolicy)
	if mc.CoresPerSocket != 8 {
		t.Errorf("machineConfig cores/socket = %d, want 8", mc.CoresPerSocket)
	}
}

// TestScalingStudyShapesAndSanity checks the socket-scaling grid: quick
// configurations sweep {2,4,8} sockets across every hosting topology with
// both designs, baseline rows are exactly 1.0 speedup, and the one-hop
// fully-connected fabric moves fewer bytes per access than the ring at 8
// sockets (it pays links for hops).
func TestScalingStudyShapesAndSanity(t *testing.T) {
	cfg := testConfig()
	cfg.AccessesPerThread = 2000
	cfg.Workloads = []string{"streamcluster"}
	res, err := Scaling(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 3 socket counts x 3 hosting topologies x 2 designs.
	if len(res.Points) != 18 {
		t.Fatalf("scaling produced %d points, want 18: %+v", len(res.Points), res.Points)
	}
	byKey := map[string]ScalingPoint{}
	for _, p := range res.Points {
		if p.Design == "baseline" && p.Speedup != 1.0 {
			t.Errorf("baseline speedup at %d/%s = %v, want exactly 1", p.Sockets, p.Topology, p.Speedup)
		}
		if p.OffSocketBytesPerAccess <= 0 {
			t.Errorf("no off-socket traffic recorded at %d/%s/%s", p.Sockets, p.Topology, p.Design)
		}
		byKey[key(p.Sockets, p.Topology, p.Design)] = p
	}
	for _, n := range []int{2, 4, 8} {
		for _, topo := range []string{"mesh", "full"} {
			if _, ok := byKey[key(n, topo, "c3d")]; !ok {
				t.Errorf("missing scaling point %d/%s/c3d", n, topo)
			}
		}
	}
	ring8 := byKey[key(8, "ring", "baseline")]
	full8 := byKey[key(8, "full", "baseline")]
	if full8.OffSocketBytesPerAccess >= ring8.OffSocketBytesPerAccess {
		t.Errorf("fully-connected@8 should move fewer bytes/access than ring@8: %v vs %v",
			full8.OffSocketBytesPerAccess, ring8.OffSocketBytesPerAccess)
	}
	if ring8.Diameter != 4 || full8.Diameter != 1 {
		t.Errorf("diameters ring8=%d full8=%d, want 4 and 1", ring8.Diameter, full8.Diameter)
	}
	if full8.Links != 56 || ring8.Links != 16 {
		t.Errorf("links ring8=%d full8=%d, want 16 and 56", ring8.Links, full8.Links)
	}
}

// TestTopologyConfigReachesMachines checks Config.Topology flows into the
// machines an ordinary experiment builds: table1 on a fully-connected
// 4-socket fabric must differ from the ring default (fewer hops, same
// remote-access pattern) while remaining deterministic.
func TestTopologyConfigReachesMachines(t *testing.T) {
	run := func(topo interconnect.Topology) TableIResult {
		cfg := testConfig()
		cfg.AccessesPerThread = 2000
		cfg.Workloads = []string{"streamcluster"}
		cfg.Topology = topo
		res, err := TableI(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ring := run("") // default for 4 sockets
	full := run(interconnect.FullyConnected)
	full2 := run(interconnect.FullyConnected)
	// Same topology twice: identical (determinism). Different topology:
	// the timing feedback must show up somewhere — if the knob never
	// reached the machine the two runs would be bit-identical.
	differs := false
	for wl, frac := range ring.RemoteFraction {
		if full.RemoteFraction[wl] != full2.RemoteFraction[wl] {
			t.Errorf("fully-connected rerun diverged for %s", wl)
		}
		if full.RemoteFraction[wl] != frac {
			differs = true
		}
	}
	if !differs && ring.Average == full.Average {
		t.Error("topology override produced bit-identical results: the knob never reached the machines")
	}
}

// TestTopologyShapeConflictIsAnErrorNotAPanic pins the failure mode of a
// topology that suits the session's shape but not an experiment's own: fig7
// builds 2-socket machines, which a ring cannot host. That must surface as a
// job error — a panic here runs inside a sweep worker goroutine and would
// take down the whole process (CLI or c3dd daemon).
func TestTopologyShapeConflictIsAnErrorNotAPanic(t *testing.T) {
	cfg := testConfig()
	cfg.AccessesPerThread = 500
	cfg.Workloads = []string{"streamcluster"}
	cfg.Topology = interconnect.Ring
	_, err := Fig7(context.Background(), cfg)
	if err == nil || !strings.Contains(err.Error(), "hosts 3-16 sockets, not 2") {
		t.Fatalf("fig7 under -topology ring: err = %v, want a hosting error", err)
	}
}

func TestLatencySensitivityShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("sensitivity sweeps are slow; run without -short")
	}
	cfg := testConfig()
	cfg.Workloads = []string{"streamcluster"}
	f10, err := Fig10(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// C3D keeps a healthy gain even when the DRAM cache is as slow as
	// memory (50ns), per §VI-D.
	if s := f10.Speedup[50]["c3d"]; s <= 1.0 {
		t.Errorf("c3d speedup at 50ns DRAM cache latency = %.3f, want above 1", s)
	}
	if f10.Speedup[30]["c3d"] < f10.Speedup[50]["c3d"] {
		t.Error("a faster DRAM cache should not reduce C3D's speedup")
	}
	f11, err := Fig11(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// C3D's gain grows with the inter-socket latency.
	if f11.Speedup[30]["c3d"] < f11.Speedup[5]["c3d"] {
		t.Errorf("c3d speedup should grow with inter-socket latency: 5ns=%.3f, 30ns=%.3f",
			f11.Speedup[5]["c3d"], f11.Speedup[30]["c3d"])
	}
}

func TestPrivateVsSharedAndAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweeps are slow; run without -short")
	}
	cfg := testConfig()
	cfg.Workloads = []string{"streamcluster"}
	pvs, err := PrivateVsShared(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	row := pvs.TrafficReduction["streamcluster"]
	if row["c3d"] <= row["shared"] {
		t.Errorf("private caches should cut more inter-socket traffic than the shared organisation: %.3f vs %.3f",
			row["c3d"], row["shared"])
	}
	abl, err := Ablation(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if abl.MissPredictor["streamcluster"] <= 0 {
		t.Error("miss-predictor ablation should produce a speedup ratio")
	}
}
