// Package experiments reproduces every table and figure of the C3D paper's
// evaluation: the remote-access characterisation (Table I), the NUMA
// bottleneck analysis (Fig. 2), the cache-capacity study (Fig. 3), the
// 4-socket and 2-socket design comparisons (Figs. 6-7), the memory and
// inter-socket traffic breakdowns (Figs. 8-9), the latency sensitivity
// studies (Figs. 10-11), the broadcast-filter study (§VI-C), and the protocol
// verification (§IV-C).
//
// Each experiment returns a structured result with the same rows/series the
// paper reports plus a formatted table; cmd/c3dexp prints them, the
// repository-level benchmarks regenerate them, and EXPERIMENTS.md records a
// full-scale run next to the paper's numbers.
package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"c3d/internal/interconnect"
	"c3d/internal/machine"
	"c3d/internal/numa"
	"c3d/internal/sample"
	"c3d/internal/stats"
	"c3d/internal/sweep"
	"c3d/internal/trace"
	"c3d/internal/workload"
)

// Config parameterises an experiment run. The zero value is not usable; start
// from DefaultConfig (paper-scale workloads) or QuickConfig (minutes-scale).
type Config struct {
	// Sockets is the machine size for experiments that do not fix it
	// themselves (Fig. 7 always uses 2, everything else 4).
	Sockets int
	// Topology pins the fabric topology for every machine the experiment
	// builds (empty = the socket count's default: p2p for 2, ring beyond).
	// The scaling experiment sweeps its own topology grid and ignores it.
	Topology interconnect.Topology
	// Threads is the number of workload threads (and cores used).
	Threads int
	// CoresPerSocket is derived from Threads/Sockets when zero.
	CoresPerSocket int
	// Scale divides cache capacities and workload footprints together.
	Scale int
	// AccessesPerThread overrides each workload's default when positive.
	AccessesPerThread int
	// WarmupFraction is the fraction of each thread's stream used to warm
	// caches before measurement.
	WarmupFraction float64
	// Workloads restricts the workload set (nil means the paper's nine).
	Workloads []string
	// Extra holds workload specs resolvable by name in addition to the open
	// registry — compiled workload-spec documents joined for this campaign
	// only. Names here shadow registry entries.
	Extra []workload.Spec
	// Parallelism bounds concurrent simulations (0 = GOMAXPROCS). It only
	// affects wall-clock time: results are bit-identical at any value.
	Parallelism int
	// Sampling, when non-empty, runs every simulation in SMARTS-style
	// sampled mode under this schedule spec
	// ("stretch=N,warm=N,win=N[,seed=S]", see internal/sample): detailed
	// simulation only inside warm-up and measured windows, functional
	// warming between them, and per-metric 95% confidence half-widths on
	// every result. Results remain bit-identical at any Parallelism for a
	// fixed (config, seed, spec).
	Sampling string
	// Streaming drives each simulation from an incremental workload
	// generator instead of a materialised in-memory trace: resident memory
	// stays bounded regardless of AccessesPerThread, at the cost of
	// regenerating the record streams for every design (the shared trace
	// cache is bypassed). Results are bit-identical either way.
	Streaming bool
	// Seed offsets workload generation. Zero reproduces the default runs;
	// the same seed always regenerates the same traces, and every design
	// sees the same trace for a given workload regardless of seed.
	Seed int64
	// Progress, if non-nil, receives a structured event per completed
	// simulation (Event.String reproduces the old progress lines).
	Progress func(Event)
}

// DefaultConfig reproduces the paper's setup: 32 threads, the full workload
// suite, 200k accesses per thread, capacity scale 64.
func DefaultConfig() Config {
	return Config{
		Sockets:        4,
		Threads:        32,
		Scale:          workload.DefaultScale,
		WarmupFraction: 0.25,
	}
}

// QuickConfig is a reduced configuration for tests, benchmarks and smoke
// runs: 8 threads, short access streams and a more aggressive capacity scale
// (so the short streams still exhibit the reuse that the full-scale runs
// get from their length). The qualitative shape of every result is
// preserved; absolute magnitudes are noisier.
func QuickConfig() Config {
	cfg := DefaultConfig()
	cfg.Threads = 8
	cfg.AccessesPerThread = 6000
	cfg.Scale = 512
	return cfg
}

func (c Config) withDefaults() Config {
	if c.Sockets <= 0 {
		c.Sockets = 4
	}
	if c.Threads <= 0 {
		c.Threads = 32
	}
	if c.Scale <= 0 {
		c.Scale = workload.DefaultScale
	}
	if c.WarmupFraction <= 0 {
		c.WarmupFraction = 0.25
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	return c
}

// workloadNames returns the workload set for this config.
func (c Config) workloadNames() []string {
	if len(c.Workloads) > 0 {
		return c.Workloads
	}
	return workload.Names()
}

// workload resolves a name against this config: campaign-local extra specs
// first (compiled workload-spec documents), then the open registry.
func (c Config) workload(name string) (workload.Spec, error) {
	for _, s := range c.Extra {
		if s.Name == name {
			return s, nil
		}
	}
	return workload.Get(name)
}

// mustWorkload is workload for names the campaign itself produced (its
// workloadNames); an unknown name here is a programming error.
func (c Config) mustWorkload(name string) workload.Spec {
	s, err := c.workload(name)
	if err != nil {
		panic(err)
	}
	return s
}

// tableNames orders result-map keys for rendering: registration order first
// (the paper's suite ordering), then any remaining names — workload specs
// compiled outside the registry — sorted. Every current table is keyed by
// registry names only, so their row order is unchanged.
func tableNames[M ~map[string]V, V any](m M) []string {
	seen := make(map[string]bool, len(m))
	var out []string
	for _, n := range workload.AllNames() {
		if _, ok := m[n]; ok && !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	for _, n := range sortedKeys(m) {
		if !seen[n] {
			out = append(out, n)
		}
	}
	return out
}

// machineConfig builds the machine configuration for a design under this
// experiment config.
func (c Config) machineConfig(sockets int, design machine.Design, policy numa.Policy) machine.Config {
	mc := machine.DefaultConfig(sockets, design)
	mc.Topology = c.Topology
	mc.Scale = c.Scale
	mc.MemPolicy = policy
	if c.CoresPerSocket > 0 {
		mc.CoresPerSocket = c.CoresPerSocket
	} else {
		mc.CoresPerSocket = (c.Threads + sockets - 1) / sockets
	}
	return mc
}

// traceCache memoises generated traces: several experiments run the same
// workload through many machine configurations, and generation is a
// measurable fraction of a quick run.
//
// The cache is bounded by LRU eviction: when it is full, the least recently
// used trace is dropped. (It used to discard the whole map at the bound,
// which threw away the hot traces mid-campaign and forced every design after
// the flush to regenerate its workload.)
type traceCache struct {
	mu     sync.Mutex
	traces map[string]*trace.Trace
	// order holds the cached keys from least to most recently used.
	order []string
	max   int
	// inflight dedupes concurrent generations of the same key
	// (singleflight): sweep workers claim jobs workload-major, so at every
	// workload boundary several workers miss the cache for the same trace
	// at once and must share one generation, not race P of them.
	inflight map[string]*traceCall
}

// traceCall is one in-flight generation; done is closed once tr/err are set.
type traceCall struct {
	done chan struct{}
	tr   *trace.Trace
	err  error
}

// traceCacheEntries bounds the shared cache so long experiment campaigns do
// not hold every trace alive at once.
const traceCacheEntries = 24

var sharedTraces = newTraceCache(traceCacheEntries)

func newTraceCache(max int) *traceCache {
	return &traceCache{
		traces:   make(map[string]*trace.Trace),
		inflight: make(map[string]*traceCall),
		max:      max,
	}
}

func (tc *traceCache) get(spec workload.Spec, opts workload.Options) (*trace.Trace, error) {
	// Fingerprint distinguishes workload-spec documents that reuse a name
	// across campaigns (registry specs leave it empty): without it, two
	// different specs named "mix" sharing a process would collide in the
	// cache and one campaign would silently replay the other's trace.
	key := fmt.Sprintf("%s/%s/%d/%d/%d/%d", spec.Name, spec.Fingerprint, opts.Threads, opts.Scale, opts.AccessesPerThread, opts.SeedOffset)
	tc.mu.Lock()
	if tr, ok := tc.traces[key]; ok {
		tc.touch(key)
		tc.mu.Unlock()
		return tr, nil
	}
	if call, ok := tc.inflight[key]; ok {
		// Another worker is generating this trace: wait for its result
		// instead of duplicating the work.
		tc.mu.Unlock()
		<-call.done
		return call.tr, call.err
	}
	call := &traceCall{done: make(chan struct{})}
	tc.inflight[key] = call
	tc.mu.Unlock()

	// Generate outside the lock: generations of *different* keys must not
	// serialise behind one another.
	tr, err := workload.Generate(spec, opts)

	tc.mu.Lock()
	delete(tc.inflight, key)
	if err == nil {
		for len(tc.traces) >= tc.max && len(tc.order) > 0 {
			oldest := tc.order[0]
			tc.order = tc.order[1:]
			delete(tc.traces, oldest)
		}
		tc.traces[key] = tr
		tc.order = append(tc.order, key)
	}
	tc.mu.Unlock()
	call.tr, call.err = tr, err
	close(call.done)
	return tr, err
}

// touch moves key to the most-recently-used end. Callers hold tc.mu.
func (tc *traceCache) touch(key string) {
	for i, k := range tc.order {
		if k == key {
			copy(tc.order[i:], tc.order[i+1:])
			tc.order[len(tc.order)-1] = key
			return
		}
	}
}

// job is one simulation: a workload run on one machine configuration.
type job struct {
	key      string
	spec     workload.Spec
	mcfg     machine.Config
	mutate   func(*machine.Config)
	seedOff  int64
	accesses int
}

// runJobs executes the jobs on the sweep runner and returns results keyed by
// job key. Ordering, seeding and error selection are deterministic: the same
// jobs produce identical results at any Parallelism. Cancelling the context
// aborts the sweep early (in-flight simulations stop between accesses) and
// surfaces ctx's error.
func (c Config) runJobs(ctx context.Context, jobs []job) (map[string]machine.RunResult, error) {
	c = c.withDefaults()
	sjobs := make([]sweep.Job[machine.RunResult], len(jobs))
	for i, j := range jobs {
		j := j
		// The seed is explicit rather than key-derived: every design
		// simulating a given workload must share its trace, so the seed
		// depends on the workload stream (seedOff) and the campaign (Seed),
		// never on the design part of the key.
		seed := j.seedOff + c.Seed
		sjobs[i] = sweep.Job[machine.RunResult]{
			Key:  j.key,
			Seed: &seed,
			Run: func(ctx context.Context, seed int64) (machine.RunResult, error) {
				return c.runOne(ctx, j, seed)
			},
		}
	}
	var progress func(sweep.Progress)
	if c.Progress != nil {
		progress = func(p sweep.Progress) {
			if p.Err != nil {
				// p.Err already names the job key (sweep wraps it).
				c.Progress(Event{Kind: EventSimulationFailed, Job: p.Key, Done: p.Done, Total: p.Total, Elapsed: p.Elapsed, Err: p.Err})
				return
			}
			c.Progress(Event{Kind: EventSimulationDone, Job: p.Key, Done: p.Done, Total: p.Total, Elapsed: p.Elapsed})
		}
	}
	// BaseSeed is deliberately not set: every job carries an explicit seed
	// (seedOff + c.Seed above), so sweep's key-derived seeding never applies.
	results, err := sweep.Run(ctx, sjobs, sweep.Options{
		Parallelism: c.Parallelism,
		Progress:    progress,
	})
	out := make(map[string]machine.RunResult, len(results))
	for _, r := range results {
		if r.Err == nil {
			out[r.Key] = r.Value
		}
	}
	if err != nil {
		// err already carries the failing job's key via sweep's wrapping.
		return out, fmt.Errorf("experiment %w", err)
	}
	return out, nil
}

func (c Config) runOne(ctx context.Context, j job, seed int64) (machine.RunResult, error) {
	accesses := c.AccessesPerThread
	if j.accesses > 0 {
		accesses = j.accesses
	}
	opts := workload.Options{
		Threads:           c.Threads,
		Scale:             c.Scale,
		AccessesPerThread: accesses,
		SeedOffset:        seed,
	}
	sspec, err := sample.Parse(c.Sampling)
	if err != nil {
		return machine.RunResult{}, err
	}
	runOpts := machine.RunOptions{WarmupFraction: c.WarmupFraction, Sampling: sspec}
	mcfg := j.mcfg
	if j.mutate != nil {
		j.mutate(&mcfg)
	}
	// Validate before construction: machine.New panics on a bad config, and
	// a panic in a sweep worker kills the whole process (CLI or daemon). A
	// session-level check cannot catch everything — experiments fix their
	// own socket counts, so a topology that suits the session's shape can
	// still be unhostable here (fig7's 2-socket machines under -topology
	// ring) — and must surface as a job error, not a crash.
	if err := mcfg.Validate(); err != nil {
		return machine.RunResult{}, err
	}
	m := acquireMachine(mcfg)
	defer releaseMachine(mcfg, m)
	if c.Streaming {
		src, err := workload.NewSource(j.spec, opts)
		if err != nil {
			return machine.RunResult{}, err
		}
		return m.RunSource(ctx, src, runOpts)
	}
	tr, err := sharedTraces.get(j.spec, opts)
	if err != nil {
		return machine.RunResult{}, err
	}
	return m.Run(ctx, tr, runOpts)
}

// machinePools reuses machines across jobs that share a configuration:
// experiment campaigns run the same machine over many workloads (and many
// repetitions at the sweep layer), and construction is where the last ~1,000
// allocations per simulation lived. Keyed by the full machine.Config (a
// comparable struct), so a pooled machine can never be reused under a
// different configuration; Machine.Reset makes a reused machine
// bit-identical to a fresh one. sync.Pool keeps the cache GC-elastic: idle
// machines are collectable memory, not a leak.
var machinePools sync.Map // machine.Config -> *sync.Pool

func acquireMachine(cfg machine.Config) *machine.Machine {
	p, ok := machinePools.Load(cfg)
	if !ok {
		p, _ = machinePools.LoadOrStore(cfg, &sync.Pool{})
	}
	if m, ok := p.(*sync.Pool).Get().(*machine.Machine); ok {
		m.Reset()
		return m
	}
	return machine.New(cfg)
}

func releaseMachine(cfg machine.Config, m *machine.Machine) {
	if p, ok := machinePools.Load(cfg); ok {
		p.(*sync.Pool).Put(m)
	}
}

// key builds a stable job key.
func key(parts ...interface{}) string {
	s := ""
	for i, p := range parts {
		if i > 0 {
			s += "/"
		}
		s += fmt.Sprint(p)
	}
	return s
}

// geomeanOver collects a metric over workloads and returns its geometric
// mean.
func geomeanOver(names []string, metric func(name string) float64) float64 {
	vals := make([]float64, 0, len(names))
	for _, n := range names {
		vals = append(vals, metric(n))
	}
	return stats.Geomean(vals)
}

// sortedKeys returns map keys in sorted order (deterministic table output).
func sortedKeys[M ~map[string]V, V any](m M) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
