// Package experiments reproduces every table and figure of the C3D paper's
// evaluation: the remote-access characterisation (Table I), the NUMA
// bottleneck analysis (Fig. 2), the cache-capacity study (Fig. 3), the
// 4-socket and 2-socket design comparisons (Figs. 6-7), the memory and
// inter-socket traffic breakdowns (Figs. 8-9), the latency sensitivity
// studies (Figs. 10-11), the broadcast-filter study (§VI-C), and the protocol
// verification (§IV-C).
//
// Each experiment returns a structured result with the same rows/series the
// paper reports plus a formatted table; cmd/c3dexp prints them, the
// repository-level benchmarks regenerate them, and EXPERIMENTS.md records a
// full-scale run next to the paper's numbers.
package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"c3d/internal/machine"
	"c3d/internal/numa"
	"c3d/internal/stats"
	"c3d/internal/trace"
	"c3d/internal/workload"
)

// Config parameterises an experiment run. The zero value is not usable; start
// from DefaultConfig (paper-scale workloads) or QuickConfig (minutes-scale).
type Config struct {
	// Sockets is the machine size for experiments that do not fix it
	// themselves (Fig. 7 always uses 2, everything else 4).
	Sockets int
	// Threads is the number of workload threads (and cores used).
	Threads int
	// CoresPerSocket is derived from Threads/Sockets when zero.
	CoresPerSocket int
	// Scale divides cache capacities and workload footprints together.
	Scale int
	// AccessesPerThread overrides each workload's default when positive.
	AccessesPerThread int
	// WarmupFraction is the fraction of each thread's stream used to warm
	// caches before measurement.
	WarmupFraction float64
	// Workloads restricts the workload set (nil means the paper's nine).
	Workloads []string
	// Parallelism bounds concurrent simulations (0 = GOMAXPROCS).
	Parallelism int
	// Progress, if non-nil, receives a line per completed simulation.
	Progress func(string)
}

// DefaultConfig reproduces the paper's setup: 32 threads, the full workload
// suite, 200k accesses per thread, capacity scale 64.
func DefaultConfig() Config {
	return Config{
		Sockets:        4,
		Threads:        32,
		Scale:          workload.DefaultScale,
		WarmupFraction: 0.25,
	}
}

// QuickConfig is a reduced configuration for tests, benchmarks and smoke
// runs: 8 threads, short access streams and a more aggressive capacity scale
// (so the short streams still exhibit the reuse that the full-scale runs
// get from their length). The qualitative shape of every result is
// preserved; absolute magnitudes are noisier.
func QuickConfig() Config {
	cfg := DefaultConfig()
	cfg.Threads = 8
	cfg.AccessesPerThread = 6000
	cfg.Scale = 512
	return cfg
}

func (c Config) withDefaults() Config {
	if c.Sockets <= 0 {
		c.Sockets = 4
	}
	if c.Threads <= 0 {
		c.Threads = 32
	}
	if c.Scale <= 0 {
		c.Scale = workload.DefaultScale
	}
	if c.WarmupFraction <= 0 {
		c.WarmupFraction = 0.25
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	return c
}

// workloadNames returns the workload set for this config.
func (c Config) workloadNames() []string {
	if len(c.Workloads) > 0 {
		return c.Workloads
	}
	return workload.Names()
}

// machineConfig builds the machine configuration for a design under this
// experiment config.
func (c Config) machineConfig(sockets int, design machine.Design, policy numa.Policy) machine.Config {
	mc := machine.DefaultConfig(sockets, design)
	mc.Scale = c.Scale
	mc.MemPolicy = policy
	if c.CoresPerSocket > 0 {
		mc.CoresPerSocket = c.CoresPerSocket
	} else {
		mc.CoresPerSocket = (c.Threads + sockets - 1) / sockets
	}
	return mc
}

// traceCache memoises generated traces: several experiments run the same
// workload through many machine configurations, and generation is a
// measurable fraction of a quick run.
type traceCache struct {
	mu     sync.Mutex
	traces map[string]*trace.Trace
}

var sharedTraces = &traceCache{traces: make(map[string]*trace.Trace)}

func (tc *traceCache) get(spec workload.Spec, opts workload.Options) (*trace.Trace, error) {
	key := fmt.Sprintf("%s/%d/%d/%d/%d", spec.Name, opts.Threads, opts.Scale, opts.AccessesPerThread, opts.SeedOffset)
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if tr, ok := tc.traces[key]; ok {
		return tr, nil
	}
	tr, err := workload.Generate(spec, opts)
	if err != nil {
		return nil, err
	}
	// Bound the cache so long experiment campaigns do not hold every trace
	// alive at once.
	if len(tc.traces) > 24 {
		tc.traces = make(map[string]*trace.Trace)
	}
	tc.traces[key] = tr
	return tr, nil
}

// job is one simulation: a workload run on one machine configuration.
type job struct {
	key      string
	spec     workload.Spec
	mcfg     machine.Config
	mutate   func(*machine.Config)
	seedOff  int64
	accesses int
}

// runJobs executes the jobs with bounded parallelism and returns results
// keyed by job key.
func (c Config) runJobs(jobs []job) (map[string]machine.RunResult, error) {
	c = c.withDefaults()
	results := make(map[string]machine.RunResult, len(jobs))
	var mu sync.Mutex
	var firstErr error
	sem := make(chan struct{}, c.Parallelism)
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			res, err := c.runOne(j)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("experiment job %s: %w", j.key, err)
				}
				return
			}
			results[j.key] = res
			if c.Progress != nil {
				c.Progress(fmt.Sprintf("done %-40s %s", j.key, res.String()))
			}
		}(j)
	}
	wg.Wait()
	return results, firstErr
}

func (c Config) runOne(j job) (machine.RunResult, error) {
	accesses := c.AccessesPerThread
	if j.accesses > 0 {
		accesses = j.accesses
	}
	opts := workload.Options{
		Threads:           c.Threads,
		Scale:             c.Scale,
		AccessesPerThread: accesses,
		SeedOffset:        j.seedOff,
	}
	tr, err := sharedTraces.get(j.spec, opts)
	if err != nil {
		return machine.RunResult{}, err
	}
	mcfg := j.mcfg
	if j.mutate != nil {
		j.mutate(&mcfg)
	}
	m := machine.New(mcfg)
	return m.Run(tr, machine.RunOptions{WarmupFraction: c.WarmupFraction})
}

// key builds a stable job key.
func key(parts ...interface{}) string {
	s := ""
	for i, p := range parts {
		if i > 0 {
			s += "/"
		}
		s += fmt.Sprint(p)
	}
	return s
}

// geomeanOver collects a metric over workloads and returns its geometric
// mean.
func geomeanOver(names []string, metric func(name string) float64) float64 {
	vals := make([]float64, 0, len(names))
	for _, n := range names {
		vals = append(vals, metric(n))
	}
	return stats.Geomean(vals)
}

// sortedKeys returns map keys in sorted order (deterministic table output).
func sortedKeys[M ~map[string]V, V any](m M) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
