package experiments

import (
	"context"
	"fmt"

	"c3d/internal/machine"
	"c3d/internal/stats"
)

// --- Table I: fraction of memory accesses satisfied by remote memory ---

// TableIResult reproduces Table I: for each workload, the fraction of memory
// accesses that a 4-socket baseline (no DRAM caches) satisfies from a remote
// socket's memory under a first-touch placement policy.
type TableIResult struct {
	// RemoteFraction maps workload name to the remote-memory fraction.
	RemoteFraction map[string]float64
	// Average is the arithmetic mean across workloads (the paper quotes
	// 26.5% local, i.e. 73.5% remote, on average).
	Average float64
}

// Table renders the result in the paper's layout.
func (r TableIResult) Table() *stats.Table {
	t := stats.NewTable("workload", "remote memory accesses")
	for _, name := range tableNames(r.RemoteFraction) {
		t.AddRow(name, stats.Percent(r.RemoteFraction[name]))
	}
	t.AddRow("average", stats.Percent(r.Average))
	return t
}

// TableI runs the Table I characterisation.
func TableI(ctx context.Context, cfg Config) (TableIResult, error) {
	cfg = cfg.withDefaults()
	var jobs []job
	for _, name := range cfg.workloadNames() {
		spec := cfg.mustWorkload(name)
		// Table I is collected under first-touch placement (§II-A).
		jobs = append(jobs, job{
			key:  key("table1", name),
			spec: spec,
			mcfg: cfg.machineConfig(cfg.Sockets, machine.Baseline, spec.PreferredPolicy),
		})
	}
	results, err := cfg.runJobs(ctx, jobs)
	if err != nil {
		return TableIResult{}, err
	}
	out := TableIResult{RemoteFraction: make(map[string]float64)}
	sum := 0.0
	for _, name := range cfg.workloadNames() {
		res := results[key("table1", name)]
		frac := res.Counters.RemoteMemFraction()
		out.RemoteFraction[name] = frac
		sum += frac
	}
	if n := len(cfg.workloadNames()); n > 0 {
		out.Average = sum / float64(n)
	}
	return out, nil
}

// --- Fig. 2: NUMA bottleneck analysis ---

// Fig2Idealisations lists the idealised configurations of Fig. 2 in the
// paper's order.
var Fig2Idealisations = []string{"0_qpi_lat", "inf_mem_bw", "inf_qpi_bw", "inf_mem_bw+inf_qpi_bw"}

// Fig2Result reproduces Fig. 2: the speedup of each idealised configuration
// over the realistic baseline, per workload.
type Fig2Result struct {
	// Speedup maps workload -> idealisation -> speedup over baseline.
	Speedup map[string]map[string]float64
	// Geomean maps idealisation -> geometric-mean speedup.
	Geomean map[string]float64
}

// Table renders the per-workload speedups.
func (r Fig2Result) Table() *stats.Table {
	t := stats.NewTable(append([]string{"workload"}, Fig2Idealisations...)...)
	for _, name := range tableNames(r.Speedup) {
		row := r.Speedup[name]
		cells := []string{name}
		for _, ideal := range Fig2Idealisations {
			cells = append(cells, fmt.Sprintf("%.3f", row[ideal]))
		}
		t.AddRow(cells...)
	}
	cells := []string{"geomean"}
	for _, ideal := range Fig2Idealisations {
		cells = append(cells, fmt.Sprintf("%.3f", r.Geomean[ideal]))
	}
	t.AddRow(cells...)
	return t
}

// Fig2 runs the NUMA bottleneck analysis.
func Fig2(ctx context.Context, cfg Config) (Fig2Result, error) {
	cfg = cfg.withDefaults()
	mutations := map[string]func(*machine.Config){
		"baseline":   nil,
		"0_qpi_lat":  func(m *machine.Config) { m.ZeroHopLatency = true },
		"inf_mem_bw": func(m *machine.Config) { m.InfiniteMemBW = true },
		"inf_qpi_bw": func(m *machine.Config) { m.InfiniteLinkBW = true },
		"inf_mem_bw+inf_qpi_bw": func(m *machine.Config) {
			m.InfiniteMemBW = true
			m.InfiniteLinkBW = true
		},
	}
	var jobs []job
	for _, name := range cfg.workloadNames() {
		spec := cfg.mustWorkload(name)
		// Jobs are built in the paper's presentation order, not map order:
		// job order decides progress-event order, which is wire-visible.
		for _, ideal := range append([]string{"baseline"}, Fig2Idealisations...) {
			mutate := mutations[ideal]
			jobs = append(jobs, job{
				key:    key("fig2", name, ideal),
				spec:   spec,
				mcfg:   cfg.machineConfig(cfg.Sockets, machine.Baseline, spec.PreferredPolicy),
				mutate: mutate,
			})
		}
	}
	results, err := cfg.runJobs(ctx, jobs)
	if err != nil {
		return Fig2Result{}, err
	}
	out := Fig2Result{Speedup: make(map[string]map[string]float64), Geomean: make(map[string]float64)}
	for _, name := range cfg.workloadNames() {
		base := results[key("fig2", name, "baseline")]
		row := make(map[string]float64)
		for _, ideal := range Fig2Idealisations {
			row[ideal] = results[key("fig2", name, ideal)].SpeedupOver(base)
		}
		out.Speedup[name] = row
	}
	for _, ideal := range Fig2Idealisations {
		out.Geomean[ideal] = geomeanOver(cfg.workloadNames(), func(name string) float64 {
			return out.Speedup[name][ideal]
		})
	}
	return out, nil
}

// --- Fig. 3: memory accesses as a function of LLC capacity ---

// Fig3Capacities are the LLC capacities swept by Fig. 3, expressed at paper
// scale (the baseline 16 MB plus the three larger points).
var Fig3Capacities = []uint64{16 * mibBytes, 64 * mibBytes, 256 * mibBytes, 1024 * mibBytes}

const mibBytes = 1 << 20

// Fig3Result reproduces Fig. 3: memory accesses with larger LLCs, normalised
// to the 16 MB baseline.
type Fig3Result struct {
	// Normalized maps workload -> capacity (bytes at paper scale) ->
	// memory accesses normalised to the 16 MB LLC.
	Normalized map[string]map[uint64]float64
	// Geomean maps capacity -> geometric mean across workloads.
	Geomean map[uint64]float64
}

// Table renders the normalised memory-access series.
func (r Fig3Result) Table() *stats.Table {
	headers := []string{"workload"}
	for _, c := range Fig3Capacities[1:] {
		headers = append(headers, fmt.Sprintf("%dMB", c/mibBytes))
	}
	t := stats.NewTable(headers...)
	for _, name := range tableNames(r.Normalized) {
		row := r.Normalized[name]
		cells := []string{name}
		for _, c := range Fig3Capacities[1:] {
			cells = append(cells, fmt.Sprintf("%.3f", row[c]))
		}
		t.AddRow(cells...)
	}
	cells := []string{"geomean"}
	for _, c := range Fig3Capacities[1:] {
		cells = append(cells, fmt.Sprintf("%.3f", r.Geomean[c]))
	}
	t.AddRow(cells...)
	return t
}

// Fig3 runs the LLC capacity sweep.
func Fig3(ctx context.Context, cfg Config) (Fig3Result, error) {
	cfg = cfg.withDefaults()
	var jobs []job
	for _, name := range cfg.workloadNames() {
		spec := cfg.mustWorkload(name)
		for _, capacity := range Fig3Capacities {
			capacity := capacity
			jobs = append(jobs, job{
				key:  key("fig3", name, capacity),
				spec: spec,
				mcfg: cfg.machineConfig(cfg.Sockets, machine.Baseline, spec.PreferredPolicy),
				mutate: func(m *machine.Config) {
					m.LLCSizeBytes = capacity
				},
			})
		}
	}
	results, err := cfg.runJobs(ctx, jobs)
	if err != nil {
		return Fig3Result{}, err
	}
	out := Fig3Result{Normalized: make(map[string]map[uint64]float64), Geomean: make(map[uint64]float64)}
	for _, name := range cfg.workloadNames() {
		base := results[key("fig3", name, Fig3Capacities[0])]
		row := make(map[uint64]float64)
		for _, capacity := range Fig3Capacities {
			row[capacity] = results[key("fig3", name, capacity)].NormalizedMemAccesses(base)
		}
		out.Normalized[name] = row
	}
	for _, capacity := range Fig3Capacities {
		capacity := capacity
		out.Geomean[capacity] = geomeanOver(cfg.workloadNames(), func(name string) float64 {
			return out.Normalized[name][capacity]
		})
	}
	return out, nil
}
