package experiments

import (
	"testing"

	"c3d/internal/workload"
)

func cacheOpts(accesses int) workload.Options {
	return workload.Options{Threads: 2, Scale: 512, AccessesPerThread: accesses}
}

// TestTraceCacheLRUEviction checks the cache keeps recently used traces and
// evicts the least recently used one — not the whole map — when full.
func TestTraceCacheLRUEviction(t *testing.T) {
	tc := newTraceCache(3)
	spec := workload.MustGet("streamcluster")

	// Fill: a(100) b(101) c(102), LRU order a, b, c.
	a, err := tc.get(spec, cacheOpts(100))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tc.get(spec, cacheOpts(101)); err != nil {
		t.Fatal(err)
	}
	c, err := tc.get(spec, cacheOpts(102))
	if err != nil {
		t.Fatal(err)
	}

	// Touch a: LRU order becomes b, c, a.
	a2, err := tc.get(spec, cacheOpts(100))
	if err != nil {
		t.Fatal(err)
	}
	if a2 != a {
		t.Fatal("hot trace was regenerated on a cache hit")
	}

	// Insert d: b (least recently used) must go; a, c, d stay.
	if _, err := tc.get(spec, cacheOpts(103)); err != nil {
		t.Fatal(err)
	}
	if len(tc.traces) != 3 {
		t.Fatalf("cache holds %d entries, want 3", len(tc.traces))
	}
	if a3, _ := tc.get(spec, cacheOpts(100)); a3 != a {
		t.Error("recently used trace a was evicted")
	}
	if c2, _ := tc.get(spec, cacheOpts(102)); c2 != c {
		t.Error("recently used trace c was evicted")
	}

	// b is gone: getting it again regenerates (a different pointer), and the
	// cache stays at its bound.
	b2, err := tc.get(spec, cacheOpts(101))
	if err != nil {
		t.Fatal(err)
	}
	if len(tc.traces) != 3 {
		t.Fatalf("cache grew past its bound: %d entries", len(tc.traces))
	}
	if b3, _ := tc.get(spec, cacheOpts(101)); b3 != b2 {
		t.Error("regenerated trace not cached")
	}
}

// TestTraceCacheOrderConsistency checks the recency list and map never
// diverge across a mixed hit/miss/evict sequence.
func TestTraceCacheOrderConsistency(t *testing.T) {
	tc := newTraceCache(2)
	spec := workload.MustGet("streamcluster")
	for _, accesses := range []int{100, 101, 100, 102, 103, 101, 100} {
		if _, err := tc.get(spec, cacheOpts(accesses)); err != nil {
			t.Fatal(err)
		}
		if len(tc.order) != len(tc.traces) {
			t.Fatalf("order list (%d) and map (%d) diverged", len(tc.order), len(tc.traces))
		}
		for _, k := range tc.order {
			if _, ok := tc.traces[k]; !ok {
				t.Fatalf("order references evicted key %s", k)
			}
		}
	}
}
