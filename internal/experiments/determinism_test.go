package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"runtime"
	"testing"
)

// TestSweepDeterministicAcrossParallelism is the harness-level determinism
// contract: an experiment serialised to JSON must be byte-identical at
// Parallelism=1 and Parallelism=GOMAXPROCS. The sweep layer guarantees
// ordering and seeding; this test guards the experiment layer against
// reintroducing map-iteration or completion-order dependence.
func TestSweepDeterministicAcrossParallelism(t *testing.T) {
	run := func(parallelism int) []byte {
		cfg := testConfig()
		cfg.AccessesPerThread = 2000
		cfg.Parallelism = parallelism
		res, err := Fig6(context.Background(), cfg)
		if err != nil {
			t.Fatalf("Fig6 at parallelism %d: %v", parallelism, err)
		}
		out, err := json.Marshal(res.Table())
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := run(1)
	parallel := run(runtime.GOMAXPROCS(0))
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("results differ across parallelism levels:\n  serial: %s\nparallel: %s", serial, parallel)
	}
}

// TestSampledSweepDeterministicAcrossParallelism is the sampled half of the
// parallelism contract: a sweep running under a SMARTS sampling spec — FF
// fast path, per-core window schedules, CLT estimator and all — must stay
// byte-identical at Parallelism=1 and Parallelism=GOMAXPROCS, and a repeat
// run must reproduce the bytes exactly. The c3dexp-level twin of this test
// is the CI sample-smoke gate; this one runs in-process so `go test` covers
// it without a built binary.
func TestSampledSweepDeterministicAcrossParallelism(t *testing.T) {
	run := func(parallelism int) []byte {
		cfg := testConfig()
		cfg.AccessesPerThread = 8000
		cfg.Parallelism = parallelism
		cfg.Sampling = "stretch=2800,warm=30,win=30"
		res, err := Fig6(context.Background(), cfg)
		if err != nil {
			t.Fatalf("sampled Fig6 at parallelism %d: %v", parallelism, err)
		}
		out, err := json.Marshal(res.Table())
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := run(1)
	parallel := run(runtime.GOMAXPROCS(0))
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("sampled results differ across parallelism levels:\n  serial: %s\nparallel: %s", serial, parallel)
	}
	if repeat := run(1); !bytes.Equal(serial, repeat) {
		t.Fatalf("repeated sampled sweep produced different bytes:\n  first: %s\n repeat: %s", serial, repeat)
	}
}

// TestSeedChangesTracesButStaysComparable checks the Seed knob regenerates
// different traces (different absolute numbers are likely) while the same
// seed reproduces identical results.
func TestSeedChangesTracesButStaysComparable(t *testing.T) {
	run := func(seed int64) []byte {
		cfg := testConfig()
		cfg.AccessesPerThread = 2000
		cfg.Workloads = []string{"streamcluster"}
		cfg.Seed = seed
		res, err := TableI(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		out, err := json.Marshal(res.Table())
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(11), run(11)
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed produced different results:\n%s\n%s", a, b)
	}
}

// TestStreamingMatchesMaterialised is the experiment-level half of the
// streaming contract: driving the simulations from incremental generators
// (Config.Streaming, bypassing the trace cache) must produce byte-identical
// experiment output to the materialised path.
func TestStreamingMatchesMaterialised(t *testing.T) {
	run := func(streaming bool) []byte {
		cfg := testConfig()
		cfg.AccessesPerThread = 2000
		cfg.Workloads = []string{"streamcluster", "nutch"}
		cfg.Streaming = streaming
		res, err := Fig6(context.Background(), cfg)
		if err != nil {
			t.Fatalf("Fig6 (streaming=%v): %v", streaming, err)
		}
		out, err := json.Marshal(res.Table())
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	materialised := run(false)
	streamed := run(true)
	if !bytes.Equal(materialised, streamed) {
		t.Fatalf("streaming changed experiment results:\nmaterialised: %s\n   streaming: %s",
			materialised, streamed)
	}
}

// TestScalingDeterministicAcrossParallelism is the cross-topology
// determinism contract: the scaling experiment sweeps every topology the
// registry can host at each socket count, and its serialised result must be
// byte-identical at Parallelism 1 and 8.
func TestScalingDeterministicAcrossParallelism(t *testing.T) {
	run := func(parallelism int) []byte {
		cfg := testConfig()
		cfg.AccessesPerThread = 2000
		cfg.Workloads = []string{"streamcluster"}
		cfg.Parallelism = parallelism
		res, err := Scaling(context.Background(), cfg)
		if err != nil {
			t.Fatalf("Scaling at parallelism %d: %v", parallelism, err)
		}
		out, err := json.Marshal(res.Table())
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := run(1)
	parallel := run(8)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("scaling results differ across parallelism levels:\n  serial: %s\nparallel: %s", serial, parallel)
	}
}
