package experiments

import (
	"context"
	"fmt"
	"math"
	"strconv"

	"c3d/internal/interconnect"
	"c3d/internal/machine"
	"c3d/internal/sample"
	"c3d/internal/stats"
)

// scalingDesigns are the designs the socket-scaling study compares: the
// no-DRAM-cache baseline and the proposed C3D design. The study's question is
// how C3D's advantage moves as the fabric grows, so the intermediate naive
// designs are left out to keep the campaign tractable.
var scalingDesigns = []machine.Design{machine.Baseline, machine.C3D}

// scalingSocketCounts returns the machine sizes the study sweeps. Quick
// configurations stop at 8 sockets; full runs include the 16-socket ceiling
// of the built-in fabrics.
func scalingSocketCounts(cfg Config) []int {
	if cfg.AccessesPerThread > 0 && cfg.AccessesPerThread < 50_000 {
		return []int{2, 4, 8}
	}
	return []int{2, 4, 8, 16}
}

// ScalingPoint is one (sockets, topology, design) cell of the study.
type ScalingPoint struct {
	Sockets  int
	Topology string
	Design   string
	// Diameter is the topology's largest hop count at this socket count —
	// the latency side of the fabric trade-off.
	Diameter int
	// Links is the number of directed fabric links — the cost side.
	Links int
	// Speedup is the geomean speedup over the same-shape baseline (1.0 for
	// the baseline rows by construction).
	Speedup float64
	// OffSocketBytesPerAccess is the geomean inter-socket traffic per memory
	// access.
	OffSocketBytesPerAccess float64
}

// ScalingResult is the socket-scaling study: how each design's performance
// and off-socket traffic move with socket count and fabric topology. It
// extends the paper's two fixed shapes (2×16 p2p, 4×8 ring) along the §V
// design-space axis the hardware trend points at: more sockets, richer
// fabrics.
type ScalingResult struct {
	// Points holds one entry per (sockets, topology, design), in sweep
	// order: socket count ascending, topologies in registry order, designs
	// in evaluation order.
	Points []ScalingPoint
}

// Table renders the study with one row per point.
func (r ScalingResult) Table() *stats.Table {
	t := stats.NewTable("sockets", "topology", "diam", "links", "design", "speedup", "off-socket B/acc")
	for _, p := range r.Points {
		t.AddRow(
			strconv.Itoa(p.Sockets),
			p.Topology,
			strconv.Itoa(p.Diameter),
			strconv.Itoa(p.Links),
			p.Design,
			fmt.Sprintf("%.3f", p.Speedup),
			fmt.Sprintf("%.1f", p.OffSocketBytesPerAccess),
		)
	}
	return t
}

// scalingShape is one machine shape of the study.
type scalingShape struct {
	sockets int
	topo    interconnect.Topology
}

// scalingJobs builds the (shape x workload x design) job grid shared by the
// full and sampled variants of the study.
func scalingJobs(cfg Config, tag string, shapes []scalingShape, names []string) []job {
	var jobs []job
	for _, sh := range shapes {
		for _, name := range names {
			spec := cfg.mustWorkload(name)
			for _, d := range scalingDesigns {
				mcfg := cfg.machineConfig(sh.sockets, d, spec.PreferredPolicy)
				mcfg.Topology = sh.topo
				jobs = append(jobs, job{
					key:  key(tag, sh.sockets, sh.topo, name, d),
					spec: spec,
					mcfg: mcfg,
				})
			}
		}
	}
	return jobs
}

// scalingShapes enumerates the (sockets, topology) grid: every registered
// topology that can host each socket count, in deterministic registry order.
func scalingShapes(cfg Config) []scalingShape {
	var shapes []scalingShape
	for _, n := range scalingSocketCounts(cfg) {
		for _, topo := range interconnect.Topologies() {
			if interconnect.SupportsSockets(topo, n) != nil {
				continue
			}
			shapes = append(shapes, scalingShape{sockets: n, topo: topo})
		}
	}
	return shapes
}

// Scaling runs the socket-scaling study. The thread count is held at the
// configuration's (the paper's 32 by default), so the sweep answers "what
// does the same workload cost on a bigger machine": cores per socket shrink
// as sockets grow, page placement spreads across more homes, and every
// remote access crosses the selected fabric. Results are deterministic at
// any Config.Parallelism.
func Scaling(ctx context.Context, cfg Config) (ScalingResult, error) {
	cfg = cfg.withDefaults()
	shapes := scalingShapes(cfg)
	names := cfg.workloadNames()
	results, err := cfg.runJobs(ctx, scalingJobs(cfg, "scaling", shapes, names))
	if err != nil {
		return ScalingResult{}, err
	}

	out := ScalingResult{}
	for _, sh := range shapes {
		fabric := interconnect.New(interconnect.Config{Sockets: sh.sockets, Topology: sh.topo})
		for _, d := range scalingDesigns {
			speedup := geomeanOver(names, func(name string) float64 {
				base := results[key("scaling", sh.sockets, sh.topo, name, machine.Baseline)]
				return results[key("scaling", sh.sockets, sh.topo, name, d)].SpeedupOver(base)
			})
			traffic := geomeanOver(names, func(name string) float64 {
				r := results[key("scaling", sh.sockets, sh.topo, name, d)]
				accesses := r.Counters.Loads + r.Counters.Stores
				if accesses == 0 {
					return 0
				}
				return float64(r.InterSocketBytes) / float64(accesses)
			})
			out.Points = append(out.Points, ScalingPoint{
				Sockets:                 sh.sockets,
				Topology:                sh.topo.String(),
				Design:                  d.String(),
				Diameter:                fabric.Diameter(),
				Links:                   fabric.LinkCount(),
				Speedup:                 speedup,
				OffSocketBytesPerAccess: traffic,
			})
		}
	}
	return out, nil
}

// --- sampled scaling variant ---

// DefaultSamplingSpec is the schedule the sampled experiment variants use
// when the configuration does not pin one: long enough stretches for a
// several-fold speedup at quick scale, short enough units that even a
// 6000-access quick stream yields a handful of measured windows (and a
// paper-scale stream over a hundred).
const DefaultSamplingSpec = "stretch=1400,warm=60,win=60"

// defaultSamplingSpec derives the schedule for a sweep whose configuration
// does not pin one: DefaultSamplingSpec, with the stretch shortened when the
// shortest per-thread stream in the sweep could not otherwise host a useful
// number of measured windows (smoke tests run streams of a few hundred
// accesses; paper scale runs hundreds of thousands). Purely a function of the
// configuration, so the derived spec — recorded in the result — is as
// deterministic as a pinned one.
func (c Config) defaultSamplingSpec() string {
	def, err := sample.Parse(DefaultSamplingSpec)
	if err != nil {
		panic(err) // the constant is well-formed by construction
	}
	shortest := int(^uint(0) >> 1)
	for _, name := range c.workloadNames() {
		n := c.AccessesPerThread
		if n <= 0 {
			n = c.mustWorkload(name).AccessesPerThread
		}
		if n < shortest {
			shortest = n
		}
	}
	// In the worst case the seeded phase skips a full stretch, so w windows
	// need w*(stretch+warm+win) records per thread; size the stretch for
	// eight, capped at the default (longer streams keep the default detail
	// fraction rather than growing ever-coarser).
	const targetWindows = 8
	stretch := shortest/targetWindows - def.Warm - def.Window
	if stretch > def.Stretch {
		stretch = def.Stretch
	}
	if stretch < 1 {
		stretch = 1
	}
	def.Stretch = stretch
	return def.String()
}

// SampledScalingPoint is one (sockets, topology, design) cell of the sampled
// study: the same metrics as ScalingPoint, each carried as a point estimate
// with a 95% confidence half-width, plus the number of measured windows
// behind them.
type SampledScalingPoint struct {
	Sockets  int
	Topology string
	Design   string
	// Windows is the total number of measured windows across the workloads
	// aggregated into this point.
	Windows int
	// Speedup is the geomean speedup over the same-shape baseline with its
	// propagated half-width.
	Speedup sample.Estimate
	// OffSocketBytesPerAccess is the geomean fabric traffic per access with
	// its propagated half-width.
	OffSocketBytesPerAccess sample.Estimate
}

// SampledScalingResult is the sampled variant of the socket-scaling study:
// the same sweep simulated in SMARTS-style sampled mode, every metric
// reported with explicit error bars.
type SampledScalingResult struct {
	// Spec is the canonical sampling spec the runs used.
	Spec string
	// Points holds one entry per (sockets, topology, design), in sweep order.
	Points []SampledScalingPoint
}

// Table renders the sampled study; estimate cells are "value±half" so the
// bars are part of the JSON artefact.
func (r SampledScalingResult) Table() *stats.Table {
	t := stats.NewTable("sockets", "topology", "design", "windows", "speedup", "off-socket B/acc")
	for _, p := range r.Points {
		t.AddRow(
			strconv.Itoa(p.Sockets),
			p.Topology,
			p.Design,
			strconv.Itoa(p.Windows),
			p.Speedup.Format(3),
			p.OffSocketBytesPerAccess.Format(1),
		)
	}
	return t
}

// SampledScaling runs the socket-scaling study in sampled mode. The job grid
// is identical to Scaling's; only the execution mode (and therefore the
// wall-clock cost) differs, and every reported metric carries its 95%
// half-width. Results are deterministic at any Config.Parallelism for a
// fixed (config, seed, spec).
func SampledScaling(ctx context.Context, cfg Config) (SampledScalingResult, error) {
	cfg = cfg.withDefaults()
	if cfg.Sampling == "" {
		cfg.Sampling = cfg.defaultSamplingSpec()
	}
	spec, err := sample.Parse(cfg.Sampling)
	if err != nil {
		return SampledScalingResult{}, err
	}
	shapes := scalingShapes(cfg)
	names := cfg.workloadNames()
	results, err := cfg.runJobs(ctx, scalingJobs(cfg, "scaling-sampled", shapes, names))
	if err != nil {
		return SampledScalingResult{}, err
	}

	out := SampledScalingResult{Spec: spec.String()}
	for _, sh := range shapes {
		for _, d := range scalingDesigns {
			windows := 0
			speedups := make([]sample.Estimate, 0, len(names))
			traffic := make([]sample.Estimate, 0, len(names))
			for _, name := range names {
				base := results[key("scaling-sampled", sh.sockets, sh.topo, name, machine.Baseline)]
				des := results[key("scaling-sampled", sh.sockets, sh.topo, name, d)]
				if des.Sampling == nil || base.Sampling == nil {
					return SampledScalingResult{}, fmt.Errorf("scaling-sampled: %s/%v/%s missing sampling section", name, sh.topo, d)
				}
				windows += des.Sampling.Windows
				if d == machine.Baseline {
					// A run's speedup over itself is exactly 1.
					speedups = append(speedups, sample.Estimate{Value: 1})
				} else {
					speedups = append(speedups, sample.RatioOf(base.Sampling.Estimates.CPI, des.Sampling.Estimates.CPI))
				}
				traffic = append(traffic, des.Sampling.Estimates.FabricBytesPerAccess)
			}
			out.Points = append(out.Points, SampledScalingPoint{
				Sockets:                 sh.sockets,
				Topology:                sh.topo.String(),
				Design:                  d.String(),
				Windows:                 windows,
				Speedup:                 geomeanEstimate(speedups),
				OffSocketBytesPerAccess: geomeanEstimate(traffic),
			})
		}
	}
	return out, nil
}

// geomeanEstimate combines per-workload estimates into their geometric mean
// with the propagated half-width (relative errors in quadrature over n).
func geomeanEstimate(ests []sample.Estimate) sample.Estimate {
	vals := make([]float64, 0, len(ests))
	sumSq := 0.0
	for _, e := range ests {
		vals = append(vals, e.Value)
		rel := e.RelError()
		sumSq += rel * rel
	}
	g := stats.Geomean(vals)
	if len(ests) == 0 {
		return sample.Estimate{}
	}
	return sample.Estimate{Value: g, HalfWidth: math.Abs(g) * math.Sqrt(sumSq) / float64(len(ests))}
}
