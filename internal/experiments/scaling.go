package experiments

import (
	"context"
	"fmt"
	"strconv"

	"c3d/internal/interconnect"
	"c3d/internal/machine"
	"c3d/internal/stats"
)

// scalingDesigns are the designs the socket-scaling study compares: the
// no-DRAM-cache baseline and the proposed C3D design. The study's question is
// how C3D's advantage moves as the fabric grows, so the intermediate naive
// designs are left out to keep the campaign tractable.
var scalingDesigns = []machine.Design{machine.Baseline, machine.C3D}

// scalingSocketCounts returns the machine sizes the study sweeps. Quick
// configurations stop at 8 sockets; full runs include the 16-socket ceiling
// of the built-in fabrics.
func scalingSocketCounts(cfg Config) []int {
	if cfg.AccessesPerThread > 0 && cfg.AccessesPerThread < 50_000 {
		return []int{2, 4, 8}
	}
	return []int{2, 4, 8, 16}
}

// ScalingPoint is one (sockets, topology, design) cell of the study.
type ScalingPoint struct {
	Sockets  int
	Topology string
	Design   string
	// Diameter is the topology's largest hop count at this socket count —
	// the latency side of the fabric trade-off.
	Diameter int
	// Links is the number of directed fabric links — the cost side.
	Links int
	// Speedup is the geomean speedup over the same-shape baseline (1.0 for
	// the baseline rows by construction).
	Speedup float64
	// OffSocketBytesPerAccess is the geomean inter-socket traffic per memory
	// access.
	OffSocketBytesPerAccess float64
}

// ScalingResult is the socket-scaling study: how each design's performance
// and off-socket traffic move with socket count and fabric topology. It
// extends the paper's two fixed shapes (2×16 p2p, 4×8 ring) along the §V
// design-space axis the hardware trend points at: more sockets, richer
// fabrics.
type ScalingResult struct {
	// Points holds one entry per (sockets, topology, design), in sweep
	// order: socket count ascending, topologies in registry order, designs
	// in evaluation order.
	Points []ScalingPoint
}

// Table renders the study with one row per point.
func (r ScalingResult) Table() *stats.Table {
	t := stats.NewTable("sockets", "topology", "diam", "links", "design", "speedup", "off-socket B/acc")
	for _, p := range r.Points {
		t.AddRow(
			strconv.Itoa(p.Sockets),
			p.Topology,
			strconv.Itoa(p.Diameter),
			strconv.Itoa(p.Links),
			p.Design,
			fmt.Sprintf("%.3f", p.Speedup),
			fmt.Sprintf("%.1f", p.OffSocketBytesPerAccess),
		)
	}
	return t
}

// scalingShape is one machine shape of the study.
type scalingShape struct {
	sockets int
	topo    interconnect.Topology
}

// scalingShapes enumerates the (sockets, topology) grid: every registered
// topology that can host each socket count, in deterministic registry order.
func scalingShapes(cfg Config) []scalingShape {
	var shapes []scalingShape
	for _, n := range scalingSocketCounts(cfg) {
		for _, topo := range interconnect.Topologies() {
			if interconnect.SupportsSockets(topo, n) != nil {
				continue
			}
			shapes = append(shapes, scalingShape{sockets: n, topo: topo})
		}
	}
	return shapes
}

// Scaling runs the socket-scaling study. The thread count is held at the
// configuration's (the paper's 32 by default), so the sweep answers "what
// does the same workload cost on a bigger machine": cores per socket shrink
// as sockets grow, page placement spreads across more homes, and every
// remote access crosses the selected fabric. Results are deterministic at
// any Config.Parallelism.
func Scaling(ctx context.Context, cfg Config) (ScalingResult, error) {
	cfg = cfg.withDefaults()
	shapes := scalingShapes(cfg)
	names := cfg.workloadNames()

	var jobs []job
	for _, sh := range shapes {
		for _, name := range names {
			spec := cfg.mustWorkload(name)
			for _, d := range scalingDesigns {
				mcfg := cfg.machineConfig(sh.sockets, d, spec.PreferredPolicy)
				mcfg.Topology = sh.topo
				jobs = append(jobs, job{
					key:  key("scaling", sh.sockets, sh.topo, name, d),
					spec: spec,
					mcfg: mcfg,
				})
			}
		}
	}
	results, err := cfg.runJobs(ctx, jobs)
	if err != nil {
		return ScalingResult{}, err
	}

	out := ScalingResult{}
	for _, sh := range shapes {
		fabric := interconnect.New(interconnect.Config{Sockets: sh.sockets, Topology: sh.topo})
		for _, d := range scalingDesigns {
			speedup := geomeanOver(names, func(name string) float64 {
				base := results[key("scaling", sh.sockets, sh.topo, name, machine.Baseline)]
				return results[key("scaling", sh.sockets, sh.topo, name, d)].SpeedupOver(base)
			})
			traffic := geomeanOver(names, func(name string) float64 {
				r := results[key("scaling", sh.sockets, sh.topo, name, d)]
				accesses := r.Counters.Loads + r.Counters.Stores
				if accesses == 0 {
					return 0
				}
				return float64(r.InterSocketBytes) / float64(accesses)
			})
			out.Points = append(out.Points, ScalingPoint{
				Sockets:                 sh.sockets,
				Topology:                sh.topo.String(),
				Design:                  d.String(),
				Diameter:                fabric.Diameter(),
				Links:                   fabric.LinkCount(),
				Speedup:                 speedup,
				OffSocketBytesPerAccess: traffic,
			})
		}
	}
	return out, nil
}
