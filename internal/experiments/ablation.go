package experiments

import (
	"context"
	"fmt"

	"c3d/internal/machine"
	"c3d/internal/stats"
)

// The ablations below are not figures from the paper; they isolate the two
// design decisions C3D is built on (DESIGN.md motivates them from §II-C and
// §IV):
//
//   - the private-versus-shared DRAM cache organisation question of §II-C;
//   - the clean-cache property and the non-inclusive directory, separated by
//     comparing full-dir, c3d-full-dir and c3d (which differ in exactly one
//     of the two properties at a time);
//   - the region-based miss predictor of Table II.

// PrivateVsSharedResult compares the two DRAM cache organisations of §II-C
// against the baseline.
type PrivateVsSharedResult struct {
	// Speedup maps workload -> organisation ("shared", "c3d") -> speedup.
	Speedup map[string]map[string]float64
	// RemoteReadReduction maps workload -> organisation -> fraction of
	// remote memory reads removed versus the baseline.
	RemoteReadReduction map[string]map[string]float64
	// TrafficReduction maps workload -> organisation -> fraction of
	// inter-socket bytes removed versus the baseline.
	TrafficReduction map[string]map[string]float64
}

// Table renders the comparison.
func (r PrivateVsSharedResult) Table() *stats.Table {
	t := stats.NewTable("workload",
		"shared speedup", "private speedup",
		"shared remote-read cut", "private remote-read cut",
		"shared traffic cut", "private traffic cut")
	for _, name := range tableNames(r.Speedup) {
		t.AddRow(name,
			fmt.Sprintf("%.3f", r.Speedup[name]["shared"]),
			fmt.Sprintf("%.3f", r.Speedup[name]["c3d"]),
			stats.Percent(r.RemoteReadReduction[name]["shared"]),
			stats.Percent(r.RemoteReadReduction[name]["c3d"]),
			stats.Percent(r.TrafficReduction[name]["shared"]),
			stats.Percent(r.TrafficReduction[name]["c3d"]))
	}
	return t
}

// PrivateVsShared runs the §II-C organisation comparison: a shared
// (memory-side) DRAM cache versus C3D's private organisation.
func PrivateVsShared(ctx context.Context, cfg Config) (PrivateVsSharedResult, error) {
	cfg = cfg.withDefaults()
	designs := []machine.Design{machine.Baseline, machine.SharedDRAM, machine.C3D}
	var jobs []job
	for _, name := range cfg.workloadNames() {
		spec := cfg.mustWorkload(name)
		for _, d := range designs {
			jobs = append(jobs, job{
				key:  key("pvs", name, d),
				spec: spec,
				mcfg: cfg.machineConfig(cfg.Sockets, d, spec.PreferredPolicy),
			})
		}
	}
	results, err := cfg.runJobs(ctx, jobs)
	if err != nil {
		return PrivateVsSharedResult{}, err
	}
	out := PrivateVsSharedResult{
		Speedup:             make(map[string]map[string]float64),
		RemoteReadReduction: make(map[string]map[string]float64),
		TrafficReduction:    make(map[string]map[string]float64),
	}
	for _, name := range cfg.workloadNames() {
		base := results[key("pvs", name, machine.Baseline)]
		speed := map[string]float64{}
		reads := map[string]float64{}
		traffic := map[string]float64{}
		for _, d := range []machine.Design{machine.SharedDRAM, machine.C3D} {
			res := results[key("pvs", name, d)]
			label := "shared"
			if d == machine.C3D {
				label = "c3d"
			}
			speed[label] = res.SpeedupOver(base)
			reads[label] = 1 - res.NormalizedRemoteMemReads(base)
			traffic[label] = 1 - res.NormalizedInterSocketTraffic(base)
		}
		out.Speedup[name] = speed
		out.RemoteReadReduction[name] = reads
		out.TrafficReduction[name] = traffic
	}
	return out, nil
}

// AblationResult isolates C3D's two ingredients using the full-dir,
// c3d-full-dir and c3d designs, plus the value of the miss predictor.
type AblationResult struct {
	// CleanProperty maps workload -> speedup of c3d-full-dir over full-dir:
	// the value of keeping DRAM caches clean with the directory held equal.
	CleanProperty map[string]float64
	// NonInclusiveDir maps workload -> speedup of c3d over c3d-full-dir: the
	// (small) cost of dropping DRAM cache tracking and broadcasting instead.
	NonInclusiveDir map[string]float64
	// MissPredictor maps workload -> speedup of c3d over c3d without its
	// miss predictor.
	MissPredictor map[string]float64
}

// Table renders the ablation.
func (r AblationResult) Table() *stats.Table {
	t := stats.NewTable("workload", "clean property", "non-inclusive dir", "miss predictor")
	for _, name := range tableNames(r.CleanProperty) {
		t.AddRow(name,
			fmt.Sprintf("%.3f", r.CleanProperty[name]),
			fmt.Sprintf("%.3f", r.NonInclusiveDir[name]),
			fmt.Sprintf("%.3f", r.MissPredictor[name]))
	}
	return t
}

// Ablation runs the design-choice ablation.
func Ablation(ctx context.Context, cfg Config) (AblationResult, error) {
	cfg = cfg.withDefaults()
	var jobs []job
	for _, name := range cfg.workloadNames() {
		spec := cfg.mustWorkload(name)
		for _, d := range []machine.Design{machine.FullDir, machine.C3D, machine.C3DFullDir} {
			jobs = append(jobs, job{
				key:  key("abl", name, d),
				spec: spec,
				mcfg: cfg.machineConfig(cfg.Sockets, d, spec.PreferredPolicy),
			})
		}
		jobs = append(jobs, job{
			key:  key("abl", name, "nopred"),
			spec: spec,
			mcfg: cfg.machineConfig(cfg.Sockets, machine.C3D, spec.PreferredPolicy),
			mutate: func(m *machine.Config) {
				m.PredictorEntries = 0
			},
		})
	}
	results, err := cfg.runJobs(ctx, jobs)
	if err != nil {
		return AblationResult{}, err
	}
	out := AblationResult{
		CleanProperty:   make(map[string]float64),
		NonInclusiveDir: make(map[string]float64),
		MissPredictor:   make(map[string]float64),
	}
	for _, name := range cfg.workloadNames() {
		fullDir := results[key("abl", name, machine.FullDir)]
		c3d := results[key("abl", name, machine.C3D)]
		c3dFull := results[key("abl", name, machine.C3DFullDir)]
		noPred := results[key("abl", name, "nopred")]
		out.CleanProperty[name] = c3dFull.SpeedupOver(fullDir)
		out.NonInclusiveDir[name] = c3d.SpeedupOver(c3dFull)
		out.MissPredictor[name] = c3d.SpeedupOver(noPred)
	}
	return out, nil
}
