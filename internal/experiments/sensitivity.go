package experiments

import (
	"context"
	"fmt"

	"c3d/internal/machine"
	"c3d/internal/stats"
)

// sensitivityDesigns are the designs swept by the Fig. 10/11 sensitivity
// studies (the paper plots snoopy, full-dir and c3d).
var sensitivityDesigns = []machine.Design{machine.Snoopy, machine.FullDir, machine.C3D}

// SensitivityResult is the shared shape of Figs. 10 and 11: the
// geometric-mean speedup over the baseline of each design at each parameter
// value.
type SensitivityResult struct {
	// Parameter is the swept quantity ("DRAM cache latency" or
	// "inter-socket latency").
	Parameter string
	// Values are the swept values in nanoseconds, in presentation order.
	Values []float64
	// Speedup maps value -> design name -> geomean speedup over baseline.
	Speedup map[float64]map[string]float64
}

// Table renders the sensitivity sweep.
func (r SensitivityResult) Table() *stats.Table {
	headers := []string{r.Parameter}
	for _, d := range sensitivityDesigns {
		headers = append(headers, d.String())
	}
	t := stats.NewTable(headers...)
	for _, v := range r.Values {
		cells := []string{fmt.Sprintf("%.0fns", v)}
		for _, d := range sensitivityDesigns {
			cells = append(cells, fmt.Sprintf("%.3f", r.Speedup[v][d.String()]))
		}
		t.AddRow(cells...)
	}
	return t
}

// Fig10Latencies are the DRAM cache latencies swept by Fig. 10.
var Fig10Latencies = []float64{30, 40, 50}

// Fig10 runs the DRAM cache latency sensitivity study: each design's
// geometric-mean speedup over the baseline at 30, 40 and 50 ns DRAM cache
// latency (memory stays at 50 ns).
func Fig10(ctx context.Context, cfg Config) (SensitivityResult, error) {
	return latencySensitivity(ctx, cfg, "DRAM cache latency", "fig10", Fig10Latencies,
		func(m *machine.Config, v float64) { m.DRAMCacheLatencyNs = v })
}

// Fig11Latencies are the inter-socket hop latencies swept by Fig. 11.
var Fig11Latencies = []float64{5, 10, 20, 30}

// Fig11 runs the inter-socket latency sensitivity study. The baseline is
// re-run at each latency (the link speed affects it too), exactly as in the
// paper.
func Fig11(ctx context.Context, cfg Config) (SensitivityResult, error) {
	return latencySensitivity(ctx, cfg, "inter-socket latency", "fig11", Fig11Latencies,
		func(m *machine.Config, v float64) { m.HopLatencyNs = v })
}

func latencySensitivity(ctx context.Context, cfg Config, parameter, tag string, values []float64,
	apply func(*machine.Config, float64)) (SensitivityResult, error) {
	cfg = cfg.withDefaults()
	designs := append([]machine.Design{machine.Baseline}, sensitivityDesigns...)
	var jobs []job
	for _, name := range cfg.workloadNames() {
		spec := cfg.mustWorkload(name)
		for _, d := range designs {
			for _, v := range values {
				v := v
				jobs = append(jobs, job{
					key:    key(tag, name, d, v),
					spec:   spec,
					mcfg:   cfg.machineConfig(cfg.Sockets, d, spec.PreferredPolicy),
					mutate: func(m *machine.Config) { apply(m, v) },
				})
			}
		}
	}
	results, err := cfg.runJobs(ctx, jobs)
	if err != nil {
		return SensitivityResult{}, err
	}
	out := SensitivityResult{
		Parameter: parameter,
		Values:    values,
		Speedup:   make(map[float64]map[string]float64),
	}
	for _, v := range values {
		v := v
		row := make(map[string]float64)
		for _, d := range sensitivityDesigns {
			d := d
			row[d.String()] = geomeanOver(cfg.workloadNames(), func(name string) float64 {
				base := results[key(tag, name, machine.Baseline, v)]
				return results[key(tag, name, d, v)].SpeedupOver(base)
			})
		}
		out.Speedup[v] = row
	}
	return out, nil
}
