package experiments

import (
	"fmt"
	"time"
)

// EventKind classifies a progress Event.
type EventKind int

const (
	// EventSimulationDone reports one completed simulation of a sweep.
	EventSimulationDone EventKind = iota
	// EventSimulationFailed reports one failed simulation of a sweep.
	EventSimulationFailed
	// EventStatesExplored reports model-checker progress (states explored so
	// far in one model's search).
	EventStatesExplored
)

var eventKindNames = map[EventKind]string{
	EventSimulationDone:   "simulation_done",
	EventSimulationFailed: "simulation_failed",
	EventStatesExplored:   "states_explored",
}

// String returns the kind's stable wire name (used by the c3dd progress
// stream).
func (k EventKind) String() string {
	if n, ok := eventKindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// Event is one structured progress notification from an experiment run. It
// replaces the former free-text Progress func(string) callback: callers that
// want the old lines call String, everything else (the c3dd progress stream,
// SDK consumers) reads the fields.
type Event struct {
	// Kind classifies the event; only the fields documented for each kind
	// are meaningful.
	Kind EventKind
	// Job is the sweep job key (simulation events) or the model name
	// (model-checker events).
	Job string
	// Done and Total report sweep completion counts (simulation events).
	Done, Total int
	// Elapsed is the completed simulation's wall-clock duration.
	Elapsed time.Duration
	// States is the number of states explored so far (EventStatesExplored).
	States int
	// Err is the failure (EventSimulationFailed).
	Err error
}

// String renders the event as the human-readable progress line the CLIs
// print with -v.
func (e Event) String() string {
	switch e.Kind {
	case EventSimulationFailed:
		return fmt.Sprintf("fail [%d/%d] %v", e.Done, e.Total, e.Err)
	case EventStatesExplored:
		if e.Job != "" {
			return fmt.Sprintf("  ... %s: %d states explored", e.Job, e.States)
		}
		return fmt.Sprintf("  ... %d states explored", e.States)
	default:
		return fmt.Sprintf("done [%d/%d] %-40s %v", e.Done, e.Total, e.Job, e.Elapsed.Round(time.Millisecond))
	}
}
