package experiments

import (
	"context"
	"fmt"

	"c3d/internal/core"
	"c3d/internal/mc"
	"c3d/internal/stats"
)

// --- §IV-C: protocol verification ---

// VerifyConfig parameterises the model-checking experiment.
type VerifyConfig struct {
	// Sockets is the number of sockets in the verified configuration (the
	// paper verifies small configurations exhaustively).
	Sockets int
	// LoadsPerCore and StoresPerCore bound each core's operations.
	LoadsPerCore  int
	StoresPerCore int
	// MaxStates truncates the search (0 = exhaustive).
	MaxStates int
	// IncludeFullDirVariant also checks the c3d-full-dir protocol variant.
	IncludeFullDirVariant bool
	// Parallelism is the number of model-checker workers per configuration
	// (<= 0 means GOMAXPROCS). Reports are bit-identical at any value.
	Parallelism int
	// Progress, if non-nil, receives a structured EventStatesExplored event
	// per checker progress tick (Event.Job names the model, Event.States the
	// count).
	Progress func(Event)
}

// DefaultVerifyConfig verifies 2-socket and 3-socket configurations with one
// load and one store per core, for both protocol variants.
func DefaultVerifyConfig() VerifyConfig {
	return VerifyConfig{Sockets: 3, LoadsPerCore: 1, StoresPerCore: 1, IncludeFullDirVariant: true}
}

// VerifyResult collects the model-checking reports.
type VerifyResult struct {
	Reports []mc.Report
}

// Passed reports whether every explored configuration satisfied every
// invariant.
func (r VerifyResult) Passed() bool {
	for _, rep := range r.Reports {
		if !rep.Passed() {
			return false
		}
	}
	return len(r.Reports) > 0
}

// Table summarises the reports.
func (r VerifyResult) Table() *stats.Table {
	t := stats.NewTable("model", "states", "transitions", "depth", "terminal", "result")
	for _, rep := range r.Reports {
		status := "PASS"
		if !rep.Passed() {
			status = "FAIL"
		} else if rep.Truncated {
			status = "PASS (bounded)"
		}
		t.AddRow(rep.Model,
			fmt.Sprintf("%d", rep.StatesExplored),
			fmt.Sprintf("%d", rep.TransitionsSeen),
			fmt.Sprintf("%d", rep.MaxDepthReached),
			fmt.Sprintf("%d", rep.QuiescentStates),
			status)
	}
	return t
}

// Verify model-checks the C3D protocol the way §IV-C does: exhaustive
// exploration of small configurations, checking SWMR, the data-value
// invariant (per-location SC) and absence of deadlock.
//
// Cancelling the context aborts the searches; the partial reports explored so
// far are returned alongside ctx's error.
func Verify(ctx context.Context, cfg VerifyConfig) (VerifyResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.Sockets <= 0 {
		cfg = DefaultVerifyConfig()
	}
	var result VerifyResult
	run := func(sockets int, trackDRAM bool) {
		if ctx.Err() != nil {
			return
		}
		model := core.NewProtocolModel(core.ProtocolConfig{
			Sockets:        sockets,
			LoadsPerCore:   cfg.LoadsPerCore,
			StoresPerCore:  cfg.StoresPerCore,
			TrackDRAMCache: trackDRAM,
		})
		var progress func(int)
		if cfg.Progress != nil {
			progress = func(states int) {
				cfg.Progress(Event{Kind: EventStatesExplored, Job: model.Name(), States: states})
			}
		}
		result.Reports = append(result.Reports, mc.Run(ctx, model, mc.Options{
			MaxStates:   cfg.MaxStates,
			Parallelism: cfg.Parallelism,
			Progress:    progress,
		}))
	}
	// Always include the 2-socket configuration (fast, exhaustive), then the
	// configured size if larger.
	run(2, false)
	if cfg.IncludeFullDirVariant {
		run(2, true)
	}
	if cfg.Sockets > 2 {
		run(cfg.Sockets, false)
		if cfg.IncludeFullDirVariant {
			run(cfg.Sockets, true)
		}
	}
	return result, ctx.Err()
}
