package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
)

// TestVerifyDeterministicAcrossParallelism is the model-checking counterpart
// of the sweep determinism contract: the §IV-C verification serialised to
// JSON must be byte-identical whether the checker explores with one worker or
// many. cmd/c3dcheck -json exposes exactly this serialisation, and CI diffs
// it across -parallel values.
func TestVerifyDeterministicAcrossParallelism(t *testing.T) {
	run := func(parallelism int) []byte {
		res, verr := Verify(context.Background(), VerifyConfig{
			Sockets:               2,
			LoadsPerCore:          1,
			StoresPerCore:         1,
			IncludeFullDirVariant: true,
			Parallelism:           parallelism,
		})
		if verr != nil {
			t.Fatal(verr)
		}
		if !res.Passed() {
			t.Fatalf("verification failed at parallelism %d:\n%s", parallelism, res.Table())
		}
		out, err := json.Marshal(res.Reports)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := run(1)
	parallel := run(8)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("verification reports differ across parallelism levels:\n  serial: %s\nparallel: %s", serial, parallel)
	}
}

// TestVerifyBoundedDeterministic exercises the deterministic-truncation path
// (frontier trimming) through the experiment layer.
func TestVerifyBoundedDeterministic(t *testing.T) {
	run := func(parallelism int) []byte {
		res, verr := Verify(context.Background(), VerifyConfig{
			Sockets:       2,
			LoadsPerCore:  1,
			StoresPerCore: 2,
			MaxStates:     5000,
			Parallelism:   parallelism,
		})
		if verr != nil {
			t.Fatal(verr)
		}
		out, err := json.Marshal(res.Reports)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	if !bytes.Equal(run(1), run(8)) {
		t.Fatal("bounded verification reports differ across parallelism levels")
	}
}
