package addr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConstantsConsistent(t *testing.T) {
	if 1<<BlockShift != BlockBytes {
		t.Fatalf("BlockShift %d does not match BlockBytes %d", BlockShift, BlockBytes)
	}
	if 1<<PageShift != PageBytes {
		t.Fatalf("PageShift %d does not match PageBytes %d", PageShift, PageBytes)
	}
	if BlocksPerPage*BlockBytes != PageBytes {
		t.Fatalf("BlocksPerPage %d inconsistent", BlocksPerPage)
	}
}

func TestBlockOf(t *testing.T) {
	cases := []struct {
		a    Addr
		want Block
	}{
		{0, 0},
		{1, 0},
		{63, 0},
		{64, 1},
		{65, 1},
		{127, 1},
		{128, 2},
		{4096, 64},
	}
	for _, c := range cases {
		if got := BlockOf(c.a); got != c.want {
			t.Errorf("BlockOf(%d) = %d, want %d", c.a, got, c.want)
		}
	}
}

func TestPageOf(t *testing.T) {
	cases := []struct {
		a    Addr
		want Page
	}{
		{0, 0},
		{4095, 0},
		{4096, 1},
		{8191, 1},
		{8192, 2},
	}
	for _, c := range cases {
		if got := PageOf(c.a); got != c.want {
			t.Errorf("PageOf(%d) = %d, want %d", c.a, got, c.want)
		}
	}
}

func TestAlignments(t *testing.T) {
	if got := BlockAlign(0x1234); got != 0x1200 {
		t.Errorf("BlockAlign(0x1234) = %#x, want 0x1200", got)
	}
	if got := PageAlign(0x12345); got != 0x12000 {
		t.Errorf("PageAlign(0x12345) = %#x, want 0x12000", got)
	}
	if got := BlockOffset(0x1234); got != 0x34 {
		t.Errorf("BlockOffset(0x1234) = %#x, want 0x34", got)
	}
	if got := PageOffset(0x12345); got != 0x345 {
		t.Errorf("PageOffset(0x12345) = %#x, want 0x345", got)
	}
}

func TestBlockInPage(t *testing.T) {
	if got := BlockInPage(BlockOf(0)); got != 0 {
		t.Errorf("BlockInPage(block 0) = %d, want 0", got)
	}
	if got := BlockInPage(BlockOf(4096 - 64)); got != BlocksPerPage-1 {
		t.Errorf("BlockInPage(last block of page) = %d, want %d", got, BlocksPerPage-1)
	}
	if got := BlockInPage(BlockOf(4096)); got != 0 {
		t.Errorf("BlockInPage(first block of page 1) = %d, want 0", got)
	}
}

// Property: block/page alignment is idempotent and never increases the address.
func TestAlignmentProperties(t *testing.T) {
	f := func(a uint64) bool {
		x := Addr(a)
		ba := BlockAlign(x)
		pa := PageAlign(x)
		return ba <= x && pa <= x &&
			BlockAlign(ba) == ba && PageAlign(pa) == pa &&
			x-ba < BlockBytes && x-pa < PageBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: round-tripping a block/page id through its base address is identity.
func TestRoundTripProperties(t *testing.T) {
	f := func(a uint64) bool {
		// Keep addresses within 2^58 so block ids survive the shift round trip.
		x := Addr(a % (1 << 58))
		return BlockOf(BlockAddr(BlockOf(x))) == BlockOf(x) &&
			PageOf(PageAddr(PageOf(x))) == PageOf(x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: the page of a block equals the page of any address in that block.
func TestPageOfBlockConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		a := Addr(rng.Uint64() % (1 << 58))
		if PageOfBlock(BlockOf(a)) != PageOf(a) {
			t.Fatalf("PageOfBlock(BlockOf(%v)) mismatch", a)
		}
	}
}

func TestStringers(t *testing.T) {
	if s := Addr(0xdeadbec0).String(); s != "0x00000000deadbec0" {
		t.Errorf("Addr.String() = %q", s)
	}
	if s := BlockOf(128).String(); s == "" {
		t.Error("Block.String() empty")
	}
	if s := PageOf(8192).String(); s == "" {
		t.Error("Page.String() empty")
	}
}
