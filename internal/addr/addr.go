// Package addr provides the physical-address vocabulary shared by every
// component of the simulated memory hierarchy: cache blocks, pages, and the
// helpers that carve an address into block/page/set indices.
//
// All components in this repository agree on a 64-byte cache block and a
// 4 KiB page, matching Table II of the C3D paper (64 B line buffer, page-grain
// NUMA placement). Both sizes are exposed as constants rather than
// configuration because changing them would invalidate the latency and
// bandwidth parameters taken from the paper.
package addr

import "fmt"

// Addr is a physical byte address in the simulated machine.
type Addr uint64

const (
	// BlockBytes is the cache block (line) size used throughout the
	// hierarchy: L1, LLC, DRAM cache and memory transfers.
	BlockBytes = 64
	// BlockShift is log2(BlockBytes).
	BlockShift = 6

	// PageBytes is the OS page size used for NUMA placement and the
	// private/shared classification of §IV-D.
	PageBytes = 4096
	// PageShift is log2(PageBytes).
	PageShift = 12

	// BlocksPerPage is the number of cache blocks in one page.
	BlocksPerPage = PageBytes / BlockBytes
)

// Block identifies a cache block (the address with the block offset removed).
type Block uint64

// Page identifies an OS page (the address with the page offset removed).
type Page uint64

// BlockOf returns the block number containing a.
func BlockOf(a Addr) Block { return Block(a >> BlockShift) }

// PageOf returns the page number containing a.
func PageOf(a Addr) Page { return Page(a >> PageShift) }

// PageOfBlock returns the page containing block b.
func PageOfBlock(b Block) Page { return Page(b >> (PageShift - BlockShift)) }

// BlockAddr returns the first byte address of block b.
func BlockAddr(b Block) Addr { return Addr(b) << BlockShift }

// PageAddr returns the first byte address of page p.
func PageAddr(p Page) Addr { return Addr(p) << PageShift }

// BlockAlign rounds a down to the start of its cache block.
func BlockAlign(a Addr) Addr { return a &^ (BlockBytes - 1) }

// PageAlign rounds a down to the start of its page.
func PageAlign(a Addr) Addr { return a &^ (PageBytes - 1) }

// BlockOffset returns the offset of a within its cache block.
func BlockOffset(a Addr) uint64 { return uint64(a) & (BlockBytes - 1) }

// PageOffset returns the offset of a within its page.
func PageOffset(a Addr) uint64 { return uint64(a) & (PageBytes - 1) }

// BlockInPage returns the index of block b within its page, in [0, BlocksPerPage).
func BlockInPage(b Block) int { return int(uint64(b) & (BlocksPerPage - 1)) }

// String renders the address in hex, e.g. "0x00000000deadbec0".
func (a Addr) String() string { return fmt.Sprintf("0x%016x", uint64(a)) }

// String renders the block number and its byte address.
func (b Block) String() string {
	return fmt.Sprintf("block %d (%s)", uint64(b), BlockAddr(b))
}

// String renders the page number and its byte address.
func (p Page) String() string {
	return fmt.Sprintf("page %d (%s)", uint64(p), PageAddr(p))
}
