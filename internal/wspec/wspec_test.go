package wspec

import (
	"strings"
	"testing"
)

// TestParseRejectsHostileDocuments drives Parse/Validate/Compile with a
// corpus of malformed and hostile documents: each must fail with a targeted
// error, never compile to a runnable workload.
func TestParseRejectsHostileDocuments(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string // error substring
	}{
		{"empty", ``, "parse"},
		{"not json", `nonsense`, "parse"},
		{"trailing data", `{"version":1,"name":"a","base":"facesim"} {"more":1}`, "trailing data"},
		{"unknown field", `{"version":1,"name":"a","base":"facesim","turbo":true}`, "unknown field"},
		{"unknown version", `{"version":99,"name":"a","base":"facesim"}`, "unsupported spec version 99"},
		{"no name", `{"version":1,"base":"facesim"}`, "no name"},
		{"no mode", `{"version":1,"name":"a"}`, "exactly one of base, tenants or trace"},
		{"two modes", `{"version":1,"name":"a","base":"facesim","trace":"x.c3dt"}`, "exactly one of base, tenants or trace"},
		{"trace with knobs", `{"version":1,"name":"a","trace":"x.c3dt","seed":7}`, "takes no other knobs"},
		{"negative threads", `{"version":1,"name":"a","base":"facesim","threads":-1}`, "must be non-negative"},
		{"threads over cap", `{"version":1,"name":"a","base":"facesim","threads":65537}`, "exceed"},
		{"negative accesses", `{"version":1,"name":"a","base":"facesim","accesses_per_thread":-5}`, "must be non-negative"},
		{"override out of range", `{"version":1,"name":"a","base":"facesim","overrides":{"shared_fraction":1.5}}`, "out of [0,1]"},
		{"skew under one", `{"version":1,"name":"a","base":"facesim","overrides":{"locality_skew":0.5}}`, "must be >= 1"},
		{"arrival no process", `{"version":1,"name":"a","base":"facesim","arrival":{"process":"","mean":5}}`, "arrival has no process"},
		{"arrival unknown process", `{"version":1,"name":"a","base":"facesim","arrival":{"process":"cauchy","mean":5}}`, "cauchy"},
		{"arrival negative mean", `{"version":1,"name":"a","base":"facesim","arrival":{"process":"poisson","mean":-1}}`, "must be non-negative"},
		{"sharing unknown dist", `{"version":1,"name":"a","base":"facesim","sharing":{"dist":"uniformish","theta":1}}`, "uniformish"},
		{"phase zero fraction", `{"version":1,"name":"a","base":"facesim","phases":[{"fraction":0}]}`, "must be positive"},
		{"phase negative fraction", `{"version":1,"name":"a","base":"facesim","phases":[{"fraction":-2}]}`, "must be positive"},
		{"phases and tenants", `{"version":1,"name":"a","base":"facesim","phases":[{"fraction":1}],"tenants":[{"name":"t","base":"nutch"}]}`, "exactly one of base, tenants or trace"},
		{"tenant no name", `{"version":1,"name":"a","tenants":[{"name":"","base":"nutch"}]}`, "has no name"},
		{"tenant duplicate", `{"version":1,"name":"a","tenants":[{"name":"t","base":"nutch"},{"name":"t","base":"nutch"}]}`, "appears twice"},
		{"tenant no base", `{"version":1,"name":"a","tenants":[{"name":"t"}]}`, "has no base"},
		{"tenant negative weight", `{"version":1,"name":"a","tenants":[{"name":"t","base":"nutch","weight":-1}]}`, "must be non-negative"},
		{"tenant weights sum to 0", `{"version":1,"name":"a","tenants":[{"name":"t","base":"nutch","weight":0},{"name":"u","base":"nutch","weight":0}]}`, "tenant weights sum to 0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d, err := Parse([]byte(tc.doc))
			if err == nil {
				err = d.Validate()
			}
			if err == nil {
				_, err = Compile(d)
			}
			if err == nil {
				t.Fatalf("document compiled, want error containing %q\ndoc: %s", tc.want, tc.doc)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

// TestCompileRejectsBadReferences covers the compile-stage failures Parse
// and Validate cannot see: unknown and cyclic base references.
func TestCompileRejectsBadReferences(t *testing.T) {
	if _, err := Load([]byte(`{"version":1,"name":"a","base":"nonesuch"}`)); err == nil || !strings.Contains(err.Error(), "unknown workload") {
		t.Errorf("unknown base: err = %v, want unknown workload", err)
	}
	if _, err := Load([]byte(`{"version":1,"name":"a","tenants":[{"name":"t","base":"nonesuch"}]}`)); err == nil || !strings.Contains(err.Error(), "unknown workload") {
		t.Errorf("unknown tenant base: err = %v, want unknown workload", err)
	}

	mustParse := func(doc string) *Doc {
		t.Helper()
		d, err := Parse([]byte(doc))
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	_, err := CompileAll([]*Doc{
		mustParse(`{"version":1,"name":"a","base":"b"}`),
		mustParse(`{"version":1,"name":"b","base":"a"}`),
	})
	if err == nil || !strings.Contains(err.Error(), "cyclic base reference") {
		t.Errorf("a<->b: err = %v, want cyclic base reference", err)
	}
	_, err = CompileAll([]*Doc{mustParse(`{"version":1,"name":"a","base":"a"}`)})
	if err == nil || !strings.Contains(err.Error(), "cyclic base reference") {
		t.Errorf("a->a in batch: err = %v, want cyclic base reference", err)
	}
	// Outside a batch the same shape is name shadowing, not a cycle: the
	// base resolves from the registry.
	if _, err := Load([]byte(`{"version":1,"name":"facesim","base":"facesim"}`)); err != nil {
		t.Errorf("registry-shadowing spec: %v, want nil", err)
	}
	// A composite (tenants) doc cannot serve as a base.
	_, err = CompileAll([]*Doc{
		mustParse(`{"version":1,"name":"mix","tenants":[{"name":"t","base":"nutch"}]}`),
		mustParse(`{"version":1,"name":"a","base":"mix"}`),
	})
	if err == nil || !strings.Contains(err.Error(), "composite") {
		t.Errorf("composite base: err = %v, want composite rejection", err)
	}
	// Batch duplicates are rejected before any compilation.
	_, err = CompileAll([]*Doc{
		mustParse(`{"version":1,"name":"a","base":"facesim"}`),
		mustParse(`{"version":1,"name":"a","base":"nutch"}`),
	})
	if err == nil || !strings.Contains(err.Error(), "appears twice") {
		t.Errorf("batch duplicate: err = %v, want appears twice", err)
	}
}

// FuzzParse throws arbitrary bytes at the full pipeline: Parse must never
// panic, and anything that parses and validates must either compile or fail
// with an error — also without panicking.
func FuzzParse(f *testing.F) {
	f.Add([]byte(`{"version":1,"name":"a","base":"facesim"}`))
	f.Add([]byte(`{"version":1,"name":"m","tenants":[{"name":"t","base":"nutch","weight":2,"arrival":{"process":"poisson","mean":9}}]}`))
	f.Add([]byte(`{"version":1,"name":"p","base":"facesim","phases":[{"fraction":0.5,"shared_fraction":0.9},{"fraction":0.5}]}`))
	f.Add([]byte(`{"version":1,"name":"a","base":"facesim","arrival":{"process":"weibull","mean":5,"shape":0.7},"sharing":{"dist":"zipf","theta":1.2}}`))
	f.Add([]byte(`{"version":99}`))
	f.Add([]byte(`{`))
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := Parse(data)
		if err != nil {
			return
		}
		if err := d.Validate(); err != nil {
			return
		}
		// Compiling may fail (unknown bases, unreadable trace paths) but must
		// not panic and must not hang.
		_, _ = Compile(d)
	})
}
