// Package presets embeds the workload-spec preset library and registers
// every document at init, making the presets plain named workloads
// (`c3dtrace -list` shows them; `-workload <name>` and `-spec
// preset:<name>` both run them). To add a preset, drop a .json document in
// this directory — see the internal/wspec package documentation.
package presets

import (
	"embed"

	"c3d/internal/wspec"
)

//go:embed *.json
var files embed.FS

func init() {
	entries, err := files.ReadDir(".")
	if err != nil {
		panic("wspec/presets: " + err.Error())
	}
	// ReadDir returns entries sorted by name: a deterministic registration
	// order, independent of build-system file ordering.
	raws := make([][]byte, 0, len(entries))
	for _, e := range entries {
		raw, err := files.ReadFile(e.Name())
		if err != nil {
			panic("wspec/presets: " + err.Error())
		}
		raws = append(raws, raw)
	}
	if err := wspec.RegisterPresets(raws); err != nil {
		panic("wspec/presets: " + err.Error())
	}
}
