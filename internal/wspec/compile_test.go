package wspec

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"c3d/internal/trace"
	"c3d/internal/workload"
)

var update = flag.Bool("update", false, "rewrite golden files")

// encode walks every stream of a source into the chunked v2 format.
func encode(t *testing.T, src trace.Source) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.EncodeSource(&buf, src); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestMirrorSpecMatchesRegistry is the spec-vs-registry equivalence check:
// a document that names a registry workload as its base and adds no knobs
// must compile to a byte-identical stream — the DSL is a superset of the
// registry, not a parallel implementation.
func TestMirrorSpecMatchesRegistry(t *testing.T) {
	c, err := Load([]byte(`{"version":1,"name":"facesim","base":"facesim"}`))
	if err != nil {
		t.Fatal(err)
	}
	opts := workload.Options{Threads: 8, Scale: 512, AccessesPerThread: 500}
	specSrc, err := workload.NewSource(c.Spec(), opts)
	if err != nil {
		t.Fatal(err)
	}
	regSrc, err := workload.NewSource(workload.MustGet("facesim"), opts)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := encode(t, specSrc), encode(t, regSrc); !bytes.Equal(got, want) {
		t.Fatalf("mirror spec stream (%d bytes) differs from registry stream (%d bytes)", len(got), len(want))
	}
}

// loadPreset compiles a preset document straight from its on-disk JSON. The
// wspec test binary does not import internal/wspec/presets (that would be a
// cycle), so the documents are read from the source tree instead.
func loadPreset(t *testing.T, name string) *Compiled {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("presets", name+".json"))
	if err != nil {
		t.Fatal(err)
	}
	c, err := Load(raw)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestPresetStreamsDeterministic compiles every shipped preset and encodes
// it twice from independently constructed sources: identical (spec, seed)
// must give bit-identical streams.
func TestPresetStreamsDeterministic(t *testing.T) {
	opts := workload.Options{Threads: 4, Scale: 512, AccessesPerThread: 200}
	for _, name := range []string{"multitenant-mix", "phase-shift", "bursty-tail"} {
		t.Run(name, func(t *testing.T) {
			a, err := workload.NewSource(loadPreset(t, name).Spec(), opts)
			if err != nil {
				t.Fatal(err)
			}
			b, err := workload.NewSource(loadPreset(t, name).Spec(), opts)
			if err != nil {
				t.Fatal(err)
			}
			first := encode(t, a)
			if len(first) == 0 {
				t.Fatal("empty stream")
			}
			if !bytes.Equal(first, encode(t, b)) {
				t.Fatal("two compilations of the same preset produced different streams")
			}
			// Re-walking the same source must also replay identically:
			// machine.RunSource opens every stream twice.
			if !bytes.Equal(first, encode(t, a)) {
				t.Fatal("re-encoding the same source produced different bytes")
			}
		})
	}
}

// TestPresetGolden pins the exact compiled stream of the bursty-tail preset
// at reduced options. Any change to spec compilation, the arrival samplers,
// the interleaver or the generator seeds breaks this file on purpose.
//
// Regenerate with:
//
//	go test ./internal/wspec -run TestPresetGolden -update
func TestPresetGolden(t *testing.T) {
	src, err := workload.NewSource(loadPreset(t, "bursty-tail").Spec(),
		workload.Options{Threads: 4, Scale: 512, AccessesPerThread: 64})
	if err != nil {
		t.Fatal(err)
	}
	got := encode(t, src)
	golden := filepath.Join("testdata", "bursty-tail-golden.c3dt")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("compiled stream (%d bytes) differs from golden %s (%d bytes); if the change is intended, regenerate with -update", len(got), golden, len(want))
	}
}

// TestFingerprintTracksDocument checks that distinct documents get distinct
// fingerprints and identical documents identical ones — the experiment
// trace cache keys on it.
func TestFingerprintTracksDocument(t *testing.T) {
	a, err := Load([]byte(`{"version":1,"name":"a","base":"facesim"}`))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Load([]byte(`{"version":1,"name":"a","base":"facesim"}`))
	if err != nil {
		t.Fatal(err)
	}
	c, err := Load([]byte(`{"version":1,"name":"a","base":"facesim","seed":7}`))
	if err != nil {
		t.Fatal(err)
	}
	if a.Spec().Fingerprint == "" {
		t.Fatal("compiled spec has no fingerprint")
	}
	if a.Spec().Fingerprint != b.Spec().Fingerprint {
		t.Error("identical documents compiled to different fingerprints")
	}
	if a.Spec().Fingerprint == c.Spec().Fingerprint {
		t.Error("distinct documents compiled to the same fingerprint")
	}
}
