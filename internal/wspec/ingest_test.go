package wspec

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"c3d/internal/machine"
	"c3d/internal/trace"
	"c3d/internal/workload"
)

// writeTemp writes a text trace into the test's temp dir and returns its
// path.
func writeTemp(t *testing.T, name, contents string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(contents), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestTextRoundTrip exports a generated workload as text, ingests it back,
// and checks the v2 encodings match byte for byte: WriteText and
// OpenText/Ingest are exact inverses, including the name directive.
func TestTextRoundTrip(t *testing.T) {
	src, err := workload.NewSource(workload.MustGet("nutch"),
		workload.Options{Threads: 4, Scale: 512, AccessesPerThread: 300})
	if err != nil {
		t.Fatal(err)
	}
	var text bytes.Buffer
	if err := WriteText(&text, src); err != nil {
		t.Fatal(err)
	}
	path := writeTemp(t, "nutch.txt", text.String())

	ingested, err := OpenText(path)
	if err != nil {
		t.Fatal(err)
	}
	if ingested.Name() != "nutch" {
		t.Errorf("ingested name = %q, want %q (name directive lost)", ingested.Name(), "nutch")
	}
	var want, got bytes.Buffer
	if err := trace.EncodeSource(&want, src); err != nil {
		t.Fatal(err)
	}
	if err := trace.EncodeSource(&got, ingested); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("ingested encoding (%d bytes) differs from direct encoding (%d bytes)", got.Len(), want.Len())
	}

	// Ingest is the same pipeline behind one call.
	var viaIngest bytes.Buffer
	if err := Ingest(&viaIngest, path); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(viaIngest.Bytes(), want.Bytes()) {
		t.Fatal("Ingest output differs from EncodeSource over OpenText")
	}
}

// TestOpenTextRejectsHostileFiles drives the scanner with malformed traces:
// every defect must surface at OpenText time with the offending line in the
// error, never mid-replay.
func TestOpenTextRejectsHostileFiles(t *testing.T) {
	cases := []struct {
		name     string
		contents string
		want     string
	}{
		{"empty", "", "no trace records"},
		{"comments only", "# name: ghost\n\n  \n", "no trace records"},
		{"short line", "0 r\n", "got 2 fields"},
		{"long line", "0 r 0x10 4 extra\n", "got 5 fields"},
		{"bad section", "boss r 0x10\n", "bad thread index"},
		{"bad kind", "0 x 0x10\n", "bad access kind"},
		{"bad address", "0 r lots\n", "bad address"},
		{"bad gap", "0 r 0x10 -3\n", "bad gap"},
		{"thread over cap", fmt.Sprintf("%d r 0x10\n", trace.MaxThreads), "exceeds"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := OpenText(writeTemp(t, "bad.txt", tc.contents))
			if err == nil {
				t.Fatalf("OpenText accepted hostile file, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

// TestTextSourceShape checks section accounting over an interleaved file:
// records from different threads may arrive in any order, with hex and
// decimal addresses, comma separators and inline comments.
func TestTextSourceShape(t *testing.T) {
	src, err := OpenText(writeTemp(t, "mix.txt", strings.Join([]string{
		"# name: handmade",
		"init w 0x100",
		"1 r 0x200 7",
		"0,read,512",
		"init w 0x140 # touch the second line",
		"1 w 0x208",
		"0 store 0x240 2",
	}, "\n")))
	if err != nil {
		t.Fatal(err)
	}
	if src.Name() != "handmade" {
		t.Errorf("name = %q, want handmade", src.Name())
	}
	if src.Threads() != 2 {
		t.Fatalf("threads = %d, want 2", src.Threads())
	}
	if src.InitLen() != 2 || src.ThreadLen(0) != 2 || src.ThreadLen(1) != 2 {
		t.Fatalf("section lengths = %d/%d/%d, want 2/2/2", src.InitLen(), src.ThreadLen(0), src.ThreadLen(1))
	}
	r := src.OpenThread(0)
	rec, ok := r.Next()
	if !ok || rec.Kind != trace.Read || uint64(rec.Addr) != 512 {
		t.Fatalf("thread 0 first record = %+v ok=%v, want read of 512", rec, ok)
	}
	rec, ok = r.Next()
	if !ok || rec.Kind != trace.Write || uint64(rec.Addr) != 0x240 || rec.Gap != 2 {
		t.Fatalf("thread 0 second record = %+v ok=%v, want write of 0x240 gap 2", rec, ok)
	}
	if _, ok := r.Next(); ok || r.Err() != nil {
		t.Fatalf("thread 0 stream did not end cleanly: err=%v", r.Err())
	}
}

// TestIngestedTraceRunsThroughMachine replays an ingested text trace through
// machine.RunSource, which opens every section twice (placement prepass +
// run) — the re-scan readers must survive that.
func TestIngestedTraceRunsThroughMachine(t *testing.T) {
	gen, err := workload.NewSource(workload.MustGet("streamcluster"),
		workload.Options{Threads: 4, Scale: 512, AccessesPerThread: 500})
	if err != nil {
		t.Fatal(err)
	}
	var text bytes.Buffer
	if err := WriteText(&text, gen); err != nil {
		t.Fatal(err)
	}
	ingested, err := OpenText(writeTemp(t, "run.txt", text.String()))
	if err != nil {
		t.Fatal(err)
	}
	cfg := machine.DefaultConfig(4, machine.C3D)
	cfg.Scale = 512
	cfg.CoresPerSocket = 2
	want, err := machine.New(cfg).RunSource(context.Background(), gen, machine.DefaultRunOptions())
	if err != nil {
		t.Fatal(err)
	}
	got, err := machine.New(cfg).RunSource(context.Background(), ingested, machine.DefaultRunOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ingested run differs from generator run:\n got %+v\nwant %+v", got, want)
	}
}

// TestTextReplayMemoryFlat pins the streaming property: opening a reader and
// pulling a fixed number of records must cost the same number of
// allocations on a 100x-longer file. A reader that materialises its section
// (or the whole file) fails this immediately.
func TestTextReplayMemoryFlat(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a 100x trace file")
	}
	makeTrace := func(records int) *TextSource {
		var b strings.Builder
		for i := 0; i < records; i++ {
			fmt.Fprintf(&b, "%d w 0x%x %d\n", i%4, 0x1000+i*64, i%7)
		}
		src, err := OpenText(writeTemp(t, fmt.Sprintf("n%d.txt", records), b.String()))
		if err != nil {
			t.Fatal(err)
		}
		return src
	}
	const probe = 50
	allocsFor := func(src *TextSource) float64 {
		return testing.AllocsPerRun(5, func() {
			r := src.OpenThread(0)
			for i := 0; i < probe; i++ {
				if _, ok := r.Next(); !ok {
					t.Fatalf("stream ended at record %d: %v", i, r.Err())
				}
			}
		})
	}
	small := allocsFor(makeTrace(2_000))
	big := allocsFor(makeTrace(200_000))
	// The two must be near-identical; the margin only absorbs scanner buffer
	// regrowth. 100x the records with flat allocations means no section is
	// ever resident.
	if big > small*1.5+16 {
		t.Fatalf("allocations scale with file length: %.1f allocs on 2k records vs %.1f on 200k", small, big)
	}
}
