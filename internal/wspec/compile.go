package wspec

import (
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"strings"

	"c3d/internal/addr"
	"c3d/internal/numa"
	"c3d/internal/trace"
	"c3d/internal/workload"
)

// Seed salts keeping every composed stream independent: each phase and each
// tenant perturbs the job SeedOffset with its own salt, and arrival
// processes draw from an RNG salted away from the leaf generators, so no two
// streams in a composition ever share a random sequence. The per-thread
// multiplier mirrors the workload generator's.
const (
	phaseSaltMul  int64 = 0x1F3D5B79
	tenantSaltMul int64 = 0x5DEECE66D
	threadSaltMul int64 = 0x9E3779B9
	arrivalSalt   int64 = 0x7F4A7C15
	initSalt      int64 = 0x1717
)

func phaseSalt(i int) int64  { return (int64(i) + 1) * phaseSaltMul }
func tenantSalt(i int) int64 { return (int64(i) + 1) * tenantSaltMul }

// Compiled is a workload-spec document compiled to a registry-ready
// workload.Spec. Compilation is eager about errors: a Compiled's spec has
// been probed through workload.NewSource once, so a bad document never gets
// as far as a job queue.
type Compiled struct {
	doc  *Doc
	spec workload.Spec
}

// Name returns the compiled workload's registry name.
func (c *Compiled) Name() string { return c.doc.Name }

// Doc returns the parsed document.
func (c *Compiled) Doc() *Doc { return c.doc }

// Spec returns the compiled workload.Spec, ready for workload.Register or
// direct use with workload.NewSource.
func (c *Compiled) Spec() workload.Spec { return c.spec }

// Load parses, validates and compiles a single spec document. Base
// references resolve against the workload registry.
func Load(data []byte) (*Compiled, error) {
	d, err := Parse(data)
	if err != nil {
		return nil, err
	}
	return Compile(d)
}

// Compile validates and compiles one document; base references resolve
// against the workload registry only.
func Compile(d *Doc) (*Compiled, error) {
	return compileOne(d, nil)
}

// CompileAll compiles a batch of documents that may reference each other as
// bases (in any order); cycles are rejected. Documents compile in input
// order.
func CompileAll(docs []*Doc) ([]*Compiled, error) {
	index := make(map[string]*Doc, len(docs))
	for _, d := range docs {
		if d.Name == "" {
			return nil, fmt.Errorf("wspec: spec has no name")
		}
		if _, dup := index[d.Name]; dup {
			return nil, fmt.Errorf("wspec: spec %q appears twice in the batch", d.Name)
		}
		index[d.Name] = d
	}
	out := make([]*Compiled, 0, len(docs))
	for _, d := range docs {
		c, err := compileOne(d, index)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}

func compileOne(d *Doc, index map[string]*Doc) (*Compiled, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	var (
		spec workload.Spec
		err  error
	)
	switch {
	case d.Trace != "":
		spec, err = traceSpec(d)
	case len(d.Tenants) > 0:
		spec, err = tenantSpec(d, index)
	default:
		spec, err = simpleSpec(d, index)
	}
	if err != nil {
		return nil, err
	}
	spec.Fingerprint = fingerprint(d)
	// Probe the compiled spec through the full source pipeline once, so
	// every compile-time failure mode — including per-phase and per-tenant
	// variant validation — surfaces here rather than inside a running job.
	if _, err := workload.NewSource(spec, workload.Options{}); err != nil {
		return nil, fmt.Errorf("wspec: spec %q: %w", d.Name, err)
	}
	return &Compiled{doc: d, spec: spec}, nil
}

// fingerprint hashes the canonical re-marshalling of the document; it lets
// caches distinguish two different documents that picked the same name.
func fingerprint(d *Doc) string {
	b, err := json.Marshal(d)
	if err != nil {
		// A Doc is marshal-safe by construction; this is unreachable.
		panic(err)
	}
	sum := sha256.Sum256(b)
	return fmt.Sprintf("%x", sum[:8])
}

// resolveBase resolves a base name to a flattened generator spec: a batch
// document (simple mode only), or a registry workload. seen/chain detect
// cyclic references.
func resolveBase(name string, index map[string]*Doc, seen map[string]bool, chain []string) (workload.Spec, error) {
	if name == "" {
		return workload.Spec{}, fmt.Errorf("wspec: %s: empty base reference", strings.Join(chain, " -> "))
	}
	if bd, ok := index[name]; ok {
		// Cycles are only possible among batch documents; a registry base
		// below is a leaf. Checking here (not above) lets a doc reuse a
		// registry workload's own name — a spec named "facesim" with base
		// "facesim" shadows the registry entry, it does not cycle.
		if seen[name] {
			return workload.Spec{}, fmt.Errorf("wspec: cyclic base reference: %s", strings.Join(append(chain, name), " -> "))
		}
		if bd.Trace != "" || len(bd.Tenants) > 0 || len(bd.Phases) > 0 {
			return workload.Spec{}, fmt.Errorf("wspec: base %q is a composite spec (phases/tenants/trace); only simple re-parameterising specs can serve as bases", name)
		}
		seen[name] = true
		base, err := resolveBase(bd.Base, index, seen, append(chain, name))
		delete(seen, name)
		if err != nil {
			return workload.Spec{}, err
		}
		s := applySimple(base, bd)
		if err := s.Validate(); err != nil {
			return workload.Spec{}, fmt.Errorf("wspec: base %q: %w", name, err)
		}
		return s, nil
	}
	s, err := workload.Get(name)
	if err != nil {
		return workload.Spec{}, fmt.Errorf("wspec: %w", err)
	}
	if s.Source != nil {
		return workload.Spec{}, fmt.Errorf("wspec: base %q is a compiled composite workload; reference a generator workload instead", name)
	}
	return s, nil
}

// applySimple layers a document's scalar knobs — identity, seed, sizes,
// overrides, arrival, sharing — onto a flattened base spec.
func applySimple(base workload.Spec, d *Doc) workload.Spec {
	s := base
	s.Name = d.Name
	s.Source = nil
	s.Fingerprint = ""
	if d.Seed != 0 {
		s.Seed = d.Seed
	}
	if d.Threads > 0 {
		s.DefaultThreads = d.Threads
		if s.Class == workload.SingleThreaded {
			// An explicit thread count overrides the base's single-threaded
			// pin (the generator would otherwise force one thread).
			s.Class = workload.Parallel
		}
	}
	if d.Accesses > 0 {
		s.AccessesPerThread = d.Accesses
	}
	s = applyOverrides(s, d.Overrides)
	if d.Arrival != nil {
		s.GapDist = d.Arrival.Process
		s.MeanGap = int(d.Arrival.Mean + 0.5)
		s.GapShape = d.Arrival.Shape
	}
	if d.Sharing != nil {
		s.SharingDist = d.Sharing.Dist
		s.SharingTheta = d.Sharing.Theta
	}
	return s
}

func applyOverrides(s workload.Spec, o *Overrides) workload.Spec {
	if o == nil {
		return s
	}
	if o.SharedFraction != nil {
		s.SharedFraction = *o.SharedFraction
	}
	if o.CommFraction != nil {
		s.CommFraction = *o.CommFraction
	}
	if o.ReadFraction != nil {
		s.ReadFraction = *o.ReadFraction
	}
	if o.LocalitySkew != nil {
		s.LocalitySkew = *o.LocalitySkew
	}
	if o.SpatialRun != nil {
		s.SpatialRun = *o.SpatialRun
	}
	if o.MeanGap != nil {
		s.MeanGap = *o.MeanGap
	}
	return s
}

// simpleSpec compiles base + overrides (+ phases) into a spec. Without
// phases the result is a plain generator spec — which is what makes a spec
// that mirrors a registry workload produce byte-identical traces, and lets
// simple specs serve as bases for other specs.
func simpleSpec(d *Doc, index map[string]*Doc) (workload.Spec, error) {
	seen := map[string]bool{d.Name: true}
	base, err := resolveBase(d.Base, index, seen, []string{d.Name})
	if err != nil {
		return workload.Spec{}, err
	}
	spec := applySimple(base, d)
	if err := spec.Validate(); err != nil {
		return workload.Spec{}, fmt.Errorf("wspec: spec %q: %w", d.Name, err)
	}
	if len(d.Phases) > 0 {
		flat := spec // the phased factory captures the flattened spec, not itself
		spec.Source = phasedFactory(flat, append([]Phase(nil), d.Phases...))
	}
	return spec, nil
}

// phasedFactory builds the Source hook for a phased spec: per-thread
// streams that play each phase's re-weighted variant of the base for its
// share of the access stream. Overrides cannot change region sizes, so all
// variants share the base layout and the address space is phase-stable.
func phasedFactory(base workload.Spec, phases []Phase) func(workload.Spec, workload.Options) (trace.Source, error) {
	return func(s workload.Spec, o workload.Options) (trace.Source, error) {
		variants := make([]workload.Spec, len(phases))
		for i, p := range phases {
			v := applyOverrides(base, &p.Overrides)
			if err := v.Validate(); err != nil {
				return nil, fmt.Errorf("wspec: spec %q: phase %d (%s): %w", s.Name, i, p.Name, err)
			}
			variants[i] = v
		}
		inner, err := workload.NewSource(base, o)
		if err != nil {
			return nil, err
		}
		return &phasedSource{
			name:     s.Name,
			inner:    inner,
			variants: variants,
			counts:   phaseCounts(phases, o.AccessesPerThread),
			o:        o,
		}, nil
	}
}

// phaseCounts partitions n accesses over the phases proportionally to their
// fractions (floor division, remainder to the last phase), so the total is
// exactly n at any n.
func phaseCounts(phases []Phase, n int) []int {
	sum := 0.0
	for _, p := range phases {
		sum += p.Fraction
	}
	counts := make([]int, len(phases))
	used := 0
	for i := 0; i < len(phases)-1; i++ {
		c := int(float64(n) * phases[i].Fraction / sum)
		counts[i] = c
		used += c
	}
	counts[len(phases)-1] = n - used
	return counts
}

// phasedSource delegates shape and init to the base source and plays the
// thread streams phase by phase. Each phase opens its variant's generator
// with a phase-salted seed offset, so phases are independent streams and
// replay identically however often a section is reopened.
type phasedSource struct {
	name     string
	inner    trace.Source
	variants []workload.Spec
	counts   []int
	o        workload.Options
}

func (p *phasedSource) Name() string                 { return p.name }
func (p *phasedSource) Threads() int                 { return p.inner.Threads() }
func (p *phasedSource) InitLen() int                 { return p.inner.InitLen() }
func (p *phasedSource) ThreadLen(t int) int          { return p.o.AccessesPerThread }
func (p *phasedSource) OpenInit() trace.RecordReader { return p.inner.OpenInit() }

func (p *phasedSource) OpenThread(thread int) trace.RecordReader {
	return &phasedReader{p: p, thread: thread}
}

type phasedReader struct {
	p      *phasedSource
	thread int
	phase  int // next phase to open
	cur    trace.RecordReader
	left   int
	err    error
}

func (r *phasedReader) Next() (trace.Record, bool) {
	for {
		if r.err != nil {
			return trace.Record{}, false
		}
		if r.cur != nil && r.left > 0 {
			rec, ok := r.cur.Next()
			if !ok {
				r.err = r.cur.Err()
				if r.err == nil {
					r.err = fmt.Errorf("wspec: %s: phase %d underran its stream", r.p.name, r.phase-1)
				}
				return trace.Record{}, false
			}
			r.left--
			return rec, true
		}
		if r.phase >= len(r.p.variants) {
			return trace.Record{}, false
		}
		i := r.phase
		r.phase++
		if r.p.counts[i] == 0 {
			continue
		}
		o := r.p.o
		o.SeedOffset ^= phaseSalt(i)
		src, err := workload.NewSource(r.p.variants[i], o)
		if err != nil {
			r.err = err
			return trace.Record{}, false
		}
		r.cur = src.OpenThread(r.thread)
		r.left = r.p.counts[i]
	}
}

func (r *phasedReader) Err() error { return r.err }

// mixTenant is one compiled tenant of a multi-tenant mix.
type mixTenant struct {
	spec    workload.Spec // effective generator spec, Source nil
	weight  float64
	arrival Arrival
}

// tenantSpec compiles a multi-tenant document: each tenant resolves and
// re-weights its own base, and the mix interleaves the per-tenant streams
// by seeded arrival processes at generation time.
func tenantSpec(d *Doc, index map[string]*Doc) (workload.Spec, error) {
	tenants := make([]mixTenant, 0, len(d.Tenants))
	for _, t := range d.Tenants {
		seen := map[string]bool{d.Name: true}
		base, err := resolveBase(t.Base, index, seen, []string{d.Name})
		if err != nil {
			return workload.Spec{}, fmt.Errorf("wspec: spec %q: tenant %q: %w", d.Name, t.Name, err)
		}
		eff := applyOverrides(base, d.Overrides)
		eff = applyOverrides(eff, t.Overrides)
		eff.Name = d.Name + "/" + t.Name
		// Tenants follow the mix's thread count even when the base is the
		// single-threaded workload.
		if eff.Class == workload.SingleThreaded {
			eff.Class = workload.Parallel
		}
		if d.Sharing != nil {
			eff.SharingDist = d.Sharing.Dist
			eff.SharingTheta = d.Sharing.Theta
		}
		if err := eff.Validate(); err != nil {
			return workload.Spec{}, fmt.Errorf("wspec: spec %q: tenant %q: %w", d.Name, t.Name, err)
		}
		arr := Arrival{Process: workload.GapConstant, Mean: float64(eff.MeanGap)}
		if t.Arrival != nil {
			arr = *t.Arrival
		} else if d.Arrival != nil {
			arr = *d.Arrival
		}
		tenants = append(tenants, mixTenant{spec: eff, weight: t.weight(), arrival: arr})
	}

	first := tenants[0].spec
	spec := workload.Spec{
		Name:              d.Name,
		Class:             first.Class,
		ReadFraction:      first.ReadFraction,
		MeanGap:           first.MeanGap,
		AccessesPerThread: first.AccessesPerThread,
		InitFraction:      first.InitFraction,
		DefaultThreads:    first.DefaultThreads,
		PreferredPolicy:   first.PreferredPolicy,
		Seed:              first.Seed,
	}
	for _, t := range tenants {
		spec.SharedBytes += t.spec.SharedBytes // footprint bookkeeping only
	}
	if d.Seed != 0 {
		spec.Seed = d.Seed
	}
	if d.Threads > 0 {
		spec.DefaultThreads = d.Threads
	}
	if d.Accesses > 0 {
		spec.AccessesPerThread = d.Accesses
	}
	spec.Source = mixFactory(tenants)
	return spec, nil
}

// mixFactory builds the Source hook for a multi-tenant mix. Each tenant's
// regions are relocated to a disjoint, page-aligned slice of the address
// space; the interleave order is decided by per-tenant virtual arrival
// clocks advanced with inverse-transform-sampled intervals, all derived
// from the job seed, so the merged stream is a pure function of
// (spec, options).
func mixFactory(tenants []mixTenant) func(workload.Spec, workload.Options) (trace.Source, error) {
	return func(s workload.Spec, o workload.Options) (trace.Source, error) {
		m := &mixSource{
			name:         s.Name,
			o:            o,
			seed:         s.Seed,
			tenants:      tenants,
			initFraction: s.InitFraction,
			meanGap:      s.MeanGap,
			offsets:      make([]addr.Addr, len(tenants)),
		}
		var total uint64
		for i, t := range tenants {
			m.offsets[i] = addr.Addr(total)
			total += workload.BuildLayout(t.spec, o).TotalBytes()
		}
		m.totalBytes = total
		return m, nil
	}
}

type mixSource struct {
	name         string
	o            workload.Options
	seed         int64
	tenants      []mixTenant
	offsets      []addr.Addr
	totalBytes   uint64
	initFraction float64
	meanGap      int
}

func (m *mixSource) Name() string        { return m.name }
func (m *mixSource) Threads() int        { return m.o.Threads }
func (m *mixSource) ThreadLen(t int) int { return m.o.AccessesPerThread }

func (m *mixSource) InitLen() int {
	n := int(float64(m.o.AccessesPerThread) * m.initFraction)
	if n <= 0 || m.totalBytes < addr.PageBytes {
		return 0
	}
	return n
}

// OpenInit strides the combined footprint page by page the way the
// generator's init section does, so FT1 placement sees the same
// serial-touch behaviour over the mix's whole address space.
func (m *mixSource) OpenInit() trace.RecordReader {
	r := &strideInitReader{n: m.InitLen(), meanGap: m.meanGap}
	if r.n == 0 {
		return r
	}
	r.rng = rand.New(rand.NewSource(m.seed ^ m.o.SeedOffset ^ initSalt))
	r.pages = m.totalBytes / addr.PageBytes
	return r
}

// strideInitReader mirrors the generator's init section over an arbitrary
// footprint: one write per page, striding and wrapping.
type strideInitReader struct {
	rng     *rand.Rand
	pages   uint64
	meanGap int
	n, i    int
}

func (r *strideInitReader) Next() (trace.Record, bool) {
	if r.i >= r.n {
		return trace.Record{}, false
	}
	page := uint64(r.i) % r.pages
	offset := uint64(r.rng.Intn(addr.BlocksPerPage)) * addr.BlockBytes
	rec := trace.Record{
		Kind: trace.Write,
		Addr: addr.Addr(page*addr.PageBytes + offset),
		Gap:  uint32(r.rng.Intn(2*r.meanGap + 1)),
	}
	r.i++
	return rec, true
}

func (r *strideInitReader) Err() error { return nil }

func (m *mixSource) OpenThread(thread int) trace.RecordReader {
	r := &mixReader{n: m.o.AccessesPerThread}
	for k := range m.tenants {
		t := &m.tenants[k]
		o := m.o
		o.SeedOffset ^= tenantSalt(k)
		src, err := workload.NewSource(t.spec, o)
		if err != nil {
			return &errReader{err: fmt.Errorf("wspec: %s: tenant %d: %w", m.name, k, err)}
		}
		// The arrival clock's RNG is salted away from the leaf generator's
		// so pacing and content never share a random stream.
		arng := rand.New(rand.NewSource(m.seed ^ m.o.SeedOffset ^ tenantSalt(k) ^ (int64(thread)+1)*threadSaltMul ^ arrivalSalt))
		st := &tenantStream{
			leaf:  src.OpenThread(thread),
			rng:   arng,
			off:   m.offsets[k],
			proc:  t.arrival.Process,
			mean:  t.arrival.Mean,
			shape: t.arrival.Shape,
		}
		if t.weight > 0 {
			st.mean /= t.weight
			st.gap = workload.SampleInterval(st.rng, st.proc, st.mean, st.shape)
			st.next = st.gap
		} else {
			// Zero-weight tenants never arrive; they exist so a mix can be
			// re-weighted without renaming tenants.
			st.next = math.Inf(1)
		}
		r.streams = append(r.streams, st)
	}
	return r
}

// tenantStream is one tenant's stream inside a mixReader: its leaf reader,
// its arrival clock, and the address offset relocating it.
type tenantStream struct {
	leaf  trace.RecordReader
	rng   *rand.Rand
	off   addr.Addr
	proc  string
	mean  float64
	shape float64
	gap   float64 // interval that preceded the pending record
	next  float64 // virtual arrival time of the pending record
	done  bool
}

// mixReader merges the tenant streams: each Next picks the stream with the
// earliest virtual arrival time (ties to the lowest tenant index — a total,
// deterministic order), emits its record relocated into the tenant's
// address slice with the sampled interval as the record gap, then advances
// that tenant's clock.
type mixReader struct {
	streams []*tenantStream
	n, i    int
	err     error
}

func (r *mixReader) Next() (trace.Record, bool) {
	for {
		if r.err != nil || r.i >= r.n {
			return trace.Record{}, false
		}
		best := -1
		for k, st := range r.streams {
			if st.done || math.IsInf(st.next, 1) {
				continue
			}
			if best < 0 || st.next < r.streams[best].next {
				best = k
			}
		}
		if best < 0 {
			return trace.Record{}, false
		}
		st := r.streams[best]
		rec, ok := st.leaf.Next()
		if !ok {
			if err := st.leaf.Err(); err != nil {
				r.err = err
				return trace.Record{}, false
			}
			st.done = true
			continue
		}
		rec.Addr += st.off
		rec.Gap = workload.ClampGap(st.gap)
		r.i++
		g := workload.SampleInterval(st.rng, st.proc, st.mean, st.shape)
		st.gap = g
		st.next += 1 + g
		return rec, true
	}
}

func (r *mixReader) Err() error { return r.err }

type errReader struct{ err error }

func (r *errReader) Next() (trace.Record, bool) { return trace.Record{}, false }
func (r *errReader) Err() error                 { return r.err }

// traceSpec compiles an external-trace reference: the file is opened and
// indexed once, held for the life of the compiled spec, and replayed as-is
// through the streaming FileSource (or materialised for legacy v1 files,
// which were in-memory formats to begin with).
func traceSpec(d *Doc) (workload.Spec, error) {
	f, err := os.Open(d.Trace)
	if err != nil {
		return workload.Spec{}, fmt.Errorf("wspec: spec %q: %w", d.Name, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return workload.Spec{}, fmt.Errorf("wspec: spec %q: %w", d.Name, err)
	}
	var src trace.Source
	src, err = trace.OpenSource(f, st.Size())
	if errors.Is(err, trace.ErrLegacyVersion) {
		if _, serr := f.Seek(0, 0); serr != nil {
			f.Close()
			return workload.Spec{}, fmt.Errorf("wspec: spec %q: %w", d.Name, serr)
		}
		tr, derr := trace.Decode(f)
		f.Close()
		if derr != nil {
			return workload.Spec{}, fmt.Errorf("wspec: spec %q: %s: %w", d.Name, d.Trace, derr)
		}
		src = tr.Source()
		err = nil
	}
	if err != nil {
		f.Close()
		return workload.Spec{}, fmt.Errorf("wspec: spec %q: %s: %w", d.Name, d.Trace, err)
	}
	threads := src.Threads()
	accesses := 0
	for t := 0; t < threads; t++ {
		if l := src.ThreadLen(t); l > accesses {
			accesses = l
		}
	}
	if accesses == 0 {
		accesses = 1
	}
	defaultThreads := threads
	if defaultThreads == 0 {
		defaultThreads = 1
	}
	return workload.Spec{
		Name:              d.Name,
		Class:             workload.Parallel,
		AccessesPerThread: accesses,
		DefaultThreads:    defaultThreads,
		PreferredPolicy:   numa.Interleave,
		Source: func(workload.Spec, workload.Options) (trace.Source, error) {
			return src, nil
		},
	}, nil
}
