package wspec

import (
	"bytes"
	"encoding/json"
	"fmt"

	"c3d/internal/workload"
)

// Version is the only workload-spec document version this package reads.
const Version = 1

// Doc is a parsed workload-spec document. See the package documentation for
// the format reference. Exactly one of Base, Tenants or Trace selects the
// document's mode:
//
//   - Base (no phases/tenants): a simple re-parameterisation of the base
//     workload — overrides, arrival process, sharing skew. Compiles to a
//     plain generator spec, so it can in turn serve as a base.
//   - Base + Phases: sequential segments that re-weight the base's mix over
//     the access stream.
//   - Tenants: a weighted mix of per-tenant streams interleaved by seeded
//     arrival processes.
//   - Trace: an external v2 chunked trace file replayed as-is.
type Doc struct {
	// Version must be 1.
	Version int `json:"version"`
	// Name registers the compiled workload; it must be unique.
	Name string `json:"name"`
	// Base names the underlying workload: a registry workload or a simple
	// spec compiled in the same batch.
	Base string `json:"base,omitempty"`
	// Trace replays an external v2 chunked trace file (path) instead of
	// generating a stream. No other knobs may be combined with it.
	Trace string `json:"trace,omitempty"`

	// Seed overrides the base seed when non-zero.
	Seed int64 `json:"seed,omitempty"`
	// Threads overrides the default thread count when positive.
	Threads int `json:"threads,omitempty"`
	// Accesses overrides accesses per thread when positive.
	Accesses int `json:"accesses_per_thread,omitempty"`

	// Overrides re-weights the base workload's mix.
	Overrides *Overrides `json:"overrides,omitempty"`
	// Arrival replaces the base's inter-access gap model.
	Arrival *Arrival `json:"arrival,omitempty"`
	// Sharing replaces the shared-region locality model with a heavy-tailed
	// rank distribution.
	Sharing *Dist `json:"sharing,omitempty"`

	// Phases splits the access stream into sequential segments, each
	// re-weighting the base mix. Fractions are normalised over their sum.
	Phases []Phase `json:"phases,omitempty"`
	// Tenants interleaves independently generated per-tenant streams.
	Tenants []Tenant `json:"tenants,omitempty"`
}

// Overrides adjusts a base workload's mix parameters. Pointer fields
// distinguish "not set" from an explicit zero. Region sizes are deliberately
// not overridable: every phase and tenant variant keeps its base's layout,
// which is what makes phase composition address-stable.
type Overrides struct {
	SharedFraction *float64 `json:"shared_fraction,omitempty"`
	CommFraction   *float64 `json:"comm_fraction,omitempty"`
	ReadFraction   *float64 `json:"read_fraction,omitempty"`
	LocalitySkew   *float64 `json:"locality_skew,omitempty"`
	SpatialRun     *int     `json:"spatial_run,omitempty"`
	MeanGap        *int     `json:"mean_gap,omitempty"`
}

// Arrival selects an inter-access gap distribution: constant, poisson,
// gamma or weibull intervals of the given mean (and shape for gamma/
// weibull), sampled by inverse transform on the job RNG.
type Arrival struct {
	Process string  `json:"process"`
	Mean    float64 `json:"mean"`
	Shape   float64 `json:"shape,omitempty"`
}

// Dist selects a heavy-tailed sharing-skew distribution: zipf or pareto
// with exponent theta.
type Dist struct {
	Dist  string  `json:"dist"`
	Theta float64 `json:"theta"`
}

// Phase is one sequential segment of a phased spec. Fraction is its share
// of the access stream (normalised over the sum of all phase fractions).
type Phase struct {
	Name     string  `json:"name,omitempty"`
	Fraction float64 `json:"fraction"`
	Overrides
}

// Tenant is one stream of a multi-tenant mix. Weight scales its share of
// the interleaved stream (default 1); Arrival paces it (default: constant
// intervals at the tenant base's mean gap).
type Tenant struct {
	Name      string     `json:"name"`
	Base      string     `json:"base"`
	Weight    *float64   `json:"weight,omitempty"`
	Arrival   *Arrival   `json:"arrival,omitempty"`
	Overrides *Overrides `json:"overrides,omitempty"`
}

// Parse decodes a workload-spec document. Unknown fields and trailing data
// are errors: a spec travels over the wire and into caches, so silent
// tolerance would hide typos until results differ.
func Parse(data []byte) (*Doc, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var d Doc
	if err := dec.Decode(&d); err != nil {
		return nil, fmt.Errorf("wspec: parse: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("wspec: trailing data after spec document")
	}
	return &d, nil
}

// Validate checks the document's shape and parameter ranges. It does not
// resolve base references — Compile does, against the registry and the
// compilation batch.
func (d *Doc) Validate() error {
	if d.Version != Version {
		return fmt.Errorf("wspec: unsupported spec version %d (want %d)", d.Version, Version)
	}
	if d.Name == "" {
		return fmt.Errorf("wspec: spec has no name")
	}
	modes := 0
	if d.Base != "" {
		modes++
	}
	if len(d.Tenants) > 0 {
		modes++
	}
	if d.Trace != "" {
		modes++
	}
	if modes != 1 {
		return fmt.Errorf("wspec: spec %q must set exactly one of base, tenants or trace", d.Name)
	}
	if d.Trace != "" {
		// A trace reference replays the file as-is; any other knob would be
		// silently ignored, so reject the combination outright.
		if d.Seed != 0 || d.Threads != 0 || d.Accesses != 0 || d.Overrides != nil ||
			d.Arrival != nil || d.Sharing != nil || len(d.Phases) > 0 {
			return fmt.Errorf("wspec: spec %q: a trace reference replays the file as-is and takes no other knobs", d.Name)
		}
		return nil
	}
	if d.Threads < 0 {
		return fmt.Errorf("wspec: spec %q: threads %d must be non-negative", d.Name, d.Threads)
	}
	if d.Threads > 0 && d.Threads > maxThreads {
		return fmt.Errorf("wspec: spec %q: threads %d exceed %d", d.Name, d.Threads, maxThreads)
	}
	if d.Accesses < 0 {
		return fmt.Errorf("wspec: spec %q: accesses_per_thread %d must be non-negative", d.Name, d.Accesses)
	}
	if err := d.Overrides.validate(d.Name, "overrides"); err != nil {
		return err
	}
	if err := d.Arrival.validate(d.Name, "arrival"); err != nil {
		return err
	}
	if err := d.Sharing.validate(d.Name); err != nil {
		return err
	}
	sum := 0.0
	for i, p := range d.Phases {
		if p.Fraction <= 0 {
			return fmt.Errorf("wspec: spec %q: phase %d (%s): fraction %g must be positive", d.Name, i, p.Name, p.Fraction)
		}
		sum += p.Fraction
		if err := p.Overrides.validate(d.Name, fmt.Sprintf("phase %d (%s)", i, p.Name)); err != nil {
			return err
		}
	}
	if len(d.Phases) > 0 && !(sum > 0) {
		return fmt.Errorf("wspec: spec %q: phase fractions sum to 0", d.Name)
	}
	if len(d.Tenants) > 0 {
		if len(d.Phases) > 0 {
			return fmt.Errorf("wspec: spec %q: phases and tenants cannot be combined (phase the tenant bases instead)", d.Name)
		}
		seen := map[string]bool{}
		wsum := 0.0
		for i, t := range d.Tenants {
			if t.Name == "" {
				return fmt.Errorf("wspec: spec %q: tenant %d has no name", d.Name, i)
			}
			if seen[t.Name] {
				return fmt.Errorf("wspec: spec %q: tenant %q appears twice", d.Name, t.Name)
			}
			seen[t.Name] = true
			if t.Base == "" {
				return fmt.Errorf("wspec: spec %q: tenant %q has no base", d.Name, t.Name)
			}
			w := t.weight()
			if w < 0 {
				return fmt.Errorf("wspec: spec %q: tenant %q: weight %g must be non-negative", d.Name, t.Name, w)
			}
			wsum += w
			if err := t.Arrival.validate(d.Name, "tenant "+t.Name); err != nil {
				return err
			}
			if err := t.Overrides.validate(d.Name, "tenant "+t.Name); err != nil {
				return err
			}
		}
		if !(wsum > 0) {
			return fmt.Errorf("wspec: spec %q: tenant weights sum to 0", d.Name)
		}
	}
	return nil
}

// maxThreads mirrors trace.MaxThreads without importing it into the wire
// validation path.
const maxThreads = 1 << 16

func (t Tenant) weight() float64 {
	if t.Weight == nil {
		return 1
	}
	return *t.Weight
}

func (o *Overrides) validate(spec, where string) error {
	if o == nil {
		return nil
	}
	frac := func(field string, v *float64) error {
		if v != nil && (*v < 0 || *v > 1) {
			return fmt.Errorf("wspec: spec %q: %s: %s %g out of [0,1]", spec, where, field, *v)
		}
		return nil
	}
	if err := frac("shared_fraction", o.SharedFraction); err != nil {
		return err
	}
	if err := frac("comm_fraction", o.CommFraction); err != nil {
		return err
	}
	if err := frac("read_fraction", o.ReadFraction); err != nil {
		return err
	}
	if o.LocalitySkew != nil && *o.LocalitySkew < 1 {
		return fmt.Errorf("wspec: spec %q: %s: locality_skew %g must be >= 1", spec, where, *o.LocalitySkew)
	}
	if o.SpatialRun != nil && *o.SpatialRun < 0 {
		return fmt.Errorf("wspec: spec %q: %s: spatial_run %d must be non-negative", spec, where, *o.SpatialRun)
	}
	if o.MeanGap != nil && *o.MeanGap < 0 {
		return fmt.Errorf("wspec: spec %q: %s: mean_gap %d must be non-negative", spec, where, *o.MeanGap)
	}
	return nil
}

func (a *Arrival) validate(spec, where string) error {
	if a == nil {
		return nil
	}
	if a.Process == "" {
		return fmt.Errorf("wspec: spec %q: %s: arrival has no process (want constant, poisson, gamma or weibull)", spec, where)
	}
	if a.Mean < 0 {
		return fmt.Errorf("wspec: spec %q: %s: arrival mean %g must be non-negative", spec, where, a.Mean)
	}
	// Reuse the workload-level range rules so a doc rejected here is exactly
	// a doc the generator would reject after compilation.
	if err := validateArrivalDist(spec+"/"+where, a); err != nil {
		return err
	}
	return nil
}

func validateArrivalDist(name string, a *Arrival) error {
	probe := workload.Spec{
		Name: name, LocalitySkew: 1, SharedBytes: 1,
		AccessesPerThread: 1, DefaultThreads: 1,
		MeanGap: int(a.Mean + 0.5), GapDist: a.Process, GapShape: a.Shape,
	}
	return probe.Validate()
}

func (s *Dist) validate(spec string) error {
	if s == nil {
		return nil
	}
	probe := workload.Spec{
		Name: spec, LocalitySkew: 1, SharedBytes: 1,
		AccessesPerThread: 1, DefaultThreads: 1,
		SharingDist: s.Dist, SharingTheta: s.Theta,
	}
	return probe.Validate()
}
