package wspec

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"c3d/internal/addr"
	"c3d/internal/trace"
)

// The external text trace format: one record per line,
//
//	<init|thread-index> <r|w> <address> [gap]
//
// with whitespace- or comma-separated fields, '#' comments, hex (0x...) or
// decimal addresses, and an optional "# name: <workload>" directive naming
// the trace. Lines from different threads may appear in any interleaving:
// each reader filters its own section, so converters can dump records in
// whatever order the original tool emitted them.

// TextSource streams an external text-format memory trace as a
// trace.Source. The constructor makes one validating pass to size the
// sections; every reader then re-scans the file filtering its section, so
// resident memory stays bounded by one line however long the trace is, and
// sections replay any number of times (which machine.RunSource's placement
// prepass requires).
type TextSource struct {
	path    string
	name    string
	lens    []int // lens[0] = init section, lens[t+1] = thread t
	threads int
}

// OpenText scans and validates a text-format trace file. Every line is
// checked during the scan, so a malformed file fails here, not mid-replay.
func OpenText(path string) (*TextSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("wspec: %w", err)
	}
	defer f.Close()
	s := &TextSource{path: path, name: defaultTraceName(path)}
	maxThread := -1
	counts := map[int]int{}
	sc := newLineScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if name, ok := nameDirective(text); ok {
			s.name = name
			continue
		}
		section, _, ok, err := parseTextLine(text)
		if err != nil {
			return nil, fmt.Errorf("wspec: %s:%d: %w", path, line, err)
		}
		if !ok {
			continue
		}
		counts[section]++
		if section-1 > maxThread {
			maxThread = section - 1
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("wspec: %s: %w", path, err)
	}
	s.threads = maxThread + 1
	s.lens = make([]int, s.threads+1)
	total := 0
	//c3dlint:allow determinism(counts keys index a dense slice; no ordered iteration escapes)
	for section, c := range counts {
		s.lens[section] = c
		total += c
	}
	if total == 0 {
		return nil, fmt.Errorf("wspec: %s: no trace records", path)
	}
	return s, nil
}

func defaultTraceName(path string) string {
	base := path
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	if i := strings.LastIndexByte(base, '.'); i > 0 {
		base = base[:i]
	}
	if base == "" {
		base = "trace"
	}
	return base
}

// Name returns the trace name: the "# name:" directive if present, else the
// file's base name.
func (s *TextSource) Name() string { return s.name }

// Threads returns the number of parallel threads in the trace.
func (s *TextSource) Threads() int { return s.threads }

// InitLen returns the number of init-section records.
func (s *TextSource) InitLen() int { return s.lens[0] }

// ThreadLen returns the number of records in thread t's stream.
func (s *TextSource) ThreadLen(t int) int { return s.lens[t+1] }

// OpenInit returns a fresh reader over the init section.
func (s *TextSource) OpenInit() trace.RecordReader { return s.open(0) }

// OpenThread returns a fresh reader over thread t's stream.
func (s *TextSource) OpenThread(t int) trace.RecordReader { return s.open(t + 1) }

func (s *TextSource) open(section int) trace.RecordReader {
	f, err := os.Open(s.path)
	if err != nil {
		return &errReader{err: fmt.Errorf("wspec: %w", err)}
	}
	return &textReader{f: f, sc: newLineScanner(f), path: s.path, section: section, want: s.lens[section]}
}

func newLineScanner(f *os.File) *bufio.Scanner {
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	return sc
}

// textReader filters one section out of the text file. The underlying file
// is closed as soon as the section's last record is emitted.
type textReader struct {
	f       *os.File
	sc      *bufio.Scanner
	path    string
	section int
	want    int
	got     int
	line    int
	err     error
}

func (r *textReader) Next() (trace.Record, bool) {
	if r.err != nil || r.got >= r.want {
		return trace.Record{}, false
	}
	for r.sc.Scan() {
		r.line++
		section, rec, ok, err := parseTextLine(r.sc.Text())
		if err != nil {
			r.fail(fmt.Errorf("wspec: %s:%d: %w", r.path, r.line, err))
			return trace.Record{}, false
		}
		if !ok || section != r.section {
			continue
		}
		r.got++
		if r.got == r.want {
			r.close()
		}
		return rec, true
	}
	if err := r.sc.Err(); err != nil {
		r.fail(fmt.Errorf("wspec: %s: %w", r.path, err))
		return trace.Record{}, false
	}
	// The constructor counted more records than this pass found: the file
	// changed between the scan and the replay.
	r.fail(fmt.Errorf("wspec: %s: section %d ended after %d of %d records (file changed underfoot?)", r.path, r.section, r.got, r.want))
	return trace.Record{}, false
}

func (r *textReader) Err() error { return r.err }

func (r *textReader) fail(err error) {
	r.err = err
	r.close()
}

func (r *textReader) close() {
	if r.f != nil {
		r.f.Close()
		r.f = nil
	}
}

// nameDirective recognises "# name: <workload>" comment lines.
func nameDirective(line string) (string, bool) {
	t := strings.TrimSpace(line)
	if !strings.HasPrefix(t, "#") {
		return "", false
	}
	body := strings.TrimSpace(strings.TrimPrefix(t, "#"))
	v, ok := strings.CutPrefix(body, "name:")
	if !ok {
		return "", false
	}
	name := strings.TrimSpace(v)
	if name == "" {
		return "", false
	}
	return name, true
}

// parseTextLine parses one line. ok is false for blank and comment lines.
// The section is 0 for init, t+1 for thread t.
func parseTextLine(line string) (section int, rec trace.Record, ok bool, err error) {
	if i := strings.IndexByte(line, '#'); i >= 0 {
		line = line[:i]
	}
	fields := strings.FieldsFunc(line, func(r rune) bool {
		return r == ' ' || r == '\t' || r == ','
	})
	if len(fields) == 0 {
		return 0, trace.Record{}, false, nil
	}
	if len(fields) < 3 || len(fields) > 4 {
		return 0, trace.Record{}, false, fmt.Errorf("want `<init|thread> <r|w> <addr> [gap]`, got %d fields", len(fields))
	}
	if fields[0] == "init" {
		section = 0
	} else {
		t, perr := strconv.ParseUint(fields[0], 10, 32)
		if perr != nil {
			return 0, trace.Record{}, false, fmt.Errorf("bad thread index %q (want `init` or a thread number)", fields[0])
		}
		if t >= trace.MaxThreads {
			return 0, trace.Record{}, false, fmt.Errorf("thread index %d exceeds %d", t, trace.MaxThreads-1)
		}
		section = int(t) + 1
	}
	switch strings.ToLower(fields[1]) {
	case "r", "read", "l", "load":
		rec.Kind = trace.Read
	case "w", "write", "s", "store":
		rec.Kind = trace.Write
	default:
		return 0, trace.Record{}, false, fmt.Errorf("bad access kind %q (want r/read/load or w/write/store)", fields[1])
	}
	a, perr := strconv.ParseUint(fields[2], 0, 64)
	if perr != nil {
		return 0, trace.Record{}, false, fmt.Errorf("bad address %q (want hex 0x... or decimal)", fields[2])
	}
	rec.Addr = addr.Addr(a)
	if len(fields) == 4 {
		g, perr := strconv.ParseUint(fields[3], 0, 32)
		if perr != nil {
			return 0, trace.Record{}, false, fmt.Errorf("bad gap %q (want a uint32)", fields[3])
		}
		rec.Gap = uint32(g)
	}
	return section, rec, true, nil
}

// Ingest converts a text-format trace file into the v2 chunked binary
// format: OpenText's streaming source piped through trace.EncodeSource.
// Nothing is materialised; memory stays bounded by one line plus one
// encoder chunk at any trace length.
func Ingest(w io.Writer, path string) error {
	src, err := OpenText(path)
	if err != nil {
		return err
	}
	return trace.EncodeSource(w, src)
}

// WriteText exports any trace.Source in the text format Ingest reads,
// making the two a lossless round trip (name, sections, kinds, addresses,
// gaps).
func WriteText(w io.Writer, src trace.Source) error {
	bw := bufio.NewWriter(w)
	name := strings.Map(func(r rune) rune {
		if r == '\n' || r == '\r' {
			return ' '
		}
		return r
	}, src.Name())
	fmt.Fprintf(bw, "# c3d text trace\n# name: %s\n", name)
	emit := func(label string, rr trace.RecordReader) error {
		for {
			rec, ok := rr.Next()
			if !ok {
				break
			}
			kind := byte('w')
			if rec.Kind == trace.Read {
				kind = 'r'
			}
			if _, err := fmt.Fprintf(bw, "%s %c 0x%x %d\n", label, kind, uint64(rec.Addr), rec.Gap); err != nil {
				return err
			}
		}
		return rr.Err()
	}
	if err := emit("init", src.OpenInit()); err != nil {
		return err
	}
	for t := 0; t < src.Threads(); t++ {
		if err := emit(strconv.Itoa(t), src.OpenThread(t)); err != nil {
			return err
		}
	}
	return bw.Flush()
}
