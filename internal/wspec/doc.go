// Package wspec is the workload-spec DSL: a small, versioned JSON format
// that composes the synthetic workload generators of internal/workload —
// and external traces — into new, registry-ready workloads without a code
// change. It is the declarative counterpart of workload.Register, the way
// machine.RegisterDesign and the topology registry open their dispatch
// points.
//
// # Format reference (version 1)
//
// A document is a single JSON object; unknown fields are rejected. Exactly
// one of "base", "tenants" or "trace" selects the mode:
//
//	{
//	  "version": 1,                  // required, must be 1
//	  "name": "my-workload",         // required, the registry name
//
//	  "base": "facesim",             // a registry workload or a simple spec
//	                                 // compiled in the same batch
//	  "seed": 42,                    // overrides the base seed (0 = keep)
//	  "threads": 32,                 // overrides default threads
//	  "accesses_per_thread": 200000, // overrides stream length
//
//	  "overrides": {                 // re-weights the base's mix
//	    "shared_fraction": 0.9, "comm_fraction": 0.05,
//	    "read_fraction": 0.8, "locality_skew": 2.0,
//	    "spatial_run": 4, "mean_gap": 6
//	  },
//	  "arrival": {                   // inter-access gap model
//	    "process": "weibull",        // constant | poisson | gamma | weibull
//	    "mean": 6, "shape": 0.8      // shape for gamma/weibull only
//	  },
//	  "sharing": {                   // shared-region popularity skew
//	    "dist": "zipf",              // zipf | pareto
//	    "theta": 1.1
//	  },
//
//	  "phases": [                    // sequential segments of the stream
//	    {"name": "load", "fraction": 0.25, "shared_fraction": 0.3},
//	    {"name": "steady", "fraction": 0.75, "locality_skew": 3.0}
//	  ],
//
//	  "tenants": [                   // weighted interleaved mix
//	    {"name": "frontend", "base": "nutch", "weight": 3,
//	     "arrival": {"process": "poisson", "mean": 9}},
//	    {"name": "analytics", "base": "tunkrank"}
//	  ],
//
//	  "trace": "path/to/trace.c3dt"  // replay an external trace file as-is
//	}
//
// Semantics:
//
//   - A simple document (base + scalar knobs, no phases/tenants/trace)
//     flattens to a plain generator spec. A spec that mirrors a registry
//     workload therefore produces byte-identical traces, and simple specs
//     can serve as bases for other specs (cycles are rejected).
//   - Phases split each thread's stream into sequential segments sized by
//     the normalised fractions. Each phase re-weights the mix (overrides
//     fields inline next to "fraction"); region sizes are not overridable,
//     so every phase shares the base's address-space layout.
//   - Tenants each resolve their own base, get a disjoint page-aligned
//     slice of the address space, and are interleaved by per-tenant virtual
//     arrival clocks: intervals are drawn from the tenant's arrival process
//     by inverse-transform sampling on a seeded RNG, divided by the
//     tenant's weight, and the earliest clock (ties to the lowest tenant
//     index) emits next. The merged stream is a pure function of
//     (document, seed, options) at any parallelism.
//   - A trace document replays an external v2 chunked file through the
//     streaming FileSource; the file handle stays open for the life of the
//     compiled spec. It takes no other knobs. Text-format traces must be
//     ingested first (Ingest / `c3dtrace -ingest`).
//
// Determinism is the package's contract: compiled sources derive every
// random stream from (spec seed, job seed-offset, phase/tenant salt,
// thread), so identical (spec, seed) produce bit-identical streams however
// the sections are consumed and at any worker parallelism.
//
// # Ingestion
//
// OpenText streams the external text trace format (one record per line:
// `<init|thread> <r|w> <addr> [gap]`, '#' comments, optional `# name:`
// directive) as a trace.Source without materialising it; Ingest pipes that
// through trace.EncodeSource into the v2 chunked format; WriteText exports
// any source back to text, making the round trip lossless.
//
// # Adding a preset
//
// Presets are spec documents embedded in internal/wspec/presets and
// registered at init, which makes them plain named workloads everywhere —
// `c3dsim -workload multitenant-mix` works as well as `-spec
// preset:multitenant-mix`. To add one:
//
//  1. Drop a new .json document into internal/wspec/presets/. Documents in
//     the directory compile as one batch, so a preset may use another
//     simple preset as its base.
//  2. Pick a name that collides with nothing in `c3dtrace -list`.
//  3. `go test ./internal/wspec/...` — the preset tests compile every
//     embedded document and re-check determinism across parallelism.
//
// The default evaluation suite (workload.Names) is pinned to the nine paper
// workloads, so presets never change existing experiment or golden results;
// experiments pick up a preset only when asked (`-workloads`, `-spec`).
package wspec
