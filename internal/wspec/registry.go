package wspec

import (
	"fmt"
	"sync"

	"c3d/internal/workload"
)

// The preset registry remembers which workload-registry entries came from
// spec documents and keeps the original document bytes, so CLIs can list
// presets and ship a preset's exact bytes to a remote daemon.
var (
	presetMu    sync.RWMutex
	presetDocs  = map[string][]byte{}
	presetOrder []string
)

// RegisterDoc parses, validates, compiles and registers a single spec
// document, making it a first-class named workload. It is intended for init
// functions; errors are returned so non-init callers can surface them.
func RegisterDoc(raw []byte) error {
	return RegisterPresets([][]byte{raw})
}

// RegisterPresets compiles a batch of spec documents — which may reference
// each other as bases — and registers every compiled workload plus its
// document bytes. The embedded preset library loads through here.
func RegisterPresets(raws [][]byte) error {
	docs := make([]*Doc, len(raws))
	for i, raw := range raws {
		d, err := Parse(raw)
		if err != nil {
			return err
		}
		docs[i] = d
	}
	compiled, err := CompileAll(docs)
	if err != nil {
		return err
	}
	for _, c := range compiled {
		if _, err := workload.Get(c.Name()); err == nil {
			return fmt.Errorf("wspec: workload %q is already registered", c.Name())
		}
	}
	presetMu.Lock()
	defer presetMu.Unlock()
	for i, c := range compiled {
		workload.Register(c.Spec())
		presetDocs[c.Name()] = append([]byte(nil), raws[i]...)
		presetOrder = append(presetOrder, c.Name())
	}
	return nil
}

// Presets returns the names of the registered spec documents in
// registration order.
func Presets() []string {
	presetMu.RLock()
	defer presetMu.RUnlock()
	out := make([]string, len(presetOrder))
	copy(out, presetOrder)
	return out
}

// PresetDoc returns the original document bytes a preset was registered
// from.
func PresetDoc(name string) ([]byte, bool) {
	presetMu.RLock()
	defer presetMu.RUnlock()
	raw, ok := presetDocs[name]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), raw...), true
}
