package trace

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden trace fixtures")

// goldenTrace is a small fixed trace covering the format's edge cases:
// negative address deltas, addresses beyond 32 bits, large gaps, and an empty
// thread between non-empty ones.
func goldenTrace() *Trace {
	return &Trace{
		Name: "golden",
		Init: []Record{
			{Kind: Write, Addr: 0x1000, Gap: 3},
			{Kind: Write, Addr: 0x2000, Gap: 1},
		},
		Parallel: [][]Record{
			{
				{Kind: Read, Addr: 0x7_0000_0040, Gap: 5},
				{Kind: Write, Addr: 0x40, Gap: 2}, // large negative delta
				{Kind: Read, Addr: 0x7fff_ffff_f000, Gap: 1_000_000},
			},
			nil, // an empty thread must survive both formats
			{
				{Kind: Read, Addr: 0x2000, Gap: 10},
				{Kind: Write, Addr: 0x1fc0, Gap: 0},
			},
		},
	}
}

// TestGoldenFixtures pins the exact bytes of both on-disk formats. A codec
// change that alters the encoding breaks this test, which is the point: the
// fixtures make format changes deliberate (bump the version and regenerate
// with -update rather than silently breaking old files).
func TestGoldenFixtures(t *testing.T) {
	cases := []struct {
		file   string
		encode func(*Trace, *bytes.Buffer) error
	}{
		{"golden-v1.c3dt", func(tr *Trace, buf *bytes.Buffer) error { return tr.Encode(buf) }},
		{"golden-v2.c3dt", func(tr *Trace, buf *bytes.Buffer) error { return EncodeSource(buf, tr.Source()) }},
	}
	for _, tc := range cases {
		t.Run(tc.file, func(t *testing.T) {
			path := filepath.Join("testdata", tc.file)
			var buf bytes.Buffer
			if err := tc.encode(goldenTrace(), &buf); err != nil {
				t.Fatal(err)
			}
			if *update {
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to create the fixture)", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("encoding of the golden trace changed (%d bytes, fixture %d bytes); "+
					"if intentional, bump the format version and regenerate with -update",
					buf.Len(), len(want))
			}
			got, err := Decode(bytes.NewReader(want))
			if err != nil {
				t.Fatalf("decoding fixture: %v", err)
			}
			if !reflect.DeepEqual(got, goldenTrace()) {
				t.Errorf("fixture decodes to\n%+v\nwant\n%+v", got, goldenTrace())
			}
		})
	}
}

// The v2 fixture must also open as a streaming source and yield the same
// records chunk by chunk.
func TestGoldenV2OpensAsSource(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "golden-v2.c3dt"))
	if err != nil {
		t.Fatalf("%v (run with -update to create the fixture)", err)
	}
	fs, err := OpenSource(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Materialize(fs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, goldenTrace()) {
		t.Error("golden v2 fixture mismatch through the streaming source")
	}
	if fs.ThreadLen(1) != 0 {
		t.Errorf("empty thread reported %d records", fs.ThreadLen(1))
	}
}
