package trace

import (
	"fmt"

	"c3d/internal/addr"
)

// RecordReader streams one section of a trace in order. Next returns the next
// record and true, or a zero record and false when the section is exhausted or
// a read error occurred; Err distinguishes the two after Next returns false.
type RecordReader interface {
	Next() (Record, bool)
	Err() error
}

// Source is a streaming view of a trace: the same sections a materialised
// Trace holds, exposed as iterators instead of slices, so consumers (the
// machine runner, the chunked encoder, streaming statistics) never hold more
// than a bounded window of the access streams in memory regardless of how
// long they are.
//
// Opening a section returns a fresh reader positioned at the section's first
// record; a Source therefore supports being replayed any number of times and
// having several sections read concurrently from a single goroutine (the
// runner's page-placement pre-pass interleaves every thread). Lengths are
// known up front — generators know their configured stream length and the
// file format indexes its chunks — which is what lets the runner size its
// warm-up phase without materialising anything.
type Source interface {
	// Name identifies the workload the trace was generated from.
	Name() string
	// Threads returns the number of parallel threads.
	Threads() int
	// InitLen returns the number of records in the serial init section.
	InitLen() int
	// ThreadLen returns the number of records in thread t's parallel stream.
	ThreadLen(t int) int
	// OpenInit returns a fresh reader over the init section.
	OpenInit() RecordReader
	// OpenThread returns a fresh reader over thread t's parallel stream.
	OpenThread(t int) RecordReader
}

// BulkReader is an optional RecordReader extension for readers that can hand
// out a window of consecutive records without per-record calls. NextN returns
// up to n records as a slice the reader will not mutate (valid until the next
// read call) and advances past them; an empty slice means the section is
// exhausted or only per-record reading is possible right now. Hot loops (the
// sampled simulator's fast-forward) type-assert for it; every consumer must
// still handle plain RecordReaders.
type BulkReader interface {
	RecordReader
	NextN(n int) []Record
}

// sliceReader is a RecordReader over an in-memory record slice.
type sliceReader struct {
	recs []Record
	i    int
}

func (r *sliceReader) Next() (Record, bool) {
	if r.i >= len(r.recs) {
		return Record{}, false
	}
	rec := r.recs[r.i]
	r.i++
	return rec, true
}

// NextN returns the next min(n, remaining) records as a sub-slice of the
// backing array, advancing past them.
func (r *sliceReader) NextN(n int) []Record {
	rest := len(r.recs) - r.i
	if n > rest {
		n = rest
	}
	if n <= 0 {
		return nil
	}
	out := r.recs[r.i : r.i+n]
	r.i += n
	return out
}

func (r *sliceReader) Err() error { return nil }

// sliceSource adapts a materialised Trace to the Source interface.
type sliceSource struct {
	t *Trace
}

func (s *sliceSource) Name() string           { return s.t.Name }
func (s *sliceSource) Threads() int           { return len(s.t.Parallel) }
func (s *sliceSource) InitLen() int           { return len(s.t.Init) }
func (s *sliceSource) ThreadLen(t int) int    { return len(s.t.Parallel[t]) }
func (s *sliceSource) OpenInit() RecordReader { return &sliceReader{recs: s.t.Init} }
func (s *sliceSource) OpenThread(t int) RecordReader {
	return &sliceReader{recs: s.t.Parallel[t]}
}

// Source returns a streaming view of the materialised trace. It is the thin
// adapter that lets slice-backed traces flow through the streaming pipeline
// unchanged.
func (t *Trace) Source() Source { return &sliceSource{t: t} }

// maxMaterializePrealloc caps the slice capacity Materialize reserves up
// front from a source's length hint, so a source reporting an absurd length
// cannot trigger a huge allocation before a single record has been read.
const maxMaterializePrealloc = 1 << 20

// Materialize drains a source into an in-memory Trace. It is the inverse
// adapter to (*Trace).Source and the compatibility path for consumers that
// still need random access to the record slices.
func Materialize(src Source) (*Trace, error) {
	t := &Trace{Name: src.Name()}
	// A nil Parallel for zero threads keeps materialised traces comparable
	// with decoded and hand-built ones.
	if n := src.Threads(); n > 0 {
		t.Parallel = make([][]Record, n)
	}
	var err error
	if t.Init, err = collect(src.OpenInit(), src.InitLen()); err != nil {
		return nil, fmt.Errorf("trace %q: materialising init section: %w", t.Name, err)
	}
	for th := range t.Parallel {
		if t.Parallel[th], err = collect(src.OpenThread(th), src.ThreadLen(th)); err != nil {
			return nil, fmt.Errorf("trace %q: materialising thread %d: %w", t.Name, th, err)
		}
	}
	return t, nil
}

// collect drains one reader into a slice. The length hint only sizes the
// initial allocation (bounded); the reader decides the actual length. Empty
// sections come back as nil so materialised traces compare equal to
// hand-built ones.
func collect(rr RecordReader, sizeHint int) ([]Record, error) {
	if sizeHint > maxMaterializePrealloc {
		sizeHint = maxMaterializePrealloc
	}
	var recs []Record
	if sizeHint > 0 {
		recs = make([]Record, 0, sizeHint)
	}
	for {
		rec, ok := rr.Next()
		if !ok {
			break
		}
		recs = append(recs, rec)
	}
	if err := rr.Err(); err != nil {
		return nil, err
	}
	if len(recs) == 0 {
		return nil, nil
	}
	return recs, nil
}

// ComputeStatsSource scans a streaming trace and returns its summary without
// materialising it. Memory is bounded by the page footprint (for the distinct
// page count), never by the stream length.
func ComputeStatsSource(src Source) (Stats, error) {
	s := Stats{Name: src.Name(), Threads: src.Threads()}
	pages := make(map[addr.Page]struct{})
	rr := src.OpenInit()
	for {
		rec, ok := rr.Next()
		if !ok {
			break
		}
		pages[addr.PageOf(rec.Addr)] = struct{}{}
		s.InitAccesses++
	}
	if err := rr.Err(); err != nil {
		return Stats{}, fmt.Errorf("trace %q: scanning init section: %w", s.Name, err)
	}
	for th := 0; th < src.Threads(); th++ {
		rr := src.OpenThread(th)
		for {
			rec, ok := rr.Next()
			if !ok {
				break
			}
			pages[addr.PageOf(rec.Addr)] = struct{}{}
			s.Accesses++
			s.InstructionEstimate += uint64(rec.Gap) + 1
			if rec.Kind == Read {
				s.Reads++
			} else {
				s.Writes++
			}
		}
		if err := rr.Err(); err != nil {
			return Stats{}, fmt.Errorf("trace %q: scanning thread %d: %w", s.Name, th, err)
		}
	}
	s.FootprintPages = len(pages)
	return s, nil
}
