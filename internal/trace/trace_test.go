package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"c3d/internal/addr"
)

func sampleTrace() *Trace {
	return &Trace{
		Name: "sample",
		Init: []Record{
			{Kind: Write, Addr: 0x1000, Gap: 3},
			{Kind: Write, Addr: 0x2000, Gap: 1},
		},
		Parallel: [][]Record{
			{
				{Kind: Read, Addr: 0x1000, Gap: 5},
				{Kind: Write, Addr: 0x1040, Gap: 2},
				{Kind: Read, Addr: 0x2000, Gap: 0},
			},
			{
				{Kind: Read, Addr: 0x2000, Gap: 10},
			},
		},
	}
}

func TestTraceAccessors(t *testing.T) {
	tr := sampleTrace()
	if tr.Threads() != 2 {
		t.Errorf("Threads = %d, want 2", tr.Threads())
	}
	if tr.Accesses() != 4 {
		t.Errorf("Accesses = %d, want 4", tr.Accesses())
	}
	if tr.InitAccesses() != 2 {
		t.Errorf("InitAccesses = %d, want 2", tr.InitAccesses())
	}
}

func TestComputeStats(t *testing.T) {
	s := sampleTrace().ComputeStats()
	if s.Reads != 3 || s.Writes != 1 {
		t.Errorf("Reads/Writes = %d/%d, want 3/1", s.Reads, s.Writes)
	}
	if got := s.ReadFraction(); got != 0.75 {
		t.Errorf("ReadFraction = %.2f, want 0.75", got)
	}
	// Pages touched: 0x1000 and 0x2000 -> 2 distinct pages.
	if s.FootprintPages != 2 {
		t.Errorf("FootprintPages = %d, want 2", s.FootprintPages)
	}
	if s.FootprintBytes() != 2*addr.PageBytes {
		t.Errorf("FootprintBytes = %d, want %d", s.FootprintBytes(), 2*addr.PageBytes)
	}
	// Instructions: (5+1)+(2+1)+(0+1)+(10+1) = 21.
	if s.InstructionEstimate != 21 {
		t.Errorf("InstructionEstimate = %d, want 21", s.InstructionEstimate)
	}
}

func TestReadFractionEmpty(t *testing.T) {
	var s Stats
	if s.ReadFraction() != 0 {
		t.Error("ReadFraction of an empty trace should be 0")
	}
}

func TestValidate(t *testing.T) {
	tr := sampleTrace()
	if err := tr.Validate(1 << 20); err != nil {
		t.Errorf("valid trace rejected: %v", err)
	}
	if err := tr.Validate(0x1500); err == nil {
		t.Error("out-of-range address not detected")
	}
	empty := &Trace{Name: "empty"}
	if err := empty.Validate(0); err == nil {
		t.Error("trace without threads should be invalid")
	}
	bad := sampleTrace()
	bad.Parallel[0][0].Kind = Kind(9)
	if err := bad.Validate(0); err == nil {
		t.Error("invalid kind not detected")
	}
}

func TestTruncate(t *testing.T) {
	tr := sampleTrace()
	cut := tr.Truncate(1)
	if cut.Accesses() != 2 {
		t.Errorf("truncated Accesses = %d, want 2 (one per thread)", cut.Accesses())
	}
	if cut.InitAccesses() != tr.InitAccesses() {
		t.Error("Truncate must keep the init section intact")
	}
	// Truncating beyond the length is a no-op.
	same := tr.Truncate(100)
	if same.Accesses() != tr.Accesses() {
		t.Error("over-long Truncate changed the trace")
	}
}

func TestKindString(t *testing.T) {
	if Read.String() != "R" || Write.String() != "W" {
		t.Error("unexpected Kind names")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, tr)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(bytes.NewReader([]byte("not a trace"))); err == nil {
		t.Error("garbage input should be rejected")
	}
	// Correct magic, bad version.
	if _, err := Decode(bytes.NewReader([]byte{'C', '3', 'D', 'T', 99})); err == nil {
		t.Error("unknown version should be rejected")
	}
	// Truncated stream.
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(bytes.NewReader(buf.Bytes()[:buf.Len()/2])); err == nil {
		t.Error("truncated stream should be rejected")
	}
}

func TestEncodeDecodeLargeRandomTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := &Trace{Name: "random", Parallel: make([][]Record, 4)}
	for i := range tr.Parallel {
		recs := make([]Record, 2000)
		for j := range recs {
			recs[j] = Record{
				Kind: Kind(rng.Intn(2)),
				Addr: addr.Addr(rng.Int63n(1 << 32)),
				Gap:  uint32(rng.Intn(100)),
			}
		}
		tr.Parallel[i] = recs
	}
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Error("large random trace did not survive the round trip")
	}
}

// Property: any structurally valid trace survives an encode/decode round
// trip exactly.
func TestRoundTripProperty(t *testing.T) {
	f := func(name string, addrs []uint32, gaps []uint16) bool {
		n := len(addrs)
		if len(gaps) < n {
			n = len(gaps)
		}
		if n == 0 {
			return true
		}
		recs := make([]Record, n)
		for i := 0; i < n; i++ {
			recs[i] = Record{Kind: Kind(gaps[i] % 2), Addr: addr.Addr(addrs[i]), Gap: uint32(gaps[i])}
		}
		tr := &Trace{Name: name, Parallel: [][]Record{recs}}
		var buf bytes.Buffer
		if err := tr.Encode(&buf); err != nil {
			return false
		}
		got, err := Decode(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(tr, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
