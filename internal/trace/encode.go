package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"c3d/internal/addr"
)

// Binary trace formats
//
// Version 1 (flat, materialised):
//
//	magic   [4]byte  "C3DT"
//	version uint8    (1)
//	name    uvarint length + bytes
//	init    uvarint count + records
//	threads uvarint count
//	  per thread: uvarint count + records
//
// Version 2 (chunked, streaming):
//
//	magic   [4]byte  "C3DT"
//	version uint8    (2)
//	name    uvarint length + bytes
//	threads uvarint count
//	lens    (threads+1) uvarints: total records in the init section, then in
//	        each thread's parallel stream
//	chunks until EOF, each:
//	  section uvarint  (0 = init section, t+1 = parallel thread t)
//	  count   uvarint  (records in the chunk, 1..maxChunkRecords)
//	  byteLen uvarint  (payload length in bytes, used to skip foreign chunks)
//	  payload          (count records)
//
// The per-section totals in the header are what make truncation detectable:
// chunks are EOF-terminated, so without them a file cut exactly at a chunk
// boundary would silently decode as a shorter valid trace. Decoders verify
// that the accumulated chunk counts match the declared totals exactly.
//
// Each record is encoded as:
//
//	kindAndGap uvarint  (gap<<1 | kind)
//	addrDelta  varint   (zig-zag delta from the previous address in the same
//	                     section, block-aligned deltas compress well; the
//	                     delta chain runs across chunk boundaries within a
//	                     section)
//
// Both formats are self-contained and endian-independent; they exist so
// traces can be generated once (cmd/c3dtrace) and replayed by the simulator
// and the benchmarks without regeneration cost. The chunked v2 layout is what
// allows replay at bounded memory: a reader holds one chunk per open section,
// never a whole access stream, and every count and length field is validated
// against the caps below before a single byte is allocated for it — a corrupt
// or truncated file produces a descriptive error, not a multi-GB allocation.

var magic = [4]byte{'C', '3', 'D', 'T'}

const (
	formatVersion1 = 1
	formatVersion2 = 2

	// MaxNameLen bounds the workload-name field of a trace file. Real names
	// are tens of bytes; anything larger is a corrupt or hostile header.
	MaxNameLen = 4096
	// MaxThreads bounds the thread count of a trace file.
	MaxThreads = 1 << 16

	// chunkRecords is the number of records per chunk written by
	// EncodeSource. 4096 records keep a chunk in the tens of kilobytes while
	// amortising the 3-varint chunk header to well under a bit per record.
	chunkRecords = 4096
	// maxChunkRecords bounds the per-chunk record count accepted by readers;
	// writers may use any chunking up to this.
	maxChunkRecords = 1 << 16
	// maxChunkBytes bounds a chunk payload (a record encodes to at most
	// 2*MaxVarintLen64 bytes).
	maxChunkBytes = maxChunkRecords * 2 * binary.MaxVarintLen64
)

// ErrLegacyVersion is returned by OpenSource for a valid version-1 file,
// which has no chunk framing and therefore cannot be streamed per thread;
// callers should fall back to Decode.
var ErrLegacyVersion = errors.New("trace: version 1 file has no chunk framing (decode it instead)")

// Encode serialises the trace to w in the flat version-1 binary format.
// EncodeSource writes the chunked streaming format and should be preferred
// for new files; Encode remains for compatibility and as the fixture-pinned
// legacy layout.
func (t *Trace) Encode(w io.Writer) error {
	if len(t.Name) > MaxNameLen {
		return fmt.Errorf("trace: name length %d exceeds %d", len(t.Name), MaxNameLen)
	}
	if len(t.Parallel) > MaxThreads {
		return fmt.Errorf("trace: %d threads exceed %d", len(t.Parallel), MaxThreads)
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	if err := bw.WriteByte(formatVersion1); err != nil {
		return err
	}
	writeUvarint(bw, uint64(len(t.Name)))
	if _, err := bw.WriteString(t.Name); err != nil {
		return err
	}
	writeRecords(bw, t.Init)
	writeUvarint(bw, uint64(len(t.Parallel)))
	for _, recs := range t.Parallel {
		writeRecords(bw, recs)
	}
	return bw.Flush()
}

func writeRecords(bw *bufio.Writer, recs []Record) {
	writeUvarint(bw, uint64(len(recs)))
	prev := uint64(0)
	for _, r := range recs {
		writeUvarint(bw, uint64(r.Gap)<<1|uint64(r.Kind))
		delta := int64(uint64(r.Addr)) - int64(prev)
		writeVarint(bw, delta)
		prev = uint64(r.Addr)
	}
}

func writeUvarint(bw *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	bw.Write(buf[:n]) //nolint:errcheck // bufio.Writer errors surface at Flush
}

func writeVarint(bw *bufio.Writer, v int64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	bw.Write(buf[:n]) //nolint:errcheck // bufio.Writer errors surface at Flush
}

// EncodeSource serialises a streaming trace to w in the chunked version-2
// format. Memory is bounded by one chunk regardless of stream length, so a
// generator source can be encoded straight to disk without ever holding the
// trace.
func EncodeSource(w io.Writer, src Source) error {
	name := src.Name()
	if len(name) > MaxNameLen {
		return fmt.Errorf("trace: name length %d exceeds %d", len(name), MaxNameLen)
	}
	threads := src.Threads()
	if threads < 0 || threads > MaxThreads {
		return fmt.Errorf("trace: thread count %d outside [0,%d]", threads, MaxThreads)
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	if err := bw.WriteByte(formatVersion2); err != nil {
		return err
	}
	writeUvarint(bw, uint64(len(name)))
	if _, err := bw.WriteString(name); err != nil {
		return err
	}
	writeUvarint(bw, uint64(threads))
	writeUvarint(bw, uint64(src.InitLen()))
	for t := 0; t < threads; t++ {
		writeUvarint(bw, uint64(src.ThreadLen(t)))
	}
	enc := &chunkEncoder{bw: bw}
	written, err := enc.section(0, src.OpenInit())
	if err != nil {
		return fmt.Errorf("trace: encoding init section: %w", err)
	}
	if written != src.InitLen() {
		return fmt.Errorf("trace: init reader yielded %d records, source declared %d", written, src.InitLen())
	}
	for t := 0; t < threads; t++ {
		written, err := enc.section(t+1, src.OpenThread(t))
		if err != nil {
			return fmt.Errorf("trace: encoding thread %d: %w", t, err)
		}
		if written != src.ThreadLen(t) {
			return fmt.Errorf("trace: thread %d reader yielded %d records, source declared %d",
				t, written, src.ThreadLen(t))
		}
	}
	return bw.Flush()
}

// chunkEncoder writes chunked sections, reusing its header and payload
// buffers across chunks and sections so encoding allocates O(1) regardless of
// stream length.
type chunkEncoder struct {
	bw      *bufio.Writer
	hdr     []byte
	payload []byte
}

// section drains one reader into a run of chunks tagged with the section id
// and returns the number of records written.
func (e *chunkEncoder) section(section int, rr RecordReader) (int, error) {
	prev := uint64(0)
	total := 0
	count := 0
	buf := e.payload[:0]
	flush := func() {
		if count == 0 {
			return
		}
		e.hdr = binary.AppendUvarint(e.hdr[:0], uint64(section))
		e.hdr = binary.AppendUvarint(e.hdr, uint64(count))
		e.hdr = binary.AppendUvarint(e.hdr, uint64(len(buf)))
		e.bw.Write(e.hdr) //nolint:errcheck // bufio.Writer errors surface at Flush
		e.bw.Write(buf)   //nolint:errcheck
		buf = buf[:0]
		count = 0
	}
	for {
		rec, ok := rr.Next()
		if !ok {
			break
		}
		buf = binary.AppendUvarint(buf, uint64(rec.Gap)<<1|uint64(rec.Kind))
		buf = binary.AppendVarint(buf, int64(uint64(rec.Addr))-int64(prev))
		prev = uint64(rec.Addr)
		count++
		total++
		if count == chunkRecords {
			flush()
		}
	}
	flush()
	e.payload = buf[:0]
	return total, rr.Err()
}

// decodeChunk appends count records decoded from payload to dst. prev is the
// running address of the section's delta chain; the updated value is
// returned. The payload must contain exactly count records.
func decodeChunk(dst []Record, payload []byte, count int, prev uint64) ([]Record, uint64, error) {
	off := 0
	for i := 0; i < count; i++ {
		kindAndGap, n := binary.Uvarint(payload[off:])
		if n <= 0 {
			return dst, prev, fmt.Errorf("record %d/%d: bad kind/gap varint", i, count)
		}
		off += n
		delta, n := binary.Varint(payload[off:])
		if n <= 0 {
			return dst, prev, fmt.Errorf("record %d/%d: bad address delta varint", i, count)
		}
		off += n
		cur := uint64(int64(prev) + delta)
		dst = append(dst, Record{
			Kind: Kind(kindAndGap & 1),
			Gap:  uint32(kindAndGap >> 1),
			Addr: addr.Addr(cur),
		})
		prev = cur
	}
	if off != len(payload) {
		return dst, prev, fmt.Errorf("chunk has %d trailing bytes after %d records", len(payload)-off, count)
	}
	return dst, prev, nil
}

// ScanHeader carries the trace metadata parsed before the records.
type ScanHeader struct {
	Name    string
	Version int
	Threads int
}

// headerReader is what the shared header parser needs; bufio.Reader and the
// file source's position-tracking reader both satisfy it.
type headerReader interface {
	io.Reader
	io.ByteReader
}

// readHeader parses and validates the common file prefix — magic, version,
// name — shared by every decoder entry point (Scan, Decode, OpenSource), so
// the acceptance rules cannot drift between them.
func readHeader(r headerReader) (name string, version byte, err error) {
	var m [4]byte
	if _, err := io.ReadFull(r, m[:]); err != nil {
		return "", 0, fmt.Errorf("trace: reading magic: %w", err)
	}
	if m != magic {
		return "", 0, fmt.Errorf("trace: bad magic %q", m)
	}
	if version, err = r.ReadByte(); err != nil {
		return "", 0, fmt.Errorf("trace: reading version: %w", err)
	}
	nameLen, err := binary.ReadUvarint(r)
	if err != nil {
		return "", 0, fmt.Errorf("trace: reading name length: %w", err)
	}
	if nameLen > MaxNameLen {
		return "", 0, fmt.Errorf("trace: name length %d exceeds %d", nameLen, MaxNameLen)
	}
	nameBuf := make([]byte, nameLen)
	if _, err := io.ReadFull(r, nameBuf); err != nil {
		return "", 0, fmt.Errorf("trace: reading name: %w", err)
	}
	return string(nameBuf), version, nil
}

// readThreadCount parses and validates a thread-count field.
func readThreadCount(r io.ByteReader) (uint64, error) {
	threads, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, fmt.Errorf("trace: reading thread count: %w", err)
	}
	if threads > MaxThreads {
		return 0, fmt.Errorf("trace: thread count %d exceeds %d", threads, MaxThreads)
	}
	return threads, nil
}

// sectionName renders a section index for error messages (0 is the init
// section, t+1 is thread t).
func sectionName(section int) string {
	if section == 0 {
		return "init section"
	}
	return fmt.Sprintf("thread %d", section-1)
}

// readSectionLens parses the declared per-section record totals of a v2
// header. The values are claims to be verified against the chunks, never
// allocation sizes, so they need no cap of their own.
func readSectionLens(r io.ByteReader, threads uint64) ([]uint64, error) {
	lens := make([]uint64, threads+1)
	for i := range lens {
		v, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, fmt.Errorf("trace: reading %s record total: %w", sectionName(i), err)
		}
		lens[i] = v
	}
	return lens, nil
}

// checkSectionLens compares accumulated chunk counts against the header's
// declared totals; a shortfall means the EOF-terminated chunk stream was cut
// at a chunk boundary.
func checkSectionLens(want, got []uint64) error {
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("trace: %s has %d records but the header declares %d (truncated or corrupt file)",
				sectionName(i), got[i], want[i])
		}
	}
	return nil
}

// Scan incrementally parses a trace in either binary format from r, calling
// fn for every record in file order. thread is -1 for the init section and
// the thread index otherwise. Memory is bounded by one chunk (v2) or one
// record (v1) regardless of trace length, which makes Scan the right tool for
// streaming statistics and for piping a trace through without holding it. An
// error from fn aborts the scan and is returned verbatim.
func Scan(r io.Reader, fn func(thread int, rec Record) error) (ScanHeader, error) {
	br := bufio.NewReader(r)
	var h ScanHeader
	name, version, err := readHeader(br)
	if err != nil {
		return h, err
	}
	h.Name, h.Version = name, int(version)
	switch version {
	case formatVersion1:
		err = scanV1(br, &h, fn)
	case formatVersion2:
		err = scanV2(br, &h, fn)
	default:
		return h, fmt.Errorf("trace: unsupported format version %d", version)
	}
	return h, err
}

// scanV1 walks the flat format: init records, thread count, per-thread
// records. Records are decoded one at a time — the untrusted count fields
// never size an allocation.
func scanV1(br *bufio.Reader, h *ScanHeader, fn func(thread int, rec Record) error) error {
	if err := scanV1Section(br, -1, fn); err != nil {
		return fmt.Errorf("trace: reading init section: %w", err)
	}
	threads, err := readThreadCount(br)
	if err != nil {
		return err
	}
	h.Threads = int(threads)
	for t := 0; t < h.Threads; t++ {
		if err := scanV1Section(br, t, fn); err != nil {
			return fmt.Errorf("trace: reading thread %d: %w", t, err)
		}
	}
	return nil
}

func scanV1Section(br *bufio.Reader, thread int, fn func(thread int, rec Record) error) error {
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return fmt.Errorf("reading record count: %w", err)
	}
	prev := uint64(0)
	for i := uint64(0); i < count; i++ {
		kindAndGap, err := binary.ReadUvarint(br)
		if err != nil {
			return fmt.Errorf("record %d/%d: reading kind/gap: %w", i, count, err)
		}
		delta, err := binary.ReadVarint(br)
		if err != nil {
			return fmt.Errorf("record %d/%d: reading address delta: %w", i, count, err)
		}
		cur := uint64(int64(prev) + delta)
		rec := Record{Kind: Kind(kindAndGap & 1), Gap: uint32(kindAndGap >> 1), Addr: addr.Addr(cur)}
		prev = cur
		if err := fn(thread, rec); err != nil {
			return err
		}
	}
	return nil
}

// walkChunks drives the chunk-header walk shared by the sequential decoder
// and the file-source index scan: it reads and validates every chunk header
// (section range, count/byteLen caps, declared-total accounting) and hands
// each chunk to handle, which must consume or skip exactly byteLen payload
// bytes from the stream. At EOF it verifies every section delivered its
// declared total — the check that catches files cut at a chunk boundary.
// Keeping the walk in one place keeps the two decoders' acceptance rules
// identical by construction.
func walkChunks(r io.ByteReader, threads uint64, want []uint64, handle func(chunk, section, count, byteLen int) error) error {
	got := make([]uint64, threads+1)
	for chunk := 0; ; chunk++ {
		section, err := binary.ReadUvarint(r)
		if err == io.EOF {
			// ReadUvarint returns io.EOF only when no bytes were read, so
			// this is a clean chunk boundary (mid-varint truncation comes
			// back as ErrUnexpectedEOF).
			return checkSectionLens(want, got)
		}
		if err != nil {
			return fmt.Errorf("trace: chunk %d: reading section: %w", chunk, err)
		}
		count, byteLen, err := readChunkHeader(r, section, threads)
		if err != nil {
			return fmt.Errorf("trace: chunk %d: %w", chunk, err)
		}
		if got[section] += uint64(count); got[section] > want[section] {
			return fmt.Errorf("trace: chunk %d: %s exceeds its declared %d records",
				chunk, sectionName(int(section)), want[section])
		}
		if err := handle(chunk, int(section), count, byteLen); err != nil {
			return err
		}
	}
}

// scanV2 walks the chunked format sequentially, decoding every payload.
func scanV2(br *bufio.Reader, h *ScanHeader, fn func(thread int, rec Record) error) error {
	threads, err := readThreadCount(br)
	if err != nil {
		return err
	}
	h.Threads = int(threads)
	want, err := readSectionLens(br, threads)
	if err != nil {
		return err
	}
	prev := make([]uint64, threads+1)
	var payload []byte
	var recs []Record
	return walkChunks(br, threads, want, func(chunk, section, count, byteLen int) error {
		if cap(payload) < byteLen {
			payload = make([]byte, byteLen)
		}
		payload = payload[:byteLen]
		if _, err := io.ReadFull(br, payload); err != nil {
			return fmt.Errorf("trace: chunk %d: reading %d-byte payload: %w", chunk, byteLen, err)
		}
		var err error
		recs, prev[section], err = decodeChunk(recs[:0], payload, count, prev[section])
		if err != nil {
			return fmt.Errorf("trace: chunk %d (section %d): %w", chunk, section, err)
		}
		thread := section - 1 // section 0 is init = thread -1
		for _, rec := range recs {
			if err := fn(thread, rec); err != nil {
				return err
			}
		}
		return nil
	})
}

// readChunkHeader reads and validates the count and byteLen fields of a chunk
// whose section tag has already been read.
func readChunkHeader(br io.ByteReader, section, threads uint64) (count, byteLen int, err error) {
	if section > threads {
		return 0, 0, fmt.Errorf("section %d out of range (%d threads)", section, threads)
	}
	c, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, 0, fmt.Errorf("reading record count: %w", err)
	}
	if c == 0 || c > maxChunkRecords {
		return 0, 0, fmt.Errorf("record count %d outside [1,%d]", c, maxChunkRecords)
	}
	b, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, 0, fmt.Errorf("reading payload length: %w", err)
	}
	// A record is at least two bytes (two one-byte varints), so a valid
	// payload is bounded both ways by the record count.
	if b < 2*c || b > maxChunkBytes {
		return 0, 0, fmt.Errorf("payload length %d implausible for %d records", b, c)
	}
	return int(c), int(b), nil
}

// Decode parses a trace in either binary format into a materialised Trace.
// Counts from the file never size allocations directly: memory grows with the
// bytes actually decoded, so a corrupt or truncated file yields a descriptive
// error instead of an attempted multi-GB allocation.
func Decode(r io.Reader) (*Trace, error) {
	t := &Trace{}
	h, err := Scan(r, func(thread int, rec Record) error {
		if thread < 0 {
			t.Init = append(t.Init, rec)
			return nil
		}
		for thread >= len(t.Parallel) {
			t.Parallel = append(t.Parallel, nil)
		}
		t.Parallel[thread] = append(t.Parallel[thread], rec)
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.Name = h.Name
	for len(t.Parallel) < h.Threads {
		t.Parallel = append(t.Parallel, nil)
	}
	return t, nil
}
