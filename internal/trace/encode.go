package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"c3d/internal/addr"
)

// Binary trace format
//
//	magic   [4]byte  "C3DT"
//	version uint8    (1)
//	name    uvarint length + bytes
//	init    uvarint count + records
//	threads uvarint count
//	  per thread: uvarint count + records
//
// Each record is encoded as:
//
//	kindAndGap uvarint  (gap<<1 | kind)
//	addrDelta  varint   (zig-zag delta from the previous address in the same
//	                     stream, block-aligned deltas compress well)
//
// The format is self-contained and endian-independent; it exists so traces
// can be generated once (cmd/c3dtrace) and replayed by the simulator and the
// benchmarks without regeneration cost.

var magic = [4]byte{'C', '3', 'D', 'T'}

const formatVersion = 1

// Encode serialises the trace to w in the binary format.
func (t *Trace) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	if err := bw.WriteByte(formatVersion); err != nil {
		return err
	}
	writeUvarint(bw, uint64(len(t.Name)))
	if _, err := bw.WriteString(t.Name); err != nil {
		return err
	}
	writeRecords(bw, t.Init)
	writeUvarint(bw, uint64(len(t.Parallel)))
	for _, recs := range t.Parallel {
		writeRecords(bw, recs)
	}
	return bw.Flush()
}

func writeRecords(bw *bufio.Writer, recs []Record) {
	writeUvarint(bw, uint64(len(recs)))
	prev := uint64(0)
	for _, r := range recs {
		writeUvarint(bw, uint64(r.Gap)<<1|uint64(r.Kind))
		delta := int64(uint64(r.Addr)) - int64(prev)
		writeVarint(bw, delta)
		prev = uint64(r.Addr)
	}
}

func writeUvarint(bw *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	bw.Write(buf[:n]) //nolint:errcheck // bufio.Writer errors surface at Flush
}

func writeVarint(bw *bufio.Writer, v int64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	bw.Write(buf[:n]) //nolint:errcheck // bufio.Writer errors surface at Flush
}

// Decode parses a trace in the binary format.
func Decode(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("trace: bad magic %q", m)
	}
	version, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("trace: reading version: %w", err)
	}
	if version != formatVersion {
		return nil, fmt.Errorf("trace: unsupported format version %d", version)
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading name length: %w", err)
	}
	nameBuf := make([]byte, nameLen)
	if _, err := io.ReadFull(br, nameBuf); err != nil {
		return nil, fmt.Errorf("trace: reading name: %w", err)
	}
	t := &Trace{Name: string(nameBuf)}
	if t.Init, err = readRecords(br); err != nil {
		return nil, fmt.Errorf("trace: reading init section: %w", err)
	}
	threads, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading thread count: %w", err)
	}
	t.Parallel = make([][]Record, threads)
	for i := range t.Parallel {
		if t.Parallel[i], err = readRecords(br); err != nil {
			return nil, fmt.Errorf("trace: reading thread %d: %w", i, err)
		}
	}
	return t, nil
}

func readRecords(br *bufio.Reader) ([]Record, error) {
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if count == 0 {
		return nil, nil
	}
	recs := make([]Record, count)
	prev := uint64(0)
	for i := range recs {
		kindAndGap, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		delta, err := binary.ReadVarint(br)
		if err != nil {
			return nil, err
		}
		cur := uint64(int64(prev) + delta)
		recs[i] = Record{
			Kind: Kind(kindAndGap & 1),
			Gap:  uint32(kindAndGap >> 1),
			Addr: addr.Addr(cur),
		}
		prev = cur
	}
	return recs, nil
}
