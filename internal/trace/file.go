package trace

import (
	"bufio"
	"fmt"
	"io"
)

// chunkMeta locates one validated chunk payload in the file.
type chunkMeta struct {
	off     int64
	count   int
	byteLen int
}

// FileSource is a Source backed by a chunked (version 2) trace file. Opening
// it scans the chunk headers once — validating every field and computing the
// per-section record counts — after which each section can be replayed any
// number of times through independent readers that hold at most one chunk.
type FileSource struct {
	ra      io.ReaderAt
	name    string
	threads int
	lens    []int         // records per section (0 = init, t+1 = thread t)
	chunks  [][]chunkMeta // chunk index per section, in file order
}

// posReader tracks the byte offset consumed from a buffered reader, so the
// index scan knows every chunk payload's file offset without a second pass.
type posReader struct {
	br  *bufio.Reader
	pos int64
}

func (p *posReader) ReadByte() (byte, error) {
	b, err := p.br.ReadByte()
	if err == nil {
		p.pos++
	}
	return b, err
}

func (p *posReader) Read(b []byte) (int, error) {
	n, err := p.br.Read(b)
	p.pos += int64(n)
	return n, err
}

func (p *posReader) discard(n int) error {
	d, err := p.br.Discard(n)
	p.pos += int64(d)
	return err
}

// OpenSource opens a chunked (version 2) trace file of the given size as a
// streaming Source. The whole file is validated structurally up front — chunk
// by chunk, against the format caps and the file size — but payloads are only
// decoded when a reader consumes them. A version-1 file returns
// ErrLegacyVersion so callers can fall back to Decode.
func OpenSource(ra io.ReaderAt, size int64) (*FileSource, error) {
	pr := &posReader{br: bufio.NewReaderSize(io.NewSectionReader(ra, 0, size), 64<<10)}
	name, version, err := readHeader(pr)
	if err != nil {
		return nil, err
	}
	switch version {
	case formatVersion1:
		return nil, ErrLegacyVersion
	case formatVersion2:
	default:
		return nil, fmt.Errorf("trace: unsupported format version %d", version)
	}
	threads, err := readThreadCount(pr)
	if err != nil {
		return nil, err
	}
	want, err := readSectionLens(pr, threads)
	if err != nil {
		return nil, err
	}
	f := &FileSource{
		ra:      ra,
		name:    name,
		threads: int(threads),
		lens:    make([]int, threads+1),
		chunks:  make([][]chunkMeta, threads+1),
	}
	// The walk (and with it every acceptance rule) is shared with the
	// sequential decoder; this callback only indexes payload locations
	// instead of decoding them.
	err = walkChunks(pr, threads, want, func(chunk, section, count, byteLen int) error {
		if pr.pos+int64(byteLen) > size {
			return fmt.Errorf("trace: chunk %d: %d-byte payload at offset %d overruns the %d-byte file",
				chunk, byteLen, pr.pos, size)
		}
		f.chunks[section] = append(f.chunks[section], chunkMeta{off: pr.pos, count: count, byteLen: byteLen})
		f.lens[section] += count
		if err := pr.discard(byteLen); err != nil {
			return fmt.Errorf("trace: chunk %d: skipping payload: %w", chunk, err)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return f, nil
}

// Name returns the workload name recorded in the file.
func (f *FileSource) Name() string { return f.name }

// Threads returns the number of parallel threads in the file.
func (f *FileSource) Threads() int { return f.threads }

// InitLen returns the number of init-section records.
func (f *FileSource) InitLen() int { return f.lens[0] }

// ThreadLen returns the number of records in thread t's parallel stream.
func (f *FileSource) ThreadLen(t int) int { return f.lens[t+1] }

// OpenInit returns a fresh reader over the init section.
func (f *FileSource) OpenInit() RecordReader { return &fileReader{f: f, chunks: f.chunks[0]} }

// OpenThread returns a fresh reader over thread t's parallel stream.
func (f *FileSource) OpenThread(t int) RecordReader {
	return &fileReader{f: f, chunks: f.chunks[t+1]}
}

// fileReader streams one section's records, holding one decoded chunk at a
// time. The payload and record buffers are reused across chunks, so a
// reader's resident memory is bounded by the chunk caps however long the
// section is.
type fileReader struct {
	f       *FileSource
	chunks  []chunkMeta
	ci      int // next chunk to load
	buf     []Record
	bi      int
	payload []byte
	prev    uint64
	err     error
}

func (r *fileReader) Next() (Record, bool) {
	for r.bi >= len(r.buf) {
		if r.err != nil || r.ci >= len(r.chunks) {
			return Record{}, false
		}
		c := r.chunks[r.ci]
		r.ci++
		if cap(r.payload) < c.byteLen {
			r.payload = make([]byte, c.byteLen)
		}
		p := r.payload[:c.byteLen]
		if _, err := r.f.ra.ReadAt(p, c.off); err != nil {
			r.err = fmt.Errorf("trace: reading chunk at offset %d: %w", c.off, err)
			return Record{}, false
		}
		r.buf, r.prev, r.err = decodeChunk(r.buf[:0], p, c.count, r.prev)
		if r.err != nil {
			r.err = fmt.Errorf("trace: chunk at offset %d: %w", c.off, r.err)
			return Record{}, false
		}
		r.bi = 0
	}
	rec := r.buf[r.bi]
	r.bi++
	return rec, true
}

func (r *fileReader) Err() error { return r.err }
