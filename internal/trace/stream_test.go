package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"reflect"
	"strings"
	"testing"

	"c3d/internal/addr"
)

// chunkyTrace builds a trace long enough that every thread spans several v2
// chunks, with addresses that exercise negative deltas and >32-bit values.
func chunkyTrace(recordsPerThread int) *Trace {
	tr := &Trace{Name: "chunky", Parallel: make([][]Record, 3)}
	for i := 0; i < 100; i++ {
		tr.Init = append(tr.Init, Record{Kind: Write, Addr: addr.Addr(i * 4096), Gap: uint32(i)})
	}
	for th := range tr.Parallel {
		a := uint64(th+1) << 33 // beyond 32 bits
		for i := 0; i < recordsPerThread; i++ {
			if i%3 == 0 {
				a -= 64
			} else {
				a += 4096
			}
			tr.Parallel[th] = append(tr.Parallel[th], Record{
				Kind: Kind(i % 2),
				Addr: addr.Addr(a),
				Gap:  uint32(i % 97),
			})
		}
	}
	return tr
}

func TestSourceAdapterRoundTrip(t *testing.T) {
	tr := sampleTrace()
	src := tr.Source()
	if src.Name() != tr.Name || src.Threads() != tr.Threads() {
		t.Fatalf("adapter metadata mismatch: %q/%d", src.Name(), src.Threads())
	}
	if src.InitLen() != len(tr.Init) || src.ThreadLen(0) != len(tr.Parallel[0]) {
		t.Fatal("adapter length mismatch")
	}
	got, err := Materialize(src)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Errorf("Source→Materialize round trip mismatch:\n got %+v\nwant %+v", got, tr)
	}
}

func TestSourceReadersAreIndependent(t *testing.T) {
	tr := sampleTrace()
	src := tr.Source()
	a, b := src.OpenThread(0), src.OpenThread(0)
	ra, _ := a.Next()
	// Reading from a must not advance b.
	rb, _ := b.Next()
	if ra != rb {
		t.Errorf("independent readers diverged: %+v vs %+v", ra, rb)
	}
}

func TestEncodeSourceDecodeRoundTrip(t *testing.T) {
	for _, tr := range []*Trace{sampleTrace(), chunkyTrace(3*chunkRecords + 7)} {
		var buf bytes.Buffer
		if err := EncodeSource(&buf, tr.Source()); err != nil {
			t.Fatalf("%s: EncodeSource: %v", tr.Name, err)
		}
		got, err := Decode(&buf)
		if err != nil {
			t.Fatalf("%s: Decode: %v", tr.Name, err)
		}
		if !reflect.DeepEqual(tr, got) {
			t.Errorf("%s: v2 sequential round trip mismatch", tr.Name)
		}
	}
}

func TestOpenSourceRoundTrip(t *testing.T) {
	tr := chunkyTrace(2*chunkRecords + 11)
	var buf bytes.Buffer
	if err := EncodeSource(&buf, tr.Source()); err != nil {
		t.Fatal(err)
	}
	fs, err := OpenSource(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	if fs.Name() != tr.Name || fs.Threads() != tr.Threads() {
		t.Fatalf("file source metadata mismatch: %q/%d", fs.Name(), fs.Threads())
	}
	if fs.InitLen() != len(tr.Init) {
		t.Errorf("InitLen = %d, want %d", fs.InitLen(), len(tr.Init))
	}
	for th := range tr.Parallel {
		if fs.ThreadLen(th) != len(tr.Parallel[th]) {
			t.Errorf("ThreadLen(%d) = %d, want %d", th, fs.ThreadLen(th), len(tr.Parallel[th]))
		}
	}
	got, err := Materialize(fs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Error("v2 file source round trip mismatch")
	}
	// A second replay of the same section must yield the same stream.
	again, err := Materialize(fs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, again) {
		t.Error("file source is not replayable")
	}
}

func TestOpenSourceLegacyVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTrace().Encode(&buf); err != nil {
		t.Fatal(err)
	}
	_, err := OpenSource(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if !errors.Is(err, ErrLegacyVersion) {
		t.Errorf("OpenSource of a v1 file returned %v, want ErrLegacyVersion", err)
	}
}

func TestComputeStatsSourceMatchesMaterialised(t *testing.T) {
	tr := chunkyTrace(5000)
	want := tr.ComputeStats()
	var buf bytes.Buffer
	if err := EncodeSource(&buf, tr.Source()); err != nil {
		t.Fatal(err)
	}
	fs, err := OpenSource(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := ComputeStatsSource(fs)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("streaming stats differ:\n got %+v\nwant %+v", got, want)
	}
}

// --- corrupt and hostile input handling ---

func appendUvarint(b []byte, v uint64) []byte {
	var buf [binary.MaxVarintLen64]byte
	return append(b, buf[:binary.PutUvarint(buf[:], v)]...)
}

// v1Header builds magic+version+name for a hand-crafted v1 stream.
func header(version byte, name string) []byte {
	b := append([]byte{}, magic[:]...)
	b = append(b, version)
	b = appendUvarint(b, uint64(len(name)))
	return append(b, name...)
}

func TestDecodeRejectsHugeNameLength(t *testing.T) {
	b := append([]byte{}, magic[:]...)
	b = append(b, formatVersion1)
	b = appendUvarint(b, 1<<40) // claims a terabyte-scale name
	if _, err := Decode(bytes.NewReader(b)); err == nil || !strings.Contains(err.Error(), "name length") {
		t.Errorf("huge name length not rejected: %v", err)
	}
}

func TestDecodeRejectsHugeThreadCount(t *testing.T) {
	b := header(formatVersion1, "x")
	b = appendUvarint(b, 0)     // empty init
	b = appendUvarint(b, 1<<40) // absurd thread count
	if _, err := Decode(bytes.NewReader(b)); err == nil || !strings.Contains(err.Error(), "thread count") {
		t.Errorf("huge v1 thread count not rejected: %v", err)
	}
	b = header(formatVersion2, "x")
	b = appendUvarint(b, 1<<40)
	if _, err := Decode(bytes.NewReader(b)); err == nil || !strings.Contains(err.Error(), "thread count") {
		t.Errorf("huge v2 thread count not rejected: %v", err)
	}
	if _, err := OpenSource(bytes.NewReader(b), int64(len(b))); err == nil || !strings.Contains(err.Error(), "thread count") {
		t.Errorf("huge v2 thread count not rejected by OpenSource: %v", err)
	}
}

// A v1 section claiming billions of records but containing none must fail
// with a truncation error quickly instead of attempting a huge allocation.
func TestDecodeLyingRecordCount(t *testing.T) {
	b := header(formatVersion1, "liar")
	b = appendUvarint(b, 1<<33) // init "contains" 8G records
	_, err := Decode(bytes.NewReader(b))
	if err == nil || !strings.Contains(err.Error(), "init section") {
		t.Errorf("lying record count not rejected usefully: %v", err)
	}
}

func TestDecodeRejectsBadChunks(t *testing.T) {
	// base builds the v2 header for two threads with the given declared
	// per-section totals (init, thread 0, thread 1).
	base := func(lens ...uint64) []byte {
		b := header(formatVersion2, "x")
		b = appendUvarint(b, 2)
		for _, l := range lens {
			b = appendUvarint(b, l)
		}
		return b
	}
	cases := []struct {
		name string
		body func([]byte) []byte
		lens []uint64
		want string
	}{
		{"section out of range", func(b []byte) []byte {
			return appendUvarint(b, 9) // only sections 0..2 are valid
		}, []uint64{64, 64, 64}, "section 9 out of range"},
		{"zero record count", func(b []byte) []byte {
			b = appendUvarint(b, 1)
			return appendUvarint(b, 0)
		}, []uint64{64, 64, 64}, "record count"},
		{"oversized record count", func(b []byte) []byte {
			b = appendUvarint(b, 1)
			return appendUvarint(b, maxChunkRecords+1)
		}, []uint64{64, 64, 64}, "record count"},
		{"chunk exceeds declared total", func(b []byte) []byte {
			b = appendUvarint(b, 1)
			b = appendUvarint(b, 3) // 3 records where the header declares 2
			b = appendUvarint(b, 6)
			return append(b, 0, 0, 0, 0, 0, 0)
		}, []uint64{0, 2, 0}, "exceeds its declared"},
		{"implausible payload length", func(b []byte) []byte {
			b = appendUvarint(b, 1)
			b = appendUvarint(b, 10) // 10 records need >= 20 bytes
			return appendUvarint(b, 5)
		}, []uint64{64, 64, 64}, "implausible"},
		{"truncated payload", func(b []byte) []byte {
			b = appendUvarint(b, 1)
			b = appendUvarint(b, 1)
			b = appendUvarint(b, 2)
			return append(b, 0x00) // only 1 of 2 payload bytes
		}, []uint64{64, 64, 64}, "payload"},
		{"trailing bytes in chunk", func(b []byte) []byte {
			b = appendUvarint(b, 1)
			b = appendUvarint(b, 1)
			b = appendUvarint(b, 4)
			return append(b, 0x00, 0x00, 0x00, 0x00) // 1 record, 2 junk bytes
		}, []uint64{0, 1, 0}, "trailing"},
	}
	for _, tc := range cases {
		b := tc.body(base(tc.lens...))
		if _, err := Decode(bytes.NewReader(b)); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Decode error %v, want substring %q", tc.name, err, tc.want)
		}
		// OpenSource validates structure at open time; payload-content errors
		// (trailing bytes) surface when the chunk is decoded by a reader.
		fs, err := OpenSource(bytes.NewReader(b), int64(len(b)))
		if err == nil {
			if _, err = Materialize(fs); err == nil {
				t.Errorf("%s: file source accepted corrupt chunk", tc.name)
			}
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: OpenSource error %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestOpenSourceRejectsTruncatedFile(t *testing.T) {
	tr := chunkyTrace(2000)
	var buf bytes.Buffer
	if err := EncodeSource(&buf, tr.Source()); err != nil {
		t.Fatal(err)
	}
	cut := buf.Len() / 3
	if _, err := OpenSource(bytes.NewReader(buf.Bytes()[:cut]), int64(cut)); err == nil {
		t.Error("truncated v2 file accepted by OpenSource")
	}
	if _, err := Decode(bytes.NewReader(buf.Bytes()[:cut])); err == nil {
		t.Error("truncated v2 file accepted by Decode")
	}
}

// Chunks are EOF-terminated, so the dangerous cut is the one that lands
// exactly on a chunk boundary: without the header's per-section totals the
// rest of the file would silently vanish. Both decoders must reject it.
func TestTruncationAtChunkBoundaryDetected(t *testing.T) {
	tr := chunkyTrace(2000)
	var buf bytes.Buffer
	if err := EncodeSource(&buf, tr.Source()); err != nil {
		t.Fatal(err)
	}
	fs, err := OpenSource(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	// Cut immediately after thread 0's first chunk payload — a clean chunk
	// boundary in the middle of the file.
	c := fs.chunks[1][0]
	cut := c.off + int64(c.byteLen)
	data := buf.Bytes()[:cut]
	if _, err := OpenSource(bytes.NewReader(data), int64(len(data))); err == nil ||
		!strings.Contains(err.Error(), "declares") {
		t.Errorf("boundary-truncated file not rejected by OpenSource: %v", err)
	}
	if _, err := Decode(bytes.NewReader(data)); err == nil ||
		!strings.Contains(err.Error(), "declares") {
		t.Errorf("boundary-truncated file not rejected by Decode: %v", err)
	}
}

func TestScanReportsHeaderAndOrder(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := EncodeSource(&buf, tr.Source()); err != nil {
		t.Fatal(err)
	}
	var threadsSeen []int
	h, err := Scan(&buf, func(thread int, rec Record) error {
		threadsSeen = append(threadsSeen, thread)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if h.Name != "sample" || h.Threads != 2 || h.Version != formatVersion2 {
		t.Errorf("header = %+v", h)
	}
	want := []int{-1, -1, 0, 0, 0, 1} // init, init, thread 0 ×3, thread 1
	if !reflect.DeepEqual(threadsSeen, want) {
		t.Errorf("scan order = %v, want %v", threadsSeen, want)
	}
}

// A scan callback error must abort the scan and propagate verbatim.
func TestScanPropagatesCallbackError(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeSource(&buf, sampleTrace().Source()); err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("stop here")
	if _, err := Scan(&buf, func(int, Record) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Errorf("callback error not propagated: %v", err)
	}
}
