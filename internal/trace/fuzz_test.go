package trace

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

// FuzzDecode drives arbitrary bytes through both decoders. Invariants:
//
//  1. Neither Decode nor OpenSource panics or attempts input-proportional-
//     plus allocations on hostile input (the caps turn lies into errors);
//  2. anything Decode accepts survives an encode/decode round trip exactly;
//  3. on chunked (v2) input, the sequential decoder and the indexed file
//     source agree record for record.
func FuzzDecode(f *testing.F) {
	// Seeds stay small (the multi-chunk seed barely crosses one chunk
	// boundary) so the fuzzing engine gets a high exec rate; the large-trace
	// paths are covered by the deterministic tests.
	var v1, v2 bytes.Buffer
	if err := sampleTrace().Encode(&v1); err != nil {
		f.Fatal(err)
	}
	if err := EncodeSource(&v2, chunkyTrace(chunkRecords+5).Source()); err != nil {
		f.Fatal(err)
	}
	f.Add(v1.Bytes())
	f.Add(v2.Bytes())
	f.Add(v1.Bytes()[:v1.Len()/2])
	f.Add(v2.Bytes()[:v2.Len()/3])
	f.Add([]byte("C3DT"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Decode(bytes.NewReader(data))
		if err == nil {
			var buf bytes.Buffer
			if err := tr.Encode(&buf); err != nil {
				t.Fatalf("re-encoding a decoded trace: %v", err)
			}
			tr2, err := Decode(&buf)
			if err != nil {
				t.Fatalf("re-decoding: %v", err)
			}
			if !reflect.DeepEqual(tr, tr2) {
				t.Fatal("decode→encode→decode is not a fixed point")
			}
		}
		fs, ferr := OpenSource(bytes.NewReader(data), int64(len(data)))
		if errors.Is(ferr, ErrLegacyVersion) {
			return // v1: the indexed source does not apply by design
		}
		// On v2 input the decoders must agree exactly on acceptance, in both
		// directions: err == nil implies a valid magic+version prefix, so
		// data[4] is the version byte.
		if err == nil && data[4] == formatVersion2 && ferr != nil {
			t.Fatalf("sequential decoder accepted what OpenSource rejected: %v", ferr)
		}
		if ferr != nil {
			return
		}
		mat, merr := Materialize(fs)
		if (err == nil) != (merr == nil) {
			t.Fatalf("decoder disagreement: Decode err=%v, Materialize err=%v", err, merr)
		}
		if err == nil && !reflect.DeepEqual(tr, mat) {
			t.Fatal("sequential and indexed v2 decoders disagree on content")
		}
	})
}
