// Package trace defines the memory-access trace format that drives the
// simulator, mirroring the paper's Pin/Simics-derived traces (§V): a serial
// initialisation section (used by the FT1 placement policy and to warm
// structures) followed by one access stream per thread for the parallel
// region. Traces can be held in memory, generated synthetically
// (internal/workload), and serialised to a compact binary format.
package trace

import (
	"fmt"

	"c3d/internal/addr"
)

// Kind distinguishes loads from stores.
type Kind uint8

const (
	// Read is a load.
	Read Kind = iota
	// Write is a store.
	Write
)

func (k Kind) String() string {
	switch k {
	case Read:
		return "R"
	case Write:
		return "W"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Record is one memory access in a thread's instruction stream.
type Record struct {
	// Kind is Read or Write.
	Kind Kind
	// Addr is the physical byte address accessed.
	Addr addr.Addr
	// Gap is the number of non-memory instructions executed since the
	// previous memory access of the same thread. The 1-IPC core model
	// charges one cycle per gap instruction.
	Gap uint32
}

// Trace is a complete workload trace.
type Trace struct {
	// Name identifies the workload the trace was generated from.
	Name string
	// Init is the serial initialisation section, executed by thread 0 before
	// the parallel region. It is used for page placement under FT1 and for
	// cache warm-up; it is never part of the measured region.
	Init []Record
	// Parallel holds one access stream per thread for the parallel region.
	Parallel [][]Record
}

// Threads returns the number of parallel threads.
func (t *Trace) Threads() int { return len(t.Parallel) }

// Accesses returns the total number of parallel-region accesses across all
// threads.
func (t *Trace) Accesses() int {
	n := 0
	for _, recs := range t.Parallel {
		n += len(recs)
	}
	return n
}

// InitAccesses returns the number of initialisation-section accesses.
func (t *Trace) InitAccesses() int { return len(t.Init) }

// Stats summarises a trace.
type Stats struct {
	Name           string
	Threads        int
	InitAccesses   int
	Accesses       int
	Reads          uint64
	Writes         uint64
	FootprintPages int
	// InstructionEstimate counts memory accesses plus gap instructions in
	// the parallel region.
	InstructionEstimate uint64
}

// ReadFraction returns reads/(reads+writes) in the parallel region.
func (s Stats) ReadFraction() float64 {
	total := s.Reads + s.Writes
	if total == 0 {
		return 0
	}
	return float64(s.Reads) / float64(total)
}

// FootprintBytes returns the data footprint implied by the touched pages.
func (s Stats) FootprintBytes() uint64 {
	return uint64(s.FootprintPages) * addr.PageBytes
}

// ComputeStats scans the trace and returns its summary.
func (t *Trace) ComputeStats() Stats {
	s, err := ComputeStatsSource(t.Source())
	if err != nil {
		// Slice-backed readers never fail.
		panic(err)
	}
	return s
}

// Validate checks structural invariants: at least one thread, and every
// record's address within the given physical memory size (0 disables the
// bound check). It returns a descriptive error for the first violation.
func (t *Trace) Validate(memBytes uint64) error {
	if len(t.Parallel) == 0 {
		return fmt.Errorf("trace %q: no parallel threads", t.Name)
	}
	check := func(section string, i int, r Record) error {
		if memBytes > 0 && uint64(r.Addr) >= memBytes {
			return fmt.Errorf("trace %q: %s record %d address %v outside physical memory (%d bytes)",
				t.Name, section, i, r.Addr, memBytes)
		}
		if r.Kind != Read && r.Kind != Write {
			return fmt.Errorf("trace %q: %s record %d has invalid kind %d", t.Name, section, i, r.Kind)
		}
		return nil
	}
	for i, r := range t.Init {
		if err := check("init", i, r); err != nil {
			return err
		}
	}
	for th, recs := range t.Parallel {
		for i, r := range recs {
			if err := check(fmt.Sprintf("thread %d", th), i, r); err != nil {
				return err
			}
		}
	}
	return nil
}

// Truncate returns a copy of the trace with each thread's parallel stream cut
// to at most n records (the init section is kept whole). It is used to derive
// quick-running variants of a workload for tests and CI-scale benchmarks.
func (t *Trace) Truncate(n int) *Trace {
	out := &Trace{Name: t.Name, Init: t.Init, Parallel: make([][]Record, len(t.Parallel))}
	for i, recs := range t.Parallel {
		if len(recs) > n {
			out.Parallel[i] = recs[:n]
		} else {
			out.Parallel[i] = recs
		}
	}
	return out
}
