// Package sim provides the timing substrate for the trace-driven simulator:
// the cycle clock, an event queue ordered by time, and bandwidth-regulated
// resources that turn byte counts into occupancy and queueing delay.
//
// Everything in the simulated machine is expressed in core cycles. The C3D
// paper models 3 GHz cores, so nanosecond parameters from Table II are
// converted with CyclesPerNs = 3.
package sim

import "fmt"

// Time is a point in simulated time, measured in core clock cycles.
type Time uint64

// Cycles is a duration in core clock cycles.
type Cycles uint64

// DefaultCyclesPerNs is the clock of the simulated cores (3 GHz per Table II).
const DefaultCyclesPerNs = 3

// NsToCycles converts a latency expressed in nanoseconds into core cycles at
// the default 3 GHz clock.
func NsToCycles(ns float64) Cycles {
	if ns <= 0 {
		return 0
	}
	return Cycles(ns*DefaultCyclesPerNs + 0.5)
}

// CyclesToNs converts a cycle count back into nanoseconds at 3 GHz.
func CyclesToNs(c Cycles) float64 {
	return float64(c) / DefaultCyclesPerNs
}

// Add returns t advanced by d cycles.
func (t Time) Add(d Cycles) Time { return t + Time(d) }

// Sub returns the duration from u to t. It panics if u is after t, because a
// negative duration always indicates a modelling bug.
func (t Time) Sub(u Time) Cycles {
	if u > t {
		panic(fmt.Sprintf("sim: negative duration: %d - %d", t, u))
	}
	return Cycles(t - u)
}

// Max returns the later of two times.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Min returns the earlier of two times.
func Min(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// MaxCycles returns the larger of two durations.
func MaxCycles(a, b Cycles) Cycles {
	if a > b {
		return a
	}
	return b
}

func (t Time) String() string   { return fmt.Sprintf("%d cyc", uint64(t)) }
func (c Cycles) String() string { return fmt.Sprintf("%d cyc", uint64(c)) }
