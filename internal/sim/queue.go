package sim

// EventFunc is the action executed when an event fires. It receives the
// simulated time at which the event fires.
type EventFunc func(now Time)

// eventRecord is an entry in the engine's event slab. seq breaks ties so that
// events scheduled at the same cycle fire in FIFO order, which keeps
// simulations deterministic regardless of heap internals. Records are reused
// through a free-list threaded via next, so a steady-state engine performs no
// per-event allocation: the only allocations are the amortised growth of the
// slab and heap slices, and whatever the caller's EventFunc closures capture.
type eventRecord struct {
	at  Time
	seq uint64
	fn  EventFunc
	// next is the free-list link, stored as slab index + 1 so that the zero
	// value means "end of list" and a zero-valued Engine is ready to use.
	next int32
}

// Engine is a discrete-event simulation engine: a time-ordered queue of
// events plus the current simulated time. The zero value is ready to use.
//
// The queue is a 4-ary min-heap of indices into an event slab. Compared to
// the binary heap in container/heap this removes the interface{} boxing of
// every Push/Pop (one heap allocation per event) and halves the tree depth,
// trading slightly more comparisons per sift-down for far fewer cache-missing
// levels — the standard layout for simulator event queues.
type Engine struct {
	now   Time
	seq   uint64
	fired uint64

	slab []eventRecord
	free int32 // head of the free-list, as slab index + 1; 0 when empty
	heap []int32
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events waiting in the queue.
func (e *Engine) Pending() int { return len(e.heap) }

// alloc takes a record from the free-list, growing the slab only when the
// list is empty.
func (e *Engine) alloc() int32 {
	if e.free != 0 {
		idx := e.free - 1
		e.free = e.slab[idx].next
		return idx
	}
	e.slab = append(e.slab, eventRecord{})
	return int32(len(e.slab) - 1)
}

// release returns a record to the free-list, dropping the closure so the heap
// does not pin captured state alive.
func (e *Engine) release(idx int32) {
	e.slab[idx].fn = nil
	e.slab[idx].next = e.free
	e.free = idx + 1
}

// less orders two slab records by (time, sequence).
func (e *Engine) less(a, b int32) bool {
	ra, rb := &e.slab[a], &e.slab[b]
	if ra.at != rb.at {
		return ra.at < rb.at
	}
	return ra.seq < rb.seq
}

// siftUp restores the heap property after appending at position i.
func (e *Engine) siftUp(i int) {
	h := e.heap
	idx := h[i]
	for i > 0 {
		parent := (i - 1) / 4
		if !e.less(idx, h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = idx
}

// siftDown restores the heap property from position i towards the leaves.
func (e *Engine) siftDown(i int) {
	h := e.heap
	n := len(h)
	idx := h[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if e.less(h[c], h[best]) {
				best = c
			}
		}
		if !e.less(h[best], idx) {
			break
		}
		h[i] = h[best]
		i = best
	}
	h[i] = idx
}

// Schedule enqueues fn to run at time at. Scheduling in the past panics: a
// component asking for time travel is always a bug.
func (e *Engine) Schedule(at Time, fn EventFunc) {
	if at < e.now {
		panic("sim: event scheduled in the past")
	}
	e.seq++
	idx := e.alloc()
	e.slab[idx] = eventRecord{at: at, seq: e.seq, fn: fn}
	e.heap = append(e.heap, idx)
	e.siftUp(len(e.heap) - 1)
}

// ScheduleAfter enqueues fn to run d cycles from now.
func (e *Engine) ScheduleAfter(d Cycles, fn EventFunc) {
	e.Schedule(e.now.Add(d), fn)
}

// Step pops and executes the earliest event. It reports whether an event was
// executed (false means the queue is empty).
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	idx := e.heap[0]
	last := len(e.heap) - 1
	e.heap[0] = e.heap[last]
	e.heap = e.heap[:last]
	if last > 0 {
		e.siftDown(0)
	}
	at, fn := e.slab[idx].at, e.slab[idx].fn
	e.release(idx)
	e.now = at
	e.fired++
	fn(e.now)
	return true
}

// Run executes events until the queue drains and returns the final time.
func (e *Engine) Run() Time {
	for e.Step() {
	}
	return e.now
}

// RunUntil executes events with firing time <= deadline and returns the time
// of the last executed event (or the deadline if the queue drained earlier).
func (e *Engine) RunUntil(deadline Time) Time {
	for len(e.heap) > 0 && e.slab[e.heap[0]].at <= deadline {
		e.Step()
	}
	return e.now
}

// Reset drops every pending event and rewinds the clock and counters to zero
// while keeping the slab and heap capacity for reuse.
func (e *Engine) Reset() {
	for _, idx := range e.heap {
		e.release(idx)
	}
	e.heap = e.heap[:0]
	e.now = 0
	e.seq = 0
	e.fired = 0
}
