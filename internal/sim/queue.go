package sim

import "container/heap"

// EventFunc is the action executed when an event fires. It receives the
// simulated time at which the event fires.
type EventFunc func(now Time)

// event is an entry in the event queue. seq breaks ties so that events
// scheduled at the same cycle fire in FIFO order, which keeps simulations
// deterministic regardless of heap internals.
type event struct {
	at  Time
	seq uint64
	fn  EventFunc
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulation engine: a time-ordered queue of
// events plus the current simulated time. The zero value is ready to use.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
	fired  uint64
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events waiting in the queue.
func (e *Engine) Pending() int { return len(e.events) }

// Schedule enqueues fn to run at time at. Scheduling in the past panics: a
// component asking for time travel is always a bug.
func (e *Engine) Schedule(at Time, fn EventFunc) {
	if at < e.now {
		panic("sim: event scheduled in the past")
	}
	e.seq++
	heap.Push(&e.events, event{at: at, seq: e.seq, fn: fn})
}

// ScheduleAfter enqueues fn to run d cycles from now.
func (e *Engine) ScheduleAfter(d Cycles, fn EventFunc) {
	e.Schedule(e.now.Add(d), fn)
}

// Step pops and executes the earliest event. It reports whether an event was
// executed (false means the queue is empty).
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(event)
	e.now = ev.at
	e.fired++
	ev.fn(e.now)
	return true
}

// Run executes events until the queue drains and returns the final time.
func (e *Engine) Run() Time {
	for e.Step() {
	}
	return e.now
}

// RunUntil executes events with firing time <= deadline and returns the time
// of the last executed event (or the deadline if the queue drained earlier).
func (e *Engine) RunUntil(deadline Time) Time {
	for len(e.events) > 0 && e.events[0].at <= deadline {
		e.Step()
	}
	return e.now
}
