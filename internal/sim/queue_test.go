package sim

import (
	"math/rand"
	"sort"
	"testing"
)

// TestEngineHeapOrderRandom drives the 4-ary heap with a large random
// schedule and checks that events fire in exact (time, FIFO) order.
func TestEngineHeapOrderRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	e := NewEngine()
	const n = 5000
	type stamp struct {
		at  Time
		seq int
	}
	want := make([]stamp, 0, n)
	got := make([]stamp, 0, n)
	for i := 0; i < n; i++ {
		at := Time(rng.Intn(500))
		s := stamp{at: at, seq: i}
		want = append(want, s)
		e.Schedule(at, func(now Time) {
			if now != s.at {
				t.Errorf("event %d fired at %v, scheduled for %v", s.seq, now, s.at)
			}
			got = append(got, s)
		})
	}
	e.Run()
	sort.SliceStable(want, func(i, j int) bool { return want[i].at < want[j].at })
	if len(got) != n {
		t.Fatalf("fired %d events, want %d", len(got), n)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d fired out of order: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestEngineSameCycleFIFOStress schedules many events at a handful of
// identical timestamps, including from inside handlers, and checks strict
// FIFO order within each cycle — the determinism guarantee the sweep layer
// relies on.
func TestEngineSameCycleFIFOStress(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 200; i++ {
		i := i
		at := Time(10 * (i % 4))
		e.Schedule(at, func(Time) { order = append(order, i) })
	}
	// Events scheduled from a handler for the current cycle must still run
	// after everything already queued for that cycle. The nested events are
	// scheduled by the FIRST t=40 handler, so the pre-queued t=40 events
	// (500..509) must all fire before any nested one (1000+).
	e.Schedule(40, func(now Time) {
		for i := 0; i < 50; i++ {
			i := i
			e.Schedule(now, func(Time) { order = append(order, 1000+i) })
		}
	})
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(40, func(Time) { order = append(order, 500+i) })
	}
	e.Run()
	perCycle := map[int][]int{}
	for _, v := range order {
		var cycle int
		if v >= 500 {
			cycle = 4
		} else {
			cycle = v % 4
		}
		perCycle[cycle] = append(perCycle[cycle], v)
	}
	for cycle, vals := range perCycle {
		// Within each cycle, FIFO order means the recorded values ascend:
		// 0..199 by schedule order, then 500..509 (queued before the nested
		// events existed), then 1000..1049 (scheduled mid-cycle).
		if !sort.IntsAreSorted(vals) {
			t.Fatalf("cycle %d events not FIFO: %v", cycle, vals)
		}
	}
	// 10 pre-queued recorders plus 50 nested ones (the nested-scheduler
	// handler itself records nothing).
	if n := len(perCycle[4]); n != 60 {
		t.Fatalf("cycle 40 recorded %d events, want 60", n)
	}
}

// TestEngineZeroValue checks the documented zero-value readiness.
func TestEngineZeroValue(t *testing.T) {
	var e Engine
	fired := false
	e.Schedule(7, func(Time) { fired = true })
	if end := e.Run(); end != 7 || !fired {
		t.Fatalf("zero-value engine: end=%v fired=%v", end, fired)
	}
}

// TestEngineFreeListReuse checks that a drain/refill cycle reuses slab
// records instead of growing the slab.
func TestEngineFreeListReuse(t *testing.T) {
	e := NewEngine()
	for round := 0; round < 10; round++ {
		for i := 0; i < 64; i++ {
			e.ScheduleAfter(Cycles(i), func(Time) {})
		}
		e.Run()
	}
	if got := len(e.slab); got != 64 {
		t.Fatalf("slab grew to %d records, want 64 (free-list not reused)", got)
	}
}

// TestEngineReset checks Reset drops pending events and reuses capacity.
func TestEngineReset(t *testing.T) {
	e := NewEngine()
	fired := 0
	for i := 0; i < 32; i++ {
		e.Schedule(Time(i), func(Time) { fired++ })
	}
	e.Reset()
	if e.Pending() != 0 || e.Now() != 0 || e.Fired() != 0 {
		t.Fatalf("Reset left state: pending=%d now=%v fired=%d", e.Pending(), e.Now(), e.Fired())
	}
	e.Schedule(3, func(Time) { fired++ })
	e.Run()
	if fired != 1 {
		t.Fatalf("fired = %d after reset, want 1 (pending events leaked)", fired)
	}
	if len(e.slab) != 32 {
		t.Fatalf("slab length %d, want 32 (Reset should keep capacity)", len(e.slab))
	}
}

// BenchmarkEngineScheduleStep measures the steady-state hold pattern of a
// discrete-event loop: one Schedule per Step on a queue of fixed depth.
func BenchmarkEngineScheduleStep(b *testing.B) {
	for _, depth := range []int{64, 1024} {
		b.Run(map[int]string{64: "depth64", 1024: "depth1024"}[depth], func(b *testing.B) {
			b.ReportAllocs()
			e := NewEngine()
			fn := func(Time) {}
			for i := 0; i < depth; i++ {
				e.ScheduleAfter(Cycles(i%97), fn)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Step()
				e.ScheduleAfter(Cycles(i%97), fn)
			}
		})
	}
}

// BenchmarkEngineChurn measures full fill/drain cycles.
func BenchmarkEngineChurn(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	fn := func(Time) {}
	for i := 0; i < b.N; i++ {
		for j := 0; j < 256; j++ {
			e.ScheduleAfter(Cycles(j%61), fn)
		}
		e.Run()
	}
}
