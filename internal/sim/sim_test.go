package sim

import (
	"testing"
	"testing/quick"
)

func TestNsToCycles(t *testing.T) {
	cases := []struct {
		ns   float64
		want Cycles
	}{
		{0, 0},
		{-5, 0},
		{1, 3},
		{40, 120},
		{50, 150},
		{20, 60},
		{10, 30},
		{5, 15},
	}
	for _, c := range cases {
		if got := NsToCycles(c.ns); got != c.want {
			t.Errorf("NsToCycles(%v) = %v, want %v", c.ns, got, c.want)
		}
	}
}

func TestCyclesToNsRoundTrip(t *testing.T) {
	for _, ns := range []float64{1, 5, 10, 20, 30, 40, 50, 100} {
		got := CyclesToNs(NsToCycles(ns))
		if diff := got - ns; diff > 0.2 || diff < -0.2 {
			t.Errorf("round trip %vns -> %vns", ns, got)
		}
	}
}

func TestTimeArithmetic(t *testing.T) {
	tm := Time(100)
	if tm.Add(50) != 150 {
		t.Error("Add failed")
	}
	if tm.Sub(40) != 60 {
		t.Error("Sub failed")
	}
	if Max(Time(3), Time(7)) != 7 || Min(Time(3), Time(7)) != 3 {
		t.Error("Max/Min failed")
	}
	if MaxCycles(3, 7) != 7 {
		t.Error("MaxCycles failed")
	}
}

func TestTimeSubPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for negative duration")
		}
	}()
	Time(5).Sub(Time(10))
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(30, func(Time) { order = append(order, 3) })
	e.Schedule(10, func(Time) { order = append(order, 1) })
	e.Schedule(20, func(Time) { order = append(order, 2) })
	end := e.Run()
	if end != 30 {
		t.Errorf("final time = %v, want 30", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("execution order = %v", order)
	}
	if e.Fired() != 3 {
		t.Errorf("Fired = %d, want 3", e.Fired())
	}
}

func TestEngineFIFOAtSameTime(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func(Time) { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("events at equal time not FIFO: %v", order)
		}
	}
}

func TestEngineScheduleFromEvent(t *testing.T) {
	e := NewEngine()
	count := 0
	var chain func(now Time)
	chain = func(now Time) {
		count++
		if count < 5 {
			e.ScheduleAfter(10, chain)
		}
	}
	e.Schedule(0, chain)
	end := e.Run()
	if count != 5 {
		t.Errorf("count = %d, want 5", count)
	}
	if end != 40 {
		t.Errorf("end = %v, want 40", end)
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func(Time) {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Error("expected panic scheduling in the past")
		}
	}()
	e.Schedule(5, func(Time) {})
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	fired := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(Time(i*10), func(Time) { fired++ })
	}
	e.RunUntil(50)
	if fired != 5 {
		t.Errorf("fired = %d, want 5", fired)
	}
	if e.Pending() != 5 {
		t.Errorf("pending = %d, want 5", e.Pending())
	}
}

func TestResourceInfinite(t *testing.T) {
	r := NewResource("inf", 0)
	start, done := r.Acquire(100, 1<<20)
	if start != 100 || done != 100 {
		t.Errorf("infinite resource should not delay: start=%v done=%v", start, done)
	}
	if !r.Infinite() {
		t.Error("Infinite() = false")
	}
}

func TestResourceServiceTime(t *testing.T) {
	r := NewResource("chan", 4) // 4 bytes/cycle
	_, done := r.Acquire(0, 64)
	if done != 16 {
		t.Errorf("done = %v, want 16", done)
	}
	// Second transfer queues behind the first.
	start, done2 := r.Acquire(0, 64)
	if start != 16 || done2 != 32 {
		t.Errorf("queued transfer start=%v done=%v, want 16/32", start, done2)
	}
	st := r.Stats()
	if st.Transfers != 2 || st.BytesServed != 128 {
		t.Errorf("stats = %+v", st)
	}
	if st.WaitCycles != 16 {
		t.Errorf("wait cycles = %d, want 16", st.WaitCycles)
	}
}

func TestResourceIdleGap(t *testing.T) {
	r := NewResource("chan", 4)
	r.Acquire(0, 64) // busy until 16
	start, done := r.Acquire(100, 64)
	if start != 100 || done != 116 {
		t.Errorf("transfer after idle gap start=%v done=%v", start, done)
	}
}

func TestResourcePeekDoesNotReserve(t *testing.T) {
	r := NewResource("chan", 4)
	d1 := r.Peek(0, 64)
	d2 := r.Peek(0, 64)
	if d1 != d2 {
		t.Errorf("Peek reserved state: %v vs %v", d1, d2)
	}
	if d1 != 16 {
		t.Errorf("Peek = %v, want 16", d1)
	}
}

func TestResourceZeroByteTransfer(t *testing.T) {
	r := NewResource("chan", 4)
	_, done := r.Acquire(10, 0)
	if done != 10 {
		t.Errorf("zero-byte transfer should take no time, done=%v", done)
	}
}

func TestResourceNegativePanics(t *testing.T) {
	r := NewResource("chan", 4)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for negative bytes")
		}
	}()
	r.Acquire(0, -1)
}

func TestResourceUtilisationAndReset(t *testing.T) {
	r := NewResource("chan", 1)
	r.Acquire(0, 100)
	if u := r.Utilisation(200); u < 0.49 || u > 0.51 {
		t.Errorf("utilisation = %v, want ~0.5", u)
	}
	if u := r.Utilisation(0); u != 0 {
		t.Errorf("utilisation at time 0 = %v", u)
	}
	r.Reset()
	st := r.Stats()
	if st.Transfers != 0 || st.BytesServed != 0 || st.BusyCycles != 0 {
		t.Errorf("reset did not clear stats: %+v", st)
	}
}

func TestGBsToBytesPerCycle(t *testing.T) {
	// 12.8 GB/s at 3 GHz is 4.266... bytes per cycle.
	got := GBsToBytesPerCycle(12.8)
	if got < 4.2 || got > 4.3 {
		t.Errorf("GBsToBytesPerCycle(12.8) = %v", got)
	}
	// 25.6 GB/s is twice that.
	if g2 := GBsToBytesPerCycle(25.6); g2 < 2*got-0.01 || g2 > 2*got+0.01 {
		t.Errorf("bandwidth scaling not linear: %v vs %v", g2, got)
	}
}

// Property: a resource never starts a transfer before it is requested and
// never completes it before it starts; completions of non-empty transfers are
// monotone when requests arrive in non-decreasing time order (zero-byte
// transfers complete immediately and may therefore "overtake" queued work).
func TestResourceMonotoneProperty(t *testing.T) {
	f := func(sizes []uint16, rate uint8) bool {
		r := NewResource("p", float64(rate%16)+1)
		now := Time(0)
		var lastDone Time
		for i, s := range sizes {
			if i > 50 {
				break
			}
			now = now.Add(Cycles(s % 7))
			bytes := int(s % 2048)
			start, done := r.Acquire(now, bytes)
			if start < now || done < start {
				return false
			}
			if bytes == 0 {
				continue
			}
			if done < lastDone {
				return false
			}
			lastDone = done
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: with out-of-order request times (the machine model's atomic
// transactions reserve response legs in the future), a transfer requested at
// an earlier time is never forced to queue behind one reserved far in the
// future — its queueing delay is bounded by the total service time of the
// work reserved so far.
func TestResourceOutOfOrderBounded(t *testing.T) {
	r := NewResource("p", 8)
	// A transaction reserves its response leg 400 cycles in the future.
	r.Acquire(400, 80)
	// Another transaction's request leg at time 10 must not wait for it.
	start, done := r.Acquire(10, 80)
	if start != 10 {
		t.Errorf("start = %v, want 10 (no queueing behind a future reservation)", start)
	}
	if done != 20 {
		t.Errorf("done = %v, want 20", done)
	}
}
