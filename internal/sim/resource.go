package sim

import "fmt"

// Resource models a bandwidth-regulated component: a DRAM channel, a DRAM
// cache channel, or an inter-socket link. Transfers occupy the resource for
// bytes/bandwidth cycles; a transfer that arrives while the resource is busy
// queues behind the in-flight ones. This is the occupancy model the C3D
// simulator uses to capture memory-controller and QPI congestion (§II-B).
//
// Because the machine model executes whole transactions atomically, a single
// transaction may reserve resources at increasing future timestamps (request
// leg now, response leg a few hundred cycles later), while another core's
// transaction reserves the same resource at an earlier absolute time shortly
// afterwards. The resource therefore keeps a short list of reservations in
// simulated-time order and places each new transfer into the earliest free
// interval at or after its arrival time, which is what an event-driven
// simulator processing the legs in true time order would do. Reservations far
// in the past (beyond any transaction's span) are pruned.
type Resource struct {
	name string
	// bytesPerCycle is the service rate. Zero means infinite bandwidth
	// (transfers never queue), which is how the Fig. 2 idealised
	// configurations are modelled.
	bytesPerCycle float64

	reservations []interval // sorted by start time
	maxNow       Time
	lastPrune    Time

	// Statistics.
	transfers   uint64
	bytesServed uint64
	busyCycles  uint64
	waitCycles  uint64
}

type interval struct{ start, end Time }

// pruneHorizon is how far behind the latest observed request time a
// reservation must end before it can be forgotten. It only needs to exceed
// the largest span of a single transaction (a few hundred cycles); 2K cycles
// leaves a comfortable margin while keeping the reservation list short.
const pruneHorizon = 2048

// pruneInterval is how much the observed request time must advance before the
// reservation list is swept again; pruning on every acquisition would cost
// more than it saves.
const pruneInterval = 512

// NewResource builds a resource with the given service rate in bytes per
// cycle. rate <= 0 models infinite bandwidth.
func NewResource(name string, bytesPerCycle float64) *Resource {
	return &Resource{name: name, bytesPerCycle: bytesPerCycle}
}

// GBsToBytesPerCycle converts a bandwidth in GB/s into bytes per core cycle
// at the default 3 GHz clock. Table II quotes channel and link bandwidths in
// GB/s (e.g. 12.8 GB/s per memory channel, 25.6 GB/s per QPI link).
func GBsToBytesPerCycle(gbPerSec float64) float64 {
	const cyclesPerSec = DefaultCyclesPerNs * 1e9
	return gbPerSec * 1e9 / cyclesPerSec
}

// Name returns the resource's diagnostic name.
func (r *Resource) Name() string { return r.name }

// Infinite reports whether the resource models infinite bandwidth.
func (r *Resource) Infinite() bool { return r.bytesPerCycle <= 0 }

// SetInfinite switches the resource to infinite bandwidth (used by the
// idealised configurations of Fig. 2).
func (r *Resource) SetInfinite() { r.bytesPerCycle = 0 }

func (r *Resource) serviceTime(bytes int) Cycles {
	service := Cycles(float64(bytes)/r.bytesPerCycle + 0.5)
	if service == 0 && bytes > 0 {
		service = 1
	}
	return service
}

// place finds the earliest start >= now at which a transfer of the given
// service duration fits between existing reservations, returning the start
// time and the index at which the new interval should be inserted.
func (r *Resource) place(now Time, service Cycles) (Time, int) {
	start := now
	for i, res := range r.reservations {
		if res.end <= start {
			continue
		}
		if res.start >= start.Add(service) {
			// The transfer fits entirely before this reservation.
			return start, i
		}
		// Overlap: try after this reservation.
		if res.end > start {
			start = res.end
		}
	}
	return start, len(r.reservations)
}

func (r *Resource) prune() {
	if len(r.reservations) == 0 {
		return
	}
	var horizon Time
	if r.maxNow > pruneHorizon {
		horizon = r.maxNow - pruneHorizon
	}
	keep := r.reservations[:0]
	for _, res := range r.reservations {
		if res.end >= horizon {
			keep = append(keep, res)
		}
	}
	r.reservations = keep
}

// Acquire reserves the resource for a transfer of size bytes starting no
// earlier than now. It returns the time at which the transfer starts (after
// any queueing) and the time at which it completes. State and statistics are
// updated; callers use the returned completion time to accumulate latency.
func (r *Resource) Acquire(now Time, bytes int) (start, done Time) {
	if bytes < 0 {
		panic(fmt.Sprintf("sim: negative transfer size %d on %s", bytes, r.name))
	}
	r.transfers++
	r.bytesServed += uint64(bytes)
	if r.Infinite() || bytes == 0 {
		return now, now
	}
	if now > r.maxNow {
		r.maxNow = now
		if r.maxNow > r.lastPrune.Add(pruneInterval) {
			r.prune()
			r.lastPrune = r.maxNow
		}
	}
	service := r.serviceTime(bytes)
	start, idx := r.place(now, service)
	done = start.Add(service)
	r.waitCycles += uint64(start.Sub(now))
	r.busyCycles += uint64(service)
	r.reservations = append(r.reservations, interval{})
	copy(r.reservations[idx+1:], r.reservations[idx:])
	r.reservations[idx] = interval{start: start, end: done}
	return start, done
}

// Peek returns the completion time a transfer of size bytes would observe if
// issued at now, without reserving the resource.
func (r *Resource) Peek(now Time, bytes int) Time {
	if r.Infinite() || bytes == 0 {
		return now
	}
	service := r.serviceTime(bytes)
	start, _ := r.place(now, service)
	return start.Add(service)
}

// ResourceStats describes the accumulated occupancy of a resource.
type ResourceStats struct {
	Name        string
	Transfers   uint64
	BytesServed uint64
	BusyCycles  uint64
	WaitCycles  uint64
}

// Stats returns a snapshot of the resource's counters.
func (r *Resource) Stats() ResourceStats {
	return ResourceStats{
		Name:        r.name,
		Transfers:   r.transfers,
		BytesServed: r.bytesServed,
		BusyCycles:  r.busyCycles,
		WaitCycles:  r.waitCycles,
	}
}

// Utilisation returns busy cycles divided by the elapsed simulated time.
func (r *Resource) Utilisation(elapsed Time) float64 {
	if elapsed == 0 {
		return 0
	}
	return float64(r.busyCycles) / float64(elapsed)
}

// Reset clears occupancy and statistics (used between warm-up and measured
// phases of a run).
func (r *Resource) Reset() {
	r.reservations = r.reservations[:0]
	r.maxNow = 0
	r.lastPrune = 0
	r.transfers = 0
	r.bytesServed = 0
	r.busyCycles = 0
	r.waitCycles = 0
}
