package sample

import (
	"math"
	"strings"
	"testing"
)

func TestParseRoundTrip(t *testing.T) {
	cases := []struct {
		in   string
		want Spec
	}{
		{"stretch=1000,warm=50,win=100", Spec{Stretch: 1000, Warm: 50, Window: 100}},
		{"win=100,stretch=1000", Spec{Stretch: 1000, Window: 100}},
		{" stretch=8 , warm=0 , win=4 , seed=7 ", Spec{Stretch: 8, Warm: 0, Window: 4, Seed: 7}},
		{"", Spec{}},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Errorf("Parse(%q) = %+v, want %+v", c.in, got, c.want)
		}
		// Canonical form must re-parse to the same spec.
		back, err := Parse(got.String())
		if err != nil {
			t.Fatalf("Parse(String(%+v)): %v", got, err)
		}
		if back != got {
			t.Errorf("canonical round trip: %+v -> %q -> %+v", got, got.String(), back)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{
		"stretch=1000",            // missing win
		"win=100",                 // missing stretch
		"stretch=0,win=100",       // stretch < 1
		"stretch=10,win=0",        // win < 1
		"stretch=10,win=5,warm=-1",
		"stretch=10,win=5,seed=-3",
		"stretch=10,win=5,bogus=1",
		"stretch=10,stretch=10,win=5",
		"stretch=ten,win=5",
		"banana",
	} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) accepted", in)
		}
	}
}

func TestPhaseSeededAndBounded(t *testing.T) {
	s := Spec{Stretch: 100, Warm: 10, Window: 20}
	seen := map[int]bool{}
	for seed := int64(0); seed < 64; seed++ {
		s.Seed = seed
		p := s.Phase()
		if p < 0 || p > s.Stretch {
			t.Fatalf("seed %d: phase %d outside [0,%d]", seed, p, s.Stretch)
		}
		if p != s.Phase() {
			t.Fatalf("seed %d: phase not deterministic", seed)
		}
		seen[p] = true
	}
	if len(seen) < 16 {
		t.Errorf("64 seeds produced only %d distinct phases", len(seen))
	}
}

func TestEstimateWindows(t *testing.T) {
	// Identical windows: exact point estimates, zero half-width.
	w := Window{
		Accesses: 100, Instructions: 400, Cycles: 800,
		LLCAccesses: 50, LLCMisses: 10,
		FabricBytes: 640, MemAccesses: 20, RemoteMemAccesses: 5,
	}
	est, err := EstimateWindows([]Window{w, w, w, w})
	if err != nil {
		t.Fatal(err)
	}
	if got := est.CPI.Value; math.Abs(got-2.0) > 1e-12 {
		t.Errorf("CPI = %v, want 2.0", got)
	}
	if got := est.LLCMissRate.Value; math.Abs(got-0.2) > 1e-12 {
		t.Errorf("LLC miss rate = %v, want 0.2", got)
	}
	if got := est.FabricBytesPerAccess.Value; math.Abs(got-6.4) > 1e-12 {
		t.Errorf("bytes/access = %v, want 6.4", got)
	}
	if got := est.RemoteMemFraction.Value; math.Abs(got-0.25) > 1e-12 {
		t.Errorf("remote fraction = %v, want 0.25", got)
	}
	if est.CPI.HalfWidth != 0 || est.LLCMissRate.HalfWidth != 0 {
		t.Errorf("identical windows should have zero half-width, got %+v", est)
	}

	// Varying windows: the interval must contain the ratio-of-sums centre
	// and the mean of per-window ratios.
	w2 := w
	w2.Cycles = 1200
	est, err = EstimateWindows([]Window{w, w2, w, w2})
	if err != nil {
		t.Fatal(err)
	}
	if est.CPI.HalfWidth <= 0 {
		t.Errorf("varying windows should have positive half-width")
	}
	if !est.CPI.Contains(est.CPI.Value) || !est.CPI.Contains(2.5) {
		t.Errorf("CPI interval %+v should contain both the centre and the mean of ratios", est.CPI)
	}
}

func TestEstimateWindowsTooFew(t *testing.T) {
	_, err := EstimateWindows([]Window{{Accesses: 1, Instructions: 1, Cycles: 1}})
	if err == nil || !strings.Contains(err.Error(), "stream too short") {
		t.Fatalf("want too-few-windows error, got %v", err)
	}
}

func TestRatioOf(t *testing.T) {
	a := Estimate{Value: 10, HalfWidth: 1}   // 10% rel
	b := Estimate{Value: 5, HalfWidth: 0.5}  // 10% rel
	r := RatioOf(a, b)
	if math.Abs(r.Value-2.0) > 1e-12 {
		t.Errorf("ratio = %v, want 2", r.Value)
	}
	wantRel := math.Sqrt(0.02) // sqrt(0.1^2 + 0.1^2)
	if math.Abs(r.RelError()-wantRel) > 1e-12 {
		t.Errorf("rel error = %v, want %v", r.RelError(), wantRel)
	}
	if z := RatioOf(a, Estimate{}); z != (Estimate{}) {
		t.Errorf("ratio over zero should be the zero estimate, got %+v", z)
	}
}

func TestFormat(t *testing.T) {
	e := Estimate{Value: 1.23456, HalfWidth: 0.04321}
	if got := e.Format(3); got != "1.235±0.043" {
		t.Errorf("Format(3) = %q", got)
	}
}
