// Package sample implements SMARTS-style systematic sampling for the
// simulator: the schedule arithmetic that decides which stream positions are
// simulated in detail, and the estimator that turns per-window counter deltas
// into point estimates with 95% confidence half-widths.
//
// # Schedule format
//
// A sampling spec is a comma-separated key=value string:
//
//	stretch=<records>,warm=<records>,win=<records>[,seed=<n>]
//
// All lengths are per-thread record counts. One sampling unit is
//
//	stretch fast-forwarded records   (functional warming only)
//	  warm  detailed records         (timing warm-up, not measured)
//	  win   detailed records         (measured window)
//
// repeated until every thread's stream is exhausted. A seeded initial
// fast-forward of SplitMix64(seed) mod (stretch+1) records offsets the first
// unit so the schedule does not always sample the same stream positions; the
// offset is a pure function of the spec, which is what keeps sampled results
// byte-identical across runs and across sweep parallelism.
//
// During a fast-forward stretch the machine performs functional warming only:
// page placement, the OS page classifier, TLBs and cache tags are updated
// through a lightweight touch path, but no coherence engine, fabric or DRAM
// cache events fire and no counters advance. Each warm phase then re-warms
// the timing-visible state (MRU positions, store queues, fabric occupancy)
// in full detail before its window is measured.
//
// # Estimator
//
// Every measured window contributes one delta of each counter. For each
// derived metric (cycles/instruction, LLC miss rate, fabric bytes/access,
// remote-memory fraction) the point estimate is the ratio of sums across all
// windows — consistent with the extrapolated run totals — and the half-width
// is the CLT interval of the per-window ratios (Student-t critical value at
// n-1 degrees of freedom times the standard error), widened by the distance
// between ratio-of-sums and mean-of-ratios so the reported interval always
// covers its own aggregation bias. Speedups and other cross-run ratios
// propagate relative errors in quadrature (sample.RatioOf).
//
// At least MinWindows (2) complete-or-partial measured windows are required;
// shorter streams are an error, pointing at a spec whose unit is too long.
package sample
