package sample

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Spec describes one systematic sampling schedule. All lengths are per-thread
// record counts; a sampling unit is Stretch fast-forwarded records followed by
// Warm detailed warm-up records followed by Window measured records.
type Spec struct {
	// Stretch is the number of records per thread that are fast-forwarded
	// (functional warming only) between detailed phases.
	Stretch int
	// Warm is the number of records per thread executed in full detail before
	// each measured window, to re-warm timing-visible state (store queues,
	// fabric occupancy, MRU positions) after a stretch.
	Warm int
	// Window is the number of records per thread in each measured window.
	Window int
	// Seed drives the initial phase offset so the first window does not
	// always land at the same stream position.
	Seed int64
}

// Enabled reports whether the spec requests sampled execution. The zero Spec
// is the disabled state (full detailed simulation).
func (s Spec) Enabled() bool { return s != Spec{} }

// Validate checks the spec's shape. The zero (disabled) spec is valid.
func (s Spec) Validate() error {
	if !s.Enabled() {
		return nil
	}
	if s.Stretch < 1 {
		return fmt.Errorf("sample: stretch must be >= 1, got %d", s.Stretch)
	}
	if s.Warm < 0 {
		return fmt.Errorf("sample: warm must be >= 0, got %d", s.Warm)
	}
	if s.Window < 1 {
		return fmt.Errorf("sample: win must be >= 1, got %d", s.Window)
	}
	if s.Seed < 0 {
		return fmt.Errorf("sample: seed must be >= 0, got %d", s.Seed)
	}
	return nil
}

// UnitLen returns the per-thread length of one full sampling unit.
func (s Spec) UnitLen() int { return s.Stretch + s.Warm + s.Window }

// Phase returns the seeded initial fast-forward length in [0, Stretch]: the
// systematic schedule's random starting offset. It is a pure function of the
// spec, so a fixed (config, seed, spec) triple always yields the same
// schedule no matter where or how often it runs.
func (s Spec) Phase() int {
	if s.Stretch <= 0 {
		return 0
	}
	return int(splitmix64(uint64(s.Seed)) % uint64(s.Stretch+1))
}

// splitmix64 is the SplitMix64 mixer: a tiny, dependency-free way to turn a
// user seed into a well-distributed phase offset.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// String renders the canonical spec form, parseable by Parse. The canonical
// form omits a zero seed, so Parse(s.String()) == s for every valid spec.
func (s Spec) String() string {
	if !s.Enabled() {
		return ""
	}
	out := fmt.Sprintf("stretch=%d,warm=%d,win=%d", s.Stretch, s.Warm, s.Window)
	if s.Seed != 0 {
		out += fmt.Sprintf(",seed=%d", s.Seed)
	}
	return out
}

// Parse parses a sampling spec of the form
//
//	stretch=<records>,warm=<records>,win=<records>[,seed=<n>]
//
// Keys may appear in any order; stretch and win are required; warm defaults
// to 0 and seed to 0. The empty string parses to the disabled (zero) spec.
func Parse(text string) (Spec, error) {
	text = strings.TrimSpace(text)
	if text == "" {
		return Spec{}, nil
	}
	var s Spec
	seen := map[string]bool{}
	for _, part := range strings.Split(text, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return Spec{}, fmt.Errorf("sample: %q is not key=value (want stretch=N,warm=N,win=N[,seed=S])", part)
		}
		key = strings.TrimSpace(key)
		n, err := strconv.ParseInt(strings.TrimSpace(val), 10, 64)
		if err != nil {
			return Spec{}, fmt.Errorf("sample: bad value in %q: %v", part, err)
		}
		if seen[key] {
			return Spec{}, fmt.Errorf("sample: duplicate key %q", key)
		}
		seen[key] = true
		switch key {
		case "stretch":
			s.Stretch = int(n)
		case "warm":
			s.Warm = int(n)
		case "win":
			s.Window = int(n)
		case "seed":
			s.Seed = n
		default:
			return Spec{}, fmt.Errorf("sample: unknown key %q (want stretch, warm, win, seed)", key)
		}
	}
	if !seen["stretch"] || !seen["win"] {
		return Spec{}, fmt.Errorf("sample: spec %q must set both stretch and win", text)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// Window is one measured window's counter deltas, the raw material of the
// estimator. All fields are totals over the window across every thread.
type Window struct {
	// Accesses is the number of memory accesses (loads+stores) executed in
	// the window.
	Accesses uint64
	// Instructions is the number of instructions retired in the window
	// (memory accesses plus gap instructions).
	Instructions uint64
	// Cycles is the makespan of the window: the advance of the furthest-ahead
	// core clock across the window.
	Cycles uint64
	// LLCAccesses and LLCMisses are the LLC activity in the window.
	LLCAccesses uint64
	LLCMisses   uint64
	// FabricBytes is the inter-socket fabric traffic in the window.
	FabricBytes uint64
	// MemAccesses and RemoteMemAccesses are the memory-controller activity in
	// the window.
	MemAccesses       uint64
	RemoteMemAccesses uint64
}

// Estimate is one sampled metric: a point estimate and the half-width of its
// 95% confidence interval. The interval is [Value-HalfWidth, Value+HalfWidth].
type Estimate struct {
	Value     float64
	HalfWidth float64
}

// RelError returns HalfWidth/Value, or 0 when the value is 0. It is the
// relative-error form used when propagating uncertainty through ratios of two
// estimates (speedup bars).
func (e Estimate) RelError() float64 {
	if e.Value == 0 {
		return 0
	}
	return math.Abs(e.HalfWidth / e.Value)
}

// Contains reports whether v lies inside the estimate's interval.
func (e Estimate) Contains(v float64) bool {
	return v >= e.Value-e.HalfWidth && v <= e.Value+e.HalfWidth
}

// Format renders "value±half" with the given precision, the cell form used in
// sampled experiment tables.
func (e Estimate) Format(prec int) string {
	return fmt.Sprintf("%.*f±%.*f", prec, e.Value, prec, e.HalfWidth)
}

// Estimates bundles the derived-metric estimates of one sampled run.
type Estimates struct {
	// CPI is cycles per instruction — the time metric. Speedups between two
	// sampled runs derive their bars from the two CPI estimates.
	CPI Estimate
	// LLCMissRate is LLC misses per LLC access.
	LLCMissRate Estimate
	// FabricBytesPerAccess is off-socket fabric bytes per memory access.
	FabricBytesPerAccess Estimate
	// RemoteMemFraction is the fraction of memory accesses served by a remote
	// socket's memory.
	RemoteMemFraction Estimate
}

// MinWindows is the minimum number of measured windows the estimator
// accepts: with fewer than two windows no variance — and therefore no
// confidence interval — exists.
const MinWindows = 2

// Estimate computes the derived-metric estimates from the measured windows.
// It returns an error when fewer than MinWindows windows were measured (the
// stream is too short for the spec).
func EstimateWindows(ws []Window) (Estimates, error) {
	if len(ws) < MinWindows {
		return Estimates{}, fmt.Errorf("sample: %d measured windows, need at least %d (stream too short for the sampling spec)", len(ws), MinWindows)
	}
	est := Estimates{
		CPI:                  ratioEstimate(ws, func(w Window) (float64, float64) { return float64(w.Cycles), float64(w.Instructions) }),
		LLCMissRate:          ratioEstimate(ws, func(w Window) (float64, float64) { return float64(w.LLCMisses), float64(w.LLCAccesses) }),
		FabricBytesPerAccess: ratioEstimate(ws, func(w Window) (float64, float64) { return float64(w.FabricBytes), float64(w.Accesses) }),
		RemoteMemFraction:    ratioEstimate(ws, func(w Window) (float64, float64) { return float64(w.RemoteMemAccesses), float64(w.MemAccesses) }),
	}
	return est, nil
}

// ratioEstimate builds one metric's estimate. The point estimate is the ratio
// of sums over all windows (each window weighted by its size, which keeps the
// estimate consistent with the extrapolated totals); the half-width is the
// CLT interval of the per-window ratios — Student-t critical value at n-1
// degrees of freedom times the standard error — widened by the distance
// between the ratio-of-sums and the mean-of-ratios so the reported interval
// always covers its own centre's aggregation bias.
func ratioEstimate(ws []Window, field func(Window) (num, den float64)) Estimate {
	var sumNum, sumDen float64
	ratios := make([]float64, 0, len(ws))
	for _, w := range ws {
		num, den := field(w)
		sumNum += num
		sumDen += den
		if den > 0 {
			ratios = append(ratios, num/den)
		}
	}
	if sumDen == 0 {
		return Estimate{}
	}
	point := sumNum / sumDen
	if len(ratios) < MinWindows {
		// Too few usable windows for a variance; report the point with an
		// interval spanning the full observed value (maximally honest).
		return Estimate{Value: point, HalfWidth: math.Abs(point)}
	}
	mean := 0.0
	for _, r := range ratios {
		mean += r
	}
	mean /= float64(len(ratios))
	ss := 0.0
	for _, r := range ratios {
		d := r - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(len(ratios)-1))
	hw := tCritical95(len(ratios)-1)*sd/math.Sqrt(float64(len(ratios))) + math.Abs(point-mean)
	return Estimate{Value: point, HalfWidth: hw}
}

// tCritical95 returns the two-sided 95% Student-t critical value for the
// given degrees of freedom. Values above the table fall back to the normal
// approximation.
func tCritical95(df int) float64 {
	table := []float64{
		// df 1..30
		12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
		2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
		2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
	}
	switch {
	case df <= 0:
		return math.Inf(1)
	case df <= len(table):
		return table[df-1]
	case df <= 40:
		return 2.021
	case df <= 60:
		return 2.000
	case df <= 120:
		return 1.980
	default:
		return 1.960
	}
}

// RatioOf propagates uncertainty through a ratio a/b of two independent
// estimates (a baseline-over-design speedup, a normalised traffic figure):
// the relative errors add in quadrature, the standard first-order
// approximation for a quotient.
func RatioOf(a, b Estimate) Estimate {
	if b.Value == 0 {
		return Estimate{}
	}
	v := a.Value / b.Value
	rel := math.Sqrt(a.RelError()*a.RelError() + b.RelError()*b.RelError())
	return Estimate{Value: v, HalfWidth: math.Abs(v) * rel}
}
