// Package stats provides the counters, aggregates and formatting helpers used
// to report the C3D experiments: memory-access breakdowns, average memory
// access time (AMAT), traffic accounting, normalised comparisons and geometric
// means, plus a small fixed-width table writer for experiment output.
package stats

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Counter is a simple monotonically increasing event counter.
type Counter struct {
	n uint64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.n++ }

// Add adds v to the counter.
func (c *Counter) Add(v uint64) { c.n += v }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.n = 0 }

// LatencyAccumulator accumulates (count, total latency) pairs so that average
// latencies such as AMAT can be computed at the end of a run.
type LatencyAccumulator struct {
	count uint64
	total uint64
	max   uint64
}

// Observe records one completed access with the given latency in cycles.
func (l *LatencyAccumulator) Observe(latency uint64) {
	l.count++
	l.total += latency
	if latency > l.max {
		l.max = latency
	}
}

// Count returns the number of observations.
func (l *LatencyAccumulator) Count() uint64 { return l.count }

// Total returns the sum of all observed latencies.
func (l *LatencyAccumulator) Total() uint64 { return l.total }

// Max returns the largest observed latency.
func (l *LatencyAccumulator) Max() uint64 { return l.max }

// Mean returns the average latency, or zero if nothing was observed.
func (l *LatencyAccumulator) Mean() float64 {
	if l.count == 0 {
		return 0
	}
	return float64(l.total) / float64(l.count)
}

// Reset clears the accumulator.
func (l *LatencyAccumulator) Reset() { *l = LatencyAccumulator{} }

// Histogram is a fixed-bucket latency histogram. Buckets are upper bounds in
// cycles; observations above the last bound land in an overflow bucket.
type Histogram struct {
	bounds []uint64
	counts []uint64
	total  uint64
}

// NewHistogram builds a histogram with the given ascending bucket upper
// bounds.
func NewHistogram(bounds ...uint64) *Histogram {
	if !sort.SliceIsSorted(bounds, func(i, j int) bool { return bounds[i] < bounds[j] }) {
		panic("stats: histogram bounds must be ascending")
	}
	return &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

// Observe adds a value to the histogram.
func (h *Histogram) Observe(v uint64) {
	h.total++
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			return
		}
	}
	h.counts[len(h.bounds)]++
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.total }

// Bucket returns the count in bucket i (the last index is the overflow
// bucket).
func (h *Histogram) Bucket(i int) uint64 { return h.counts[i] }

// NumBuckets returns the number of buckets including overflow.
func (h *Histogram) NumBuckets() int { return len(h.counts) }

// Quantile returns an approximate quantile (0..1) using bucket upper bounds.
func (h *Histogram) Quantile(q float64) uint64 {
	if h.total == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(h.total)))
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return math.MaxUint64
		}
	}
	return math.MaxUint64
}

// Ratio returns a/b, or 0 when b is zero.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// Speedup returns baseline/design expressed as a speedup factor (>1 means the
// design is faster), or 0 if the design time is zero.
func Speedup(baselineCycles, designCycles uint64) float64 {
	if designCycles == 0 {
		return 0
	}
	return float64(baselineCycles) / float64(designCycles)
}

// Normalized returns value/reference, or 0 when the reference is zero. It is
// the helper behind every "normalised to baseline" figure in the paper.
func Normalized(value, reference float64) float64 {
	if reference == 0 {
		return 0
	}
	return value / reference
}

// Geomean returns the geometric mean of xs, ignoring non-positive entries
// (which cannot participate in a geometric mean). It returns 0 for an empty
// or all-non-positive slice.
func Geomean(xs []float64) float64 {
	sum := 0.0
	n := 0
	for _, x := range xs {
		if x <= 0 {
			continue
		}
		sum += math.Log(x)
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Percent formats a fraction (0..1) as a percentage string like "74.6%".
func Percent(frac float64) string {
	return fmt.Sprintf("%.1f%%", frac*100)
}

// Table is a minimal fixed-width text table used by the experiment harness to
// print rows that mirror the paper's tables and figures.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Header returns the column headers.
func (t *Table) Header() []string { return t.header }

// Rows returns the data rows.
func (t *Table) Rows() [][]string { return t.rows }

// MarshalJSON encodes the table as {"header": [...], "rows": [[...], ...]},
// the machine-readable form consumed by cmd/c3dexp -json and the CI tooling.
// Output is deterministic: callers build rows in deterministic order.
func (t *Table) MarshalJSON() ([]byte, error) {
	type tableJSON struct {
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
	}
	rows := t.rows
	if rows == nil {
		rows = [][]string{}
	}
	return json.Marshal(tableJSON{Header: t.header, Rows: rows})
}

// UnmarshalJSON decodes the {"header": [...], "rows": [[...], ...]} form
// MarshalJSON produces. Every cell is a string, so a decode/encode round
// trip reproduces the original bytes exactly — the property that lets a
// remote campaign client reassemble experiment results byte-identically to
// a local run.
func (t *Table) UnmarshalJSON(data []byte) error {
	var doc struct {
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return err
	}
	t.header = doc.Header
	if doc.Rows == nil {
		doc.Rows = [][]string{}
	}
	t.rows = doc.Rows
	return nil
}

// WriteCSV emits the table as CSV (header first).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.header); err != nil {
		return err
	}
	for _, r := range t.rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
