package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("value = %d, want 5", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Errorf("reset failed")
	}
}

func TestLatencyAccumulator(t *testing.T) {
	var l LatencyAccumulator
	if l.Mean() != 0 {
		t.Error("empty accumulator mean should be 0")
	}
	l.Observe(10)
	l.Observe(20)
	l.Observe(60)
	if l.Count() != 3 || l.Total() != 90 || l.Max() != 60 {
		t.Errorf("count=%d total=%d max=%d", l.Count(), l.Total(), l.Max())
	}
	if l.Mean() != 30 {
		t.Errorf("mean = %v, want 30", l.Mean())
	}
	l.Reset()
	if l.Count() != 0 {
		t.Error("reset failed")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10, 100, 1000)
	for _, v := range []uint64{5, 10, 11, 99, 100, 101, 5000} {
		h.Observe(v)
	}
	if h.Count() != 7 {
		t.Errorf("count = %d", h.Count())
	}
	if h.Bucket(0) != 2 || h.Bucket(1) != 3 || h.Bucket(2) != 1 || h.Bucket(3) != 1 {
		t.Errorf("buckets = %d %d %d %d", h.Bucket(0), h.Bucket(1), h.Bucket(2), h.Bucket(3))
	}
	if h.NumBuckets() != 4 {
		t.Errorf("NumBuckets = %d", h.NumBuckets())
	}
	if q := h.Quantile(0.5); q != 100 {
		t.Errorf("median = %d, want 100", q)
	}
	if q := h.Quantile(1.0); q != math.MaxUint64 {
		t.Errorf("p100 = %d, want overflow", q)
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	h := NewHistogram(10)
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
}

func TestHistogramUnsortedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for unsorted bounds")
		}
	}()
	NewHistogram(100, 10)
}

func TestRatioSpeedupNormalized(t *testing.T) {
	if Ratio(10, 0) != 0 || Ratio(10, 2) != 5 {
		t.Error("Ratio")
	}
	if Speedup(100, 0) != 0 || Speedup(150, 100) != 1.5 {
		t.Error("Speedup")
	}
	if Normalized(50, 100) != 0.5 || Normalized(5, 0) != 0 {
		t.Error("Normalized")
	}
}

func TestGeomean(t *testing.T) {
	if g := Geomean([]float64{1, 4, 16}); math.Abs(g-4) > 1e-9 {
		t.Errorf("geomean = %v, want 4", g)
	}
	if g := Geomean(nil); g != 0 {
		t.Errorf("geomean(nil) = %v", g)
	}
	if g := Geomean([]float64{-1, 0}); g != 0 {
		t.Errorf("geomean of non-positive = %v", g)
	}
	// Non-positive entries are skipped.
	if g := Geomean([]float64{0, 2, 8}); math.Abs(g-4) > 1e-9 {
		t.Errorf("geomean skipping zero = %v, want 4", g)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil)")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("Mean")
	}
}

func TestPercent(t *testing.T) {
	if Percent(0.746) != "74.6%" {
		t.Errorf("Percent = %q", Percent(0.746))
	}
}

func TestTable(t *testing.T) {
	tab := NewTable("workload", "speedup")
	tab.AddRow("streamcluster", "1.51")
	tab.AddRow("nutch") // short row padded
	s := tab.String()
	if !strings.Contains(s, "workload") || !strings.Contains(s, "streamcluster") {
		t.Errorf("table output missing content:\n%s", s)
	}
	if tab.NumRows() != 2 {
		t.Errorf("NumRows = %d", tab.NumRows())
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 {
		t.Errorf("table should have 4 lines, got %d:\n%s", len(lines), s)
	}
}

// Property: geomean of a slice lies between its min and max.
func TestGeomeanBoundsProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		var xs []float64
		for _, r := range raw {
			xs = append(xs, float64(r%1000)+1)
		}
		if len(xs) == 0 {
			return true
		}
		g := Geomean(xs)
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: histogram buckets always sum to the observation count.
func TestHistogramSumProperty(t *testing.T) {
	f := func(values []uint32) bool {
		h := NewHistogram(16, 256, 4096, 65536)
		for _, v := range values {
			h.Observe(uint64(v))
		}
		var sum uint64
		for i := 0; i < h.NumBuckets(); i++ {
			sum += h.Bucket(i)
		}
		return sum == h.Count() && h.Count() == uint64(len(values))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
