package stats

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestTableJSONRoundTripBytes proves decode(encode(t)) re-encodes to the
// exact original bytes — the stability the remote campaign path relies on
// when it reassembles per-job result documents client-side.
func TestTableJSONRoundTripBytes(t *testing.T) {
	tb := NewTable("Workload", "Speedup", "Bytes/Access")
	tb.AddRow("streamcluster", "1.27", "0.43")
	tb.AddRow("canneal", `quoted "cell"`, "")

	first, err := json.Marshal(tb)
	if err != nil {
		t.Fatal(err)
	}
	var back Table
	if err := json.Unmarshal(first, &back); err != nil {
		t.Fatal(err)
	}
	second, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Errorf("round trip not byte-stable:\nfirst:  %s\nsecond: %s", first, second)
	}
	if back.NumRows() != 2 || back.Rows()[1][1] != `quoted "cell"` {
		t.Errorf("decoded table lost content: %+v", back)
	}
}

// TestEmptyTableRoundTrip covers the nil-rows normalisation path.
func TestEmptyTableRoundTrip(t *testing.T) {
	tb := NewTable("A")
	first, err := json.Marshal(tb)
	if err != nil {
		t.Fatal(err)
	}
	var back Table
	if err := json.Unmarshal(first, &back); err != nil {
		t.Fatal(err)
	}
	second, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Errorf("empty-table round trip not byte-stable: %s vs %s", first, second)
	}
}
