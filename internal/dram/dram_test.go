package dram

import (
	"testing"

	"c3d/internal/addr"
	"c3d/internal/sim"
)

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig("mem0")
	if cfg.AccessLatency != 150 {
		t.Errorf("50ns at 3GHz should be 150 cycles, got %v", cfg.AccessLatency)
	}
	if cfg.Channels != 2 || cfg.ChannelBandwidthGBs != 12.8 {
		t.Errorf("unexpected defaults %+v", cfg)
	}
}

func TestNewPanicsWithoutChannels(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for zero channels")
		}
	}()
	New(Config{Name: "bad", Channels: 0})
}

func TestReadLatency(t *testing.T) {
	c := New(DefaultConfig("mem"))
	done := c.Read(0, addr.Block(0))
	// 64 bytes at ~4.27 B/cycle is ~15 cycles, plus 150 cycles access.
	if done < 160 || done > 170 {
		t.Errorf("read completion = %v, want ~165", done)
	}
	if c.Stats().Reads != 1 || c.Stats().ReadBytes != 64 {
		t.Errorf("stats %+v", c.Stats())
	}
}

func TestWriteCounts(t *testing.T) {
	c := New(DefaultConfig("mem"))
	c.Write(0, addr.Block(1))
	c.Write(0, addr.Block(3))
	st := c.Stats()
	if st.Writes != 2 || st.WriteBytes != 128 || st.Reads != 0 {
		t.Errorf("stats %+v", st)
	}
	if st.Accesses() != 2 {
		t.Errorf("accesses %d", st.Accesses())
	}
}

func TestChannelInterleaving(t *testing.T) {
	c := New(DefaultConfig("mem"))
	// Even blocks to channel 0, odd blocks to channel 1: two accesses to
	// different channels at the same time should not queue behind each
	// other.
	d0 := c.Read(0, addr.Block(0))
	d1 := c.Read(0, addr.Block(1))
	if d0 != d1 {
		t.Errorf("accesses to distinct channels should complete together: %v vs %v", d0, d1)
	}
	// A third access to block 2 (channel 0) must queue behind block 0.
	d2 := c.Read(0, addr.Block(2))
	if d2 <= d0 {
		t.Errorf("same-channel access should queue: %v <= %v", d2, d0)
	}
}

func TestCongestionBuildsUp(t *testing.T) {
	c := New(DefaultConfig("mem"))
	var last sim.Time
	for i := 0; i < 100; i++ {
		done := c.Read(0, addr.Block(i*2)) // all on channel 0
		if done < last {
			t.Fatalf("completion times must be monotone")
		}
		last = done
	}
	// 100 back-to-back 64B transfers at 12.8GB/s must take much longer
	// than a single access.
	single := New(DefaultConfig("m2")).Read(0, addr.Block(0))
	if last < single*5 {
		t.Errorf("no congestion visible: last=%v single=%v", last, single)
	}
}

func TestInfiniteBandwidth(t *testing.T) {
	c := New(DefaultConfig("mem"))
	c.SetInfiniteBandwidth()
	var first sim.Time
	for i := 0; i < 100; i++ {
		done := c.Read(0, addr.Block(i*2))
		if i == 0 {
			first = done
		}
		if done != first {
			t.Fatalf("infinite bandwidth should remove queueing: %v vs %v", done, first)
		}
	}
	if first != sim.Time(150) {
		t.Errorf("latency should be pure access latency, got %v", first)
	}
}

func TestResetStats(t *testing.T) {
	c := New(DefaultConfig("mem"))
	c.Read(0, addr.Block(0))
	c.Write(0, addr.Block(0))
	c.ResetStats()
	if c.Stats() != (Stats{}) {
		t.Errorf("stats not cleared: %+v", c.Stats())
	}
	// Channel occupancy must be cleared too: a read at time 0 should see
	// no queueing from before the reset.
	done := c.Read(0, addr.Block(0))
	if done > 170 {
		t.Errorf("channel occupancy survived reset: %v", done)
	}
}

func TestChannelStats(t *testing.T) {
	c := New(DefaultConfig("mem"))
	c.Read(0, addr.Block(0))
	c.Read(0, addr.Block(1))
	cs := c.ChannelStats()
	if len(cs) != 2 {
		t.Fatalf("expected 2 channels, got %d", len(cs))
	}
	if cs[0].Transfers != 1 || cs[1].Transfers != 1 {
		t.Errorf("per-channel transfers %+v", cs)
	}
}
