// Package dram models a socket's main-memory subsystem: a memory controller
// fronting a small number of DDR channels, each with a fixed access latency
// and a bandwidth-regulated data bus. Parameters default to Table II of the
// C3D paper (50 ns access latency, two DDR3-1600 channels of 12.8 GB/s per
// socket).
//
// The model is deliberately simple — the paper's own simulator models memory
// as latency plus channel occupancy, and Fig. 2 shows DRAM bandwidth is not
// the NUMA bottleneck — but it is sufficient to expose controller congestion
// when a design funnels a disproportionate amount of traffic at one socket.
package dram

import (
	"fmt"

	"c3d/internal/addr"
	"c3d/internal/sim"
)

// Config describes one socket's memory subsystem.
type Config struct {
	// Name identifies the controller in stats output, e.g. "mem0".
	Name string
	// AccessLatency is the row access latency (queueing excluded).
	AccessLatency sim.Cycles
	// Channels is the number of independent DDR channels.
	Channels int
	// ChannelBandwidthGBs is the peak bandwidth of each channel in GB/s.
	// Zero or negative means infinite bandwidth (the Fig. 2 idealisation).
	ChannelBandwidthGBs float64
}

// DefaultConfig returns the Table II memory parameters: 50 ns, 2 channels of
// 12.8 GB/s.
func DefaultConfig(name string) Config {
	return Config{
		Name:                name,
		AccessLatency:       sim.NsToCycles(50),
		Channels:            2,
		ChannelBandwidthGBs: 12.8,
	}
}

// Stats holds the per-controller access counters.
type Stats struct {
	Reads      uint64
	Writes     uint64
	ReadBytes  uint64
	WriteBytes uint64
}

// Accesses returns reads+writes.
func (s Stats) Accesses() uint64 { return s.Reads + s.Writes }

// Controller is one socket's memory controller.
type Controller struct {
	cfg      Config
	channels []*sim.Resource
	stats    Stats
}

// New builds a controller from cfg. It panics on a non-positive channel
// count.
func New(cfg Config) *Controller {
	if cfg.Channels <= 0 {
		panic(fmt.Sprintf("dram %s: need at least one channel", cfg.Name))
	}
	c := &Controller{cfg: cfg}
	for i := 0; i < cfg.Channels; i++ {
		c.channels = append(c.channels, sim.NewResource(
			fmt.Sprintf("%s.ch%d", cfg.Name, i),
			sim.GBsToBytesPerCycle(cfg.ChannelBandwidthGBs)))
	}
	return c
}

// Config returns the controller's configuration.
func (c *Controller) Config() Config { return c.cfg }

// Stats returns a snapshot of the counters.
func (c *Controller) Stats() Stats { return c.stats }

// ResetStats clears the counters and channel occupancy.
func (c *Controller) ResetStats() {
	c.stats = Stats{}
	for _, ch := range c.channels {
		ch.Reset()
	}
}

// Reset returns the controller to its just-constructed state. The memory
// model is stateless apart from counters and channel occupancy, so this is
// ResetStats under the name the machine-reuse path expects; bandwidth
// idealisations (SetInfiniteBandwidth) survive, matching construction-time
// configuration.
func (c *Controller) Reset() { c.ResetStats() }

// SetInfiniteBandwidth switches every channel to infinite bandwidth. Used by
// the Fig. 2 "inf_mem_bw" configuration.
func (c *Controller) SetInfiniteBandwidth() {
	for _, ch := range c.channels {
		ch.SetInfinite()
	}
}

// channelOf maps a block to a channel by low-order block-interleaving, the
// standard commodity-controller policy.
func (c *Controller) channelOf(b addr.Block) *sim.Resource {
	return c.channels[int(uint64(b)%uint64(len(c.channels)))]
}

// Read performs a block read beginning at now and returns the completion
// time: queueing delay on the block's channel, then the access latency, then
// the 64 B transfer.
func (c *Controller) Read(now sim.Time, b addr.Block) sim.Time {
	c.stats.Reads++
	c.stats.ReadBytes += addr.BlockBytes
	ch := c.channelOf(b)
	_, done := ch.Acquire(now, addr.BlockBytes)
	return done.Add(c.cfg.AccessLatency)
}

// Write performs a block write beginning at now and returns the completion
// time. Writes occupy channel bandwidth like reads; callers decide whether
// the returned latency is on the critical path (it normally is not, because
// stores drain from the store queue).
func (c *Controller) Write(now sim.Time, b addr.Block) sim.Time {
	c.stats.Writes++
	c.stats.WriteBytes += addr.BlockBytes
	ch := c.channelOf(b)
	_, done := ch.Acquire(now, addr.BlockBytes)
	return done.Add(c.cfg.AccessLatency)
}

// ChannelStats returns the occupancy statistics of every channel.
func (c *Controller) ChannelStats() []sim.ResourceStats {
	out := make([]sim.ResourceStats, len(c.channels))
	for i, ch := range c.channels {
		out[i] = ch.Stats()
	}
	return out
}
