// Command smoketest/sample is the CI sample-smoke verifier: it drives a
// built c3dexp binary through the fig6-quick sweep twice — once in full
// detailed simulation, once under SMARTS sampling — and asserts the three
// properties the sampled simulator sells:
//
//   - accuracy: every full-run table value lies inside the sampled run's
//     reported 95% confidence interval (the v±h cells);
//   - speed: the sampled sweep is at least -min-speedup times faster than
//     the full sweep, wall-clock, same binary, same machine, back to back;
//   - determinism: the sampled JSON is byte-identical at -parallel 1 and
//     -parallel 8 and across a repeat run.
//
// The Makefile builds the binary once and hands its path in, so `go run`
// compile time never pollutes the timing:
//
//	go build -o /tmp/c3dexp-sample ./cmd/c3dexp
//	go run ./internal/smoketest/sample -bin /tmp/c3dexp-sample
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"time"
)

// experiment mirrors just the slice of the c3dexp -json document this gate
// reads: the rendered table. Everything else passes through unchecked.
type experiment struct {
	ID    string `json:"id"`
	Table struct {
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
	} `json:"table"`
}

func main() {
	bin := flag.String("bin", "", "path to a built c3dexp binary (required)")
	spec := flag.String("spec", "stretch=2800,warm=30,win=30", "sampling spec handed to -sample")
	minSpeedup := flag.Float64("min-speedup", 2, "minimum full/sampled wall-clock ratio; the acceptance target is 5x but CI boxes are noisy, so the gate only demands a clear win")
	flag.Parse()
	if *bin == "" {
		fail("-bin is required")
	}

	// Full detailed run: the ground truth and the timing baseline. Both
	// timed runs use the binary's default parallelism so the comparison is
	// like for like.
	fullJSON, fullDur := run(*bin, "-exp", "fig6", "-quick", "-json")

	// Sampled run at default parallelism: the timed contender and the
	// reference bytes for the determinism comparisons below.
	sampJSON, sampDur := run(*bin, "-exp", "fig6", "-quick", "-json", "-sample", *spec)

	// Determinism: -parallel 1, -parallel 8 and a repeat run must all
	// reproduce the reference bytes exactly.
	for _, extra := range [][]string{
		{"-parallel", "1"},
		{"-parallel", "8"},
		nil, // repeat run, default parallelism
	} {
		args := append([]string{"-exp", "fig6", "-quick", "-json", "-sample", *spec}, extra...)
		out, _ := run(*bin, args...)
		if !bytes.Equal(out, sampJSON) {
			fail("sampled output differs from reference for args %v", args)
		}
	}
	fmt.Println("sampled fig6-quick bytes identical across -parallel 1/8 and a repeat run")

	// Accuracy: every full value inside the sampled bars.
	full := parseFig6(fullJSON, "full")
	samp := parseFig6(sampJSON, "sampled")
	if len(full.Table.Header) != len(samp.Table.Header) || len(full.Table.Rows) != len(samp.Table.Rows) {
		fail("full and sampled tables have different shapes")
	}
	cells, worst, worstCell := 0, 0.0, ""
	for i, fr := range full.Table.Rows {
		sr := samp.Table.Rows[i]
		if fr[0] != sr[0] {
			fail("row %d: full workload %q vs sampled %q", i, fr[0], sr[0])
		}
		for j := 1; j < len(fr); j++ {
			v, err := strconv.ParseFloat(fr[j], 64)
			if err != nil {
				fail("full %s/%s: unparseable value %q: %v", fr[0], full.Table.Header[j], fr[j], err)
			}
			mid, half := parseInterval(sr[j], sr[0], samp.Table.Header[j])
			dev := abs(v - mid)
			if dev > half {
				fail("%s/%s: full value %.4f outside sampled %.4f±%.4f (deviation %.2fx halfwidth)",
					fr[0], full.Table.Header[j], v, mid, half, dev/half)
			}
			if r := dev / half; r > worst {
				worst, worstCell = r, fr[0]+"/"+full.Table.Header[j]
			}
			cells++
		}
	}
	fmt.Printf("all %d fig6 cells: full value inside the sampled 95%% interval (worst deviation %.2fx halfwidth at %s)\n",
		cells, worst, worstCell)

	// Speed: the sampled sweep must beat the full sweep decisively.
	ratio := fullDur.Seconds() / sampDur.Seconds()
	if ratio < *minSpeedup {
		fail("sampled sweep only %.2fx faster than full (%v vs %v), want >= %.1fx",
			ratio, sampDur.Round(time.Millisecond), fullDur.Round(time.Millisecond), *minSpeedup)
	}
	fmt.Printf("sampled sweep %.2fx faster than full (%v vs %v)\n",
		ratio, sampDur.Round(time.Millisecond), fullDur.Round(time.Millisecond))
}

// run executes the binary with the given arguments and returns its stdout
// and wall-clock duration; any failure ends the gate.
func run(bin string, args ...string) ([]byte, time.Duration) {
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	start := time.Now()
	out, err := cmd.Output()
	dur := time.Since(start)
	if err != nil {
		fail("%s %s: %v", bin, strings.Join(args, " "), err)
	}
	return out, dur
}

// parseFig6 decodes a c3dexp -json document and returns its fig6 experiment.
func parseFig6(data []byte, label string) experiment {
	var exps []experiment
	if err := json.Unmarshal(data, &exps); err != nil {
		fail("parsing %s JSON: %v", label, err)
	}
	for _, e := range exps {
		if e.ID == "fig6" {
			return e
		}
	}
	fail("%s JSON has no fig6 experiment", label)
	panic("unreachable")
}

// parseInterval splits a sampled "v±h" cell into its midpoint and halfwidth.
func parseInterval(cell, row, col string) (mid, half float64) {
	v, h, ok := strings.Cut(cell, "±")
	if !ok {
		fail("sampled %s/%s: cell %q carries no ± interval", row, col, cell)
	}
	mid, err := strconv.ParseFloat(v, 64)
	if err != nil {
		fail("sampled %s/%s: unparseable midpoint in %q: %v", row, col, cell, err)
	}
	half, err = strconv.ParseFloat(h, 64)
	if err != nil {
		fail("sampled %s/%s: unparseable halfwidth in %q: %v", row, col, cell, err)
	}
	if half <= 0 {
		fail("sampled %s/%s: non-positive halfwidth in %q", row, col, cell)
	}
	return mid, half
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sample-smoke: FAIL: "+format+"\n", args...)
	os.Exit(1)
}
