// Command smoketest/fleet is the CI fleet-smoke verifier: after the Makefile
// has driven `c3dexp -remote` sweeps through a coordinator, this program
// inspects the coordinator's /healthz through the public api.Client and
// asserts the distributed run actually happened the way the gate claims —
// every worker healthy, and the repeat sweep served from the
// content-addressed result cache rather than re-run (hit counters up,
// entries bounded).
//
//	go run ./internal/smoketest/fleet -url http://127.0.0.1:18330 -min-hits 1
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"c3d/pkg/c3d/api"
)

func main() {
	url := flag.String("url", "http://127.0.0.1:8080", "base URL of the coordinator under test")
	workers := flag.Int("workers", 2, "expected healthy worker count")
	minHits := flag.Int64("min-hits", 1, "minimum cache hits the run must have produced")
	timeout := flag.Duration("timeout", 30*time.Second, "overall deadline")
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	h, err := api.NewClient(*url).Health(ctx)
	if err != nil {
		fail("coordinator health: %v", err)
	}
	if h.Status != "ok" {
		fail("coordinator status %q", h.Status)
	}
	if len(h.Workers) != *workers {
		fail("fleet has %d workers, want %d: %+v", len(h.Workers), *workers, h.Workers)
	}
	var assigned int64
	for _, w := range h.Workers {
		if !w.Healthy {
			fail("worker %s unhealthy", w.URL)
		}
		if w.Inflight != 0 {
			fail("worker %s still has %d jobs in flight", w.URL, w.Inflight)
		}
		assigned += w.Assigned
	}
	if assigned == 0 {
		fail("no jobs were ever dispatched to the fleet")
	}
	switch {
	case h.Cache == nil:
		fail("health document has no cache counters")
	case h.Cache.Hits < *minHits:
		fail("cache hits = %d, want >= %d: the repeat sweep was re-run, not served from cache", h.Cache.Hits, *minHits)
	case h.Cache.Entries == 0:
		fail("cache is empty after a completed sweep")
	}
	fmt.Fprintf(os.Stderr,
		"fleet-smoke: %d workers healthy, %d jobs dispatched, cache %d entries / %d hits / %d misses\n",
		len(h.Workers), assigned, h.Cache.Entries, h.Cache.Hits, h.Cache.Misses)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "fleet-smoke: "+format+"\n", args...)
	os.Exit(1)
}
