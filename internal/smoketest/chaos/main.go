// Command smoketest/chaos is the CI chaos-smoke driver: it submits a fixed
// simulation campaign through the public api.Client and prints each result
// document to stdout, one per line. The Makefile runs it twice — once with
// -direct against a fault-free standalone worker (the byte-identity
// baseline), once against a coordinator whose fleet runs under seeded fault
// plans and which is kill -9'd and restarted mid-campaign — and cmp's the
// two outputs. Faults and crashes may cost retries; they must never change
// a byte.
//
//	go run ./internal/smoketest/chaos -direct -url http://127.0.0.1:18343 > baseline.txt
//	go run ./internal/smoketest/chaos -url http://127.0.0.1:18340 > chaos.txt
//	cmp baseline.txt chaos.txt
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"c3d/pkg/c3d/api"
)

func main() {
	url := flag.String("url", "http://127.0.0.1:8080", "base URL of the daemon under test")
	direct := flag.Bool("direct", false, "target is a standalone worker: run the jobs one at a time instead of as a campaign (fault-free baseline mode)")
	jobs := flag.Int("jobs", 10, "jobs in the campaign (distinct seeds, so distinct cache keys)")
	accesses := flag.Int("accesses", 20000, "trace accesses per job; sized so the campaign outlives the coordinator kill")
	timeout := flag.Duration("timeout", 5*time.Minute, "overall deadline")
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	// Generous retries behind a capped backoff: the point of this gate is
	// that the coordinator is kill -9'd and restarted mid-campaign, so every
	// request must ride out a multi-second window of connection refusals.
	cl := api.NewClient(*url,
		api.WithRetries(12),
		api.WithBackoff(100*time.Millisecond),
		api.WithBackoffCap(2*time.Second),
	)

	specs := make([]api.JobSpec, *jobs)
	for i := range specs {
		specs[i] = api.JobSpec{
			Kind:     api.KindSimulate,
			Workload: "streamcluster",
			Params:   api.Params{Threads: 4, Scale: 512, Accesses: *accesses, Seed: int64(i + 1)},
		}
	}

	if *direct {
		for i, spec := range specs {
			resp, err := cl.Submit(ctx, spec)
			if err != nil {
				fail("baseline submit %d: %v", i, err)
			}
			if _, err := cl.Wait(ctx, resp.ID); err != nil {
				fail("baseline wait %d: %v", i, err)
			}
			raw, err := cl.Result(ctx, resp.ID)
			if err != nil {
				fail("baseline result %d: %v", i, err)
			}
			// The campaign wire carries JSON value bytes; a result endpoint's
			// trailing newline is presentation, not content.
			writeLine(bytes.TrimSpace(raw))
		}
		fmt.Fprintf(os.Stderr, "chaos-smoke: baseline: %d jobs run directly\n", len(specs))
		return
	}

	resp, err := cl.SubmitCampaign(ctx, api.CampaignSpec{Jobs: specs})
	if err != nil {
		fail("submit campaign: %v", err)
	}
	st, err := cl.WaitCampaign(ctx, resp.ID)
	if err != nil {
		fail("wait campaign %s: %v", resp.ID, err)
	}
	if st.State != api.StateDone {
		fail("campaign %s finished %s: %s (%+v)", st.ID, st.State, st.Error, st.Jobs)
	}
	res, err := cl.CampaignResults(ctx, resp.ID)
	if err != nil {
		fail("campaign results: %v", err)
	}
	if len(res.Results) != len(specs) {
		fail("campaign returned %d results, want %d", len(res.Results), len(specs))
	}
	var attempts, hedges int
	for _, j := range st.Jobs {
		attempts += j.Attempts
		hedges += j.Hedges
	}
	for _, doc := range res.Results {
		writeLine(bytes.TrimSpace(doc))
	}
	fmt.Fprintf(os.Stderr,
		"chaos-smoke: campaign %s: %d/%d jobs done, %d cache hits, %d attempts, %d hedges\n",
		st.ID, st.Done, st.Total, st.CacheHits, attempts, hedges)
}

func writeLine(doc []byte) {
	if _, err := os.Stdout.Write(append(doc, '\n')); err != nil {
		fail("write result: %v", err)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "chaos-smoke: "+format+"\n", args...)
	os.Exit(1)
}
