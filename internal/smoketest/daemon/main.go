// Command smoketest/daemon is the CI daemon-smoke driver: it exercises a
// running c3dd worker end to end through the public api.Client — the same
// client every external consumer uses — replacing the curl/sed sequences the
// gate used before the wire types went public.
//
// It waits for the daemon to come up, checks /healthz and /v1/capabilities,
// submits a quick experiment job, follows the event stream to its terminal
// marker, verifies the error envelope on a bogus job id, and prints the
// job's result document to stdout so the Makefile can cmp it against
// `c3dexp -json` byte for byte.
//
//	go run ./internal/smoketest/daemon -url http://127.0.0.1:18321
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"c3d/pkg/c3d/api"
)

func main() {
	url := flag.String("url", "http://127.0.0.1:8080", "base URL of the c3dd daemon under test")
	timeout := flag.Duration("timeout", 2*time.Minute, "overall deadline")
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	cl := api.NewClient(*url)

	// Readiness: the daemon may still be binding its socket.
	var health *api.Health
	for {
		var err error
		if health, err = cl.Health(ctx); err == nil {
			break
		}
		select {
		case <-time.After(200 * time.Millisecond):
		case <-ctx.Done():
			fail("daemon at %s never became healthy: %v", *url, err)
		}
	}
	if health.Status != "ok" || health.Version == "" {
		fail("implausible health document: %+v", health)
	}

	caps, err := cl.Capabilities(ctx)
	if err != nil {
		fail("capabilities: %v", err)
	}
	if len(caps.Designs) == 0 || len(caps.Experiments) == 0 || len(caps.Workloads) == 0 {
		fail("empty capability lists: %+v", caps)
	}

	// The uniform error envelope, through the client's typed error path.
	var apiErr *api.Error
	if _, err := cl.Status(ctx, "job-999999"); !errors.As(err, &apiErr) || apiErr.Code != api.CodeNotFound {
		fail("bogus job id: got %v, want a %s envelope", err, api.CodeNotFound)
	}

	spec := api.JobSpec{
		Kind:        api.KindExperiment,
		Experiments: []string{"table1"},
		Params:      api.Params{Quick: true, Workloads: []string{"streamcluster"}, Accesses: 2000},
	}
	if err := caps.SupportsSpec(spec); err != nil {
		fail("capabilities rejected the smoke spec: %v", err)
	}
	sub, err := cl.Submit(ctx, spec)
	if err != nil {
		fail("submit: %v", err)
	}

	// Follow the event stream to the terminal marker — Events returning nil
	// IS the completion wait.
	events := 0
	if err := cl.Events(ctx, sub.ID, func(api.Event) error { events++; return nil }); err != nil {
		fail("events: %v", err)
	}
	if events == 0 {
		fail("event stream delivered nothing")
	}
	st, err := cl.Wait(ctx, sub.ID)
	if err != nil {
		fail("wait: %v", err)
	}
	if st.State != api.StateDone {
		fail("job finished %s: %s", st.State, st.Error)
	}
	result, err := cl.Result(ctx, sub.ID)
	if err != nil {
		fail("result: %v", err)
	}
	fmt.Fprintf(os.Stderr, "daemon-smoke: %s done after %d events; result %d bytes\n", sub.ID, events, len(result))
	os.Stdout.Write(result)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "daemon-smoke: "+format+"\n", args...)
	os.Exit(1)
}
