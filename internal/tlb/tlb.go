// Package tlb implements the private/shared page classification mechanism of
// §IV-D of the C3D paper. Page table entries are extended with the owner
// thread's id and a classification bit; the OS maintains them on TLB misses:
//
//   - first access: the page is marked private and the accessing thread
//     becomes its owner;
//   - a later access by a different thread re-classifies the page as shared
//     (the owner is trapped so pending writes are flushed, but the page does
//     not have to be shot down);
//   - an access by the same thread from a different core (thread migration)
//     keeps the page private but updates the owner core and shoots the page
//     down from the memory hierarchy.
//
// C3D consults the classification on write misses: a GetX for a block of a
// private page can skip the broadcast invalidation of remote DRAM caches,
// because no other thread can have cached it.
//
// Each core also has a small TLB that caches classifications so the
// experiments can report TLB miss rates; classification decisions themselves
// live in the shared Classifier (the simulated OS page table extension).
package tlb

import (
	"fmt"

	"c3d/internal/addr"
)

// Class is a page's sharing classification.
type Class uint8

const (
	// ClassPrivate means only the owner thread has accessed the page.
	ClassPrivate Class = iota
	// ClassShared means at least two distinct threads have accessed the
	// page.
	ClassShared
)

func (c Class) String() string {
	switch c {
	case ClassPrivate:
		return "private"
	case ClassShared:
		return "shared"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

// ClassifierStats counts classification activity.
type ClassifierStats struct {
	// PrivatePages and SharedPages are the current counts per class.
	PrivatePages uint64
	SharedPages  uint64
	// Reclassifications counts private→shared transitions.
	Reclassifications uint64
	// OwnerFlushes counts the traps of the owning thread performed during a
	// private→shared transition to flush its pending writes.
	OwnerFlushes uint64
	// MigrationShootdowns counts pages shot down from the hierarchy because
	// the owning thread migrated to a different core.
	MigrationShootdowns uint64
	// Accesses counts classification queries.
	Accesses uint64
}

type pageClass struct {
	class Class
	// ownerThread is the thread id that first touched the page.
	ownerThread int
	// ownerCore is the core the owner thread was last seen on.
	ownerCore int
}

// Classifier is the OS-level page classification table (the page-table
// extension of §IV-D). Entries are stored by value: the table is touched for
// every simulated access, and pointer entries would cost one allocation per
// classified page on every (re)run of a machine.
type Classifier struct {
	pages map[addr.Page]pageClass
	stats ClassifierStats
	// epoch increments on every private→shared reclassification. Because
	// pages never re-privatize, a cached "private to thread T" verdict is
	// still valid exactly while the epoch is unchanged (and a cached "not
	// private to T" verdict is valid forever), which lets hot callers memoise
	// IsPrivateTo without a map lookup.
	epoch uint64
}

// NewClassifier builds an empty classifier.
func NewClassifier() *Classifier {
	return &Classifier{pages: make(map[addr.Page]pageClass)}
}

// Stats returns a snapshot of the counters.
func (c *Classifier) Stats() ClassifierStats { return c.stats }

// ResetStats clears event counters but keeps current page classifications and
// the page counts per class (which describe state, not events).
func (c *Classifier) ResetStats() {
	c.stats.Reclassifications = 0
	c.stats.OwnerFlushes = 0
	c.stats.MigrationShootdowns = 0
	c.stats.Accesses = 0
}

// Reset forgets every page classification and clears all counters, returning
// the classifier to the just-constructed state (used when a machine is reused
// across runs).
func (c *Classifier) Reset() {
	clear(c.pages)
	c.stats = ClassifierStats{}
	c.epoch = 0
}

// Epoch returns the reclassification epoch; see the field comment.
func (c *Classifier) Epoch() uint64 { return c.epoch }

// AccessResult describes what happened on a classification query.
type AccessResult struct {
	Class Class
	// FirstTouch reports that the page was previously unclassified.
	FirstTouch bool
	// Reclassified reports a private→shared transition caused by this
	// access.
	Reclassified bool
	// Shootdown reports that the page had to be shot down because the owner
	// thread migrated cores.
	Shootdown bool
}

// Access classifies an access to page p by the given thread running on the
// given core and returns the resulting classification. It implements the OS
// TLB-miss handler behaviour described in §IV-D.
func (c *Classifier) Access(p addr.Page, thread, core int) AccessResult {
	c.stats.Accesses++
	e, ok := c.pages[p]
	if !ok {
		c.pages[p] = pageClass{class: ClassPrivate, ownerThread: thread, ownerCore: core}
		c.stats.PrivatePages++
		return AccessResult{Class: ClassPrivate, FirstTouch: true}
	}
	if e.class == ClassShared {
		return AccessResult{Class: ClassShared}
	}
	// Private page.
	if e.ownerThread == thread {
		if e.ownerCore != core {
			// Thread migration: keep the page private, move ownership to the
			// new core and shoot the page down from the hierarchy.
			e.ownerCore = core
			c.pages[p] = e
			c.stats.MigrationShootdowns++
			return AccessResult{Class: ClassPrivate, Shootdown: true}
		}
		return AccessResult{Class: ClassPrivate}
	}
	// A different thread: active sharing. Re-classify; the owner is trapped
	// so its pending writes to the page are flushed, but the page is not shot
	// down.
	e.class = ClassShared
	c.pages[p] = e
	c.epoch++
	c.stats.PrivatePages--
	c.stats.SharedPages++
	c.stats.Reclassifications++
	c.stats.OwnerFlushes++
	return AccessResult{Class: ClassShared, Reclassified: true}
}

// Classify returns the current classification of page p without recording an
// access. Unclassified pages report ClassShared (the conservative answer: a
// broadcast will be sent even though it may not be needed).
func (c *Classifier) Classify(p addr.Page) Class {
	if e, ok := c.pages[p]; ok {
		return e.class
	}
	return ClassShared
}

// IsPrivateTo reports whether page p is currently classified private and
// owned by the given thread. This is the exact predicate the C3D directory
// uses to elide a broadcast on a GetX carrying the private bit.
func (c *Classifier) IsPrivateTo(p addr.Page, thread int) bool {
	e, ok := c.pages[p]
	return ok && e.class == ClassPrivate && e.ownerThread == thread
}

// Pages returns the number of classified pages.
func (c *Classifier) Pages() int { return len(c.pages) }

// TLBStats counts per-core TLB activity.
type TLBStats struct {
	Hits   uint64
	Misses uint64
}

// MissRate returns misses/(hits+misses), or 0 when never accessed.
func (s TLBStats) MissRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Misses) / float64(total)
}

// TLB is one core's translation lookaside buffer, modelled as a
// fully-associative LRU array of page entries caching the classification bit.
// Capacity-induced misses are what trigger the OS handler in real hardware;
// here they are counted for reporting while classification correctness is
// delegated to the shared Classifier.
//
// The implementation keeps an intrusive doubly-linked LRU list indexed by a
// map, so lookups and replacements are O(1) — the TLB sits on the simulator's
// per-access hot path.
type TLB struct {
	capacity int
	entries  map[addr.Page]*tlbNode
	head     *tlbNode // most recently used
	tail     *tlbNode // least recently used
	// slab preallocates every node the TLB can ever hold; free chains nodes
	// returned by Invalidate. Steady-state misses therefore allocate nothing:
	// a full TLB recycles the evicted LRU node in place.
	slab  []tlbNode
	used  int
	free  *tlbNode
	stats TLBStats
}

type tlbNode struct {
	page       addr.Page
	prev, next *tlbNode
}

// allocNode takes a node from the free-list or the slab; the caller
// guarantees capacity (it evicts before calling when full).
func (t *TLB) allocNode() *tlbNode {
	if n := t.free; n != nil {
		t.free = n.next
		n.next = nil
		return n
	}
	n := &t.slab[t.used]
	t.used++
	return n
}

func (t *TLB) freeNode(n *tlbNode) {
	n.prev = nil
	n.next = t.free
	t.free = n
}

// NewTLB builds a TLB with the given number of entries (a typical 64-entry
// second-level data TLB if zero or negative).
func NewTLB(capacity int) *TLB {
	if capacity <= 0 {
		capacity = 64
	}
	return &TLB{
		capacity: capacity,
		entries:  make(map[addr.Page]*tlbNode, capacity),
		slab:     make([]tlbNode, capacity),
	}
}

// Capacity returns the TLB's entry count.
func (t *TLB) Capacity() int { return t.capacity }

// Stats returns a snapshot of the hit/miss counters.
func (t *TLB) Stats() TLBStats { return t.stats }

// ResetStats clears the counters without dropping cached translations.
func (t *TLB) ResetStats() { t.stats = TLBStats{} }

// Reset drops every cached translation and clears the counters, returning the
// TLB to the just-constructed state. The slab is zeroed so recycled nodes
// carry no stale list links.
func (t *TLB) Reset() {
	clear(t.entries)
	clear(t.slab)
	t.head, t.tail, t.free = nil, nil, nil
	t.used = 0
	t.stats = TLBStats{}
}

func (t *TLB) unlink(n *tlbNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		t.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		t.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (t *TLB) pushFront(n *tlbNode) {
	n.next = t.head
	if t.head != nil {
		t.head.prev = n
	}
	t.head = n
	if t.tail == nil {
		t.tail = n
	}
}

// Access looks up page p, returning true on a hit. On a miss the page is
// installed, evicting the least recently used entry if the TLB is full.
func (t *TLB) Access(p addr.Page) bool {
	if n, ok := t.entries[p]; ok {
		t.stats.Hits++
		if t.head != n {
			t.unlink(n)
			t.pushFront(n)
		}
		return true
	}
	t.stats.Misses++
	var n *tlbNode
	if len(t.entries) >= t.capacity {
		// Recycle the evicted LRU node instead of allocating.
		n = t.tail
		t.unlink(n)
		delete(t.entries, n.page)
	} else {
		n = t.allocNode()
	}
	n.page = p
	t.entries[p] = n
	t.pushFront(n)
	return false
}

// Invalidate removes page p (a shootdown) and reports whether it was present.
func (t *TLB) Invalidate(p addr.Page) bool {
	if n, ok := t.entries[p]; ok {
		t.unlink(n)
		delete(t.entries, p)
		t.freeNode(n)
		return true
	}
	return false
}

// Size returns the number of resident translations.
func (t *TLB) Size() int { return len(t.entries) }
