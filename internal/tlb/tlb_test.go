package tlb

import (
	"testing"
	"testing/quick"

	"c3d/internal/addr"
)

func TestFirstTouchClassifiesPrivate(t *testing.T) {
	c := NewClassifier()
	res := c.Access(addr.Page(1), 5, 5)
	if !res.FirstTouch || res.Class != ClassPrivate {
		t.Fatalf("first access = %+v; want first touch, private", res)
	}
	if !c.IsPrivateTo(addr.Page(1), 5) {
		t.Error("page should be private to thread 5")
	}
	if c.IsPrivateTo(addr.Page(1), 6) {
		t.Error("page should not be private to thread 6")
	}
	s := c.Stats()
	if s.PrivatePages != 1 || s.SharedPages != 0 {
		t.Errorf("stats = %+v; want 1 private page", s)
	}
}

func TestSameThreadStaysPrivate(t *testing.T) {
	c := NewClassifier()
	p := addr.Page(2)
	c.Access(p, 3, 3)
	res := c.Access(p, 3, 3)
	if res.Class != ClassPrivate || res.Reclassified || res.Shootdown {
		t.Errorf("repeat access by owner = %+v; want private, no events", res)
	}
}

func TestDifferentThreadReclassifiesShared(t *testing.T) {
	c := NewClassifier()
	p := addr.Page(3)
	c.Access(p, 0, 0)
	res := c.Access(p, 1, 1)
	if res.Class != ClassShared || !res.Reclassified {
		t.Fatalf("access by a second thread = %+v; want reclassification to shared", res)
	}
	if res.Shootdown {
		t.Error("private→shared transition must not shoot the page down (§IV-D)")
	}
	s := c.Stats()
	if s.Reclassifications != 1 || s.OwnerFlushes != 1 {
		t.Errorf("stats = %+v; want 1 reclassification with 1 owner flush", s)
	}
	if s.PrivatePages != 0 || s.SharedPages != 1 {
		t.Errorf("stats = %+v; want the page counted as shared", s)
	}
	// The page stays shared forever, even for the original owner.
	if c.Access(p, 0, 0).Class != ClassShared {
		t.Error("page should remain shared")
	}
	if c.IsPrivateTo(p, 0) {
		t.Error("IsPrivateTo should be false after reclassification")
	}
}

func TestThreadMigrationShootsDown(t *testing.T) {
	c := NewClassifier()
	p := addr.Page(4)
	c.Access(p, 7, 0)
	res := c.Access(p, 7, 2) // same thread, different core
	if res.Class != ClassPrivate || !res.Shootdown {
		t.Fatalf("migrated access = %+v; want private with shootdown", res)
	}
	if c.Stats().MigrationShootdowns != 1 {
		t.Errorf("MigrationShootdowns = %d, want 1", c.Stats().MigrationShootdowns)
	}
	// Subsequent accesses from the new core are quiet.
	res = c.Access(p, 7, 2)
	if res.Shootdown {
		t.Error("second access from the new core should not shoot down again")
	}
}

func TestClassifyUnknownPageIsShared(t *testing.T) {
	c := NewClassifier()
	if c.Classify(addr.Page(99)) != ClassShared {
		t.Error("unclassified pages must report shared (conservative)")
	}
}

func TestClassifierResetStatsKeepsState(t *testing.T) {
	c := NewClassifier()
	c.Access(addr.Page(1), 0, 0)
	c.Access(addr.Page(1), 1, 1)
	c.ResetStats()
	s := c.Stats()
	if s.Reclassifications != 0 || s.Accesses != 0 {
		t.Error("ResetStats did not clear event counters")
	}
	if s.SharedPages != 1 {
		t.Error("ResetStats must keep page-class state counts")
	}
	if c.Classify(addr.Page(1)) != ClassShared {
		t.Error("ResetStats must not forget classifications")
	}
}

func TestClassStrings(t *testing.T) {
	if ClassPrivate.String() != "private" || ClassShared.String() != "shared" {
		t.Error("unexpected Class names")
	}
}

func TestTLBHitMissAndLRU(t *testing.T) {
	tl := NewTLB(2)
	if tl.Access(addr.Page(1)) {
		t.Fatal("cold TLB should miss")
	}
	if !tl.Access(addr.Page(1)) {
		t.Fatal("second access should hit")
	}
	tl.Access(addr.Page(2))
	tl.Access(addr.Page(1)) // make page 2 the LRU
	tl.Access(addr.Page(3)) // evicts page 2
	if tl.Access(addr.Page(2)) {
		t.Error("evicted page should miss")
	}
	if tl.Size() > tl.Capacity() {
		t.Errorf("TLB holds %d entries, capacity %d", tl.Size(), tl.Capacity())
	}
	s := tl.Stats()
	if s.Hits != 2 {
		t.Errorf("Hits = %d, want 2", s.Hits)
	}
	if s.MissRate() <= 0 || s.MissRate() >= 1 {
		t.Errorf("MissRate = %.2f, want in (0,1)", s.MissRate())
	}
}

func TestTLBInvalidate(t *testing.T) {
	tl := NewTLB(4)
	tl.Access(addr.Page(1))
	if !tl.Invalidate(addr.Page(1)) {
		t.Error("Invalidate should report the page was present")
	}
	if tl.Invalidate(addr.Page(1)) {
		t.Error("second Invalidate should report absence")
	}
}

func TestTLBDefaultCapacity(t *testing.T) {
	if NewTLB(0).Capacity() != 64 {
		t.Error("default TLB capacity should be 64")
	}
}

func TestTLBMissRateZeroWhenUnused(t *testing.T) {
	var s TLBStats
	if s.MissRate() != 0 {
		t.Error("MissRate of an unused TLB should be 0")
	}
}

// Property: a page accessed by at least two distinct threads is always
// classified shared, and a page accessed by exactly one thread from one core
// is always private to that thread.
func TestClassificationProperty(t *testing.T) {
	f := func(pageRaw uint16, threadsRaw []uint8) bool {
		if len(threadsRaw) == 0 {
			return true
		}
		c := NewClassifier()
		p := addr.Page(pageRaw)
		distinct := map[int]bool{}
		for _, tr := range threadsRaw {
			thread := int(tr % 8)
			distinct[thread] = true
			c.Access(p, thread, thread)
		}
		if len(distinct) >= 2 {
			return c.Classify(p) == ClassShared
		}
		for thread := range distinct {
			return c.IsPrivateTo(p, thread)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the TLB never exceeds its capacity.
func TestTLBCapacityProperty(t *testing.T) {
	f := func(pages []uint16) bool {
		tl := NewTLB(8)
		for _, p := range pages {
			tl.Access(addr.Page(p))
		}
		return tl.Size() <= 8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// BenchmarkTLBAccess guards the per-access hot path: hits and steady-state
// capacity misses must not allocate (the node slab is preallocated and the
// evicted LRU node is recycled in place).
func BenchmarkTLBAccess(b *testing.B) {
	b.ReportAllocs()
	tlb := NewTLB(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tlb.Access(addr.Page(i % 256))
	}
}
