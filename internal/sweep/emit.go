package sweep

import (
	"encoding/csv"
	"encoding/json"
	"io"
	"sort"
	"strconv"
)

// record is the serialised form of one sweep result. Elapsed time is
// deliberately omitted: the emitted artefacts must be byte-identical across
// runs, machines and parallelism levels so CI can diff them.
type record struct {
	Key   string          `json:"key"`
	Seed  int64           `json:"seed"`
	Error string          `json:"error,omitempty"`
	Value json.RawMessage `json:"value,omitempty"`
}

// WriteJSON emits the results as an indented JSON array in job order,
// followed by a newline. Values are marshalled with encoding/json, so
// experiment result types control their own representation; job errors are
// emitted as strings in place of values.
func WriteJSON[T any](w io.Writer, results []Result[T]) error {
	records := make([]record, len(results))
	for i, r := range results {
		records[i] = record{Key: r.Key, Seed: r.Seed}
		if r.Err != nil {
			records[i].Error = r.Err.Error()
			continue
		}
		v, err := json.Marshal(r.Value)
		if err != nil {
			return err
		}
		records[i].Value = v
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(records)
}

// WriteCSV emits one row per result in job order. The caller names the value
// columns and provides the per-value flattening; the key and seed columns
// are always present. Failed jobs emit their error in an "error" column and
// empty value cells.
func WriteCSV[T any](w io.Writer, results []Result[T], columns []string, row func(T) []string) error {
	cw := csv.NewWriter(w)
	header := append([]string{"key", "seed", "error"}, columns...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range results {
		cells := []string{r.Key, strconv.FormatInt(r.Seed, 10), ""}
		if r.Err != nil {
			cells[2] = r.Err.Error()
			cells = append(cells, make([]string, len(columns))...)
		} else {
			cells = append(cells, row(r.Value)...)
		}
		if err := cw.Write(cells); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// SortByKey orders results by key (job order is the default; some consumers
// want a key-sorted view when merging sweeps).
func SortByKey[T any](results []Result[T]) {
	sort.SliceStable(results, func(i, j int) bool { return results[i].Key < results[j].Key })
}
