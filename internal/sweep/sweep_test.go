package sweep

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// jitterJobs builds jobs whose run time varies, so parallel completion order
// differs from job order, and whose value depends only on key and seed.
func jitterJobs(n int) []Job[string] {
	jobs := make([]Job[string], n)
	for i := 0; i < n; i++ {
		i := i
		key := fmt.Sprintf("job-%03d", i)
		jobs[i] = Job[string]{
			Key: key,
			Run: func(_ context.Context, seed int64) (string, error) {
				rng := rand.New(rand.NewSource(seed))
				time.Sleep(time.Duration(rng.Intn(300)) * time.Microsecond)
				return fmt.Sprintf("%s:%d:%d", key, i, rng.Intn(1<<30)), nil
			},
		}
	}
	return jobs
}

// TestRunDeterministicAcrossParallelism is the sweep contract: the same jobs
// must produce byte-identical serialised results at Parallelism 1 and
// GOMAXPROCS.
func TestRunDeterministicAcrossParallelism(t *testing.T) {
	for _, par := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		par := par
		t.Run(fmt.Sprintf("parallel-%d", par), func(t *testing.T) {
			serial, err := Run(context.Background(), jitterJobs(40), Options{Parallelism: 1, BaseSeed: 7})
			if err != nil {
				t.Fatal(err)
			}
			parallel, err := Run(context.Background(), jitterJobs(40), Options{Parallelism: par, BaseSeed: 7})
			if err != nil {
				t.Fatal(err)
			}
			var a, b bytes.Buffer
			if err := WriteJSON(&a, serial); err != nil {
				t.Fatal(err)
			}
			if err := WriteJSON(&b, parallel); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a.Bytes(), b.Bytes()) {
				t.Fatalf("JSON output differs between Parallelism=1 and Parallelism=%d:\n%s\n---\n%s",
					par, a.String(), b.String())
			}
		})
	}
}

// TestRunResultOrder checks results come back in job order even when later
// jobs finish first.
func TestRunResultOrder(t *testing.T) {
	jobs := make([]Job[int], 16)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{
			Key: strconv.Itoa(i),
			Run: func(context.Context, int64) (int, error) {
				// Earlier jobs sleep longer, inverting completion order.
				time.Sleep(time.Duration(len(jobs)-i) * time.Millisecond)
				return i * i, nil
			},
		}
	}
	results, err := Run(context.Background(), jobs, Options{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Key != strconv.Itoa(i) || r.Value != i*i {
			t.Fatalf("result %d out of order: %+v", i, r)
		}
	}
}

// TestRunFirstErrorByJobOrder checks the reported error is the first failing
// job in job order, not in completion order.
func TestRunFirstErrorByJobOrder(t *testing.T) {
	errA := errors.New("a failed")
	errB := errors.New("b failed")
	jobs := []Job[int]{
		{Key: "ok", Run: func(context.Context, int64) (int, error) { return 1, nil }},
		{Key: "a", Run: func(context.Context, int64) (int, error) {
			time.Sleep(20 * time.Millisecond) // finishes after b
			return 0, errA
		}},
		{Key: "b", Run: func(context.Context, int64) (int, error) { return 0, errB }},
	}
	_, err := Run(context.Background(), jobs, Options{Parallelism: 3})
	if !errors.Is(err, errA) {
		t.Fatalf("err = %v, want the job-order-first error %v", err, errA)
	}
}

// TestSeedForStability pins the seed derivation: per-job seeds must not
// change when jobs are added or the sweep is re-ordered, and must respond to
// both base seed and key.
func TestSeedForStability(t *testing.T) {
	if SeedFor(0, "fig6/c3d/streamcluster") != SeedFor(0, "fig6/c3d/streamcluster") {
		t.Fatal("SeedFor is not a pure function")
	}
	if SeedFor(0, "a") == SeedFor(0, "b") {
		t.Fatal("different keys should give different seeds")
	}
	if SeedFor(1, "a") == SeedFor(2, "a") {
		t.Fatal("different base seeds should give different seeds")
	}
	// Seeds are properties of (base, key) only: run in any batch, any order.
	jobs := jitterJobs(4)
	res, err := Run(context.Background(), jobs, Options{BaseSeed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if want := SeedFor(3, jobs[i].Key); r.Seed != want {
			t.Fatalf("job %d seed %d, want %d", i, r.Seed, want)
		}
	}
}

// TestExplicitSeedOverride checks a job-supplied seed both reaches Run and
// is the seed recorded in the result — the recorded seed is always the seed
// that actually ran.
func TestExplicitSeedOverride(t *testing.T) {
	want := int64(12345)
	jobs := []Job[int64]{{
		Key:  "pinned",
		Seed: &want,
		Run:  func(_ context.Context, seed int64) (int64, error) { return seed, nil },
	}}
	res, err := Run(context.Background(), jobs, Options{BaseSeed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Seed != want || res[0].Value != want {
		t.Fatalf("seed override: recorded %d, Run saw %d, want %d", res[0].Seed, res[0].Value, want)
	}
}

// TestProgressSerialisedAndComplete checks every job reports progress exactly
// once and Done reaches Total.
func TestProgressSerialisedAndComplete(t *testing.T) {
	var mu sync.Mutex
	seen := map[string]int{}
	maxDone := 0
	_, err := Run(context.Background(), jitterJobs(25), Options{
		Parallelism: 5,
		Progress: func(p Progress) {
			// Already serialised by the runner; the map write would race
			// otherwise and -race would catch it.
			mu.Lock()
			seen[p.Key]++
			if p.Done > maxDone {
				maxDone = p.Done
			}
			if p.Total != 25 {
				t.Errorf("Total = %d, want 25", p.Total)
			}
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 25 || maxDone != 25 {
		t.Fatalf("progress incomplete: %d keys, maxDone %d", len(seen), maxDone)
	}
	for k, n := range seen {
		if n != 1 {
			t.Fatalf("job %s reported progress %d times", k, n)
		}
	}
}

// TestWriteCSV checks the CSV shape, including error rows.
func TestWriteCSV(t *testing.T) {
	results := []Result[int]{
		{Key: "a", Seed: 1, Value: 42},
		{Key: "b", Seed: 2, Err: errors.New("boom")},
	}
	var buf bytes.Buffer
	err := WriteCSV(&buf, results, []string{"answer"}, func(v int) []string {
		return []string{strconv.Itoa(v)}
	})
	if err != nil {
		t.Fatal(err)
	}
	want := "key,seed,error,answer\na,1,,42\nb,2,boom,\n"
	if buf.String() != want {
		t.Fatalf("CSV:\n%s\nwant:\n%s", buf.String(), want)
	}
}

// TestRunCancelledStopsEarly is the cancellation contract: once ctx is
// cancelled no further job starts, jobs that never started carry ctx's error,
// and Run returns it.
func TestRunCancelledStopsEarly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	const total = 64
	var startedJobs atomic.Int32
	release := make(chan struct{})
	jobs := make([]Job[int], total)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{
			Key: strconv.Itoa(i),
			Run: func(ctx context.Context, _ int64) (int, error) {
				startedJobs.Add(1)
				<-release
				return i, ctx.Err()
			},
		}
	}
	go func() {
		// Let the two workers pick up their first jobs, then cancel and
		// unblock them.
		for startedJobs.Load() < 2 {
			time.Sleep(time.Millisecond)
		}
		cancel()
		close(release)
	}()
	results, err := Run(ctx, jobs, Options{Parallelism: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := int(startedJobs.Load()); n >= total {
		t.Fatalf("all %d jobs started despite cancellation", n)
	}
	if len(results) != total {
		t.Fatalf("got %d results, want one per job", len(results))
	}
	unstarted := 0
	for i, r := range results {
		if r.Key != jobs[i].Key {
			t.Fatalf("result %d has key %q, want %q", i, r.Key, jobs[i].Key)
		}
		if r.Err != nil && errors.Is(r.Err, context.Canceled) {
			unstarted++
		}
	}
	if unstarted == 0 {
		t.Fatal("no job result carries the cancellation error")
	}
}

// TestRunEmpty checks the degenerate sweep.
func TestRunEmpty(t *testing.T) {
	results, err := Run[int](context.Background(), nil, Options{})
	if err != nil || len(results) != 0 {
		t.Fatalf("empty sweep: %v, %d results", err, len(results))
	}
}
