// Package sweep is the experiment fan-out substrate: it runs batches of
// independent simulation jobs with bounded parallelism while keeping every
// observable output deterministic. The C3D evaluation is a large
// design × workload × latency product, and CI compares sweep output
// byte-for-byte across machines and parallelism levels, so the package
// guarantees:
//
//   - results are returned in job order, no matter which goroutine finished
//     first;
//   - the reported error is the first failing job in job order, not the
//     first failure in wall-clock order;
//   - every job gets a seed derived only from the sweep's base seed and the
//     job's key, so adding, removing or reordering other jobs — or changing
//     Parallelism — never changes a job's random stream;
//   - progress callbacks are serialised (safe to print from).
//
// WriteJSON and WriteCSV (emit.go) serialise sweep results for tooling that
// consumes raw sweep output; cmd/c3dexp serialises at the experiment-table
// level instead (stats.Table), since its results aggregate many jobs.
package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Job is one unit of work in a sweep.
type Job[T any] struct {
	// Key identifies the job in results, progress lines and error messages.
	// Keys should be unique within a sweep; results preserve job order, so
	// duplicate keys are not fatal, but they make downstream maps lossy.
	Key string
	// Seed, when non-nil, is the job's seed; otherwise the runner derives
	// one from the sweep base seed and the key (see SeedFor). Callers whose
	// jobs must share random streams — e.g. every coherence design
	// simulating the same workload trace — set it explicitly, so the seed
	// recorded in the result is always the seed that actually ran.
	Seed *int64
	// Run executes the job. The seed parameter is the job's seed as decided
	// above; jobs that use randomness must derive it all from this value.
	// The context is the sweep's context: long-running jobs should observe
	// its cancellation.
	Run func(ctx context.Context, seed int64) (T, error)
}

// Progress describes one completed job. Completion order is wall-clock order
// and therefore not deterministic; everything else is.
type Progress struct {
	// Key is the completed job's key.
	Key string
	// Index is the job's position in the sweep.
	Index int
	// Done is the number of jobs completed so far, Total the sweep size.
	Done, Total int
	// Elapsed is the job's wall-clock duration.
	Elapsed time.Duration
	// Err is the job's error, if it failed.
	Err error
}

// Options configure a sweep.
type Options struct {
	// Parallelism bounds concurrently running jobs (<=0 means GOMAXPROCS).
	// It affects wall-clock time only: results are identical at any value.
	Parallelism int
	// BaseSeed is mixed into every job's seed. Zero is a fine default; two
	// sweeps with the same jobs and base seed produce identical results.
	BaseSeed int64
	// Progress, if non-nil, is called after each job completes. Calls are
	// serialised but arrive in completion order.
	Progress func(Progress)
}

// Result pairs a job with its outcome.
type Result[T any] struct {
	// Key and Seed echo the job's identity.
	Key  string
	Seed int64
	// Value is the job's output (zero when Err is non-nil).
	Value T
	// Err is the job's failure, if any.
	Err error
	// Elapsed is the job's wall-clock duration. It is reported for
	// observability and deliberately excluded from the serialised formats,
	// which must be byte-identical across runs.
	Elapsed time.Duration
}

// SeedFor derives a job's seed from the sweep base seed and the job key
// alone. The derivation is an FNV-1a hash finalised with the splitmix64
// mixer, so seeds are well distributed even for keys differing in one byte.
func SeedFor(base int64, key string) int64 {
	const (
		fnvOffset = 0xcbf29ce484222325
		fnvPrime  = 0x100000001b3
	)
	h := uint64(fnvOffset) ^ uint64(base)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime
	}
	// splitmix64 finalisation.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return int64(h)
}

// Run executes the jobs and returns one result per job, in job order. The
// returned error is the error of the first failing job in job order (every
// job still runs; per-job errors are also available in the results).
//
// Cancelling the context stops the sweep early: no new job is started once
// ctx is done, jobs already running receive the cancelled context, jobs that
// never started carry ctx's error in their result, and Run returns ctx's
// error. A cancelled sweep is the one case where results are not
// deterministic — which jobs completed depends on wall-clock timing.
func Run[T any](ctx context.Context, jobs []Job[T], opts Options) ([]Result[T], error) {
	if ctx == nil {
		ctx = context.Background()
	}
	parallelism := opts.Parallelism
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(jobs) {
		parallelism = len(jobs)
	}
	results := make([]Result[T], len(jobs))
	started := make([]bool, len(jobs))

	var (
		mu   sync.Mutex
		done int
		next int
		wg   sync.WaitGroup
	)
	worker := func() {
		defer wg.Done()
		for {
			if ctx.Err() != nil {
				return
			}
			mu.Lock()
			if next >= len(jobs) {
				mu.Unlock()
				return
			}
			i := next
			next++
			started[i] = true
			mu.Unlock()

			job := jobs[i]
			seed := SeedFor(opts.BaseSeed, job.Key)
			if job.Seed != nil {
				seed = *job.Seed
			}
			//c3dlint:allow determinism(Elapsed feeds progress reporting and Result.Elapsed, never emitted result bytes)
			start := time.Now()
			value, err := job.Run(ctx, seed)
			elapsed := time.Since(start) //c3dlint:allow determinism(see start above: elapsed never reaches result bytes)
			if err != nil {
				err = fmt.Errorf("sweep job %s: %w", job.Key, err)
			}
			results[i] = Result[T]{Key: job.Key, Seed: seed, Value: value, Err: err, Elapsed: elapsed}

			mu.Lock()
			done++
			if opts.Progress != nil {
				opts.Progress(Progress{Key: job.Key, Index: i, Done: done, Total: len(jobs), Elapsed: elapsed, Err: err})
			}
			mu.Unlock()
		}
	}
	wg.Add(parallelism)
	for w := 0; w < parallelism; w++ {
		go worker()
	}
	wg.Wait()

	if err := ctx.Err(); err != nil {
		// Mark every job that never started so callers can tell "not run"
		// from "ran and produced a zero value".
		for i := range results {
			if !started[i] {
				results[i] = Result[T]{Key: jobs[i].Key, Err: fmt.Errorf("sweep job %s: %w", jobs[i].Key, err)}
			}
		}
		return results, err
	}
	for i := range results {
		if results[i].Err != nil {
			return results, results[i].Err
		}
	}
	return results, nil
}
