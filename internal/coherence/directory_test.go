package coherence

import (
	"testing"
	"testing/quick"

	"c3d/internal/addr"
)

func newUnboundedDir() *Directory {
	return NewDirectory(DirConfig{Name: "test-full"})
}

func newSparseDir(entries, ways int) *Directory {
	return NewDirectory(DirConfig{Name: "test-sparse", Entries: entries, Ways: ways})
}

func TestDirectoryUnboundedBasics(t *testing.T) {
	d := newUnboundedDir()
	if !d.Unbounded() {
		t.Fatal("expected unbounded directory")
	}
	b := addr.Block(42)
	if _, ok := d.Lookup(b); ok {
		t.Fatal("empty directory should miss")
	}
	recall := d.Update(b, Entry{State: DirModified, Owner: 2, Sharers: NewSharerSet(2)})
	if recall.Valid {
		t.Fatal("unbounded directory must never recall")
	}
	e, ok := d.Lookup(b)
	if !ok || e.State != DirModified || e.Owner != 2 {
		t.Fatalf("Lookup = %+v, %v; want Modified owner 2", e, ok)
	}
	if !d.Remove(b) {
		t.Fatal("Remove should report the entry was present")
	}
	if _, ok := d.Lookup(b); ok {
		t.Fatal("entry should be gone after Remove")
	}
	if d.Remove(b) {
		t.Fatal("second Remove should report absence")
	}
}

func TestDirectoryUpdateInvalidRemoves(t *testing.T) {
	d := newUnboundedDir()
	b := addr.Block(7)
	d.Update(b, Entry{State: DirShared, Sharers: NewSharerSet(1)})
	d.Update(b, Entry{State: DirInvalid})
	if _, ok := d.Probe(b); ok {
		t.Fatal("updating to DirInvalid should remove the entry")
	}
}

func TestDirectoryStats(t *testing.T) {
	d := newUnboundedDir()
	b := addr.Block(1)
	d.Lookup(b)
	d.Update(b, Entry{State: DirShared, Sharers: NewSharerSet(0)})
	d.Lookup(b)
	d.Remove(b)
	s := d.Stats()
	if s.Lookups != 2 || s.Hits != 1 || s.Misses != 1 {
		t.Errorf("stats = %+v; want 2 lookups, 1 hit, 1 miss", s)
	}
	if s.Allocations != 1 || s.Updates != 1 || s.Removes != 1 {
		t.Errorf("stats = %+v; want 1 allocation, 1 update, 1 remove", s)
	}
	d.ResetStats()
	if d.Stats() != (DirStats{}) {
		t.Error("ResetStats did not clear counters")
	}
}

func TestDirectorySparseRecall(t *testing.T) {
	// 1 set x 2 ways: the third distinct block must evict the LRU entry.
	d := newSparseDir(2, 2)
	if d.Unbounded() {
		t.Fatal("expected bounded directory")
	}
	r1 := d.Update(addr.Block(0), Entry{State: DirShared, Sharers: NewSharerSet(0)})
	r2 := d.Update(addr.Block(1), Entry{State: DirShared, Sharers: NewSharerSet(1)})
	if r1.Valid || r2.Valid {
		t.Fatal("filling free ways should not recall")
	}
	// Touch block 0 so block 1 becomes LRU.
	if _, ok := d.Lookup(addr.Block(0)); !ok {
		t.Fatal("block 0 should be present")
	}
	r3 := d.Update(addr.Block(2), Entry{State: DirModified, Owner: 3, Sharers: NewSharerSet(3)})
	if !r3.Valid {
		t.Fatal("full set should force a recall")
	}
	if r3.Block != addr.Block(1) {
		t.Errorf("recalled block = %d, want 1 (the LRU)", r3.Block)
	}
	if d.Stats().Recalls != 1 {
		t.Errorf("Recalls = %d, want 1", d.Stats().Recalls)
	}
	// The new entry must be present, the recalled one absent.
	if _, ok := d.Probe(addr.Block(2)); !ok {
		t.Error("newly allocated entry missing")
	}
	if _, ok := d.Probe(addr.Block(1)); ok {
		t.Error("recalled entry still present")
	}
}

func TestDirectorySparseUpdateInPlace(t *testing.T) {
	d := newSparseDir(2, 2)
	b := addr.Block(5)
	d.Update(b, Entry{State: DirShared, Sharers: NewSharerSet(0)})
	recall := d.Update(b, Entry{State: DirShared, Sharers: NewSharerSet(0, 1)})
	if recall.Valid {
		t.Fatal("in-place update should not recall")
	}
	e, _ := d.Probe(b)
	if e.Sharers != NewSharerSet(0, 1) {
		t.Errorf("sharers = %v, want {0,1}", e.Sharers)
	}
	if d.Entries() != 1 {
		t.Errorf("Entries = %d, want 1", d.Entries())
	}
}

func TestDirectorySetIndexing(t *testing.T) {
	// 4 sets x 1 way: blocks differing in the low 2 bits map to different
	// sets and never evict each other.
	d := newSparseDir(4, 1)
	for b := addr.Block(0); b < 4; b++ {
		if r := d.Update(b, Entry{State: DirShared, Sharers: NewSharerSet(0)}); r.Valid {
			t.Fatalf("block %d should map to its own set", b)
		}
	}
	if d.Entries() != 4 {
		t.Fatalf("Entries = %d, want 4", d.Entries())
	}
	// Block 4 maps to the same set as block 0 and must recall it.
	r := d.Update(addr.Block(4), Entry{State: DirShared, Sharers: NewSharerSet(1)})
	if !r.Valid || r.Block != addr.Block(0) {
		t.Fatalf("recall = %+v, want recall of block 0", r)
	}
}

func TestDirectoryForEach(t *testing.T) {
	d := newSparseDir(8, 2)
	want := map[addr.Block]DirState{
		1: DirShared, 2: DirModified, 3: DirShared,
	}
	d.Update(1, Entry{State: DirShared, Sharers: NewSharerSet(0)})
	d.Update(2, Entry{State: DirModified, Owner: 1, Sharers: NewSharerSet(1)})
	d.Update(3, Entry{State: DirShared, Sharers: NewSharerSet(2)})
	got := map[addr.Block]DirState{}
	d.ForEach(func(b addr.Block, e Entry) { got[b] = e.State })
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %d entries, want %d", len(got), len(want))
	}
	for b, st := range want {
		if got[b] != st {
			t.Errorf("block %d state = %v, want %v", b, got[b], st)
		}
	}
}

func TestDirectoryInvalidGeometryPanics(t *testing.T) {
	for _, cfg := range []DirConfig{
		{Name: "bad-ways", Entries: 8, Ways: 0},
		{Name: "bad-div", Entries: 7, Ways: 2},
		{Name: "bad-pow2", Entries: 12, Ways: 2},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewDirectory(%+v) should panic", cfg)
				}
			}()
			NewDirectory(cfg)
		}()
	}
}

// Property: for an unbounded directory, Update followed by Lookup returns the
// stored entry, regardless of the block or entry contents.
func TestDirectoryUpdateLookupProperty(t *testing.T) {
	d := newUnboundedDir()
	f := func(blockRaw uint32, stateRaw uint8, owner uint8, sharersRaw uint64) bool {
		b := addr.Block(blockRaw)
		state := DirState(stateRaw%2) + DirShared // DirShared or DirModified
		e := Entry{State: state, Owner: int(owner % 4), Sharers: SharerSet(sharersRaw & 0xF)}
		d.Update(b, e)
		got, ok := d.Lookup(b)
		return ok && got == e
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a sparse directory never holds more valid entries than its
// configured capacity, no matter the access pattern.
func TestDirectorySparseCapacityProperty(t *testing.T) {
	f := func(blocks []uint16) bool {
		d := newSparseDir(16, 4)
		for _, raw := range blocks {
			d.Update(addr.Block(raw), Entry{State: DirShared, Sharers: NewSharerSet(int(raw) % 4)})
		}
		return d.Entries() <= 16
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
