package coherence

import (
	"math"
	"testing"
)

const (
	mib = 1 << 20
	gib = 1 << 30
)

// §III-B: "a 256MB DRAM cache, even with a minimally-provisioned (1x) sparse
// directory, would require 16MB of directory storage per socket. For a
// 2x-provisioned directory ... the storage costs increase to 32MB for a 256MB
// cache or a whopping 128MB for a 1GB DRAM cache."
func TestDirectoryStorageMatchesPaperNumbers(t *testing.T) {
	cases := []struct {
		name         string
		capacity     uint64
		provisioning float64
		wantMB       float64
	}{
		{"256MB cache, 1x", 256 * mib, 1.0, 16},
		{"256MB cache, 2x", 256 * mib, 2.0, 32},
		{"1GB cache, 2x", 1 * gib, 2.0, 128},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := DefaultStorageParams(tc.capacity, 4, tc.provisioning)
			got := p.StorageMB()
			// The paper rounds to the nearest power-of-two-ish MB figure;
			// allow 25% slack for the exact per-entry width assumed.
			if math.Abs(got-tc.wantMB)/tc.wantMB > 0.25 {
				t.Errorf("StorageMB() = %.1f, want about %.0f", got, tc.wantMB)
			}
		})
	}
}

func TestEntryBitsRoundsToBytes(t *testing.T) {
	p := StorageParams{TagBits: 41, StateBits: 3, Sockets: 4}
	if got := p.EntryBits(); got%8 != 0 {
		t.Errorf("EntryBits() = %d, want a multiple of 8", got)
	}
	if got := p.EntryBits(); got < 48 {
		t.Errorf("EntryBits() = %d, want >= 48", got)
	}
}

func TestEntriesRequiredScalesWithProvisioning(t *testing.T) {
	base := DefaultStorageParams(256*mib, 4, 1.0).EntriesRequired()
	doubled := DefaultStorageParams(256*mib, 4, 2.0).EntriesRequired()
	if doubled != 2*base {
		t.Errorf("2x provisioning entries = %d, want %d", doubled, 2*base)
	}
}

func TestNonInclusiveDirectorySavings(t *testing.T) {
	// C3D's directory covers only the 16MB LLC, not the 1GB DRAM cache. The
	// storage savings versus an inclusive directory must exceed 95%.
	savings := StorageSavings(1*gib, 16*mib, 4, 2.0)
	if savings < 0.95 {
		t.Errorf("StorageSavings = %.3f, want > 0.95", savings)
	}
	incl := InclusiveDirCost(1*gib, 16*mib, 4, 2.0)
	noninc := NonInclusiveDirCost(16*mib, 4, 2.0)
	if noninc >= incl {
		t.Errorf("non-inclusive cost %d should be far below inclusive cost %d", noninc, incl)
	}
}

func TestOwnerSet(t *testing.T) {
	e := Entry{State: DirModified, Owner: 3}
	if !e.OwnerSet().Only(3) {
		t.Errorf("OwnerSet() = %v, want {3}", e.OwnerSet())
	}
	e = Entry{State: DirShared, Sharers: NewSharerSet(1, 2)}
	if !e.OwnerSet().Empty() {
		t.Errorf("OwnerSet() of a Shared entry = %v, want empty", e.OwnerSet())
	}
}

func TestStateNames(t *testing.T) {
	if DirInvalid.String() != "I" || DirShared.String() != "S" || DirModified.String() != "M" {
		t.Error("unexpected DirState names")
	}
	if LineStateName(LineInvalid) != "I" || LineStateName(LineShared) != "S" || LineStateName(LineModified) != "M" {
		t.Error("unexpected line state names")
	}
}

func TestMsgTypeProperties(t *testing.T) {
	dataCarrying := map[MsgType]bool{
		MsgPutX: true, MsgData: true, MsgDataMem: true, MsgWriteback: true,
	}
	for m := MsgType(0); int(m) < NumMsgTypes; m++ {
		if got := m.CarriesData(); got != dataCarrying[m] {
			t.Errorf("%v.CarriesData() = %v, want %v", m, got, dataCarrying[m])
		}
		if m.String() == "" {
			t.Errorf("MsgType %d has no name", m)
		}
	}
}
