package coherence

import (
	"testing"
	"testing/quick"
)

func TestSharerSetBasics(t *testing.T) {
	var s SharerSet
	if !s.Empty() {
		t.Fatal("zero SharerSet should be empty")
	}
	s = s.Add(0).Add(2).Add(3)
	if s.Count() != 3 {
		t.Fatalf("Count = %d, want 3", s.Count())
	}
	for _, tc := range []struct {
		socket int
		want   bool
	}{{0, true}, {1, false}, {2, true}, {3, true}} {
		if got := s.Contains(tc.socket); got != tc.want {
			t.Errorf("Contains(%d) = %v, want %v", tc.socket, got, tc.want)
		}
	}
	s = s.Remove(2)
	if s.Contains(2) {
		t.Error("Remove(2) did not remove socket 2")
	}
	if s.Count() != 2 {
		t.Errorf("Count after remove = %d, want 2", s.Count())
	}
}

func TestSharerSetAddIdempotent(t *testing.T) {
	s := NewSharerSet(1)
	if s.Add(1) != s {
		t.Error("adding an existing socket should not change the set")
	}
	if s.Remove(3) != s {
		t.Error("removing an absent socket should not change the set")
	}
}

func TestSharerSetOnly(t *testing.T) {
	s := NewSharerSet(2)
	if !s.Only(2) {
		t.Error("Only(2) should be true for {2}")
	}
	if s.Only(1) {
		t.Error("Only(1) should be false for {2}")
	}
	if s.Add(3).Only(2) {
		t.Error("Only(2) should be false for {2,3}")
	}
	if (SharerSet(0)).Only(0) {
		t.Error("Only(0) should be false for the empty set")
	}
}

func TestSharerSetOthers(t *testing.T) {
	s := NewSharerSet(0, 1, 2, 3)
	o := s.Others(1)
	if o.Contains(1) {
		t.Error("Others(1) should not contain 1")
	}
	if o.Count() != 3 {
		t.Errorf("Others(1).Count() = %d, want 3", o.Count())
	}
	// Others of a non-member leaves the set unchanged.
	if NewSharerSet(0, 2).Others(3) != NewSharerSet(0, 2) {
		t.Error("Others of a non-member changed the set")
	}
}

func TestSharerSetSocketsOrdered(t *testing.T) {
	s := NewSharerSet(3, 0, 2)
	got := s.Sockets()
	want := []int{0, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("Sockets() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sockets() = %v, want %v", got, want)
		}
	}
}

func TestSharerSetString(t *testing.T) {
	if got := NewSharerSet(0, 3).String(); got != "{0,3}" {
		t.Errorf("String() = %q, want %q", got, "{0,3}")
	}
	if got := SharerSet(0).String(); got != "{}" {
		t.Errorf("empty String() = %q, want %q", got, "{}")
	}
}

func TestSharerSetUnion(t *testing.T) {
	a := NewSharerSet(0, 1)
	b := NewSharerSet(1, 3)
	u := a.Union(b)
	if u != NewSharerSet(0, 1, 3) {
		t.Errorf("Union = %v, want {0,1,3}", u)
	}
}

func TestSharerSetPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Add(-1) should panic")
		}
	}()
	SharerSet(0).Add(-1)
}

// Property: Add then Contains is always true, and Count never exceeds the
// number of distinct sockets added.
func TestSharerSetProperties(t *testing.T) {
	f := func(socketsRaw []uint8) bool {
		var s SharerSet
		distinct := map[int]bool{}
		for _, raw := range socketsRaw {
			sock := int(raw % MaxSockets)
			s = s.Add(sock)
			distinct[sock] = true
			if !s.Contains(sock) {
				return false
			}
		}
		return s.Count() == len(distinct)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Remove undoes Add for sockets that were not previously present.
func TestSharerSetAddRemoveProperty(t *testing.T) {
	f := func(base uint64, sockRaw uint8) bool {
		sock := int(sockRaw % MaxSockets)
		s := SharerSet(base).Remove(sock) // ensure absent
		return s.Add(sock).Remove(sock) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
