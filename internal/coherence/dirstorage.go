package coherence

import "c3d/internal/addr"

// This file implements the directory storage cost model used in §III-B of the
// paper to argue that an inclusive directory over DRAM caches is impractical:
// a 256 MB DRAM cache with a minimally-provisioned (1x) sparse directory needs
// ~16 MB of directory storage per socket, 32 MB at 2x provisioning, and 128 MB
// for a 1 GB cache.

// StorageParams describes the sizing inputs of a sparse directory.
type StorageParams struct {
	// TrackedCapacityBytes is the total cache capacity (across the levels the
	// directory is inclusive of) in ONE socket that the directory must be
	// able to track.
	TrackedCapacityBytes uint64
	// Sockets is the number of sockets; the sharing vector has one bit per
	// socket and every socket's cached blocks must be trackable.
	Sockets int
	// Provisioning is the over-provisioning factor of the sparse directory
	// (1 = minimally provisioned, 2 = the 2x used by AMD Magny-Cours and the
	// paper's baseline).
	Provisioning float64
	// TagBits is the number of address tag bits stored per entry. The
	// paper's arithmetic (16 MB of directory for a 256 MB cache at 1x, i.e.
	// 4 bytes per entry) corresponds to a set-associative sparse directory
	// whose tag is a ~46-bit physical address minus block-offset and
	// set-index bits, about 26 bits.
	TagBits int
	// StateBits is the number of stable/transient state bits per entry.
	StateBits int
}

// DefaultStorageParams returns the parameters that reproduce the §III-B
// storage numbers for a directory covering capacityBytes of cache per socket
// in a machine with the given number of sockets.
func DefaultStorageParams(capacityBytes uint64, sockets int, provisioning float64) StorageParams {
	return StorageParams{
		TrackedCapacityBytes: capacityBytes,
		Sockets:              sockets,
		Provisioning:         provisioning,
		TagBits:              26,
		StateBits:            2,
	}
}

// EntryBits returns the width of one directory entry in bits: tag + state +
// one sharing-vector bit per socket, rounded up to a whole byte.
func (p StorageParams) EntryBits() int {
	bits := p.TagBits + p.StateBits + p.Sockets
	if rem := bits % 8; rem != 0 {
		bits += 8 - rem
	}
	return bits
}

// EntriesRequired returns the number of directory entries needed: one per
// block that could be cached, times the provisioning factor. The directory is
// shared by all sockets' caches, but in a home-sliced organisation each
// socket's slice tracks the blocks homed there; the paper quotes per-socket
// storage assuming the slice must cover one socket's worth of cache capacity
// per remote socket — in steady state each slice tracks capacity*sockets/
// sockets = capacity blocks, so the per-slice requirement equals the blocks in
// one socket's cache, scaled by provisioning.
func (p StorageParams) EntriesRequired() uint64 {
	blocks := p.TrackedCapacityBytes / addr.BlockBytes
	return uint64(float64(blocks)*p.Provisioning + 0.5)
}

// StorageBytes returns the total directory storage per socket in bytes.
func (p StorageParams) StorageBytes() uint64 {
	return p.EntriesRequired() * uint64(p.EntryBits()) / 8
}

// StorageMB returns the storage requirement in mebibytes.
func (p StorageParams) StorageMB() float64 {
	return float64(p.StorageBytes()) / (1 << 20)
}

// InclusiveDirCost returns the per-socket storage (bytes) of a directory that
// must track DRAM-cache-resident blocks (the naive full-dir design of §III-B):
// it covers the DRAM cache plus the LLC.
func InclusiveDirCost(dramCacheBytes, llcBytes uint64, sockets int, provisioning float64) uint64 {
	p := DefaultStorageParams(dramCacheBytes+llcBytes, sockets, provisioning)
	return p.StorageBytes()
}

// NonInclusiveDirCost returns the per-socket storage (bytes) of C3D's
// directory, which tracks only on-chip (LLC and higher) blocks.
func NonInclusiveDirCost(llcBytes uint64, sockets int, provisioning float64) uint64 {
	p := DefaultStorageParams(llcBytes, sockets, provisioning)
	return p.StorageBytes()
}

// StorageSavings returns the fraction of directory storage saved by C3D's
// non-inclusive directory compared with an inclusive directory over the DRAM
// cache, for the given capacities.
func StorageSavings(dramCacheBytes, llcBytes uint64, sockets int, provisioning float64) float64 {
	incl := InclusiveDirCost(dramCacheBytes, llcBytes, sockets, provisioning)
	noninc := NonInclusiveDirCost(llcBytes, sockets, provisioning)
	if incl == 0 {
		return 0
	}
	return 1 - float64(noninc)/float64(incl)
}
