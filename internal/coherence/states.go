// Package coherence provides the vocabulary and bookkeeping structures shared
// by every coherence protocol engine in the simulator: MSI line states, the
// socket-grain sharer set, the global-directory structures (sparse and full),
// the message taxonomy used for traffic accounting, and the directory storage
// cost model from §III-B of the C3D paper.
//
// The package deliberately contains no timing: protocol engines (in
// internal/machine and internal/core) decide which messages travel where and
// ask the interconnect and memory models what that costs. This keeps the
// correctness-relevant state transitions testable in isolation.
package coherence

import (
	"fmt"

	"c3d/internal/cache"
)

// Line-level MSI states stored in cache.Line.State. Every cache in the
// hierarchy (L1, LLC, DRAM cache) uses this encoding so that protocol engines
// can probe any level without translation.
const (
	// LineInvalid means the block is not present (same as cache.StateInvalid).
	LineInvalid cache.State = 0
	// LineShared means the block is present read-only and memory is up to
	// date unless some other cache holds it Modified.
	LineShared cache.State = 1
	// LineModified means the block is present with write permission and may
	// be dirty with respect to memory.
	LineModified cache.State = 2
)

// LineStateName returns a human-readable name for a line-level state.
func LineStateName(s cache.State) string {
	switch s {
	case LineInvalid:
		return "I"
	case LineShared:
		return "S"
	case LineModified:
		return "M"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// DirState is the stable state of a global-directory entry. The C3D global
// directory (Fig. 5 of the paper) and the baseline/full directories all use
// the same three stable states; what differs between designs is which caches
// an entry covers and what an absent entry (Invalid) implies.
type DirState uint8

const (
	// DirInvalid: no directory entry. In an inclusive directory this means
	// the block is uncached; in C3D's non-inclusive directory it only means
	// the block is not cached in any on-chip cache and memory is not stale
	// (clean DRAM caches may still hold copies).
	DirInvalid DirState = iota
	// DirShared: one or more sockets hold the block read-only; the sharing
	// vector is a superset of the true sharers (silent evictions allowed).
	DirShared
	// DirModified: exactly one socket holds the block with write permission
	// in its on-chip hierarchy; memory may be stale.
	DirModified
)

func (s DirState) String() string {
	switch s {
	case DirInvalid:
		return "I"
	case DirShared:
		return "S"
	case DirModified:
		return "M"
	default:
		return fmt.Sprintf("DirState(%d)", uint8(s))
	}
}

// MsgType enumerates the coherence messages exchanged between sockets. The
// set mirrors the protocol description in §IV-C plus the messages needed by
// the naive snoopy and full-directory designs of §III.
type MsgType uint8

const (
	// MsgGetS is a read request forwarded to the home directory after a miss
	// in the requesting socket.
	MsgGetS MsgType = iota
	// MsgGetX is a write (read-for-ownership) request.
	MsgGetX
	// MsgUpgrade is a write request by a socket that already holds the block
	// in Shared; the response carries no data.
	MsgUpgrade
	// MsgPutX is a write-back of a Modified block (LLC eviction, downgrade
	// response, or invalidation response carrying data).
	MsgPutX
	// MsgFwdGetS is the home directory forwarding a read request to the
	// owning socket.
	MsgFwdGetS
	// MsgFwdGetX is the home directory forwarding a write request to the
	// owning socket.
	MsgFwdGetX
	// MsgInv is an invalidation request sent to a sharer (or broadcast to
	// all DRAM caches for untracked blocks in C3D).
	MsgInv
	// MsgInvAck acknowledges an invalidation.
	MsgInvAck
	// MsgData carries a cache block to the requester.
	MsgData
	// MsgDataMem carries a cache block read from memory to the requester.
	MsgDataMem
	// MsgAck is a dataless acknowledgement (e.g. upgrade grant, write-back
	// ack).
	MsgAck
	// MsgSnoop is a snoopy-protocol probe of a remote socket's caches.
	MsgSnoop
	// MsgSnoopResp is the response to a snoop (hit/miss, possibly with
	// data).
	MsgSnoopResp
	// MsgWriteback is a data message writing a dirty block back to the home
	// memory (distinct from MsgPutX so traffic accounting can separate
	// directory write-backs from memory write-throughs).
	MsgWriteback
	// MsgRecall is a directory-initiated invalidation caused by a sparse
	// directory entry eviction.
	MsgRecall
)

var msgNames = [...]string{
	MsgGetS:      "GetS",
	MsgGetX:      "GetX",
	MsgUpgrade:   "Upgrade",
	MsgPutX:      "PutX",
	MsgFwdGetS:   "FwdGetS",
	MsgFwdGetX:   "FwdGetX",
	MsgInv:       "Inv",
	MsgInvAck:    "InvAck",
	MsgData:      "Data",
	MsgDataMem:   "DataMem",
	MsgAck:       "Ack",
	MsgSnoop:     "Snoop",
	MsgSnoopResp: "SnoopResp",
	MsgWriteback: "Writeback",
	MsgRecall:    "Recall",
}

func (m MsgType) String() string {
	if int(m) < len(msgNames) && msgNames[m] != "" {
		return msgNames[m]
	}
	return fmt.Sprintf("MsgType(%d)", uint8(m))
}

// NumMsgTypes is the number of distinct message types (useful for
// per-message-type counters).
const NumMsgTypes = int(MsgRecall) + 1

// CarriesData reports whether a message of this type carries a full cache
// block (and therefore travels as an 80-byte data packet rather than a
// 16-byte control packet).
func (m MsgType) CarriesData() bool {
	switch m {
	case MsgPutX, MsgData, MsgDataMem, MsgWriteback:
		return true
	default:
		return false
	}
}
