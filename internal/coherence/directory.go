package coherence

import (
	"fmt"

	"c3d/internal/addr"
	"c3d/internal/sim"
)

// Entry is one global-directory entry: the stable state of a block plus the
// socket-grain sharing vector. Owner is only meaningful in DirModified and
// names the single socket with write permission.
type Entry struct {
	State   DirState
	Sharers SharerSet
	Owner   int
}

// Owner socket as a sharer set (convenience for invalidation fan-out).
func (e Entry) OwnerSet() SharerSet {
	if e.State != DirModified {
		return 0
	}
	return NewSharerSet(e.Owner)
}

// DirConfig describes one socket's slice of the global directory.
type DirConfig struct {
	// Name identifies the slice in diagnostics, e.g. "gdir0".
	Name string
	// Entries is the capacity of the slice. Zero means unlimited (the
	// idealised full directory of §III-B / the c3d-full-dir design, which the
	// paper models with "no recalls").
	Entries int
	// Ways is the associativity of a bounded directory. Ignored when
	// Entries is zero. Table II models a sparse 2x, 32-way directory.
	Ways int
	// AccessLatency is charged by the protocol engines per directory lookup
	// (10 cycles in Table II). The directory itself does not apply it; it is
	// carried here so machine configuration stays in one place.
	AccessLatency sim.Cycles
}

// DirStats counts directory activity.
type DirStats struct {
	Lookups     uint64
	Hits        uint64
	Misses      uint64
	Allocations uint64
	// Recalls counts entries evicted from a bounded (sparse) directory to
	// make room for a new allocation. Each recall forces invalidation of the
	// tracked copies, which the protocol engine must perform.
	Recalls uint64
	Updates uint64
	Removes uint64
}

// Directory is one socket's slice of the global directory: a mapping from
// block to Entry. With Entries == 0 it behaves as an unbounded full map
// (no recalls); otherwise it is a sparse set-associative structure whose
// evictions the caller must turn into recall invalidations.
type Directory struct {
	cfg   DirConfig
	stats DirStats

	// Unbounded storage.
	unbounded map[addr.Block]Entry

	// Bounded (sparse) storage.
	sets    int
	ways    int
	setMask uint64
	lines   []dirLine
	tick    uint64

	// stale, when set, reports whether a tracked block is no longer cached
	// anywhere, letting the replacement policy victimise stale entries
	// before live ones (see SetStalePredicate).
	stale func(addr.Block) bool
}

type dirLine struct {
	block   addr.Block
	entry   Entry
	valid   bool
	lastUse uint64
}

// Recall describes an entry evicted from a sparse directory. The protocol
// engine must invalidate the copies it tracks before reusing the slot.
type Recall struct {
	Block addr.Block
	Entry Entry
	Valid bool
}

// NewDirectory builds a directory slice from cfg. It panics on invalid
// bounded geometry.
func NewDirectory(cfg DirConfig) *Directory {
	d := &Directory{cfg: cfg}
	if cfg.Entries <= 0 {
		d.unbounded = make(map[addr.Block]Entry)
		return d
	}
	if cfg.Ways <= 0 {
		panic(fmt.Sprintf("coherence: directory %s: ways must be positive", cfg.Name))
	}
	if cfg.Entries%cfg.Ways != 0 {
		panic(fmt.Sprintf("coherence: directory %s: %d entries not divisible by %d ways", cfg.Name, cfg.Entries, cfg.Ways))
	}
	sets := cfg.Entries / cfg.Ways
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("coherence: directory %s: number of sets %d must be a power of two", cfg.Name, sets))
	}
	d.sets = sets
	d.ways = cfg.Ways
	d.setMask = uint64(sets - 1)
	d.lines = make([]dirLine, sets*cfg.Ways)
	return d
}

// Config returns the configuration the directory was built with.
func (d *Directory) Config() DirConfig { return d.cfg }

// SetStalePredicate installs a callback that reports whether a tracked block
// has already left every cache covered by this directory. Caches evict clean
// blocks silently, so a sparse directory accumulates entries for blocks that
// are long gone; without help its LRU victim is frequently a *live* entry
// whose recall needlessly invalidates cached data. Real designs mitigate this
// with eviction hints or by probing before recalling — the predicate models
// that ability. A nil predicate (the default) falls back to pure LRU.
func (d *Directory) SetStalePredicate(fn func(addr.Block) bool) { d.stale = fn }

// Unbounded reports whether the directory has unlimited capacity.
func (d *Directory) Unbounded() bool { return d.unbounded != nil }

// Stats returns a snapshot of the activity counters.
func (d *Directory) Stats() DirStats { return d.stats }

// ResetStats clears the activity counters without touching contents.
func (d *Directory) ResetStats() { d.stats = DirStats{} }

// Reset empties the directory and clears its counters, returning it to the
// just-constructed state (used when a machine is reused across runs). The
// stale predicate survives: it is part of the machine's wiring, not of the
// tracked state.
func (d *Directory) Reset() {
	d.stats = DirStats{}
	if d.unbounded != nil {
		clear(d.unbounded)
		return
	}
	clear(d.lines)
	d.tick = 0
}

// Lookup returns the entry for block b and whether one exists. A missing
// entry means DirInvalid.
func (d *Directory) Lookup(b addr.Block) (Entry, bool) {
	d.stats.Lookups++
	if d.unbounded != nil {
		e, ok := d.unbounded[b]
		if ok {
			d.stats.Hits++
		} else {
			d.stats.Misses++
		}
		return e, ok
	}
	set := d.set(b)
	for i := range set {
		if set[i].valid && set[i].block == b {
			d.tick++
			set[i].lastUse = d.tick
			d.stats.Hits++
			return set[i].entry, true
		}
	}
	d.stats.Misses++
	return Entry{}, false
}

// Probe is like Lookup but does not update LRU order or statistics.
func (d *Directory) Probe(b addr.Block) (Entry, bool) {
	if d.unbounded != nil {
		e, ok := d.unbounded[b]
		return e, ok
	}
	set := d.set(b)
	for i := range set {
		if set[i].valid && set[i].block == b {
			return set[i].entry, true
		}
	}
	return Entry{}, false
}

// Update stores entry for block b, allocating a slot if necessary. If the
// block is absent and the directory is sparse and the set is full, the LRU
// entry is evicted and returned as a recall that the caller must act on.
// Storing an entry in DirInvalid state removes the block instead.
func (d *Directory) Update(b addr.Block, e Entry) Recall {
	if e.State == DirInvalid {
		d.Remove(b)
		return Recall{}
	}
	d.stats.Updates++
	if d.unbounded != nil {
		if _, ok := d.unbounded[b]; !ok {
			d.stats.Allocations++
		}
		d.unbounded[b] = e
		return Recall{}
	}
	set := d.set(b)
	// Present: update in place.
	for i := range set {
		if set[i].valid && set[i].block == b {
			d.tick++
			set[i].entry = e
			set[i].lastUse = d.tick
			return Recall{}
		}
	}
	d.stats.Allocations++
	// Free way?
	victim := -1
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
	}
	var recall Recall
	if victim < 0 {
		// Prefer the least recently used *stale* entry (its block has left
		// every cache, so no recall invalidation is needed); fall back to
		// plain LRU when every entry is still live or no predicate is set.
		lru, lruStale := 0, -1
		for i := 1; i < len(set); i++ {
			if set[i].lastUse < set[lru].lastUse {
				lru = i
			}
		}
		if d.stale != nil {
			for i := range set {
				if d.stale(set[i].block) && (lruStale < 0 || set[i].lastUse < set[lruStale].lastUse) {
					lruStale = i
				}
			}
		}
		if lruStale >= 0 {
			victim = lruStale
		} else {
			victim = lru
			recall = Recall{Block: set[victim].block, Entry: set[victim].entry, Valid: true}
			d.stats.Recalls++
		}
	}
	d.tick++
	set[victim] = dirLine{block: b, entry: e, valid: true, lastUse: d.tick}
	return recall
}

// Remove deletes the entry for block b if present and reports whether it was
// present.
func (d *Directory) Remove(b addr.Block) bool {
	if d.unbounded != nil {
		if _, ok := d.unbounded[b]; ok {
			delete(d.unbounded, b)
			d.stats.Removes++
			return true
		}
		return false
	}
	set := d.set(b)
	for i := range set {
		if set[i].valid && set[i].block == b {
			set[i] = dirLine{}
			d.stats.Removes++
			return true
		}
	}
	return false
}

// Entries returns the number of valid entries currently stored. Intended for
// tests and reporting.
func (d *Directory) Entries() int {
	if d.unbounded != nil {
		return len(d.unbounded)
	}
	n := 0
	for i := range d.lines {
		if d.lines[i].valid {
			n++
		}
	}
	return n
}

// ForEach calls fn for every (block, entry) pair. Iteration order over an
// unbounded directory is unspecified; tests that need determinism should use
// a bounded directory or sort the results.
func (d *Directory) ForEach(fn func(addr.Block, Entry)) {
	if d.unbounded != nil {
		for b, e := range d.unbounded {
			fn(b, e)
		}
		return
	}
	for i := range d.lines {
		if d.lines[i].valid {
			fn(d.lines[i].block, d.lines[i].entry)
		}
	}
}

func (d *Directory) set(b addr.Block) []dirLine {
	// XOR-fold the block number before masking. A home-sliced directory only
	// ever sees blocks whose page-interleave bits match its socket, so using
	// the raw low bits would leave most sets unused; folding higher bits in
	// spreads the tracked blocks across every set.
	h := uint64(b)
	h ^= h >> 8
	h ^= h >> 16
	s := int(h & d.setMask)
	return d.lines[s*d.ways : (s+1)*d.ways]
}
