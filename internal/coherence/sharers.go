package coherence

import (
	"fmt"
	"math/bits"
	"strings"
)

// SharerSet is a socket-grain sharing vector: bit i set means socket i may
// hold a copy of the block. The paper's configurations never exceed four
// sockets, but the type supports up to 64.
type SharerSet uint64

// MaxSockets is the largest socket id representable in a SharerSet.
const MaxSockets = 64

// NewSharerSet builds a set containing the given sockets.
func NewSharerSet(sockets ...int) SharerSet {
	var s SharerSet
	for _, sock := range sockets {
		s = s.Add(sock)
	}
	return s
}

func checkSocket(socket int) {
	if socket < 0 || socket >= MaxSockets {
		panic(fmt.Sprintf("coherence: socket %d out of range [0,%d)", socket, MaxSockets))
	}
}

// Add returns the set with socket included.
func (s SharerSet) Add(socket int) SharerSet {
	checkSocket(socket)
	return s | (1 << uint(socket))
}

// Remove returns the set with socket excluded.
func (s SharerSet) Remove(socket int) SharerSet {
	checkSocket(socket)
	return s &^ (1 << uint(socket))
}

// Contains reports whether socket is in the set.
func (s SharerSet) Contains(socket int) bool {
	checkSocket(socket)
	return s&(1<<uint(socket)) != 0
}

// Count returns the number of sockets in the set.
func (s SharerSet) Count() int { return bits.OnesCount64(uint64(s)) }

// Empty reports whether the set has no members.
func (s SharerSet) Empty() bool { return s == 0 }

// Only reports whether the set contains exactly the given socket.
func (s SharerSet) Only(socket int) bool {
	checkSocket(socket)
	return s == 1<<uint(socket)
}

// Others returns the set with socket removed — the sockets that must receive
// invalidations when socket itself is the writer.
func (s SharerSet) Others(socket int) SharerSet { return s.Remove(socket) }

// ForEach calls fn for every socket in the set, in ascending order.
func (s SharerSet) ForEach(fn func(socket int)) {
	v := uint64(s)
	for v != 0 {
		i := bits.TrailingZeros64(v)
		fn(i)
		v &^= 1 << uint(i)
	}
}

// Sockets returns the members in ascending order.
func (s SharerSet) Sockets() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) { out = append(out, i) })
	return out
}

// Union returns the union of two sets.
func (s SharerSet) Union(o SharerSet) SharerSet { return s | o }

// String renders the set like "{0,2,3}".
func (s SharerSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
	})
	b.WriteByte('}')
	return b.String()
}
