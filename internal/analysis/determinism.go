package analysis

import (
	"go/ast"
	"go/types"
)

// determinismScope lists the result-producing packages: everything whose
// output feeds the byte-compared artefacts (simulation results, sweep JSON,
// model-check reports, trace statistics, SDK result documents). Service
// plumbing (internal/server, internal/campaign, internal/faultify) is
// deliberately out of scope — wall-clock time and scheduling nondeterminism
// are part of its job, and its determinism obligations (result bytes) are
// enforced where the bytes are produced.
var determinismScope = map[string]bool{
	"c3d":                        true,
	"c3d/internal/machine":       true,
	"c3d/internal/mc":            true,
	"c3d/internal/sample":        true,
	"c3d/internal/sweep":         true,
	"c3d/internal/experiments":   true,
	"c3d/internal/stats":         true,
	"c3d/internal/trace":         true,
	"c3d/internal/workload":      true,
	"c3d/internal/wspec":         true,
	"c3d/internal/wspec/presets": true,
	"c3d/pkg/c3d":                true,
}

// globalRandFuncs are the math/rand top-level functions that draw from the
// package-global, possibly-unseeded source. Constructors (New, NewSource,
// NewZipf) are fine: a *rand.Rand built from an explicit seed is exactly how
// deterministic code is supposed to get randomness.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
	// math/rand/v2 additions, should the import ever appear.
	"N": true, "IntN": true, "Int32": true, "Int32N": true, "Int64": true,
	"Int64N": true, "UintN": true, "Uint64N": true,
}

// wallClockFuncs are the time functions that read the wall clock. Only
// calls are flagged: a bare reference to time.Now is the injected-clock
// idiom (campaign's tokenBucket stores `now: time.Now` and tests swap it),
// which is precisely the pattern this analyzer wants code to use.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// DeterminismAnalyzer enforces the repo's headline guarantee — byte-identical
// results at any parallelism — at the source level, in the packages that
// produce result bytes.
var DeterminismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc: `flag iteration-order and wall-clock nondeterminism in result-producing packages

Reports, in the packages whose output is byte-compared (internal/machine, mc,
sample, sweep, experiments, stats, trace, workload, wspec and its presets,
pkg/c3d and the module root):

  - range over a map: iteration order is random per execution; iterate a
    sorted key slice instead
  - calls to math/rand's top-level functions: they draw from the global
    source; build a seeded *rand.Rand
  - calls to time.Now / time.Since / time.Until: wall-clock reads; inject a
    clock (store time.Now in a func field, as campaign's tokenBucket does)

A bare reference to time.Now (not a call) is the injection pattern and is
never flagged. Genuinely order- or time-insensitive sites carry
//c3dlint:allow determinism(reason).`,
	Run: runDeterminism,
}

func runDeterminism(pass *Pass) error {
	if !determinismScope[pass.Pkg.Path] {
		return nil
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if tv, ok := info.Types[n.X]; ok && tv.Type != nil {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						pass.Reportf(n.Pos(), "range over map %s has nondeterministic iteration order; iterate sorted keys, or annotate //c3dlint:allow determinism(reason) if order cannot reach the result", types.ExprString(n.X))
					}
				}
			case *ast.CallExpr:
				pkgPath, name := calleePackageFunc(info, n)
				switch {
				case (pkgPath == "math/rand" || pkgPath == "math/rand/v2") && globalRandFuncs[name]:
					pass.Reportf(n.Pos(), "rand.%s draws from the global (unseeded) source; use a seeded *rand.Rand", name)
				case pkgPath == "time" && wallClockFuncs[name]:
					pass.Reportf(n.Pos(), "time.%s reads the wall clock in a result-producing package; inject a clock (the tokenBucket.now pattern), or annotate //c3dlint:allow determinism(reason) if the value cannot reach the result", name)
				}
			}
			return true
		})
	}
	return nil
}

// calleePackageFunc resolves a call of the form pkg.Fn(...) to the imported
// package path and function name; it returns "" for anything else (method
// calls, locally-defined functions, calls through variables).
func calleePackageFunc(info *types.Info, call *ast.CallExpr) (pkgPath, name string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	ident, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	pn, ok := info.Uses[ident].(*types.PkgName)
	if !ok {
		return "", ""
	}
	return pn.Imported().Path(), sel.Sel.Name
}
