package analysis

import "testing"

func TestCtxCheckFixture(t *testing.T) {
	runFixture(t, CtxCheckAnalyzer, "ctxcheck/mc", "c3d/internal/mc")
}

func TestCtxCheckOutOfScope(t *testing.T) {
	// The same code outside the context-threaded packages is not flagged —
	// load the fixture under an unscoped path and expect zero findings.
	l := sharedLoader(t)
	pkg, err := l.LoadDir("testdata/ctxcheck/mc", "c3d/internal/unscoped")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags, err := RunAnalyzers(l.Fset(), []*Package{pkg}, []*Analyzer{CtxCheckAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("out-of-scope package produced findings: %v", diags)
	}
}

func TestCtxCheckNegativeFixtureFails(t *testing.T) {
	requireFindings(t, CtxCheckAnalyzer, "ctxcheck/mc", "c3d/internal/mc", 3)
}
