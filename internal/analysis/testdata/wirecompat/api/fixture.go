// Package api is a wirecompat fixture, loaded as c3d/pkg/c3d/api: every
// exported field needs an explicit json tag and imports must be stdlib-only.
package api

import (
	"time"

	_ "c3d/internal/addr" // want "must stay stdlib-only"
)

// Good is fully tagged: clean.
type Good struct {
	ID      string    `json:"id"`
	Created time.Time `json:"created,omitzero"`
	// Internal is explicitly kept off the wire: clean.
	Internal string `json:"-"`
	// unexported fields never marshal: clean.
	hidden int
}

// Bad collects every way a field can reach the wire implicitly.
type Bad struct {
	Untagged  string // want "Bad.Untagged has no struct tag"
	NoJSONKey string `yaml:"x"`          // want "Bad.NoJSONKey has a struct tag but no json key"
	EmptyName string `json:",omitempty"` // want "Bad.EmptyName has a json tag with an empty name"
}

func (g Good) use() int { return g.hidden }
