// Package misuse exercises the directive parser: a silence needs a reason,
// and an unknown directive shape is itself a finding.
package misuse

import "time"

// EmptyReason fails to silence (the directive is malformed) and reports the
// malformed directive too.
func EmptyReason() time.Time {
	//c3dlint:allow determinism() // want "allow directive for \"determinism\" needs a non-empty reason"
	return time.Now() // want "time.Now reads the wall clock"
}

// UnknownShape is not an allow directive at all.
func UnknownShape() int {
	//c3dlint:ignore determinism // want "malformed directive"
	return 0
}

// GoodReason silences cleanly.
func GoodReason() time.Time {
	//c3dlint:allow determinism(timestamp feeds a log line, never result bytes)
	return time.Now()
}
