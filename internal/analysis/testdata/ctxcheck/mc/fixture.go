// Package mc is a ctxcheck fixture, loaded as c3d/internal/mc (a
// context-threaded package).
package mc

import "context"

func work() int { return 0 }

func threaded(ctx context.Context) error { return ctx.Err() }

// BadUnboundedLoop calls functions forever without a cancellation path:
// flagged.
func BadUnboundedLoop() int {
	total := 0
	for { // want "long-running loop has no reachable cancellation check"
		total += work()
		if total > 1<<20 {
			return total
		}
	}
}

// BadCondLoop is condition-bounded in name only: flagged.
func BadCondLoop(done *bool) int {
	total := 0
	for !*done { // want "long-running loop has no reachable cancellation check"
		total += work()
	}
	return total
}

// BadChannelRange receives forever without a cancellation path: flagged.
func BadChannelRange(ch chan int) int {
	total := 0
	for v := range ch { // want "long-running loop has no reachable cancellation check"
		total += v + work()
	}
	return total
}

// GoodErrCheck polls ctx.Err: clean.
func GoodErrCheck(ctx context.Context) int {
	total := 0
	for {
		if ctx.Err() != nil {
			return total
		}
		total += work()
	}
}

// GoodSelectDone parks on ctx.Done: clean.
func GoodSelectDone(ctx context.Context, ch chan int) int {
	total := 0
	for {
		select {
		case v := <-ch:
			total += v
		case <-ctx.Done():
			return total
		}
	}
}

// GoodThreadedCall calls a function that takes the context — cancellation
// is checked on the callee's side: clean.
func GoodThreadedCall(ctx context.Context) error {
	for {
		if err := threaded(ctx); err != nil {
			return err
		}
	}
}

// GoodCounterLoop is bounded by its header: clean.
func GoodCounterLoop(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += work()
	}
	return total
}

// GoodProbeLoop neither calls nor blocks — an index probe: clean.
func GoodProbeLoop(table []uint64, h uint64) int {
	mask := uint64(len(table) - 1)
	i := h & mask
	for {
		if table[i] == h {
			return int(i)
		}
		i = (i + 1) & mask
	}
}

// AllowedLoop is annotated with a reason: suppressed.
func AllowedLoop(ch chan int) int {
	total := 0
	//c3dlint:allow ctxcheck(drains an already-closed channel; bounded by buffered elements)
	for v := range ch {
		total += v + work()
	}
	return total
}
