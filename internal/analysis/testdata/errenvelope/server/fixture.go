// Package server is an errenvelope fixture, loaded as c3d/internal/server:
// API errors may only leave through the envelope helpers.
package server

import (
	"encoding/json"
	"net/http"
)

type errorEnvelope struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// writeJSON is an envelope helper: its WriteHeader takes the caller's
// status and is exempt even for constant arguments.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// writeError is the uniform error envelope: exempt.
func writeError(w http.ResponseWriter, status int, code, msg string) {
	var env errorEnvelope
	env.Error.Code = code
	env.Error.Message = msg
	writeJSON(w, status, env)
}

// BadRawError uses http.Error: flagged.
func BadRawError(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "nope", http.StatusBadRequest) // want "http.Error bypasses the error envelope"
}

// BadRawStatus writes a constant error status by hand: flagged.
func BadRawStatus(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusInternalServerError) // want "WriteHeader\\(500\\) writes an error status outside the envelope helpers"
	w.Write([]byte("boom"))
}

// GoodSuccessStatus writes a 2xx by hand, which is not an error path: clean.
func GoodSuccessStatus(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	w.Write([]byte("{}"))
}

// GoodEnvelope goes through the helper: clean.
func GoodEnvelope(w http.ResponseWriter, r *http.Request) {
	writeError(w, http.StatusNotFound, "not_found", "unknown job")
}

// AllowedRawStatus serves a non-error document on an error status, with the
// justification in the directive: suppressed.
func AllowedRawStatus(w http.ResponseWriter, r *http.Request) {
	//c3dlint:allow errenvelope(body is a result document, not an error)
	w.WriteHeader(http.StatusUnprocessableEntity)
	w.Write([]byte("{}"))
}
