// Package machine is a determinism fixture, loaded as c3d/internal/machine
// (an in-scope, result-producing path).
package machine

import (
	"math/rand"
	"sort"
	"time"
)

// BadMapRange iterates a map directly: flagged.
func BadMapRange(m map[string]int) int {
	sum := 0
	for k, v := range m { // want "range over map m has nondeterministic iteration order"
		sum += len(k) + v
	}
	return sum
}

// GoodSortedRange iterates sorted keys: clean.
func GoodSortedRange(m map[string]int) []int {
	keys := make([]string, 0, len(m))
	//c3dlint:allow determinism(collection only; keys are sorted immediately below)
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]int, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

// BadGlobalRand draws from the global source: flagged.
func BadGlobalRand() int {
	return rand.Intn(10) // want "rand.Intn draws from the global \\(unseeded\\) source"
}

// GoodSeededRand builds a seeded generator: clean.
func GoodSeededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// BadWallClock calls time.Now: flagged. So is the time.Since shorthand.
func BadWallClock() time.Duration {
	start := time.Now()      // want "time.Now reads the wall clock"
	return time.Since(start) // want "time.Since reads the wall clock"
}

// GoodInjectedClock references time.Now without calling it — the
// tokenBucket.now injection pattern: clean.
type GoodInjectedClock struct {
	now func() time.Time
}

// NewGoodInjectedClock stores the clock; tests swap it.
func NewGoodInjectedClock() *GoodInjectedClock {
	return &GoodInjectedClock{now: time.Now}
}

// AllowedWallClock is annotated with a reason: suppressed.
func AllowedWallClock() time.Time {
	//c3dlint:allow determinism(feeds a progress message only, never result bytes)
	return time.Now()
}
