// Package outofscope is a determinism fixture loaded under a path that is
// not result-producing: nothing here may be flagged.
package outofscope

import "time"

// MapRangeIsFine is unordered but out of scope.
func MapRangeIsFine(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

// WallClockIsFine reads the clock but is out of scope.
func WallClockIsFine() time.Time {
	return time.Now()
}
