// Package designs is a registry fixture: Register-style calls are legal
// only at package initialisation.
package designs

import "fmt"

var reg = map[string]int{}

// RegisterDesign is the panic-on-duplicate registry entry point.
func RegisterDesign(name string, rank int) {
	if _, dup := reg[name]; dup {
		panic(fmt.Sprintf("duplicate design %q", name))
	}
	reg[name] = rank
}

// RegisterBuiltins is a Register wrapper: calls inside it are legal.
func RegisterBuiltins() {
	RegisterDesign("baseline", 0)
	RegisterDesign("c3d", 1)
}

func init() {
	RegisterDesign("snoopy", 2) // legal: init
	RegisterBuiltins()          // legal: wrapper called from init
}

// Package-level initialisers run at init time: legal.
var _ = registerOne()

func registerOne() bool {
	RegisterDesign("fulldir", 3) // legal: lowercase register helper
	return true
}

// LoadPlugin registers at runtime: flagged.
func LoadPlugin(name string) {
	RegisterDesign(name, 99) // want "RegisterDesign called outside init"
}
