// Package workloads is a registry fixture mirroring the open workload
// registry: a bare Register entry point plus a spec-compiling wrapper (the
// wspec.RegisterPresets shape), legal only at package initialisation.
package workloads

import "fmt"

// Spec is a stand-in for workload.Spec.
type Spec struct {
	Name string
	Seed int64
}

var reg = map[string]Spec{}

// Register is the panic-on-duplicate registry entry point.
func Register(s Spec) {
	if _, dup := reg[s.Name]; dup {
		panic(fmt.Sprintf("workload %q registered twice", s.Name))
	}
	reg[s.Name] = s
}

// RegisterPresets is a Register wrapper (the wspec preset-library shape):
// calls inside it are legal because it is itself Register-named.
func RegisterPresets(specs []Spec) {
	for _, s := range specs {
		Register(s)
	}
}

func init() {
	Register(Spec{Name: "facesim", Seed: 101}) // legal: init
	RegisterPresets([]Spec{{Name: "multitenant-mix", Seed: 901}})
}

// Package-level initialisers run at init time: legal.
var _ = registerExtras()

func registerExtras() bool {
	Register(Spec{Name: "mcf", Seed: 110}) // legal: lowercase register helper
	return true
}

// LoadWorkloadFile compiles and registers a spec at runtime: flagged.
func LoadWorkloadFile(name string) {
	Register(Spec{Name: name}) // want "Register called outside init"
}
