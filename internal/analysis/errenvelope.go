package analysis

import (
	"go/ast"
	"go/constant"
)

// envelopeScope lists the packages that implement HTTP handlers for the
// public API: the worker daemon and the campaign coordinator.
var envelopeScope = map[string]bool{
	"c3d/internal/server":   true,
	"c3d/internal/campaign": true,
}

// envelopeHelpers are the only functions allowed to touch the raw error
// plumbing: writeError produces the envelope, writeJSON sets the status code
// for it (and for success bodies).
var envelopeHelpers = map[string]bool{
	"writeJSON":  true,
	"writeError": true,
}

// ErrEnvelopeAnalyzer keeps every API error on the uniform envelope.
var ErrEnvelopeAnalyzer = &Analyzer{
	Name: "errenvelope",
	Doc: `HTTP handlers must write errors through the uniform envelope helper

Clients branch on the machine-readable code in {"error":{"code","message"}};
a raw http.Error or a hand-rolled WriteHeader(4xx/5xx)+body hands them an
unparseable response. In internal/server and internal/campaign, handlers may
not call http.Error at all, and may only pass a constant status >= 400 to
WriteHeader inside the envelope helpers themselves (writeJSON/writeError).
The one legitimate exception — a failed job whose body is a result document,
not an error — is annotated //c3dlint:allow errenvelope(reason).`,
	Run: runErrEnvelope,
}

func runErrEnvelope(pass *Pass) error {
	if !envelopeScope[pass.Pkg.Path] {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		var stack []*ast.FuncDecl
		var walk func(n ast.Node)
		walk = func(n ast.Node) {
			ast.Inspect(n, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncDecl:
					stack = append(stack, n)
					if n.Body != nil {
						walk(n.Body)
					}
					stack = stack[:len(stack)-1]
					return false
				case *ast.CallExpr:
					checkErrWrite(pass, stack, n)
				}
				return true
			})
		}
		walk(f)
	}
	return nil
}

func checkErrWrite(pass *Pass, stack []*ast.FuncDecl, call *ast.CallExpr) {
	info := pass.Pkg.Info
	if pkgPath, name := calleePackageFunc(info, call); pkgPath == "net/http" && name == "Error" {
		pass.Reportf(call.Pos(), "http.Error bypasses the error envelope; use writeError so clients get {\"error\":{code,message}}")
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "WriteHeader" || len(call.Args) != 1 {
		return
	}
	// Only flag constant error statuses: a variable status is the envelope
	// helper's parameterisation, which is exactly where it belongs.
	tv, ok := info.Types[call.Args[0]]
	if !ok || tv.Value == nil {
		return
	}
	status, ok := constant.Int64Val(constant.ToInt(tv.Value))
	if !ok || status < 400 {
		return
	}
	if len(stack) > 0 && envelopeHelpers[stack[len(stack)-1].Name.Name] {
		return
	}
	pass.Reportf(call.Pos(), "WriteHeader(%d) writes an error status outside the envelope helpers; use writeError, or annotate //c3dlint:allow errenvelope(reason) if the body is not an error document", status)
}
