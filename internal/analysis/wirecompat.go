package analysis

import (
	"go/ast"
	"reflect"
	"strconv"
	"strings"
)

// wireScope is the frozen wire-contract package. The runtime compat test
// pins every field name; this analyzer adds the compile-time half of the
// guarantee: no field can reach the wire with an implicit (field-name-derived)
// JSON key, and the package can never grow a dependency that would drag
// simulator code into every client build.
var wireScope = map[string]bool{
	"c3d/pkg/c3d/api": true,
}

// WireCompatAnalyzer guards the public wire contract of pkg/c3d/api.
var WireCompatAnalyzer = &Analyzer{
	Name: "wirecompat",
	Doc: `pkg/c3d/api must tag every exported field and stay stdlib-only

Every exported field of every struct declared in the wire package needs an
explicit json struct tag ("-" counts: it is an explicit decision to keep the
field off the wire). An untagged field marshals under its Go name, which
silently becomes wire format the moment it ships. The package's imports must
all be standard library: clients import it to talk to a daemon, not to link
the simulator.`,
	Run: runWireCompat,
}

func runWireCompat(pass *Pass) error {
	if !wireScope[pass.Pkg.Path] {
		return nil
	}
	modPrefix := modulePrefix(pass.Pkg.Path)
	for _, f := range pass.Pkg.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if !stdlibImport(path, modPrefix) {
				pass.Reportf(imp.Pos(), "wire package imports %q: pkg/c3d/api must stay stdlib-only so clients never link simulator code", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				checkWireField(pass, ts.Name.Name, field)
			}
			return true
		})
	}
	return nil
}

func checkWireField(pass *Pass, structName string, field *ast.Field) {
	// Embedded fields carry their own type's tags; a named exported field is
	// the wire surface being checked.
	names := field.Names
	if len(names) == 0 {
		return
	}
	var exported []string
	for _, n := range names {
		if n.IsExported() {
			exported = append(exported, n.Name)
		}
	}
	if len(exported) == 0 {
		return
	}
	if field.Tag == nil {
		pass.Reportf(field.Pos(), "%s.%s has no struct tag: every exported wire field needs an explicit json tag (use `json:\"-\"` to keep it off the wire)", structName, strings.Join(exported, ","))
		return
	}
	raw, err := strconv.Unquote(field.Tag.Value)
	if err != nil {
		pass.Reportf(field.Tag.Pos(), "%s.%s has an unparseable struct tag", structName, strings.Join(exported, ","))
		return
	}
	tag, ok := reflect.StructTag(raw).Lookup("json")
	if !ok {
		pass.Reportf(field.Tag.Pos(), "%s.%s has a struct tag but no json key: the wire name must be explicit", structName, strings.Join(exported, ","))
		return
	}
	if name, _, _ := strings.Cut(tag, ","); name == "" {
		pass.Reportf(field.Tag.Pos(), "%s.%s has a json tag with an empty name (%q): the field would marshal under its Go name", structName, strings.Join(exported, ","), tag)
	}
}

// stdlibImport reports whether path is a standard-library import: no module
// prefix and no dot in the first path element (the host part of any fetched
// module path).
func stdlibImport(path, modPrefix string) bool {
	if strings.HasPrefix(path+"/", modPrefix) {
		return false
	}
	first, _, _ := strings.Cut(path, "/")
	return !strings.Contains(first, ".")
}
