package analysis

import (
	"go/ast"
	"go/types"
	"strings"
	"unicode"
	"unicode/utf8"
)

// RegistryAnalyzer preserves the self-registration idiom from PR 5/6: every
// registry (designs, topologies, routing policies, fault plans) panics on
// duplicates, which is only safe because registration happens exactly once,
// at package initialisation. A Register call from ordinary runtime code
// turns that panic into a latent crash and makes the registry's contents
// order-dependent.
var RegistryAnalyzer = &Analyzer{
	Name: "registry",
	Doc: `Register-style calls may only appear in init functions

Calls to module functions named Register or RegisterXxx (machine.RegisterDesign,
interconnect.RegisterTopology, campaign.RegisterPolicy, faultify.Register, ...)
must be made from a func init() or from another Register wrapper that init
calls. Test files are not analyzed, so test-local registration (the
registry_test clone-design pattern) stays legal.`,
	Run: runRegistry,
}

func runRegistry(pass *Pass) error {
	modPrefix := modulePrefix(pass.Pkg.Path)
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		// Walk with an explicit enclosing-function stack so a call site can
		// be attributed to the FuncDecl it executes under.
		var stack []*ast.FuncDecl
		var walk func(n ast.Node)
		walk = func(n ast.Node) {
			ast.Inspect(n, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncDecl:
					stack = append(stack, n)
					if n.Body != nil {
						walk(n.Body)
					}
					stack = stack[:len(stack)-1]
					return false
				case *ast.CallExpr:
					fn := calleeFunc(info, n)
					if fn == nil || !isRegisterName(fn.Name()) {
						return true
					}
					if fn.Pkg() == nil || !strings.HasPrefix(fn.Pkg().Path()+"/", modPrefix) {
						return true
					}
					if registrationContextOK(stack) {
						return true
					}
					pass.Reportf(n.Pos(), "%s.%s called outside init: registries self-register at package initialisation (panic-on-duplicate is only safe there)", fn.Pkg().Name(), fn.Name())
				}
				return true
			})
		}
		walk(f)
	}
	return nil
}

// registrationContextOK reports whether the innermost enclosing FuncDecl is
// a legal registration site: func init(), or a Register wrapper itself
// (RegisterDesign validating then storing, a registerBuiltins helper named
// accordingly).
func registrationContextOK(stack []*ast.FuncDecl) bool {
	if len(stack) == 0 {
		// Package-level var initialiser: runs at init time.
		return true
	}
	fd := stack[len(stack)-1]
	if fd.Recv == nil && fd.Name.Name == "init" {
		return true
	}
	return isRegisterName(fd.Name.Name) || strings.HasPrefix(fd.Name.Name, "register")
}

// isRegisterName matches Register and RegisterXxx (exported wrappers).
func isRegisterName(name string) bool {
	if name == "Register" {
		return true
	}
	rest, ok := strings.CutPrefix(name, "Register")
	if !ok {
		return false
	}
	r, _ := utf8.DecodeRuneInString(rest)
	return unicode.IsUpper(r)
}

// calleeFunc resolves a call to the *types.Func it invokes, if the callee is
// a plain identifier or selector (not a call through a variable).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	default:
		return nil
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// modulePrefix returns the "c3d/" module prefix for a package path. Fixture
// packages loaded under synthetic paths share the same module namespace.
func modulePrefix(pkgPath string) string {
	if i := strings.Index(pkgPath, "/"); i >= 0 {
		return pkgPath[:i] + "/"
	}
	return pkgPath + "/"
}
