package analysis

import "testing"

func TestRegistryFixture(t *testing.T) {
	runFixture(t, RegistryAnalyzer, "registry/designs", "c3d/internal/designs")
}

func TestRegistryNegativeFixtureFails(t *testing.T) {
	requireFindings(t, RegistryAnalyzer, "registry/designs", "c3d/internal/designs", 1)
}
