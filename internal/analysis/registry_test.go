package analysis

import "testing"

func TestRegistryFixture(t *testing.T) {
	runFixture(t, RegistryAnalyzer, "registry/designs", "c3d/internal/designs")
}

func TestRegistryNegativeFixtureFails(t *testing.T) {
	requireFindings(t, RegistryAnalyzer, "registry/designs", "c3d/internal/designs", 1)
}

// The workloads fixture mirrors the open workload registry: a bare Register
// entry point plus the wspec.RegisterPresets wrapper shape.
func TestRegistryWorkloadsFixture(t *testing.T) {
	runFixture(t, RegistryAnalyzer, "registry/workloads", "c3d/internal/workloads")
}

func TestRegistryWorkloadsNegativeFixtureFails(t *testing.T) {
	requireFindings(t, RegistryAnalyzer, "registry/workloads", "c3d/internal/workloads", 1)
}
