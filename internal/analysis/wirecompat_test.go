package analysis

import "testing"

func TestWireCompatFixture(t *testing.T) {
	runFixture(t, WireCompatAnalyzer, "wirecompat/api", "c3d/pkg/c3d/api")
}

func TestWireCompatNegativeFixtureFails(t *testing.T) {
	requireFindings(t, WireCompatAnalyzer, "wirecompat/api", "c3d/pkg/c3d/api", 4)
}

// TestWireCompatRealPackageClean pins the production wire package itself:
// the frozen contract must satisfy its own compile-time guard.
func TestWireCompatRealPackageClean(t *testing.T) {
	l := sharedLoader(t)
	pkg, err := l.Load("c3d/pkg/c3d/api")
	if err != nil {
		t.Fatalf("loading pkg/c3d/api: %v", err)
	}
	diags, err := RunAnalyzers(l.Fset(), []*Package{pkg}, []*Analyzer{WireCompatAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("pkg/c3d/api violates its own wire guard: %v", diags)
	}
}
