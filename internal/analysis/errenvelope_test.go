package analysis

import "testing"

func TestErrEnvelopeFixture(t *testing.T) {
	runFixture(t, ErrEnvelopeAnalyzer, "errenvelope/server", "c3d/internal/server")
}

func TestErrEnvelopeNegativeFixtureFails(t *testing.T) {
	requireFindings(t, ErrEnvelopeAnalyzer, "errenvelope/server", "c3d/internal/server", 2)
}
