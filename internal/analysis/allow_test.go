package analysis

import "testing"

// TestAllowDirectiveMisuse runs the determinism analyzer over a fixture
// whose directives are deliberately broken: an empty reason must not
// silence anything and must itself be reported, as must unknown directive
// shapes. The well-formed directive in the same file must silence its line.
func TestAllowDirectiveMisuse(t *testing.T) {
	runFixture(t, DeterminismAnalyzer, "allow/misuse", "c3d/internal/stats")
}
