package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed and type-checked package: the unit every
// analyzer runs over. Only non-test files are loaded — the invariants the
// analyzers enforce are invariants of production code, and several of them
// (registry calls, time.Now) are deliberately legal in tests.
type Package struct {
	// Path is the import path ("c3d/internal/machine"). Analyzers scope
	// themselves by it.
	Path string
	// Dir is the directory the files were read from.
	Dir string
	// Files are the parsed non-test files, with comments.
	Files []*ast.File
	// Types and Info are the go/types view of the package.
	Types *types.Package
	Info  *types.Info
	// allows maps file name -> line -> allow directives on that line.
	allows map[string]map[int][]allowDirective
	// malformed collects c3dlint directives that fail to parse (most
	// importantly: an allow with an empty reason). They are reported as
	// findings so a silenced site can never lose its justification.
	malformed []Diagnostic
}

// Loader parses and type-checks module packages without the go/packages
// machinery: stdlib imports resolve through the compiler's source importer
// (GOROOT source, no network), module-local imports recurse through the
// loader itself. Everything is memoized, so loading all of ./... shares one
// type-checked view of the standard library.
type Loader struct {
	fset       *token.FileSet
	std        types.ImporterFrom
	ModulePath string
	ModuleDir  string
	pkgs       map[string]*Package
	loading    map[string]bool
}

// NewLoader builds a loader rooted at the module containing dir (the nearest
// parent with a go.mod).
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("no go.mod found above %s", abs)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	modpath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modpath = strings.TrimSpace(rest)
			break
		}
	}
	if modpath == "" {
		return nil, fmt.Errorf("no module line in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	return &Loader{
		fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		ModulePath: modpath,
		ModuleDir:  root,
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
	}, nil
}

// Fset returns the loader's shared file set; all diagnostic positions
// resolve through it.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom: module-local paths load through
// the loader, everything else through the stdlib source importer.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		p, err := l.load(path, l.dirFor(path), true)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}

func (l *Loader) dirFor(path string) string {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
	return filepath.Join(l.ModuleDir, filepath.FromSlash(rel))
}

// Load type-checks the package with the given import path rooted in the
// module, memoized across calls.
func (l *Loader) Load(path string) (*Package, error) {
	return l.load(path, l.dirFor(path), true)
}

// LoadDir type-checks the package in dir under the given import path. It is
// how the test harness loads fixture packages as if they lived at a
// production path, so path-scoped analyzers fire on them. Fixture packages
// are never memoized: the synthetic path must not shadow the real package
// in the loader's cache.
func (l *Loader) LoadDir(dir, asPath string) (*Package, error) {
	return l.load(asPath, dir, false)
}

func (l *Loader) load(path, dir string, memo bool) (*Package, error) {
	if p, ok := l.pkgs[path]; ok && memo {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("type-checking %s: %v", path, typeErrs[0])
	}

	p := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	p.allows, p.malformed = collectDirectives(l.fset, files)
	if memo {
		l.pkgs[path] = p
	}
	return p, nil
}

// ModulePackages enumerates every package directory of the module (skipping
// testdata, hidden directories and bin) and loads each. Directories that
// contain only test files are skipped.
func (l *Loader) ModulePackages() ([]*Package, error) {
	var paths []string
	err := filepath.WalkDir(l.ModuleDir, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != l.ModuleDir && (name == "testdata" || name == "bin" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") || strings.HasSuffix(d.Name(), "_test.go") {
			return nil
		}
		dir := filepath.Dir(p)
		rel, err := filepath.Rel(l.ModuleDir, dir)
		if err != nil {
			return err
		}
		ip := l.ModulePath
		if rel != "." {
			ip = l.ModulePath + "/" + filepath.ToSlash(rel)
		}
		if len(paths) == 0 || paths[len(paths)-1] != ip {
			paths = append(paths, ip)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	var pkgs []*Package
	for _, ip := range paths {
		p, err := l.Load(ip)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}
