package analysis

import (
	"go/ast"
	"go/types"
)

// ctxScope lists the packages whose loops do unbounded amounts of work:
// simulation driving, state-space search, sweep workers and campaign
// dispatch. PR 4 threaded context.Context through all of them; this
// analyzer keeps the threading from eroding as loops are added.
var ctxScope = map[string]bool{
	"c3d/internal/machine":  true,
	"c3d/internal/mc":       true,
	"c3d/internal/sweep":    true,
	"c3d/internal/campaign": true,
}

// CtxCheckAnalyzer enforces the cancellation guarantee on long-running
// loops.
var CtxCheckAnalyzer = &Analyzer{
	Name: "ctxcheck",
	Doc: `long-running loops in machine/mc/sweep/campaign must remain cancellable

A loop with no bound visible in its header — "for {", "for cond {", or a
range over a channel — in one of the context-threaded packages must, in its
body, either check cancellation directly (ctx.Err(), ctx.Done(), a select
with a Done case) or call a context-threaded function (any call that passes
a context.Context). Counter-style three-clause loops and range loops over
data are considered bounded by their header and are not flagged, and loops
that neither call functions nor touch channels (index-probing spins) cannot
block and are exempt. Loops that are genuinely short-lived carry
//c3dlint:allow ctxcheck(reason).`,
	Run: runCtxCheck,
}

func runCtxCheck(pass *Pass) error {
	if !ctxScope[pass.Pkg.Path] {
		return nil
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.ForStmt:
				// Three-clause counter loops are bounded by their header.
				if n.Init != nil || n.Post != nil {
					return true
				}
				body = n.Body
			case *ast.RangeStmt:
				// Ranging over data is bounded; ranging over a channel is
				// a receive loop that must be cancellable.
				tv, ok := info.Types[n.X]
				if !ok || tv.Type == nil {
					return true
				}
				if _, isChan := tv.Type.Underlying().(*types.Chan); !isChan {
					return true
				}
				body = n.Body
			default:
				return true
			}
			if !loopCanBlock(info, body) {
				return true
			}
			if !loopReachesCtx(info, body) {
				pass.Reportf(n.Pos(), "long-running loop has no reachable cancellation check: add a ctx.Err()/ctx.Done() check or call a ctx-threaded function, or annotate //c3dlint:allow ctxcheck(reason)")
			}
			return true
		})
	}
	return nil
}

// loopCanBlock reports whether the loop body contains a function call or a
// channel operation — i.e. whether an iteration can take unbounded time. A
// pure-arithmetic spin (hash probing, pointer chasing) is exempt.
func loopCanBlock(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			// Conversions and builtins (len, cap, append...) cannot block.
			if tv, ok := info.Types[n.Fun]; ok && (tv.IsType() || tv.IsBuiltin()) {
				return true
			}
			found = true
			return false
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
			return false
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// loopReachesCtx reports whether the body checks cancellation: a call to
// Err/Done on a context.Context value, or any call passing a
// context.Context argument (a ctx-threaded function checks on the callee's
// side). The scan is lexical and includes nested function literals — a
// worker body defined inline still counts as the loop's cancellation path.
func loopReachesCtx(info *types.Info, body *ast.BlockStmt) bool {
	ok := false
	ast.Inspect(body, func(n ast.Node) bool {
		if ok {
			return false
		}
		call, isCall := n.(*ast.CallExpr)
		if !isCall {
			return true
		}
		if sel, isSel := call.Fun.(*ast.SelectorExpr); isSel {
			if (sel.Sel.Name == "Err" || sel.Sel.Name == "Done") && isContextType(info.Types[sel.X].Type) {
				ok = true
				return false
			}
		}
		for _, arg := range call.Args {
			if tv, found := info.Types[arg]; found && isContextType(tv.Type) {
				ok = true
				return false
			}
		}
		return true
	})
	return ok
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
