package analysis

import "testing"

func TestDeterminismFixture(t *testing.T) {
	runFixture(t, DeterminismAnalyzer, "determinism/machine", "c3d/internal/machine")
}

func TestDeterminismOutOfScope(t *testing.T) {
	runFixture(t, DeterminismAnalyzer, "determinism/outofscope", "c3d/internal/outofscope")
}

// TestDeterminismNegativeFixtureFails pins the acceptance criterion
// directly: the analyzer must actually fail on its negative fixture, not
// merely match annotations. It re-runs the positive fixture and asserts the
// flagged sites produced findings.
func TestDeterminismNegativeFixtureFails(t *testing.T) {
	requireFindings(t, DeterminismAnalyzer, "determinism/machine", "c3d/internal/machine", 4)
}

// requireFindings asserts the analyzer reports exactly n findings on the
// fixture (the number of want comments), proving the negative cases fail.
func requireFindings(t *testing.T, a *Analyzer, fixture, asPath string, n int) {
	t.Helper()
	l := sharedLoader(t)
	pkg, err := l.LoadDir("testdata/"+fixture, asPath)
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags, err := RunAnalyzers(l.Fset(), []*Package{pkg}, []*Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != n {
		t.Fatalf("got %d findings, want %d:\n%v", len(diags), n, diags)
	}
}
