package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one static check: a name (used in diagnostics and in
// //c3dlint:allow directives), a doc string, and a Run function over a
// type-checked package. The shape deliberately mirrors
// golang.org/x/tools/go/analysis so the implementations can migrate to the
// real multichecker wholesale once the module may depend on x/tools; until
// then the driver in this package stands in for it with no dependencies
// beyond the standard library.
type Analyzer struct {
	Name string
	// Doc is the analyzer's one-paragraph description, shown by
	// `c3dlint -help`.
	Doc string
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one package plus the Report sink.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package

	diags []Diagnostic
}

// Diagnostic is one finding: a position, the analyzer that produced it, and
// a message. File is relative to the module root when the driver can make it
// so, which keeps -json output diffable across checkouts.
type Diagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Reportf records a finding at pos unless an allow directive for this
// analyzer covers the line (same line, or the whole line directly above).
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.Pkg.allowed(p.Analyzer.Name, position.Filename, position.Line) {
		return
	}
	p.diags = append(p.diags, Diagnostic{
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// allowDirective is one parsed //c3dlint:allow analyzer(reason) comment.
type allowDirective struct {
	analyzer string
	reason   string
}

// directiveRe parses //c3dlint:allow analyzer(reason). A trailing "// want"
// comment is tolerated so fixture files can assert on directive lines.
var directiveRe = regexp.MustCompile(`^//c3dlint:allow\s+([a-z]\w*)\((.*)\)\s*(?:// want .*)?$`)

// collectDirectives scans every comment of every file for c3dlint
// directives. Well-formed allows are indexed by file and line; malformed
// ones (wrong shape, or an empty reason — a silence without a justification)
// come back as ready-made diagnostics.
func collectDirectives(fset *token.FileSet, files []*ast.File) (map[string]map[int][]allowDirective, []Diagnostic) {
	allows := map[string]map[int][]allowDirective{}
	var malformed []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, "//c3dlint:") {
					continue
				}
				pos := fset.Position(c.Pos())
				m := directiveRe.FindStringSubmatch(text)
				if m == nil || !strings.HasPrefix(text, "//c3dlint:allow") {
					malformed = append(malformed, Diagnostic{
						File: pos.Filename, Line: pos.Line, Col: pos.Column,
						Analyzer: "c3dlint",
						Message:  fmt.Sprintf("malformed directive %q: want //c3dlint:allow analyzer(reason)", text),
					})
					continue
				}
				if strings.TrimSpace(m[2]) == "" {
					malformed = append(malformed, Diagnostic{
						File: pos.Filename, Line: pos.Line, Col: pos.Column,
						Analyzer: "c3dlint",
						Message:  fmt.Sprintf("allow directive for %q needs a non-empty reason", m[1]),
					})
					continue
				}
				byLine := allows[pos.Filename]
				if byLine == nil {
					byLine = map[int][]allowDirective{}
					allows[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], allowDirective{analyzer: m[1], reason: m[2]})
			}
		}
	}
	return allows, malformed
}

// allowed reports whether a diagnostic from analyzer at file:line is
// silenced by a well-formed directive on that line or the line above.
func (p *Package) allowed(analyzer, file string, line int) bool {
	byLine := p.allows[file]
	if byLine == nil {
		return false
	}
	for _, l := range []int{line, line - 1} {
		for _, d := range byLine[l] {
			if d.analyzer == analyzer {
				return true
			}
		}
	}
	return false
}

// RunAnalyzers applies every analyzer to every package and returns the
// findings sorted by file, line, column and analyzer name — a deterministic
// order, like everything else in this repo. Malformed directives are
// reported once per package regardless of which analyzers ran.
func RunAnalyzers(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	seen := map[string]bool{}
	for _, pkg := range pkgs {
		if !seen[pkg.Path] {
			seen[pkg.Path] = true
			out = append(out, pkg.malformed...)
		}
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Fset: fset, Pkg: pkg}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.Path, err)
			}
			out = append(out, pass.diags...)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		if out[i].Col != out[j].Col {
			return out[i].Col < out[j].Col
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// All returns the five c3dlint analyzers in their canonical order.
func All() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer,
		CtxCheckAnalyzer,
		RegistryAnalyzer,
		WireCompatAnalyzer,
		ErrEnvelopeAnalyzer,
	}
}
