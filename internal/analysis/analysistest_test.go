package analysis

// The fixture harness reimplements the golang.org/x/tools analysistest
// contract on the stdlib loader: fixture packages live under testdata/,
// every line that should produce a finding carries a // want "regex"
// comment, and the test fails on any unmatched expectation or unexpected
// diagnostic. Fixtures are loaded under synthetic production import paths
// (LoadDir's asPath) so path-scoped analyzers fire on them exactly as they
// would on the real packages.

import (
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

var (
	loaderOnce sync.Once
	loader     *Loader
	loaderErr  error
)

// sharedLoader memoizes one loader across all fixture tests, so the
// standard library is type-checked once per `go test` run.
func sharedLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		loader, loaderErr = NewLoader(".")
	})
	if loaderErr != nil {
		t.Fatalf("building loader: %v", loaderErr)
	}
	return loader
}

// expectation is one // want "regex" on one fixture line.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantRe = regexp.MustCompile(`// want (.+)$`)
var quotedRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

func parseWants(t *testing.T, dir string) []*expectation {
	t.Helper()
	var wants []*expectation
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			for _, q := range quotedRe.FindAllString(m[1], -1) {
				pat, err := strconv.Unquote(q)
				if err != nil {
					t.Fatalf("%s:%d: bad want string %s: %v", path, i+1, q, err)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", path, i+1, pat, err)
				}
				wants = append(wants, &expectation{file: path, line: i + 1, re: re})
			}
		}
	}
	return wants
}

// runFixture loads testdata/<fixture> as import path asPath, runs the one
// analyzer over it, and checks the findings against the // want comments.
func runFixture(t *testing.T, a *Analyzer, fixture, asPath string) {
	t.Helper()
	l := sharedLoader(t)
	dir := filepath.Join("testdata", filepath.FromSlash(fixture))
	pkg, err := l.LoadDir(dir, asPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}
	diags, err := RunAnalyzers(l.Fset(), []*Package{pkg}, []*Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	wants := parseWants(t, dir)

	for _, d := range diags {
		found := false
		for _, w := range wants {
			if !w.matched && sameFile(w.file, d.File) && w.line == d.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected a diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func sameFile(a, b string) bool {
	aa, err1 := filepath.Abs(a)
	bb, err2 := filepath.Abs(b)
	return err1 == nil && err2 == nil && aa == bb
}
