// Package analysis implements c3dlint: the repo's custom static analyzers
// plus the dependency-free driver that runs them.
//
// Everything this reproduction promises — byte-identical results at any
// parallelism, crash-resumable campaigns, a frozen wire API — is enforced
// dynamically by CI gates that byte-compare outputs. Those gates can only
// cover the code paths they execute; the analyzers here reject
// invariant-violating code at `make lint` time, before a single simulation
// runs. Five checks ship:
//
//	determinism   unsorted map ranges, global math/rand, wall-clock reads
//	              in the result-producing packages (internal/machine, mc,
//	              sweep, experiments, stats, trace, pkg/c3d)
//	ctxcheck      long-running loops in machine/mc/sweep/campaign must stay
//	              cancellable (ctx.Err/ctx.Done or a ctx-threaded call)
//	registry      Register-style calls only at package initialisation
//	wirecompat    pkg/c3d/api: explicit json tag on every exported field,
//	              stdlib-only imports
//	errenvelope   API errors only through the writeError envelope helper
//
// A finding at a site that is genuinely safe is silenced in place, with the
// justification kept next to the code:
//
//	//c3dlint:allow determinism(collection only; keys are sorted below)
//	for k := range m { ... }
//
// The reason is mandatory — an empty or missing reason is itself a finding —
// and the directive covers exactly its own line and the line below it, so a
// silence can never drift away from the site it excuses.
//
// # Driver
//
// The Analyzer/Pass shape deliberately mirrors
// golang.org/x/tools/go/analysis, but the driver is built on the standard
// library alone (go/parser + go/types, with stdlib imports resolved by the
// compiler's source importer and module-local imports resolved recursively
// by the Loader). The module therefore stays dependency-free; if it ever
// adopts x/tools, each Run function ports to an analysis.Analyzer almost
// verbatim and this driver retires.
//
// # Adding an analyzer
//
// Mirroring the design-registry extension guide in internal/machine: write
// one file in this package with an *Analyzer and its Run function,
//
//	var FrobAnalyzer = &Analyzer{
//		Name: "frobcheck",
//		Doc:  "one-line summary, then the contract being enforced",
//		Run:  runFrob,
//	}
//
//	func runFrob(pass *Pass) error {
//		if !frobScope[pass.Pkg.Path] {
//			return nil // scope by package path, firing nowhere else
//		}
//		for _, f := range pass.Pkg.Files {
//			ast.Inspect(f, func(n ast.Node) bool {
//				// use pass.Pkg.Info for type facts,
//				// pass.Reportf(n.Pos(), ...) for findings
//				return true
//			})
//		}
//		return nil
//	}
//
// then add it to All() (cmd/c3dlint and the allow directive pick the name up
// from there), create positive and negative fixtures under
// testdata/<name>/ with // want "regex" comments on every line that must be
// flagged, and add a test calling runFixture with the production import path
// the fixture stands in for. Reportf consults the allow table automatically,
// so every analyzer gets the escape hatch for free. Run `make lint` — the
// merged tree must be finding-free.
package analysis
