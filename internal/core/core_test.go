package core

import (
	"testing"

	"c3d/internal/addr"
	"c3d/internal/coherence"
	"c3d/internal/tlb"
)

func newC3DDir(t *testing.T, sockets int) *Directory {
	t.Helper()
	return NewDirectory(DirConfig{Name: "gdir-test", Sockets: sockets})
}

func newFullDir(t *testing.T, sockets int) *Directory {
	t.Helper()
	return NewDirectory(DirConfig{Name: "gdir-full", Sockets: sockets, TrackDRAMCache: true})
}

func TestGetSInvalidServedByMemoryWithoutAllocation(t *testing.T) {
	d := newC3DDir(t, 4)
	b := addr.Block(10)
	dec := d.HandleGetS(b, 2)
	if dec.Source != FromMemory {
		t.Fatalf("Source = %v, want memory", dec.Source)
	}
	// Non-inclusive directory: GetS in Invalid must NOT allocate an entry
	// (§IV-B — this is where the storage savings come from).
	if d.Entries() != 0 {
		t.Fatalf("directory allocated %d entries on a GetS in Invalid, want 0", d.Entries())
	}
	if d.Stats().ReadsFromMem != 1 {
		t.Errorf("ReadsFromMem = %d, want 1", d.Stats().ReadsFromMem)
	}
}

func TestGetXInvalidBroadcasts(t *testing.T) {
	d := newC3DDir(t, 4)
	b := addr.Block(11)
	dec := d.HandleGetX(b, 1, false, false)
	if !dec.Broadcast {
		t.Fatal("GetX to an untracked block must broadcast invalidations")
	}
	if !dec.Invalidate.Empty() {
		t.Errorf("precise invalidations = %v, want none (broadcast covers them)", dec.Invalidate)
	}
	if dec.Source != FromMemory {
		t.Errorf("Source = %v, want memory", dec.Source)
	}
	e, ok := d.Probe(b)
	if !ok || e.State != coherence.DirModified || e.Owner != 1 {
		t.Fatalf("directory entry after GetX = %+v, %v; want Modified owner 1", e, ok)
	}
	if d.Stats().Broadcasts != 1 {
		t.Errorf("Broadcasts = %d, want 1", d.Stats().Broadcasts)
	}
}

func TestGetXPrivatePageSkipsBroadcast(t *testing.T) {
	d := newC3DDir(t, 4)
	dec := d.HandleGetX(addr.Block(12), 0, false, true)
	if dec.Broadcast {
		t.Fatal("GetX to a private page must not broadcast (§IV-D)")
	}
	s := d.Stats()
	if s.BroadcastsAvd != 1 || s.Broadcasts != 0 {
		t.Errorf("stats = %+v; want 1 avoided broadcast", s)
	}
}

func TestModifiedThenGetSForwardsFromOwner(t *testing.T) {
	d := newC3DDir(t, 4)
	b := addr.Block(13)
	d.HandleGetX(b, 3, false, false)
	dec := d.HandleGetS(b, 0)
	if dec.Source != FromOwnerLLC || dec.Owner != 3 {
		t.Fatalf("decision = %+v; want forward from owner 3", dec)
	}
	e, _ := d.Probe(b)
	if e.State != coherence.DirShared {
		t.Errorf("state after GetS = %v, want Shared", e.State)
	}
	if !e.Sharers.Contains(0) || !e.Sharers.Contains(3) {
		t.Errorf("sharers = %v, want {0,3}", e.Sharers)
	}
}

func TestSharedThenGetXInvalidatesPrecisely(t *testing.T) {
	d := newC3DDir(t, 4)
	b := addr.Block(14)
	// Socket 3 writes, sockets 0 and 1 read: directory ends in Shared{0,1,3}.
	d.HandleGetX(b, 3, false, false)
	d.HandleGetS(b, 0)
	d.HandleGetS(b, 1)
	dec := d.HandleGetX(b, 0, false, false)
	if dec.Broadcast {
		t.Fatal("a tracked Shared block must use precise invalidations, not a broadcast")
	}
	if !dec.Invalidate.Contains(1) || !dec.Invalidate.Contains(3) || dec.Invalidate.Contains(0) {
		t.Errorf("Invalidate = %v, want {1,3}", dec.Invalidate)
	}
	if dec.Source != FromMemory {
		t.Errorf("Source = %v, want memory (Shared means memory is up to date)", dec.Source)
	}
	e, _ := d.Probe(b)
	if e.State != coherence.DirModified || e.Owner != 0 {
		t.Errorf("entry = %+v, want Modified owner 0", e)
	}
}

func TestModifiedThenGetXChangesOwner(t *testing.T) {
	d := newC3DDir(t, 4)
	b := addr.Block(15)
	d.HandleGetX(b, 2, false, false)
	dec := d.HandleGetX(b, 1, false, false)
	if dec.Source != FromOwnerLLC || dec.Owner != 2 {
		t.Fatalf("decision = %+v; want data from previous owner 2", dec)
	}
	if !dec.Invalidate.Only(2) {
		t.Errorf("Invalidate = %v, want {2}", dec.Invalidate)
	}
	e, _ := d.Probe(b)
	if e.Owner != 1 {
		t.Errorf("owner = %d, want 1", e.Owner)
	}
}

func TestUpgradeCountsSeparately(t *testing.T) {
	d := newC3DDir(t, 2)
	b := addr.Block(16)
	d.HandleGetX(b, 0, false, false)
	d.HandleGetS(b, 1)
	d.HandleGetX(b, 1, true, false)
	s := d.Stats()
	if s.Upgrades != 1 || s.GetX != 1 {
		t.Errorf("stats = %+v; want 1 GetX and 1 Upgrade", s)
	}
}

func TestPutXInvalidatesEntryInBaseC3D(t *testing.T) {
	d := newC3DDir(t, 4)
	b := addr.Block(17)
	d.HandleGetX(b, 2, false, false)
	d.HandlePutX(b, 2)
	if _, ok := d.Probe(b); ok {
		t.Fatal("base C3D drops the entry on a write-back (Fig. 5 Modified→Invalid)")
	}
	// A subsequent write is untracked again and must broadcast.
	if dec := d.HandleGetX(b, 0, false, false); !dec.Broadcast {
		t.Error("write after a write-back should broadcast (entry was dropped)")
	}
}

func TestPutXKeepsEntrySharedInFullDirVariant(t *testing.T) {
	d := newFullDir(t, 4)
	b := addr.Block(18)
	d.HandleGetX(b, 2, false, false)
	d.HandlePutX(b, 2)
	e, ok := d.Probe(b)
	if !ok || e.State != coherence.DirShared || !e.Sharers.Only(2) {
		t.Fatalf("entry = %+v, %v; want Shared{2} (c3d-full-dir keeps tracking)", e, ok)
	}
	// With the block still tracked, a later write needs no broadcast.
	if dec := d.HandleGetX(b, 0, false, false); dec.Broadcast {
		t.Error("c3d-full-dir should never broadcast")
	}
}

func TestStalePutXIgnored(t *testing.T) {
	d := newC3DDir(t, 4)
	b := addr.Block(19)
	d.HandleGetX(b, 2, false, false)
	d.HandleGetX(b, 1, false, false) // ownership moves to socket 1
	d.HandlePutX(b, 2)               // stale write-back from the old owner
	e, ok := d.Probe(b)
	if !ok || e.State != coherence.DirModified || e.Owner != 1 {
		t.Fatalf("entry = %+v, %v; a stale PutX must not disturb the current owner", e, ok)
	}
}

func TestFullDirGetSAllocates(t *testing.T) {
	d := newFullDir(t, 4)
	b := addr.Block(20)
	d.HandleGetS(b, 1)
	e, ok := d.Probe(b)
	if !ok || e.State != coherence.DirShared || !e.Sharers.Only(1) {
		t.Fatalf("entry = %+v, %v; the full-dir variant must track GetS fills", e, ok)
	}
}

func TestSparseDirectoryRecalls(t *testing.T) {
	d := NewDirectory(DirConfig{Name: "sparse", Sockets: 4, Entries: 2, Ways: 2})
	d.HandleGetX(addr.Block(0), 0, false, false)
	d.HandleGetX(addr.Block(1), 1, false, false)
	dec := d.HandleGetX(addr.Block(2), 2, false, false)
	if !dec.Recall.Valid {
		t.Fatal("a full sparse directory must recall an entry")
	}
	if d.Stats().Recalls != 1 {
		t.Errorf("Recalls = %d, want 1", d.Stats().Recalls)
	}
}

func TestDirectoryPanicsOnBadSocket(t *testing.T) {
	d := newC3DDir(t, 2)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range socket should panic")
		}
	}()
	d.HandleGetS(addr.Block(0), 5)
}

func TestResetStats(t *testing.T) {
	d := newC3DDir(t, 2)
	d.HandleGetX(addr.Block(1), 0, false, false)
	d.ResetStats()
	if d.Stats() != (DirStats{}) {
		t.Error("ResetStats did not clear decision counters")
	}
}

func TestBroadcastFilter(t *testing.T) {
	classifier := tlb.NewClassifier()
	// Thread 0 owns page 0 privately; page 1 is shared between threads 0, 1.
	classifier.Access(addr.Page(0), 0, 0)
	classifier.Access(addr.Page(1), 0, 0)
	classifier.Access(addr.Page(1), 1, 1)

	f := NewBroadcastFilter(classifier, true)
	privBlock := addr.Block(0)                         // page 0
	sharedBlock := addr.Block(addr.BlocksPerPage)      // page 1
	unknownBlock := addr.Block(5 * addr.BlocksPerPage) // never classified

	if !f.PagePrivate(privBlock, 0) {
		t.Error("write by the owner to a private page should skip the broadcast")
	}
	if f.PagePrivate(privBlock, 1) {
		t.Error("write by a non-owner must not skip the broadcast")
	}
	if f.PagePrivate(sharedBlock, 0) {
		t.Error("write to a shared page must not skip the broadcast")
	}
	if f.PagePrivate(unknownBlock, 0) {
		t.Error("write to an unclassified page must not skip the broadcast")
	}
	if f.Elided() != 1 || f.Allowed() != 3 {
		t.Errorf("Elided/Allowed = %d/%d, want 1/3", f.Elided(), f.Allowed())
	}
	f.ResetStats()
	if f.Elided() != 0 || f.Allowed() != 0 {
		t.Error("ResetStats did not clear filter counters")
	}
}

func TestBroadcastFilterDisabled(t *testing.T) {
	f := NewBroadcastFilter(nil, true)
	if f.Enabled() {
		t.Error("a filter without a classifier must be disabled")
	}
	if f.PagePrivate(addr.Block(0), 0) {
		t.Error("a disabled filter must never elide broadcasts")
	}
	f2 := NewBroadcastFilter(tlb.NewClassifier(), false)
	if f2.Enabled() {
		t.Error("enabled=false must disable the filter")
	}
}

func TestCleanLLCEvictionPolicy(t *testing.T) {
	// Modified eviction: write through to memory, keep a clean local copy,
	// tell the directory.
	a := CleanLLCEviction(coherence.LineModified, true)
	if !a.WriteToMemory || !a.FillLocalDRAMCache || a.FillDirty || !a.NotifyDirectory {
		t.Errorf("Modified eviction action = %+v", a)
	}
	// Shared eviction: silent victim-cache fill.
	a = CleanLLCEviction(coherence.LineShared, false)
	if a.WriteToMemory || !a.FillLocalDRAMCache || a.FillDirty || a.NotifyDirectory {
		t.Errorf("Shared eviction action = %+v", a)
	}
	// Invalid eviction: nothing.
	if a := CleanLLCEviction(coherence.LineInvalid, false); a != (EvictionAction{}) {
		t.Errorf("Invalid eviction action = %+v, want zero", a)
	}
}

func TestDirtyLLCEvictionPolicy(t *testing.T) {
	a := DirtyLLCEviction(coherence.LineModified, true)
	if a.WriteToMemory || !a.FillLocalDRAMCache || !a.FillDirty {
		t.Errorf("dirty-design Modified eviction = %+v; want absorbed by the DRAM cache", a)
	}
	a = DirtyLLCEviction(coherence.LineShared, false)
	if a.WriteToMemory || !a.FillLocalDRAMCache || a.FillDirty {
		t.Errorf("dirty-design Shared eviction = %+v", a)
	}
}

func TestDRAMCacheEvictionWriteback(t *testing.T) {
	if DRAMCacheEvictionNeedsWriteback(true, true) {
		t.Error("a clean DRAM cache never writes back on eviction")
	}
	if !DRAMCacheEvictionNeedsWriteback(false, true) {
		t.Error("a dirty DRAM cache must write back dirty victims")
	}
	if DRAMCacheEvictionNeedsWriteback(false, false) {
		t.Error("clean victims never need a write-back")
	}
}

func TestReadMissBypass(t *testing.T) {
	if !ReadMissBypassesRemoteDRAMCaches(true) {
		t.Error("clean DRAM caches enable the remote-bypass guarantee")
	}
	if ReadMissBypassesRemoteDRAMCaches(false) {
		t.Error("dirty DRAM caches cannot bypass remote caches")
	}
}

func TestDataSourceString(t *testing.T) {
	if FromMemory.String() != "memory" || FromOwnerLLC.String() != "owner-llc" {
		t.Error("unexpected DataSource names")
	}
}
