// Package core implements the paper's primary contribution: the Clean
// Coherent DRAM Cache (C3D) protocol. It contains
//
//   - the non-inclusive global directory semantics of §IV-B/§IV-C (Fig. 5):
//     three stable states (Invalid, Shared, Modified) over on-chip caches
//     only, with GetS requests in Invalid served by memory without allocating
//     an entry and GetX requests to untracked blocks answered with a
//     broadcast invalidation of all DRAM caches;
//   - the clean DRAM cache policy of §IV-A: LLC dirty evictions are written
//     through to memory while a clean copy is retained in the local DRAM
//     cache, so no remote DRAM cache ever needs to be probed on a read;
//   - the TLB-based broadcast filter of §IV-D, which elides broadcasts for
//     writes to thread-private pages;
//   - a message-level model of the full protocol (protocol.go) suitable for
//     exhaustive state-space exploration by internal/mc, mirroring the Murϕ
//     verification of §IV-C.
//
// The package is deliberately free of timing: it decides *what* must happen
// (who supplies data, who must be invalidated, whether a broadcast is
// required); the machine model (internal/machine) decides what that costs.
package core

import (
	"fmt"

	"c3d/internal/addr"
	"c3d/internal/coherence"
	"c3d/internal/tlb"
)

// DataSource says where a read miss obtains its data from.
type DataSource int

const (
	// FromMemory: the home socket's memory supplies the block. With clean
	// DRAM caches this is always safe when no on-chip cache holds the block
	// Modified.
	FromMemory DataSource = iota
	// FromOwnerLLC: the single socket holding the block Modified in its
	// on-chip hierarchy supplies it.
	FromOwnerLLC
)

func (d DataSource) String() string {
	switch d {
	case FromMemory:
		return "memory"
	case FromOwnerLLC:
		return "owner-llc"
	default:
		return fmt.Sprintf("DataSource(%d)", int(d))
	}
}

// DirConfig configures a C3D global directory slice.
type DirConfig struct {
	// Name identifies the slice in diagnostics.
	Name string
	// Sockets is the number of sockets in the machine.
	Sockets int
	// Entries and Ways size the sparse structure; Entries == 0 gives an
	// unbounded directory (used by the idealised c3d-full-dir design).
	Entries int
	Ways    int
	// TrackDRAMCache switches on the idealised c3d-full-dir behaviour of
	// §V-A: the directory also tracks blocks that live only in DRAM caches,
	// which removes the need for broadcasts entirely. The base C3D design
	// leaves this false.
	TrackDRAMCache bool
}

// DirStats counts protocol-level directory decisions (the underlying storage
// counters live in coherence.DirStats).
type DirStats struct {
	GetS          uint64
	GetX          uint64
	Upgrades      uint64
	PutX          uint64
	ReadsFromMem  uint64
	ReadsFromOwn  uint64
	Broadcasts    uint64
	BroadcastsAvd uint64 // avoided thanks to the private-page filter
	PreciseInvals uint64
	Recalls       uint64
}

// Directory is one socket's slice of the C3D global directory. It stores
// stable state for blocks homed at this socket and implements the transition
// rules of Fig. 5. All methods are pure protocol decisions — no latencies.
type Directory struct {
	cfg   DirConfig
	dir   *coherence.Directory
	stats DirStats
}

// NewDirectory builds a directory slice.
func NewDirectory(cfg DirConfig) *Directory {
	if cfg.Sockets <= 0 {
		panic(fmt.Sprintf("core: directory %s: invalid socket count %d", cfg.Name, cfg.Sockets))
	}
	return &Directory{
		cfg: cfg,
		dir: coherence.NewDirectory(coherence.DirConfig{
			Name:    cfg.Name,
			Entries: cfg.Entries,
			Ways:    cfg.Ways,
		}),
	}
}

// Config returns the directory's configuration.
func (d *Directory) Config() DirConfig { return d.cfg }

// SetStalePredicate forwards a staleness hint to the underlying sparse
// structure (see coherence.Directory.SetStalePredicate); it lets the
// replacement policy victimise entries whose blocks have already left every
// on-chip cache instead of recalling live ones.
func (d *Directory) SetStalePredicate(fn func(addr.Block) bool) { d.dir.SetStalePredicate(fn) }

// Stats returns the protocol decision counters.
func (d *Directory) Stats() DirStats { return d.stats }

// StorageStats returns the underlying sparse-structure counters.
func (d *Directory) StorageStats() coherence.DirStats { return d.dir.Stats() }

// ResetStats clears both decision and storage counters.
func (d *Directory) ResetStats() {
	d.stats = DirStats{}
	d.dir.ResetStats()
}

// Reset empties the directory slice and clears every counter, returning it to
// the just-constructed state (used when a machine is reused across runs).
func (d *Directory) Reset() {
	d.stats = DirStats{}
	d.dir.Reset()
}

// Entries returns the number of blocks currently tracked.
func (d *Directory) Entries() int { return d.dir.Entries() }

// Probe returns the tracked entry for a block without recording a lookup.
func (d *Directory) Probe(b addr.Block) (coherence.Entry, bool) { return d.dir.Probe(b) }

// ReadDecision is the outcome of a GetS at the home directory.
type ReadDecision struct {
	// Source says who supplies the data.
	Source DataSource
	// Owner is the socket that must forward the block when Source is
	// FromOwnerLLC.
	Owner int
	// Recall describes a sparse-directory eviction triggered by this request
	// (only possible when the directory had to allocate, i.e. in the
	// TrackDRAMCache variant); the caller must invalidate the recalled
	// block's copies.
	Recall coherence.Recall
}

// WriteDecision is the outcome of a GetX or Upgrade at the home directory.
type WriteDecision struct {
	// Broadcast reports that invalidations must be broadcast to every other
	// socket's DRAM cache because the directory has no entry for the block
	// (§IV-C, Invalid state) and the page is not known to be private.
	Broadcast bool
	// Invalidate is the precise set of sockets (excluding the requester)
	// whose copies must be invalidated.
	Invalidate coherence.SharerSet
	// Source says who supplies the data (memory unless a remote socket holds
	// the block Modified on-chip). Upgrades ignore it.
	Source DataSource
	// Owner is the previous owner when Source is FromOwnerLLC.
	Owner int
	// Recall as in ReadDecision.
	Recall coherence.Recall
}

// HandleGetS processes a read request from the requesting socket for a block
// homed at this directory slice. It applies Fig. 5's GetS transitions:
//
//	Invalid:  serve from memory; do NOT allocate an entry (non-inclusive).
//	Shared:   serve from memory; add the requester to the sharing vector.
//	Modified: forward to the owner; owner and requester end up in Shared.
//
// In the TrackDRAMCache variant (c3d-full-dir), Invalid additionally
// allocates a Shared entry so that later writes can invalidate precisely.
func (d *Directory) HandleGetS(b addr.Block, requester int) ReadDecision {
	d.checkSocket(requester)
	d.stats.GetS++
	entry, ok := d.dir.Lookup(b)
	if !ok || entry.State == coherence.DirInvalid {
		d.stats.ReadsFromMem++
		var recall coherence.Recall
		if d.cfg.TrackDRAMCache {
			recall = d.update(b, coherence.Entry{
				State:   coherence.DirShared,
				Sharers: coherence.NewSharerSet(requester),
			})
		}
		return ReadDecision{Source: FromMemory, Recall: recall}
	}
	switch entry.State {
	case coherence.DirShared:
		d.stats.ReadsFromMem++
		entry.Sharers = entry.Sharers.Add(requester)
		recall := d.update(b, entry)
		return ReadDecision{Source: FromMemory, Recall: recall}
	case coherence.DirModified:
		d.stats.ReadsFromOwn++
		owner := entry.Owner
		recall := d.update(b, coherence.Entry{
			State:   coherence.DirShared,
			Sharers: entry.Sharers.Add(requester).Add(owner),
		})
		return ReadDecision{Source: FromOwnerLLC, Owner: owner, Recall: recall}
	default:
		panic(fmt.Sprintf("core: directory %s: unexpected state %v", d.cfg.Name, entry.State))
	}
}

// HandleGetX processes a write request (or upgrade when upgrade is true) from
// the requesting socket. pagePrivate carries the §IV-D TLB classification: a
// GetX for a block of a page private to the requesting thread never needs a
// broadcast. It applies Fig. 5's GetX/Upgrade transitions:
//
//	Invalid:  broadcast invalidations to all other DRAM caches (unless the
//	          page is private); serve from memory; become Modified(requester).
//	Shared:   invalidate exactly the tracked sharers; serve from memory;
//	          become Modified(requester).
//	Modified: invalidate/forward from the previous owner; become
//	          Modified(requester).
func (d *Directory) HandleGetX(b addr.Block, requester int, upgrade, pagePrivate bool) WriteDecision {
	d.checkSocket(requester)
	if upgrade {
		d.stats.Upgrades++
	} else {
		d.stats.GetX++
	}
	entry, ok := d.dir.Lookup(b)
	dec := WriteDecision{Source: FromMemory}
	if !ok || entry.State == coherence.DirInvalid {
		switch {
		case d.cfg.TrackDRAMCache:
			// In the c3d-full-dir variant the directory is inclusive of the
			// DRAM caches, so an untracked block is genuinely uncached and
			// nobody needs an invalidation.
		case pagePrivate:
			d.stats.BroadcastsAvd++
		default:
			d.stats.Broadcasts++
			dec.Broadcast = true
		}
	} else {
		switch entry.State {
		case coherence.DirShared:
			dec.Invalidate = entry.Sharers.Others(requester)
			if !dec.Invalidate.Empty() {
				d.stats.PreciseInvals++
			}
		case coherence.DirModified:
			if entry.Owner != requester {
				dec.Source = FromOwnerLLC
				dec.Owner = entry.Owner
				dec.Invalidate = coherence.NewSharerSet(entry.Owner)
				d.stats.PreciseInvals++
			}
		default:
			panic(fmt.Sprintf("core: directory %s: unexpected state %v", d.cfg.Name, entry.State))
		}
	}
	dec.Recall = d.update(b, coherence.Entry{
		State:   coherence.DirModified,
		Owner:   requester,
		Sharers: coherence.NewSharerSet(requester),
	})
	return dec
}

// HandlePutX processes a write-back of a Modified block from the owning
// socket (an LLC eviction, a downgrade response, or an invalidation
// response). Per Fig. 5 the directory transitions to Invalid in the base C3D
// design; the c3d-full-dir variant instead transitions to Shared (the "small
// modification" described in §V-A) so the block stays tracked and later
// writes avoid broadcasts.
func (d *Directory) HandlePutX(b addr.Block, from int) {
	d.checkSocket(from)
	d.stats.PutX++
	entry, ok := d.dir.Lookup(b)
	if !ok {
		// A PutX can race with a recall that already removed the entry;
		// nothing to do.
		return
	}
	if entry.State == coherence.DirModified && entry.Owner != from {
		// Stale write-back from a socket that has already lost ownership
		// (e.g. it was invalidated while its PutX was in flight): ignore.
		return
	}
	if d.cfg.TrackDRAMCache {
		d.update(b, coherence.Entry{
			State:   coherence.DirShared,
			Sharers: coherence.NewSharerSet(from),
		})
		return
	}
	d.dir.Remove(b)
}

// update stores an entry and tracks recalls in the stats.
func (d *Directory) update(b addr.Block, e coherence.Entry) coherence.Recall {
	recall := d.dir.Update(b, e)
	if recall.Valid {
		d.stats.Recalls++
	}
	return recall
}

func (d *Directory) checkSocket(s int) {
	if s < 0 || s >= d.cfg.Sockets {
		panic(fmt.Sprintf("core: directory %s: socket %d out of range [0,%d)", d.cfg.Name, s, d.cfg.Sockets))
	}
}

// BroadcastFilter implements the §IV-D optimisation: writes to pages
// classified as private to the writing thread skip the broadcast
// invalidation. It wraps the OS page classifier and keeps its own counters so
// the §VI-C experiment can report how many broadcasts the filter removed.
type BroadcastFilter struct {
	classifier *tlb.Classifier
	enabled    bool
	elided     uint64
	allowed    uint64
}

// NewBroadcastFilter builds a filter around the given classifier. A nil
// classifier or enabled=false disables filtering (every write is treated as
// potentially shared), which is the base C3D configuration.
func NewBroadcastFilter(classifier *tlb.Classifier, enabled bool) *BroadcastFilter {
	return &BroadcastFilter{classifier: classifier, enabled: enabled && classifier != nil}
}

// Enabled reports whether filtering is active.
func (f *BroadcastFilter) Enabled() bool { return f.enabled }

// PagePrivate reports whether the page holding block b is known to be
// private to the given thread, in which case a GetX in directory state
// Invalid may skip its broadcast. It also accumulates the counters used by
// §VI-C.
func (f *BroadcastFilter) PagePrivate(b addr.Block, thread int) bool {
	if !f.enabled {
		f.allowed++
		return false
	}
	if f.classifier.IsPrivateTo(addr.PageOfBlock(b), thread) {
		f.elided++
		return true
	}
	f.allowed++
	return false
}

// Elided returns the number of broadcast opportunities removed by the filter.
func (f *BroadcastFilter) Elided() uint64 { return f.elided }

// Allowed returns the number of queries that did not elide a broadcast.
func (f *BroadcastFilter) Allowed() uint64 { return f.allowed }

// ResetStats clears the filter's counters.
func (f *BroadcastFilter) ResetStats() { f.elided, f.allowed = 0, 0 }
