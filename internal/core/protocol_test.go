package core

import (
	"strings"
	"testing"
)

func TestProtocolModelInitial(t *testing.T) {
	m := NewProtocolModel(DefaultProtocolConfig())
	init := m.Initial()
	if len(init) != 1 {
		t.Fatalf("Initial returned %d states, want 1", len(init))
	}
	if !m.Quiescent(init[0]) {
		t.Error("the initial state should be quiescent")
	}
	if err := m.Check(init[0]); err != nil {
		t.Errorf("initial state violates invariants: %v", err)
	}
	if !strings.Contains(m.Name(), "c3d") {
		t.Errorf("Name = %q, want it to identify the protocol", m.Name())
	}
}

func TestProtocolStateEncodingRoundTrip(t *testing.T) {
	m := NewProtocolModel(ProtocolConfig{Sockets: 2, LoadsPerCore: 1, StoresPerCore: 1})
	init := m.Initial()[0]
	// Take a couple of steps and re-encode each successor: encode(decode(s))
	// must be the identity, otherwise the visited-set deduplication breaks.
	states := []string{init}
	for depth := 0; depth < 3; depth++ {
		var next []string
		for _, s := range states {
			succ, err := m.Successors(s)
			if err != nil {
				t.Fatalf("Successors: %v", err)
			}
			next = append(next, succ...)
		}
		for _, s := range next {
			if re := encodeState(decodeState(s)); re != s {
				t.Fatalf("encoding not canonical:\n  in: %s\n out: %s", s, re)
			}
		}
		states = next
		if len(states) == 0 {
			break
		}
	}
}

func TestProtocolSuccessorsFromInitial(t *testing.T) {
	m := NewProtocolModel(ProtocolConfig{Sockets: 2, LoadsPerCore: 1, StoresPerCore: 1})
	succ, err := m.Successors(m.Initial()[0])
	if err != nil {
		t.Fatalf("Successors: %v", err)
	}
	// From the initial state each of the 2 sockets can issue a load or a
	// store: 4 successors, no evictions possible yet.
	if len(succ) != 4 {
		t.Errorf("initial state has %d successors, want 4", len(succ))
	}
}

func TestProtocolSmallConfigExploresClean(t *testing.T) {
	// A tiny exhaustive exploration inline (the full search lives in
	// internal/mc): single socket, one load + one store must terminate
	// without violations and reach quiescent states.
	m := NewProtocolModel(ProtocolConfig{Sockets: 1, LoadsPerCore: 1, StoresPerCore: 1})
	visited := map[string]bool{}
	frontier := m.Initial()
	quiescentSeen := 0
	for len(frontier) > 0 {
		next := []string{}
		for _, s := range frontier {
			if visited[s] {
				continue
			}
			visited[s] = true
			if err := m.Check(s); err != nil {
				t.Fatalf("invariant violation: %v", err)
			}
			succ, err := m.Successors(s)
			if err != nil {
				t.Fatalf("transition violation: %v", err)
			}
			if len(succ) == 0 {
				if !m.Quiescent(s) {
					t.Fatalf("deadlock: non-quiescent state has no successors: %s", s)
				}
				quiescentSeen++
			}
			next = append(next, succ...)
		}
		frontier = next
	}
	if quiescentSeen == 0 {
		t.Error("exploration never reached a terminal quiescent state")
	}
	if len(visited) < 5 {
		t.Errorf("explored only %d states; the model looks degenerate", len(visited))
	}
}

func TestSuccessorsAppendMatchesSuccessors(t *testing.T) {
	// SuccessorsAppend with an aggressively reused buffer must agree with
	// Successors state-for-state across a few BFS levels (the model checker
	// reuses one buffer per worker for the whole search).
	m := NewProtocolModel(ProtocolConfig{Sockets: 2, LoadsPerCore: 1, StoresPerCore: 1})
	var buf []string
	frontier := m.Initial()
	checked := 0
	for depth := 0; depth < 6; depth++ {
		var next []string
		for _, s := range frontier {
			fresh, err1 := m.Successors(s)
			var err2 error
			buf, err2 = m.SuccessorsAppend(s, buf[:0])
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("error mismatch for %q: %v vs %v", FormatState(s), err1, err2)
			}
			if len(fresh) != len(buf) {
				t.Fatalf("successor count mismatch: %d vs %d", len(fresh), len(buf))
			}
			for i := range fresh {
				if fresh[i] != buf[i] {
					t.Fatalf("successor %d differs at depth %d:\n fresh: %s\nappend: %s",
						i, depth, FormatState(fresh[i]), FormatState(buf[i]))
				}
			}
			checked++
			next = append(next, fresh...)
		}
		frontier = next
	}
	if checked < 100 {
		t.Errorf("only %d states compared; expansion looks degenerate", checked)
	}
}

func TestSuccessorsAppendPreservesPrefix(t *testing.T) {
	m := NewProtocolModel(ProtocolConfig{Sockets: 2, LoadsPerCore: 1, StoresPerCore: 1})
	init := m.Initial()[0]
	out, err := m.SuccessorsAppend(init, []string{"sentinel"})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) < 2 || out[0] != "sentinel" {
		t.Errorf("SuccessorsAppend must append after the existing prefix, got %d entries, first %q", len(out), out[0])
	}
}

func TestProtocolModelRejectsBadSocketCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("socket count 0 should panic")
		}
	}()
	NewProtocolModel(ProtocolConfig{Sockets: 0})
}

func TestProtocolStateNames(t *testing.T) {
	wantLLC := []string{"I", "S", "M", "IS_D", "IM_AD", "MI_A", "II_A"}
	for i, want := range wantLLC {
		if got := llcState(i).String(); got != want {
			t.Errorf("llcState(%d) = %q, want %q", i, got, want)
		}
	}
	if dcI.String() != "I" || dcV.String() != "V" {
		t.Error("unexpected DRAM-cache state names")
	}
	for k := msgKind(0); k < numMsgKinds; k++ {
		if k.String() == "" {
			t.Errorf("message kind %d has no name", k)
		}
	}
}

// TestFormatStateRoundTrips smoke-tests the violation-report pretty-printer
// on a real reachable state.
func TestFormatState(t *testing.T) {
	m := NewProtocolModel(ProtocolConfig{Sockets: 2, LoadsPerCore: 1, StoresPerCore: 1})
	succ, err := m.Successors(m.Initial()[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range append(m.Initial(), succ...) {
		out := FormatState(s)
		if !strings.Contains(out, "dir{") || !strings.Contains(out, "socket 0") {
			t.Fatalf("FormatState output looks wrong:\n%s", out)
		}
	}
}

// BenchmarkStateCodec measures the model checker's inner loop currency: the
// canonical encode/decode round trip of a mid-exploration state with
// messages in flight.
func BenchmarkStateCodec(b *testing.B) {
	m := NewProtocolModel(ProtocolConfig{Sockets: 3, LoadsPerCore: 1, StoresPerCore: 1})
	// Walk a few levels deep so the benchmarked state has in-flight messages.
	state := m.Initial()[0]
	for i := 0; i < 3; i++ {
		succ, err := m.Successors(state)
		if err != nil || len(succ) == 0 {
			b.Fatalf("setup: %v (%d successors)", err, len(succ))
		}
		state = succ[len(succ)-1]
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if re := encodeState(decodeState(state)); len(re) != len(state) {
			b.Fatal("round trip changed length")
		}
	}
}

// BenchmarkSuccessors measures full successor generation, the other half of
// the exploration hot path.
func BenchmarkSuccessors(b *testing.B) {
	m := NewProtocolModel(ProtocolConfig{Sockets: 3, LoadsPerCore: 1, StoresPerCore: 1})
	state := m.Initial()[0]
	for i := 0; i < 2; i++ {
		succ, err := m.Successors(state)
		if err != nil || len(succ) == 0 {
			b.Fatalf("setup: %v", err)
		}
		state = succ[0]
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Successors(state); err != nil {
			b.Fatal(err)
		}
	}
}
