package core

import (
	"fmt"

	"c3d/internal/cache"
	"c3d/internal/coherence"
)

// This file captures the clean-DRAM-cache policy of §IV-A as explicit,
// testable decisions. The machine's C3D engine executes these decisions; the
// alternative designs (snoopy, full-dir) use the dirty-victim-cache decisions
// for comparison.

// EvictionAction describes what must happen when a block leaves the LLC.
type EvictionAction struct {
	// WriteToMemory: the block's data must be written back to the home
	// socket's memory (a data message on the interconnect when the home is
	// remote, plus a memory write).
	WriteToMemory bool
	// FillLocalDRAMCache: a copy (always clean under C3D) is installed in
	// the local socket's DRAM cache so the socket keeps fast local access.
	FillLocalDRAMCache bool
	// FillDirty: the DRAM cache copy is installed dirty (only under the
	// write-back policy of the naive designs).
	FillDirty bool
	// NotifyDirectory: the home directory must be told the on-chip copy is
	// gone (a PutX). Silent for clean/Shared evictions.
	NotifyDirectory bool
}

// CleanLLCEviction returns the C3D action for an LLC eviction of a block in
// the given state with the given dirty bit:
//
//   - Modified/dirty blocks are written through to memory (keeping memory
//     up to date — the clean property) AND retained clean in the local DRAM
//     cache, and the directory is notified (Fig. 5's PutX path).
//   - Shared/clean blocks are silently dropped into the local DRAM cache as
//     the victim-cache fill; no memory traffic, no directory message.
func CleanLLCEviction(state cache.State, dirty bool) EvictionAction {
	switch state {
	case coherence.LineModified:
		return EvictionAction{
			WriteToMemory:      true,
			FillLocalDRAMCache: true,
			FillDirty:          false,
			NotifyDirectory:    true,
		}
	case coherence.LineShared:
		return EvictionAction{
			WriteToMemory:      dirty, // defensive: a dirty Shared line would still be flushed
			FillLocalDRAMCache: true,
			FillDirty:          false,
			NotifyDirectory:    false,
		}
	case coherence.LineInvalid:
		return EvictionAction{}
	default:
		panic(fmt.Sprintf("core: unknown LLC line state %d", state))
	}
}

// DirtyLLCEviction returns the action used by the naive dirty-DRAM-cache
// designs of §III: dirty LLC victims are absorbed by the local DRAM cache
// (making it the only up-to-date copy), and memory is only updated when the
// DRAM cache later evicts the block.
func DirtyLLCEviction(state cache.State, dirty bool) EvictionAction {
	switch state {
	case coherence.LineModified:
		return EvictionAction{
			WriteToMemory:      false,
			FillLocalDRAMCache: true,
			FillDirty:          true,
			NotifyDirectory:    true,
		}
	case coherence.LineShared:
		return EvictionAction{
			WriteToMemory:      false,
			FillLocalDRAMCache: true,
			FillDirty:          dirty,
			NotifyDirectory:    false,
		}
	case coherence.LineInvalid:
		return EvictionAction{}
	default:
		panic(fmt.Sprintf("core: unknown LLC line state %d", state))
	}
}

// DRAMCacheEvictionNeedsWriteback reports whether a block evicted from the
// DRAM cache with the given dirty bit must be written back to memory. Under
// the clean policy this is never the case (the defining property of C3D);
// under the dirty policy it is exactly the dirty victims.
func DRAMCacheEvictionNeedsWriteback(clean bool, victimDirty bool) bool {
	if clean {
		return false
	}
	return victimDirty
}

// ReadMissBypassesRemoteDRAMCaches reports whether a read miss in the local
// socket may be served without probing any remote DRAM cache. This is the
// headline guarantee of C3D (§IV-A): with clean DRAM caches the only possible
// Modified copies are on-chip, so the directory either forwards from an
// on-chip owner or the memory value is valid. Dirty designs cannot make this
// guarantee.
func ReadMissBypassesRemoteDRAMCaches(clean bool) bool { return clean }
