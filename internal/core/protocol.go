package core

// This file contains a message-level model of the C3D coherence protocol for
// ONE cache block, suitable for exhaustive state-space exploration by
// internal/mc. It mirrors the Murϕ verification described in §IV-C of the
// paper: a global directory with three stable states, per-socket LLC and
// DRAM-cache controllers, an unordered interconnect, and the write-back /
// forwarding races that make directory protocols interesting.
//
// Modelling decisions (documented deviations from the timing engine):
//
//   - Upgrades are modelled as plain GetX requests (the paper treats them
//     identically except that the response carries no data, a bandwidth
//     optimisation with no protocol-state consequence).
//   - The directory is blocking per address: while a GetS/GetX transaction is
//     outstanding the directory defers further GetS/GetX for that block
//     (they stay in the network). PutX, InvAck and Unblock are always
//     deliverable, which is where the interesting races live.
//   - Data values are small integers: every store writes lastWrite+1, so the
//     checker can verify that loads observe the most recent write
//     (per-location sequential consistency) and that memory is up to date
//     whenever no on-chip cache holds the block Modified (the data-value
//     invariant enabled by clean DRAM caches).

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
)

// llcState is the on-chip (LLC and above) controller state for the block.
type llcState uint8

const (
	llcI   llcState = iota // not present
	llcS                   // read-only copy
	llcM                   // writable, possibly dirty copy
	llcISd                 // load miss outstanding, waiting for data
	llcIMa                 // store miss outstanding, waiting for data and acks
	llcMIa                 // Modified eviction outstanding, waiting for write-back ack
	llcIIa                 // lost ownership while evicting, waiting for write-back ack
)

func (s llcState) String() string {
	return [...]string{"I", "S", "M", "IS_D", "IM_AD", "MI_A", "II_A"}[s]
}

// dcState is the DRAM-cache controller state for the block. Because C3D keeps
// DRAM caches clean, the only states are "not present" and "holds a clean
// copy".
type dcState uint8

const (
	dcI dcState = iota
	dcV
)

func (s dcState) String() string {
	return [...]string{"I", "V"}[s]
}

// pendingOp is the core's outstanding memory operation, if any.
type pendingOp uint8

const (
	opNone pendingOp = iota
	opLoad
	opStore
)

// msgKind enumerates the protocol messages of the model. They correspond to
// the 15 message types of the paper's Murϕ model, folded slightly where a
// distinction has no state consequence.
type msgKind uint8

const (
	mGetS msgKind = iota
	mGetX
	mFwdGetS
	mFwdGetX
	mInv
	mInvAck
	mData        // block supplied by the previous owner
	mDataMem     // block supplied by memory at the home socket
	mPutX        // write-back of a Modified block (carries data)
	mAck         // write-back acknowledgement
	mUnblock     // transaction-complete notification from the requester
	mUnblockData // transaction-complete notification carrying data for memory
	numMsgKinds
)

func (k msgKind) String() string {
	return [...]string{"GetS", "GetX", "FwdGetS", "FwdGetX", "Inv", "InvAck",
		"Data", "DataMem", "PutX", "Ack", "Unblock", "UnblockData"}[k]
}

// message is one in-flight protocol message. Requester is carried by
// forwarded/invalidate messages so the responder knows where to send data or
// acks.
type message struct {
	Kind      msgKind
	Src, Dst  int8
	Requester int8
	Data      uint8
	Acks      int8
}

// socketState is the per-socket protocol state for the block.
type socketState struct {
	LLC     llcState
	LLCData uint8
	DC      dcState
	DCData  uint8

	Pending  pendingOp
	HaveData bool
	PendData uint8
	AcksNeed int8
	AcksGot  int8

	LoadsLeft  uint8
	StoresLeft uint8
}

// dirBusy records the transaction the blocking directory is serving.
type dirBusy struct {
	Busy        bool
	Requester   int8
	IsWrite     bool
	ForwardedTo int8 // socket a Fwd* was sent to, or -1
}

// protoState is the complete system state for one block.
type protoState struct {
	Sockets []socketState
	// Directory stable state, using the same vocabulary as the timing model.
	DirState uint8 // 0=I, 1=S, 2=M
	DirOwner int8
	Sharers  uint8 // bitmask
	Busy     dirBusy

	Memory    uint8
	LastWrite uint8

	Msgs []message
}

const (
	pdirI uint8 = iota
	pdirS
	pdirM
)

// ProtocolConfig parameterises the model.
type ProtocolConfig struct {
	// Sockets is the number of sockets (the paper verifies small
	// configurations; 2 or 3 keeps the state space tractable).
	Sockets int
	// LoadsPerCore and StoresPerCore bound each core's operations.
	LoadsPerCore  int
	StoresPerCore int
	// TrackDRAMCache selects the c3d-full-dir variant (GetS allocates
	// directory entries, PutX downgrades to Shared, no broadcasts).
	TrackDRAMCache bool
}

// DefaultProtocolConfig returns the configuration used by the verification
// experiment: 3 sockets, each core doing one load and one store.
func DefaultProtocolConfig() ProtocolConfig {
	return ProtocolConfig{Sockets: 3, LoadsPerCore: 1, StoresPerCore: 1}
}

// ProtocolModel is the explorable model; it implements the interface expected
// by internal/mc (via duck typing — mc defines the interface).
type ProtocolModel struct {
	cfg  ProtocolConfig
	home int8
}

// NewProtocolModel builds a model from cfg.
func NewProtocolModel(cfg ProtocolConfig) *ProtocolModel {
	if cfg.Sockets < 1 || cfg.Sockets > 8 {
		panic(fmt.Sprintf("core: protocol model supports 1..8 sockets, got %d", cfg.Sockets))
	}
	return &ProtocolModel{cfg: cfg, home: 0}
}

// Name identifies the model in reports.
func (m *ProtocolModel) Name() string {
	variant := "c3d"
	if m.cfg.TrackDRAMCache {
		variant = "c3d-full-dir"
	}
	return fmt.Sprintf("%s/%d-socket/%dL%dS", variant, m.cfg.Sockets, m.cfg.LoadsPerCore, m.cfg.StoresPerCore)
}

// Initial returns the single initial state: everything invalid, memory holds
// value 0.
func (m *ProtocolModel) Initial() []string {
	s := protoState{
		Sockets:  make([]socketState, m.cfg.Sockets),
		DirState: pdirI,
		DirOwner: -1,
		Busy:     dirBusy{ForwardedTo: -1},
	}
	for i := range s.Sockets {
		s.Sockets[i].LoadsLeft = uint8(m.cfg.LoadsPerCore)
		s.Sockets[i].StoresLeft = uint8(m.cfg.StoresPerCore)
	}
	return []string{encodeState(&s)}
}

// Quiescent reports whether the state has no outstanding work: no messages in
// flight, no pending core operations and an idle directory. States without
// successors must be quiescent, otherwise the system has deadlocked.
func (m *ProtocolModel) Quiescent(enc string) bool {
	sc := scratchPool.Get().(*modelScratch)
	decodeStateInto(&sc.base, enc)
	q := quiescentDecoded(&sc.base)
	scratchPool.Put(sc)
	return q
}

func quiescentDecoded(s *protoState) bool {
	if len(s.Msgs) != 0 || s.Busy.Busy {
		return false
	}
	for i := range s.Sockets {
		if s.Sockets[i].Pending != opNone {
			return false
		}
		switch s.Sockets[i].LLC {
		case llcISd, llcIMa, llcMIa, llcIIa:
			return false
		}
	}
	return true
}

// Check verifies the state invariants:
//
//  1. Single-Writer-Multiple-Reader: at most one socket holds the block
//     Modified on-chip, and while one does, no other socket holds any valid
//     copy (LLC or DRAM cache).
//  2. Clean DRAM caches: a DRAM cache never holds the block while the
//     directory believes memory is the owner *and* the value differs from
//     memory — checked in the quiescent-state data-value invariant below.
//  3. Data-value invariant (quiescent states): if no on-chip cache is
//     Modified, memory holds the most recent written value and every valid
//     copy agrees with it; if a socket is Modified, that socket holds the
//     most recent value.
func (m *ProtocolModel) Check(enc string) error {
	sc := scratchPool.Get().(*modelScratch)
	decodeStateInto(&sc.base, enc)
	err := checkDecoded(&sc.base)
	scratchPool.Put(sc)
	return err
}

func checkDecoded(s *protoState) error {
	owner := -1
	for i := range s.Sockets {
		if s.Sockets[i].LLC == llcM {
			if owner >= 0 {
				return fmt.Errorf("SWMR violated: sockets %d and %d both Modified", owner, i)
			}
			owner = i
		}
	}
	if owner >= 0 {
		for i := range s.Sockets {
			if i == owner {
				continue
			}
			if s.Sockets[i].LLC == llcS || s.Sockets[i].LLC == llcM {
				return fmt.Errorf("SWMR violated: socket %d holds a copy while socket %d is Modified", i, owner)
			}
			if s.Sockets[i].DC == dcV {
				return fmt.Errorf("stale-copy violation: socket %d DRAM cache holds the block while socket %d is Modified", i, owner)
			}
		}
	}
	if !quiescentDecoded(s) {
		return nil
	}
	// Quiescent-state data-value checks.
	if owner >= 0 {
		if s.Sockets[owner].LLCData != s.LastWrite {
			return fmt.Errorf("data-value violated: owner socket %d holds %d, last write was %d",
				owner, s.Sockets[owner].LLCData, s.LastWrite)
		}
		return nil
	}
	if s.Memory != s.LastWrite {
		return fmt.Errorf("data-value violated: memory holds %d, last write was %d (clean property broken)",
			s.Memory, s.LastWrite)
	}
	for i := range s.Sockets {
		// The observable copy of a socket is its LLC copy if valid, else its
		// DRAM cache copy. A DRAM cache copy shadowed by a valid LLC copy may
		// legitimately be stale (the paper notes this for Modified on-chip
		// copies): every path that removes the LLC copy either refreshes the
		// DRAM cache copy (eviction) or invalidates it (invalidation goes to
		// the DRAM cache first), so the stale value is never observable.
		switch {
		case s.Sockets[i].LLC == llcS:
			if s.Sockets[i].LLCData != s.LastWrite {
				return fmt.Errorf("data-value violated: socket %d LLC holds stale value %d (last write %d)",
					i, s.Sockets[i].LLCData, s.LastWrite)
			}
		case s.Sockets[i].DC == dcV:
			if s.Sockets[i].DCData != s.LastWrite {
				return fmt.Errorf("data-value violated: socket %d DRAM cache holds observable stale value %d (last write %d)",
					i, s.Sockets[i].DCData, s.LastWrite)
			}
		}
	}
	return nil
}

// Successors enumerates every state reachable in one atomic step: a core
// issuing an operation, a spontaneous eviction, or the delivery of one
// in-flight message. It returns an error if a transition itself violates a
// property (a load observing a stale value).
func (m *ProtocolModel) Successors(enc string) ([]string, error) {
	return m.SuccessorsAppend(enc, nil)
}

// SuccessorsAppend is the model checker's fast path (mc.AppendModel): it
// appends the successors of enc to buf. The decoded source state, the working
// state each transition mutates, and the encoder's byte buffer all come from
// a pooled scratch, so the only allocation per successor is its canonical
// string. Safe for concurrent use — each call owns its scratch.
func (m *ProtocolModel) SuccessorsAppend(enc string, buf []string) ([]string, error) {
	sc := scratchPool.Get().(*modelScratch)
	defer scratchPool.Put(sc)
	s := &sc.base
	decodeStateInto(s, enc)
	out := buf

	// stage copies the source state into the scratch working state, which the
	// transition helpers then mutate in place (they receive and return the
	// same pointer, so the pre-scratch `clone` call sites read unchanged).
	stage := func() *protoState {
		copyStateInto(&sc.work, s)
		return &sc.work
	}
	add := func(n *protoState) {
		sc.enc = encodeStateAppend(sc.enc[:0], n)
		out = append(out, string(sc.enc))
	}

	// Core-initiated transitions. New operations issue only when the
	// previous one has completed and the on-chip controller is in a stable
	// state (an eviction write-back in flight also blocks the next access to
	// this block, as it would in hardware where the MSHR is occupied).
	for i := range s.Sockets {
		sock := &s.Sockets[i]
		stable := sock.LLC == llcI || sock.LLC == llcS || sock.LLC == llcM
		if sock.Pending == opNone && stable && sock.LoadsLeft > 0 {
			n, err := m.issueLoad(stage(), i)
			if err != nil {
				return out, err
			}
			add(n)
		}
		if sock.Pending == opNone && stable && sock.StoresLeft > 0 {
			add(m.issueStore(stage(), i))
		}
		// Spontaneous evictions model capacity pressure.
		if sock.Pending == opNone && sock.LLC == llcS {
			add(m.evictShared(stage(), i))
		}
		if sock.Pending == opNone && sock.LLC == llcM {
			add(m.evictModified(stage(), i))
		}
		if sock.DC == dcV {
			add(m.evictDRAMCache(stage(), i))
		}
	}

	// Message deliveries.
	for idx := range s.Msgs {
		msg := s.Msgs[idx]
		if msg.Dst == m.home && (msg.Kind == mGetS || msg.Kind == mGetX) && s.Busy.Busy {
			// Blocking directory: requests wait while a transaction is
			// outstanding.
			continue
		}
		if msg.Kind == mPutX && s.Busy.Busy && s.Busy.ForwardedTo == msg.Src {
			// Write-back race: the directory has forwarded the in-flight
			// transaction to this very socket. The write-back is deferred
			// until the transaction completes, so exactly one party (the
			// ex-owner, which still holds the data in MI_A) supplies the
			// requester.
			continue
		}
		n := stage()
		n.Msgs = append(n.Msgs[:idx], n.Msgs[idx+1:]...)
		next, err := m.deliver(n, msg)
		if err != nil {
			return out, err
		}
		if next != nil {
			add(next)
		}
	}
	return out, nil
}

// --- core-initiated transitions ---

func (m *ProtocolModel) issueLoad(s *protoState, i int) (*protoState, error) {
	sock := &s.Sockets[i]
	switch sock.LLC {
	case llcS, llcM:
		// On-chip hit.
		if err := checkLoadValue(s, i, sock.LLCData); err != nil {
			return nil, err
		}
		sock.LoadsLeft--
		return s, nil
	case llcI:
		if sock.DC == dcV {
			// Local DRAM cache hit: the defining fast path of C3D. No
			// messages leave the socket.
			if err := checkLoadValue(s, i, sock.DCData); err != nil {
				return nil, err
			}
			sock.LLC = llcS
			sock.LLCData = sock.DCData
			sock.LoadsLeft--
			return s, nil
		}
		sock.LLC = llcISd
		sock.Pending = opLoad
		send(s, message{Kind: mGetS, Src: int8(i), Dst: m.home, Requester: int8(i)})
		return s, nil
	default:
		panic(fmt.Sprintf("core: issueLoad in unexpected state %v", sock.LLC))
	}
}

func (m *ProtocolModel) issueStore(s *protoState, i int) *protoState {
	sock := &s.Sockets[i]
	switch sock.LLC {
	case llcM:
		// Write hit.
		s.LastWrite++
		sock.LLCData = s.LastWrite
		sock.StoresLeft--
		return s
	case llcS, llcI:
		// Treat upgrades as GetX (see the file comment).
		sock.LLC = llcIMa
		sock.Pending = opStore
		sock.HaveData = false
		sock.AcksNeed = -1 // unknown until the directory answers
		sock.AcksGot = 0
		send(s, message{Kind: mGetX, Src: int8(i), Dst: m.home, Requester: int8(i)})
		return s
	default:
		panic(fmt.Sprintf("core: issueStore in unexpected state %v", sock.LLC))
	}
}

func (m *ProtocolModel) evictShared(s *protoState, i int) *protoState {
	sock := &s.Sockets[i]
	// Silent eviction; the victim is captured by the local DRAM cache
	// (victim-cache organisation, §II-C), which stays clean.
	sock.DC = dcV
	sock.DCData = sock.LLCData
	sock.LLC = llcI
	return s
}

func (m *ProtocolModel) evictModified(s *protoState, i int) *protoState {
	sock := &s.Sockets[i]
	// Fig. 5 PutX path: the DRAM cache takes a clean copy of the data and
	// forwards the write-back to the global directory; the LLC waits for the
	// directory's ack.
	sock.DC = dcV
	sock.DCData = sock.LLCData
	sock.LLC = llcMIa
	send(s, message{Kind: mPutX, Src: int8(i), Dst: m.home, Requester: int8(i), Data: sock.LLCData})
	return s
}

func (m *ProtocolModel) evictDRAMCache(s *protoState, i int) *protoState {
	// Clean DRAM cache: evictions are silent and never produce write-backs.
	s.Sockets[i].DC = dcI
	return s
}

// --- message delivery ---

func (m *ProtocolModel) deliver(s *protoState, msg message) (*protoState, error) {
	switch msg.Kind {
	case mGetS:
		return m.dirGetS(s, msg), nil
	case mGetX:
		return m.dirGetX(s, msg), nil
	case mPutX:
		return m.dirPutX(s, msg), nil
	case mUnblock, mUnblockData:
		return m.dirUnblock(s, msg), nil
	case mFwdGetS:
		return m.sockFwdGetS(s, msg), nil
	case mFwdGetX:
		return m.sockFwdGetX(s, msg), nil
	case mInv:
		return m.sockInv(s, msg), nil
	case mInvAck:
		return m.sockInvAck(s, msg)
	case mData, mDataMem:
		return m.sockData(s, msg)
	case mAck:
		return m.sockAck(s, msg), nil
	default:
		panic(fmt.Sprintf("core: unknown message kind %v", msg.Kind))
	}
}

func (m *ProtocolModel) dirGetS(s *protoState, msg message) *protoState {
	req := msg.Requester
	s.Busy = dirBusy{Busy: true, Requester: req, IsWrite: false, ForwardedTo: -1}
	switch s.DirState {
	case pdirI:
		send(s, message{Kind: mDataMem, Src: int8(m.home), Dst: req, Data: s.Memory})
		if m.cfg.TrackDRAMCache {
			s.DirState = pdirS
			s.Sharers = 1 << uint(req)
		}
		// Base C3D: the directory does NOT allocate an entry for a GetS in
		// Invalid (non-inclusive directory, §IV-B).
	case pdirS:
		send(s, message{Kind: mDataMem, Src: int8(m.home), Dst: req, Data: s.Memory})
		s.Sharers |= 1 << uint(req)
	case pdirM:
		owner := s.DirOwner
		send(s, message{Kind: mFwdGetS, Src: int8(m.home), Dst: owner, Requester: req})
		s.DirState = pdirS
		s.Sharers = (1 << uint(owner)) | (1 << uint(req))
		s.DirOwner = -1
		s.Busy.ForwardedTo = owner
	}
	return s
}

func (m *ProtocolModel) dirGetX(s *protoState, msg message) *protoState {
	req := msg.Requester
	s.Busy = dirBusy{Busy: true, Requester: req, IsWrite: true, ForwardedTo: -1}
	switch s.DirState {
	case pdirI:
		// Untracked block: broadcast invalidations to every other socket's
		// DRAM cache (and on-chip hierarchy). The requester collects one
		// InvAck per socket.
		acks := int8(0)
		for j := 0; j < m.cfg.Sockets; j++ {
			if int8(j) == req {
				continue
			}
			send(s, message{Kind: mInv, Src: int8(m.home), Dst: int8(j), Requester: req})
			acks++
		}
		send(s, message{Kind: mDataMem, Src: int8(m.home), Dst: req, Data: s.Memory, Acks: acks})
	case pdirS:
		acks := int8(0)
		for j := 0; j < m.cfg.Sockets; j++ {
			if int8(j) == req || s.Sharers&(1<<uint(j)) == 0 {
				continue
			}
			send(s, message{Kind: mInv, Src: int8(m.home), Dst: int8(j), Requester: req})
			acks++
		}
		send(s, message{Kind: mDataMem, Src: int8(m.home), Dst: req, Data: s.Memory, Acks: acks})
	case pdirM:
		owner := s.DirOwner
		send(s, message{Kind: mFwdGetX, Src: int8(m.home), Dst: owner, Requester: req})
		s.Busy.ForwardedTo = owner
	}
	s.DirState = pdirM
	s.DirOwner = req
	s.Sharers = 1 << uint(req)
	return s
}

func (m *ProtocolModel) dirPutX(s *protoState, msg message) *protoState {
	from := msg.Src
	if s.DirState == pdirM && s.DirOwner == from {
		// Normal write-back: the clean property is maintained by writing the
		// data through to memory. Base C3D drops the entry (Invalid);
		// c3d-full-dir keeps it Shared.
		s.Memory = msg.Data
		if m.cfg.TrackDRAMCache {
			s.DirState = pdirS
			s.DirOwner = -1
			s.Sharers = 1 << uint(from)
		} else {
			s.DirState = pdirI
			s.DirOwner = -1
			s.Sharers = 0
		}
	}
	// A stale PutX (the socket already lost ownership) updates nothing.
	send(s, message{Kind: mAck, Src: int8(m.home), Dst: from})
	return s
}

func (m *ProtocolModel) dirUnblock(s *protoState, msg message) *protoState {
	if msg.Kind == mUnblockData {
		// The requester obtained the block from the previous owner on a
		// GetS; memory is updated so the Shared state's "memory is not
		// stale" invariant holds.
		s.Memory = msg.Data
	}
	s.Busy = dirBusy{ForwardedTo: -1}
	return s
}

func (m *ProtocolModel) sockFwdGetS(s *protoState, msg message) *protoState {
	i := int(msg.Dst)
	sock := &s.Sockets[i]
	switch sock.LLC {
	case llcM:
		// Downgrade to Shared, forward the data to the requester. Memory is
		// updated when the requester unblocks with the data.
		sock.LLC = llcS
		send(s, message{Kind: mData, Src: int8(i), Dst: msg.Requester, Data: sock.LLCData})
	case llcMIa:
		// Eviction in progress: the write-back is deferred at the directory
		// (see Successors), so this socket still holds the data and is the
		// one that must serve the requester. It stays in MI_A awaiting the
		// (deferred) write-back acknowledgement.
		send(s, message{Kind: mData, Src: int8(i), Dst: msg.Requester, Data: sock.LLCData})
	default:
		panic(fmt.Sprintf("core: socket %d received FwdGetS in state %v", i, sock.LLC))
	}
	return s
}

func (m *ProtocolModel) sockFwdGetX(s *protoState, msg message) *protoState {
	i := int(msg.Dst)
	sock := &s.Sockets[i]
	switch sock.LLC {
	case llcM:
		send(s, message{Kind: mData, Src: int8(i), Dst: msg.Requester, Data: sock.LLCData})
		sock.LLC = llcI
		// Losing ownership invalidates the whole hierarchy, including the
		// (possibly stale) DRAM cache copy.
		sock.DC = dcI
	case llcMIa:
		// Eviction in progress (write-back deferred at the directory): serve
		// the requester, drop every local copy, and keep waiting for the
		// write-back acknowledgement.
		send(s, message{Kind: mData, Src: int8(i), Dst: msg.Requester, Data: sock.LLCData})
		sock.LLC = llcIIa
		sock.DC = dcI
	default:
		panic(fmt.Sprintf("core: socket %d received FwdGetX in state %v", i, sock.LLC))
	}
	return s
}

func (m *ProtocolModel) sockInv(s *protoState, msg message) *protoState {
	i := int(msg.Dst)
	sock := &s.Sockets[i]
	// Invalidations go to the DRAM cache first, then the LLC (§IV-C).
	sock.DC = dcI
	if sock.LLC == llcS {
		sock.LLC = llcI
	}
	send(s, message{Kind: mInvAck, Src: int8(i), Dst: msg.Requester})
	return s
}

func (m *ProtocolModel) sockInvAck(s *protoState, msg message) (*protoState, error) {
	i := int(msg.Dst)
	sock := &s.Sockets[i]
	sock.AcksGot++
	return m.maybeCompleteStore(s, i)
}

func (m *ProtocolModel) sockData(s *protoState, msg message) (*protoState, error) {
	i := int(msg.Dst)
	sock := &s.Sockets[i]
	switch sock.LLC {
	case llcISd:
		if err := checkLoadValue(s, i, msg.Data); err != nil {
			return nil, err
		}
		sock.LLC = llcS
		sock.LLCData = msg.Data
		sock.Pending = opNone
		sock.LoadsLeft--
		if msg.Kind == mData {
			// Data came from the previous owner: carry it to memory with the
			// unblock so the Shared state's invariant holds.
			send(s, message{Kind: mUnblockData, Src: int8(i), Dst: m.home, Data: msg.Data})
		} else {
			send(s, message{Kind: mUnblock, Src: int8(i), Dst: m.home})
		}
		return s, nil
	case llcIMa:
		sock.HaveData = true
		sock.PendData = msg.Data
		if msg.Kind == mDataMem {
			sock.AcksNeed = msg.Acks
		} else {
			// Data forwarded from the previous owner: no invalidation acks
			// are outstanding.
			sock.AcksNeed = 0
		}
		return m.maybeCompleteStore(s, i)
	default:
		return nil, fmt.Errorf("socket %d received %v in unexpected state %v", i, msg.Kind, sock.LLC)
	}
}

func (m *ProtocolModel) maybeCompleteStore(s *protoState, i int) (*protoState, error) {
	sock := &s.Sockets[i]
	if sock.LLC != llcIMa || !sock.HaveData || sock.AcksNeed < 0 || sock.AcksGot < sock.AcksNeed {
		return s, nil
	}
	// All invalidations acknowledged and data present: perform the write.
	s.LastWrite++
	sock.LLC = llcM
	sock.LLCData = s.LastWrite
	sock.Pending = opNone
	sock.HaveData = false
	sock.AcksNeed = -1
	sock.AcksGot = 0
	sock.StoresLeft--
	send(s, message{Kind: mUnblock, Src: int8(i), Dst: m.home})
	return s, nil
}

func (m *ProtocolModel) sockAck(s *protoState, msg message) *protoState {
	i := int(msg.Dst)
	sock := &s.Sockets[i]
	if sock.LLC == llcMIa || sock.LLC == llcIIa {
		sock.LLC = llcI
	}
	return s
}

// checkLoadValue verifies per-location sequential consistency: a completing
// load must observe the most recent store's value.
func checkLoadValue(s *protoState, socket int, value uint8) error {
	if value != s.LastWrite {
		return fmt.Errorf("socket %d load observed value %d, most recent write is %d", socket, value, s.LastWrite)
	}
	return nil
}

// --- state plumbing ---

func send(s *protoState, msg message) { s.Msgs = append(s.Msgs, msg) }

// modelScratch is the per-call working memory of SuccessorsAppend, Check and
// Quiescent: a decoded source state, a staging state for transitions, and the
// encoder's byte buffer. Pooling it makes state exploration allocation-free
// apart from the successor strings themselves, which matters because the
// model checker decodes every state it visits (several million on the larger
// configurations).
type modelScratch struct {
	base protoState
	work protoState
	enc  []byte
}

var scratchPool = sync.Pool{New: func() any { return new(modelScratch) }}

// copyStateInto copies src into dst, reusing dst's socket and message
// backing arrays.
func copyStateInto(dst, src *protoState) {
	sockets, msgs := dst.Sockets, dst.Msgs
	*dst = *src
	dst.Sockets = append(sockets[:0], src.Sockets...)
	dst.Msgs = append(msgs[:0], src.Msgs...)
}

// State encoding. States are the model checker's currency: every transition
// encodes its result and every visited-set probe hashes the encoding, so the
// codec is the verification hot path. The format is a fixed-layout binary
// string (mc treats states as opaque strings): an 8-byte header, one byte for
// the socket count, 11 bytes per socket, and 6 bytes per in-flight message.
// int8 fields (-1 sentinels included) are stored as their two's-complement
// byte. The message multiset is sorted bytewise so that states differing only
// in message ordering hash identically.
const (
	encHeaderLen = 9
	encSockLen   = 11
	encMsgLen    = 6
)

func encodeState(s *protoState) string {
	return string(encodeStateAppend(nil, s))
}

// encodeStateAppend appends the canonical encoding of s to b and returns the
// extended buffer. It is the allocation-free core of encodeState: callers
// that reuse b (the model scratch) pay only for the final string conversion.
func encodeStateAppend(b []byte, s *protoState) []byte {
	flags := byte(0)
	if s.Busy.Busy {
		flags |= 1
	}
	if s.Busy.IsWrite {
		flags |= 2
	}
	b = append(b, s.DirState, byte(s.DirOwner), s.Sharers, flags,
		byte(s.Busy.Requester), byte(s.Busy.ForwardedTo), s.Memory, s.LastWrite,
		byte(len(s.Sockets)))
	for i := range s.Sockets {
		k := &s.Sockets[i]
		sflags := byte(0)
		if k.HaveData {
			sflags |= 1
		}
		b = append(b, byte(k.LLC), k.LLCData, byte(k.DC), k.DCData,
			byte(k.Pending), sflags, k.PendData, byte(k.AcksNeed), byte(k.AcksGot),
			k.LoadsLeft, k.StoresLeft)
	}
	msgStart := len(b)
	for _, msg := range s.Msgs {
		b = append(b, byte(msg.Kind), byte(msg.Src), byte(msg.Dst),
			byte(msg.Requester), msg.Data, byte(msg.Acks))
	}
	sortMessageRecords(b[msgStart:])
	return b
}

// sortMessageRecords canonically orders the 6-byte message records in place
// (insertion sort: the in-flight message count is small, typically under
// ten, and this avoids the sort.Slice closure and swap allocations).
func sortMessageRecords(b []byte) {
	n := len(b) / encMsgLen
	var tmp [encMsgLen]byte
	for i := 1; i < n; i++ {
		copy(tmp[:], b[i*encMsgLen:(i+1)*encMsgLen])
		j := i - 1
		for j >= 0 && bytes.Compare(b[j*encMsgLen:(j+1)*encMsgLen], tmp[:]) > 0 {
			copy(b[(j+1)*encMsgLen:(j+2)*encMsgLen], b[j*encMsgLen:(j+1)*encMsgLen])
			j--
		}
		copy(b[(j+1)*encMsgLen:(j+2)*encMsgLen], tmp[:])
	}
}

// decodeState parses the canonical encoding back into a freshly allocated
// state. The format is internal to this package; mc treats states as opaque
// strings.
func decodeState(enc string) *protoState {
	s := new(protoState)
	decodeStateInto(s, enc)
	return s
}

// decodeStateInto parses the canonical encoding into s, reusing its socket
// and message backing arrays. This is the hot-path form: the model checker
// decodes every state it visits, and with a pooled target the decode
// allocates nothing in steady state.
func decodeStateInto(s *protoState, enc string) {
	if len(enc) < encHeaderLen {
		panic(fmt.Sprintf("core: malformed protocol state (%d bytes)", len(enc)))
	}
	sockets, msgs := s.Sockets, s.Msgs
	*s = protoState{
		DirState: enc[0],
		DirOwner: int8(enc[1]),
		Sharers:  enc[2],
		Busy: dirBusy{
			Busy:        enc[3]&1 != 0,
			IsWrite:     enc[3]&2 != 0,
			Requester:   int8(enc[4]),
			ForwardedTo: int8(enc[5]),
		},
		Memory:    enc[6],
		LastWrite: enc[7],
	}
	nSockets := int(enc[8])
	off := encHeaderLen
	if rem := len(enc) - off - nSockets*encSockLen; rem < 0 || rem%encMsgLen != 0 {
		panic(fmt.Sprintf("core: malformed protocol state (%d bytes, %d sockets)", len(enc), nSockets))
	}
	if cap(sockets) < nSockets {
		sockets = make([]socketState, nSockets)
	}
	s.Sockets = sockets[:nSockets]
	for i := range s.Sockets {
		k := &s.Sockets[i]
		k.LLC = llcState(enc[off])
		k.LLCData = enc[off+1]
		k.DC = dcState(enc[off+2])
		k.DCData = enc[off+3]
		k.Pending = pendingOp(enc[off+4])
		k.HaveData = enc[off+5]&1 != 0
		k.PendData = enc[off+6]
		k.AcksNeed = int8(enc[off+7])
		k.AcksGot = int8(enc[off+8])
		k.LoadsLeft = enc[off+9]
		k.StoresLeft = enc[off+10]
		off += encSockLen
	}
	nMsgs := (len(enc) - off) / encMsgLen
	if cap(msgs) < nMsgs {
		msgs = make([]message, nMsgs)
	}
	s.Msgs = msgs[:nMsgs]
	for i := range s.Msgs {
		s.Msgs[i] = message{
			Kind:      msgKind(enc[off]),
			Src:       int8(enc[off+1]),
			Dst:       int8(enc[off+2]),
			Requester: int8(enc[off+3]),
			Data:      enc[off+4],
			Acks:      int8(enc[off+5]),
		}
		off += encMsgLen
	}
}

// FormatState renders an encoded state human-readably. It implements the
// model checker's optional StateFormatter interface, so violation reports
// show protocol vocabulary instead of the raw binary encoding.
func (m *ProtocolModel) FormatState(enc string) string { return FormatState(enc) }

// FormatState renders an encoded state human-readably (see the method above;
// the package-level function serves tests and ad-hoc debugging).
func FormatState(enc string) string {
	s := decodeState(enc)
	var b strings.Builder
	fmt.Fprintf(&b, "dir{state:%d owner:%d sharers:%08b busy:%v req:%d fwd:%d} mem:%d lastWrite:%d",
		s.DirState, s.DirOwner, s.Sharers, s.Busy.Busy, s.Busy.Requester, s.Busy.ForwardedTo,
		s.Memory, s.LastWrite)
	for i := range s.Sockets {
		k := &s.Sockets[i]
		fmt.Fprintf(&b, "\n  socket %d: llc:%v/%d dc:%v/%d pending:%d acks:%d/%d loads:%d stores:%d",
			i, k.LLC, k.LLCData, k.DC, k.DCData, k.Pending, k.AcksGot, k.AcksNeed, k.LoadsLeft, k.StoresLeft)
	}
	for _, msg := range s.Msgs {
		fmt.Fprintf(&b, "\n  msg %v %d->%d req:%d data:%d acks:%d",
			msg.Kind, msg.Src, msg.Dst, msg.Requester, msg.Data, msg.Acks)
	}
	return b.String()
}
