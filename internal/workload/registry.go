package workload

import (
	"fmt"
	"sort"
	"sync"

	"c3d/internal/numa"
)

// Region sizes are expressed at paper scale (1 GB DRAM cache per socket,
// 16 MB LLC per socket); Options.Scale shrinks them together with the caches
// so the capacity ratios — which decide hit rates and therefore every result
// — are preserved.
const (
	kib = 1 << 10
	mib = 1 << 20
	gib = 1 << 30
)

// The parameters below are not measurements of the original benchmarks; they
// are the knobs of the synthetic generator chosen so each workload plays the
// same role it plays in the paper's evaluation:
//
//   - streamcluster: shared working set fits entirely in the DRAM caches;
//     the biggest C3D winner (+50.7% in Fig. 6).
//   - facesim / fluidanimate: PARSEC workloads with heavy producer/consumer
//     communication, the cases where the dirty-cache designs (snoopy,
//     full-dir) suffer the slow-remote-hit pathology.
//   - freqmine / canneal: large-footprint PARSEC workloads with moderate
//     communication; DRAM caches filter part of the traffic.
//   - tunkrank: graph analytics with a larger thread-private component
//     (lowest remote fraction in Table I, 61.6%).
//   - nutch: front-end/back-end thread pairs communicating through buffers
//     larger than the LLC — the server workload where full-dir loses badly.
//   - cassandra / classification: server workloads with little inter-thread
//     communication, where even full-dir gains over the baseline.
//   - mcf: the single-threaded SPEC workload used in §VI-C to evaluate the
//     TLB-based broadcast filter.
var builtins = []Spec{
	{
		Name: "facesim", Class: Parallel,
		SharedBytes: 1536 * mib, PrivateBytesPerThread: 4 * mib, MailboxBytesPerThread: 32 * mib,
		SharedFraction: 0.82, CommFraction: 0.10, ReadFraction: 0.75,
		LocalitySkew: 2.6, SpatialRun: 8, MeanGap: 6,
		AccessesPerThread: 200_000, InitFraction: 1.5,
		DefaultThreads: 32, PreferredPolicy: numa.Interleave, Seed: 101,
	},
	{
		Name: "streamcluster", Class: Parallel,
		SharedBytes: 640 * mib, PrivateBytesPerThread: 2 * mib, MailboxBytesPerThread: 8 * mib,
		SharedFraction: 0.92, CommFraction: 0.02, ReadFraction: 0.88,
		LocalitySkew: 1.4, SpatialRun: 8, MeanGap: 5,
		AccessesPerThread: 200_000, InitFraction: 1.5,
		DefaultThreads: 32, PreferredPolicy: numa.Interleave, Seed: 102,
	},
	{
		Name: "freqmine", Class: Parallel,
		SharedBytes: 1664 * mib, PrivateBytesPerThread: 8 * mib, MailboxBytesPerThread: 24 * mib,
		SharedFraction: 0.84, CommFraction: 0.05, ReadFraction: 0.82,
		LocalitySkew: 3.0, SpatialRun: 6, MeanGap: 7,
		AccessesPerThread: 200_000, InitFraction: 1.5,
		DefaultThreads: 32, PreferredPolicy: numa.Interleave, Seed: 103,
	},
	{
		Name: "fluidanimate", Class: Parallel,
		SharedBytes: 1280 * mib, PrivateBytesPerThread: 6 * mib, MailboxBytesPerThread: 32 * mib,
		SharedFraction: 0.80, CommFraction: 0.08, ReadFraction: 0.72,
		LocalitySkew: 2.4, SpatialRun: 6, MeanGap: 6,
		AccessesPerThread: 200_000, InitFraction: 1.5,
		DefaultThreads: 32, PreferredPolicy: numa.FirstTouch2, Seed: 104,
	},
	{
		Name: "canneal", Class: Parallel,
		SharedBytes: 2560 * mib, PrivateBytesPerThread: 4 * mib, MailboxBytesPerThread: 16 * mib,
		SharedFraction: 0.88, CommFraction: 0.04, ReadFraction: 0.78,
		LocalitySkew: 1.9, SpatialRun: 2, MeanGap: 5,
		AccessesPerThread: 200_000, InitFraction: 1.5,
		DefaultThreads: 32, PreferredPolicy: numa.Interleave, Seed: 105,
	},
	{
		Name: "tunkrank", Class: Graph,
		SharedBytes: 1024 * mib, PrivateBytesPerThread: 96 * mib, MailboxBytesPerThread: 8 * mib,
		SharedFraction: 0.58, CommFraction: 0.03, ReadFraction: 0.82,
		LocalitySkew: 2.2, SpatialRun: 3, MeanGap: 8,
		AccessesPerThread: 200_000, InitFraction: 1.5,
		DefaultThreads: 32, PreferredPolicy: numa.FirstTouch2, Seed: 106,
	},
	{
		Name: "nutch", Class: Server,
		SharedBytes: 3072 * mib, PrivateBytesPerThread: 8 * mib, MailboxBytesPerThread: 48 * mib,
		SharedFraction: 0.74, CommFraction: 0.12, ReadFraction: 0.80,
		LocalitySkew: 2.0, SpatialRun: 6, MeanGap: 9,
		AccessesPerThread: 200_000, InitFraction: 1.5,
		DefaultThreads: 32, PreferredPolicy: numa.Interleave, Seed: 107,
	},
	{
		Name: "cassandra", Class: Server,
		SharedBytes: 2048 * mib, PrivateBytesPerThread: 12 * mib, MailboxBytesPerThread: 4 * mib,
		SharedFraction: 0.83, CommFraction: 0.01, ReadFraction: 0.86,
		LocalitySkew: 2.6, SpatialRun: 6, MeanGap: 9,
		AccessesPerThread: 200_000, InitFraction: 1.5,
		DefaultThreads: 32, PreferredPolicy: numa.Interleave, Seed: 108,
	},
	{
		Name: "classification", Class: Server,
		SharedBytes: 1792 * mib, PrivateBytesPerThread: 10 * mib, MailboxBytesPerThread: 4 * mib,
		SharedFraction: 0.81, CommFraction: 0.01, ReadFraction: 0.80,
		LocalitySkew: 2.9, SpatialRun: 8, MeanGap: 8,
		AccessesPerThread: 200_000, InitFraction: 1.5,
		DefaultThreads: 32, PreferredPolicy: numa.FirstTouch2, Seed: 109,
	},
	{
		Name: "mcf", Class: SingleThreaded,
		SharedBytes: 0, PrivateBytesPerThread: 1536 * mib, MailboxBytesPerThread: 0,
		SharedFraction: 0, CommFraction: 0, ReadFraction: 0.68,
		LocalitySkew: 2.1, SpatialRun: 2, MeanGap: 4,
		AccessesPerThread: 400_000, InitFraction: 0.5,
		DefaultThreads: 1, PreferredPolicy: numa.FirstTouch1, Seed: 110,
	},
}

// suiteNames pins the nine multi-threaded workloads of the main evaluation,
// in the paper's order. Names()/Suite() answer from this list — never from
// the open registry — so registering extra workloads (compiled specs,
// presets) can never change the default experiment suite or invalidate
// golden results.
var suiteNames = []string{
	"facesim", "streamcluster", "freqmine", "fluidanimate", "canneal",
	"tunkrank", "nutch", "cassandra", "classification",
}

// The registry is open: the built-ins seed it and anything — compiled
// workload specs, test doubles, future ingested traces — can join through
// Register, mirroring the design and topology registries. Registration order
// is preserved so listings are deterministic.
var (
	regMu    sync.RWMutex
	registry []Spec
	regIndex = map[string]int{}
)

func init() {
	for _, s := range builtins {
		Register(s)
	}
}

// Register adds a workload to the registry so name-based lookups (Get, the
// SDK's WithWorkloads, the daemon's capability checks) resolve it exactly
// like a built-in. It panics on an invalid spec or a duplicate name —
// registration happens in init functions, where misconfiguration should fail
// loudly. The default evaluation suite (Names/Suite) is pinned to the nine
// paper workloads and is not affected by registration.
func Register(s Spec) {
	if err := s.Validate(); err != nil {
		panic(fmt.Sprintf("workload: Register: %v", err))
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := regIndex[s.Name]; dup {
		panic(fmt.Sprintf("workload: workload %q registered twice", s.Name))
	}
	regIndex[s.Name] = len(registry)
	registry = append(registry, s)
}

// Names returns the names of the nine multi-threaded workloads of the main
// evaluation, in the paper's order.
func Names() []string {
	out := make([]string, len(suiteNames))
	copy(out, suiteNames)
	return out
}

// AllNames returns every registered workload name — built-ins (including
// mcf) and registered specs — in registration order.
func AllNames() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, len(registry))
	for i, s := range registry {
		out[i] = s.Name
	}
	return out
}

// Suite returns the specs of the nine multi-threaded workloads of the main
// evaluation, in the paper's order.
func Suite() []Spec {
	out := make([]Spec, len(suiteNames))
	for i, name := range suiteNames {
		out[i] = MustGet(name)
	}
	return out
}

// Get returns the spec with the given name.
func Get(name string) (Spec, error) {
	regMu.RLock()
	i, ok := regIndex[name]
	if ok {
		s := registry[i]
		regMu.RUnlock()
		return s, nil
	}
	regMu.RUnlock()
	known := AllNames()
	sort.Strings(known)
	return Spec{}, fmt.Errorf("workload: unknown workload %q (known: %v)", name, known)
}

// MustGet is Get for names known to exist; it panics otherwise.
func MustGet(name string) Spec {
	s, err := Get(name)
	if err != nil {
		panic(err)
	}
	return s
}
