// Package workload provides the synthetic workload generators that stand in
// for the paper's Pin/Simics traces of PARSEC 3.0 and CloudSuite (§V). The
// real traces are not available, so each workload is described by a small set
// of aggregate parameters — working-set sizes, shared fraction, read mix,
// locality skew, inter-thread communication intensity — whose values are
// chosen so that the simulated machine reproduces the *shape* of the paper's
// per-workload results (remote-access fraction, DRAM-cache fit, sensitivity
// to coherence design). DESIGN.md documents this substitution.
//
// Generated traces are deterministic for a given (spec, options) pair: every
// thread derives its own seeded random stream, so generation is reproducible
// and independent of thread iteration order.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"c3d/internal/addr"
	"c3d/internal/numa"
	"c3d/internal/trace"
)

// Class labels the suite a workload comes from; the evaluation discusses
// PARSEC (parallel) and CloudSuite (server) workloads separately because
// their communication behaviour differs.
type Class int

const (
	// Parallel marks PARSEC-style workloads with substantial inter-thread
	// communication.
	Parallel Class = iota
	// Server marks CloudSuite-style workloads with little inter-thread
	// communication.
	Server
	// Graph marks the graph-analytics workload (tunkrank).
	Graph
	// SingleThreaded marks the SPEC-style single-threaded workload (mcf)
	// used in §VI-C.
	SingleThreaded
)

func (c Class) String() string {
	switch c {
	case Parallel:
		return "parsec"
	case Server:
		return "server"
	case Graph:
		return "graph"
	case SingleThreaded:
		return "single-threaded"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Spec describes a synthetic workload at paper scale (1 GB DRAM caches,
// 16 MB LLCs). Byte sizes are divided by Options.Scale at generation time.
type Spec struct {
	// Name is the workload name as used in the paper's figures.
	Name string
	// Class is the suite the workload models.
	Class Class

	// SharedBytes is the size of the data shared by all threads.
	SharedBytes uint64
	// PrivateBytesPerThread is the size of each thread's private data.
	PrivateBytesPerThread uint64
	// MailboxBytesPerThread is the size of each thread's producer/consumer
	// communication region. Writes to the local mailbox and reads of a
	// neighbour's mailbox model inter-thread communication; making the
	// region larger than the LLC means communicated data is dirty in the
	// producer's DRAM cache under write-back designs, which is exactly the
	// pathology §III describes.
	MailboxBytesPerThread uint64

	// SharedFraction is the probability that a non-communication access
	// targets the shared region (the rest go to the thread's private data).
	SharedFraction float64
	// CommFraction is the probability that an access is a producer/consumer
	// mailbox access.
	CommFraction float64
	// ReadFraction is the probability that a data access is a load.
	ReadFraction float64
	// LocalitySkew shapes temporal locality within a region: an access
	// targets block floor(N * u^LocalitySkew) for u uniform in [0,1). Skew 1
	// is uniform; larger values concentrate accesses near the start of the
	// region, so a cache of size C captures roughly (C/N)^(1/skew) of
	// accesses.
	LocalitySkew float64
	// SpatialRun is the mean number of consecutive blocks touched after a
	// random region access before the next random jump (geometrically
	// distributed). Real programs sweep arrays and structures, which is what
	// makes page-grain structures — NUMA placement, the §IV-D classifier and
	// the region-based miss predictor — effective. 0 or 1 disables runs.
	SpatialRun int
	// MeanGap is the mean number of non-memory instructions between memory
	// accesses (1-IPC core model).
	MeanGap int

	// AccessesPerThread is the default length of each thread's parallel
	// stream before scaling.
	AccessesPerThread int
	// InitFraction is the size of the serial initialisation section relative
	// to one thread's parallel stream. The init section touches pages so
	// that the FT1 policy exhibits its serial-touch pathology.
	InitFraction float64

	// DefaultThreads is the thread count the paper used (32 for everything
	// except mcf).
	DefaultThreads int
	// PreferredPolicy is the best-performing placement policy from the
	// paper-style profiling run; experiments use it unless told otherwise.
	PreferredPolicy numa.Policy
	// Seed is the base seed for deterministic generation.
	Seed int64

	// GapDist selects the inter-access gap distribution: "" keeps the
	// generator's legacy uniform draw on [0, 2*MeanGap] (bit-identical to
	// pre-spec traces), or one of GapConstant/GapPoisson/GapGamma/GapWeibull
	// sampled by inverse transform on the same per-thread RNG, with mean
	// MeanGap and shape GapShape.
	GapDist string
	// GapShape is the shape parameter for GapGamma (integer-rounded shape k)
	// and GapWeibull (Weibull k; k < 1 gives bursty, heavy-tailed gaps).
	GapShape float64
	// SharingDist skews which shared blocks are touched: "" keeps the
	// power-law locality model driven by LocalitySkew; SharingZipf /
	// SharingPareto replace it for shared-region accesses with a heavy-tailed
	// rank distribution of parameter SharingTheta. Private regions always use
	// LocalitySkew.
	SharingDist string
	// SharingTheta is the zipf exponent / pareto alpha for SharingDist.
	SharingTheta float64

	// Source, when non-nil, overrides the synthetic generator entirely: the
	// compiled workload-spec composites (phased, multi-tenant, trace-backed
	// workloads from internal/wspec) provide their stream through it.
	// NewSource calls it with the defaulted options; the scalar fields above
	// still describe the workload for scheduling (DefaultThreads,
	// AccessesPerThread, PreferredPolicy, ...).
	Source func(s Spec, o Options) (trace.Source, error)
	// Fingerprint identifies a compiled spec document (a content hash) so
	// caches can distinguish two different documents that chose the same
	// Name. Empty for built-ins.
	Fingerprint string
}

// Validate checks that the spec's probabilities and sizes are usable.
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("workload: spec has no name")
	}
	if s.Source != nil {
		// Composite specs delegate stream generation to the factory; only
		// the scheduling fields the rest of the stack reads are checked here.
		switch {
		case s.AccessesPerThread <= 0:
			return fmt.Errorf("workload %s: AccessesPerThread must be positive", s.Name)
		case s.DefaultThreads <= 0:
			return fmt.Errorf("workload %s: DefaultThreads must be positive", s.Name)
		}
		return nil
	}
	switch {
	case s.SharedFraction < 0 || s.SharedFraction > 1:
		return fmt.Errorf("workload %s: SharedFraction %f out of [0,1]", s.Name, s.SharedFraction)
	case s.CommFraction < 0 || s.CommFraction > 1:
		return fmt.Errorf("workload %s: CommFraction %f out of [0,1]", s.Name, s.CommFraction)
	case s.ReadFraction < 0 || s.ReadFraction > 1:
		return fmt.Errorf("workload %s: ReadFraction %f out of [0,1]", s.Name, s.ReadFraction)
	case s.CommFraction+s.SharedFraction > 1:
		return fmt.Errorf("workload %s: CommFraction+SharedFraction %f exceeds 1 (the private region would be silently starved)",
			s.Name, s.CommFraction+s.SharedFraction)
	case s.LocalitySkew < 1:
		return fmt.Errorf("workload %s: LocalitySkew %f must be >= 1", s.Name, s.LocalitySkew)
	case s.SpatialRun < 0:
		return fmt.Errorf("workload %s: SpatialRun %d must be non-negative", s.Name, s.SpatialRun)
	case s.MeanGap < 0:
		return fmt.Errorf("workload %s: MeanGap %d must be non-negative (a negative mean panics the gap draw)", s.Name, s.MeanGap)
	case s.SharedBytes == 0 && s.PrivateBytesPerThread == 0:
		return fmt.Errorf("workload %s: no data regions", s.Name)
	case s.AccessesPerThread <= 0:
		return fmt.Errorf("workload %s: AccessesPerThread must be positive", s.Name)
	case s.DefaultThreads <= 0:
		return fmt.Errorf("workload %s: DefaultThreads must be positive", s.Name)
	}
	if err := validateGapDist(s.Name, s.GapDist, float64(s.MeanGap), s.GapShape); err != nil {
		return err
	}
	return validateSharingDist(s.Name, s.SharingDist, s.SharingTheta)
}

// Options control trace generation.
type Options struct {
	// Threads overrides the spec's default thread count when positive.
	Threads int
	// Scale divides every byte size in the spec; 1 reproduces paper-scale
	// footprints (slow), DefaultScale keeps the full suite laptop-sized
	// while preserving the capacity ratios that determine hit rates.
	Scale int
	// AccessesPerThread overrides the spec's default when positive.
	AccessesPerThread int
	// SeedOffset perturbs the spec seed (used to generate independent
	// traces of the same workload).
	SeedOffset int64
}

// DefaultScale is the default capacity divisor: 1 GB DRAM caches become
// 16 MB, 16 MB LLCs become 256 KB, and workload footprints shrink by the same
// factor, preserving every capacity ratio the results depend on.
const DefaultScale = 64

// withDefaults fills in zero fields.
func (o Options) withDefaults(s Spec) Options {
	if o.Threads <= 0 {
		o.Threads = s.DefaultThreads
	}
	if s.Class == SingleThreaded {
		o.Threads = 1
	}
	if o.Scale <= 0 {
		o.Scale = DefaultScale
	}
	if o.AccessesPerThread <= 0 {
		o.AccessesPerThread = s.AccessesPerThread
	}
	return o
}

// Layout describes where the generator placed each region in the physical
// address space. It is exported so tests and experiments can reason about
// which pages belong to which region.
type Layout struct {
	SharedBase   addr.Addr
	SharedBytes  uint64
	MailboxBase  addr.Addr
	MailboxBytes uint64 // per thread
	PrivateBase  addr.Addr
	PrivateBytes uint64 // per thread
	Threads      int
}

// TotalBytes returns the footprint implied by the layout.
func (l Layout) TotalBytes() uint64 {
	return l.SharedBytes + uint64(l.Threads)*(l.MailboxBytes+l.PrivateBytes)
}

// PrivateRegion returns the base address and size of a thread's private
// region.
func (l Layout) PrivateRegion(thread int) (addr.Addr, uint64) {
	return l.PrivateBase + addr.Addr(uint64(thread)*l.PrivateBytes), l.PrivateBytes
}

// MailboxRegion returns the base address and size of a thread's mailbox.
func (l Layout) MailboxRegion(thread int) (addr.Addr, uint64) {
	return l.MailboxBase + addr.Addr(uint64(thread)*l.MailboxBytes), l.MailboxBytes
}

func scaleBytes(b uint64, scale int) uint64 {
	s := b / uint64(scale)
	if b > 0 && s < addr.PageBytes {
		// Never scale a region below one page: the region exists for a
		// behavioural reason and must remain addressable.
		s = addr.PageBytes
	}
	// Round to whole pages so placement policies see page-aligned regions.
	return s &^ (addr.PageBytes - 1)
}

// BuildLayout computes the address-space layout for a spec under the given
// options.
func BuildLayout(s Spec, o Options) Layout {
	o = o.withDefaults(s)
	l := Layout{Threads: o.Threads}
	l.SharedBytes = scaleBytes(s.SharedBytes, o.Scale)
	l.MailboxBytes = scaleBytes(s.MailboxBytesPerThread, o.Scale)
	l.PrivateBytes = scaleBytes(s.PrivateBytesPerThread, o.Scale)
	l.SharedBase = 0
	l.MailboxBase = addr.Addr(l.SharedBytes)
	l.PrivateBase = l.MailboxBase + addr.Addr(uint64(o.Threads)*l.MailboxBytes)
	return l
}

// NewSource returns a streaming source for the spec under the given options:
// the same deterministic per-thread record streams Generate produces, emitted
// on demand by per-section iterators instead of being built into slices.
// Resident memory is O(1) in the stream length, so AccessesPerThread can be
// paper-scale (billions) without materialising anything. Every reader opened
// from the source replays its section from the start with a freshly seeded
// RNG, which is what makes the streams independent of consumption order and
// bit-identical to the materialised path.
func NewSource(s Spec, o Options) (trace.Source, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	o = o.withDefaults(s)
	if s.Source != nil {
		return s.Source(s, o)
	}
	return &genSource{s: s, o: o, layout: BuildLayout(s, o)}, nil
}

// Generate produces a deterministic trace for the spec under the given
// options. It is the materialised adapter over NewSource; the two paths are
// bit-identical by construction.
func Generate(s Spec, o Options) (*trace.Trace, error) {
	src, err := NewSource(s, o)
	if err != nil {
		return nil, err
	}
	return trace.Materialize(src)
}

// MustGenerate is Generate for specs known to be valid (the built-in
// registry); it panics on error.
func MustGenerate(s Spec, o Options) *trace.Trace {
	tr, err := Generate(s, o)
	if err != nil {
		panic(err)
	}
	return tr
}

// genSource is the streaming generator behind NewSource. It is immutable:
// all per-stream state lives in the readers it opens.
type genSource struct {
	s      Spec
	o      Options // defaults already applied
	layout Layout
}

func (g *genSource) Name() string        { return g.s.Name }
func (g *genSource) Threads() int        { return g.o.Threads }
func (g *genSource) ThreadLen(t int) int { return g.o.AccessesPerThread }

// InitLen returns the init-section length: InitFraction of one thread's
// stream, or zero when the layout has no pages to stride.
func (g *genSource) InitLen() int {
	n := int(float64(g.o.AccessesPerThread) * g.s.InitFraction)
	if n <= 0 || g.layout.TotalBytes() == 0 {
		return 0
	}
	return n
}

// OpenInit returns a reader over the serial initialisation section: thread 0
// strides through the entire footprint — shared region, mailboxes and every
// thread's private region — page by page (wrapping if the section is longer
// than the footprint), writing one block per page the way a sequential loader
// or input parser would. Only page placement (FT1) and cache warm-up observe
// this section.
func (g *genSource) OpenInit() trace.RecordReader {
	r := &initReader{n: g.InitLen(), meanGap: g.s.MeanGap}
	if r.n == 0 {
		return r
	}
	r.rng = rand.New(rand.NewSource(g.s.Seed ^ g.o.SeedOffset ^ 0x1717))
	r.pages = g.layout.TotalBytes() / addr.PageBytes
	return r
}

// initReader emits the init section one record at a time.
type initReader struct {
	rng     *rand.Rand
	pages   uint64
	meanGap int
	n, i    int
}

func (r *initReader) Next() (trace.Record, bool) {
	if r.i >= r.n {
		return trace.Record{}, false
	}
	page := uint64(r.i) % r.pages
	offset := uint64(r.rng.Intn(addr.BlocksPerPage)) * addr.BlockBytes
	rec := trace.Record{
		Kind: trace.Write,
		Addr: addr.Addr(page*addr.PageBytes + offset),
		Gap:  uint32(r.rng.Intn(2*r.meanGap + 1)),
	}
	r.i++
	return rec, true
}

func (r *initReader) Err() error { return nil }

// OpenThread returns a reader over one thread's parallel-region access
// stream.
func (g *genSource) OpenThread(thread int) trace.RecordReader {
	r := &threadReader{g: g, rng: rand.New(rand.NewSource(g.s.Seed ^ g.o.SeedOffset ^ (int64(thread)+1)*0x9E3779B9))}
	r.privBase, r.privSize = g.layout.PrivateRegion(thread)
	r.ownBox, r.boxSize = g.layout.MailboxRegion(thread)
	neighbour := (thread + 1) % g.layout.Threads
	r.neighbourBox, _ = g.layout.MailboxRegion(neighbour)
	r.boxBlocks = r.boxSize / addr.BlockBytes
	return r
}

// threadReader emits one thread's parallel stream one record at a time. Its
// fields are the loop state of the original batch generator.
type threadReader struct {
	g   *genSource
	rng *rand.Rand
	i   int

	privBase     addr.Addr
	privSize     uint64
	ownBox       addr.Addr
	boxSize      uint64
	neighbourBox addr.Addr

	// produceCursor walks this thread's mailbox cyclically. Consumption reads
	// a random, already-produced position of the neighbour's mailbox: by
	// symmetry the neighbour has produced roughly as many blocks as this
	// thread, and picking an older position means the data has usually been
	// pushed out of the producer's LLC already — the situation that exposes
	// the dirty-remote-cache pathology of §III in the write-back designs.
	produceCursor uint64
	boxBlocks     uint64

	// Spatial-run state: when a run is active, successive region accesses
	// touch consecutive blocks instead of jumping.
	runLeft  int
	runNext  addr.Addr
	runLimit addr.Addr
}

func (t *threadReader) Next() (trace.Record, bool) {
	if t.i >= t.g.o.AccessesPerThread {
		return trace.Record{}, false
	}
	s, layout, rng, i := &t.g.s, &t.g.layout, t.rng, t.i
	gap := gapDraw(rng, s)
	r := rng.Float64()
	var rec trace.Record
	switch {
	case layout.Threads > 1 && t.boxSize > 0 && r < s.CommFraction:
		// Producer/consumer communication: alternate between writing the
		// local mailbox and reading the neighbour's.
		if i%2 == 0 {
			rec = trace.Record{
				Kind: trace.Write,
				Addr: t.ownBox + addr.Addr(t.produceCursor%t.boxSize),
			}
			t.produceCursor += addr.BlockBytes
		} else {
			produced := uint64(float64(i) * s.CommFraction / 2)
			if produced == 0 {
				produced = 1
			}
			if produced > t.boxBlocks {
				produced = t.boxBlocks
			}
			slot := uint64(rng.Int63n(int64(produced)))
			rec = trace.Record{
				Kind: trace.Read,
				Addr: t.neighbourBox + addr.Addr(slot*addr.BlockBytes),
			}
		}
	case t.runLeft > 0 && t.runNext < t.runLimit:
		// Continue the current spatial run.
		kind := trace.Write
		if rng.Float64() < s.ReadFraction {
			kind = trace.Read
		}
		rec = trace.Record{Kind: kind, Addr: t.runNext}
		t.runNext += addr.BlockBytes
		t.runLeft--
	case layout.SharedBytes > 0 && r < s.CommFraction+s.SharedFraction:
		rec = regionAccess(rng, *s, layout.SharedBase, layout.SharedBytes, true)
		t.runLeft, t.runNext, t.runLimit = startRun(rng, *s, rec.Addr, layout.SharedBase, layout.SharedBytes)
	case t.privSize > 0:
		rec = regionAccess(rng, *s, t.privBase, t.privSize, false)
		t.runLeft, t.runNext, t.runLimit = startRun(rng, *s, rec.Addr, t.privBase, t.privSize)
	default:
		rec = regionAccess(rng, *s, layout.SharedBase, layout.SharedBytes, true)
		t.runLeft, t.runNext, t.runLimit = startRun(rng, *s, rec.Addr, layout.SharedBase, layout.SharedBytes)
	}
	rec.Gap = gap
	t.i++
	return rec, true
}

func (t *threadReader) Err() error { return nil }

// startRun decides whether the access at a begins a spatial run and, if so,
// returns the number of follow-on blocks and the address bounds of the run.
func startRun(rng *rand.Rand, s Spec, a, base addr.Addr, size uint64) (left int, next, limit addr.Addr) {
	if s.SpatialRun <= 1 {
		return 0, 0, 0
	}
	// Geometric run length with the configured mean.
	p := 1.0 / float64(s.SpatialRun)
	left = 0
	for rng.Float64() >= p && left < 4*s.SpatialRun {
		left++
	}
	return left, a + addr.BlockBytes, base + addr.Addr(size)
}

// regionAccess picks a block inside [base, base+size) with the spec's
// locality skew and read/write mix. Shared-region accesses may instead use
// the heavy-tailed SharingDist rank model; both consume exactly one uniform
// draw, so enabling a sharing distribution never shifts the rest of the
// stream.
func regionAccess(rng *rand.Rand, s Spec, base addr.Addr, size uint64, shared bool) trace.Record {
	blocks := size / addr.BlockBytes
	if blocks == 0 {
		blocks = 1
	}
	u := rng.Float64()
	var blockIdx uint64
	if shared && s.SharingDist != "" {
		blockIdx = heavyRank(u, s.SharingDist, s.SharingTheta, blocks)
	} else {
		blockIdx = uint64(math.Pow(u, s.LocalitySkew) * float64(blocks))
	}
	if blockIdx >= blocks {
		blockIdx = blocks - 1
	}
	kind := trace.Write
	if rng.Float64() < s.ReadFraction {
		kind = trace.Read
	}
	return trace.Record{Kind: kind, Addr: base + addr.Addr(blockIdx*addr.BlockBytes)}
}
