package workload

import (
	"reflect"
	"testing"

	"c3d/internal/addr"
	"c3d/internal/trace"
)

// small options keep generation fast in tests.
func testOptions() Options {
	return Options{Threads: 4, Scale: DefaultScale, AccessesPerThread: 3000}
}

func TestRegistryIsValid(t *testing.T) {
	if len(AllNames()) != 10 {
		t.Fatalf("registry has %d workloads, want 10 (9 parallel + mcf)", len(AllNames()))
	}
	if len(Names()) != 9 || len(Suite()) != 9 {
		t.Fatalf("main suite has %d workloads, want 9", len(Names()))
	}
	for _, name := range AllNames() {
		spec := MustGet(name)
		if err := spec.Validate(); err != nil {
			t.Errorf("workload %s: invalid spec: %v", name, err)
		}
	}
	// The paper's workload set, in its order.
	want := []string{"facesim", "streamcluster", "freqmine", "fluidanimate",
		"canneal", "tunkrank", "nutch", "cassandra", "classification"}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Errorf("Names() = %v, want %v", got, want)
	}
}

func TestGetUnknownWorkload(t *testing.T) {
	if _, err := Get("doom3"); err == nil {
		t.Error("unknown workload should return an error")
	}
}

func TestMustGetPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustGet of an unknown workload should panic")
		}
	}()
	MustGet("doom3")
}

func TestSpecValidateRejectsBadValues(t *testing.T) {
	base := MustGet("facesim")
	cases := []func(*Spec){
		func(s *Spec) { s.Name = "" },
		func(s *Spec) { s.SharedFraction = 1.5 },
		func(s *Spec) { s.CommFraction = -0.1 },
		func(s *Spec) { s.ReadFraction = 2 },
		func(s *Spec) { s.LocalitySkew = 0.5 },
		func(s *Spec) { s.SharedBytes = 0; s.PrivateBytesPerThread = 0 },
		func(s *Spec) { s.AccessesPerThread = 0 },
		func(s *Spec) { s.DefaultThreads = 0 },
		// A negative mean gap would panic rand.Intn(2*MeanGap+1) inside the
		// generator; it must be rejected up front.
		func(s *Spec) { s.MeanGap = -1 },
		func(s *Spec) { s.SpatialRun = -3 },
		// Comm+Shared > 1 silently starves the private-region branch.
		func(s *Spec) { s.CommFraction = 0.6; s.SharedFraction = 0.6 },
	}
	for i, mutate := range cases {
		spec := base
		mutate(&spec)
		if err := spec.Validate(); err == nil {
			t.Errorf("case %d: invalid spec accepted", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := MustGet("streamcluster")
	a := MustGenerate(spec, testOptions())
	b := MustGenerate(spec, testOptions())
	if !reflect.DeepEqual(a, b) {
		t.Error("two generations with identical options differ")
	}
	// A different seed offset produces a different trace.
	opts := testOptions()
	opts.SeedOffset = 99
	c := MustGenerate(spec, opts)
	if reflect.DeepEqual(a, c) {
		t.Error("different seed offsets produced identical traces")
	}
}

func TestGenerateRespectsOptions(t *testing.T) {
	spec := MustGet("canneal")
	opts := testOptions()
	tr := MustGenerate(spec, opts)
	if tr.Threads() != opts.Threads {
		t.Errorf("Threads = %d, want %d", tr.Threads(), opts.Threads)
	}
	for th, recs := range tr.Parallel {
		if len(recs) != opts.AccessesPerThread {
			t.Errorf("thread %d has %d accesses, want %d", th, len(recs), opts.AccessesPerThread)
		}
	}
	if tr.InitAccesses() == 0 {
		t.Error("expected a non-empty init section")
	}
	if err := tr.Validate(0); err != nil {
		t.Errorf("generated trace invalid: %v", err)
	}
}

func TestSingleThreadedWorkloadIgnoresThreadOverride(t *testing.T) {
	spec := MustGet("mcf")
	opts := testOptions()
	opts.Threads = 16
	tr := MustGenerate(spec, opts)
	if tr.Threads() != 1 {
		t.Errorf("mcf generated %d threads, want 1", tr.Threads())
	}
}

func TestReadFractionRoughlyMatchesSpec(t *testing.T) {
	spec := MustGet("cassandra")
	opts := testOptions()
	opts.AccessesPerThread = 20000
	tr := MustGenerate(spec, opts)
	stats := tr.ComputeStats()
	got := stats.ReadFraction()
	if diff := got - spec.ReadFraction; diff < -0.05 || diff > 0.05 {
		t.Errorf("generated read fraction %.3f, spec %.3f", got, spec.ReadFraction)
	}
}

func TestLayoutRegionsDisjoint(t *testing.T) {
	spec := MustGet("facesim")
	opts := testOptions()
	l := BuildLayout(spec, opts)
	if l.SharedBytes == 0 || l.PrivateBytes == 0 || l.MailboxBytes == 0 {
		t.Fatalf("layout has empty regions: %+v", l)
	}
	// Shared ends where the mailboxes begin, mailboxes end where private
	// regions begin.
	if addr.Addr(l.SharedBytes) != l.MailboxBase {
		t.Error("shared region overlaps the mailboxes")
	}
	wantPrivBase := l.MailboxBase + addr.Addr(uint64(l.Threads)*l.MailboxBytes)
	if l.PrivateBase != wantPrivBase {
		t.Errorf("PrivateBase = %v, want %v", l.PrivateBase, wantPrivBase)
	}
	// Per-thread regions are disjoint.
	b0, s0 := l.PrivateRegion(0)
	b1, _ := l.PrivateRegion(1)
	if b0+addr.Addr(s0) != b1 {
		t.Error("private regions of threads 0 and 1 are not adjacent/disjoint")
	}
	if l.TotalBytes() != l.SharedBytes+uint64(l.Threads)*(l.MailboxBytes+l.PrivateBytes) {
		t.Error("TotalBytes inconsistent with the region sizes")
	}
}

func TestScaleShrinksFootprint(t *testing.T) {
	spec := MustGet("freqmine")
	big := BuildLayout(spec, Options{Threads: 4, Scale: 1})
	small := BuildLayout(spec, Options{Threads: 4, Scale: 64})
	if small.TotalBytes() >= big.TotalBytes() {
		t.Errorf("scale 64 footprint (%d) not smaller than scale 1 (%d)",
			small.TotalBytes(), big.TotalBytes())
	}
	ratio := float64(big.TotalBytes()) / float64(small.TotalBytes())
	if ratio < 32 || ratio > 128 {
		t.Errorf("scaling ratio %.1f, want roughly 64", ratio)
	}
}

func TestScaleNeverDropsRegionBelowOnePage(t *testing.T) {
	spec := MustGet("cassandra") // has a small 4 MiB mailbox region
	l := BuildLayout(spec, Options{Threads: 4, Scale: 4096})
	if l.MailboxBytes < addr.PageBytes {
		t.Errorf("mailbox region scaled to %d bytes, want at least one page", l.MailboxBytes)
	}
	if l.MailboxBytes%addr.PageBytes != 0 {
		t.Error("regions must stay page-aligned after scaling")
	}
}

func TestAddressesWithinLayout(t *testing.T) {
	spec := MustGet("tunkrank")
	opts := testOptions()
	tr := MustGenerate(spec, opts)
	l := BuildLayout(spec, opts)
	total := addr.Addr(l.TotalBytes())
	check := func(recs []trace.Record) {
		for _, r := range recs {
			if r.Addr >= total {
				t.Fatalf("address %v outside the %d-byte footprint", r.Addr, total)
			}
		}
	}
	check(tr.Init)
	for _, recs := range tr.Parallel {
		check(recs)
	}
}

func TestCommunicationCreatesCrossThreadSharing(t *testing.T) {
	// For a communication-heavy workload, blocks written by one thread must
	// also be read by its neighbour — that is what creates the dirty-sharing
	// pathology the paper studies.
	spec := MustGet("nutch")
	opts := testOptions()
	opts.AccessesPerThread = 10000
	tr := MustGenerate(spec, opts)
	writtenBy0 := map[addr.Block]bool{}
	for _, r := range tr.Parallel[0] {
		if r.Kind == trace.Write {
			writtenBy0[addr.BlockOf(r.Addr)] = true
		}
	}
	// Thread 3's neighbour is thread 0 (ring of 4): it reads thread 0's
	// mailbox.
	shared := 0
	reader := tr.Parallel[opts.Threads-1]
	for _, r := range reader {
		if r.Kind == trace.Read && writtenBy0[addr.BlockOf(r.Addr)] {
			shared++
		}
	}
	if shared == 0 {
		t.Error("no cross-thread read-after-write sharing generated for a communication-heavy workload")
	}
}

func TestStreamclusterFitsInDRAMCacheScaledDown(t *testing.T) {
	// streamcluster's shared working set must fit in one socket's scaled
	// DRAM cache (16 MiB at the default scale), because it is the paper's
	// showcase for a fully DRAM-cache-resident workload.
	l := BuildLayout(MustGet("streamcluster"), Options{Threads: 32, Scale: DefaultScale})
	dramCache := uint64(1*gib) / DefaultScale
	if l.SharedBytes > dramCache {
		t.Errorf("streamcluster shared region (%d bytes) exceeds the scaled DRAM cache (%d bytes)",
			l.SharedBytes, dramCache)
	}
	// nutch must not fit — it is the counter-example workload.
	ln := BuildLayout(MustGet("nutch"), Options{Threads: 32, Scale: DefaultScale})
	if ln.SharedBytes <= dramCache {
		t.Errorf("nutch shared region (%d bytes) should exceed the scaled DRAM cache (%d bytes)",
			ln.SharedBytes, dramCache)
	}
}

func TestClassStrings(t *testing.T) {
	for c, want := range map[Class]string{
		Parallel: "parsec", Server: "server", Graph: "graph", SingleThreaded: "single-threaded",
	} {
		if c.String() != want {
			t.Errorf("Class(%d).String() = %q, want %q", int(c), c.String(), want)
		}
	}
}

func TestGenerateRejectsInvalidSpec(t *testing.T) {
	bad := MustGet("facesim")
	bad.ReadFraction = 7
	if _, err := Generate(bad, testOptions()); err == nil {
		t.Error("Generate should reject an invalid spec")
	}
}
