package workload

import (
	"bytes"
	"reflect"
	"testing"

	"c3d/internal/trace"
)

// The acceptance bar for the streaming generator: for every registry
// workload, the incremental source materialises to a trace bit-identical to
// Generate's, and the trace survives a chunked encode → decode round trip
// exactly — through both the sequential decoder and the indexed file source.
func TestSourceMatchesGenerateForAllWorkloads(t *testing.T) {
	opts := Options{Threads: 4, Scale: 512, AccessesPerThread: 1500}
	for _, name := range AllNames() {
		spec := MustGet(name)
		want := MustGenerate(spec, opts)

		src, err := NewSource(spec, opts)
		if err != nil {
			t.Fatalf("%s: NewSource: %v", name, err)
		}
		if src.Name() != want.Name || src.Threads() != want.Threads() {
			t.Fatalf("%s: source metadata %q/%d, want %q/%d",
				name, src.Name(), src.Threads(), want.Name, want.Threads())
		}
		if src.InitLen() != want.InitAccesses() {
			t.Errorf("%s: InitLen = %d, want %d", name, src.InitLen(), want.InitAccesses())
		}
		for th := 0; th < src.Threads(); th++ {
			if src.ThreadLen(th) != len(want.Parallel[th]) {
				t.Errorf("%s: ThreadLen(%d) = %d, want %d", name, th, src.ThreadLen(th), len(want.Parallel[th]))
			}
		}
		got, err := trace.Materialize(src)
		if err != nil {
			t.Fatalf("%s: Materialize: %v", name, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: streaming and materialised generation differ", name)
			continue
		}

		var buf bytes.Buffer
		if err := trace.EncodeSource(&buf, src); err != nil {
			t.Fatalf("%s: EncodeSource: %v", name, err)
		}
		dec, err := trace.Decode(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: Decode: %v", name, err)
		}
		if !reflect.DeepEqual(dec, want) {
			t.Errorf("%s: chunked encode/decode round trip differs from Generate", name)
		}
		fs, err := trace.OpenSource(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
		if err != nil {
			t.Fatalf("%s: OpenSource: %v", name, err)
		}
		fromFile, err := trace.Materialize(fs)
		if err != nil {
			t.Fatalf("%s: materialising file source: %v", name, err)
		}
		if !reflect.DeepEqual(fromFile, want) {
			t.Errorf("%s: file-source round trip differs from Generate", name)
		}
	}
}

// Source readers must replay identically: two sequential drains of the same
// thread yield the same records (fresh RNG per reader), independent of any
// other reader's progress.
func TestSourceReplaysDeterministically(t *testing.T) {
	spec := MustGet("fluidanimate")
	src, err := NewSource(spec, Options{Threads: 4, Scale: 512, AccessesPerThread: 500})
	if err != nil {
		t.Fatal(err)
	}
	drain := func(rr trace.RecordReader) []trace.Record {
		var out []trace.Record
		for {
			rec, ok := rr.Next()
			if !ok {
				break
			}
			out = append(out, rec)
		}
		return out
	}
	a := drain(src.OpenThread(2))
	// Interleave: consume part of another thread before replaying thread 2.
	other := src.OpenThread(1)
	other.Next()
	b := drain(src.OpenThread(2))
	if !reflect.DeepEqual(a, b) {
		t.Error("replaying a thread reader produced a different stream")
	}
	if len(a) != 500 {
		t.Errorf("drained %d records, want 500", len(a))
	}
}

// Streaming stats must match the materialised ComputeStats.
func TestSourceStatsMatch(t *testing.T) {
	spec := MustGet("tunkrank")
	opts := Options{Threads: 4, Scale: 512, AccessesPerThread: 2000}
	src, err := NewSource(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := trace.ComputeStatsSource(src)
	if err != nil {
		t.Fatal(err)
	}
	want := MustGenerate(spec, opts).ComputeStats()
	if got != want {
		t.Errorf("streaming stats %+v\nmaterialised  %+v", got, want)
	}
}
