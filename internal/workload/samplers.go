package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// Gap (inter-access interval) distributions for Spec.GapDist. The empty
// string keeps the legacy uniform integer draw on [0, 2*MeanGap], which
// existing traces and goldens depend on bit-for-bit.
const (
	GapConstant = "constant"
	GapPoisson  = "poisson"
	GapGamma    = "gamma"
	GapWeibull  = "weibull"
)

// Sharing-skew distributions for Spec.SharingDist.
const (
	SharingZipf   = "zipf"
	SharingPareto = "pareto"
)

// poissonMeanCap bounds the poisson mean: the CDF walk starts from e^-mean,
// which underflows to zero for means past ~700 and the draw would never
// terminate sensibly. Gaps that large want gamma or constant anyway.
const poissonMeanCap = 500

// gapShapeCap bounds the gamma/weibull shape parameter; the gamma sampler
// draws round(shape) exponentials per interval, so the cap also bounds
// per-record work.
const gapShapeCap = 64

func validateGapDist(name, dist string, mean, shape float64) error {
	switch dist {
	case "", GapConstant:
	case GapPoisson:
		if mean > poissonMeanCap {
			return fmt.Errorf("workload %s: poisson gap mean %g exceeds %d (use gamma or constant for long gaps)", name, mean, poissonMeanCap)
		}
	case GapGamma, GapWeibull:
		if shape <= 0 || shape > gapShapeCap {
			return fmt.Errorf("workload %s: %s gap shape %g out of (0, %d]", name, dist, shape, gapShapeCap)
		}
	default:
		return fmt.Errorf("workload %s: unknown gap distribution %q (known: constant, poisson, gamma, weibull)", name, dist)
	}
	return nil
}

func validateSharingDist(name, dist string, theta float64) error {
	switch dist {
	case "":
	case SharingZipf, SharingPareto:
		if theta <= 0 {
			return fmt.Errorf("workload %s: %s sharing theta %g must be positive", name, dist, theta)
		}
	default:
		return fmt.Errorf("workload %s: unknown sharing distribution %q (known: zipf, pareto)", name, dist)
	}
	return nil
}

// SampleInterval draws one inter-access interval from the named distribution
// by inverse-transform sampling on rng. Each draw consumes a fixed, dist-
// dependent number of uniforms (constant: none; poisson/weibull: one;
// gamma: round(shape)), so streams stay bit-identical regardless of how the
// sampled values are consumed downstream.
func SampleInterval(rng *rand.Rand, dist string, mean, shape float64) float64 {
	if mean <= 0 {
		// Degenerate mean: every distribution collapses to back-to-back
		// accesses, and drawing nothing keeps the RNG stream aligned with
		// the constant case.
		if dist == GapPoisson || dist == GapWeibull {
			rng.Float64()
		} else if dist == GapGamma {
			for i := 0; i < gammaShape(shape); i++ {
				rng.Float64()
			}
		}
		return 0
	}
	switch dist {
	case GapConstant:
		return mean
	case GapPoisson:
		// Inverse transform by walking the CDF: P(k) = e^-m * m^k / k!.
		u := rng.Float64()
		p := math.Exp(-mean)
		cdf := p
		k := 0.0
		// The cap only guards pathological u ~ 1 against float drift; the
		// validated mean keeps e^-mean well above underflow.
		for u > cdf && k < 10*mean+50 {
			k++
			p *= mean / k
			cdf += p
		}
		return k
	case GapGamma:
		// Integer-shape gamma (Erlang): the sum of k exponentials of mean
		// mean/k — exact inverse-transform sampling with bounded draws.
		k := gammaShape(shape)
		scale := mean / float64(k)
		sum := 0.0
		for i := 0; i < k; i++ {
			sum += -math.Log(1 - rng.Float64())
		}
		return scale * sum
	case GapWeibull:
		// Scale chosen so the distribution's mean is the requested mean:
		// E[X] = scale * Gamma(1 + 1/k).
		scale := mean / math.Gamma(1+1/shape)
		return scale * math.Pow(-math.Log(1-rng.Float64()), 1/shape)
	default:
		return mean
	}
}

func gammaShape(shape float64) int {
	k := int(shape + 0.5)
	if k < 1 {
		k = 1
	}
	if k > gapShapeCap {
		k = gapShapeCap
	}
	return k
}

// gapDraw produces the record gap for one access: the legacy uniform integer
// draw when no distribution is configured (bit-identical to pre-spec
// traces), otherwise one SampleInterval rounded to the record's uint32 gap.
func gapDraw(rng *rand.Rand, s *Spec) uint32 {
	if s.GapDist == "" {
		return uint32(rng.Intn(2*s.MeanGap + 1))
	}
	return ClampGap(SampleInterval(rng, s.GapDist, float64(s.MeanGap), s.GapShape))
}

// ClampGap rounds a sampled interval into the uint32 gap field of a trace
// record, clamping negatives and the (astronomically unlikely) overflow.
func ClampGap(g float64) uint32 {
	if g <= 0 {
		return 0
	}
	if g >= float64(math.MaxUint32) {
		return math.MaxUint32
	}
	return uint32(g + 0.5)
}

// heavyRank maps one uniform draw u in [0,1) to a block rank in [0, n) under
// a heavy-tailed sharing distribution, by inverse-transform sampling:
//
//   - zipf: continuous truncated power law with density ∝ x^-theta on
//     [1, n+1), so rank r is drawn with probability ~ (r+1)^-theta — the
//     classic zipfian popularity skew over shared blocks.
//   - pareto: Pareto with x_m = 1 and alpha = theta, clamped into the
//     region; unlike zipf the tail mass beyond n piles onto the last rank.
func heavyRank(u float64, dist string, theta float64, n uint64) uint64 {
	if n <= 1 {
		return 0
	}
	fn := float64(n)
	var x float64
	switch dist {
	case SharingZipf:
		if math.Abs(theta-1) < 1e-9 {
			// theta = 1: the integral is logarithmic, not a power.
			x = math.Exp(u * math.Log(fn+1))
		} else {
			e := 1 - theta
			x = math.Pow(u*(math.Pow(fn+1, e)-1)+1, 1/e)
		}
	case SharingPareto:
		x = math.Pow(1-u, -1/theta)
	default:
		return 0
	}
	if !(x >= 1) { // also catches NaN
		x = 1
	}
	if x >= fn+1 {
		x = fn
	}
	r := uint64(x) - 1
	if r >= n {
		r = n - 1
	}
	return r
}
