// Package dramcache models a die-stacked (or on-package) DRAM cache: a
// direct-mapped, block-based giga-cache with in-DRAM tags, a region-based
// miss predictor, and bandwidth-regulated channels. Parameters default to
// Table II of the C3D paper: 1 GB per socket, direct-mapped, 40 ns access
// latency, eight 12.8 GB/s channels, and a 4K-entry miss predictor.
//
// The cache can operate in two write policies:
//
//   - Clean (write-through): the policy C3D relies on. The DRAM cache never
//     holds the only up-to-date copy of a block; dirty LLC evictions are
//     written through to memory while a clean copy is retained locally.
//   - Dirty (write-back): the policy assumed by the naive snoopy and
//     full-directory designs of §III, where the DRAM cache absorbs dirty LLC
//     evictions and writes them back to memory only on eviction.
//
// The package provides tag-array bookkeeping and per-access timing; which
// messages cross sockets as a consequence of hits, misses and evictions is
// the protocol engines' business (internal/machine, internal/core).
package dramcache

import (
	"fmt"

	"c3d/internal/addr"
	"c3d/internal/cache"
	"c3d/internal/coherence"
	"c3d/internal/sim"
)

// Policy selects the write policy of the DRAM cache.
type Policy int

const (
	// Clean is the write-through policy used by C3D: blocks in the DRAM
	// cache are never dirty.
	Clean Policy = iota
	// Dirty is the conventional write-back policy used by the naive designs.
	Dirty
)

func (p Policy) String() string {
	switch p {
	case Clean:
		return "clean"
	case Dirty:
		return "dirty"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Config describes one socket's DRAM cache.
type Config struct {
	// Name identifies the cache in stats output, e.g. "dram$0".
	Name string
	// SizeBytes is the data capacity (1 GB per socket in Table II).
	SizeBytes uint64
	// Ways is the associativity; the paper uses a direct-mapped organisation
	// (1 way).
	Ways int
	// AccessLatency is the latency of one DRAM cache access (tags are stored
	// in DRAM alongside data, so hit and miss detection cost the same).
	// Table II models 40 ns, i.e. 20% faster than the 50 ns main memory.
	AccessLatency sim.Cycles
	// Channels is the number of independent DRAM cache channels.
	Channels int
	// ChannelBandwidthGBs is the per-channel bandwidth; zero or negative
	// means infinite.
	ChannelBandwidthGBs float64
	// PredictorEntries is the size of the region-based miss predictor
	// (0 disables prediction; Table II uses 4096).
	PredictorEntries int
	// Policy selects clean (write-through) or dirty (write-back) operation.
	Policy Policy
}

// DefaultConfig returns the Table II DRAM cache configuration with the given
// capacity and policy.
func DefaultConfig(name string, sizeBytes uint64, policy Policy) Config {
	return Config{
		Name:                name,
		SizeBytes:           sizeBytes,
		Ways:                1,
		AccessLatency:       sim.NsToCycles(40),
		Channels:            8,
		ChannelBandwidthGBs: 12.8,
		PredictorEntries:    4096,
		Policy:              policy,
	}
}

// Stats aggregates DRAM cache activity.
type Stats struct {
	Reads       uint64
	Writes      uint64
	ReadHits    uint64
	WriteHits   uint64
	Fills       uint64
	Evictions   uint64
	DirtyEvicts uint64
	Invalidates uint64
	Predictor   PredictorStats
}

// Accesses returns reads+writes.
func (s Stats) Accesses() uint64 { return s.Reads + s.Writes }

// HitRate returns the overall hit rate, or 0 when never accessed.
func (s Stats) HitRate() float64 {
	a := s.Accesses()
	if a == 0 {
		return 0
	}
	return float64(s.ReadHits+s.WriteHits) / float64(a)
}

// AccessResult describes the outcome and timing of one DRAM cache access.
type AccessResult struct {
	// Hit reports whether the block was present with a usable state.
	Hit bool
	// Dirty reports whether the block was dirty at the time of the access
	// (always false for a Clean-policy cache).
	Dirty bool
	// State is the coherence state of the line when hit.
	State cache.State
	// PredictedHit is what the miss predictor said before the tag check.
	PredictedHit bool
	// Done is when the DRAM cache access completes:
	//   hit                        -> tag+data access latency (+ queueing)
	//   miss, predicted miss       -> now (the next level can start at once;
	//                                 the tag verification is off the path)
	//   miss, predicted hit        -> tag access latency (+ queueing), because
	//                                 the miss is only discovered afterwards
	Done sim.Time
}

// presentWords sizes the one-sided presence filter at 2048 words (128 Ki
// bits, 16 KiB). The filter is deliberately not scaled with the cache: a
// quick-scale cache stays far below saturation, and a huge cache merely
// saturates the filter, degrading it to a cheap always-true check.
const presentWords = 2048

// Cache is one socket's DRAM cache instance.
type Cache struct {
	cfg       Config
	tags      *cache.Cache
	predictor *MissPredictor
	channels  []*sim.Resource
	stats     Stats
	// present is a one-sided presence filter over the tag array: a clear bit
	// proves the block is absent, a set bit means "maybe resident". Bits are
	// set on every insertion and never cleared (except by Reset), which keeps
	// the invariant trivially true under invalidations. It lets the Warm*
	// fast-forward paths skip probing the large, cache-cold tag array for
	// blocks that were never filled.
	present [presentWords]uint64
}

// presentSlot maps a block to its filter word and bit.
func presentSlot(b addr.Block) (int, uint64) {
	h := uint64(b) * 0x9e3779b97f4a7c15
	h >>= 64 - 17 // log2(presentWords*64) bits
	return int(h >> 6), 1 << (h & 63)
}

// note records b as possibly resident. Called on every tag-array insertion.
func (c *Cache) note(b addr.Block) {
	w, bit := presentSlot(b)
	c.present[w] |= bit
}

// mayContain reports whether b could be resident; false is exact.
func (c *Cache) mayContain(b addr.Block) bool {
	w, bit := presentSlot(b)
	return c.present[w]&bit != 0
}

// New builds a DRAM cache from cfg. It panics on invalid geometry.
func New(cfg Config) *Cache {
	if cfg.Channels <= 0 {
		panic(fmt.Sprintf("dramcache %s: need at least one channel", cfg.Name))
	}
	c := &Cache{
		cfg: cfg,
		tags: cache.New(cache.Config{
			Name:      cfg.Name,
			SizeBytes: cfg.SizeBytes,
			Ways:      cfg.Ways,
		}),
	}
	if cfg.PredictorEntries > 0 {
		c.predictor = NewMissPredictor(cfg.PredictorEntries)
	}
	for i := 0; i < cfg.Channels; i++ {
		c.channels = append(c.channels, sim.NewResource(
			fmt.Sprintf("%s.ch%d", cfg.Name, i),
			sim.GBsToBytesPerCycle(cfg.ChannelBandwidthGBs)))
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Policy returns the write policy.
func (c *Cache) Policy() Policy { return c.cfg.Policy }

// Capacity returns the data capacity in bytes.
func (c *Cache) Capacity() uint64 { return c.cfg.SizeBytes }

// Stats returns a snapshot of the counters (including tag-array and predictor
// statistics).
func (c *Cache) Stats() Stats {
	s := c.stats
	if c.predictor != nil {
		s.Predictor = c.predictor.Stats()
	}
	return s
}

// TagStats exposes the underlying tag-array counters (hits/misses as seen by
// the cache structure itself).
func (c *Cache) TagStats() cache.Stats { return c.tags.Stats() }

// ResetStats clears counters and channel occupancy without evicting contents
// (used at the warm-up boundary).
func (c *Cache) ResetStats() {
	c.stats = Stats{}
	c.tags.ResetStats()
	if c.predictor != nil {
		c.predictor.ResetStats()
	}
	for _, ch := range c.channels {
		ch.Reset()
	}
}

// Reset returns the DRAM cache to its just-constructed state: tag array
// emptied, predictor untrained, channels idle, counters cleared. Used when a
// machine is reused across runs.
func (c *Cache) Reset() {
	c.stats = Stats{}
	c.present = [presentWords]uint64{}
	c.tags.Reset()
	if c.predictor != nil {
		c.predictor.Reset()
	}
	for _, ch := range c.channels {
		ch.Reset()
	}
}

func (c *Cache) channelOf(b addr.Block) *sim.Resource {
	return c.channels[int(uint64(b)%uint64(len(c.channels)))]
}

// occupy reserves channel bandwidth for a block-sized transfer at now and
// returns the completion time of the transfer.
func (c *Cache) occupy(now sim.Time, b addr.Block) sim.Time {
	_, done := c.channelOf(b).Acquire(now, addr.BlockBytes)
	return done
}

// Access performs a read (isWrite=false) or write (isWrite=true) lookup at
// time now and returns the outcome with timing. A write hit updates the line
// and, under the Dirty policy, marks it dirty; under the Clean policy the
// line stays clean (the protocol engine is responsible for writing through to
// memory).
func (c *Cache) Access(now sim.Time, b addr.Block, isWrite bool) AccessResult {
	if isWrite {
		c.stats.Writes++
	} else {
		c.stats.Reads++
	}
	predictedHit := true
	if c.predictor != nil {
		predictedHit = c.predictor.Predict(b)
	}
	line, hit := c.tags.Lookup(b)
	if c.predictor != nil {
		c.predictor.Resolve(predictedHit, hit)
	}
	res := AccessResult{Hit: hit, PredictedHit: predictedHit}
	if hit {
		res.State = line.State
		res.Dirty = line.Dirty
		if isWrite {
			c.stats.WriteHits++
			if c.cfg.Policy == Dirty {
				line.Dirty = true
				line.State = coherence.LineModified
			}
		} else {
			c.stats.ReadHits++
		}
		res.Done = c.occupy(now, b).Add(c.cfg.AccessLatency)
		return res
	}
	// Miss.
	if predictedHit {
		// The miss is discovered only after the in-DRAM tag check.
		res.Done = c.occupy(now, b).Add(c.cfg.AccessLatency)
	} else {
		// Correctly predicted miss: the next level starts immediately; the
		// background tag verification does not occupy the critical path.
		res.Done = now
	}
	return res
}

// Probe checks for block b without touching LRU, statistics or the predictor.
// It is used by snoops and invalidation filters. The returned time is when
// the probe completes (one DRAM cache access; snoops cannot use the miss
// predictor because they must be authoritative).
func (c *Cache) Probe(now sim.Time, b addr.Block) (line cache.Line, present bool, done sim.Time) {
	l, ok := c.tags.Probe(b)
	done = c.occupy(now, b).Add(c.cfg.AccessLatency)
	if ok {
		return *l, true, done
	}
	return cache.Line{}, false, done
}

// Contains reports whether block b is resident (no timing, no stats).
func (c *Cache) Contains(b addr.Block) bool { return c.tags.Contains(b) }

// FillResult describes the consequence of inserting a block.
type FillResult struct {
	// Victim is the evicted line, if any.
	Victim cache.Victim
	// Done is when the fill write completes (off the critical path; exposed
	// so bandwidth accounting includes fills).
	Done sim.Time
}

// Fill inserts block b at time now with the given coherence state. Under the
// Clean policy the dirty flag is forced to false regardless of the argument —
// that is the invariant the C3D protocol depends on. The evicted victim (if
// any) is reported so the protocol engine can issue a write-back for dirty
// victims of a Dirty-policy cache.
func (c *Cache) Fill(now sim.Time, b addr.Block, st cache.State, dirty bool) FillResult {
	if c.cfg.Policy == Clean {
		dirty = false
		if st == coherence.LineModified {
			// A clean DRAM cache holds at most a Shared (possibly stale with
			// respect to an on-chip Modified copy) version of the block.
			st = coherence.LineShared
		}
	}
	c.stats.Fills++
	c.note(b)
	victim := c.tags.Fill(b, st, dirty)
	if victim.Valid {
		c.stats.Evictions++
		if victim.Dirty {
			c.stats.DirtyEvicts++
		}
		if c.predictor != nil {
			c.predictor.BlockEvicted(victim.Block)
		}
	}
	if c.predictor != nil {
		c.predictor.BlockFilled(b)
	}
	return FillResult{Victim: victim, Done: c.occupy(now, b)}
}

// Warm is the functional-warming fill used by sampled simulation: the tag
// array is updated with a single statistics-free scan and the miss predictor
// is primed exactly as a detailed fill would prime it, but no counter
// advances and no channel bandwidth is occupied. The policy invariants of
// Fill apply unchanged (a Clean cache stores at most a clean Shared copy).
func (c *Cache) Warm(b addr.Block, st cache.State, dirty bool) {
	if c.cfg.Policy == Clean {
		dirty = false
		if st == coherence.LineModified {
			st = coherence.LineShared
		}
	}
	c.note(b)
	var victim cache.Victim
	var hit bool
	if dirty {
		victim, hit = c.tags.TouchDirty(b, st)
	} else {
		victim, hit = c.tags.Touch(b, st)
	}
	if hit || c.predictor == nil {
		return
	}
	if victim.Valid {
		c.predictor.BlockEvicted(victim.Block)
	}
	c.predictor.BlockFilled(b)
}

// WarmWrite records a functionally-warmed store to a resident block: under
// the Dirty policy the line becomes Modified and dirty — the end state a
// detailed write hit leaves behind — while under the Clean policy stores
// never dirty the cache, so the call is a no-op. No statistics advance.
func (c *Cache) WarmWrite(b addr.Block) {
	if c.cfg.Policy != Dirty || !c.mayContain(b) {
		return
	}
	if l, ok := c.tags.Probe(b); ok {
		l.State = coherence.LineModified
		l.Dirty = true
	}
}

// WarmInvalidate drops block b during functional warming: the predictor
// decays exactly as on a detailed invalidation, but the cache-level
// invalidation counter — which reaches measured results — does not advance.
func (c *Cache) WarmInvalidate(b addr.Block) {
	if !c.mayContain(b) {
		return
	}
	if c.tags.Invalidate(b).Valid && c.predictor != nil {
		c.predictor.BlockEvicted(b)
	}
}

// Invalidate removes block b if present and returns the removed line
// metadata. The predictor is informed so future accesses to the region
// predict correctly.
func (c *Cache) Invalidate(b addr.Block) cache.Victim {
	v := c.tags.Invalidate(b)
	if v.Valid {
		c.stats.Invalidates++
		if c.predictor != nil {
			c.predictor.BlockEvicted(b)
		}
	}
	return v
}

// SetState changes the coherence state of a resident block and reports
// whether it was present. Setting LineInvalid removes the block (and informs
// the predictor).
func (c *Cache) SetState(b addr.Block, st cache.State) bool {
	if st == coherence.LineInvalid {
		return c.Invalidate(b).Valid
	}
	return c.tags.SetState(b, st)
}

// CleanBlock clears the dirty bit of a resident block (used when a dirty
// DRAM cache writes a block back but retains it).
func (c *Cache) CleanBlock(b addr.Block) bool { return c.tags.CleanBlock(b) }

// ValidLines returns the number of resident blocks (for tests/reporting).
func (c *Cache) ValidLines() int { return c.tags.ValidLines() }

// ForEach calls fn for every resident line (diagnostics only).
func (c *Cache) ForEach(fn func(cache.Line)) { c.tags.ForEach(fn) }

// HasDirtyBlocks reports whether any resident line is dirty. For a
// Clean-policy cache this must always be false; the machine's invariant
// checks call it after every run.
func (c *Cache) HasDirtyBlocks() bool {
	dirty := false
	c.tags.ForEach(func(l cache.Line) {
		if l.Dirty {
			dirty = true
		}
	})
	return dirty
}

// ChannelStats returns occupancy statistics for every channel.
func (c *Cache) ChannelStats() []sim.ResourceStats {
	out := make([]sim.ResourceStats, len(c.channels))
	for i, ch := range c.channels {
		out[i] = ch.Stats()
	}
	return out
}

// SetAccessLatency overrides the access latency (used by the Fig. 10
// sensitivity study).
func (c *Cache) SetAccessLatency(l sim.Cycles) { c.cfg.AccessLatency = l }
