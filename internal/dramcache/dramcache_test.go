package dramcache

import (
	"testing"
	"testing/quick"

	"c3d/internal/addr"
	"c3d/internal/coherence"
	"c3d/internal/sim"
)

const testMB = 1 << 20

func newTestCache(t *testing.T, policy Policy) *Cache {
	t.Helper()
	cfg := DefaultConfig("dram$test", 1*testMB, policy)
	return New(cfg)
}

func TestDefaultConfigMatchesTableII(t *testing.T) {
	cfg := DefaultConfig("dram$0", 1<<30, Clean)
	if cfg.Ways != 1 {
		t.Errorf("Ways = %d, want 1 (direct-mapped)", cfg.Ways)
	}
	if cfg.AccessLatency != sim.NsToCycles(40) {
		t.Errorf("AccessLatency = %v, want 40ns", cfg.AccessLatency)
	}
	if cfg.Channels != 8 || cfg.ChannelBandwidthGBs != 12.8 {
		t.Errorf("channels = %d @ %.1f GB/s, want 8 @ 12.8", cfg.Channels, cfg.ChannelBandwidthGBs)
	}
	if cfg.PredictorEntries != 4096 {
		t.Errorf("PredictorEntries = %d, want 4096", cfg.PredictorEntries)
	}
}

func TestAccessMissThenHit(t *testing.T) {
	c := newTestCache(t, Clean)
	b := addr.Block(1234)
	res := c.Access(0, b, false)
	if res.Hit {
		t.Fatal("cold cache should miss")
	}
	if res.PredictedHit {
		t.Fatal("cold predictor should predict miss")
	}
	if res.Done != 0 {
		t.Fatalf("correctly predicted miss should not delay the next level, Done = %v", res.Done)
	}
	c.Fill(0, b, coherence.LineShared, false)
	res = c.Access(0, b, false)
	if !res.Hit {
		t.Fatal("filled block should hit")
	}
	if res.Done < sim.Time(c.Config().AccessLatency) {
		t.Errorf("hit Done = %v, want at least the access latency %v", res.Done, c.Config().AccessLatency)
	}
	s := c.Stats()
	if s.Reads != 2 || s.ReadHits != 1 {
		t.Errorf("stats = %+v; want 2 reads, 1 read hit", s)
	}
}

func TestFalseHitPaysTagCheck(t *testing.T) {
	c := newTestCache(t, Clean)
	base := addr.Block(0)
	// Fill one block so its page region predicts hit, then access a
	// different block of the same page that is not resident: the miss is
	// discovered only after the DRAM tag check.
	c.Fill(0, base, coherence.LineShared, false)
	res := c.Access(0, base+1, false)
	if res.Hit {
		t.Fatal("block was never filled; must miss")
	}
	if !res.PredictedHit {
		t.Fatal("same-region block should predict hit")
	}
	if res.Done < sim.Time(c.Config().AccessLatency) {
		t.Errorf("mispredicted miss Done = %v, want at least one access latency", res.Done)
	}
	if c.Stats().Predictor.FalseHits != 1 {
		t.Errorf("FalseHits = %d, want 1", c.Stats().Predictor.FalseHits)
	}
}

func TestCleanPolicyNeverDirty(t *testing.T) {
	c := newTestCache(t, Clean)
	b := addr.Block(7)
	// Even when asked to fill dirty/Modified, a clean cache stores a clean
	// Shared copy.
	c.Fill(0, b, coherence.LineModified, true)
	line, ok, _ := c.Probe(0, b)
	if !ok {
		t.Fatal("block should be resident")
	}
	if line.Dirty {
		t.Error("clean cache stored a dirty line")
	}
	if line.State != coherence.LineShared {
		t.Errorf("state = %v, want Shared", coherence.LineStateName(line.State))
	}
	// Write hits do not mark the line dirty either.
	c.Access(0, b, true)
	if c.HasDirtyBlocks() {
		t.Error("write hit made a clean cache dirty")
	}
}

func TestDirtyPolicyMarksDirty(t *testing.T) {
	c := newTestCache(t, Dirty)
	b := addr.Block(9)
	c.Fill(0, b, coherence.LineShared, false)
	c.Access(0, b, true)
	line, ok, _ := c.Probe(0, b)
	if !ok || !line.Dirty {
		t.Error("write hit under the Dirty policy should mark the line dirty")
	}
	if line.State != coherence.LineModified {
		t.Errorf("state = %v, want Modified", coherence.LineStateName(line.State))
	}
	if !c.HasDirtyBlocks() {
		t.Error("HasDirtyBlocks should report the dirty line")
	}
}

func TestFillEvictionReportsVictim(t *testing.T) {
	// Direct-mapped: two blocks mapping to the same set evict each other.
	cfg := DefaultConfig("tiny", 64*addr.BlockBytes, Dirty) // 64 sets, 1 way
	c := New(cfg)
	a := addr.Block(0)
	b := addr.Block(64) // same set as a
	c.Fill(0, a, coherence.LineModified, true)
	res := c.Fill(0, b, coherence.LineShared, false)
	if !res.Victim.Valid || res.Victim.Block != a {
		t.Fatalf("victim = %+v, want eviction of block %d", res.Victim, a)
	}
	if !res.Victim.Dirty {
		t.Error("dirty victim should be reported dirty so the engine can write it back")
	}
	s := c.Stats()
	if s.Evictions != 1 || s.DirtyEvicts != 1 {
		t.Errorf("stats = %+v; want 1 eviction, 1 dirty", s)
	}
}

func TestInvalidateInformsPredictor(t *testing.T) {
	c := newTestCache(t, Clean)
	b := addr.Block(77)
	c.Fill(0, b, coherence.LineShared, false)
	v := c.Invalidate(b)
	if !v.Valid {
		t.Fatal("Invalidate should report the block was present")
	}
	if c.Contains(b) {
		t.Fatal("block still resident after Invalidate")
	}
	// The region no longer predicts hit once its only block is gone.
	res := c.Access(0, b, false)
	if res.PredictedHit {
		t.Error("predictor was not informed of the invalidation")
	}
	if c.Invalidate(b).Valid {
		t.Error("second Invalidate should report absence")
	}
}

func TestSetStateInvalidRemoves(t *testing.T) {
	c := newTestCache(t, Clean)
	b := addr.Block(3)
	c.Fill(0, b, coherence.LineShared, false)
	if !c.SetState(b, coherence.LineInvalid) {
		t.Fatal("SetState(Invalid) should report presence")
	}
	if c.Contains(b) {
		t.Fatal("block should be gone")
	}
}

func TestProbeDoesNotPerturbStats(t *testing.T) {
	c := newTestCache(t, Clean)
	b := addr.Block(11)
	c.Fill(0, b, coherence.LineShared, false)
	before := c.Stats()
	_, ok, done := c.Probe(0, b)
	if !ok {
		t.Fatal("Probe should find the block")
	}
	if done < sim.Time(c.Config().AccessLatency) {
		t.Error("Probe should cost a DRAM cache access")
	}
	after := c.Stats()
	if before.Reads != after.Reads || before.Writes != after.Writes ||
		before.Predictor.Predictions != after.Predictor.Predictions {
		t.Error("Probe changed access or predictor statistics")
	}
}

func TestChannelBandwidthQueues(t *testing.T) {
	cfg := DefaultConfig("bw", 1*testMB, Clean)
	cfg.Channels = 1
	cfg.ChannelBandwidthGBs = 0.001 // absurdly slow so queueing is visible
	c := New(cfg)
	b := addr.Block(1)
	c.Fill(0, b, coherence.LineShared, false)
	first := c.Access(0, b, false)
	second := c.Access(0, b, false)
	if second.Done <= first.Done {
		t.Errorf("second access (%v) should queue behind the first (%v)", second.Done, first.Done)
	}
}

func TestResetStatsKeepsContents(t *testing.T) {
	c := newTestCache(t, Clean)
	b := addr.Block(5)
	c.Fill(0, b, coherence.LineShared, false)
	c.Access(0, b, false)
	c.ResetStats()
	if c.Stats().Accesses() != 0 {
		t.Error("ResetStats did not clear access counters")
	}
	if !c.Contains(b) {
		t.Error("ResetStats evicted cache contents")
	}
}

func TestSetAccessLatency(t *testing.T) {
	c := newTestCache(t, Clean)
	c.SetAccessLatency(sim.NsToCycles(50))
	b := addr.Block(2)
	c.Fill(0, b, coherence.LineShared, false)
	res := c.Access(0, b, false)
	if res.Done < sim.Time(sim.NsToCycles(50)) {
		t.Errorf("Done = %v, want at least 50ns after raising the latency", res.Done)
	}
}

// Property: under the Clean policy, no sequence of fills and write accesses
// ever leaves a dirty block in the cache.
func TestCleanInvariantProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		c := New(DefaultConfig("prop", 256*addr.BlockBytes, Clean))
		for _, op := range ops {
			b := addr.Block(op % 512)
			switch op % 3 {
			case 0:
				c.Fill(0, b, coherence.LineModified, true)
			case 1:
				c.Access(0, b, true)
			case 2:
				c.Access(0, b, false)
			}
		}
		return !c.HasDirtyBlocks()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the number of resident lines never exceeds the capacity in
// blocks.
func TestCapacityProperty(t *testing.T) {
	const capBlocks = 128
	f := func(ops []uint16) bool {
		c := New(DefaultConfig("prop", capBlocks*addr.BlockBytes, Dirty))
		for _, op := range ops {
			c.Fill(0, addr.Block(op), coherence.LineShared, false)
		}
		return c.ValidLines() <= capBlocks
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// BenchmarkAccessHit guards the per-access hot path: a steady-state DRAM
// cache access (predict, tag lookup, channel occupancy) must not allocate.
func BenchmarkAccessHit(b *testing.B) {
	b.ReportAllocs()
	c := New(DefaultConfig("bench", 64*testMB, Clean))
	for i := 0; i < 4096; i++ {
		c.Fill(0, addr.Block(i), coherence.LineShared, false)
	}
	now := sim.Time(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := c.Access(now, addr.Block(i%4096), i%3 == 0)
		now = res.Done
	}
}

// BenchmarkFillChurn guards the fill/evict path of a full direct-mapped
// cache, which exercises predictor updates and victim accounting.
func BenchmarkFillChurn(b *testing.B) {
	b.ReportAllocs()
	c := New(DefaultConfig("bench", 16*testMB, Clean))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Fill(0, addr.Block(i), coherence.LineShared, false)
	}
}
