package dramcache

import (
	"c3d/internal/addr"
)

// MissPredictor is the region-based DRAM cache hit/miss predictor of Table II
// (a 4K-entry, region-grain structure in the spirit of Qureshi & Loh's MAP
// predictors). Its purpose is purely performance: a predicted miss lets the
// controller start the next-level access without waiting for the in-DRAM tag
// check, and a predicted hit avoids wasting memory bandwidth on speculative
// fetches.
//
// Each table entry tracks one memory region (an OS page) with a small
// saturating counter trained on actual outcomes: hits in the region push the
// counter up, misses push it down, fills prime it high and evictions decay
// it. A lookup predicts a hit when the counter is at or above the prediction
// threshold, so regions that are only sparsely resident quickly learn to
// predict miss instead of paying the in-DRAM tag check on every access.
// Predictions can still be wrong in both directions; correctness never
// depends on them — the protocol engines only use them to decide what to
// overlap.
type MissPredictor struct {
	entries int
	mask    uint64
	regions []predictorEntry
	stats   PredictorStats
	// lastRegion remembers the region of the most recent Predict call so
	// that Resolve can train the right entry.
	lastRegion addr.Page
}

type predictorEntry struct {
	region  addr.Page
	counter uint8
	valid   bool
}

const (
	// predictorMax is the saturating counter ceiling.
	predictorMax = 3
	// predictorThreshold is the minimum counter value that predicts a hit.
	predictorThreshold = 2
)

// PredictorStats counts predictions and their accuracy.
type PredictorStats struct {
	Predictions   uint64
	PredictedHit  uint64
	PredictedMiss uint64
	// FalseHits counts predicted-hit lookups that actually missed.
	FalseHits uint64
	// FalseMisses counts predicted-miss lookups that actually hit.
	FalseMisses uint64
}

// Accuracy returns the fraction of predictions that were correct, or 0 when
// no prediction has been made.
func (s PredictorStats) Accuracy() float64 {
	if s.Predictions == 0 {
		return 0
	}
	wrong := s.FalseHits + s.FalseMisses
	return 1 - float64(wrong)/float64(s.Predictions)
}

// NewMissPredictor builds a predictor with the given number of entries
// (rounded down to a power of two; Table II uses 4096).
func NewMissPredictor(entries int) *MissPredictor {
	if entries < 1 {
		entries = 1
	}
	// Round down to a power of two so the index is a mask.
	n := 1
	for n*2 <= entries {
		n *= 2
	}
	return &MissPredictor{
		entries: n,
		mask:    uint64(n - 1),
		regions: make([]predictorEntry, n),
	}
}

// Entries returns the table capacity.
func (p *MissPredictor) Entries() int { return p.entries }

// Stats returns a snapshot of the prediction counters.
func (p *MissPredictor) Stats() PredictorStats { return p.stats }

// ResetStats clears the prediction counters without forgetting region counts.
func (p *MissPredictor) ResetStats() { p.stats = PredictorStats{} }

// Reset returns the predictor to its untrained just-constructed state.
func (p *MissPredictor) Reset() {
	clear(p.regions)
	p.stats = PredictorStats{}
	p.lastRegion = 0
}

func (p *MissPredictor) slot(region addr.Page) *predictorEntry {
	return &p.regions[uint64(region)&p.mask]
}

// Predict returns true if the predictor expects block b to hit in the DRAM
// cache. It records the prediction; the caller must later call Resolve with
// the actual outcome so the counters adapt and accuracy statistics stay
// meaningful.
func (p *MissPredictor) Predict(b addr.Block) bool {
	p.stats.Predictions++
	e := p.slot(addr.PageOfBlock(b))
	hit := e.valid && e.region == addr.PageOfBlock(b) && e.counter >= predictorThreshold
	if hit {
		p.stats.PredictedHit++
	} else {
		p.stats.PredictedMiss++
	}
	p.lastRegion = addr.PageOfBlock(b)
	return hit
}

// Resolve records the actual outcome of the most recent prediction (for the
// region passed to Predict): the counter trains towards the observed
// behaviour, and mispredictions are counted.
func (p *MissPredictor) Resolve(predictedHit, actualHit bool) {
	switch {
	case predictedHit && !actualHit:
		p.stats.FalseHits++
	case !predictedHit && actualHit:
		p.stats.FalseMisses++
	}
	e := p.slot(p.lastRegion)
	if !e.valid || e.region != p.lastRegion {
		// Adopt the region so its behaviour can be learned.
		*e = predictorEntry{region: p.lastRegion, valid: true}
	}
	if actualHit {
		if e.counter < predictorMax {
			e.counter++
		}
	} else if e.counter > 0 {
		e.counter--
	}
}

// BlockFilled informs the predictor that block b has been inserted into the
// DRAM cache; the region is primed to predict hits.
func (p *MissPredictor) BlockFilled(b addr.Block) {
	region := addr.PageOfBlock(b)
	e := p.slot(region)
	if e.valid && e.region == region {
		// A fill is strong evidence the region is becoming resident: prime
		// the counter to at least the prediction threshold.
		switch {
		case e.counter < predictorThreshold:
			e.counter = predictorThreshold
		case e.counter < predictorMax:
			e.counter++
		}
		return
	}
	// Displace whatever region was tracked here; the newly filled region
	// starts at the prediction threshold.
	*e = predictorEntry{region: region, counter: predictorThreshold, valid: true}
}

// BlockEvicted informs the predictor that block b has left the DRAM cache
// (eviction or invalidation); the region's confidence decays.
func (p *MissPredictor) BlockEvicted(b addr.Block) {
	region := addr.PageOfBlock(b)
	e := p.slot(region)
	if e.valid && e.region == region && e.counter > 0 {
		e.counter--
	}
}

// TrackedRegions returns how many table entries currently predict hits.
// Intended for tests and reporting.
func (p *MissPredictor) TrackedRegions() int {
	n := 0
	for i := range p.regions {
		if p.regions[i].valid && p.regions[i].counter >= predictorThreshold {
			n++
		}
	}
	return n
}
