package dramcache

import (
	"testing"
	"testing/quick"

	"c3d/internal/addr"
)

func TestPredictorRoundsToPowerOfTwo(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{4096, 4096}, {5000, 4096}, {1, 1}, {0, 1}, {3, 2},
	} {
		if got := NewMissPredictor(tc.in).Entries(); got != tc.want {
			t.Errorf("NewMissPredictor(%d).Entries() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestPredictorLearnsRegion(t *testing.T) {
	p := NewMissPredictor(4096)
	b := addr.Block(100)
	if p.Predict(b) {
		t.Fatal("cold predictor should predict miss")
	}
	p.BlockFilled(b)
	if !p.Predict(b) {
		t.Fatal("after a fill the region should predict hit")
	}
	// Another block in the same page also predicts hit (region granularity).
	sameRegion := b + 1
	if addr.PageOfBlock(sameRegion) != addr.PageOfBlock(b) {
		t.Fatal("test bug: blocks not in the same page")
	}
	if !p.Predict(sameRegion) {
		t.Error("block in a tracked region should predict hit")
	}
	// A block in a different page predicts miss.
	otherRegion := b + addr.BlocksPerPage
	if p.Predict(otherRegion) {
		t.Error("block in an untracked region should predict miss")
	}
}

func TestPredictorEvictionDecrements(t *testing.T) {
	p := NewMissPredictor(16)
	b := addr.Block(5)
	p.BlockFilled(b)
	p.BlockFilled(b + 1)
	p.BlockEvicted(b)
	if !p.Predict(b + 1) {
		t.Error("region with one remaining block should still predict hit")
	}
	p.BlockEvicted(b + 1)
	if p.Predict(b) {
		t.Error("region with zero resident blocks should predict miss")
	}
	// An extra eviction must not underflow the counter.
	p.BlockEvicted(b)
	if p.Predict(b) {
		t.Error("counter underflow changed the prediction")
	}
}

func TestPredictorDisplacement(t *testing.T) {
	// A single-entry table: filling a block from a second region displaces
	// the first, which then (conservatively) predicts miss.
	p := NewMissPredictor(1)
	a := addr.Block(0)
	b := addr.Block(addr.BlocksPerPage) // a different page
	p.BlockFilled(a)
	p.BlockFilled(b)
	if p.Predict(a) {
		t.Error("displaced region should predict miss")
	}
	if !p.Predict(b) {
		t.Error("current region should predict hit")
	}
}

func TestPredictorAccuracyStats(t *testing.T) {
	p := NewMissPredictor(64)
	// Prediction 1: cold -> predicted miss, actual miss (correct).
	pred := p.Predict(addr.Block(1))
	p.Resolve(pred, false)
	// Prediction 2: after fill -> predicted hit, actual hit (correct).
	p.BlockFilled(addr.Block(1))
	pred = p.Predict(addr.Block(1))
	p.Resolve(pred, true)
	// Prediction 3: same region, different block -> predicted hit, actual
	// miss (false hit).
	pred = p.Predict(addr.Block(2))
	p.Resolve(pred, false)
	s := p.Stats()
	if s.Predictions != 3 {
		t.Fatalf("Predictions = %d, want 3", s.Predictions)
	}
	if s.FalseHits != 1 || s.FalseMisses != 0 {
		t.Errorf("FalseHits = %d, FalseMisses = %d; want 1, 0", s.FalseHits, s.FalseMisses)
	}
	if acc := s.Accuracy(); acc < 0.66 || acc > 0.67 {
		t.Errorf("Accuracy = %.3f, want 2/3", acc)
	}
	p.ResetStats()
	if p.Stats().Predictions != 0 {
		t.Error("ResetStats did not clear prediction counters")
	}
	if !p.Predict(addr.Block(1)) {
		t.Error("ResetStats must not forget region contents")
	}
}

func TestPredictorTrackedRegions(t *testing.T) {
	p := NewMissPredictor(64)
	if p.TrackedRegions() != 0 {
		t.Fatal("new predictor should track no regions")
	}
	p.BlockFilled(addr.Block(0))
	p.BlockFilled(addr.Block(addr.BlocksPerPage))
	if got := p.TrackedRegions(); got != 2 {
		t.Errorf("TrackedRegions = %d, want 2", got)
	}
}

// Property: a predictor with a large table always predicts hit for a block
// right after that block was filled (no aliasing possible within the
// property's address range), and predicts miss after the fill is undone.
func TestPredictorFillEvictProperty(t *testing.T) {
	p := NewMissPredictor(1 << 16)
	f := func(raw uint16) bool {
		b := addr.Block(raw)
		p.BlockFilled(b)
		hitAfterFill := p.Predict(b)
		p.BlockEvicted(b)
		// After removing the only tracked block of the region the region may
		// still be tracked by other fills from earlier iterations of the
		// property; restrict the check to the positive direction.
		return hitAfterFill
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPredictorAccuracyZeroWhenUnused(t *testing.T) {
	var s PredictorStats
	if s.Accuracy() != 0 {
		t.Error("Accuracy of an unused predictor should be 0")
	}
}
