package machine

import (
	"c3d/internal/addr"
	"c3d/internal/cache"
	"c3d/internal/coherence"
	"c3d/internal/sim"
)

// sharedEngine is the shared (memory-side) DRAM cache organisation of §II-C:
// each socket's DRAM cache fronts that socket's memory and caches only
// addresses homed there. Aggregate capacity scales with the socket count and
// no coherence is needed (an address can live in exactly one DRAM cache), but
// every LLC miss to a remote home still crosses the interconnect — the design
// filters memory accesses, not off-socket traffic.
//
// On-chip coherence is identical to the baseline's directory scheme.
type sharedEngine struct {
	m *Machine
}

func init() {
	RegisterDesign(DesignSpec{
		Name:           SharedDRAM,
		Description:    "memory-side DRAM caches fronting each socket's memory: no coherence, no traffic reduction (§II-C)",
		Rank:           5,
		HasDRAMCache:   true,
		NewEngine:      func(m *Machine) Engine { return &sharedEngine{m: m} },
		NewDirectories: SparseGenericDirectory,
	})
}

func (e *sharedEngine) Name() string { return "shared" }

// memOrDRAMCacheRead reads the block at its home socket, checking the home's
// memory-side DRAM cache before memory, and returns the completion time.
func (e *sharedEngine) memOrDRAMCacheRead(now sim.Time, home, requester *Socket, b addr.Block) sim.Time {
	m := e.m
	res := home.dramCache.Access(now, b, false)
	if res.Hit {
		return res.Done
	}
	t := m.memRead(res.Done, home, requester, b)
	// Install the block in the memory-side cache (it caches memory, so the
	// fill happens on the memory-side of the home socket and is clean with
	// respect to the on-chip hierarchy; dirty data arrives later via
	// write-backs).
	fill := home.dramCache.Fill(t, b, coherence.LineShared, false)
	e.writebackVictim(t, home, fill.Victim)
	return t
}

// writebackVictim writes a dirty memory-side-cache victim back to the home's
// memory (no interconnect traffic: the cache sits next to the memory it
// fronts).
func (e *sharedEngine) writebackVictim(now sim.Time, home *Socket, victim cache.Victim) {
	if victim.Valid && victim.Dirty {
		e.m.memWrite(now, home, home, victim.Block)
	}
}

func (e *sharedEngine) ReadMiss(now sim.Time, sock *Socket, coreID int, b addr.Block) sim.Time {
	m := e.m
	home := m.home(b)
	t := dirRequestArrival(m, now, sock, home)

	entry, ok := home.dir.Lookup(b)
	if ok && entry.State == coherence.DirModified && entry.Owner != sock.id {
		owner := m.sockets[entry.Owner]
		t = m.sendControl(t, home, owner)
		t = t.Add(m.cfg.LLCTagLatency).Add(m.cfg.LLCDataLatency)
		owner.downgradeOnChip(b)
		wb := m.sendData(t, owner, home)
		fill := home.dramCache.Fill(wb, b, coherence.LineShared, true)
		e.writebackVictim(wb, home, fill.Victim)
		t = m.sendData(t, owner, sock)
		recall := home.dir.Update(b, coherence.Entry{
			State:   coherence.DirShared,
			Sharers: entry.Sharers.Add(entry.Owner).Add(sock.id),
		})
		handleRecall(m, t, home, recall)
		return t
	}
	t = e.memOrDRAMCacheRead(t, home, sock, b)
	t = m.sendData(t, home, sock)
	recall := home.dir.Update(b, coherence.Entry{State: coherence.DirShared, Sharers: entry.Sharers.Add(sock.id)})
	handleRecall(m, t, home, recall)
	return t
}

func (e *sharedEngine) WriteMiss(now sim.Time, sock *Socket, coreID int, b addr.Block, upgrade bool) sim.Time {
	m := e.m
	home := m.home(b)
	t := dirRequestArrival(m, now, sock, home)

	entry, _ := home.dir.Lookup(b)
	var dataDone, acksDone sim.Time

	switch {
	case entry.State == coherence.DirModified && entry.Owner != sock.id:
		owner := m.sockets[entry.Owner]
		fwd := m.sendControl(t, home, owner)
		fwd = fwd.Add(m.cfg.LLCTagLatency).Add(m.cfg.LLCDataLatency)
		owner.invalidateOnChip(b)
		dataDone = m.sendData(fwd, owner, sock)
		acksDone = dataDone
	case entry.State == coherence.DirShared:
		acksDone = t
		entry.Sharers.Others(sock.id).ForEach(func(sidx int) {
			sharer := m.sockets[sidx]
			inv := m.sendControl(t, home, sharer)
			sharer.invalidateOnChip(b)
			ack := m.sendControl(inv, sharer, sock)
			acksDone = sim.Max(acksDone, ack)
		})
		if upgrade {
			dataDone = m.sendControl(t, home, sock)
		} else {
			dataDone = m.sendData(e.memOrDRAMCacheRead(t, home, sock, b), home, sock)
		}
	default:
		if upgrade {
			dataDone = m.sendControl(t, home, sock)
		} else {
			dataDone = m.sendData(e.memOrDRAMCacheRead(t, home, sock, b), home, sock)
		}
		acksDone = dataDone
	}
	done := sim.Max(dataDone, acksDone)
	recall := home.dir.Update(b, coherence.Entry{
		State:   coherence.DirModified,
		Owner:   sock.id,
		Sharers: coherence.NewSharerSet(sock.id),
	})
	handleRecall(m, done, home, recall)
	return done
}

func (e *sharedEngine) LLCEvict(now sim.Time, sock *Socket, victim cache.Victim) {
	m := e.m
	home := m.home(victim.Block)
	if victim.Dirty {
		wb := m.sendData(now, sock, home)
		// The dirty data lands in the home's memory-side DRAM cache; memory
		// is updated when that cache eventually evicts it.
		fill := home.dramCache.Fill(wb, victim.Block, coherence.LineShared, true)
		e.writebackVictim(wb, home, fill.Victim)
		home.dir.Remove(victim.Block)
		m.sendControl(wb, home, sock)
	}
}
