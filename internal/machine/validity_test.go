package machine

import (
	"context"
	"testing"

	"c3d/internal/sample"
	"c3d/internal/workload"
)

// validitySpec is the sampling spec the CI sample-smoke gate runs; keeping
// the test suite on the same spec means the statistical claims are validated
// at exactly the configuration the gate (and the docs) advertise.
const validitySpec = "stretch=2800,warm=30,win=30"

// TestSampledIntervalsCoverFullRun is the statistical-validity contract over
// the whole evaluation suite: every paper workload under the baseline and
// C3D designs at the fig6 quick scale, full detailed run vs sampled run,
// every derived metric.
//
// Two assertions, both calibrated to what a 95% confidence interval can
// honestly promise:
//
//   - Coverage rate: across the whole grid, at least 85% of the full-run
//     values must lie inside the sampled run's reported interval. Exact 95%
//     intervals are expected to miss ~5% of cells by construction, and
//     near-deterministic metrics (an LLC miss rate of 0.97 with a ±0.001
//     bar) can be missed by small measurement-region differences that CPI
//     ratios cancel — but a drop below 85% means the bars have stopped
//     meaning anything.
//   - CPI bias bound: per cell, the full-run CPI must lie within
//     max(2 half-widths, 20% of the value) of the estimate. The sampled
//     estimator reports mean-core CPI while the full run reports parallel
//     time (max core), so a few half-widths of skew on imbalanced workloads
//     is legitimate; a functional-warming bug is not subtle — when the
//     fast-forward path stopped warming the DRAM caches, CPI was off by
//     integer multiples of the half-width on most of the grid.
//
// The byte-identity half of the validity claim (parallelism 1 vs 8,
// repeated runs) lives in TestSampledRunDeterministicAndAccounted and the
// experiments-level TestSampledSweepDeterministicAcrossParallelism.
func TestSampledIntervalsCoverFullRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 36 quick-scale simulations; skipped in -short mode")
	}
	spec, err := sample.Parse(validitySpec)
	if err != nil {
		t.Fatalf("parsing spec %q: %v", validitySpec, err)
	}
	opts := workload.Options{Threads: 8, Scale: 512, AccessesPerThread: 6000}
	covered, cells := 0, 0
	for _, name := range workload.Names() {
		tr := workload.MustGenerate(workload.MustGet(name), opts)
		for _, design := range []Design{Baseline, C3D} {
			cfg := DefaultConfig(4, design)
			cfg.Scale = 512
			cfg.CoresPerSocket = 2

			full, err := New(cfg).Run(context.Background(), tr, DefaultRunOptions())
			if err != nil {
				t.Fatalf("%s/%v: full run: %v", name, design, err)
			}
			sampled, err := New(cfg).Run(context.Background(), tr, sampledOpts(spec))
			if err != nil {
				t.Fatalf("%s/%v: sampled run: %v", name, design, err)
			}
			if sampled.Sampling == nil {
				t.Fatalf("%s/%v: sampled run has no Sampling section", name, design)
			}

			est := sampled.Sampling.Estimates
			for _, m := range []struct {
				metric string
				est    sample.Estimate
				full   float64
			}{
				{"CPI", est.CPI, float64(full.Cycles) / float64(full.Instructions)},
				{"LLCMissRate", est.LLCMissRate, full.Counters.LLCMissRate()},
				{"FabricBytesPerAccess", est.FabricBytesPerAccess,
					float64(full.InterSocketBytes) / float64(full.Counters.Loads+full.Counters.Stores)},
				{"RemoteMemFraction", est.RemoteMemFraction, full.Counters.RemoteMemFraction()},
			} {
				cells++
				if m.est.Contains(m.full) {
					covered++
				} else {
					t.Logf("%s/%v/%s: full value %.5f outside sampled %.5f±%.5f",
						name, design, m.metric, m.full, m.est.Value, m.est.HalfWidth)
				}
			}

			fullCPI := float64(full.Cycles) / float64(full.Instructions)
			dev := fullCPI - est.CPI.Value
			if dev < 0 {
				dev = -dev
			}
			if limit := max(2*est.CPI.HalfWidth, 0.2*fullCPI); dev > limit {
				t.Errorf("%s/%v: sampled CPI %.4f±%.4f biased against full-run %.4f (deviation %.4f > %.4f)",
					name, design, est.CPI.Value, est.CPI.HalfWidth, fullCPI, dev, limit)
			}
		}
	}
	if rate := float64(covered) / float64(cells); rate < 0.85 {
		t.Errorf("only %d/%d (%.0f%%) of full-run values inside the sampled 95%% intervals, want >= 85%%",
			covered, cells, 100*rate)
	} else {
		t.Logf("%d/%d (%.0f%%) of full-run values inside the sampled 95%% intervals", covered, cells, 100*rate)
	}
}
