// Package machine composes the substrates — cores, caches, DRAM caches,
// directories, interconnect, memory — into a multi-socket NUMA machine and
// runs workload traces through it under one of the registered coherence
// designs. The built-ins are the paper's six (§V-A): the baseline without
// DRAM caches, the naive snoopy and full-directory DRAM cache designs, C3D,
// the idealised c3d-full-dir, and a shared (memory-side) DRAM cache
// organisation.
//
// Designs are pluggable: a registry maps names to DesignSpecs, each bundling
// the design's structural traits with the factories for its coherence engine
// and per-socket directory slices. Machine construction dispatches purely
// through the registry — there is no design switch to extend — so a new
// design is one RegisterDesign call in an init function; see DesignSpec for
// the recipe. The fabric topology is equally pluggable through
// interconnect.RegisterTopology, selected by Config.Topology.
//
// The timing model follows the paper's own simulator: simple 1-IPC in-order
// cores with blocking loads and a store queue, and a memory system whose
// latency is composed from component latencies (Table II) plus queueing at
// bandwidth-regulated resources. Coherence state changes are applied
// atomically at the time a request is handled; the transient-state races are
// verified separately by the protocol model checker (internal/core +
// internal/mc).
package machine

import (
	"fmt"

	"c3d/internal/dramcache"
	"c3d/internal/interconnect"
	"c3d/internal/numa"
	"c3d/internal/sim"
)

// Design names a registered coherence design. The value is the registry key:
// comparing, printing and parsing all go through the same string, so a
// design added by RegisterDesign is immediately usable everywhere a built-in
// one is (machine configs, experiment campaigns, CLI flags, the daemon's
// JobSpec).
type Design string

// The built-in designs (§V-A).
const (
	// Baseline is the reference machine without DRAM caches (§V-A).
	Baseline Design = "baseline"
	// Snoopy adds private dirty DRAM caches kept coherent by snooping every
	// remote socket on a local miss (§III-A).
	Snoopy Design = "snoopy"
	// FullDir adds private dirty DRAM caches tracked by an idealised
	// inclusive full directory (§III-B).
	FullDir Design = "full-dir"
	// C3D is the proposed design: clean private DRAM caches plus a
	// non-inclusive directory with broadcast invalidations for untracked
	// writes (§IV).
	C3D Design = "c3d"
	// C3DFullDir is C3D with an idealised full directory that also tracks
	// DRAM cache blocks, eliminating broadcasts (§V-A).
	C3DFullDir Design = "c3d-full-dir"
	// SharedDRAM places each DRAM cache in front of its socket's memory as a
	// memory-side cache: no replication, no coherence, but also no reduction
	// in off-socket traffic (§II-C).
	SharedDRAM Design = "shared"
)

func (d Design) String() string { return string(d) }

// ParseDesign converts a design name back into a Design. Only registered
// names parse.
func ParseDesign(s string) (Design, error) {
	if _, err := designSpec(Design(s)); err != nil {
		return "", err
	}
	return Design(s), nil
}

// Designs returns every registered design in deterministic order: ascending
// DesignSpec.Rank, ties broken by name. For the built-ins that is the
// evaluation order of the paper's figures.
func Designs() []Design {
	specs := designSpecs()
	out := make([]Design, len(specs))
	for i, spec := range specs {
		out[i] = spec.Name
	}
	return out
}

// EvaluatedDesigns returns the designs compared in Figs. 6-9 (the specs
// registered with Evaluated set): the baseline plus the four DRAM cache
// coherence schemes.
func EvaluatedDesigns() []Design {
	var out []Design
	for _, spec := range designSpecs() {
		if spec.Evaluated {
			out = append(out, spec.Name)
		}
	}
	return out
}

// HasDRAMCache reports whether the design includes per-socket DRAM caches
// (false for unregistered designs).
func (d Design) HasDRAMCache() bool {
	spec, err := designSpec(d)
	return err == nil && spec.HasDRAMCache
}

// HasPrivateDRAMCache reports whether the DRAM caches are private to each
// socket (and therefore need coherence).
func (d Design) HasPrivateDRAMCache() bool {
	spec, err := designSpec(d)
	return err == nil && spec.PrivateDRAMCache
}

// CleanDRAMCache reports whether the design keeps its DRAM caches clean
// (write-through), which is C3D's defining property.
func (d Design) CleanDRAMCache() bool {
	spec, err := designSpec(d)
	return err == nil && spec.CleanDRAMCache
}

// Config describes the simulated machine. All capacities are given at paper
// scale (Table II); Scale divides them (and should divide the workload's
// footprint identically — workload.Options.Scale) so the capacity ratios are
// preserved while the simulation stays laptop-sized.
type Config struct {
	// Design selects the coherence scheme.
	Design Design
	// Sockets and CoresPerSocket shape the machine: 4×8 and 2×16 are the
	// paper's two configurations (32 cores total either way); the scaling
	// study stretches Sockets to 16.
	Sockets        int
	CoresPerSocket int
	// Topology selects the inter-socket fabric. Empty means the socket
	// count's default (point-to-point for 1-2 sockets, ring beyond) —
	// exactly the paper's two shapes.
	Topology interconnect.Topology
	// MemPolicy is the NUMA page placement policy.
	MemPolicy numa.Policy
	// Scale divides LLC, DRAM cache and directory capacities.
	Scale int

	// Core parameters.
	StoreQueueEntries int

	// L1 parameters (private per core). The L1 is small enough that it is
	// not scaled.
	L1SizeBytes uint64
	L1Ways      int
	L1Latency   sim.Cycles

	// LLC parameters (shared per socket).
	LLCSizeBytes   uint64
	LLCWays        int
	LLCTagLatency  sim.Cycles
	LLCDataLatency sim.Cycles

	// Global directory parameters (per-socket slice). Provisioning is the
	// sparse over-provisioning factor relative to the LLC capacity in
	// blocks; 0 gives an unbounded directory.
	DirProvisioning  float64
	DirWays          int
	GlobalDirLatency sim.Cycles

	// DRAM cache parameters (per socket).
	DRAMCacheSizeBytes    uint64
	DRAMCacheLatencyNs    float64
	DRAMCacheChannels     int
	DRAMCacheBandwidthGBs float64
	PredictorEntries      int

	// Main memory parameters (per socket).
	MemLatencyNs    float64
	MemChannels     int
	MemBandwidthGBs float64

	// Interconnect parameters.
	HopLatencyNs     float64
	LinkBandwidthGBs float64

	// §IV-D broadcast filter (only meaningful for the C3D design).
	EnableBroadcastFilter bool

	// Idealisation knobs for the Fig. 2 bottleneck analysis.
	ZeroHopLatency     bool
	InfiniteMemBW      bool
	InfiniteLinkBW     bool
	InfiniteDRAMCacheB bool
}

const (
	kib = 1 << 10
	mib = 1 << 20
	gib = 1 << 30
)

// DefaultConfig returns the Table II machine for the given socket count and
// design, at the default scale shared with workload.DefaultScale. The
// paper's two shapes (2×16 and 4×8) keep their 32-core total, as does any
// socket count dividing 32; other counts get the paper's 8 cores per socket.
// The fabric topology is left at the socket count's default (Config.Topology
// empty); set it explicitly for the generalized mesh/fully-connected shapes.
func DefaultConfig(sockets int, design Design) Config {
	coresPerSocket := 8
	if sockets > 0 && 32%sockets == 0 {
		coresPerSocket = 32 / sockets
	}
	return Config{
		Design:         design,
		Sockets:        sockets,
		CoresPerSocket: coresPerSocket,
		MemPolicy:      numa.FirstTouch2,
		Scale:          64,

		StoreQueueEntries: 32,

		L1SizeBytes: 64 * kib,
		L1Ways:      8,
		L1Latency:   3,

		LLCSizeBytes:   16 * mib,
		LLCWays:        16,
		LLCTagLatency:  7,
		LLCDataLatency: 13,

		DirProvisioning:  2,
		DirWays:          32,
		GlobalDirLatency: 10,

		DRAMCacheSizeBytes:    1 * gib,
		DRAMCacheLatencyNs:    40,
		DRAMCacheChannels:     8,
		DRAMCacheBandwidthGBs: 12.8,
		PredictorEntries:      4096,

		MemLatencyNs:    50,
		MemChannels:     2,
		MemBandwidthGBs: 12.8,

		HopLatencyNs:     20,
		LinkBandwidthGBs: 25.6,
	}
}

// Validate checks that the configuration is internally consistent: the
// design and topology must be registered, the selected (or default) topology
// must host the socket count, and the capacities must be sane.
func (c Config) Validate() error {
	switch {
	case c.Sockets < 1:
		return fmt.Errorf("machine: need at least one socket, got %d", c.Sockets)
	case c.CoresPerSocket < 1:
		return fmt.Errorf("machine: need at least one core per socket, got %d", c.CoresPerSocket)
	case c.Scale < 1:
		return fmt.Errorf("machine: scale must be >= 1, got %d", c.Scale)
	case c.L1SizeBytes == 0 || c.LLCSizeBytes == 0:
		return fmt.Errorf("machine: cache sizes must be non-zero")
	case c.DirProvisioning < 0:
		return fmt.Errorf("machine: negative directory provisioning")
	}
	if _, err := designSpec(c.Design); err != nil {
		return err
	}
	if c.Design.HasDRAMCache() && c.DRAMCacheSizeBytes == 0 {
		return fmt.Errorf("machine: design %v needs a DRAM cache size", c.Design)
	}
	if _, err := c.fabricConfig(); err != nil {
		return fmt.Errorf("machine: %w", err)
	}
	return nil
}

// ResolvedTopology returns the fabric topology the machine will use: the
// explicit Config.Topology, or the socket count's default when unset.
func (c Config) ResolvedTopology() (interconnect.Topology, error) {
	if c.Topology != "" {
		if err := interconnect.SupportsSockets(c.Topology, c.Sockets); err != nil {
			return "", err
		}
		return c.Topology, nil
	}
	return interconnect.DefaultTopology(c.Sockets)
}

// fabricConfig resolves the interconnect configuration: the selected (or
// default) topology with the machine's Table II hop latency and link
// bandwidth.
func (c Config) fabricConfig() (interconnect.Config, error) {
	topo, err := c.ResolvedTopology()
	if err != nil {
		return interconnect.Config{}, err
	}
	icCfg := interconnect.Config{
		Sockets:          c.Sockets,
		Topology:         topo,
		HopLatency:       sim.NsToCycles(c.HopLatencyNs),
		LinkBandwidthGBs: c.LinkBandwidthGBs,
	}
	return icCfg, icCfg.Validate()
}

// Cores returns the total core count.
func (c Config) Cores() int { return c.Sockets * c.CoresPerSocket }

// ScaledLLCSize returns the LLC capacity after applying the scale factor.
func (c Config) ScaledLLCSize() uint64 { return scaleCapacity(c.LLCSizeBytes, c.Scale) }

// ScaledL1Size returns the per-core L1 capacity. The L1 is small enough that
// it is left at its native size for scales up to the default 64; beyond that
// it shrinks proportionally (with a 4 KiB floor) so the hierarchy ordering
// L1 < LLC < DRAM cache is preserved at aggressive scales.
func (c Config) ScaledL1Size() uint64 {
	if c.Scale <= 64 {
		return c.L1SizeBytes
	}
	scaled := c.L1SizeBytes * 64 / uint64(c.Scale)
	const floor = 4 * kib
	if scaled < floor {
		scaled = floor
	}
	// Keep a power of two for valid cache geometry.
	p := uint64(1)
	for p*2 <= scaled {
		p *= 2
	}
	return p
}

// ScaledDRAMCacheSize returns the DRAM cache capacity after scaling.
func (c Config) ScaledDRAMCacheSize() uint64 { return scaleCapacity(c.DRAMCacheSizeBytes, c.Scale) }

// scaleCapacity divides a capacity, keeping it a power-of-two multiple of the
// block size so cache geometry stays valid, and never below 16 KiB.
func scaleCapacity(bytes uint64, scale int) uint64 {
	s := bytes / uint64(scale)
	const floor = 16 * kib
	if s < floor {
		s = floor
	}
	// Round down to a power of two (cache geometry requires power-of-two
	// sets; with power-of-two ways any power-of-two capacity works).
	p := uint64(1)
	for p*2 <= s {
		p *= 2
	}
	return p
}

// DirEntries returns the number of global-directory entries per socket slice
// after scaling (0 means unbounded).
func (c Config) DirEntries() int {
	if c.DirProvisioning <= 0 {
		return 0
	}
	llcBlocks := c.ScaledLLCSize() / 64
	entries := int(float64(llcBlocks) * c.DirProvisioning)
	// Round down to a multiple of DirWays with a power-of-two set count.
	ways := c.DirWays
	if ways <= 0 {
		ways = 1
	}
	sets := 1
	for sets*2*ways <= entries {
		sets *= 2
	}
	return sets * ways
}

// dramCachePolicy maps the design to the DRAM cache write policy.
func (c Config) dramCachePolicy() dramcache.Policy {
	if c.Design.CleanDRAMCache() {
		return dramcache.Clean
	}
	return dramcache.Dirty
}
