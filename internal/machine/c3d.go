package machine

import (
	"fmt"

	"c3d/internal/addr"
	"c3d/internal/cache"
	"c3d/internal/core"
	"c3d/internal/sim"
)

// c3dEngine implements the proposed design (§IV) and, when the socket
// directories are built with TrackDRAMCache, the idealised c3d-full-dir
// variant of §V-A. Its defining behaviours:
//
//   - DRAM caches are clean: LLC dirty evictions are written through to
//     memory while a clean copy is retained locally, so no remote DRAM cache
//     can ever hold the only valid copy of a block.
//   - Read misses therefore never probe a remote DRAM cache: they are served
//     by the home memory or, for blocks Modified on-chip elsewhere, by the
//     owning socket's LLC.
//   - The global directory is non-inclusive: it does not track blocks that
//     live only in DRAM caches. Writes to untracked blocks broadcast
//     invalidations to all DRAM caches — off the critical path, filtered for
//     thread-private pages when the §IV-D classifier is enabled.
type c3dEngine struct {
	m *Machine
}

func init() {
	RegisterDesign(DesignSpec{
		Name:             C3D,
		Description:      "clean private DRAM caches plus a non-inclusive directory with broadcast invalidations (§IV)",
		Rank:             3,
		Evaluated:        true,
		HasDRAMCache:     true,
		PrivateDRAMCache: true,
		CleanDRAMCache:   true,
		NewEngine:        func(m *Machine) Engine { return &c3dEngine{m: m} },
		NewDirectories: func(id int, cfg Config) SocketDirectories {
			return SocketDirectories{C3D: core.NewDirectory(core.DirConfig{
				Name:    fmt.Sprintf("gdir.%d", id),
				Sockets: cfg.Sockets,
				Entries: cfg.DirEntries(),
				Ways:    cfg.DirWays,
			})}
		},
	})
	RegisterDesign(DesignSpec{
		Name:             C3DFullDir,
		Description:      "C3D with an idealised full directory that also tracks DRAM cache blocks (§V-A)",
		Rank:             4,
		Evaluated:        true,
		HasDRAMCache:     true,
		PrivateDRAMCache: true,
		CleanDRAMCache:   true,
		NewEngine:        func(m *Machine) Engine { return &c3dEngine{m: m} },
		NewDirectories: func(id int, cfg Config) SocketDirectories {
			return SocketDirectories{C3D: core.NewDirectory(core.DirConfig{
				Name:           fmt.Sprintf("gdir.%d", id),
				Sockets:        cfg.Sockets,
				TrackDRAMCache: true,
			})}
		},
	})
}

func (e *c3dEngine) Name() string {
	if e.m.cfg.Design == C3DFullDir {
		return "c3d-full-dir"
	}
	return "c3d"
}

func (e *c3dEngine) ReadMiss(now sim.Time, sock *Socket, coreID int, b addr.Block) sim.Time {
	m := e.m
	// Fast path: the local (clean) DRAM cache.
	res := sock.dramCache.Access(now, b, false)
	if res.Hit {
		return res.Done
	}
	t := res.Done
	home := m.home(b)
	t = dirRequestArrival(m, t, sock, home)

	dec := home.c3dDir.HandleGetS(b, sock.id)
	handleRecall(m, t, home, dec.Recall)
	if dec.Source == core.FromOwnerLLC {
		// The only possible Modified copies are on-chip (clean DRAM caches),
		// so the forward always terminates at the owner's LLC — never at a
		// remote DRAM cache.
		owner := m.sockets[dec.Owner]
		t = m.sendControl(t, home, owner)
		t = t.Add(m.cfg.LLCTagLatency).Add(m.cfg.LLCDataLatency)
		owner.downgradeOnChip(b)
		// Keep memory up to date so the directory's Shared invariant holds
		// (the write-back is off the requester's critical path).
		wb := m.sendData(t, owner, home)
		m.memWrite(wb, home, owner, b)
		return m.sendData(t, owner, sock)
	}
	// Memory supplies the data; remote DRAM caches are bypassed entirely.
	t = m.memRead(t, home, sock, b)
	return m.sendData(t, home, sock)
}

func (e *c3dEngine) WriteMiss(now sim.Time, sock *Socket, coreID int, b addr.Block, upgrade bool) sim.Time {
	m := e.m
	// The local DRAM cache can supply the data (it is clean, so memory holds
	// the same bytes); permission still comes from the home directory.
	res := sock.dramCache.Access(now, b, true)
	t := res.Done
	home := m.home(b)
	t = dirRequestArrival(m, t, sock, home)

	pagePrivate := m.filter.PagePrivate(b, coreID)
	dec := home.c3dDir.HandleGetX(b, sock.id, upgrade, pagePrivate)
	handleRecall(m, t, home, dec.Recall)

	var dataDone, acksDone sim.Time
	acksDone = t

	switch {
	case dec.Source == core.FromOwnerLLC:
		// Ownership transfer from the previous owner's on-chip hierarchy;
		// its whole hierarchy (DRAM cache included) is invalidated.
		owner := m.sockets[dec.Owner]
		fwd := m.sendControl(t, home, owner)
		fwd = fwd.Add(m.cfg.LLCTagLatency).Add(m.cfg.LLCDataLatency)
		owner.invalidateOnChip(b)
		owner.dramCache.Invalidate(b)
		dataDone = m.sendData(fwd, owner, sock)
		acksDone = dataDone
	case dec.Broadcast:
		// Untracked block: invalidate every other socket's DRAM cache (and
		// any on-chip Shared copies). The invalidations are acknowledged to
		// the requester; stores are off the critical path, so the extra
		// latency is usually hidden by the store queue (§IV-B).
		for _, target := range m.sockets {
			if target == sock {
				continue
			}
			inv := m.sendControl(t, home, target)
			target.invalidateOnChip(b)
			target.dramCache.Invalidate(b)
			inv = inv.Add(sim.NsToCycles(m.cfg.DRAMCacheLatencyNs))
			ack := m.sendControl(inv, target, sock)
			acksDone = sim.Max(acksDone, ack)
		}
		dataDone = e.writeData(t, sock, home, b, upgrade || res.Hit)
	default:
		// Tracked block (or an untracked block of a private page): precise
		// invalidations to the recorded sharers, which may be none.
		dec.Invalidate.ForEach(func(sidx int) {
			target := m.sockets[sidx]
			inv := m.sendControl(t, home, target)
			target.invalidateOnChip(b)
			target.dramCache.Invalidate(b)
			inv = inv.Add(sim.NsToCycles(m.cfg.DRAMCacheLatencyNs))
			ack := m.sendControl(inv, target, sock)
			acksDone = sim.Max(acksDone, ack)
		})
		dataDone = e.writeData(t, sock, home, b, upgrade || res.Hit)
	}
	return sim.Max(dataDone, acksDone)
}

// writeData models the data (or dataless grant) leg of a write request.
func (e *c3dEngine) writeData(now sim.Time, sock, home *Socket, b addr.Block, haveData bool) sim.Time {
	m := e.m
	if haveData {
		return m.sendControl(now, home, sock)
	}
	return m.sendData(m.memRead(now, home, sock, b), home, sock)
}

func (e *c3dEngine) LLCEvict(now sim.Time, sock *Socket, victim cache.Victim) {
	m := e.m
	action := core.CleanLLCEviction(victim.State, victim.Dirty)
	if action.WriteToMemory {
		// Write-through: memory stays up to date (the clean property). Off
		// the requesting core's critical path.
		home := m.home(victim.Block)
		wb := m.sendData(now, sock, home)
		m.memWrite(wb, home, sock, victim.Block)
		if action.NotifyDirectory {
			home.c3dDir.HandlePutX(victim.Block, sock.id)
			m.sendControl(wb, home, sock) // write-back acknowledgement
		}
	}
	if action.FillLocalDRAMCache {
		// Victim-cache fill; always clean. DRAM-cache victims are silently
		// dropped (they are clean by construction).
		sock.dramCache.Fill(now, victim.Block, victim.State, false)
	}
}
