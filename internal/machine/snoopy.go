package machine

import (
	"c3d/internal/addr"
	"c3d/internal/cache"
	"c3d/internal/coherence"
	"c3d/internal/core"
	"c3d/internal/sim"
)

// snoopyEngine is the naive snoopy design of §III-A: private, dirty
// (write-back) DRAM caches kept coherent by broadcasting every local miss to
// all remote sockets, which must probe their DRAM caches before the request
// can complete. The furthest socket's probe is therefore always on the
// critical path — the slow-remote-hit pathology.
type snoopyEngine struct {
	m *Machine
}

func init() {
	RegisterDesign(DesignSpec{
		Name:             Snoopy,
		Description:      "private dirty DRAM caches kept coherent by snooping every remote socket (§III-A)",
		Rank:             1,
		Evaluated:        true,
		HasDRAMCache:     true,
		PrivateDRAMCache: true,
		NewEngine:        func(m *Machine) Engine { return &snoopyEngine{m: m} },
		NewDirectories:   SparseGenericDirectory,
	})
}

func (e *snoopyEngine) Name() string { return "snoopy" }

// probeSocket models a snoop arriving at a remote socket: the socket checks
// its on-chip hierarchy and its DRAM cache (both must be consulted because
// the DRAM cache can hold dirty data under the write-back policy) and sends
// its response back to the requester. It returns the response arrival time,
// whether the socket had a dirty copy, and whether it had any copy at all.
func (e *snoopyEngine) probeSocket(now sim.Time, requester, target *Socket, b addr.Block, invalidate bool) (resp sim.Time, dirty, present bool) {
	m := e.m
	arr := m.sendControl(now, requester, target)
	// On-chip probe (LLC tags).
	t := arr.Add(m.cfg.LLCTagLatency)
	state, chipDirty, onChip := target.probeOnChip(b)
	// DRAM cache probe: unavoidable under the dirty policy, and the reason
	// snoopy performs poorly — the remote DRAM cache access is on the
	// critical path of every miss.
	m.counters.remoteDRAMProbes++
	line, inDC, probeDone := target.dramCache.Probe(t, b)
	t = probeDone
	present = onChip || inDC
	dirty = (onChip && (chipDirty || state == coherence.LineModified)) || (inDC && line.Dirty)

	if invalidate {
		target.invalidateOnChip(b)
		target.dramCache.Invalidate(b)
	} else if dirty {
		// A read snoop downgrades the dirty copy; the data is forwarded to
		// the requester and memory stays stale (the forwarded copy remains
		// the owner under the dirty policy, held Shared+dirty in the DRAM
		// cache so a later eviction writes it back).
		target.downgradeOnChip(b)
	}
	if dirty || present {
		resp = m.sendData(t, target, requester)
	} else {
		resp = m.sendControl(t, target, requester)
	}
	return resp, dirty, present
}

func (e *snoopyEngine) ReadMiss(now sim.Time, sock *Socket, coreID int, b addr.Block) sim.Time {
	m := e.m
	// Local DRAM cache first.
	res := sock.dramCache.Access(now, b, false)
	if res.Hit {
		return res.Done
	}
	t := res.Done
	home := m.home(b)

	// Broadcast snoops to every remote socket and, in parallel, fetch the
	// block from its home memory. The requester must wait for every snoop
	// response before it can use the memory data (a dirty copy may exist
	// anywhere), so the slowest responder bounds the completion time.
	var slowest sim.Time
	dirtyFound := false
	for _, target := range m.sockets {
		if target == sock {
			continue
		}
		resp, dirty, _ := e.probeSocket(t, sock, target, b, false)
		slowest = sim.Max(slowest, resp)
		dirtyFound = dirtyFound || dirty
	}
	memDone := m.sendData(m.memRead(dirRequestArrival(m, t, sock, home), home, sock, b), home, sock)
	if dirtyFound {
		// The dirty owner supplied the data; memory's (stale) response is
		// discarded but its latency was overlapped with the snoops.
		return slowest
	}
	return sim.Max(slowest, memDone)
}

func (e *snoopyEngine) WriteMiss(now sim.Time, sock *Socket, coreID int, b addr.Block, upgrade bool) sim.Time {
	m := e.m
	// The local DRAM cache may hold the data, but invalidations must still
	// reach every other socket.
	res := sock.dramCache.Access(now, b, true)
	t := res.Done
	if !res.Hit {
		t = res.Done
	}
	home := m.home(b)

	var slowest sim.Time
	dirtyFound := false
	for _, target := range m.sockets {
		if target == sock {
			continue
		}
		resp, dirty, _ := e.probeSocket(t, sock, target, b, true)
		slowest = sim.Max(slowest, resp)
		dirtyFound = dirtyFound || dirty
	}
	haveLocalData := upgrade || res.Hit
	if dirtyFound || haveLocalData {
		return sim.Max(slowest, t)
	}
	memDone := m.sendData(m.memRead(dirRequestArrival(m, t, sock, home), home, sock, b), home, sock)
	return sim.Max(slowest, memDone)
}

func (e *snoopyEngine) LLCEvict(now sim.Time, sock *Socket, victim cache.Victim) {
	m := e.m
	// Dirty-victim-cache organisation (§III): the DRAM cache absorbs the
	// victim, dirty or clean; memory is written only when the DRAM cache
	// itself evicts a dirty block.
	action := core.DirtyLLCEviction(victim.State, victim.Dirty)
	if !action.FillLocalDRAMCache {
		return
	}
	fill := sock.dramCache.Fill(now, victim.Block, victim.State, action.FillDirty)
	if fill.Victim.Valid && core.DRAMCacheEvictionNeedsWriteback(false, fill.Victim.Dirty) {
		home := m.home(fill.Victim.Block)
		wb := m.sendData(now, sock, home)
		m.memWrite(wb, home, sock, fill.Victim.Block)
	}
}
