package machine

import (
	"fmt"
	"strings"

	"c3d/internal/cpu"
	"c3d/internal/dramcache"
	"c3d/internal/interconnect"
	"c3d/internal/numa"
	"c3d/internal/stats"
)

// RunResult is the outcome of running one workload trace on one machine
// configuration. All counters cover the measured region only (after warm-up).
type RunResult struct {
	Design   Design
	Workload string
	Sockets  int
	Cores    int
	Policy   numa.Policy
	// Topology is the fabric topology the run used (always resolved — the
	// config's default-selection empty value never appears here).
	Topology interconnect.Topology

	// Cycles is the execution time of the measured region: the largest
	// per-core completion time, stores drained.
	Cycles uint64
	// Instructions is the total instruction count across cores (memory
	// accesses plus gap instructions).
	Instructions uint64

	// Machine-level counters.
	Counters Counters

	// InterSocketBytes is the total traffic that crossed the inter-socket
	// fabric, split by packet class.
	InterSocketBytes        uint64
	InterSocketControlBytes uint64
	InterSocketDataBytes    uint64
	InterSocketMessages     uint64

	// DRAMCacheHitRate is the aggregate hit rate across all private DRAM
	// caches (0 for the baseline design).
	DRAMCacheHitRate float64
	// DRAMCacheStats aggregates per-socket DRAM cache counters.
	DRAMCacheStats dramcache.Stats

	// PerCore holds each core's execution statistics.
	PerCore []cpu.Stats

	// PageStats describes the NUMA placement that the run used.
	PageStats numa.Stats

	// BroadcastFilterElided counts broadcasts removed by the §IV-D filter
	// (only non-zero when the filter is enabled).
	BroadcastFilterElided uint64

	// Sampling is present only for sampled runs: the schedule used, the
	// sampled/total access counts, and the 95% confidence half-width of each
	// derived metric. Full-detail runs omit it, so their JSON is unchanged.
	Sampling *SamplingResult `json:",omitempty"`
}

// IPC returns aggregate instructions per cycle (instructions across all
// cores divided by the parallel execution time).
func (r RunResult) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// SpeedupOver returns this result's speedup relative to a reference run of
// the same workload (reference cycles / these cycles).
func (r RunResult) SpeedupOver(ref RunResult) float64 {
	return stats.Speedup(ref.Cycles, r.Cycles)
}

// NormalizedInterSocketTraffic returns this run's fabric bytes divided by the
// reference run's (Fig. 9's metric).
func (r RunResult) NormalizedInterSocketTraffic(ref RunResult) float64 {
	return stats.Normalized(float64(r.InterSocketBytes), float64(ref.InterSocketBytes))
}

// NormalizedRemoteMemReads returns remote memory reads relative to the
// reference run (Fig. 8's read series).
func (r RunResult) NormalizedRemoteMemReads(ref RunResult) float64 {
	return stats.Normalized(float64(r.Counters.RemoteMemReads), float64(ref.Counters.RemoteMemReads))
}

// NormalizedRemoteMemWrites returns remote memory writes relative to the
// reference run (Fig. 8's write series).
func (r RunResult) NormalizedRemoteMemWrites(ref RunResult) float64 {
	return stats.Normalized(float64(r.Counters.RemoteMemWrites), float64(ref.Counters.RemoteMemWrites))
}

// NormalizedRemoteMemAccesses returns total remote memory accesses relative
// to the reference run (Fig. 8's total series).
func (r RunResult) NormalizedRemoteMemAccesses(ref RunResult) float64 {
	return stats.Normalized(float64(r.Counters.RemoteMemAccesses()), float64(ref.Counters.RemoteMemAccesses()))
}

// NormalizedMemAccesses returns total memory accesses relative to the
// reference run (Fig. 3's metric).
func (r RunResult) NormalizedMemAccesses(ref RunResult) float64 {
	return stats.Normalized(float64(r.Counters.MemAccesses()), float64(ref.Counters.MemAccesses()))
}

// String renders a one-line summary useful in logs and examples.
func (r RunResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s/%s %d-socket: %d cycles, IPC %.3f, LLC miss %.1f%%, remote mem %.1f%%",
		r.Workload, r.Design, r.Sockets, r.Cycles, r.IPC(),
		r.Counters.LLCMissRate()*100, r.Counters.RemoteMemFraction()*100)
	if r.Design.HasDRAMCache() {
		fmt.Fprintf(&b, ", DRAM$ hit %.1f%%", r.DRAMCacheHitRate*100)
	}
	return b.String()
}
