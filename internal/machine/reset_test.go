package machine

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"c3d/internal/workload"
)

// TestResetMatchesFreshMachine is the Machine.Reset contract: running a trace
// on a reset machine must produce results bit-identical to a freshly
// constructed machine's, for every design (each design exercises a different
// mix of directories, DRAM caches and predictors).
func TestResetMatchesFreshMachine(t *testing.T) {
	spec := workload.MustGet("streamcluster")
	tr := workload.MustGenerate(spec, workload.Options{Threads: 8, Scale: 512, AccessesPerThread: 2000})
	for _, design := range Designs() {
		cfg := DefaultConfig(4, design)
		cfg.Scale = 512
		cfg.CoresPerSocket = 2
		if design == C3D {
			cfg.EnableBroadcastFilter = true
		}

		fresh := New(cfg)
		want, err := fresh.Run(context.Background(), tr, DefaultRunOptions())
		if err != nil {
			t.Fatalf("%v: fresh run: %v", design, err)
		}

		// Dirty a machine with a full run, reset it, and rerun.
		reused := New(cfg)
		if _, err := reused.Run(context.Background(), tr, DefaultRunOptions()); err != nil {
			t.Fatalf("%v: dirtying run: %v", design, err)
		}
		reused.Reset()
		got, err := reused.Run(context.Background(), tr, DefaultRunOptions())
		if err != nil {
			t.Fatalf("%v: reset run: %v", design, err)
		}

		if !reflect.DeepEqual(want, got) {
			wj, _ := json.Marshal(want)
			gj, _ := json.Marshal(got)
			t.Errorf("%v: reset machine diverged from fresh machine:\n fresh: %s\n reset: %s", design, wj, gj)
		}
	}
}

// TestResetClearsState spot-checks that reset actually empties the stateful
// components rather than merely zeroing counters.
func TestResetClearsState(t *testing.T) {
	spec := workload.MustGet("canneal")
	tr := workload.MustGenerate(spec, workload.Options{Threads: 8, Scale: 512, AccessesPerThread: 1000})
	cfg := DefaultConfig(4, C3D)
	cfg.Scale = 512
	cfg.CoresPerSocket = 2
	m := New(cfg)
	if _, err := m.Run(context.Background(), tr, DefaultRunOptions()); err != nil {
		t.Fatal(err)
	}
	m.Reset()

	if n := m.PageTable().Pages(); n != 0 {
		t.Errorf("page table still holds %d pages after Reset", n)
	}
	if n := m.Classifier().Pages(); n != 0 {
		t.Errorf("classifier still holds %d pages after Reset", n)
	}
	if c := m.Counters(); c.Loads != 0 || c.Stores != 0 || c.MemReads != 0 {
		t.Errorf("counters not cleared by Reset: %+v", c)
	}
	if fs := m.Fabric().Stats(); fs.Messages != 0 {
		t.Errorf("fabric stats not cleared by Reset: %+v", fs)
	}
	for _, s := range m.Sockets() {
		if n := s.LLC().ValidLines(); n != 0 {
			t.Errorf("socket %d LLC still holds %d lines after Reset", s.ID(), n)
		}
		if s.DRAMCache() != nil && s.DRAMCache().TagStats().Accesses() != 0 {
			t.Errorf("socket %d DRAM cache stats not cleared", s.ID())
		}
		if st := s.Memory().Stats(); st.Reads != 0 || st.Writes != 0 {
			t.Errorf("socket %d memory stats not cleared: %+v", s.ID(), st)
		}
		for _, c := range s.Cores() {
			if c.Now() != 0 || c.PendingStores() != 0 {
				t.Errorf("core %d not rewound by Reset", c.ID())
			}
		}
	}
}
