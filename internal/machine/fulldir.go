package machine

import (
	"c3d/internal/addr"
	"c3d/internal/cache"
	"c3d/internal/coherence"
	"c3d/internal/core"
	"c3d/internal/sim"
)

// fullDirEngine is the naive directory design of §III-B: private, dirty
// (write-back) DRAM caches tracked by an inclusive global directory that
// covers every cached block in the system. The directory is modelled
// optimistically, exactly as the paper does: unbounded capacity (no recalls)
// and the baseline's 10-cycle access latency, even though a real
// implementation would need tens to hundreds of megabytes per socket
// (coherence.InclusiveDirCost quantifies that).
//
// Its remaining weakness is inherent: a block that is dirty in a remote
// socket's DRAM cache must be fetched from that DRAM cache, which is slower
// than the memory access the baseline would have performed.
type fullDirEngine struct {
	m *Machine
}

func init() {
	RegisterDesign(DesignSpec{
		Name:             FullDir,
		Description:      "private dirty DRAM caches tracked by an idealised inclusive full directory (§III-B)",
		Rank:             2,
		Evaluated:        true,
		HasDRAMCache:     true,
		PrivateDRAMCache: true,
		NewEngine:        func(m *Machine) Engine { return &fullDirEngine{m: m} },
		// The paper models the naive full directory without recalls
		// (unbounded) and with the baseline's 10-cycle latency, an
		// optimistic assumption it calls out explicitly.
		NewDirectories: UnboundedGenericDirectory,
	})
}

func (e *fullDirEngine) Name() string { return "full-dir" }

func (e *fullDirEngine) ReadMiss(now sim.Time, sock *Socket, coreID int, b addr.Block) sim.Time {
	m := e.m
	res := sock.dramCache.Access(now, b, false)
	if res.Hit {
		return res.Done
	}
	t := res.Done
	home := m.home(b)
	t = dirRequestArrival(m, t, sock, home)

	entry, ok := home.dir.Lookup(b)
	if ok && entry.State == coherence.DirModified && entry.Owner != sock.id {
		// Dirty in a remote socket. Probe its on-chip hierarchy first; if the
		// dirty data has been evicted into the remote DRAM cache, the access
		// pays the full remote-DRAM-cache latency — the slow-remote-hit
		// pathology (§III-B, Fig. 4).
		owner := m.sockets[entry.Owner]
		t = m.sendControl(t, home, owner)
		t = t.Add(m.cfg.LLCTagLatency)
		state, chipDirty, onChip := owner.probeOnChip(b)
		if onChip && (chipDirty || state == coherence.LineModified) {
			t = t.Add(m.cfg.LLCDataLatency)
			owner.downgradeOnChip(b)
			// The downgraded data is written back so memory is usable for
			// later readers.
			wb := m.sendData(t, owner, home)
			m.memWrite(wb, home, owner, b)
			if line, okDC, _ := owner.dramCache.Probe(t, b); okDC && line.Dirty {
				owner.dramCache.CleanBlock(b)
			}
		} else {
			// The dirty block lives only in the owner's DRAM cache.
			m.counters.remoteDRAMProbes++
			_, _, probeDone := owner.dramCache.Probe(t, b)
			t = probeDone
			owner.dramCache.CleanBlock(b)
			wb := m.sendData(t, owner, home)
			m.memWrite(wb, home, owner, b)
		}
		t = m.sendData(t, owner, sock)
		home.dir.Update(b, coherence.Entry{
			State:   coherence.DirShared,
			Sharers: entry.Sharers.Add(entry.Owner).Add(sock.id),
		})
		return t
	}
	// Clean (Shared) or untracked: memory supplies the data without touching
	// any remote DRAM cache.
	t = m.memRead(t, home, sock, b)
	t = m.sendData(t, home, sock)
	home.dir.Update(b, coherence.Entry{State: coherence.DirShared, Sharers: entry.Sharers.Add(sock.id)})
	return t
}

func (e *fullDirEngine) WriteMiss(now sim.Time, sock *Socket, coreID int, b addr.Block, upgrade bool) sim.Time {
	m := e.m
	res := sock.dramCache.Access(now, b, true)
	t := res.Done
	home := m.home(b)
	t = dirRequestArrival(m, t, sock, home)

	entry, _ := home.dir.Lookup(b)
	var dataDone, acksDone sim.Time

	if entry.State == coherence.DirModified && entry.Owner != sock.id {
		owner := m.sockets[entry.Owner]
		fwd := m.sendControl(t, home, owner)
		fwd = fwd.Add(m.cfg.LLCTagLatency)
		state, chipDirty, onChip := owner.probeOnChip(b)
		if onChip && (chipDirty || state == coherence.LineModified) {
			fwd = fwd.Add(m.cfg.LLCDataLatency)
		} else {
			m.counters.remoteDRAMProbes++
			_, _, probeDone := owner.dramCache.Probe(fwd, b)
			fwd = probeDone
		}
		owner.invalidateOnChip(b)
		owner.dramCache.Invalidate(b)
		dataDone = m.sendData(fwd, owner, sock)
		acksDone = dataDone
	} else {
		// Invalidate precisely the tracked sharers (their DRAM caches
		// included); data comes from memory in parallel unless the requester
		// already holds it.
		acksDone = t
		entry.Sharers.Others(sock.id).ForEach(func(sidx int) {
			sharer := m.sockets[sidx]
			inv := m.sendControl(t, home, sharer)
			sharer.invalidateOnChip(b)
			sharer.dramCache.Invalidate(b)
			inv = inv.Add(sim.NsToCycles(m.cfg.DRAMCacheLatencyNs))
			ack := m.sendControl(inv, sharer, sock)
			acksDone = sim.Max(acksDone, ack)
		})
		if upgrade || res.Hit {
			dataDone = m.sendControl(t, home, sock)
		} else {
			dataDone = m.sendData(m.memRead(t, home, sock, b), home, sock)
		}
	}
	done := sim.Max(dataDone, acksDone)
	home.dir.Update(b, coherence.Entry{
		State:   coherence.DirModified,
		Owner:   sock.id,
		Sharers: coherence.NewSharerSet(sock.id),
	})
	return done
}

func (e *fullDirEngine) LLCEvict(now sim.Time, sock *Socket, victim cache.Victim) {
	m := e.m
	// Same dirty-victim-cache behaviour as the snoopy design; the directory
	// keeps tracking the socket (it already does, since the directory is
	// inclusive of the DRAM cache).
	action := core.DirtyLLCEviction(victim.State, victim.Dirty)
	if !action.FillLocalDRAMCache {
		return
	}
	fill := sock.dramCache.Fill(now, victim.Block, victim.State, action.FillDirty)
	if fill.Victim.Valid {
		home := m.home(fill.Victim.Block)
		if core.DRAMCacheEvictionNeedsWriteback(false, fill.Victim.Dirty) {
			wb := m.sendData(now, sock, home)
			m.memWrite(wb, home, sock, fill.Victim.Block)
		}
		// Tell the (unbounded) directory this socket no longer caches the
		// victim, so later writes do not invalidate it needlessly.
		if entry, ok := home.dir.Probe(fill.Victim.Block); ok {
			if !sock.llc.Contains(fill.Victim.Block) {
				entry.Sharers = entry.Sharers.Remove(sock.id)
				if entry.State == coherence.DirModified && entry.Owner == sock.id {
					entry.State = coherence.DirShared
				}
				if entry.Sharers.Empty() {
					home.dir.Remove(fill.Victim.Block)
				} else {
					home.dir.Update(fill.Victim.Block, entry)
				}
				m.sendControl(now, sock, home)
			}
		}
	}
}
