package machine

import (
	"context"
	"fmt"
	"math"

	"c3d/internal/addr"
	"c3d/internal/cache"
	"c3d/internal/coherence"
	"c3d/internal/dramcache"
	"c3d/internal/interconnect"
	"c3d/internal/sample"
	"c3d/internal/sim"
	"c3d/internal/trace"
)

// SamplingResult describes how a sampled run arrived at its numbers: the
// schedule it used, how much of the stream was simulated in detail, and the
// confidence half-widths of every derived metric. It is attached to RunResult
// so error bars travel with the numbers into every JSON output.
type SamplingResult struct {
	// Spec is the canonical sampling spec the run used.
	Spec string
	// Windows is the number of measured windows the estimator saw.
	Windows int
	// SampledAccesses is the number of memory accesses inside measured
	// windows — the accesses the reported metrics are computed from.
	SampledAccesses uint64
	// DetailedAccesses is the number of accesses simulated in full detail
	// (warm-up phases plus measured windows).
	DetailedAccesses uint64
	// TotalAccesses is the full parallel-region access count the sampled
	// totals are extrapolated to.
	TotalAccesses uint64
	// Estimates holds the point estimate and 95% confidence half-width of
	// each derived metric.
	Estimates sample.Estimates
}

// ffPageMemoSize is the per-core page-memo table size (a power of two).
const ffPageMemoSize = 256

// ffCore is the per-core state of the functional-warming fast path: the
// socket and L1 resolved once per run instead of per record, plus two memos.
//
// The page memo records pages this core has already pushed through the
// classifier. Skipping repeats is exact because the classifier's transitions
// are absorbing for a pinned thread: after this core's first Access the page
// is either private-to-this-core or shared, and in both states every later
// Access by this core mutates nothing (private→shared transitions are
// triggered by the *other* core's first touch, which the memo never skips).
// The memo therefore survives stretches and detailed phases alike. The TLB
// is not warmed at all: its contents are miss-statistics-only (they never
// feed timing, and no sampled estimate reports them), so fast-forward
// traffic through it would be pure cost.
//
// The block memo is exact for the cache hierarchy: after any touch of block
// b, b is at the MRU position of this core's L1, so an immediately repeated
// read would only renumber (not reorder) the set's LRU sequence, and an
// immediately repeated write after a write finds the line Modified with the
// LLC copy already dirty. Cores fast-forward one at a time, so no other
// core's invalidations can interleave with the memo's lifetime; it resets at
// every stretch because detailed phases reorder what it summarises.
type ffCore struct {
	sock *Socket
	l1   *cache.Cache
	dc   *dramcache.Cache // nil for designs without a DRAM cache
	// pageMemo holds page+1 (so the zero value misses) in a direct-mapped
	// table; collisions just repeat a harmless classifier no-op.
	pageMemo [ffPageMemoSize]uint64
	// lastBlock is the most recently touched block; lastBlockMod records
	// whether this core is known to hold it Modified (set by the write path).
	lastBlock    addr.Block
	lastBlockMod bool
	hasLastB     bool
	// privMemo caches IsPrivateTo verdicts for this core's writes. "Not
	// private to me" is absorbing (a page never re-privatizes), so false
	// verdicts live forever; "private to me" is guarded by the classifier's
	// reclassification epoch, which advances on exactly the transitions that
	// could revoke it. Direct-mapped on the page number.
	privMemo [ffPrivMemoSize]privEntry
	// l1Filter is a one-sided presence filter over every L1 of this core's
	// socket: a clear bit proves no local L1 holds the block, a set bit means
	// "maybe". It is rebuilt from the actual L1 contents at the start of each
	// fast-forward segment and only ever gains bits afterwards (from this
	// core's own fills — the one way lines appear while it runs, since cores
	// fast-forward serially and sweeps only remove lines), so it stays
	// conservative and lets the eviction/write sweeps skip scanning eight
	// L1 sets for blocks provably absent.
	l1Filter [l1FilterWords]uint64
}

// l1FilterWords sizes the per-socket L1 presence filter (4096 bits — an
// order of magnitude above the lines eight quick-scale L1s can hold).
const l1FilterWords = 64

// ffPrivMemoSize is the direct-mapped privacy-memo size (a power of two).
const ffPrivMemoSize = 256

// privEntry is one privacy-memo slot; page holds page+1 so zero is empty.
type privEntry struct {
	page  uint64
	epoch uint64
	priv  bool
}

func l1Slot(b addr.Block) (int, uint64) {
	h := uint64(b) * 0x9e3779b97f4a7c15
	h >>= 64 - 12 // log2(l1FilterWords*64) bits
	return int(h >> 6), 1 << (h & 63)
}

// noteL1 records b as possibly held by a local L1.
func (ff *ffCore) noteL1(b addr.Block) {
	w, bit := l1Slot(b)
	ff.l1Filter[w] |= bit
}

// l1MayHold reports whether a local L1 could hold b; false is exact.
func (ff *ffCore) l1MayHold(b addr.Block) bool {
	w, bit := l1Slot(b)
	return ff.l1Filter[w]&bit != 0
}

// rebuildL1Filter resets the filter to the socket's current L1 contents.
func (ff *ffCore) rebuildL1Filter() {
	ff.l1Filter = [l1FilterWords]uint64{}
	for _, l1 := range ff.sock.l1s {
		l1.ForEach(func(l cache.Line) { ff.noteL1(l.Block) })
	}
}

// touch is the functional-warming path used during fast-forward stretches: it
// updates the cheap architectural state a detailed phase depends on — page
// classifier, L1/LLC tags and the DRAM cache's victim contents — without
// producing any coherence or fabric events and without advancing any counter
// that reaches the measured results. Blocks are installed clean/shared and victims are dropped
// silently; the coherence engines tolerate the resulting stale directory
// knowledge (an untracked block is the designed broadcast/memory path, and a
// tracked-but-evicted block downgrades to a no-op).
func (m *Machine) touch(ff *ffCore, coreID int, rec trace.Record) {
	b := addr.BlockOf(rec.Addr)
	// Same block as the previous record: a repeated read is a no-op (the
	// line is already MRU everywhere it lives) and a repeated write to an
	// already-Modified line likewise; see the ffCore memo-exactness note.
	if ff.hasLastB && b == ff.lastBlock {
		if rec.Kind != trace.Write {
			return
		}
		if ff.lastBlockMod {
			return
		}
		m.touchWrite(ff, coreID, b)
		ff.lastBlockMod = true
		return
	}
	page := addr.PageOf(rec.Addr)
	if slot := &ff.pageMemo[uint64(page)&(ffPageMemoSize-1)]; *slot != uint64(page)+1 {
		// Threads are pinned in this simulator, so the thread id equals the
		// core id and migrations never occur.
		m.classifier.Access(page, coreID, coreID)
		*slot = uint64(page) + 1
	}
	ff.lastBlock = b
	ff.hasLastB = true
	if rec.Kind == trace.Write {
		ff.lastBlockMod = true
		m.touchWrite(ff, coreID, b)
		return
	}
	ff.lastBlockMod = false
	// Touch installs on miss, so an L1 hit is the whole fast path; an L1 miss
	// leaves b installed there and only the LLC remains. L1 victims are
	// dropped silently (the L1s are write-through into the inclusive LLC).
	ff.noteL1(b)
	if _, hit := ff.l1.Touch(b, coherence.LineShared); hit {
		return
	}
	if victim, hit := ff.sock.llc.Touch(b, coherence.LineShared); !hit && victim.Valid {
		// Keep the hierarchy inclusive; the write-back (if the victim was
		// dirty) is only a statistic, and fast-forward produces none. The
		// victim is usually the set's coldest line and long gone from every
		// L1, so the filter skips most of these eight-way sweeps.
		if ff.l1MayHold(victim.Block) {
			for _, l1 := range ff.sock.l1s {
				l1.Invalidate(victim.Block)
			}
		}
		// Every design with a DRAM cache runs it as an LLC victim cache, so
		// fast-forwarded evictions must land there too — a cold DRAM cache
		// is the single largest warming bias (every measured-window miss
		// would pay the memory path a full run's warm giga-cache absorbs).
		if ff.dc != nil {
			ff.dc.Warm(victim.Block, victim.State, victim.Dirty)
		}
	}
}

// touchWrite is the store half of functional warming. Coherence state —
// which socket owns a line — is exactly what a broadcast design's timing
// hangs off, so fast-forwarded stores must not leave stale Shared copies
// behind: the writer's hierarchy takes the line Modified (LLC dirty, as the
// write-through L1s make the LLC dirty bit authoritative) and every other
// copy on the machine is dropped, the same end state the detailed engines
// converge to, produced without any coherence, fabric or statistic events.
func (m *Machine) touchWrite(ff *ffCore, coreID int, b addr.Block) {
	// Sampled before this write plants its own copy: does any local L1
	// possibly hold b? A clear bit makes the local sweep below a proven
	// no-op even when the page is shared.
	mayLocal := ff.l1MayHold(b)
	// One scan takes the line Modified in the L1 whether it was held Shared,
	// held Modified or absent. Ownership already exclusive (the common
	// write-hit fast path) means only the LLC dirty bit needs refreshing.
	if prior, hit := ff.l1.TouchState(b, coherence.LineModified); hit {
		if prior == coherence.LineModified {
			if l, ok := ff.sock.llc.Probe(b); ok {
				l.Dirty = true
			}
			return
		}
	} else {
		ff.noteL1(b)
	}
	// §IV-D's insight applies to warming too: a page still private to this
	// thread has never been touched by any other thread, so no cache on the
	// machine can hold a copy of b and the whole invalidation sweep is
	// provably a no-op. The verdict is memoised per core under the
	// classifier's reclassification epoch (see privEntry), which invalidates
	// a cached "private" the moment another thread's first touch ends it.
	page := addr.PageOfBlock(b)
	var priv bool
	if e := &ff.privMemo[uint64(page)&(ffPrivMemoSize-1)]; e.page == uint64(page)+1 &&
		(!e.priv || e.epoch == m.classifier.Epoch()) {
		priv = e.priv
	} else {
		priv = m.classifier.IsPrivateTo(page, coreID)
		*e = privEntry{page: uint64(page) + 1, epoch: m.classifier.Epoch(), priv: priv}
	}
	if !priv {
		for _, other := range m.sockets {
			if other == ff.sock {
				continue
			}
			// The hierarchy is inclusive, so an LLC miss proves no L1 holds
			// the line either: one probe gates the whole on-chip sweep.
			if _, onChip := other.llc.Probe(b); onChip {
				other.invalidateOnChip(b)
			}
			// Detailed write misses invalidate remote DRAM caches in every
			// DRAM-cache design (snoop invalidation, directory recall or
			// broadcast); leaving stale remote copies would hand the snoopy
			// design free remote hits a real run never sees. The DRAM cache
			// is a victim cache — it can hold lines the LLC no longer does —
			// so it is checked unconditionally (direct-mapped: a one-line
			// scan).
			if other.dramCache != nil {
				other.dramCache.WarmInvalidate(b)
			}
		}
		if mayLocal {
			ff.sock.invalidateL1sExcept(coreID, b)
		}
	}
	if ff.dc != nil {
		ff.dc.WarmWrite(b)
	}
	if victim, hit := ff.sock.llc.TouchDirty(b, coherence.LineModified); !hit && victim.Valid {
		if ff.l1MayHold(victim.Block) {
			for _, l1 := range ff.sock.l1s {
				l1.Invalidate(victim.Block)
			}
		}
		if ff.dc != nil {
			ff.dc.Warm(victim.Block, victim.State, victim.Dirty)
		}
	}
}

// sampleSnap is a point-in-time snapshot of every statistic a measured window
// reports, taken at window boundaries so windows are pure deltas.
type sampleSnap struct {
	counters Counters
	latCount uint64
	latTotal uint64
	fabric   interconnect.Stats
	dram     dramcache.Stats
	elided   uint64
	instr    uint64
	makespan sim.Time
}

func (m *Machine) sampleSnapshot(cores []*coreRunner) sampleSnap {
	s := sampleSnap{
		counters: m.Counters(),
		latCount: m.counters.loadLatency.Count(),
		latTotal: m.counters.loadLatency.Total(),
		fabric:   m.fabric.Stats(),
		elided:   m.filter.Elided(),
	}
	for _, sock := range m.sockets {
		if sock.dramCache != nil {
			addDRAMStats(&s.dram, sock.dramCache.Stats())
		}
	}
	for _, cr := range cores {
		s.instr += cr.core.Stats().Instructions
		if now := cr.core.Now(); now > s.makespan {
			s.makespan = now
		}
	}
	return s
}

func addDRAMStats(dst *dramcache.Stats, ds dramcache.Stats) {
	dst.Reads += ds.Reads
	dst.Writes += ds.Writes
	dst.ReadHits += ds.ReadHits
	dst.WriteHits += ds.WriteHits
	dst.Fills += ds.Fills
	dst.Evictions += ds.Evictions
	dst.DirtyEvicts += ds.DirtyEvicts
	dst.Invalidates += ds.Invalidates
}

func subDRAMStats(a, b dramcache.Stats) dramcache.Stats {
	return dramcache.Stats{
		Reads:       a.Reads - b.Reads,
		Writes:      a.Writes - b.Writes,
		ReadHits:    a.ReadHits - b.ReadHits,
		WriteHits:   a.WriteHits - b.WriteHits,
		Fills:       a.Fills - b.Fills,
		Evictions:   a.Evictions - b.Evictions,
		DirtyEvicts: a.DirtyEvicts - b.DirtyEvicts,
		Invalidates: a.Invalidates - b.Invalidates,
	}
}

func subCounters(a, b Counters) Counters {
	return Counters{
		Loads:             a.Loads - b.Loads,
		Stores:            a.Stores - b.Stores,
		LLCAccesses:       a.LLCAccesses - b.LLCAccesses,
		LLCMisses:         a.LLCMisses - b.LLCMisses,
		RemoteLLCMisses:   a.RemoteLLCMisses - b.RemoteLLCMisses,
		MemReads:          a.MemReads - b.MemReads,
		MemWrites:         a.MemWrites - b.MemWrites,
		RemoteMemReads:    a.RemoteMemReads - b.RemoteMemReads,
		RemoteMemWrites:   a.RemoteMemWrites - b.RemoteMemWrites,
		Broadcasts:        a.Broadcasts - b.Broadcasts,
		BroadcastsAvoided: a.BroadcastsAvoided - b.BroadcastsAvoided,
		DirRecalls:        a.DirRecalls - b.DirRecalls,
		RemoteDRAMProbes:  a.RemoteDRAMProbes - b.RemoteDRAMProbes,
	}
}

// measAccum accumulates the measured-window deltas that are later
// extrapolated to full-stream totals.
type measAccum struct {
	counters Counters
	latCount uint64
	latTotal uint64
	fabric   interconnect.Stats
	dram     dramcache.Stats
	elided   uint64
	instr    uint64
	cycles   uint64
}

func (a *measAccum) add(s0, s1 sampleSnap) {
	d := subCounters(s1.counters, s0.counters)
	a.counters = addCounters(a.counters, d)
	a.latCount += s1.latCount - s0.latCount
	a.latTotal += s1.latTotal - s0.latTotal
	a.fabric.Messages += s1.fabric.Messages - s0.fabric.Messages
	a.fabric.ControlMsgs += s1.fabric.ControlMsgs - s0.fabric.ControlMsgs
	a.fabric.DataMsgs += s1.fabric.DataMsgs - s0.fabric.DataMsgs
	a.fabric.TotalBytes += s1.fabric.TotalBytes - s0.fabric.TotalBytes
	a.fabric.ControlBytes += s1.fabric.ControlBytes - s0.fabric.ControlBytes
	a.fabric.DataBytes += s1.fabric.DataBytes - s0.fabric.DataBytes
	a.fabric.HopsTraversed += s1.fabric.HopsTraversed - s0.fabric.HopsTraversed
	a.dram = addDRAMPair(a.dram, subDRAMStats(s1.dram, s0.dram))
	a.elided += s1.elided - s0.elided
	a.instr += s1.instr - s0.instr
	a.cycles += uint64(s1.makespan - s0.makespan)
}

func addCounters(a, b Counters) Counters {
	return Counters{
		Loads:             a.Loads + b.Loads,
		Stores:            a.Stores + b.Stores,
		LLCAccesses:       a.LLCAccesses + b.LLCAccesses,
		LLCMisses:         a.LLCMisses + b.LLCMisses,
		RemoteLLCMisses:   a.RemoteLLCMisses + b.RemoteLLCMisses,
		MemReads:          a.MemReads + b.MemReads,
		MemWrites:         a.MemWrites + b.MemWrites,
		RemoteMemReads:    a.RemoteMemReads + b.RemoteMemReads,
		RemoteMemWrites:   a.RemoteMemWrites + b.RemoteMemWrites,
		Broadcasts:        a.Broadcasts + b.Broadcasts,
		BroadcastsAvoided: a.BroadcastsAvoided + b.BroadcastsAvoided,
		DirRecalls:        a.DirRecalls + b.DirRecalls,
		RemoteDRAMProbes:  a.RemoteDRAMProbes + b.RemoteDRAMProbes,
	}
}

func addDRAMPair(a, b dramcache.Stats) dramcache.Stats {
	addDRAMStats(&a, b)
	return a
}

// windowOf converts one boundary pair into the estimator's window form.
func windowOf(s0, s1 sampleSnap) sample.Window {
	c0, c1 := s0.counters, s1.counters
	return sample.Window{
		Accesses:          (c1.Loads + c1.Stores) - (c0.Loads + c0.Stores),
		Instructions:      s1.instr - s0.instr,
		Cycles:            uint64(s1.makespan - s0.makespan),
		LLCAccesses:       c1.LLCAccesses - c0.LLCAccesses,
		LLCMisses:         c1.LLCMisses - c0.LLCMisses,
		FabricBytes:       s1.fabric.TotalBytes - s0.fabric.TotalBytes,
		MemAccesses:       c1.MemAccesses() - c0.MemAccesses(),
		RemoteMemAccesses: c1.RemoteMemAccesses() - c0.RemoteMemAccesses(),
	}
}

// scaleU64 extrapolates a measured-window count to the full stream.
func scaleU64(v uint64, f float64) uint64 {
	return uint64(math.Round(float64(v) * f))
}

// runSampled executes the SMARTS-style sampled schedule over the cores:
// seeded initial fast-forward, then repeating units of detailed warm-up,
// measured window and fast-forward stretch until every stream is exhausted.
// The measured-window deltas feed the estimator; totals are extrapolated by
// the exact measured-to-total access ratio, so the whole result is a pure
// function of (config, trace, spec) and stays byte-identical across
// parallelism and repeated runs.
func (m *Machine) runSampled(ctx context.Context, src trace.Source, cores []*coreRunner, spec sample.Spec) (RunResult, error) {
	var ffInstr, ffAccesses uint64
	steps := 0

	ffCores := make([]ffCore, len(cores))
	for i, cr := range cores {
		sock := m.socketOf(cr.idx)
		ffCores[i] = ffCore{sock: sock, l1: sock.l1Of(cr.idx), dc: sock.dramCache}
	}

	ffOne := func(cr *coreRunner, ffc *ffCore, target int) error {
		// A detailed phase ran since the last stretch and may have reordered
		// the TLB LRU, so the first record always classifies in full.
		ffc.hasLastB = false
		ffc.lastBlockMod = false
		// Other cores (and detailed phases) changed the socket's L1s since
		// this core last ran, so the presence filter restarts from truth.
		ffc.rebuildL1Filter()
		// Drain the record exhausted() may have prefetched, then fast-forward
		// in slices when the reader supports it: one bounds-checked window
		// per stretch instead of an interface call per record.
		if cr.hasPending && cr.consumed < target {
			rec := cr.pending
			cr.hasPending = false
			cr.consumed++
			m.touch(ffc, cr.idx, rec)
			ffInstr += uint64(rec.Gap) + 1
			ffAccesses++
		}
		if br, ok := cr.rr.(trace.BulkReader); ok {
			for cr.consumed < target {
				recs := br.NextN(target - cr.consumed)
				if len(recs) == 0 {
					break
				}
				cr.consumed += len(recs)
				for i := range recs {
					m.touch(ffc, cr.idx, recs[i])
					ffInstr += uint64(recs[i].Gap) + 1
				}
				ffAccesses += uint64(len(recs))
				// One check per window bounds cancellation latency to a
				// stretch, the same order as the masked per-record check.
				if err := ctx.Err(); err != nil {
					return err
				}
			}
		}
		for cr.consumed < target {
			if !cr.fill() {
				if cr.rdErr != nil {
					return fmt.Errorf("machine: core %d stream: %w", cr.idx, cr.rdErr)
				}
				return nil
			}
			rec := cr.pending
			cr.hasPending = false
			cr.consumed++
			m.touch(ffc, cr.idx, rec)
			ffInstr += uint64(rec.Gap) + 1
			ffAccesses++
			if steps++; steps&cancelCheckMask == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
		}
		return nil
	}
	ff := func(n int) error {
		if n <= 0 {
			return nil
		}
		for i, cr := range cores {
			if err := ffOne(cr, &ffCores[i], cr.consumed+n); err != nil {
				return err
			}
		}
		return nil
	}
	detailed := func(n int) error {
		for _, cr := range cores {
			cr.limit = cr.consumed + n
		}
		return m.execute(ctx, cores)
	}
	exhausted := func() (bool, error) {
		for _, cr := range cores {
			if cr.fill() {
				return false, nil
			}
			if cr.rdErr != nil {
				return false, fmt.Errorf("machine: core %d stream: %w", cr.idx, cr.rdErr)
			}
		}
		return true, nil
	}

	if err := ff(spec.Phase()); err != nil {
		return RunResult{}, err
	}
	var windows []sample.Window
	var meas measAccum
	//c3dlint:allow ctxcheck(every iteration runs detailed() and ff(), both of which check ctx between accesses)
	for {
		done, err := exhausted()
		if err != nil {
			return RunResult{}, err
		}
		if done {
			break
		}
		if err := detailed(spec.Warm); err != nil {
			return RunResult{}, err
		}
		s0 := m.sampleSnapshot(cores)
		if err := detailed(spec.Window); err != nil {
			return RunResult{}, err
		}
		s1 := m.sampleSnapshot(cores)
		if w := windowOf(s0, s1); w.Accesses > 0 {
			windows = append(windows, w)
			meas.add(s0, s1)
		}
		if err := ff(spec.Stretch); err != nil {
			return RunResult{}, err
		}
	}

	est, err := sample.EstimateWindows(windows)
	if err != nil {
		return RunResult{}, fmt.Errorf("machine: trace %q with spec %q: %w", src.Name(), spec, err)
	}

	// Exact stream totals: fast-forward saw every skipped record, the cores
	// counted every detailed one.
	var detailedInstr uint64
	final := m.Counters()
	for _, cr := range cores {
		cr.core.Drain()
		detailedInstr += cr.core.Stats().Instructions
	}
	totalInstr := ffInstr + detailedInstr
	totalAccesses := ffAccesses + final.Loads + final.Stores
	if meas.counters.Loads+meas.counters.Stores == 0 {
		return RunResult{}, fmt.Errorf("machine: trace %q with spec %q: measured windows contain no accesses", src.Name(), spec)
	}
	f := float64(totalAccesses) / float64(meas.counters.Loads+meas.counters.Stores)

	c := meas.counters
	res := RunResult{
		Design:       m.cfg.Design,
		Workload:     src.Name(),
		Sockets:      m.cfg.Sockets,
		Cores:        m.cfg.Cores(),
		Policy:       m.cfg.MemPolicy,
		Topology:     m.fabric.Topology(),
		Cycles:       uint64(math.Round(est.CPI.Value * float64(totalInstr))),
		Instructions: totalInstr,
		Counters: Counters{
			Loads:             scaleU64(c.Loads, f),
			Stores:            scaleU64(c.Stores, f),
			LLCAccesses:       scaleU64(c.LLCAccesses, f),
			LLCMisses:         scaleU64(c.LLCMisses, f),
			RemoteLLCMisses:   scaleU64(c.RemoteLLCMisses, f),
			MemReads:          scaleU64(c.MemReads, f),
			MemWrites:         scaleU64(c.MemWrites, f),
			RemoteMemReads:    scaleU64(c.RemoteMemReads, f),
			RemoteMemWrites:   scaleU64(c.RemoteMemWrites, f),
			Broadcasts:        scaleU64(c.Broadcasts, f),
			BroadcastsAvoided: scaleU64(c.BroadcastsAvoided, f),
			DirRecalls:        scaleU64(c.DirRecalls, f),
			RemoteDRAMProbes:  scaleU64(c.RemoteDRAMProbes, f),
		},
		PageStats: m.pageTable.Stats(),
	}
	if meas.latCount > 0 {
		res.Counters.MeanLoadLatency = float64(meas.latTotal) / float64(meas.latCount)
	}
	res.InterSocketBytes = scaleU64(meas.fabric.TotalBytes, f)
	res.InterSocketControlBytes = scaleU64(meas.fabric.ControlBytes, f)
	res.InterSocketDataBytes = scaleU64(meas.fabric.DataBytes, f)
	res.InterSocketMessages = scaleU64(meas.fabric.Messages, f)
	if m.cfg.Design.HasDRAMCache() {
		res.DRAMCacheStats = dramcache.Stats{
			Reads:       scaleU64(meas.dram.Reads, f),
			Writes:      scaleU64(meas.dram.Writes, f),
			ReadHits:    scaleU64(meas.dram.ReadHits, f),
			WriteHits:   scaleU64(meas.dram.WriteHits, f),
			Fills:       scaleU64(meas.dram.Fills, f),
			Evictions:   scaleU64(meas.dram.Evictions, f),
			DirtyEvicts: scaleU64(meas.dram.DirtyEvicts, f),
			Invalidates: scaleU64(meas.dram.Invalidates, f),
		}
		if acc := meas.dram.Accesses(); acc > 0 {
			res.DRAMCacheHitRate = float64(meas.dram.ReadHits+meas.dram.WriteHits) / float64(acc)
		}
	}
	res.BroadcastFilterElided = scaleU64(meas.elided, f)
	for _, cr := range cores {
		res.PerCore = append(res.PerCore, cr.core.Stats())
	}
	res.Sampling = &SamplingResult{
		Spec:             spec.String(),
		Windows:          len(windows),
		SampledAccesses:  c.Loads + c.Stores,
		DetailedAccesses: final.Loads + final.Stores,
		TotalAccesses:    totalAccesses,
		Estimates:        est,
	}
	if err := m.CheckInvariants(); err != nil {
		return res, err
	}
	return res, nil
}
