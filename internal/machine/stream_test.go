package machine

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"testing"

	"c3d/internal/trace"
	"c3d/internal/workload"
)

// The tentpole contract of the streaming runner: for every registry workload,
// RunSource over the incremental generator produces results bit-identical to
// Run over the materialised trace, and replaying the same streams from a
// chunked trace file is bit-identical again. Simulated stream length dictates
// memory in none of the three paths' runner — only the materialised input
// itself does.
func TestRunSourceMatchesRun(t *testing.T) {
	opts := workload.Options{Threads: 8, Scale: 512, AccessesPerThread: 2000}
	for _, name := range []string{"streamcluster", "nutch", "mcf"} {
		for _, design := range []Design{Baseline, C3D} {
			spec := workload.MustGet(name)
			cfg := DefaultConfig(4, design)
			cfg.Scale = 512
			cfg.CoresPerSocket = 2

			tr := workload.MustGenerate(spec, opts)
			want, err := New(cfg).Run(context.Background(), tr, DefaultRunOptions())
			if err != nil {
				t.Fatalf("%s/%v: materialised run: %v", name, design, err)
			}

			src, err := workload.NewSource(spec, opts)
			if err != nil {
				t.Fatal(err)
			}
			got, err := New(cfg).RunSource(context.Background(), src, DefaultRunOptions())
			if err != nil {
				t.Fatalf("%s/%v: streaming run: %v", name, design, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s/%v: streaming result differs from materialised:\n got %+v\nwant %+v",
					name, design, got, want)
			}

			var buf bytes.Buffer
			if err := trace.EncodeSource(&buf, src); err != nil {
				t.Fatal(err)
			}
			fs, err := trace.OpenSource(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
			if err != nil {
				t.Fatal(err)
			}
			replayed, err := New(cfg).RunSource(context.Background(), fs, DefaultRunOptions())
			if err != nil {
				t.Fatalf("%s/%v: file replay run: %v", name, design, err)
			}
			if !reflect.DeepEqual(replayed, want) {
				t.Errorf("%s/%v: file-replay result differs from materialised", name, design)
			}
		}
	}
}

// RunSource must enforce the same preconditions Run does.
func TestRunSourceValidation(t *testing.T) {
	cfg := DefaultConfig(2, Baseline)
	cfg.Scale = 512
	cfg.CoresPerSocket = 2
	m := New(cfg)

	empty := (&trace.Trace{Name: "empty"}).Source()
	if _, err := m.RunSource(context.Background(), empty, DefaultRunOptions()); err == nil {
		t.Error("source without threads accepted")
	}

	spec := workload.MustGet("streamcluster")
	src, err := workload.NewSource(spec, workload.Options{Threads: 16, Scale: 512, AccessesPerThread: 100})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.RunSource(context.Background(), src, DefaultRunOptions()); err == nil {
		t.Error("more threads than cores accepted")
	}
	src4, err := workload.NewSource(spec, workload.Options{Threads: 4, Scale: 512, AccessesPerThread: 100})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.RunSource(context.Background(), src4, RunOptions{WarmupFraction: 1.5}); err == nil {
		t.Error("out-of-range warm-up fraction accepted")
	}
}

// TestRunSourceCancelled checks a cancelled context aborts the run with
// ctx's error instead of simulating the whole stream.
func TestRunSourceCancelled(t *testing.T) {
	spec := workload.MustGet("streamcluster")
	opts := workload.Options{Threads: 8, Scale: 512, AccessesPerThread: 50_000}
	cfg := DefaultConfig(4, C3D)
	cfg.Scale = 512
	cfg.CoresPerSocket = 2

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	src, err := workload.NewSource(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(cfg).RunSource(ctx, src, DefaultRunOptions()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
