package machine

import (
	"context"
	"reflect"
	"testing"

	"c3d/internal/numa"
	"c3d/internal/trace"
	"c3d/internal/workload"
)

// Integration tests: run small synthetic workloads through complete machines
// and check that the qualitative relationships the paper reports hold.

// cacheFriendlySpec is a workload whose working set exceeds the scaled LLC
// (256 KiB/socket) but fits comfortably in the scaled DRAM cache
// (16 MiB/socket): the situation where private DRAM caches shine.
func cacheFriendlySpec() workload.Spec {
	return workload.Spec{
		Name:                  "test-cachefriendly",
		Class:                 workload.Parallel,
		SharedBytes:           64 * mib, // 1 MiB at scale 64: 4x the LLC, far below the DRAM cache
		PrivateBytesPerThread: 4 * mib,
		MailboxBytesPerThread: 0,
		SharedFraction:        0.9,
		CommFraction:          0,
		ReadFraction:          0.85,
		LocalitySkew:          2.5,
		SpatialRun:            6,
		MeanGap:               4,
		AccessesPerThread:     20_000,
		InitFraction:          0.2,
		DefaultThreads:        8,
		PreferredPolicy:       numa.Interleave,
		Seed:                  4242,
	}
}

// communicationHeavySpec produces intense producer/consumer sharing through
// buffers larger than the LLC — the pattern that exposes the dirty-cache
// pathology in the snoopy and full-dir designs.
func communicationHeavySpec() workload.Spec {
	return workload.Spec{
		Name:                  "test-comm",
		Class:                 workload.Parallel,
		SharedBytes:           64 * mib,
		PrivateBytesPerThread: 2 * mib,
		MailboxBytesPerThread: 48 * mib, // 768 KiB at scale 64 > 256 KiB LLC
		SharedFraction:        0.5,
		CommFraction:          0.35,
		ReadFraction:          0.7,
		LocalitySkew:          2.5,
		SpatialRun:            6,
		MeanGap:               4,
		AccessesPerThread:     16_000,
		InitFraction:          0.2,
		DefaultThreads:        8,
		PreferredPolicy:       numa.Interleave,
		Seed:                  777,
	}
}

func testTrace(t *testing.T, spec workload.Spec, threads int) *trace.Trace {
	t.Helper()
	tr, err := workload.Generate(spec, workload.Options{Threads: threads, Scale: 64})
	if err != nil {
		t.Fatalf("generating workload: %v", err)
	}
	return tr
}

func runDesign(t *testing.T, design Design, tr *trace.Trace) RunResult {
	t.Helper()
	cfg := testConfig(design)
	m := New(cfg)
	res, err := m.Run(context.Background(), tr, DefaultRunOptions())
	if err != nil {
		t.Fatalf("running %v: %v", design, err)
	}
	return res
}

func TestC3DOutperformsBaselineOnCacheFriendlyWorkload(t *testing.T) {
	tr := testTrace(t, cacheFriendlySpec(), 8)
	base := runDesign(t, Baseline, tr)
	c3d := runDesign(t, C3D, tr)

	if c3d.Cycles >= base.Cycles {
		t.Errorf("C3D (%d cycles) should beat the baseline (%d cycles) when the working set fits the DRAM cache",
			c3d.Cycles, base.Cycles)
	}
	if c3d.Counters.RemoteMemReads >= base.Counters.RemoteMemReads {
		t.Errorf("C3D remote memory reads (%d) should be below the baseline's (%d)",
			c3d.Counters.RemoteMemReads, base.Counters.RemoteMemReads)
	}
	if c3d.InterSocketBytes >= base.InterSocketBytes {
		t.Errorf("C3D inter-socket traffic (%d B) should be below the baseline's (%d B)",
			c3d.InterSocketBytes, base.InterSocketBytes)
	}
	if c3d.DRAMCacheHitRate <= 0.3 {
		t.Errorf("DRAM cache hit rate %.2f is too low for a cache-friendly workload", c3d.DRAMCacheHitRate)
	}
	// Write traffic to memory is not reduced by the write-through policy
	// (Fig. 8: "no reduction (but also no increase) in write traffic"). A
	// small difference is expected because the baseline's sparse directory
	// recalls force some extra write-backs.
	if float64(c3d.Counters.MemWrites) < 0.85*float64(base.Counters.MemWrites) {
		t.Errorf("C3D memory writes (%d) should stay close to the baseline's (%d)",
			c3d.Counters.MemWrites, base.Counters.MemWrites)
	}
}

func TestSnoopySuffersOnCommunicationHeavyWorkload(t *testing.T) {
	tr := testTrace(t, communicationHeavySpec(), 8)
	base := runDesign(t, Baseline, tr)
	snoopy := runDesign(t, Snoopy, tr)
	c3d := runDesign(t, C3D, tr)

	// The snoopy design exposes remote DRAM cache probes on every miss; C3D
	// never probes a remote DRAM cache on reads.
	if snoopy.Counters.RemoteDRAMProbes == 0 {
		t.Error("snoopy should probe remote DRAM caches")
	}
	if c3d.Counters.RemoteDRAMProbes != 0 {
		t.Error("C3D must never probe remote DRAM caches")
	}
	// C3D must outperform snoopy on communication-heavy work (Fig. 6 shows
	// snoopy slowing down most workloads while C3D gains).
	if c3d.Cycles >= snoopy.Cycles {
		t.Errorf("C3D (%d cycles) should beat snoopy (%d cycles) on communication-heavy work",
			c3d.Cycles, snoopy.Cycles)
	}
	// And C3D should not lose to the baseline even here.
	if float64(c3d.Cycles) > 1.05*float64(base.Cycles) {
		t.Errorf("C3D (%d cycles) should not fall more than 5%% behind the baseline (%d cycles)",
			c3d.Cycles, base.Cycles)
	}
}

func TestFullDirPaysForDirtyRemoteHits(t *testing.T) {
	tr := testTrace(t, communicationHeavySpec(), 8)
	fullDir := runDesign(t, FullDir, tr)
	c3d := runDesign(t, C3D, tr)
	// The full directory forwards reads of dirty blocks to the owning
	// socket's DRAM cache (slow remote hits); C3D's clean caches avoid that
	// entirely, so it should not be slower.
	if fullDir.Counters.RemoteDRAMProbes == 0 {
		t.Error("full-dir should have fetched dirty blocks from remote DRAM caches")
	}
	if c3d.Cycles > fullDir.Cycles {
		t.Errorf("C3D (%d cycles) should not be slower than full-dir (%d cycles) on communication-heavy work",
			c3d.Cycles, fullDir.Cycles)
	}
}

func TestSharedDesignFiltersMemoryButNotInterconnect(t *testing.T) {
	tr := testTrace(t, cacheFriendlySpec(), 8)
	base := runDesign(t, Baseline, tr)
	shared := runDesign(t, SharedDRAM, tr)
	c3d := runDesign(t, C3D, tr)

	// The shared organisation reduces memory accesses...
	if shared.Counters.MemReads >= base.Counters.MemReads {
		t.Errorf("shared DRAM cache memory reads (%d) should be below the baseline's (%d)",
			shared.Counters.MemReads, base.Counters.MemReads)
	}
	// ...but cannot reduce off-socket traffic the way private caches do
	// (§II-C): C3D must generate meaningfully less interconnect traffic.
	if float64(c3d.InterSocketBytes) > 0.9*float64(shared.InterSocketBytes) {
		t.Errorf("C3D inter-socket traffic (%d B) should be well below the shared design's (%d B)",
			c3d.InterSocketBytes, shared.InterSocketBytes)
	}
}

func TestC3DFullDirEliminatesBroadcasts(t *testing.T) {
	tr := testTrace(t, communicationHeavySpec(), 8)
	c3d := runDesign(t, C3D, tr)
	ideal := runDesign(t, C3DFullDir, tr)
	if c3d.Counters.Broadcasts == 0 {
		t.Error("base C3D should broadcast for untracked writes on a sharing-heavy workload")
	}
	if ideal.Counters.Broadcasts != 0 {
		t.Errorf("c3d-full-dir should never broadcast, saw %d", ideal.Counters.Broadcasts)
	}
	// The idealised variant is at least as fast and generates no more
	// traffic.
	if ideal.InterSocketBytes > c3d.InterSocketBytes {
		t.Errorf("c3d-full-dir traffic (%d B) should not exceed base C3D's (%d B)",
			ideal.InterSocketBytes, c3d.InterSocketBytes)
	}
}

func TestRemoteMemoryFractionMatchesTableIShape(t *testing.T) {
	// With interleaved placement on four sockets and a shared-heavy
	// workload, roughly three quarters of memory accesses are remote
	// (Table I reports 61-77%).
	tr := testTrace(t, cacheFriendlySpec(), 8)
	base := runDesign(t, Baseline, tr)
	frac := base.Counters.RemoteMemFraction()
	if frac < 0.55 || frac > 0.9 {
		t.Errorf("remote memory fraction = %.2f, want roughly 0.75 (Table I)", frac)
	}
}

func TestRunIsDeterministic(t *testing.T) {
	tr := testTrace(t, cacheFriendlySpec(), 8)
	a := runDesign(t, C3D, tr)
	b := runDesign(t, C3D, tr)
	if a.Cycles != b.Cycles {
		t.Errorf("two identical runs produced different cycle counts: %d vs %d", a.Cycles, b.Cycles)
	}
	if !reflect.DeepEqual(a.Counters, b.Counters) {
		t.Errorf("two identical runs produced different counters:\n%+v\n%+v", a.Counters, b.Counters)
	}
}

func TestEveryDesignRunsEveryRegistryWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke test over the full registry is slow; run without -short")
	}
	spec := workload.MustGet("streamcluster")
	tr, err := workload.Generate(spec, workload.Options{Threads: 8, Scale: 64, AccessesPerThread: 1500})
	if err != nil {
		t.Fatal(err)
	}
	for _, design := range Designs() {
		res := runDesign(t, design, tr)
		if res.Cycles == 0 {
			t.Errorf("%v: zero cycles", design)
		}
		if res.Instructions == 0 {
			t.Errorf("%v: zero instructions", design)
		}
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	m := New(testConfig(C3D))
	empty := &trace.Trace{Name: "empty"}
	if _, err := m.Run(context.Background(), empty, DefaultRunOptions()); err == nil {
		t.Error("running an empty trace should fail")
	}
	tooWide := &trace.Trace{Name: "wide", Parallel: make([][]trace.Record, 1000)}
	if _, err := m.Run(context.Background(), tooWide, DefaultRunOptions()); err == nil {
		t.Error("running a trace with more threads than cores should fail")
	}
	tr := testTrace(t, cacheFriendlySpec(), 8)
	if _, err := m.Run(context.Background(), tr, RunOptions{WarmupFraction: 1.5}); err == nil {
		t.Error("an out-of-range warm-up fraction should fail")
	}
}

func TestSingleThreadedWorkloadRuns(t *testing.T) {
	spec := workload.MustGet("mcf")
	tr, err := workload.Generate(spec, workload.Options{Scale: 64, AccessesPerThread: 5000})
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(C3D)
	cfg.EnableBroadcastFilter = true
	m := New(cfg)
	res, err := m.Run(context.Background(), tr, DefaultRunOptions())
	if err != nil {
		t.Fatal(err)
	}
	// mcf's data is all thread-private: with the §IV-D filter enabled there
	// must be no broadcast invalidations at all.
	if res.Counters.Broadcasts != 0 {
		t.Errorf("single-threaded run produced %d broadcasts with the filter enabled", res.Counters.Broadcasts)
	}
	if res.BroadcastFilterElided == 0 {
		t.Error("the filter should report elided broadcasts for mcf")
	}
}
