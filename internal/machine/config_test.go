package machine

import (
	"testing"

	"c3d/internal/interconnect"
	"c3d/internal/numa"
	"c3d/internal/sim"
)

// TestTableIIDefaults pins the default configuration to Table II of the
// paper.
func TestTableIIDefaults(t *testing.T) {
	cfg := DefaultConfig(4, C3D)
	if cfg.Sockets != 4 || cfg.CoresPerSocket != 8 {
		t.Errorf("4-socket config = %d sockets x %d cores, want 4 x 8", cfg.Sockets, cfg.CoresPerSocket)
	}
	if cfg.Cores() != 32 {
		t.Errorf("Cores() = %d, want 32", cfg.Cores())
	}
	if cfg2 := DefaultConfig(2, C3D); cfg2.CoresPerSocket != 16 || cfg2.Cores() != 32 {
		t.Errorf("2-socket config = %d cores/socket, want 16 (32 total)", cfg2.CoresPerSocket)
	}
	if cfg.L1SizeBytes != 64*kib || cfg.L1Ways != 8 || cfg.L1Latency != 3 {
		t.Error("L1 parameters do not match Table II (64KB/8-way, 3-cycle)")
	}
	if cfg.LLCSizeBytes != 16*mib || cfg.LLCWays != 16 || cfg.LLCTagLatency != 7 || cfg.LLCDataLatency != 13 {
		t.Error("LLC parameters do not match Table II (16MB/16-way, 7-cycle tag, 13-cycle data)")
	}
	if cfg.DRAMCacheSizeBytes != 1*gib || cfg.DRAMCacheLatencyNs != 40 || cfg.DRAMCacheChannels != 8 {
		t.Error("DRAM cache parameters do not match Table II (1GB, 40ns, 8 channels)")
	}
	if cfg.PredictorEntries != 4096 {
		t.Error("miss predictor should have 4K entries (Table II)")
	}
	if cfg.MemLatencyNs != 50 || cfg.MemChannels != 2 || cfg.MemBandwidthGBs != 12.8 {
		t.Error("memory parameters do not match Table II (50ns, 2 channels, 12.8GB/s)")
	}
	if cfg.HopLatencyNs != 20 || cfg.LinkBandwidthGBs != 25.6 {
		t.Error("interconnect parameters do not match Table II (20ns/hop, 25.6GB/s)")
	}
	if cfg.GlobalDirLatency != 10 || cfg.DirProvisioning != 2 || cfg.DirWays != 32 {
		t.Error("global directory parameters do not match Table II (10-cycle, sparse 2x/32-way)")
	}
	if cfg.StoreQueueEntries != 32 {
		t.Error("store queue should have 32 entries (Table II)")
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestDesignStringsAndParsing(t *testing.T) {
	for _, d := range Designs() {
		name := d.String()
		parsed, err := ParseDesign(name)
		if err != nil || parsed != d {
			t.Errorf("ParseDesign(%q) = %v, %v; want %v", name, parsed, err, d)
		}
	}
	if _, err := ParseDesign("quantum"); err == nil {
		t.Error("unknown design name should fail to parse")
	}
	if len(EvaluatedDesigns()) != 5 {
		t.Errorf("EvaluatedDesigns() has %d entries, want 5 (Figs. 6-9)", len(EvaluatedDesigns()))
	}
}

func TestDesignProperties(t *testing.T) {
	if Baseline.HasDRAMCache() {
		t.Error("the baseline has no DRAM cache")
	}
	for _, d := range []Design{Snoopy, FullDir, C3D, C3DFullDir, SharedDRAM} {
		if !d.HasDRAMCache() {
			t.Errorf("%v should have a DRAM cache", d)
		}
	}
	for _, d := range []Design{Snoopy, FullDir, C3D, C3DFullDir} {
		if !d.HasPrivateDRAMCache() {
			t.Errorf("%v should have private DRAM caches", d)
		}
	}
	if SharedDRAM.HasPrivateDRAMCache() {
		t.Error("the shared organisation is not private")
	}
	if !C3D.CleanDRAMCache() || !C3DFullDir.CleanDRAMCache() {
		t.Error("the C3D designs keep their DRAM caches clean")
	}
	if Snoopy.CleanDRAMCache() || FullDir.CleanDRAMCache() {
		t.Error("the naive designs use dirty DRAM caches")
	}
}

func TestConfigValidation(t *testing.T) {
	good := DefaultConfig(4, C3D)
	cases := []func(*Config){
		func(c *Config) { c.Sockets = 0 },
		func(c *Config) { c.CoresPerSocket = 0 },
		func(c *Config) { c.Scale = 0 },
		func(c *Config) { c.LLCSizeBytes = 0 },
		func(c *Config) { c.DRAMCacheSizeBytes = 0 }, // C3D needs a DRAM cache
		func(c *Config) { c.DirProvisioning = -1 },
		func(c *Config) { c.Design = "warp-drive" },
		func(c *Config) { c.Topology = "moebius" },
		func(c *Config) { c.Topology = interconnect.PointToPoint },        // cannot host 4 sockets
		func(c *Config) { c.Sockets = 17 },                                // no default topology
		func(c *Config) { c.Sockets = 2; c.Topology = interconnect.Ring }, // ring needs >= 3
	}
	for i, mutate := range cases {
		cfg := good
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	// A baseline config without a DRAM cache size is fine.
	base := DefaultConfig(4, Baseline)
	base.DRAMCacheSizeBytes = 0
	if err := base.Validate(); err != nil {
		t.Errorf("baseline without DRAM cache rejected: %v", err)
	}
	// Every built-in topology validates on a shape it hosts.
	for _, c := range []struct {
		sockets int
		topo    interconnect.Topology
	}{
		{2, interconnect.PointToPoint},
		{8, interconnect.Ring},
		{8, interconnect.Mesh},
		{16, interconnect.FullyConnected},
	} {
		cfg := DefaultConfig(c.sockets, C3D)
		cfg.Topology = c.topo
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s@%d rejected: %v", c.topo, c.sockets, err)
		}
	}
}

func TestResolvedTopology(t *testing.T) {
	cases := []struct {
		sockets int
		topo    interconnect.Topology
		want    interconnect.Topology
	}{
		{2, "", interconnect.PointToPoint},
		{4, "", interconnect.Ring},
		{16, "", interconnect.Ring},
		{8, interconnect.Mesh, interconnect.Mesh},
	}
	for _, c := range cases {
		cfg := DefaultConfig(c.sockets, C3D)
		cfg.Topology = c.topo
		got, err := cfg.ResolvedTopology()
		if err != nil || got != c.want {
			t.Errorf("ResolvedTopology(%d sockets, %q) = %v, %v; want %v", c.sockets, c.topo, got, err, c.want)
		}
	}
	bad := DefaultConfig(4, C3D)
	bad.Topology = interconnect.PointToPoint
	if _, err := bad.ResolvedTopology(); err == nil {
		t.Error("p2p cannot host 4 sockets")
	}
}

// TestDefaultConfigGeneralizedShapes pins the cores-per-socket rule beyond
// the paper's two machines: socket counts dividing 32 keep the 32-core
// total, others fall back to 8 per socket.
func TestDefaultConfigGeneralizedShapes(t *testing.T) {
	cases := []struct{ sockets, coresPerSocket int }{
		{1, 32}, {2, 16}, {4, 8}, {8, 4}, {16, 2}, {3, 8}, {5, 8}, {6, 8},
	}
	for _, c := range cases {
		cfg := DefaultConfig(c.sockets, C3D)
		if cfg.CoresPerSocket != c.coresPerSocket {
			t.Errorf("DefaultConfig(%d).CoresPerSocket = %d, want %d", c.sockets, cfg.CoresPerSocket, c.coresPerSocket)
		}
		if cfg.Topology != "" {
			t.Errorf("DefaultConfig(%d) should leave the topology at the default, got %q", c.sockets, cfg.Topology)
		}
	}
	for _, n := range []int{8, 16} {
		if err := DefaultConfig(n, C3D).Validate(); err != nil {
			t.Errorf("DefaultConfig(%d) invalid: %v", n, err)
		}
	}
}

func TestScaledCapacities(t *testing.T) {
	cfg := DefaultConfig(4, C3D)
	if got := cfg.ScaledLLCSize(); got != 256*kib {
		t.Errorf("ScaledLLCSize = %d, want 256KiB at scale 64", got)
	}
	if got := cfg.ScaledDRAMCacheSize(); got != 16*mib {
		t.Errorf("ScaledDRAMCacheSize = %d, want 16MiB at scale 64", got)
	}
	cfg.Scale = 1
	if got := cfg.ScaledLLCSize(); got != 16*mib {
		t.Errorf("unscaled LLC = %d, want 16MiB", got)
	}
	// Extreme scales never collapse a cache below the floor or to a
	// non-power-of-two.
	cfg.Scale = 1 << 20
	got := cfg.ScaledLLCSize()
	if got < 16*kib || got&(got-1) != 0 {
		t.Errorf("extreme scaling produced capacity %d", got)
	}
}

func TestDirEntriesScaling(t *testing.T) {
	cfg := DefaultConfig(4, Baseline)
	entries := cfg.DirEntries()
	// 2x the scaled LLC blocks: 256KiB/64B * 2 = 8192.
	if entries != 8192 {
		t.Errorf("DirEntries = %d, want 8192", entries)
	}
	if entries%cfg.DirWays != 0 {
		t.Errorf("DirEntries %d not divisible by %d ways", entries, cfg.DirWays)
	}
	cfg.DirProvisioning = 0
	if cfg.DirEntries() != 0 {
		t.Error("zero provisioning should mean an unbounded directory")
	}
}

func TestNsConversionInConfig(t *testing.T) {
	cfg := DefaultConfig(4, C3D)
	// 40ns at 3GHz = 120 cycles; 50ns = 150 cycles; 20ns = 60 cycles.
	if sim.NsToCycles(cfg.DRAMCacheLatencyNs) != 120 {
		t.Error("DRAM cache latency should convert to 120 cycles")
	}
	if sim.NsToCycles(cfg.MemLatencyNs) != 150 {
		t.Error("memory latency should convert to 150 cycles")
	}
	if sim.NsToCycles(cfg.HopLatencyNs) != 60 {
		t.Error("hop latency should convert to 60 cycles")
	}
}

// TestMachineBuildsSelectedTopology checks the Topology knob reaches the
// fabric (and that the default resolution still lands on the paper's shapes).
func TestMachineBuildsSelectedTopology(t *testing.T) {
	cfg := DefaultConfig(8, C3D)
	cfg.Topology = interconnect.Mesh
	if got := New(cfg).Fabric().Topology(); got != interconnect.Mesh {
		t.Errorf("fabric topology = %v, want mesh", got)
	}
	if got := New(DefaultConfig(2, Baseline)).Fabric().Topology(); got != interconnect.PointToPoint {
		t.Errorf("2-socket default fabric = %v, want p2p", got)
	}
	if got := New(DefaultConfig(4, Baseline)).Fabric().Topology(); got != interconnect.Ring {
		t.Errorf("4-socket default fabric = %v, want ring", got)
	}
}

func TestDefaultPolicy(t *testing.T) {
	if DefaultConfig(4, C3D).MemPolicy != numa.FirstTouch2 {
		t.Error("default placement policy should be FT2")
	}
}
