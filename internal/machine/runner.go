package machine

import (
	"context"
	"fmt"

	"c3d/internal/addr"
	"c3d/internal/cpu"
	"c3d/internal/sample"
	"c3d/internal/sim"
	"c3d/internal/trace"
)

// RunOptions control trace execution.
type RunOptions struct {
	// WarmupFraction is the fraction of each thread's parallel-region
	// accesses executed before statistics are reset and timing restarts
	// (mirroring the paper's warm-up of DRAM caches before measurement).
	// It is sized per thread, so skewed ingested traces never see a short
	// thread consumed entirely by another thread's warm-up budget.
	WarmupFraction float64
	// Sampling, when enabled, replaces the full detailed run (and the
	// fractional warm-up) with the SMARTS-style sampled schedule: seeded
	// fast-forward stretches with functional warming only, interleaved with
	// detailed warm-up and measured windows. The result then carries a
	// Sampling section with per-metric confidence half-widths.
	Sampling sample.Spec
}

// DefaultRunOptions uses a 25% warm-up, enough to populate the scaled caches
// without dominating run time.
func DefaultRunOptions() RunOptions { return RunOptions{WarmupFraction: 0.25} }

// Run executes the trace's parallel region on the machine and returns the
// measured-region results. It is a thin adapter over RunSource: the
// materialised trace is wrapped in its streaming view, so both paths share
// one execution engine and produce bit-identical results.
func (m *Machine) Run(ctx context.Context, tr *trace.Trace, opts RunOptions) (RunResult, error) {
	return m.RunSource(ctx, tr.Source(), opts)
}

// RunSource executes a streaming trace's parallel region on the machine and
// returns the measured-region results. The init section is used only for page
// placement (FT1) — it is not executed for timing, matching the paper's
// methodology of fast-forwarding to the parallel region.
//
// The runner pulls records from per-thread readers one at a time, so resident
// memory is bounded by the source's per-reader window (one record for
// generators, one chunk for trace files) no matter how long the simulated
// access streams are — stream length dictates simulation time, not memory.
// The source is replayed twice: once by the page-placement pre-pass and once
// for execution.
//
// Cancelling the context aborts the run between simulated accesses (checked
// every few thousand records, so aborts are prompt even at paper-scale stream
// lengths) and returns ctx's error; the machine must be Reset before reuse.
func (m *Machine) RunSource(ctx context.Context, src trace.Source, opts RunOptions) (RunResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	threads := src.Threads()
	if threads == 0 {
		return RunResult{}, fmt.Errorf("machine: trace %q has no threads", src.Name())
	}
	if threads > m.cfg.Cores() {
		return RunResult{}, fmt.Errorf("machine: trace %q has %d threads but the machine has %d cores",
			src.Name(), threads, m.cfg.Cores())
	}
	if opts.WarmupFraction < 0 || opts.WarmupFraction >= 1 {
		return RunResult{}, fmt.Errorf("machine: warm-up fraction %f outside [0,1)", opts.WarmupFraction)
	}
	if err := opts.Sampling.Validate(); err != nil {
		return RunResult{}, fmt.Errorf("machine: %w", err)
	}

	if err := m.placePages(ctx, src); err != nil {
		return RunResult{}, err
	}

	// Gather the cores that execute threads (thread t runs on core t).
	cores := make([]*coreRunner, threads)
	for t := 0; t < threads; t++ {
		sock := m.socketOf(t)
		cores[t] = &coreRunner{
			core: sock.cores[t-sock.id*m.cfg.CoresPerSocket],
			rr:   src.OpenThread(t),
			idx:  t,
		}
	}

	if opts.Sampling.Enabled() {
		return m.runSampled(ctx, src, cores, opts.Sampling)
	}

	// Warm-up phase, sized per thread: each thread warms the configured
	// fraction of its own stream, so an ingested trace with skewed lengths
	// keeps a measured region on its short threads.
	warmed := false
	for _, cr := range cores {
		cr.limit = int(opts.WarmupFraction * float64(src.ThreadLen(cr.idx)))
		if cr.limit > 0 {
			warmed = true
		}
	}
	if warmed {
		if err := m.execute(ctx, cores); err != nil {
			return RunResult{}, err
		}
		for _, cr := range cores {
			cr.core.Drain()
			cr.core.ResetTiming()
		}
		m.resetStats()
	}

	// Measured phase.
	for _, cr := range cores {
		cr.limit = -1
	}
	if err := m.execute(ctx, cores); err != nil {
		return RunResult{}, err
	}
	var cycles sim.Time
	instructions := uint64(0)
	res := RunResult{}
	perCore := res.PerCore
	for _, cr := range cores {
		done := cr.core.Drain()
		if done > cycles {
			cycles = done
		}
		st := cr.core.Stats()
		instructions += st.Instructions
		perCore = append(perCore, st)
	}

	res = m.collectResult(src.Name(), uint64(cycles), instructions)
	res.PerCore = perCore
	if err := m.CheckInvariants(); err != nil {
		return res, err
	}
	return res, nil
}

// MustRun is Run for callers that treat failures as programming errors
// (benchmarks, examples).
func (m *Machine) MustRun(ctx context.Context, tr *trace.Trace, opts RunOptions) RunResult {
	res, err := m.Run(ctx, tr, opts)
	if err != nil {
		panic(err)
	}
	return res
}

// cancelCheckMask throttles context checks in the simulation hot loops: one
// atomic-load-sized check every 4096 simulated accesses keeps the overhead
// unmeasurable while bounding the cancellation latency to microseconds.
const cancelCheckMask = 1<<12 - 1

// coreRunner tracks one core's progress through its access stream. It
// prefetches a single record from its reader so the scheduling heap can ask
// "does this core have work" without consuming anything.
type coreRunner struct {
	core *cpu.Core
	rr   trace.RecordReader

	pending    trace.Record
	hasPending bool
	// consumed counts records executed across phases (the warm-up limit is a
	// total, so the measured phase continues where warm-up stopped).
	consumed int
	// limit is this phase's bound on consumed (-1 = until the stream ends).
	limit int
	rdErr error

	// idx is the runner's position in the cores slice; it is the
	// deterministic tie-break when several cores share the same local time.
	idx int
}

// fill ensures one record is buffered; it reports whether the runner has a
// record to execute. A false return with a non-nil rdErr is a reader failure.
func (cr *coreRunner) fill() bool {
	if cr.hasPending {
		return true
	}
	rec, ok := cr.rr.Next()
	if !ok {
		cr.rdErr = cr.rr.Err()
		return false
	}
	cr.pending, cr.hasPending = rec, true
	return true
}

// placePages performs the placement pre-pass: init-section touches first
// (relevant to FT1), then the parallel sections interleaved round-robin so
// that concurrent first touches spread across sockets the way they would in
// a live run.
func (m *Machine) placePages(ctx context.Context, src trace.Source) error {
	// Once a page is placed, every further Touch is a pure map read; a small
	// direct-mapped memo of pages confirmed placed short-circuits it (a
	// collision just repeats the harmless lookup). Init-section touches under
	// FirstTouch2 do not place and are never memoised.
	var placedMemo [4096]uint64
	placed := func(p addr.Page) bool {
		return placedMemo[uint64(p)&4095] == uint64(p)+1
	}
	rr := src.OpenInit()
	steps := 0
	for {
		rec, ok := rr.Next()
		if !ok {
			break
		}
		if p := addr.PageOf(rec.Addr); !placed(p) {
			if _, ok := m.pageTable.Touch(p, 0, false); ok {
				placedMemo[uint64(p)&4095] = uint64(p) + 1
			}
		}
		if steps++; steps&cancelCheckMask == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
	}
	if err := rr.Err(); err != nil {
		return fmt.Errorf("machine: placement pre-pass (init): %w", err)
	}
	readers := make([]trace.RecordReader, src.Threads())
	for t := range readers {
		readers[t] = src.OpenThread(t)
	}
	active := len(readers)
	for active > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		for t, r := range readers {
			if r == nil {
				continue
			}
			rec, ok := r.Next()
			if !ok {
				if err := r.Err(); err != nil {
					return fmt.Errorf("machine: placement pre-pass (thread %d): %w", t, err)
				}
				readers[t] = nil
				active--
				continue
			}
			if p := addr.PageOf(rec.Addr); !placed(p) {
				socket := t / m.cfg.CoresPerSocket
				if _, ok := m.pageTable.Touch(p, socket, true); ok {
					placedMemo[uint64(p)&4095] = uint64(p) + 1
				}
			}
		}
	}
	return nil
}

// execute advances the cores through their records, always stepping the core
// with the smallest local time so that bandwidth contention and inter-thread
// interactions happen in a plausible global order. Each runner's limit field
// bounds its total consumed records (set by the caller before the call; -1
// runs until the stream ends), which is how warm-up phases and sampled
// windows stop each core at its own boundary.
//
// The "earliest core" selection is an indexed min-heap keyed by
// (core local time, core index) rather than a linear scan, so one simulated
// access costs O(log cores) instead of O(cores) and runs scale past 32 cores.
// The index tie-break reproduces the scan's first-wins behaviour exactly, so
// results are bit-identical to the previous implementation. Executing a
// record only advances the picked core's clock (monotonically), so after each
// step only the heap root needs fixing.
func (m *Machine) execute(ctx context.Context, cores []*coreRunner) error {
	h := runnerHeap{runners: make([]*coreRunner, 0, len(cores))}
	for _, cr := range cores {
		if cr.limit >= 0 && cr.consumed >= cr.limit {
			continue
		}
		if cr.fill() {
			h.push(cr)
		} else if cr.rdErr != nil {
			return fmt.Errorf("machine: core %d stream: %w", cr.idx, cr.rdErr)
		}
	}
	steps := 0
	for len(h.runners) > 0 {
		if steps++; steps&cancelCheckMask == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		pick := h.runners[0]
		pick.core.Execute(pick.pending, m)
		pick.hasPending = false
		pick.consumed++
		if (pick.limit >= 0 && pick.consumed >= pick.limit) || !pick.fill() {
			if pick.rdErr != nil {
				return fmt.Errorf("machine: core %d stream: %w", pick.idx, pick.rdErr)
			}
			h.popRoot()
		} else {
			h.fixRoot()
		}
	}
	return nil
}

// runnerHeap is a binary min-heap of core runners ordered by
// (core.Now(), core index). Core count is small relative to event counts, so
// a simple binary layout is enough; the important property is the
// deterministic tie-break.
type runnerHeap struct {
	runners []*coreRunner
}

func runnerLess(a, b *coreRunner) bool {
	an, bn := a.core.Now(), b.core.Now()
	if an != bn {
		return an < bn
	}
	return a.idx < b.idx
}

func (h *runnerHeap) push(cr *coreRunner) {
	h.runners = append(h.runners, cr)
	i := len(h.runners) - 1
	//c3dlint:allow ctxcheck(heap sift-up: at most log(cores) iterations, pure comparisons)
	for i > 0 {
		parent := (i - 1) / 2
		if !runnerLess(h.runners[i], h.runners[parent]) {
			break
		}
		h.runners[i], h.runners[parent] = h.runners[parent], h.runners[i]
		i = parent
	}
}

// fixRoot restores the heap after the root's time advanced.
func (h *runnerHeap) fixRoot() {
	rs := h.runners
	n := len(rs)
	i := 0
	//c3dlint:allow ctxcheck(heap sift-down: at most log(cores) iterations, pure comparisons)
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && runnerLess(rs[l], rs[best]) {
			best = l
		}
		if r < n && runnerLess(rs[r], rs[best]) {
			best = r
		}
		if best == i {
			return
		}
		rs[i], rs[best] = rs[best], rs[i]
		i = best
	}
}

// popRoot removes the root (a core that finished its records).
func (h *runnerHeap) popRoot() {
	last := len(h.runners) - 1
	h.runners[0] = h.runners[last]
	h.runners[last] = nil
	h.runners = h.runners[:last]
	if last > 0 {
		h.fixRoot()
	}
}

// collectResult assembles a RunResult from the machine's current statistics.
func (m *Machine) collectResult(name string, cycles, instructions uint64) RunResult {
	res := RunResult{
		Design:       m.cfg.Design,
		Workload:     name,
		Sockets:      m.cfg.Sockets,
		Cores:        m.cfg.Cores(),
		Policy:       m.cfg.MemPolicy,
		Topology:     m.fabric.Topology(),
		Cycles:       cycles,
		Instructions: instructions,
		Counters:     m.Counters(),
		PageStats:    m.pageTable.Stats(),
	}
	fs := m.fabric.Stats()
	res.InterSocketBytes = fs.TotalBytes
	res.InterSocketControlBytes = fs.ControlBytes
	res.InterSocketDataBytes = fs.DataBytes
	res.InterSocketMessages = fs.Messages
	if m.cfg.Design.HasDRAMCache() {
		var agg struct {
			hits, accesses uint64
		}
		for _, s := range m.sockets {
			ds := s.dramCache.Stats()
			agg.hits += ds.ReadHits + ds.WriteHits
			agg.accesses += ds.Accesses()
			res.DRAMCacheStats.Reads += ds.Reads
			res.DRAMCacheStats.Writes += ds.Writes
			res.DRAMCacheStats.ReadHits += ds.ReadHits
			res.DRAMCacheStats.WriteHits += ds.WriteHits
			res.DRAMCacheStats.Fills += ds.Fills
			res.DRAMCacheStats.Evictions += ds.Evictions
			res.DRAMCacheStats.DirtyEvicts += ds.DirtyEvicts
			res.DRAMCacheStats.Invalidates += ds.Invalidates
		}
		if agg.accesses > 0 {
			res.DRAMCacheHitRate = float64(agg.hits) / float64(agg.accesses)
		}
	}
	res.BroadcastFilterElided = m.filter.Elided()
	return res
}
