package machine

import (
	"fmt"

	"c3d/internal/addr"
	"c3d/internal/cpu"
	"c3d/internal/sim"
	"c3d/internal/trace"
)

// RunOptions control trace execution.
type RunOptions struct {
	// WarmupFraction is the fraction of each thread's parallel-region
	// accesses executed before statistics are reset and timing restarts
	// (mirroring the paper's warm-up of DRAM caches before measurement).
	WarmupFraction float64
}

// DefaultRunOptions uses a 25% warm-up, enough to populate the scaled caches
// without dominating run time.
func DefaultRunOptions() RunOptions { return RunOptions{WarmupFraction: 0.25} }

// Run executes the trace's parallel region on the machine and returns the
// measured-region results. The trace's init section is used only for page
// placement (FT1) — it is not executed for timing, matching the paper's
// methodology of fast-forwarding to the parallel region.
func (m *Machine) Run(tr *trace.Trace, opts RunOptions) (RunResult, error) {
	if tr.Threads() == 0 {
		return RunResult{}, fmt.Errorf("machine: trace %q has no threads", tr.Name)
	}
	if tr.Threads() > m.cfg.Cores() {
		return RunResult{}, fmt.Errorf("machine: trace %q has %d threads but the machine has %d cores",
			tr.Name, tr.Threads(), m.cfg.Cores())
	}
	if opts.WarmupFraction < 0 || opts.WarmupFraction >= 1 {
		return RunResult{}, fmt.Errorf("machine: warm-up fraction %f outside [0,1)", opts.WarmupFraction)
	}

	m.placePages(tr)

	// Gather the cores that execute threads (thread t runs on core t).
	cores := make([]*coreRunner, tr.Threads())
	for t := 0; t < tr.Threads(); t++ {
		sock := m.socketOf(t)
		cores[t] = &coreRunner{
			core:    sock.cores[t-sock.id*m.cfg.CoresPerSocket],
			records: tr.Parallel[t],
			idx:     t,
		}
	}

	// Warm-up phase.
	warmup := int(opts.WarmupFraction * float64(maxRecords(cores)))
	if warmup > 0 {
		m.execute(cores, warmup)
		for _, cr := range cores {
			cr.core.Drain()
			cr.core.ResetTiming()
		}
		m.resetStats()
	}

	// Measured phase.
	m.execute(cores, -1)
	var cycles sim.Time
	instructions := uint64(0)
	res := RunResult{}
	perCore := res.PerCore
	for _, cr := range cores {
		done := cr.core.Drain()
		if done > cycles {
			cycles = done
		}
		st := cr.core.Stats()
		instructions += st.Instructions
		perCore = append(perCore, st)
	}

	res = m.collectResult(tr.Name, uint64(cycles), instructions)
	res.PerCore = perCore
	if err := m.CheckInvariants(); err != nil {
		return res, err
	}
	return res, nil
}

// MustRun is Run for callers that treat failures as programming errors
// (benchmarks, examples).
func (m *Machine) MustRun(tr *trace.Trace, opts RunOptions) RunResult {
	res, err := m.Run(tr, opts)
	if err != nil {
		panic(err)
	}
	return res
}

// coreRunner tracks one core's progress through its access stream.
type coreRunner struct {
	core    *cpu.Core
	records []trace.Record
	next    int
	// idx is the runner's position in the cores slice; it is the
	// deterministic tie-break when several cores share the same local time.
	idx int
	// bound is the record index this phase stops at (set by execute).
	bound int
}

func maxRecords(cores []*coreRunner) int {
	max := 0
	for _, cr := range cores {
		if len(cr.records) > max {
			max = len(cr.records)
		}
	}
	return max
}

// placePages performs the placement pre-pass: init-section touches first
// (relevant to FT1), then the parallel sections interleaved round-robin so
// that concurrent first touches spread across sockets the way they would in
// a live run.
func (m *Machine) placePages(tr *trace.Trace) {
	for _, rec := range tr.Init {
		m.pageTable.Touch(addr.PageOf(rec.Addr), 0, false)
	}
	pos := 0
	for {
		progressed := false
		for t := 0; t < tr.Threads(); t++ {
			recs := tr.Parallel[t]
			if pos >= len(recs) {
				continue
			}
			progressed = true
			socket := t / m.cfg.CoresPerSocket
			m.pageTable.Touch(addr.PageOf(recs[pos].Addr), socket, true)
		}
		if !progressed {
			return
		}
		pos++
	}
}

// execute advances the cores through their records, always stepping the core
// with the smallest local time so that bandwidth contention and inter-thread
// interactions happen in a plausible global order. A non-negative limit stops
// each core after that many records (used for the warm-up phase).
//
// The "earliest core" selection is an indexed min-heap keyed by
// (core local time, core index) rather than a linear scan, so one simulated
// access costs O(log cores) instead of O(cores) and runs scale past 32 cores.
// The index tie-break reproduces the scan's first-wins behaviour exactly, so
// results are bit-identical to the previous implementation. Executing a
// record only advances the picked core's clock (monotonically), so after each
// step only the heap root needs fixing.
func (m *Machine) execute(cores []*coreRunner, limit int) {
	h := runnerHeap{runners: make([]*coreRunner, 0, len(cores))}
	for _, cr := range cores {
		bound := len(cr.records)
		if limit >= 0 && limit < bound {
			bound = limit
		}
		if cr.next < bound {
			cr.bound = bound
			h.push(cr)
		}
	}
	for len(h.runners) > 0 {
		pick := h.runners[0]
		pick.core.Execute(pick.records[pick.next], m)
		pick.next++
		if pick.next >= pick.bound {
			h.popRoot()
		} else {
			h.fixRoot()
		}
	}
}

// runnerHeap is a binary min-heap of core runners ordered by
// (core.Now(), core index). Core count is small relative to event counts, so
// a simple binary layout is enough; the important property is the
// deterministic tie-break.
type runnerHeap struct {
	runners []*coreRunner
}

func runnerLess(a, b *coreRunner) bool {
	an, bn := a.core.Now(), b.core.Now()
	if an != bn {
		return an < bn
	}
	return a.idx < b.idx
}

func (h *runnerHeap) push(cr *coreRunner) {
	h.runners = append(h.runners, cr)
	i := len(h.runners) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !runnerLess(h.runners[i], h.runners[parent]) {
			break
		}
		h.runners[i], h.runners[parent] = h.runners[parent], h.runners[i]
		i = parent
	}
}

// fixRoot restores the heap after the root's time advanced.
func (h *runnerHeap) fixRoot() {
	rs := h.runners
	n := len(rs)
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && runnerLess(rs[l], rs[best]) {
			best = l
		}
		if r < n && runnerLess(rs[r], rs[best]) {
			best = r
		}
		if best == i {
			return
		}
		rs[i], rs[best] = rs[best], rs[i]
		i = best
	}
}

// popRoot removes the root (a core that finished its records).
func (h *runnerHeap) popRoot() {
	last := len(h.runners) - 1
	h.runners[0] = h.runners[last]
	h.runners[last] = nil
	h.runners = h.runners[:last]
	if last > 0 {
		h.fixRoot()
	}
}

// collectResult assembles a RunResult from the machine's current statistics.
func (m *Machine) collectResult(name string, cycles, instructions uint64) RunResult {
	res := RunResult{
		Design:       m.cfg.Design,
		Workload:     name,
		Sockets:      m.cfg.Sockets,
		Cores:        m.cfg.Cores(),
		Policy:       m.cfg.MemPolicy,
		Cycles:       cycles,
		Instructions: instructions,
		Counters:     m.Counters(),
		PageStats:    m.pageTable.Stats(),
	}
	fs := m.fabric.Stats()
	res.InterSocketBytes = fs.TotalBytes
	res.InterSocketControlBytes = fs.ControlBytes
	res.InterSocketDataBytes = fs.DataBytes
	res.InterSocketMessages = fs.Messages
	if m.cfg.Design.HasDRAMCache() {
		var agg struct {
			hits, accesses uint64
		}
		for _, s := range m.sockets {
			ds := s.dramCache.Stats()
			agg.hits += ds.ReadHits + ds.WriteHits
			agg.accesses += ds.Accesses()
			res.DRAMCacheStats.Reads += ds.Reads
			res.DRAMCacheStats.Writes += ds.Writes
			res.DRAMCacheStats.ReadHits += ds.ReadHits
			res.DRAMCacheStats.WriteHits += ds.WriteHits
			res.DRAMCacheStats.Fills += ds.Fills
			res.DRAMCacheStats.Evictions += ds.Evictions
			res.DRAMCacheStats.DirtyEvicts += ds.DirtyEvicts
			res.DRAMCacheStats.Invalidates += ds.Invalidates
		}
		if agg.accesses > 0 {
			res.DRAMCacheHitRate = float64(agg.hits) / float64(agg.accesses)
		}
	}
	res.BroadcastFilterElided = m.filter.Elided()
	return res
}
