package machine

import (
	"fmt"

	"c3d/internal/addr"
	"c3d/internal/cpu"
	"c3d/internal/sim"
	"c3d/internal/trace"
)

// RunOptions control trace execution.
type RunOptions struct {
	// WarmupFraction is the fraction of each thread's parallel-region
	// accesses executed before statistics are reset and timing restarts
	// (mirroring the paper's warm-up of DRAM caches before measurement).
	WarmupFraction float64
}

// DefaultRunOptions uses a 25% warm-up, enough to populate the scaled caches
// without dominating run time.
func DefaultRunOptions() RunOptions { return RunOptions{WarmupFraction: 0.25} }

// Run executes the trace's parallel region on the machine and returns the
// measured-region results. The trace's init section is used only for page
// placement (FT1) — it is not executed for timing, matching the paper's
// methodology of fast-forwarding to the parallel region.
func (m *Machine) Run(tr *trace.Trace, opts RunOptions) (RunResult, error) {
	if tr.Threads() == 0 {
		return RunResult{}, fmt.Errorf("machine: trace %q has no threads", tr.Name)
	}
	if tr.Threads() > m.cfg.Cores() {
		return RunResult{}, fmt.Errorf("machine: trace %q has %d threads but the machine has %d cores",
			tr.Name, tr.Threads(), m.cfg.Cores())
	}
	if opts.WarmupFraction < 0 || opts.WarmupFraction >= 1 {
		return RunResult{}, fmt.Errorf("machine: warm-up fraction %f outside [0,1)", opts.WarmupFraction)
	}

	m.placePages(tr)

	// Gather the cores that execute threads (thread t runs on core t).
	cores := make([]*coreRunner, tr.Threads())
	for t := 0; t < tr.Threads(); t++ {
		sock := m.socketOf(t)
		cores[t] = &coreRunner{
			core:    sock.cores[t-sock.id*m.cfg.CoresPerSocket],
			records: tr.Parallel[t],
		}
	}

	// Warm-up phase.
	warmup := int(opts.WarmupFraction * float64(maxRecords(cores)))
	if warmup > 0 {
		m.execute(cores, warmup)
		for _, cr := range cores {
			cr.core.Drain()
			cr.core.ResetTiming()
		}
		m.resetStats()
	}

	// Measured phase.
	m.execute(cores, -1)
	var cycles sim.Time
	instructions := uint64(0)
	res := RunResult{}
	perCore := res.PerCore
	for _, cr := range cores {
		done := cr.core.Drain()
		if done > cycles {
			cycles = done
		}
		st := cr.core.Stats()
		instructions += st.Instructions
		perCore = append(perCore, st)
	}

	res = m.collectResult(tr.Name, uint64(cycles), instructions)
	res.PerCore = perCore
	if err := m.CheckInvariants(); err != nil {
		return res, err
	}
	return res, nil
}

// MustRun is Run for callers that treat failures as programming errors
// (benchmarks, examples).
func (m *Machine) MustRun(tr *trace.Trace, opts RunOptions) RunResult {
	res, err := m.Run(tr, opts)
	if err != nil {
		panic(err)
	}
	return res
}

// coreRunner tracks one core's progress through its access stream.
type coreRunner struct {
	core    *cpu.Core
	records []trace.Record
	next    int
}

func maxRecords(cores []*coreRunner) int {
	max := 0
	for _, cr := range cores {
		if len(cr.records) > max {
			max = len(cr.records)
		}
	}
	return max
}

// placePages performs the placement pre-pass: init-section touches first
// (relevant to FT1), then the parallel sections interleaved round-robin so
// that concurrent first touches spread across sockets the way they would in
// a live run.
func (m *Machine) placePages(tr *trace.Trace) {
	for _, rec := range tr.Init {
		m.pageTable.Touch(addr.PageOf(rec.Addr), 0, false)
	}
	pos := 0
	for {
		progressed := false
		for t := 0; t < tr.Threads(); t++ {
			recs := tr.Parallel[t]
			if pos >= len(recs) {
				continue
			}
			progressed = true
			socket := t / m.cfg.CoresPerSocket
			m.pageTable.Touch(addr.PageOf(recs[pos].Addr), socket, true)
		}
		if !progressed {
			return
		}
		pos++
	}
}

// execute advances the cores through their records, always stepping the core
// with the smallest local time so that bandwidth contention and inter-thread
// interactions happen in a plausible global order. A non-negative limit stops
// each core after that many records (used for the warm-up phase).
func (m *Machine) execute(cores []*coreRunner, limit int) {
	for {
		var pick *coreRunner
		for _, cr := range cores {
			bound := len(cr.records)
			if limit >= 0 && limit < bound {
				bound = limit
			}
			if cr.next >= bound {
				continue
			}
			if pick == nil || cr.core.Now() < pick.core.Now() {
				pick = cr
			}
		}
		if pick == nil {
			return
		}
		pick.core.Execute(pick.records[pick.next], m)
		pick.next++
	}
}

// collectResult assembles a RunResult from the machine's current statistics.
func (m *Machine) collectResult(name string, cycles, instructions uint64) RunResult {
	res := RunResult{
		Design:       m.cfg.Design,
		Workload:     name,
		Sockets:      m.cfg.Sockets,
		Cores:        m.cfg.Cores(),
		Policy:       m.cfg.MemPolicy,
		Cycles:       cycles,
		Instructions: instructions,
		Counters:     m.Counters(),
		PageStats:    m.pageTable.Stats(),
	}
	fs := m.fabric.Stats()
	res.InterSocketBytes = fs.TotalBytes
	res.InterSocketControlBytes = fs.ControlBytes
	res.InterSocketDataBytes = fs.DataBytes
	res.InterSocketMessages = fs.Messages
	if m.cfg.Design.HasDRAMCache() {
		var agg struct {
			hits, accesses uint64
		}
		for _, s := range m.sockets {
			ds := s.dramCache.Stats()
			agg.hits += ds.ReadHits + ds.WriteHits
			agg.accesses += ds.Accesses()
			res.DRAMCacheStats.Reads += ds.Reads
			res.DRAMCacheStats.Writes += ds.Writes
			res.DRAMCacheStats.ReadHits += ds.ReadHits
			res.DRAMCacheStats.WriteHits += ds.WriteHits
			res.DRAMCacheStats.Fills += ds.Fills
			res.DRAMCacheStats.Evictions += ds.Evictions
			res.DRAMCacheStats.DirtyEvicts += ds.DirtyEvicts
			res.DRAMCacheStats.Invalidates += ds.Invalidates
		}
		if agg.accesses > 0 {
			res.DRAMCacheHitRate = float64(agg.hits) / float64(agg.accesses)
		}
	}
	res.BroadcastFilterElided = m.filter.Elided()
	return res
}
