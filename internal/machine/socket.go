package machine

import (
	"fmt"

	"c3d/internal/addr"
	"c3d/internal/cache"
	"c3d/internal/coherence"
	"c3d/internal/core"
	"c3d/internal/cpu"
	"c3d/internal/dram"
	"c3d/internal/dramcache"
	"c3d/internal/sim"
	"c3d/internal/tlb"
)

// Socket is one NUMA socket: its cores with private L1s, the shared LLC, the
// optional DRAM cache, the memory controller owning this socket's share of
// physical memory, and this socket's slice of the global directory.
type Socket struct {
	id  int
	cfg Config

	cores []*cpu.Core
	l1s   []*cache.Cache
	tlbs  []*tlb.TLB
	llc   *cache.Cache

	dramCache *dramcache.Cache // nil for the Baseline design
	mem       *dram.Controller

	// Directory slices. The C3D designs use the protocol-aware directory
	// from internal/core; the other designs use the generic structure.
	c3dDir *core.Directory      // C3D, C3DFullDir
	dir    *coherence.Directory // Baseline, Snoopy (as snoop filter), FullDir, SharedDRAM
}

// newSocket builds socket id from the machine configuration; the design spec
// contributes the directory slices.
func newSocket(id int, cfg Config, spec DesignSpec) *Socket {
	s := &Socket{id: id, cfg: cfg}
	for c := 0; c < cfg.CoresPerSocket; c++ {
		coreID := id*cfg.CoresPerSocket + c
		s.cores = append(s.cores, cpu.New(cpu.Config{
			ID:                coreID,
			Socket:            id,
			StoreQueueEntries: cfg.StoreQueueEntries,
		}))
		s.l1s = append(s.l1s, cache.New(cache.Config{
			Name:      fmt.Sprintf("l1.%d", coreID),
			SizeBytes: cfg.ScaledL1Size(),
			Ways:      cfg.L1Ways,
		}))
		s.tlbs = append(s.tlbs, tlb.NewTLB(64))
	}
	s.llc = cache.New(cache.Config{
		Name:      fmt.Sprintf("llc.%d", id),
		SizeBytes: cfg.ScaledLLCSize(),
		Ways:      cfg.LLCWays,
	})
	s.mem = dram.New(dram.Config{
		Name:                fmt.Sprintf("mem.%d", id),
		AccessLatency:       sim.NsToCycles(cfg.MemLatencyNs),
		Channels:            cfg.MemChannels,
		ChannelBandwidthGBs: cfg.MemBandwidthGBs,
	})
	if cfg.InfiniteMemBW {
		s.mem.SetInfiniteBandwidth()
	}
	if cfg.Design.HasDRAMCache() {
		dcCfg := dramcache.Config{
			Name:                fmt.Sprintf("dram$.%d", id),
			SizeBytes:           cfg.ScaledDRAMCacheSize(),
			Ways:                1,
			AccessLatency:       sim.NsToCycles(cfg.DRAMCacheLatencyNs),
			Channels:            cfg.DRAMCacheChannels,
			ChannelBandwidthGBs: cfg.DRAMCacheBandwidthGBs,
			PredictorEntries:    cfg.PredictorEntries,
			Policy:              cfg.dramCachePolicy(),
		}
		if cfg.InfiniteDRAMCacheB {
			dcCfg.ChannelBandwidthGBs = 0
		}
		s.dramCache = dramcache.New(dcCfg)
	}
	dirs := spec.NewDirectories(id, cfg)
	s.c3dDir, s.dir = dirs.C3D, dirs.Generic
	return s
}

// ID returns the socket's index.
func (s *Socket) ID() int { return s.id }

// Cores returns the socket's cores.
func (s *Socket) Cores() []*cpu.Core { return s.cores }

// LLC returns the socket's last-level cache.
func (s *Socket) LLC() *cache.Cache { return s.llc }

// DRAMCache returns the socket's DRAM cache (nil for the baseline design).
func (s *Socket) DRAMCache() *dramcache.Cache { return s.dramCache }

// Memory returns the socket's memory controller.
func (s *Socket) Memory() *dram.Controller { return s.mem }

// l1Of returns the L1 of the given global core id (which must belong to this
// socket).
func (s *Socket) l1Of(coreID int) *cache.Cache {
	local := coreID - s.id*s.cfg.CoresPerSocket
	if local < 0 || local >= len(s.l1s) {
		panic(fmt.Sprintf("machine: core %d does not belong to socket %d", coreID, s.id))
	}
	return s.l1s[local]
}

// tlbOf returns the TLB of the given global core id.
func (s *Socket) tlbOf(coreID int) *tlb.TLB {
	local := coreID - s.id*s.cfg.CoresPerSocket
	return s.tlbs[local]
}

// probeOnChip checks whether the block is present in the socket's on-chip
// hierarchy (LLC or any L1) without disturbing replacement state. It returns
// the "strongest" state found and whether any copy is dirty.
func (s *Socket) probeOnChip(b addr.Block) (state cache.State, dirty, present bool) {
	if line, ok := s.llc.Probe(b); ok {
		state, dirty, present = line.State, line.Dirty, true
	}
	for _, l1 := range s.l1s {
		if line, ok := l1.Probe(b); ok {
			present = true
			if line.State > state {
				state = line.State
			}
		}
	}
	return state, dirty, present
}

// invalidateOnChip removes the block from the LLC and every L1 of the socket.
// It returns the former LLC metadata (the L1s are write-through to the LLC,
// so the LLC's dirty bit is authoritative).
func (s *Socket) invalidateOnChip(b addr.Block) cache.Victim {
	for _, l1 := range s.l1s {
		l1.Invalidate(b)
	}
	return s.llc.Invalidate(b)
}

// invalidateL1sExcept removes the block from every L1 on the socket except
// the writer's, which is about to install the block in Modified state.
func (s *Socket) invalidateL1sExcept(coreID int, b addr.Block) {
	for i, l1 := range s.l1s {
		if s.id*s.cfg.CoresPerSocket+i == coreID {
			continue
		}
		l1.Invalidate(b)
	}
}

// downgradeOnChip transitions the block to Shared in the LLC and every L1
// holding it, clearing dirty bits (the caller is responsible for writing the
// data back to memory). It reports whether the block was present on-chip.
func (s *Socket) downgradeOnChip(b addr.Block) bool {
	present := false
	if s.llc.SetState(b, coherence.LineShared) {
		s.llc.CleanBlock(b)
		present = true
	}
	for _, l1 := range s.l1s {
		if l1.SetState(b, coherence.LineShared) {
			l1.CleanBlock(b)
			present = true
		}
	}
	return present
}

// reset returns every component of the socket to its just-constructed state:
// caches and directories emptied, TLBs flushed, cores rewound, channel
// occupancy cleared. Used by Machine.Reset to reuse a machine across runs.
func (s *Socket) reset() {
	for _, c := range s.cores {
		c.ResetTiming()
	}
	for _, l1 := range s.l1s {
		l1.Reset()
	}
	for _, t := range s.tlbs {
		t.Reset()
	}
	s.llc.Reset()
	s.mem.Reset()
	if s.dramCache != nil {
		s.dramCache.Reset()
	}
	if s.c3dDir != nil {
		s.c3dDir.Reset()
	}
	if s.dir != nil {
		s.dir.Reset()
	}
}

// resetStats clears every per-socket counter (cache, memory, directory)
// without evicting contents. Used at the warm-up boundary.
func (s *Socket) resetStats() {
	for _, l1 := range s.l1s {
		l1.ResetStats()
	}
	for _, t := range s.tlbs {
		t.ResetStats()
	}
	s.llc.ResetStats()
	s.mem.ResetStats()
	if s.dramCache != nil {
		s.dramCache.ResetStats()
	}
	if s.c3dDir != nil {
		s.c3dDir.ResetStats()
	}
	if s.dir != nil {
		s.dir.ResetStats()
	}
}
