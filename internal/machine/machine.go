package machine

import (
	"fmt"

	"c3d/internal/addr"
	"c3d/internal/cache"
	"c3d/internal/coherence"
	"c3d/internal/core"
	"c3d/internal/interconnect"
	"c3d/internal/numa"
	"c3d/internal/sim"
	"c3d/internal/stats"
	"c3d/internal/tlb"
	"c3d/internal/workload"
)

// accessCounters aggregates machine-level accounting that is not owned by a
// single component.
type accessCounters struct {
	loads  uint64
	stores uint64

	llcMisses      uint64
	llcAccesses    uint64
	remoteAccesses uint64 // LLC misses whose home is a remote socket

	memReads        uint64
	memWrites       uint64
	remoteMemReads  uint64
	remoteMemWrites uint64

	broadcasts        uint64
	broadcastsAvoided uint64
	dirRecalls        uint64
	remoteDRAMProbes  uint64 // probes of remote DRAM caches (snoopy/full-dir pathology)

	loadLatency stats.LatencyAccumulator
}

// Machine is the complete simulated NUMA system.
type Machine struct {
	cfg     Config
	sockets []*Socket
	fabric  *interconnect.Fabric

	pageTable  *numa.PageTable
	classifier *tlb.Classifier
	filter     *core.BroadcastFilter

	engine Engine

	counters accessCounters
}

// New builds a machine from cfg. It panics on an invalid configuration
// (construction happens at experiment-setup time where misconfiguration
// should fail loudly). The design and the fabric topology both resolve
// through their registries: there is no design or topology switch here to
// extend.
func New(cfg Config) *Machine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	spec := mustDesignSpec(cfg.Design)
	m := &Machine{cfg: cfg}
	for s := 0; s < cfg.Sockets; s++ {
		m.sockets = append(m.sockets, newSocket(s, cfg, spec))
	}
	icCfg, err := cfg.fabricConfig()
	if err != nil {
		// Unreachable: Validate resolved the same fabric config above.
		panic(err)
	}
	m.fabric = interconnect.New(icCfg)
	if cfg.ZeroHopLatency {
		m.fabric.SetZeroLatency()
	}
	if cfg.InfiniteLinkBW {
		m.fabric.SetInfiniteBandwidth()
	}
	m.pageTable = numa.NewPageTable(cfg.Sockets, cfg.MemPolicy)
	m.classifier = tlb.NewClassifier()
	m.filter = core.NewBroadcastFilter(m.classifier, cfg.EnableBroadcastFilter)

	// Sparse directory slices prefer to victimise entries whose block has
	// already left every on-chip cache (the LLCs are inclusive of the L1s,
	// so probing the LLCs is sufficient).
	uncached := func(b addr.Block) bool {
		for _, s := range m.sockets {
			if s.llc.Contains(b) {
				return false
			}
		}
		return true
	}
	for _, s := range m.sockets {
		if s.dir != nil {
			s.dir.SetStalePredicate(uncached)
		}
		if s.c3dDir != nil {
			s.c3dDir.SetStalePredicate(uncached)
		}
	}

	m.engine = spec.NewEngine(m)
	return m
}

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// Sockets returns the machine's sockets.
func (m *Machine) Sockets() []*Socket { return m.sockets }

// Fabric returns the inter-socket interconnect.
func (m *Machine) Fabric() *interconnect.Fabric { return m.fabric }

// PageTable returns the NUMA page table.
func (m *Machine) PageTable() *numa.PageTable { return m.pageTable }

// Classifier returns the OS page classifier used by the §IV-D filter.
func (m *Machine) Classifier() *tlb.Classifier { return m.classifier }

// EngineName returns the name of the active coherence engine.
func (m *Machine) EngineName() string { return m.engine.Name() }

// socketOf returns the socket owning the given global core id.
func (m *Machine) socketOf(coreID int) *Socket {
	return m.sockets[coreID/m.cfg.CoresPerSocket]
}

// home returns the home socket of a block according to the page table.
func (m *Machine) home(b addr.Block) *Socket {
	return m.sockets[m.pageTable.HomeOfBlock(b)]
}

// --- cpu.MemorySystem implementation ---

// Read performs a load issued by coreID at time now.
func (m *Machine) Read(now sim.Time, coreID int, a addr.Addr) sim.Time {
	sock := m.socketOf(coreID)
	b := addr.BlockOf(a)
	m.counters.loads++
	m.classify(coreID, a)

	// L1.
	l1 := sock.l1Of(coreID)
	t := now.Add(m.cfg.L1Latency)
	if _, hit := l1.Lookup(b); hit {
		m.counters.loadLatency.Observe(uint64(t.Sub(now)))
		return t
	}
	// LLC (the local directory lookup is part of the LLC tag access).
	m.counters.llcAccesses++
	if _, hit := sock.llc.Lookup(b); hit {
		t = t.Add(m.cfg.LLCTagLatency).Add(m.cfg.LLCDataLatency)
		m.fillL1(sock, coreID, b, coherence.LineShared)
		m.counters.loadLatency.Observe(uint64(t.Sub(now)))
		return t
	}
	t = t.Add(m.cfg.LLCTagLatency)
	m.counters.llcMisses++
	if m.home(b) != sock {
		m.counters.remoteAccesses++
	}
	done := m.engine.ReadMiss(t, sock, coreID, b)
	m.fillLLC(done, sock, coreID, b, coherence.LineShared, false)
	m.fillL1(sock, coreID, b, coherence.LineShared)
	m.counters.loadLatency.Observe(uint64(done.Sub(now)))
	return done
}

// Write performs a store issued by coreID at time now and returns the time
// the store is globally performed.
func (m *Machine) Write(now sim.Time, coreID int, a addr.Addr) sim.Time {
	sock := m.socketOf(coreID)
	b := addr.BlockOf(a)
	m.counters.stores++
	m.classify(coreID, a)

	l1 := sock.l1Of(coreID)
	t := now.Add(m.cfg.L1Latency)
	if line, hit := l1.Lookup(b); hit && line.State == coherence.LineModified {
		// Write hit with ownership already held by this core.
		m.markLLCDirty(sock, b)
		return t
	}
	// LLC lookup: a Modified LLC line means the socket already owns the
	// block; within-socket sharing is resolved by the local directory
	// (modelled as the LLC tag+data latency).
	m.counters.llcAccesses++
	line, hit := sock.llc.Lookup(b)
	if hit && line.State == coherence.LineModified {
		t = t.Add(m.cfg.LLCTagLatency).Add(m.cfg.LLCDataLatency)
		line.Dirty = true
		sock.invalidateL1sExcept(coreID, b)
		m.fillL1(sock, coreID, b, coherence.LineModified)
		return t
	}
	t = t.Add(m.cfg.LLCTagLatency)
	upgrade := hit && line.State == coherence.LineShared
	m.counters.llcMisses++
	if m.home(b) != sock {
		m.counters.remoteAccesses++
	}
	done := m.engine.WriteMiss(t, sock, coreID, b, upgrade)
	m.fillLLC(done, sock, coreID, b, coherence.LineModified, true)
	sock.invalidateL1sExcept(coreID, b)
	m.fillL1(sock, coreID, b, coherence.LineModified)
	return done
}

// classify records the access with the OS page classifier (used by the §IV-D
// broadcast filter) and the core's TLB (miss statistics only).
func (m *Machine) classify(coreID int, a addr.Addr) {
	page := addr.PageOf(a)
	sock := m.socketOf(coreID)
	sock.tlbOf(coreID).Access(page)
	// Threads are pinned in this simulator, so the thread id equals the core
	// id and migrations never occur.
	m.classifier.Access(page, coreID, coreID)
}

// fillL1 installs the block in the requesting core's L1. L1 victims are
// dropped silently: the L1s are write-through into the LLC, so no data is
// lost and the LLC inclusive copy keeps intra-socket coherence simple.
func (m *Machine) fillL1(sock *Socket, coreID int, b addr.Block, st cache.State) {
	sock.l1Of(coreID).Fill(b, st, false)
}

// markLLCDirty marks the block dirty in the LLC (stores are write-through
// from the L1 into the LLC so the LLC dirty bit is authoritative).
func (m *Machine) markLLCDirty(sock *Socket, b addr.Block) {
	if line, ok := sock.llc.Probe(b); ok {
		line.Dirty = true
		line.State = coherence.LineModified
	}
}

// fillLLC installs the block in the socket's LLC and routes the victim (if
// any) to the engine's eviction handler.
func (m *Machine) fillLLC(now sim.Time, sock *Socket, coreID int, b addr.Block, st cache.State, dirty bool) {
	victim := sock.llc.Fill(b, st, dirty)
	if victim.Valid {
		// The victim also disappears from the L1s (inclusive hierarchy).
		for _, l1 := range sock.l1s {
			l1.Invalidate(victim.Block)
		}
		m.engine.LLCEvict(now, sock, victim)
	}
}

// --- shared helpers used by the design engines ---

// sendControl models a 16-byte control packet between sockets and returns its
// arrival time.
func (m *Machine) sendControl(now sim.Time, from, to *Socket) sim.Time {
	return m.fabric.Send(now, from.id, to.id, interconnect.Control)
}

// sendData models an 80-byte data packet between sockets and returns its
// arrival time.
func (m *Machine) sendData(now sim.Time, from, to *Socket) sim.Time {
	return m.fabric.Send(now, from.id, to.id, interconnect.Data)
}

// memRead reads the block from its home memory and accounts whether the
// requester was remote.
func (m *Machine) memRead(now sim.Time, homeSock *Socket, requester *Socket, b addr.Block) sim.Time {
	m.counters.memReads++
	if homeSock != requester {
		m.counters.remoteMemReads++
	}
	return homeSock.mem.Read(now, b)
}

// memWrite writes the block to its home memory and accounts whether the
// writer was remote.
func (m *Machine) memWrite(now sim.Time, homeSock *Socket, requester *Socket, b addr.Block) sim.Time {
	m.counters.memWrites++
	if homeSock != requester {
		m.counters.remoteMemWrites++
	}
	return homeSock.mem.Write(now, b)
}

// dirLatency returns the global directory access latency.
func (m *Machine) dirLatency() sim.Cycles { return m.cfg.GlobalDirLatency }

// Counters exposes a snapshot of the machine-level counters (used by tests
// and the runner). Broadcast counts are aggregated from the C3D directory
// slices; they are zero for the other designs.
func (m *Machine) Counters() Counters {
	c := m.counters
	out := Counters{
		Loads:            c.loads,
		Stores:           c.stores,
		LLCAccesses:      c.llcAccesses,
		LLCMisses:        c.llcMisses,
		RemoteLLCMisses:  c.remoteAccesses,
		MemReads:         c.memReads,
		MemWrites:        c.memWrites,
		RemoteMemReads:   c.remoteMemReads,
		RemoteMemWrites:  c.remoteMemWrites,
		DirRecalls:       c.dirRecalls,
		RemoteDRAMProbes: c.remoteDRAMProbes,
		MeanLoadLatency:  c.loadLatency.Mean(),
	}
	for _, s := range m.sockets {
		if s.c3dDir != nil {
			ds := s.c3dDir.Stats()
			out.Broadcasts += ds.Broadcasts
			out.BroadcastsAvoided += ds.BroadcastsAvd
		}
	}
	return out
}

// Counters is the exported snapshot of machine-level accounting.
type Counters struct {
	Loads             uint64
	Stores            uint64
	LLCAccesses       uint64
	LLCMisses         uint64
	RemoteLLCMisses   uint64
	MemReads          uint64
	MemWrites         uint64
	RemoteMemReads    uint64
	RemoteMemWrites   uint64
	Broadcasts        uint64
	BroadcastsAvoided uint64
	DirRecalls        uint64
	RemoteDRAMProbes  uint64
	MeanLoadLatency   float64
}

// MemAccesses returns total memory accesses.
func (c Counters) MemAccesses() uint64 { return c.MemReads + c.MemWrites }

// RemoteMemAccesses returns memory accesses served by a remote socket's
// memory.
func (c Counters) RemoteMemAccesses() uint64 { return c.RemoteMemReads + c.RemoteMemWrites }

// RemoteMemFraction returns the Table I metric: the fraction of memory
// accesses satisfied by a remote socket's memory.
func (c Counters) RemoteMemFraction() float64 {
	total := c.MemAccesses()
	if total == 0 {
		return 0
	}
	return float64(c.RemoteMemAccesses()) / float64(total)
}

// LLCMissRate returns LLC misses per LLC access.
func (c Counters) LLCMissRate() float64 {
	if c.LLCAccesses == 0 {
		return 0
	}
	return float64(c.LLCMisses) / float64(c.LLCAccesses)
}

// Reset returns the machine to its just-constructed state — caches,
// directories, DRAM caches and TLBs emptied, the page table and classifier
// forgotten, every clock and counter rewound — without reallocating any of
// them. A reset machine run on a trace produces results bit-identical to a
// freshly built machine's, so sweeps and benchmarks reuse machines across
// repetitions instead of paying construction for every job.
func (m *Machine) Reset() {
	m.counters = accessCounters{}
	m.fabric.Reset()
	m.pageTable.Reset()
	m.classifier.Reset()
	m.filter.ResetStats()
	for _, s := range m.sockets {
		s.reset()
	}
}

// resetStats clears every statistic in the machine (cores excepted — the
// runner resets those) without touching cache or directory contents.
func (m *Machine) resetStats() {
	m.counters = accessCounters{}
	m.fabric.ResetStats()
	for _, s := range m.sockets {
		s.resetStats()
	}
	m.classifier.ResetStats()
	m.filter.ResetStats()
}

// CheckInvariants verifies cross-cutting invariants after a run; it returns
// an error describing the first violation. The headline check is the clean
// property: a C3D machine must never hold a dirty block in any DRAM cache.
func (m *Machine) CheckInvariants() error {
	for _, s := range m.sockets {
		if s.dramCache == nil {
			continue
		}
		if m.cfg.Design.CleanDRAMCache() && s.dramCache.HasDirtyBlocks() {
			return fmt.Errorf("machine: socket %d DRAM cache holds dirty blocks under the clean policy", s.id)
		}
	}
	return nil
}

// workloadOptions returns the workload generation options matching this
// machine's scale and core count, so experiments cannot accidentally mismatch
// the two.
func (m *Machine) workloadOptions() workload.Options {
	return workload.Options{Threads: m.cfg.Cores(), Scale: m.cfg.Scale}
}
