package machine

import (
	"c3d/internal/addr"
	"c3d/internal/cache"
	"c3d/internal/coherence"
	"c3d/internal/sim"
)

// baselineEngine is the reference machine of §V-A: no DRAM caches; the
// per-socket LLCs are kept coherent by a sparse global directory at each
// block's home socket.
type baselineEngine struct {
	m *Machine
}

func init() {
	RegisterDesign(DesignSpec{
		Name:           Baseline,
		Description:    "reference machine without DRAM caches (§V-A)",
		Rank:           0,
		Evaluated:      true,
		NewEngine:      func(m *Machine) Engine { return &baselineEngine{m: m} },
		NewDirectories: SparseGenericDirectory,
	})
}

func (e *baselineEngine) Name() string { return "baseline" }

// dirLookupAt models the request's trip to the home directory: the control
// message (if the home is remote) plus the directory access latency.
func dirRequestArrival(m *Machine, now sim.Time, sock, home *Socket) sim.Time {
	t := m.sendControl(now, sock, home)
	return t.Add(m.dirLatency())
}

// handleRecall invalidates the on-chip copies tracked by a recalled directory
// entry; the traffic is control-only unless a Modified copy has to be written
// back. Recalls are off the requesting core's critical path.
func handleRecall(m *Machine, now sim.Time, home *Socket, recall coherence.Recall) {
	if !recall.Valid {
		return
	}
	m.counters.dirRecalls++
	targets := recall.Entry.Sharers
	if recall.Entry.State == coherence.DirModified {
		targets = coherence.NewSharerSet(recall.Entry.Owner)
	}
	targets.ForEach(func(sidx int) {
		target := m.sockets[sidx]
		arr := m.sendControl(now, home, target)
		victim := target.invalidateOnChip(recall.Block)
		if victim.Valid && victim.Dirty {
			wb := m.sendData(arr, target, home)
			m.memWrite(wb, home, target, recall.Block)
		} else {
			m.sendControl(arr, target, home)
		}
		// Under the clean-cache designs the recalled copy may legitimately be
		// retained in the target's DRAM cache: clean DRAM-cache blocks are
		// untracked by design, and a later write will reach them via the
		// broadcast path. The recall only needs the on-chip copy gone.
		if victim.Valid && target.dramCache != nil && m.cfg.Design.CleanDRAMCache() {
			target.dramCache.Fill(arr, recall.Block, coherence.LineShared, false)
		}
	})
}

func (e *baselineEngine) ReadMiss(now sim.Time, sock *Socket, coreID int, b addr.Block) sim.Time {
	m := e.m
	home := m.home(b)
	t := dirRequestArrival(m, now, sock, home)

	entry, ok := home.dir.Lookup(b)
	if ok && entry.State == coherence.DirModified && entry.Owner != sock.id {
		// The block is dirty in another socket's on-chip hierarchy: forward
		// the request; the owner downgrades to Shared and writes the data
		// back to memory (off the critical path), then forwards it to the
		// requester.
		owner := m.sockets[entry.Owner]
		t = m.sendControl(t, home, owner)
		t = t.Add(m.cfg.LLCTagLatency).Add(m.cfg.LLCDataLatency)
		owner.downgradeOnChip(b)
		wb := m.sendData(t, owner, home)
		m.memWrite(wb, home, owner, b)
		t = m.sendData(t, owner, sock)
		recall := home.dir.Update(b, coherence.Entry{
			State:   coherence.DirShared,
			Sharers: entry.Sharers.Add(entry.Owner).Add(sock.id),
		})
		handleRecall(m, t, home, recall)
		return t
	}
	// Shared or untracked: memory at the home socket supplies the data.
	t = m.memRead(t, home, sock, b)
	t = m.sendData(t, home, sock)
	sharers := entry.Sharers.Add(sock.id)
	recall := home.dir.Update(b, coherence.Entry{State: coherence.DirShared, Sharers: sharers})
	handleRecall(m, t, home, recall)
	return t
}

func (e *baselineEngine) WriteMiss(now sim.Time, sock *Socket, coreID int, b addr.Block, upgrade bool) sim.Time {
	m := e.m
	home := m.home(b)
	t := dirRequestArrival(m, now, sock, home)

	entry, _ := home.dir.Lookup(b)
	var dataDone, acksDone sim.Time

	switch {
	case entry.State == coherence.DirModified && entry.Owner != sock.id:
		// Ownership transfer: the previous owner forwards the (possibly
		// dirty) block and invalidates its copies.
		owner := m.sockets[entry.Owner]
		fwd := m.sendControl(t, home, owner)
		fwd = fwd.Add(m.cfg.LLCTagLatency).Add(m.cfg.LLCDataLatency)
		owner.invalidateOnChip(b)
		dataDone = m.sendData(fwd, owner, sock)
		acksDone = dataDone
	case entry.State == coherence.DirShared:
		// Invalidate the tracked sharers; data comes from memory (which is
		// up to date for Shared blocks) in parallel.
		acksDone = t
		entry.Sharers.Others(sock.id).ForEach(func(sidx int) {
			sharer := m.sockets[sidx]
			inv := m.sendControl(t, home, sharer)
			sharer.invalidateOnChip(b)
			ack := m.sendControl(inv, sharer, sock)
			acksDone = sim.Max(acksDone, ack)
		})
		if upgrade {
			// The requester already holds the data; only the grant returns.
			dataDone = m.sendControl(t, home, sock)
		} else {
			dataDone = m.sendData(m.memRead(t, home, sock, b), home, sock)
		}
	default:
		// Untracked: memory supplies the data, nobody to invalidate.
		if upgrade {
			dataDone = m.sendControl(t, home, sock)
		} else {
			dataDone = m.sendData(m.memRead(t, home, sock, b), home, sock)
		}
		acksDone = dataDone
	}
	done := sim.Max(dataDone, acksDone)
	recall := home.dir.Update(b, coherence.Entry{
		State:   coherence.DirModified,
		Owner:   sock.id,
		Sharers: coherence.NewSharerSet(sock.id),
	})
	handleRecall(m, done, home, recall)
	return done
}

func (e *baselineEngine) LLCEvict(now sim.Time, sock *Socket, victim cache.Victim) {
	m := e.m
	home := m.home(victim.Block)
	if victim.Dirty {
		// Write the dirty block back to its home memory and notify the
		// directory (PutX). Off the requesting core's critical path.
		wb := m.sendData(now, sock, home)
		m.memWrite(wb, home, sock, victim.Block)
		home.dir.Remove(victim.Block)
		m.sendControl(wb, home, sock) // write-back acknowledgement
		return
	}
	// Clean victims are dropped silently; the directory's sharer vector
	// remains a (safe) superset.
}
