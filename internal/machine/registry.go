package machine

import (
	"fmt"
	"sort"
	"sync"

	"c3d/internal/addr"
	"c3d/internal/cache"
	"c3d/internal/coherence"
	"c3d/internal/core"
	"c3d/internal/sim"
)

// Engine is the per-design coherence behaviour. ReadMiss and WriteMiss handle
// requests that missed the requesting socket's on-chip hierarchy and return
// the time the data (for reads) or the ownership grant (for writes) reaches
// the requesting core. LLCEvict handles an LLC victim.
//
// Engines are built by the DesignSpec factory registered for the machine's
// design; they typically hold the *Machine and use its shared helpers
// (sendControl, memRead, ...).
type Engine interface {
	Name() string
	ReadMiss(now sim.Time, sock *Socket, coreID int, b addr.Block) sim.Time
	WriteMiss(now sim.Time, sock *Socket, coreID int, b addr.Block, upgrade bool) sim.Time
	LLCEvict(now sim.Time, sock *Socket, victim cache.Victim)
}

// SocketDirectories is what a design contributes to each socket: its slice of
// the global directory. The C3D designs use the protocol-aware directory from
// internal/core; the others use the generic structure (either may be nil).
type SocketDirectories struct {
	C3D     *core.Directory
	Generic *coherence.Directory
}

// DesignSpec describes one registered coherence design: its identity, the
// structural traits the rest of the machine keys off, and the two factories
// that used to live in `switch cfg.Design` blocks — the engine and the
// per-socket directory slices.
//
// To add a design, register a spec from an init function:
//
//	func init() {
//		machine.RegisterDesign(machine.DesignSpec{
//			Name:             "my-design",
//			Description:      "DRAM caches with my coherence twist",
//			HasDRAMCache:     true,
//			PrivateDRAMCache: true,
//			NewEngine:        func(m *machine.Machine) machine.Engine { return &myEngine{m: m} },
//			NewDirectories:   machine.SparseGenericDirectory,
//		})
//	}
//
// Nothing else changes: ParseDesign accepts the new name, Designs() lists it,
// machine construction routes to the factories, and the SDK / CLIs / daemon
// all reach it through the same registry.
type DesignSpec struct {
	// Name is the registry key ("baseline", "c3d", ...).
	Name Design
	// Description is a one-line summary for listings.
	Description string
	// Rank orders Designs(): lower first, ties broken by name. The built-ins
	// use 0-5 (the paper's evaluation order).
	Rank int
	// Evaluated marks the designs compared in Figs. 6-9.
	Evaluated bool
	// HasDRAMCache gives each socket a DRAM cache.
	HasDRAMCache bool
	// PrivateDRAMCache marks the DRAM caches private per socket (needing
	// coherence) rather than memory-side.
	PrivateDRAMCache bool
	// CleanDRAMCache keeps the DRAM caches clean (write-through) — C3D's
	// defining property; it selects the dramcache write policy.
	CleanDRAMCache bool
	// NewEngine builds the design's coherence engine for a machine.
	NewEngine func(m *Machine) Engine
	// NewDirectories builds socket id's directory slices from the machine
	// configuration.
	NewDirectories func(socketID int, cfg Config) SocketDirectories
}

var (
	designMu  sync.RWMutex
	designReg = make(map[Design]DesignSpec)
)

// RegisterDesign adds a design to the registry. It panics on a duplicate name
// or a malformed spec — registration happens in init functions, where
// misconfiguration should fail loudly.
func RegisterDesign(spec DesignSpec) {
	if spec.Name == "" {
		panic("machine: RegisterDesign with empty name")
	}
	if spec.NewEngine == nil {
		panic(fmt.Sprintf("machine: design %q has no NewEngine factory", spec.Name))
	}
	if spec.NewDirectories == nil {
		panic(fmt.Sprintf("machine: design %q has no NewDirectories factory", spec.Name))
	}
	designMu.Lock()
	defer designMu.Unlock()
	if _, dup := designReg[spec.Name]; dup {
		panic(fmt.Sprintf("machine: design %q registered twice", spec.Name))
	}
	designReg[spec.Name] = spec
}

// designSpec returns the spec registered under d.
func designSpec(d Design) (DesignSpec, error) {
	designMu.RLock()
	spec, ok := designReg[d]
	designMu.RUnlock()
	if !ok {
		return DesignSpec{}, fmt.Errorf("machine: unknown design %q (known: %v)", string(d), Designs())
	}
	return spec, nil
}

// mustDesignSpec is designSpec for callers that run after Config.Validate.
func mustDesignSpec(d Design) DesignSpec {
	spec, err := designSpec(d)
	if err != nil {
		panic(err.Error())
	}
	return spec
}

// designSpecs returns every registered spec in deterministic order:
// ascending Rank, ties broken by name.
func designSpecs() []DesignSpec {
	designMu.RLock()
	specs := make([]DesignSpec, 0, len(designReg))
	//c3dlint:allow determinism(collection only; specs are sorted by rank then name immediately below)
	for _, spec := range designReg {
		specs = append(specs, spec)
	}
	designMu.RUnlock()
	sort.Slice(specs, func(i, j int) bool {
		if specs[i].Rank != specs[j].Rank {
			return specs[i].Rank < specs[j].Rank
		}
		return specs[i].Name < specs[j].Name
	})
	return specs
}

// SparseGenericDirectory builds the baseline's sparse, bounded generic
// directory slice — the default directory organisation for designs without
// protocol-aware tracking needs.
func SparseGenericDirectory(socketID int, cfg Config) SocketDirectories {
	return SocketDirectories{Generic: coherence.NewDirectory(coherence.DirConfig{
		Name:    fmt.Sprintf("gdir.%d", socketID),
		Entries: cfg.DirEntries(),
		Ways:    cfg.DirWays,
	})}
}

// UnboundedGenericDirectory builds an idealised inclusive directory slice
// with unbounded capacity (no recalls) — the paper's deliberately optimistic
// model of the naive full-directory design.
func UnboundedGenericDirectory(socketID int, cfg Config) SocketDirectories {
	return SocketDirectories{Generic: coherence.NewDirectory(coherence.DirConfig{
		Name: fmt.Sprintf("gdir.%d", socketID),
	})}
}
