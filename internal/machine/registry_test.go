package machine

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"c3d/internal/workload"
)

// testEchoDesign is a third-party design registered by this test file's init:
// a baseline clone that proves the registry carries unknown-to-the-core
// designs through parsing, listing, construction and simulation. Because the
// registry is package-global, the design also flows through every
// Designs()-iterating test in this package (engines_test, reset_test) — by
// design: a registered design must survive everything a built-in does.
const testEchoDesign Design = "test-echo"

func init() {
	RegisterDesign(DesignSpec{
		Name:           testEchoDesign,
		Description:    "baseline clone registered by machine tests",
		Rank:           99,
		NewEngine:      func(m *Machine) Engine { return &baselineEngine{m: m} },
		NewDirectories: SparseGenericDirectory,
	})
}

func TestDesignsOrderAndRegistration(t *testing.T) {
	want := []Design{Baseline, Snoopy, FullDir, C3D, C3DFullDir, SharedDRAM, testEchoDesign}
	got := Designs()
	if len(got) != len(want) {
		t.Fatalf("Designs() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Designs() = %v, want %v", got, want)
		}
	}
	parsed, err := ParseDesign("test-echo")
	if err != nil || parsed != testEchoDesign {
		t.Errorf("ParseDesign(test-echo) = %v, %v", parsed, err)
	}
}

func TestRegisterDesignRejectsDuplicatesAndMalformedSpecs(t *testing.T) {
	mustPanic := func(name string, spec DesignSpec) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		RegisterDesign(spec)
	}
	mustPanic("duplicate", DesignSpec{
		Name:           Baseline,
		NewEngine:      func(m *Machine) Engine { return &baselineEngine{m: m} },
		NewDirectories: SparseGenericDirectory,
	})
	mustPanic("no engine", DesignSpec{Name: "no-engine", NewDirectories: SparseGenericDirectory})
	mustPanic("no directories", DesignSpec{
		Name:      "no-dirs",
		NewEngine: func(m *Machine) Engine { return &baselineEngine{m: m} },
	})
	mustPanic("empty name", DesignSpec{})
}

func TestUnknownDesignIsRejectedEverywhere(t *testing.T) {
	if _, err := ParseDesign("warp-drive"); err == nil || !strings.Contains(err.Error(), "unknown design") {
		t.Errorf("ParseDesign(warp-drive) = %v", err)
	}
	cfg := DefaultConfig(4, "warp-drive")
	if err := cfg.Validate(); err == nil || !strings.Contains(err.Error(), "unknown design") {
		t.Errorf("Validate with unknown design = %v", err)
	}
	// The zero value is not a design either.
	if err := DefaultConfig(4, "").Validate(); err == nil {
		t.Error("empty design should not validate")
	}
	if Design("warp-drive").HasDRAMCache() || Design("").CleanDRAMCache() {
		t.Error("unregistered designs must report no traits")
	}
}

// TestRegisteredDesignSimulatesLikeItsEngine runs the test-registered
// baseline clone and the real baseline on the same trace: every statistic
// except the design name must be identical, proving construction and
// dispatch go purely through the registry.
func TestRegisteredDesignSimulatesLikeItsEngine(t *testing.T) {
	tr, err := workload.Generate(workload.MustGet("streamcluster"),
		workload.Options{Threads: 8, Scale: 512, AccessesPerThread: 2000})
	if err != nil {
		t.Fatal(err)
	}
	run := func(d Design) RunResult {
		cfg := DefaultConfig(4, d)
		cfg.Scale = 512
		res, err := New(cfg).Run(context.Background(), tr, DefaultRunOptions())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	echo, base := run(testEchoDesign), run(Baseline)
	echo.Design = Baseline // the only allowed difference
	if !reflect.DeepEqual(echo, base) {
		t.Errorf("registered clone diverged from baseline:\nclone:    %+v\nbaseline: %+v", echo, base)
	}
}
