package machine

import (
	"testing"

	"c3d/internal/addr"
	"c3d/internal/numa"
	"c3d/internal/sim"
)

// testConfig returns a small 4-socket machine (2 cores per socket) with
// deterministic interleaved page placement, suitable for directed unit tests.
func testConfig(design Design) Config {
	cfg := DefaultConfig(4, design)
	cfg.CoresPerSocket = 2
	cfg.MemPolicy = numa.Interleave
	return cfg
}

// addrHomedAt returns an address whose page is homed at the given socket
// under the interleaved policy (page p -> socket p mod 4).
func addrHomedAt(socket int, offset uint64) addr.Addr {
	return addr.Addr(uint64(socket)*addr.PageBytes + offset)
}

func TestReadHitLatencies(t *testing.T) {
	m := New(testConfig(Baseline))
	a := addrHomedAt(0, 0)
	first := m.Read(0, 0, a)
	// Second access hits the L1 and costs exactly the L1 latency.
	second := m.Read(first, 0, a).Sub(first)
	if second != sim.Cycles(m.Config().L1Latency) {
		t.Errorf("L1 hit latency = %v, want %v", second, m.Config().L1Latency)
	}
	if first < sim.Time(sim.NsToCycles(50)) {
		t.Errorf("cold miss latency = %v, want at least the memory latency", first)
	}
	// A read by another core on the same socket hits the shared LLC.
	third := m.Read(first, 1, a).Sub(first)
	wantLLC := sim.Cycles(m.Config().L1Latency + m.Config().LLCTagLatency + m.Config().LLCDataLatency)
	if third != wantLLC {
		t.Errorf("LLC hit latency = %v, want %v", third, wantLLC)
	}
}

func TestLocalVersusRemoteMemoryLatency(t *testing.T) {
	m := New(testConfig(Baseline))
	local := m.Read(0, 0, addrHomedAt(0, 0))      // home socket 0, requester socket 0
	remote := m.Read(0, 0, addrHomedAt(2, 0)) - 0 // home socket 2, requester socket 0
	hop := sim.Time(sim.NsToCycles(m.Config().HopLatencyNs))
	if remote < local+2*hop {
		t.Errorf("remote access (%v) should cost at least two extra hops over local (%v)", remote, local)
	}
	c := m.Counters()
	if c.MemReads != 2 || c.RemoteMemReads != 1 {
		t.Errorf("counters = %+v; want 2 memory reads of which 1 remote", c)
	}
}

func TestZeroHopLatencyIdealisation(t *testing.T) {
	cfg := testConfig(Baseline)
	cfg.ZeroHopLatency = true
	m := New(cfg)
	mBase := New(testConfig(Baseline))
	remoteIdeal := m.Read(0, 0, addrHomedAt(2, 0))
	remoteReal := mBase.Read(0, 0, addrHomedAt(2, 0))
	if remoteIdeal >= remoteReal {
		t.Errorf("0-QPI-latency access (%v) should be faster than the real one (%v)", remoteIdeal, remoteReal)
	}
}

func TestWriteOwnershipWithinSocket(t *testing.T) {
	m := New(testConfig(Baseline))
	a := addrHomedAt(0, 64)
	done := m.Write(0, 0, a)
	if done == 0 {
		t.Fatal("write completion time should be positive")
	}
	// A second write by the same core is an L1 hit in Modified state.
	d2 := m.Write(done, 0, a).Sub(done)
	if d2 != sim.Cycles(m.Config().L1Latency) {
		t.Errorf("write hit latency = %v, want %v", d2, m.Config().L1Latency)
	}
	// A write by the other core on the same socket resolves within the
	// socket (LLC already Modified): no new directory traffic.
	before := m.Counters().MemReads
	m.Write(done, 1, a)
	if m.Counters().MemReads != before {
		t.Error("intra-socket write should not access memory")
	}
}

func TestCrossSocketOwnershipTransfer(t *testing.T) {
	m := New(testConfig(Baseline))
	a := addrHomedAt(0, 128)
	b := addr.BlockOf(a)
	m.Write(0, 0, a) // core 0 (socket 0) takes ownership
	if !m.Sockets()[0].LLC().Contains(b) {
		t.Fatal("socket 0 LLC should hold the block after the write")
	}
	m.Write(1000, 2, a) // core 2 lives on socket 1
	if m.Sockets()[0].LLC().Contains(b) {
		t.Error("socket 0 should have been invalidated when socket 1 took ownership")
	}
	if !m.Sockets()[1].LLC().Contains(b) {
		t.Error("socket 1 LLC should hold the block after its write")
	}
}

func TestReadAfterRemoteModify(t *testing.T) {
	// A read of a block Modified in another socket's on-chip hierarchy is
	// served by forwarding, not by (stale) memory, in every design.
	for _, design := range []Design{Baseline, FullDir, C3D} {
		m := New(testConfig(design))
		a := addrHomedAt(1, 0)
		m.Write(0, 0, a) // socket 0 modifies a block homed on socket 1
		memReadsBefore := m.Counters().MemReads
		m.Read(10_000, 6, a) // core 6 lives on socket 3
		// The forward must not have read memory for the data (C3D/baseline
		// write the block back to memory as part of the downgrade, which is
		// a memory *write*).
		if design != FullDir && m.Counters().MemReads != memReadsBefore {
			t.Errorf("%v: read of a remotely-Modified block went to memory", design)
		}
		if m.Counters().MemWrites == 0 && design != FullDir {
			t.Errorf("%v: downgrade should have written the dirty data back", design)
		}
	}
}

func TestC3DLocalDRAMCacheHitAfterLLCEviction(t *testing.T) {
	cfg := testConfig(C3D)
	m := New(cfg)
	target := addrHomedAt(2, 0) // remote home so a miss would be expensive
	m.Read(0, 0, target)

	// Evict the target from socket 0's LLC by touching enough blocks that
	// map to the same set (LLC: 256KiB, 16 ways, 256 sets -> stride 256
	// blocks).
	sets := m.Sockets()[0].LLC().Sets()
	ways := m.Sockets()[0].LLC().Ways()
	t0 := sim.Time(1_000_000)
	for i := 1; i <= ways+1; i++ {
		conflicting := target + addr.Addr(i*sets*addr.BlockBytes)
		t0 = m.Read(t0, 0, conflicting)
	}
	if m.Sockets()[0].LLC().Contains(addr.BlockOf(target)) {
		t.Skip("conflict stream did not evict the target; LLC geometry changed")
	}
	if !m.Sockets()[0].DRAMCache().Contains(addr.BlockOf(target)) {
		t.Fatal("LLC victim should have been captured by the local DRAM cache")
	}
	// Re-reading the target now hits the local DRAM cache: no new memory
	// read, and the latency is far below a remote memory access.
	memReadsBefore := m.Counters().MemReads
	lat := m.Read(t0, 0, target).Sub(t0)
	if m.Counters().MemReads != memReadsBefore {
		t.Error("DRAM cache hit still accessed memory")
	}
	remoteMemLatency := sim.Cycles(sim.NsToCycles(50) + 4*sim.NsToCycles(20))
	if lat >= remoteMemLatency {
		t.Errorf("local DRAM cache hit latency %v not faster than a remote memory access (%v)", lat, remoteMemLatency)
	}
}

func TestC3DWriteBroadcastsForUntrackedBlocks(t *testing.T) {
	m := New(testConfig(C3D))
	a := addrHomedAt(1, 0)
	// A read by socket 3 caches the block there without a directory entry
	// (GetS in Invalid does not allocate).
	m.Read(0, 6, a)
	// A write by socket 0 finds the block untracked and must broadcast.
	m.Write(100_000, 0, a)
	c := m.Counters()
	if c.Broadcasts == 0 {
		t.Fatal("write to an untracked block should broadcast invalidations")
	}
	// The broadcast must have removed socket 3's copies.
	if m.Sockets()[3].LLC().Contains(addr.BlockOf(a)) {
		t.Error("socket 3 LLC copy survived the broadcast")
	}
	if m.Sockets()[3].DRAMCache().Contains(addr.BlockOf(a)) {
		t.Error("socket 3 DRAM cache copy survived the broadcast")
	}
}

func TestC3DBroadcastFilterOnPrivateData(t *testing.T) {
	cfg := testConfig(C3D)
	cfg.EnableBroadcastFilter = true
	m := New(cfg)
	// A single core writing its own data: every page it touches is
	// classified private, so no write needs a broadcast.
	now := sim.Time(0)
	for i := 0; i < 64; i++ {
		now = m.Write(now, 0, addr.Addr(i*addr.BlockBytes))
	}
	c := m.Counters()
	if c.Broadcasts != 0 {
		t.Errorf("Broadcasts = %d, want 0 for thread-private data with the filter on", c.Broadcasts)
	}
	if c.BroadcastsAvoided == 0 {
		t.Error("the filter should have recorded avoided broadcasts")
	}
}

func TestC3DCleanInvariantAfterWrites(t *testing.T) {
	m := New(testConfig(C3D))
	now := sim.Time(0)
	// Enough writes to force LLC evictions into the DRAM cache.
	for i := 0; i < 10_000; i++ {
		now = m.Write(now, 0, addr.Addr(i*addr.BlockBytes))
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("clean-cache invariant violated: %v", err)
	}
	// The write-through policy must have produced memory writes.
	if m.Counters().MemWrites == 0 {
		t.Error("C3D dirty LLC evictions should write through to memory")
	}
}

func TestSnoopyProbesRemoteDRAMCaches(t *testing.T) {
	m := New(testConfig(Snoopy))
	m.Read(0, 0, addrHomedAt(1, 0))
	c := m.Counters()
	if c.RemoteDRAMProbes == 0 {
		t.Error("a snoopy miss must probe every remote DRAM cache")
	}
	// C3D never probes remote DRAM caches on reads.
	mc := New(testConfig(C3D))
	mc.Read(0, 0, addrHomedAt(1, 0))
	if mc.Counters().RemoteDRAMProbes != 0 {
		t.Error("C3D read misses must bypass remote DRAM caches")
	}
}

func TestEngineNames(t *testing.T) {
	want := map[Design]string{
		Baseline: "baseline", Snoopy: "snoopy", FullDir: "full-dir",
		C3D: "c3d", C3DFullDir: "c3d-full-dir", SharedDRAM: "shared",
	}
	for design, name := range want {
		if got := New(testConfig(design)).EngineName(); got != name {
			t.Errorf("%v engine name = %q, want %q", design, got, name)
		}
	}
}

func TestNewPanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with an invalid config should panic")
		}
	}()
	cfg := testConfig(C3D)
	cfg.Sockets = 0
	New(cfg)
}
