package machine

import (
	"context"
	"reflect"
	"testing"

	"c3d/internal/addr"
	"c3d/internal/sample"
	"c3d/internal/trace"
	"c3d/internal/workload"
)

func sampledOpts(spec sample.Spec) RunOptions {
	opts := DefaultRunOptions()
	opts.Sampling = spec
	return opts
}

// A sampled run must produce a Sampling section with at least two windows,
// exact totals, and identical results on every repetition — the machine-level
// half of the byte-identical-across-parallelism guarantee.
func TestSampledRunDeterministicAndAccounted(t *testing.T) {
	opts := workload.Options{Threads: 8, Scale: 512, AccessesPerThread: 4000}
	spec := sample.Spec{Stretch: 700, Warm: 60, Window: 60, Seed: 1}
	for _, design := range []Design{Baseline, C3D} {
		cfg := DefaultConfig(4, design)
		cfg.Scale = 512
		cfg.CoresPerSocket = 2
		tr := workload.MustGenerate(workload.MustGet("streamcluster"), opts)

		run := func() RunResult {
			res, err := New(cfg).Run(context.Background(), tr, sampledOpts(spec))
			if err != nil {
				t.Fatalf("%v: sampled run: %v", design, err)
			}
			return res
		}
		res := run()
		if res.Sampling == nil {
			t.Fatalf("%v: sampled run has no Sampling section", design)
		}
		s := res.Sampling
		if s.Windows < sample.MinWindows {
			t.Errorf("%v: %d windows, want >= %d", design, s.Windows, sample.MinWindows)
		}
		if s.Spec != spec.String() {
			t.Errorf("%v: spec %q, want %q", design, s.Spec, spec.String())
		}
		wantTotal := uint64(opts.Threads * opts.AccessesPerThread)
		if s.TotalAccesses != wantTotal {
			t.Errorf("%v: TotalAccesses = %d, want %d", design, s.TotalAccesses, wantTotal)
		}
		if s.SampledAccesses == 0 || s.SampledAccesses > s.DetailedAccesses {
			t.Errorf("%v: sampled %d / detailed %d accesses inconsistent", design, s.SampledAccesses, s.DetailedAccesses)
		}
		if s.DetailedAccesses >= s.TotalAccesses/2 {
			t.Errorf("%v: detailed accesses %d not a small fraction of %d", design, s.DetailedAccesses, s.TotalAccesses)
		}
		if res.Cycles == 0 || res.Instructions == 0 {
			t.Errorf("%v: extrapolated cycles/instructions zero: %+v", design, res)
		}
		// Extrapolated loads+stores must land on the exact total (the scale
		// factor is derived from it).
		got := res.Counters.Loads + res.Counters.Stores
		if diff := int64(got) - int64(wantTotal); diff < -1 || diff > 1 {
			t.Errorf("%v: extrapolated accesses %d, want ~%d", design, got, wantTotal)
		}
		if res2 := run(); !reflect.DeepEqual(res, res2) {
			t.Errorf("%v: repeated sampled runs differ:\n  %+v\n  %+v", design, res, res2)
		}
	}
}

// The seed moves the initial phase, so different seeds should generally
// sample different stream positions (and a fixed seed must reproduce).
func TestSampledRunSeedChangesSchedule(t *testing.T) {
	opts := workload.Options{Threads: 4, Scale: 512, AccessesPerThread: 3000}
	cfg := DefaultConfig(2, C3D)
	cfg.Scale = 512
	cfg.CoresPerSocket = 2
	tr := workload.MustGenerate(workload.MustGet("mcf"), opts)

	run := func(seed int64) RunResult {
		res, err := New(cfg).Run(context.Background(), tr,
			sampledOpts(sample.Spec{Stretch: 500, Warm: 40, Window: 50, Seed: seed}))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(1), run(2)
	if reflect.DeepEqual(a, b) {
		// Not strictly impossible, but with distinct phases it would mean the
		// sampled estimates are insensitive to the schedule — worth failing.
		t.Errorf("seeds 1 and 2 produced identical sampled results")
	}
}

// Streams shorter than two units must fail loudly rather than report
// intervals that do not exist.
func TestSampledRunTooShortStream(t *testing.T) {
	opts := workload.Options{Threads: 2, Scale: 512, AccessesPerThread: 100}
	cfg := DefaultConfig(2, Baseline)
	cfg.Scale = 512
	cfg.CoresPerSocket = 1
	tr := workload.MustGenerate(workload.MustGet("streamcluster"), opts)
	_, err := New(cfg).Run(context.Background(), tr,
		sampledOpts(sample.Spec{Stretch: 5000, Warm: 100, Window: 100}))
	if err == nil {
		t.Fatal("sampled run over a too-short stream succeeded")
	}
}

// An invalid spec must be rejected before any simulation happens.
func TestSampledRunSpecValidation(t *testing.T) {
	cfg := DefaultConfig(2, Baseline)
	cfg.Scale = 512
	cfg.CoresPerSocket = 1
	tr := workload.MustGenerate(workload.MustGet("streamcluster"),
		workload.Options{Threads: 2, Scale: 512, AccessesPerThread: 100})
	_, err := New(cfg).Run(context.Background(), tr,
		sampledOpts(sample.Spec{Stretch: -1, Window: 10}))
	if err == nil {
		t.Fatal("invalid sampling spec accepted")
	}
}

// asymTrace builds an ingested-style trace with heavily skewed thread
// lengths: thread 0 has only a few records, thread 1 thousands.
func asymTrace(short, long int) *trace.Trace {
	mk := func(n int, stride uint64) []trace.Record {
		recs := make([]trace.Record, n)
		for i := range recs {
			kind := trace.Read
			if i%5 == 4 {
				kind = trace.Write
			}
			recs[i] = trace.Record{Kind: kind, Addr: addr.Addr(uint64(i) * stride % (1 << 20)), Gap: 3}
		}
		return recs
	}
	return &trace.Trace{
		Name:     "asym",
		Init:     mk(64, 64),
		Parallel: [][]trace.Record{mk(short, 64), mk(long, 192)},
	}
}

// Regression test for warm-up sizing on skewed traces: the warm-up budget is
// a per-thread fraction, so a short thread must keep a measured region even
// when another thread is orders of magnitude longer. (The old sizing used
// frac*maxLen for every thread, which consumed short threads entirely during
// warm-up.)
func TestWarmupSizedPerThreadOnSkewedTrace(t *testing.T) {
	const short, long = 40, 4000
	cfg := DefaultConfig(2, Baseline)
	cfg.Scale = 512
	cfg.CoresPerSocket = 1
	res, err := New(cfg).Run(context.Background(), asymTrace(short, long), RunOptions{WarmupFraction: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerCore) != 2 {
		t.Fatalf("want 2 per-core stats, got %d", len(res.PerCore))
	}
	gotShort := res.PerCore[0].Loads + res.PerCore[0].Stores
	wantShort := uint64(short - short/4)
	if gotShort != wantShort {
		t.Errorf("short thread measured %d accesses, want %d (over-warmed)", gotShort, wantShort)
	}
	gotLong := res.PerCore[1].Loads + res.PerCore[1].Stores
	if wantLong := uint64(long - long/4); gotLong != wantLong {
		t.Errorf("long thread measured %d accesses, want %d", gotLong, wantLong)
	}
}
