// Package numa models the operating system's NUMA memory management as seen
// by the simulator: the page table mapping each page to its home socket, and
// the three placement policies evaluated in the paper (§V, "Memory Allocation
// Policy"):
//
//   - Interleave (INT): adjacent pages are spread round-robin across sockets.
//   - First-touch-1 (FT1): the first touch from application start places the
//     page; serial initialisation phases tend to pull everything onto one
//     socket, which is why the paper also evaluates FT2.
//   - First-touch-2 (FT2): placement is decided by the first touch inside the
//     parallel region; earlier (initialisation) touches are ignored.
//
// The home socket of a page determines which memory controller owns its data
// and which global-directory slice tracks its blocks.
package numa

import (
	"fmt"

	"c3d/internal/addr"
)

// Policy selects the page placement policy.
type Policy int

const (
	// Interleave places page p on socket p mod N.
	Interleave Policy = iota
	// FirstTouch1 places a page on the socket of the thread that touches it
	// first, counting from application start.
	FirstTouch1
	// FirstTouch2 places a page on the socket of the thread that touches it
	// first within the parallel region; initialisation-phase touches do not
	// place pages.
	FirstTouch2
)

func (p Policy) String() string {
	switch p {
	case Interleave:
		return "INT"
	case FirstTouch1:
		return "FT1"
	case FirstTouch2:
		return "FT2"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ParsePolicy converts a policy name ("INT", "FT1", "FT2", case-sensitive as
// printed by String) back into a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "INT", "int", "interleave":
		return Interleave, nil
	case "FT1", "ft1":
		return FirstTouch1, nil
	case "FT2", "ft2":
		return FirstTouch2, nil
	default:
		return 0, fmt.Errorf("numa: unknown policy %q", s)
	}
}

// Policies lists every placement policy, in the order the paper introduces
// them. Experiment code iterates this slice for profiling runs.
func Policies() []Policy { return []Policy{Interleave, FirstTouch1, FirstTouch2} }

// PageTable maps pages to home sockets. The zero value is not usable; build
// one with NewPageTable.
type PageTable struct {
	sockets int
	policy  Policy
	homes   map[addr.Page]int
	stats   Stats
}

// Stats describes the placement decisions a page table has made.
type Stats struct {
	// PagesPerSocket counts pages homed on each socket.
	PagesPerSocket []uint64
	// Placements is the total number of pages placed.
	Placements uint64
	// FallbackInterleaved counts pages that were never explicitly placed and
	// fell back to interleaving when first resolved (only possible under
	// FirstTouch2 for pages untouched in the parallel region).
	FallbackInterleaved uint64
}

// NewPageTable builds an empty page table for a machine with the given number
// of sockets and the given placement policy.
func NewPageTable(sockets int, policy Policy) *PageTable {
	if sockets <= 0 {
		panic(fmt.Sprintf("numa: invalid socket count %d", sockets))
	}
	return &PageTable{
		sockets: sockets,
		policy:  policy,
		homes:   make(map[addr.Page]int),
		stats:   Stats{PagesPerSocket: make([]uint64, sockets)},
	}
}

// Sockets returns the socket count the table was built for.
func (pt *PageTable) Sockets() int { return pt.sockets }

// Reset forgets every placement and clears the statistics, returning the
// table to the just-constructed state (used when a machine is reused across
// runs — page placement must be re-decided by the next trace).
func (pt *PageTable) Reset() {
	clear(pt.homes)
	clear(pt.stats.PagesPerSocket)
	pt.stats.Placements = 0
	pt.stats.FallbackInterleaved = 0
}

// Policy returns the placement policy.
func (pt *PageTable) Policy() Policy { return pt.policy }

// Stats returns a snapshot of the placement statistics.
func (pt *PageTable) Stats() Stats {
	s := pt.stats
	s.PagesPerSocket = append([]uint64(nil), pt.stats.PagesPerSocket...)
	return s
}

// Pages returns the number of pages that have been placed.
func (pt *PageTable) Pages() int { return len(pt.homes) }

func (pt *PageTable) interleaveHome(p addr.Page) int {
	return int(uint64(p) % uint64(pt.sockets))
}

func (pt *PageTable) place(p addr.Page, socket int) {
	pt.homes[p] = socket
	pt.stats.Placements++
	pt.stats.PagesPerSocket[socket]++
}

// Touch records a memory touch of page p by a thread running on the given
// socket, during either the initialisation phase (parallel=false) or the
// parallel region (parallel=true). It places the page if the policy says this
// touch is the placing one, and returns the page's home socket if it is
// already decided (ok=false means the page has no home yet, which can only
// happen under FirstTouch2 during initialisation).
func (pt *PageTable) Touch(p addr.Page, socket int, parallel bool) (home int, ok bool) {
	if socket < 0 || socket >= pt.sockets {
		panic(fmt.Sprintf("numa: socket %d out of range [0,%d)", socket, pt.sockets))
	}
	if h, exists := pt.homes[p]; exists {
		return h, true
	}
	switch pt.policy {
	case Interleave:
		h := pt.interleaveHome(p)
		pt.place(p, h)
		return h, true
	case FirstTouch1:
		pt.place(p, socket)
		return socket, true
	case FirstTouch2:
		if !parallel {
			// Initialisation touches do not place pages under FT2.
			return 0, false
		}
		pt.place(p, socket)
		return socket, true
	default:
		panic(fmt.Sprintf("numa: unknown policy %v", pt.policy))
	}
}

// Home resolves the home socket of page p. Pages that were never placed
// (possible under FirstTouch2 when a page is only touched during
// initialisation) fall back to interleaving, and the fallback is recorded in
// the statistics.
func (pt *PageTable) Home(p addr.Page) int {
	if h, ok := pt.homes[p]; ok {
		return h
	}
	h := pt.interleaveHome(p)
	pt.place(p, h)
	pt.stats.FallbackInterleaved++
	return h
}

// HomeOfBlock resolves the home socket of the page containing block b.
func (pt *PageTable) HomeOfBlock(b addr.Block) int {
	return pt.Home(addr.PageOfBlock(b))
}

// HomeOfAddr resolves the home socket of the page containing address a.
func (pt *PageTable) HomeOfAddr(a addr.Addr) int {
	return pt.Home(addr.PageOf(a))
}

// IsLocal reports whether an access from the given socket to address a stays
// on-socket.
func (pt *PageTable) IsLocal(socket int, a addr.Addr) bool {
	return pt.HomeOfAddr(a) == socket
}

// Imbalance returns the ratio between the most and least loaded sockets'
// page counts (1 means perfectly balanced; 0 when no pages are placed or a
// socket holds none).
func (pt *PageTable) Imbalance() float64 {
	min, max := uint64(0), uint64(0)
	first := true
	for _, n := range pt.stats.PagesPerSocket {
		if first {
			min, max = n, n
			first = false
			continue
		}
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	if min == 0 {
		return 0
	}
	return float64(max) / float64(min)
}
