package numa

import (
	"testing"
	"testing/quick"

	"c3d/internal/addr"
)

func TestPolicyStrings(t *testing.T) {
	cases := map[Policy]string{Interleave: "INT", FirstTouch1: "FT1", FirstTouch2: "FT2"}
	for p, want := range cases {
		if got := p.String(); got != want {
			t.Errorf("%v.String() = %q, want %q", int(p), got, want)
		}
		parsed, err := ParsePolicy(want)
		if err != nil || parsed != p {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v", want, parsed, err, p)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Error("ParsePolicy of an unknown name should fail")
	}
	if len(Policies()) != 3 {
		t.Error("Policies() should list the three paper policies")
	}
}

func TestInterleavePlacement(t *testing.T) {
	pt := NewPageTable(4, Interleave)
	for p := addr.Page(0); p < 16; p++ {
		home, ok := pt.Touch(p, 2, true)
		if !ok {
			t.Fatalf("interleave should always place page %d", p)
		}
		if want := int(p % 4); home != want {
			t.Errorf("page %d home = %d, want %d", p, home, want)
		}
	}
	s := pt.Stats()
	for sock, n := range s.PagesPerSocket {
		if n != 4 {
			t.Errorf("socket %d holds %d pages, want 4", sock, n)
		}
	}
	if pt.Imbalance() != 1 {
		t.Errorf("Imbalance = %.2f, want 1 (perfectly balanced)", pt.Imbalance())
	}
}

func TestFirstTouch1PlacesOnFirstToucherEvenDuringInit(t *testing.T) {
	pt := NewPageTable(4, FirstTouch1)
	p := addr.Page(100)
	home, ok := pt.Touch(p, 3, false) // init-phase touch
	if !ok || home != 3 {
		t.Fatalf("FT1 init touch: home = %d, ok = %v; want 3, true", home, ok)
	}
	// A later touch from another socket does not move the page.
	home, _ = pt.Touch(p, 1, true)
	if home != 3 {
		t.Errorf("page moved to %d after later touch, want it to stay on 3", home)
	}
}

func TestFirstTouch2IgnoresInitTouches(t *testing.T) {
	pt := NewPageTable(4, FirstTouch2)
	p := addr.Page(5)
	if _, ok := pt.Touch(p, 0, false); ok {
		t.Fatal("FT2 must not place pages during initialisation")
	}
	home, ok := pt.Touch(p, 2, true)
	if !ok || home != 2 {
		t.Fatalf("FT2 parallel touch: home = %d, ok = %v; want 2, true", home, ok)
	}
}

func TestFirstTouch2FallbackInterleaves(t *testing.T) {
	pt := NewPageTable(4, FirstTouch2)
	p := addr.Page(7)
	pt.Touch(p, 1, false) // never touched in parallel phase
	home := pt.Home(p)
	if want := int(p % 4); home != want {
		t.Errorf("fallback home = %d, want interleaved %d", home, want)
	}
	if pt.Stats().FallbackInterleaved != 1 {
		t.Errorf("FallbackInterleaved = %d, want 1", pt.Stats().FallbackInterleaved)
	}
}

func TestHomeIsSticky(t *testing.T) {
	pt := NewPageTable(2, FirstTouch1)
	p := addr.Page(9)
	pt.Touch(p, 1, true)
	for i := 0; i < 5; i++ {
		if pt.Home(p) != 1 {
			t.Fatal("home changed between lookups")
		}
	}
	if pt.Pages() != 1 {
		t.Errorf("Pages = %d, want 1", pt.Pages())
	}
}

func TestHomeOfBlockAndAddr(t *testing.T) {
	pt := NewPageTable(4, Interleave)
	a := addr.Addr(3 * addr.PageBytes) // page 3 -> socket 3
	if got := pt.HomeOfAddr(a); got != 3 {
		t.Errorf("HomeOfAddr = %d, want 3", got)
	}
	if got := pt.HomeOfBlock(addr.BlockOf(a)); got != 3 {
		t.Errorf("HomeOfBlock = %d, want 3", got)
	}
	if !pt.IsLocal(3, a) {
		t.Error("IsLocal(3, page 3) should be true")
	}
	if pt.IsLocal(0, a) {
		t.Error("IsLocal(0, page 3) should be false")
	}
}

func TestFT1SerialInitImbalance(t *testing.T) {
	// A serial init phase where socket 0 touches every page leaves FT1 with
	// everything on socket 0 — the pathology the paper mentions.
	pt := NewPageTable(4, FirstTouch1)
	for p := addr.Page(0); p < 100; p++ {
		pt.Touch(p, 0, false)
	}
	s := pt.Stats()
	if s.PagesPerSocket[0] != 100 {
		t.Errorf("socket 0 holds %d pages, want all 100", s.PagesPerSocket[0])
	}
	if pt.Imbalance() != 0 {
		t.Errorf("Imbalance = %.2f, want 0 (some sockets hold nothing)", pt.Imbalance())
	}
}

func TestInvalidInputsPanic(t *testing.T) {
	if func() (panicked bool) {
		defer func() { panicked = recover() != nil }()
		NewPageTable(0, Interleave)
		return
	}() == false {
		t.Error("NewPageTable(0, ...) should panic")
	}
	pt := NewPageTable(2, Interleave)
	if func() (panicked bool) {
		defer func() { panicked = recover() != nil }()
		pt.Touch(addr.Page(1), 5, true)
		return
	}() == false {
		t.Error("Touch with an out-of-range socket should panic")
	}
}

// Property: under every policy, once a page has a home it never changes, and
// the home is always a valid socket index.
func TestPlacementStableProperty(t *testing.T) {
	f := func(pageRaw uint16, touches []uint8) bool {
		for _, policy := range Policies() {
			pt := NewPageTable(4, policy)
			p := addr.Page(pageRaw)
			var firstHome = -1
			for _, tr := range touches {
				socket := int(tr % 4)
				parallel := tr%2 == 0
				home, ok := pt.Touch(p, socket, parallel)
				if !ok {
					continue
				}
				if home < 0 || home >= 4 {
					return false
				}
				if firstHome == -1 {
					firstHome = home
				} else if home != firstHome {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: interleave distributes any contiguous page range within one page
// of perfectly even.
func TestInterleaveBalanceProperty(t *testing.T) {
	f := func(startRaw uint16, countRaw uint8) bool {
		count := int(countRaw)%256 + 4
		pt := NewPageTable(4, Interleave)
		for i := 0; i < count; i++ {
			pt.Touch(addr.Page(int(startRaw)+i), 0, true)
		}
		s := pt.Stats()
		min, max := s.PagesPerSocket[0], s.PagesPerSocket[0]
		for _, n := range s.PagesPerSocket {
			if n < min {
				min = n
			}
			if n > max {
				max = n
			}
		}
		return max-min <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
