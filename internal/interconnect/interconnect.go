// Package interconnect models the inter-socket fabric of a 2- or 4-socket
// NUMA machine: a point-to-point link for two sockets and a ring for four,
// with per-hop latency, per-link bandwidth, and packet-size accounting
// matching Table II of the C3D paper (20 ns per hop, 25.6 GB/s per link,
// 16-byte control packets and 80-byte data packets).
//
// The fabric is where the NUMA bottleneck lives: every remote-memory access,
// directory lookup, forwarded block, snoop and invalidation crosses it, and
// the experiments in Figs. 8–9 report precisely the byte counts this package
// accumulates.
package interconnect

import (
	"fmt"

	"c3d/internal/sim"
)

// Topology selects the physical arrangement of sockets.
type Topology int

const (
	// PointToPoint directly connects every pair of sockets (used for the
	// 2-socket configuration; every pair is one hop apart).
	PointToPoint Topology = iota
	// Ring connects socket i to sockets (i±1) mod N (used for the
	// 4-socket configuration, mirroring commodity AMD/Intel designs).
	Ring
)

func (t Topology) String() string {
	switch t {
	case PointToPoint:
		return "p2p"
	case Ring:
		return "ring"
	default:
		return fmt.Sprintf("Topology(%d)", int(t))
	}
}

// MessageClass distinguishes small control packets from data-carrying ones
// for traffic accounting.
type MessageClass int

const (
	// Control messages are requests, acknowledgements, invalidations:
	// 16 bytes on the wire.
	Control MessageClass = iota
	// Data messages carry a 64-byte cache block plus header: 80 bytes.
	Data
)

// Bytes returns the on-wire size of the message class.
func (m MessageClass) Bytes() int {
	switch m {
	case Control:
		return ControlBytes
	case Data:
		return DataBytes
	default:
		panic(fmt.Sprintf("interconnect: unknown message class %d", int(m)))
	}
}

func (m MessageClass) String() string {
	switch m {
	case Control:
		return "control"
	case Data:
		return "data"
	default:
		return fmt.Sprintf("MessageClass(%d)", int(m))
	}
}

const (
	// ControlBytes is the wire size of a control packet (Table II).
	ControlBytes = 16
	// DataBytes is the wire size of a data packet (Table II).
	DataBytes = 80
)

// Config describes the fabric.
type Config struct {
	Sockets  int
	Topology Topology
	// HopLatency is the one-way latency per hop. Table II models 20 ns
	// (the measured ~40-50 ns socket-to-socket round trip divided between
	// the two directions).
	HopLatency sim.Cycles
	// LinkBandwidthGBs is the bandwidth of each directed link; zero or
	// negative models infinite bandwidth (Fig. 2's "inf_qpi_bw").
	LinkBandwidthGBs float64
}

// DefaultConfig returns the Table II fabric for the given socket count:
// point-to-point for 2 sockets, ring for 4, 20 ns per hop, 25.6 GB/s links.
func DefaultConfig(sockets int) Config {
	topo := Ring
	if sockets <= 2 {
		topo = PointToPoint
	}
	return Config{
		Sockets:          sockets,
		Topology:         topo,
		HopLatency:       sim.NsToCycles(20),
		LinkBandwidthGBs: 25.6,
	}
}

// Stats accumulates fabric traffic.
type Stats struct {
	Messages      uint64
	ControlMsgs   uint64
	DataMsgs      uint64
	TotalBytes    uint64
	ControlBytes  uint64
	DataBytes     uint64
	HopsTraversed uint64
}

// Fabric is the inter-socket interconnect instance.
type Fabric struct {
	cfg Config
	// links is a dense matrix of directed links indexed from*Sockets+to; nil
	// entries are socket pairs with no direct link. A flat slice keeps the
	// per-hop link lookup on the message hot path free of map hashing.
	links []*sim.Resource
	stats Stats
	// zeroLatency models the Fig. 2 "0_qpi_lat" idealisation.
	zeroLatency bool
}

// New builds a fabric from cfg. It panics if the socket count is not
// supported by the topology (point-to-point needs >=2, ring needs >=3 to be
// meaningful, and both need at least 1).
func New(cfg Config) *Fabric {
	if cfg.Sockets < 1 {
		panic("interconnect: need at least one socket")
	}
	f := &Fabric{cfg: cfg, links: make([]*sim.Resource, cfg.Sockets*cfg.Sockets)}
	bpc := sim.GBsToBytesPerCycle(cfg.LinkBandwidthGBs)
	addLink := func(a, b int) {
		if f.links[a*cfg.Sockets+b] == nil {
			f.links[a*cfg.Sockets+b] = sim.NewResource(fmt.Sprintf("link%d-%d", a, b), bpc)
		}
	}
	switch cfg.Topology {
	case PointToPoint:
		for i := 0; i < cfg.Sockets; i++ {
			for j := 0; j < cfg.Sockets; j++ {
				if i != j {
					addLink(i, j)
				}
			}
		}
	case Ring:
		for i := 0; i < cfg.Sockets; i++ {
			next := (i + 1) % cfg.Sockets
			addLink(i, next)
			addLink(next, i)
		}
	default:
		panic(fmt.Sprintf("interconnect: unknown topology %v", cfg.Topology))
	}
	return f
}

// Config returns the fabric's configuration.
func (f *Fabric) Config() Config { return f.cfg }

// Stats returns a snapshot of the accumulated traffic.
func (f *Fabric) Stats() Stats { return f.stats }

// ResetStats clears traffic counters and link occupancy.
func (f *Fabric) ResetStats() {
	f.stats = Stats{}
	for _, l := range f.links {
		if l != nil {
			l.Reset()
		}
	}
}

// Reset returns the fabric to its just-constructed state. The fabric holds no
// state beyond counters and link occupancy, so this is ResetStats under the
// name the machine-reuse path expects; latency/bandwidth idealisations
// survive, matching construction-time configuration.
func (f *Fabric) Reset() { f.ResetStats() }

// SetZeroLatency removes the per-hop latency (Fig. 2 "0_qpi_lat").
func (f *Fabric) SetZeroLatency() { f.zeroLatency = true }

// SetInfiniteBandwidth removes link bandwidth limits (Fig. 2 "inf_qpi_bw").
func (f *Fabric) SetInfiniteBandwidth() {
	for _, l := range f.links {
		if l != nil {
			l.SetInfinite()
		}
	}
}

// Hops returns the number of fabric hops between two sockets (0 if they are
// the same socket).
func (f *Fabric) Hops(from, to int) int {
	if from == to {
		return 0
	}
	switch f.cfg.Topology {
	case PointToPoint:
		return 1
	case Ring:
		d := from - to
		if d < 0 {
			d = -d
		}
		if wrap := f.cfg.Sockets - d; wrap < d {
			d = wrap
		}
		return d
	default:
		panic("interconnect: unknown topology")
	}
}

// route returns the step increment and hop count of the route from from to
// to (dist 0 when they are the same socket). For the ring it walks the
// shorter direction, breaking ties clockwise; point-to-point is always one
// hop. step is always in [0, sockets), so callers walk the route with
// cur = (cur + step) % sockets starting at cur = from — allocation-free,
// which matters because this is the simulator's hottest path.
func (f *Fabric) route(from, to int) (step, dist int) {
	n := f.cfg.Sockets
	if from == to {
		return 0, 0
	}
	if f.cfg.Topology == PointToPoint {
		return ((to-from)%n + n) % n, 1
	}
	cw := (to - from + n) % n
	ccw := (from - to + n) % n
	if ccw < cw {
		return n - 1, ccw // n-1 is -1 mod n
	}
	return 1, cw
}

// Send models one message travelling from socket `from` to socket `to`
// starting at now. It returns the arrival time at the destination. Traffic
// statistics account every link the message crosses; latency is per-hop
// latency plus any queueing on each link. Sending to the local socket is
// free and generates no traffic.
func (f *Fabric) Send(now sim.Time, from, to int, class MessageClass) sim.Time {
	if from == to {
		return now
	}
	f.checkSocket(from)
	f.checkSocket(to)
	bytes := class.Bytes()
	f.stats.Messages++
	switch class {
	case Control:
		f.stats.ControlMsgs++
	case Data:
		f.stats.DataMsgs++
	}
	t := now
	prev := from
	step, dist := f.route(from, to)
	for i := 0; i < dist; i++ {
		next := (prev + step) % f.cfg.Sockets
		f.stats.HopsTraversed++
		f.stats.TotalBytes += uint64(bytes)
		switch class {
		case Control:
			f.stats.ControlBytes += uint64(bytes)
		case Data:
			f.stats.DataBytes += uint64(bytes)
		}
		link := f.links[prev*f.cfg.Sockets+next]
		_, done := link.Acquire(t, bytes)
		if !f.zeroLatency {
			done = done.Add(f.cfg.HopLatency)
		}
		t = done
		prev = next
	}
	return t
}

// RoundTrip models a request/response pair: a control request from `from` to
// `to` followed by a response of the given class back to `from`. It returns
// the time the response arrives.
func (f *Fabric) RoundTrip(now sim.Time, from, to int, response MessageClass) sim.Time {
	arrive := f.Send(now, from, to, Control)
	return f.Send(arrive, to, from, response)
}

// Broadcast sends a control message from `from` to every other socket and
// returns the time at which the last destination has received it, along with
// the per-destination arrival times indexed by socket id (the entry for
// `from` is now).
func (f *Fabric) Broadcast(now sim.Time, from int, class MessageClass) (last sim.Time, arrivals []sim.Time) {
	arrivals = make([]sim.Time, f.cfg.Sockets)
	last = now
	for s := 0; s < f.cfg.Sockets; s++ {
		if s == from {
			arrivals[s] = now
			continue
		}
		t := f.Send(now, from, s, class)
		arrivals[s] = t
		if t > last {
			last = t
		}
	}
	return last, arrivals
}

// LinkStats returns occupancy statistics for every directed link, in
// deterministic (from, to) order.
func (f *Fabric) LinkStats() []sim.ResourceStats {
	var out []sim.ResourceStats
	for _, l := range f.links {
		if l != nil {
			out = append(out, l.Stats())
		}
	}
	return out
}

func (f *Fabric) checkSocket(s int) {
	if s < 0 || s >= f.cfg.Sockets {
		panic(fmt.Sprintf("interconnect: socket %d out of range [0,%d)", s, f.cfg.Sockets))
	}
}
